# Empty dependencies file for softphy_hints.
# This may be replaced when dependencies are built.
