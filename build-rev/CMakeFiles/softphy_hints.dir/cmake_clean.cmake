file(REMOVE_RECURSE
  "CMakeFiles/softphy_hints.dir/examples/softphy_hints.cpp.o"
  "CMakeFiles/softphy_hints.dir/examples/softphy_hints.cpp.o.d"
  "softphy_hints"
  "softphy_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softphy_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
