# Empty dependencies file for test_synth_platform.
# This may be replaced when dependencies are built.
