file(REMOVE_RECURSE
  "CMakeFiles/test_synth_platform.dir/tests/test_synth_platform.cc.o"
  "CMakeFiles/test_synth_platform.dir/tests/test_synth_platform.cc.o.d"
  "test_synth_platform"
  "test_synth_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
