# Empty dependencies file for softrate_adaptation.
# This may be replaced when dependencies are built.
