file(REMOVE_RECURSE
  "CMakeFiles/softrate_adaptation.dir/examples/softrate_adaptation.cpp.o"
  "CMakeFiles/softrate_adaptation.dir/examples/softrate_adaptation.cpp.o.d"
  "softrate_adaptation"
  "softrate_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softrate_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
