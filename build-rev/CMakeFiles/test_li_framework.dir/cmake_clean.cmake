file(REMOVE_RECURSE
  "CMakeFiles/test_li_framework.dir/tests/test_li_framework.cc.o"
  "CMakeFiles/test_li_framework.dir/tests/test_li_framework.cc.o.d"
  "test_li_framework"
  "test_li_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_li_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
