# Empty dependencies file for test_li_framework.
# This may be replaced when dependencies are built.
