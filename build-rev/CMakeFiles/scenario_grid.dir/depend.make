# Empty dependencies file for scenario_grid.
# This may be replaced when dependencies are built.
