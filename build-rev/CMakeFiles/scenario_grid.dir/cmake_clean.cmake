file(REMOVE_RECURSE
  "CMakeFiles/scenario_grid.dir/examples/scenario_grid.cpp.o"
  "CMakeFiles/scenario_grid.dir/examples/scenario_grid.cpp.o.d"
  "scenario_grid"
  "scenario_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
