# Empty dependencies file for abl_bcjr_block.
# This may be replaced when dependencies are built.
