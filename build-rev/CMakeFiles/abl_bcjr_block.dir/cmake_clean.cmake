file(REMOVE_RECURSE
  "CMakeFiles/abl_bcjr_block.dir/bench/abl_bcjr_block.cc.o"
  "CMakeFiles/abl_bcjr_block.dir/bench/abl_bcjr_block.cc.o.d"
  "abl_bcjr_block"
  "abl_bcjr_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bcjr_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
