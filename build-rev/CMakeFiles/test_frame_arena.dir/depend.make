# Empty dependencies file for test_frame_arena.
# This may be replaced when dependencies are built.
