file(REMOVE_RECURSE
  "CMakeFiles/test_frame_arena.dir/tests/test_frame_arena.cc.o"
  "CMakeFiles/test_frame_arena.dir/tests/test_frame_arena.cc.o.d"
  "test_frame_arena"
  "test_frame_arena.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frame_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
