file(REMOVE_RECURSE
  "CMakeFiles/abl_quantization.dir/bench/abl_quantization.cc.o"
  "CMakeFiles/abl_quantization.dir/bench/abl_quantization.cc.o.d"
  "abl_quantization"
  "abl_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
