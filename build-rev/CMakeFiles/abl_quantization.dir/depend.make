# Empty dependencies file for abl_quantization.
# This may be replaced when dependencies are built.
