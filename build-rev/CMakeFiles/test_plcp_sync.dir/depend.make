# Empty dependencies file for test_plcp_sync.
# This may be replaced when dependencies are built.
