file(REMOVE_RECURSE
  "CMakeFiles/test_plcp_sync.dir/tests/test_plcp_sync.cc.o"
  "CMakeFiles/test_plcp_sync.dir/tests/test_plcp_sync.cc.o.d"
  "test_plcp_sync"
  "test_plcp_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plcp_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
