file(REMOVE_RECURSE
  "CMakeFiles/abl_goodput.dir/bench/abl_goodput.cc.o"
  "CMakeFiles/abl_goodput.dir/bench/abl_goodput.cc.o.d"
  "abl_goodput"
  "abl_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
