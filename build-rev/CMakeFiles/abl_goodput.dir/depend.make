# Empty dependencies file for abl_goodput.
# This may be replaced when dependencies are built.
