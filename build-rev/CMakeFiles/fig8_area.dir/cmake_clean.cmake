file(REMOVE_RECURSE
  "CMakeFiles/fig8_area.dir/bench/fig8_area.cc.o"
  "CMakeFiles/fig8_area.dir/bench/fig8_area.cc.o.d"
  "fig8_area"
  "fig8_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
