# Empty dependencies file for plug_n_play.
# This may be replaced when dependencies are built.
