file(REMOVE_RECURSE
  "CMakeFiles/plug_n_play.dir/examples/plug_n_play.cpp.o"
  "CMakeFiles/plug_n_play.dir/examples/plug_n_play.cpp.o.d"
  "plug_n_play"
  "plug_n_play.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plug_n_play.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
