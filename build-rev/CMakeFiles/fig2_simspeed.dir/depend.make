# Empty dependencies file for fig2_simspeed.
# This may be replaced when dependencies are built.
