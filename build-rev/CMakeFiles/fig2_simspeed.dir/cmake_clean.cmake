file(REMOVE_RECURSE
  "CMakeFiles/fig2_simspeed.dir/bench/fig2_simspeed.cc.o"
  "CMakeFiles/fig2_simspeed.dir/bench/fig2_simspeed.cc.o.d"
  "fig2_simspeed"
  "fig2_simspeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_simspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
