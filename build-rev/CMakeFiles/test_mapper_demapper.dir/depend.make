# Empty dependencies file for test_mapper_demapper.
# This may be replaced when dependencies are built.
