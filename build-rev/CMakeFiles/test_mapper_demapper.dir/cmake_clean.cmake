file(REMOVE_RECURSE
  "CMakeFiles/test_mapper_demapper.dir/tests/test_mapper_demapper.cc.o"
  "CMakeFiles/test_mapper_demapper.dir/tests/test_mapper_demapper.cc.o.d"
  "test_mapper_demapper"
  "test_mapper_demapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapper_demapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
