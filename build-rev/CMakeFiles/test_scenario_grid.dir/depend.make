# Empty dependencies file for test_scenario_grid.
# This may be replaced when dependencies are built.
