file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_grid.dir/tests/test_scenario_grid.cc.o"
  "CMakeFiles/test_scenario_grid.dir/tests/test_scenario_grid.cc.o.d"
  "test_scenario_grid"
  "test_scenario_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
