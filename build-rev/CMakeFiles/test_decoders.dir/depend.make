# Empty dependencies file for test_decoders.
# This may be replaced when dependencies are built.
