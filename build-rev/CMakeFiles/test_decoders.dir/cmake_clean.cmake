file(REMOVE_RECURSE
  "CMakeFiles/test_decoders.dir/tests/test_decoders.cc.o"
  "CMakeFiles/test_decoders.dir/tests/test_decoders.cc.o.d"
  "test_decoders"
  "test_decoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
