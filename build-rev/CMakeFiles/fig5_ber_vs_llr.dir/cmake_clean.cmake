file(REMOVE_RECURSE
  "CMakeFiles/fig5_ber_vs_llr.dir/bench/fig5_ber_vs_llr.cc.o"
  "CMakeFiles/fig5_ber_vs_llr.dir/bench/fig5_ber_vs_llr.cc.o.d"
  "fig5_ber_vs_llr"
  "fig5_ber_vs_llr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ber_vs_llr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
