# Empty dependencies file for fig5_ber_vs_llr.
# This may be replaced when dependencies are built.
