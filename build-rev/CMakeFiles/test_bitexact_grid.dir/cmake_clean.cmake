file(REMOVE_RECURSE
  "CMakeFiles/test_bitexact_grid.dir/tests/test_bitexact_grid.cc.o"
  "CMakeFiles/test_bitexact_grid.dir/tests/test_bitexact_grid.cc.o.d"
  "test_bitexact_grid"
  "test_bitexact_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitexact_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
