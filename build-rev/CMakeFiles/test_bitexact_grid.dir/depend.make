# Empty dependencies file for test_bitexact_grid.
# This may be replaced when dependencies are built.
