# Empty dependencies file for abl_li_batching.
# This may be replaced when dependencies are built.
