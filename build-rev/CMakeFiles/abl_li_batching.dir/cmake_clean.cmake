file(REMOVE_RECURSE
  "CMakeFiles/abl_li_batching.dir/bench/abl_li_batching.cc.o"
  "CMakeFiles/abl_li_batching.dir/bench/abl_li_batching.cc.o.d"
  "abl_li_batching"
  "abl_li_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_li_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
