# Empty dependencies file for abl_traceback.
# This may be replaced when dependencies are built.
