file(REMOVE_RECURSE
  "CMakeFiles/abl_traceback.dir/bench/abl_traceback.cc.o"
  "CMakeFiles/abl_traceback.dir/bench/abl_traceback.cc.o.d"
  "abl_traceback"
  "abl_traceback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_traceback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
