file(REMOVE_RECURSE
  "CMakeFiles/abl_latency.dir/bench/abl_latency.cc.o"
  "CMakeFiles/abl_latency.dir/bench/abl_latency.cc.o.d"
  "abl_latency"
  "abl_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
