# Empty dependencies file for abl_latency.
# This may be replaced when dependencies are built.
