# Empty dependencies file for test_conv_code.
# This may be replaced when dependencies are built.
