file(REMOVE_RECURSE
  "CMakeFiles/test_conv_code.dir/tests/test_conv_code.cc.o"
  "CMakeFiles/test_conv_code.dir/tests/test_conv_code.cc.o.d"
  "test_conv_code"
  "test_conv_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
