# Empty dependencies file for wilis_cli.
# This may be replaced when dependencies are built.
