file(REMOVE_RECURSE
  "CMakeFiles/wilis_cli.dir/examples/wilis_cli.cpp.o"
  "CMakeFiles/wilis_cli.dir/examples/wilis_cli.cpp.o.d"
  "wilis_cli"
  "wilis_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wilis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
