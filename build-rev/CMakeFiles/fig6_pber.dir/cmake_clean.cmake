file(REMOVE_RECURSE
  "CMakeFiles/fig6_pber.dir/bench/fig6_pber.cc.o"
  "CMakeFiles/fig6_pber.dir/bench/fig6_pber.cc.o.d"
  "fig6_pber"
  "fig6_pber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
