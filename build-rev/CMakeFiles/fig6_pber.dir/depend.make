# Empty dependencies file for fig6_pber.
# This may be replaced when dependencies are built.
