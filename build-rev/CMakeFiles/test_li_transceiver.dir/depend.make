# Empty dependencies file for test_li_transceiver.
# This may be replaced when dependencies are built.
