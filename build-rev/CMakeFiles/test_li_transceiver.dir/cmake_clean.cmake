file(REMOVE_RECURSE
  "CMakeFiles/test_li_transceiver.dir/tests/test_li_transceiver.cc.o"
  "CMakeFiles/test_li_transceiver.dir/tests/test_li_transceiver.cc.o.d"
  "test_li_transceiver"
  "test_li_transceiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_li_transceiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
