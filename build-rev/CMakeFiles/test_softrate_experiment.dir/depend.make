# Empty dependencies file for test_softrate_experiment.
# This may be replaced when dependencies are built.
