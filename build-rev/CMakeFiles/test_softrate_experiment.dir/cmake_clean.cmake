file(REMOVE_RECURSE
  "CMakeFiles/test_softrate_experiment.dir/tests/test_softrate_experiment.cc.o"
  "CMakeFiles/test_softrate_experiment.dir/tests/test_softrate_experiment.cc.o.d"
  "test_softrate_experiment"
  "test_softrate_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softrate_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
