# Empty dependencies file for abl_waterfall.
# This may be replaced when dependencies are built.
