file(REMOVE_RECURSE
  "CMakeFiles/abl_waterfall.dir/bench/abl_waterfall.cc.o"
  "CMakeFiles/abl_waterfall.dir/bench/abl_waterfall.cc.o.d"
  "abl_waterfall"
  "abl_waterfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_waterfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
