# Empty dependencies file for wilis.
# This may be replaced when dependencies are built.
