
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/awgn.cc" "CMakeFiles/wilis.dir/src/channel/awgn.cc.o" "gcc" "CMakeFiles/wilis.dir/src/channel/awgn.cc.o.d"
  "/root/repo/src/channel/channels.cc" "CMakeFiles/wilis.dir/src/channel/channels.cc.o" "gcc" "CMakeFiles/wilis.dir/src/channel/channels.cc.o.d"
  "/root/repo/src/channel/fading.cc" "CMakeFiles/wilis.dir/src/channel/fading.cc.o" "gcc" "CMakeFiles/wilis.dir/src/channel/fading.cc.o.d"
  "/root/repo/src/channel/interference.cc" "CMakeFiles/wilis.dir/src/channel/interference.cc.o" "gcc" "CMakeFiles/wilis.dir/src/channel/interference.cc.o.d"
  "/root/repo/src/channel/multipath.cc" "CMakeFiles/wilis.dir/src/channel/multipath.cc.o" "gcc" "CMakeFiles/wilis.dir/src/channel/multipath.cc.o.d"
  "/root/repo/src/common/frame_arena.cc" "CMakeFiles/wilis.dir/src/common/frame_arena.cc.o" "gcc" "CMakeFiles/wilis.dir/src/common/frame_arena.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/wilis.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/wilis.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/wilis.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/wilis.dir/src/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "CMakeFiles/wilis.dir/src/common/table.cc.o" "gcc" "CMakeFiles/wilis.dir/src/common/table.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/wilis.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/wilis.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/decode/bcjr.cc" "CMakeFiles/wilis.dir/src/decode/bcjr.cc.o" "gcc" "CMakeFiles/wilis.dir/src/decode/bcjr.cc.o.d"
  "/root/repo/src/decode/decoders.cc" "CMakeFiles/wilis.dir/src/decode/decoders.cc.o" "gcc" "CMakeFiles/wilis.dir/src/decode/decoders.cc.o.d"
  "/root/repo/src/decode/sova.cc" "CMakeFiles/wilis.dir/src/decode/sova.cc.o" "gcc" "CMakeFiles/wilis.dir/src/decode/sova.cc.o.d"
  "/root/repo/src/decode/trellis_kernels.cc" "CMakeFiles/wilis.dir/src/decode/trellis_kernels.cc.o" "gcc" "CMakeFiles/wilis.dir/src/decode/trellis_kernels.cc.o.d"
  "/root/repo/src/decode/viterbi.cc" "CMakeFiles/wilis.dir/src/decode/viterbi.cc.o" "gcc" "CMakeFiles/wilis.dir/src/decode/viterbi.cc.o.d"
  "/root/repo/src/li/config.cc" "CMakeFiles/wilis.dir/src/li/config.cc.o" "gcc" "CMakeFiles/wilis.dir/src/li/config.cc.o.d"
  "/root/repo/src/li/scheduler.cc" "CMakeFiles/wilis.dir/src/li/scheduler.cc.o" "gcc" "CMakeFiles/wilis.dir/src/li/scheduler.cc.o.d"
  "/root/repo/src/mac/oracle.cc" "CMakeFiles/wilis.dir/src/mac/oracle.cc.o" "gcc" "CMakeFiles/wilis.dir/src/mac/oracle.cc.o.d"
  "/root/repo/src/mac/ppr.cc" "CMakeFiles/wilis.dir/src/mac/ppr.cc.o" "gcc" "CMakeFiles/wilis.dir/src/mac/ppr.cc.o.d"
  "/root/repo/src/phy/conv_code.cc" "CMakeFiles/wilis.dir/src/phy/conv_code.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/conv_code.cc.o.d"
  "/root/repo/src/phy/cyclic_prefix.cc" "CMakeFiles/wilis.dir/src/phy/cyclic_prefix.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/cyclic_prefix.cc.o.d"
  "/root/repo/src/phy/demapper.cc" "CMakeFiles/wilis.dir/src/phy/demapper.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/demapper.cc.o.d"
  "/root/repo/src/phy/fft.cc" "CMakeFiles/wilis.dir/src/phy/fft.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/fft.cc.o.d"
  "/root/repo/src/phy/interleaver.cc" "CMakeFiles/wilis.dir/src/phy/interleaver.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/interleaver.cc.o.d"
  "/root/repo/src/phy/mapper.cc" "CMakeFiles/wilis.dir/src/phy/mapper.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/mapper.cc.o.d"
  "/root/repo/src/phy/modulation.cc" "CMakeFiles/wilis.dir/src/phy/modulation.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/modulation.cc.o.d"
  "/root/repo/src/phy/ofdm_rx.cc" "CMakeFiles/wilis.dir/src/phy/ofdm_rx.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/ofdm_rx.cc.o.d"
  "/root/repo/src/phy/ofdm_symbol.cc" "CMakeFiles/wilis.dir/src/phy/ofdm_symbol.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/ofdm_symbol.cc.o.d"
  "/root/repo/src/phy/ofdm_tx.cc" "CMakeFiles/wilis.dir/src/phy/ofdm_tx.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/ofdm_tx.cc.o.d"
  "/root/repo/src/phy/plcp.cc" "CMakeFiles/wilis.dir/src/phy/plcp.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/plcp.cc.o.d"
  "/root/repo/src/phy/preamble.cc" "CMakeFiles/wilis.dir/src/phy/preamble.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/preamble.cc.o.d"
  "/root/repo/src/phy/puncture.cc" "CMakeFiles/wilis.dir/src/phy/puncture.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/puncture.cc.o.d"
  "/root/repo/src/phy/scrambler.cc" "CMakeFiles/wilis.dir/src/phy/scrambler.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/scrambler.cc.o.d"
  "/root/repo/src/phy/sync.cc" "CMakeFiles/wilis.dir/src/phy/sync.cc.o" "gcc" "CMakeFiles/wilis.dir/src/phy/sync.cc.o.d"
  "/root/repo/src/platform/cosim.cc" "CMakeFiles/wilis.dir/src/platform/cosim.cc.o" "gcc" "CMakeFiles/wilis.dir/src/platform/cosim.cc.o.d"
  "/root/repo/src/platform/link.cc" "CMakeFiles/wilis.dir/src/platform/link.cc.o" "gcc" "CMakeFiles/wilis.dir/src/platform/link.cc.o.d"
  "/root/repo/src/sim/li_pipeline.cc" "CMakeFiles/wilis.dir/src/sim/li_pipeline.cc.o" "gcc" "CMakeFiles/wilis.dir/src/sim/li_pipeline.cc.o.d"
  "/root/repo/src/sim/li_transceiver.cc" "CMakeFiles/wilis.dir/src/sim/li_transceiver.cc.o" "gcc" "CMakeFiles/wilis.dir/src/sim/li_transceiver.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "CMakeFiles/wilis.dir/src/sim/scenario.cc.o" "gcc" "CMakeFiles/wilis.dir/src/sim/scenario.cc.o.d"
  "/root/repo/src/sim/scenario_grid.cc" "CMakeFiles/wilis.dir/src/sim/scenario_grid.cc.o" "gcc" "CMakeFiles/wilis.dir/src/sim/scenario_grid.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "CMakeFiles/wilis.dir/src/sim/sweep.cc.o" "gcc" "CMakeFiles/wilis.dir/src/sim/sweep.cc.o.d"
  "/root/repo/src/sim/testbench.cc" "CMakeFiles/wilis.dir/src/sim/testbench.cc.o" "gcc" "CMakeFiles/wilis.dir/src/sim/testbench.cc.o.d"
  "/root/repo/src/softphy/ber_estimator.cc" "CMakeFiles/wilis.dir/src/softphy/ber_estimator.cc.o" "gcc" "CMakeFiles/wilis.dir/src/softphy/ber_estimator.cc.o.d"
  "/root/repo/src/softphy/calibration.cc" "CMakeFiles/wilis.dir/src/softphy/calibration.cc.o" "gcc" "CMakeFiles/wilis.dir/src/softphy/calibration.cc.o.d"
  "/root/repo/src/softphy/softphy.cc" "CMakeFiles/wilis.dir/src/softphy/softphy.cc.o" "gcc" "CMakeFiles/wilis.dir/src/softphy/softphy.cc.o.d"
  "/root/repo/src/synth/area.cc" "CMakeFiles/wilis.dir/src/synth/area.cc.o" "gcc" "CMakeFiles/wilis.dir/src/synth/area.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
