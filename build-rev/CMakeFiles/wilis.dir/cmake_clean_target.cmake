file(REMOVE_RECURSE
  "libwilis.a"
)
