file(REMOVE_RECURSE
  "CMakeFiles/test_puncture.dir/tests/test_puncture.cc.o"
  "CMakeFiles/test_puncture.dir/tests/test_puncture.cc.o.d"
  "test_puncture"
  "test_puncture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_puncture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
