# Empty dependencies file for test_puncture.
# This may be replaced when dependencies are built.
