file(REMOVE_RECURSE
  "CMakeFiles/test_scrambler.dir/tests/test_scrambler.cc.o"
  "CMakeFiles/test_scrambler.dir/tests/test_scrambler.cc.o.d"
  "test_scrambler"
  "test_scrambler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scrambler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
