# Empty dependencies file for test_scrambler.
# This may be replaced when dependencies are built.
