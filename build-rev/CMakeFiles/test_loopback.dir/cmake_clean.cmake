file(REMOVE_RECURSE
  "CMakeFiles/test_loopback.dir/tests/test_loopback.cc.o"
  "CMakeFiles/test_loopback.dir/tests/test_loopback.cc.o.d"
  "test_loopback"
  "test_loopback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loopback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
