file(REMOVE_RECURSE
  "CMakeFiles/abl_channel_threads.dir/bench/abl_channel_threads.cc.o"
  "CMakeFiles/abl_channel_threads.dir/bench/abl_channel_threads.cc.o.d"
  "abl_channel_threads"
  "abl_channel_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_channel_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
