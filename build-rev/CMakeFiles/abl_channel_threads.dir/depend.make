# Empty dependencies file for abl_channel_threads.
# This may be replaced when dependencies are built.
