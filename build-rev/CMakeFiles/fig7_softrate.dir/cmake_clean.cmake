file(REMOVE_RECURSE
  "CMakeFiles/fig7_softrate.dir/bench/fig7_softrate.cc.o"
  "CMakeFiles/fig7_softrate.dir/bench/fig7_softrate.cc.o.d"
  "fig7_softrate"
  "fig7_softrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_softrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
