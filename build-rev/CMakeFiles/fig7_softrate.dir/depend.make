# Empty dependencies file for fig7_softrate.
# This may be replaced when dependencies are built.
