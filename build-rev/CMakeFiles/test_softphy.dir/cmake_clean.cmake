file(REMOVE_RECURSE
  "CMakeFiles/test_softphy.dir/tests/test_softphy.cc.o"
  "CMakeFiles/test_softphy.dir/tests/test_softphy.cc.o.d"
  "test_softphy"
  "test_softphy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softphy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
