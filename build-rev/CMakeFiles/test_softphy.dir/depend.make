# Empty dependencies file for test_softphy.
# This may be replaced when dependencies are built.
