#include "decode/bcjr.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "decode/trellis_kernels.hh"

namespace wilis {
namespace decode {

BcjrDecoder::BcjrDecoder(const li::Config &cfg)
    : block_len(static_cast<int>(cfg.getInt("block_len", 64))),
      logmap(cfg.getBool("logmap", false))
{
    wilis_assert(block_len >= phy::ConvCode::kConstraint,
                 "BCJR block length %d too short", block_len);
}

void
BcjrDecoder::decodeInto(SoftView soft, std::span<SoftDecision> out)
{
    wilis_assert(soft.size() % 2 == 0, "odd soft stream length %zu",
                 soft.size());
    wilis_assert(out.size() == soft.size() / 2,
                 "decision span size %zu for %zu trellis steps",
                 out.size(), soft.size() / 2);
    if (logmap)
        decodeLogMap(soft, out);
    else
        decodeMaxLog(soft, out);
}

void
BcjrDecoder::decodeMaxLog(SoftView soft, std::span<SoftDecision> out)
{
    const int steps = static_cast<int>(soft.size() / 2);

    // --- Forward PMU: alpha for every step boundary.
    std::vector<std::int32_t> &alpha = alpha_i;
    alpha.assign((static_cast<size_t>(steps) + 1) * kStates,
                 kMetricFloor);
    alpha[0] = 0; // trellis starts in state 0
    std::int32_t bm[4];
    std::uint64_t dummy;
    for (int j = 0; j < steps; ++j) {
        branchMetrics(soft[2 * static_cast<size_t>(j)],
                      soft[2 * static_cast<size_t>(j) + 1], bm);
        std::int32_t *a_j = &alpha[static_cast<size_t>(j) * kStates];
        std::int32_t *a_j1 =
            &alpha[(static_cast<size_t>(j) + 1) * kStates];
        acsForward(a_j, bm, a_j1, dummy, nullptr);
        normalizeMetrics(a_j1);
    }

    // --- Sliding-window backward passes + decision unit.
    std::array<std::int32_t, kStates> beta;
    std::array<std::int32_t, kStates> beta_prev;

    auto exact_end = [](std::array<std::int32_t, kStates> &b) {
        b.fill(kMetricFloor);
        b[0] = 0; // terminated trellis ends in state 0
    };

    const int n = block_len;
    const int last_start = ((steps - 1) / n) * n;
    for (int w = last_start; w >= 0; w -= n) {
        const int w_end = std::min(w + n, steps);

        // Entry metric for this window's backward pass.
        if (w_end == steps) {
            exact_end(beta);
        } else {
            // Provisional backward PMU over the following block,
            // seeded with the "uncertain" (uniform) metric.
            const int p_end = std::min(w_end + n, steps);
            if (p_end == steps)
                exact_end(beta);
            else
                beta.fill(0);
            for (int j = p_end - 1; j >= w_end; --j) {
                branchMetrics(soft[2 * static_cast<size_t>(j)],
                              soft[2 * static_cast<size_t>(j) + 1],
                              bm);
                acsBackward(beta.data(), bm, beta_prev.data());
                beta = beta_prev;
                normalizeMetrics(beta.data());
            }
        }

        // Exact backward pass over [w, w_end) with the decision unit:
        // at step j, beta holds the metrics for boundary j+1.
        for (int j = w_end - 1; j >= w; --j) {
            branchMetrics(soft[2 * static_cast<size_t>(j)],
                          soft[2 * static_cast<size_t>(j) + 1], bm);
            const std::int32_t *a_j =
                &alpha[static_cast<size_t>(j) * kStates];
            std::int32_t best1 = kMetricFloor;
            std::int32_t best0 = kMetricFloor;
            bcjrDecision(a_j, bm, beta.data(), best0, best1);
            std::int32_t llr = best1 - best0;
            out[static_cast<size_t>(j)].bit = llr > 0 ? 1 : 0;
            out[static_cast<size_t>(j)].llr =
                std::abs(static_cast<double>(llr));

            acsBackward(beta.data(), bm, beta_prev.data());
            beta = beta_prev;
            normalizeMetrics(beta.data());
        }
    }
}

void
BcjrDecoder::decodeLogMap(SoftView soft, std::span<SoftDecision> out)
{
    const int steps = static_cast<int>(soft.size() / 2);
    const TrellisTables &t = TrellisTables::get();
    const double kFloor = -1e18;

    auto maxstar = [](double a, double b) {
        double mx = std::max(a, b);
        if (mx <= -1e17)
            return mx;
        return mx + std::log1p(std::exp(-std::abs(a - b)));
    };

    // Branch metrics as correlations of the (integer) soft inputs.
    auto gamma = [&](int j, int o) {
        double la0 = static_cast<double>(soft[2 * static_cast<size_t>(j)]);
        double la1 =
            static_cast<double>(soft[2 * static_cast<size_t>(j) + 1]);
        return ((o & 1) ? la0 : -la0) + ((o & 2) ? la1 : -la1);
    };

    std::vector<double> &alpha = alpha_d;
    alpha.assign((static_cast<size_t>(steps) + 1) * kStates, kFloor);
    alpha[0] = 0.0;
    for (int j = 0; j < steps; ++j) {
        double *a_j = &alpha[static_cast<size_t>(j) * kStates];
        double *a_j1 = &alpha[(static_cast<size_t>(j) + 1) * kStates];
        for (int s = 0; s < kStates; ++s) {
            int p0 = phy::ConvCode::predecessor(s, 0);
            int p1 = phy::ConvCode::predecessor(s, 1);
            double m0 = a_j[p0] + gamma(j, t.revOut[s][0]);
            double m1 = a_j[p1] + gamma(j, t.revOut[s][1]);
            a_j1[s] = maxstar(m0, m1);
        }
        double mx = *std::max_element(a_j1, a_j1 + kStates);
        for (int s = 0; s < kStates; ++s)
            a_j1[s] = std::max(a_j1[s] - mx, kFloor);
    }

    std::array<double, kStates> beta;
    std::array<double, kStates> beta_prev;

    auto exact_end = [&](std::array<double, kStates> &b) {
        b.fill(kFloor);
        b[0] = 0.0;
    };
    auto beta_step = [&](int j) {
        for (int s = 0; s < kStates; ++s) {
            double m0 = beta[t.fwdNext[s][0]] + gamma(j, t.fwdOut[s][0]);
            double m1 = beta[t.fwdNext[s][1]] + gamma(j, t.fwdOut[s][1]);
            beta_prev[s] = maxstar(m0, m1);
        }
        double mx = *std::max_element(beta_prev.begin(),
                                      beta_prev.end());
        for (int s = 0; s < kStates; ++s)
            beta[s] = std::max(beta_prev[s] - mx, kFloor);
    };

    const int n = block_len;
    const int last_start = ((steps - 1) / n) * n;
    for (int w = last_start; w >= 0; w -= n) {
        const int w_end = std::min(w + n, steps);
        if (w_end == steps) {
            exact_end(beta);
        } else {
            const int p_end = std::min(w_end + n, steps);
            if (p_end == steps)
                exact_end(beta);
            else
                beta.fill(0.0);
            for (int j = p_end - 1; j >= w_end; --j)
                beta_step(j);
        }

        for (int j = w_end - 1; j >= w; --j) {
            const double *a_j =
                &alpha[static_cast<size_t>(j) * kStates];
            double acc1 = kFloor;
            double acc0 = kFloor;
            for (int s = 0; s < kStates; ++s) {
                double c0 = a_j[s] + gamma(j, t.fwdOut[s][0]) +
                            beta[t.fwdNext[s][0]];
                double c1 = a_j[s] + gamma(j, t.fwdOut[s][1]) +
                            beta[t.fwdNext[s][1]];
                acc0 = maxstar(acc0, c0);
                acc1 = maxstar(acc1, c1);
            }
            double llr = acc1 - acc0;
            out[static_cast<size_t>(j)].bit = llr > 0 ? 1 : 0;
            out[static_cast<size_t>(j)].llr = std::abs(llr);
            beta_step(j);
        }
    }
}

int
BcjrDecoder::pipelineLatencyCycles() const
{
    // Section 4.3.2: two reversal buffers of size n dominate, plus
    // pipeline and FIFO stages: 2n + 7.
    return 2 * block_len + 7;
}

} // namespace decode
} // namespace wilis
