/**
 * @file
 * Hard-output soft-input Viterbi decoder: the baseline commodity
 * 802.11a/g decoder of the paper's Figure 8 comparison. Produces no
 * usable LLR hints (llr = 0 for every bit).
 */

#ifndef WILIS_DECODE_VITERBI_HH
#define WILIS_DECODE_VITERBI_HH

#include "decode/soft_decoder.hh"

namespace wilis {
namespace decode {

/** Block Viterbi decoder over the terminated K=7 trellis. */
class ViterbiDecoder : public SoftDecoder
{
  public:
    /**
     * Config keys:
     *  - traceback_len: modeled hardware traceback window (default
     *    64); affects only the latency/area model, the software
     *    kernel always tracebacks the full block.
     */
    explicit ViterbiDecoder(const li::Config &cfg = li::Config());

    std::string name() const override { return "viterbi"; }
    bool producesSoftOutput() const override { return false; }
    void decodeInto(SoftView soft,
                    std::span<SoftDecision> out) override;
    int pipelineLatencyCycles() const override;

    /** Modeled traceback window length. */
    int tracebackLen() const { return tb_len; }

  private:
    int tb_len;
    /** Survivor-choice scratch, reused across blocks. */
    std::vector<std::uint64_t> choices;
};

} // namespace decode
} // namespace wilis

#endif // WILIS_DECODE_VITERBI_HH
