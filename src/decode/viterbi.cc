#include "decode/viterbi.hh"

#include <array>

#include "common/logging.hh"
#include "decode/trellis_kernels.hh"

namespace wilis {
namespace decode {

ViterbiDecoder::ViterbiDecoder(const li::Config &cfg)
    : tb_len(static_cast<int>(cfg.getInt("traceback_len", 64)))
{
    wilis_assert(tb_len >= phy::ConvCode::kConstraint,
                 "traceback length %d too short", tb_len);
}

void
ViterbiDecoder::decodeInto(SoftView soft, std::span<SoftDecision> out)
{
    wilis_assert(soft.size() % 2 == 0, "odd soft stream length %zu",
                 soft.size());
    const size_t steps = soft.size() / 2;
    wilis_assert(out.size() == steps,
                 "decision span size %zu for %zu trellis steps",
                 out.size(), steps);

    std::array<std::int32_t, kStates> pm;
    std::array<std::int32_t, kStates> pm_next;
    pm.fill(kMetricFloor);
    pm[0] = 0;

    choices.resize(steps);
    std::int32_t bm[4];

    for (size_t j = 0; j < steps; ++j) {
        branchMetrics(soft[2 * j], soft[2 * j + 1], bm);
        acsForward(pm.data(), bm, pm_next.data(), choices[j], nullptr);
        pm = pm_next;
        normalizeMetrics(pm.data());
    }

    // Terminated trellis: trace back from state 0.
    int state = 0;
    for (size_t j = steps; j-- > 0;) {
        out[j].bit = static_cast<Bit>(phy::ConvCode::inputOf(state));
        out[j].llr = 0.0;
        int b = static_cast<int>((choices[j] >> state) & 1);
        state = phy::ConvCode::predecessor(state, b);
    }
}

int
ViterbiDecoder::pipelineLatencyCycles() const
{
    // BMU (1) + PMU (1) + traceback window + 3 connecting FIFOs of
    // depth 2 (section 4.3.1's accounting, minus the SOVA-only
    // second traceback unit and its FIFOs).
    return tb_len + 2 + 6;
}

} // namespace decode
} // namespace wilis
