/**
 * @file
 * Common interface for the convolutional decoders (hard Viterbi,
 * SOVA, BCJR). Implementations are registered with the plug-n-play
 * registry under the names "viterbi", "sova", "bcjr" and
 * "bcjr-logmap", so pipelines select a microarchitecture purely by
 * configuration -- the property WiLIS section 2 ("Plug-n-Play")
 * advertises.
 */

#ifndef WILIS_DECODE_SOFT_DECODER_HH
#define WILIS_DECODE_SOFT_DECODER_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "li/config.hh"
#include "li/registry.hh"

namespace wilis {
namespace decode {

/**
 * Block decoder for the terminated K=7 rate-1/2 802.11a code.
 *
 * Input is a depunctured rate-1/2 soft stream: two quantized soft
 * values per trellis step, positive favouring coded bit = 1, zero
 * meaning erasure. The trellis is assumed to start and end in state 0
 * (the encoder appends tail bits). decodeBlock() returns one
 * SoftDecision per trellis step, including the tail steps; callers
 * strip the tail.
 */
class SoftDecoder
{
  public:
    /** Virtual destructor for registry-owned instances. */
    virtual ~SoftDecoder() = default;

    /** Implementation name (matches the registry key). */
    virtual std::string name() const = 0;

    /** True if llr hints are meaningful (false for hard Viterbi). */
    virtual bool producesSoftOutput() const = 0;

    /**
     * Decode one terminated block into caller-owned storage (the
     * zero-copy pipeline's entry point).
     * @param soft 2*T soft values for a T-step trellis.
     * @param out  Exactly T decision slots.
     *
     * Implementations keep their metric scratch in members, so a
     * warmed-up decoder performs no heap allocations per block.
     */
    virtual void decodeInto(SoftView soft,
                            std::span<SoftDecision> out) = 0;

    /**
     * Convenience form: decode one terminated block into a fresh
     * vector of T soft decisions.
     */
    std::vector<SoftDecision>
    decodeBlock(const SoftVec &soft)
    {
        std::vector<SoftDecision> out(soft.size() / 2);
        decodeInto(SoftView(soft), std::span<SoftDecision>(out));
        return out;
    }

    /**
     * Decode latency of the modeled hardware pipeline, in cycles of
     * the decoder clock (section 4.3: SOVA l+k+12, BCJR 2n+7).
     */
    virtual int pipelineLatencyCycles() const = 0;
};

/** Shorthand for the decoder plug-n-play registry. */
using DecoderRegistry = li::Registry<SoftDecoder>;

/** Create a decoder by registry name. */
std::unique_ptr<SoftDecoder> makeDecoder(
    const std::string &name, const li::Config &cfg = li::Config());

/**
 * Force-link the decoder implementations so their static registry
 * entries exist even when nothing else references the object files.
 */
void linkDecoders();

} // namespace decode
} // namespace wilis

#endif // WILIS_DECODE_SOFT_DECODER_HH
