#include "decode/trellis_kernels.hh"

#include "common/kernels.hh"
#include "common/logging.hh"

namespace wilis {
namespace decode {

const TrellisTables &
TrellisTables::get()
{
    static const TrellisTables tables = [] {
        TrellisTables t;
        const phy::ConvCode &code = phy::convCode();
        for (int s = 0; s < kStates; ++s) {
            for (int b = 0; b < 2; ++b) {
                int pred = phy::ConvCode::predecessor(s, b);
                int x = phy::ConvCode::inputOf(s);
                t.revOut[s][b] = static_cast<std::uint8_t>(
                    code.outputBits(pred, x));
            }
            for (int x = 0; x < 2; ++x) {
                t.fwdNext[s][x] =
                    static_cast<std::uint8_t>(code.nextState(s, x));
                t.fwdOut[s][x] =
                    static_cast<std::uint8_t>(code.outputBits(s, x));
            }
        }

        // Flat SIMD-friendly copies plus the butterfly-layout
        // assertions the vector ACS kernels rely on (see
        // common/kernels.hh): a shift-register code addresses
        // predecessors as adjacent even/odd pairs and forward
        // successors as half-offset duplicates.
        Flat &f = t.flat;
        for (int s = 0; s < kStates; ++s) {
            f.pred0[s] = phy::ConvCode::predecessor(s, 0);
            f.pred1[s] = phy::ConvCode::predecessor(s, 1);
            f.revOut0[s] = t.revOut[s][0];
            f.revOut1[s] = t.revOut[s][1];
            f.next0[s] = t.fwdNext[s][0];
            f.next1[s] = t.fwdNext[s][1];
            f.fwdOut0[s] = t.fwdOut[s][0];
            f.fwdOut1[s] = t.fwdOut[s][1];
            f.revOut0_16[s] =
                static_cast<std::int16_t>(t.revOut[s][0]);
            f.revOut1_16[s] =
                static_cast<std::int16_t>(t.revOut[s][1]);

            wilis_assert(f.pred0[s] == 2 * (s % (kStates / 2)) &&
                             f.pred1[s] == f.pred0[s] + 1,
                         "state %d breaks the predecessor butterfly",
                         s);
            wilis_assert(f.next0[s] == s / 2 &&
                             f.next1[s] == kStates / 2 + s / 2,
                         "state %d breaks the successor butterfly",
                         s);
        }
        return t;
    }();
    return tables;
}

const kernels::TrellisView &
TrellisTables::view()
{
    // Built against the final static storage of get() so the
    // pointers stay valid for the process lifetime.
    static const kernels::TrellisView v = [] {
        const Flat &f = get().flat;
        return kernels::TrellisView{
            kStates,   f.pred0,      f.pred1,      f.revOut0,
            f.revOut1, f.next0,      f.next1,      f.fwdOut0,
            f.fwdOut1, f.revOut0_16, f.revOut1_16,
        };
    }();
    return v;
}

void
acsForward(const std::int32_t pm_in[kStates], const std::int32_t bm[4],
           std::int32_t pm_out[kStates], std::uint64_t &choices,
           std::int32_t *delta)
{
    kernels::ops().acsForward(TrellisTables::view(), pm_in, bm,
                              pm_out, &choices, delta);
}

void
acsBackward(const std::int32_t beta_next[kStates],
            const std::int32_t bm[4], std::int32_t beta_out[kStates])
{
    kernels::ops().acsBackward(TrellisTables::view(), beta_next, bm,
                               beta_out);
}

void
bcjrDecision(const std::int32_t alpha[kStates],
             const std::int32_t bm[4],
             const std::int32_t beta[kStates], std::int32_t &best0,
             std::int32_t &best1)
{
    kernels::ops().bcjrDecision(TrellisTables::view(), alpha, bm,
                                beta, &best0, &best1);
}

void
normalizeMetrics(std::int32_t pm[kStates])
{
    kernels::ops().normalizeMetrics(pm, kStates, kMetricFloor / 2,
                                    kMetricFloor);
}

int
bestState(const std::int32_t pm[kStates])
{
    return kernels::ops().bestState(pm, kStates);
}

} // namespace decode
} // namespace wilis
