#include "decode/trellis_kernels.hh"

#include <algorithm>

namespace wilis {
namespace decode {

const TrellisTables &
TrellisTables::get()
{
    static const TrellisTables tables = [] {
        TrellisTables t;
        const phy::ConvCode &code = phy::convCode();
        for (int s = 0; s < kStates; ++s) {
            for (int b = 0; b < 2; ++b) {
                int pred = phy::ConvCode::predecessor(s, b);
                int x = phy::ConvCode::inputOf(s);
                t.revOut[s][b] = static_cast<std::uint8_t>(
                    code.outputBits(pred, x));
            }
            for (int x = 0; x < 2; ++x) {
                t.fwdNext[s][x] =
                    static_cast<std::uint8_t>(code.nextState(s, x));
                t.fwdOut[s][x] =
                    static_cast<std::uint8_t>(code.outputBits(s, x));
            }
        }
        return t;
    }();
    return tables;
}

void
acsForward(const std::int32_t pm_in[kStates], const std::int32_t bm[4],
           std::int32_t pm_out[kStates], std::uint64_t &choices,
           std::int32_t *delta)
{
    const TrellisTables &t = TrellisTables::get();
    choices = 0;
    for (int s = 0; s < kStates; ++s) {
        int p0 = phy::ConvCode::predecessor(s, 0);
        int p1 = phy::ConvCode::predecessor(s, 1);
        std::int32_t m0 = pm_in[p0] + bm[t.revOut[s][0]];
        std::int32_t m1 = pm_in[p1] + bm[t.revOut[s][1]];
        if (m1 > m0) {
            pm_out[s] = m1;
            choices |= 1ull << s;
            if (delta)
                delta[s] = m1 - m0;
        } else {
            pm_out[s] = m0;
            if (delta)
                delta[s] = m0 - m1;
        }
    }
}

void
acsBackward(const std::int32_t beta_next[kStates],
            const std::int32_t bm[4], std::int32_t beta_out[kStates])
{
    const TrellisTables &t = TrellisTables::get();
    for (int s = 0; s < kStates; ++s) {
        std::int32_t m0 = beta_next[t.fwdNext[s][0]] +
                          bm[t.fwdOut[s][0]];
        std::int32_t m1 = beta_next[t.fwdNext[s][1]] +
                          bm[t.fwdOut[s][1]];
        beta_out[s] = std::max(m0, m1);
    }
}

void
normalizeMetrics(std::int32_t pm[kStates])
{
    std::int32_t mx = pm[0];
    for (int s = 1; s < kStates; ++s)
        mx = std::max(mx, pm[s]);
    for (int s = 0; s < kStates; ++s) {
        // Keep impossible states pinned at the floor.
        if (pm[s] <= kMetricFloor / 2)
            pm[s] = kMetricFloor;
        else
            pm[s] -= mx;
    }
}

int
bestState(const std::int32_t pm[kStates])
{
    int best = 0;
    for (int s = 1; s < kStates; ++s) {
        if (pm[s] > pm[best])
            best = s;
    }
    return best;
}

} // namespace decode
} // namespace wilis
