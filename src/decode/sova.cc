#include "decode/sova.hh"

#include <algorithm>
#include <array>
#include <limits>

#include "common/logging.hh"
#include "decode/trellis_kernels.hh"

namespace wilis {
namespace decode {

SovaDecoder::SovaDecoder(const li::Config &cfg)
    : tb_l(static_cast<int>(cfg.getInt("traceback_l", 64))),
      tb_k(static_cast<int>(cfg.getInt("traceback_k", 64)))
{
    wilis_assert(tb_l >= phy::ConvCode::kConstraint,
                 "traceback l=%d too short", tb_l);
    wilis_assert(tb_k >= 1, "traceback k=%d too short", tb_k);
}

void
SovaDecoder::decodeInto(SoftView soft, std::span<SoftDecision> out)
{
    wilis_assert(soft.size() % 2 == 0, "odd soft stream length %zu",
                 soft.size());
    const int steps = static_cast<int>(soft.size() / 2);
    wilis_assert(out.size() == static_cast<size_t>(steps),
                 "decision span size %zu for %d trellis steps",
                 out.size(), steps);

    // --- BMU + PMU sweep: record survivor choices, metric deltas and
    // the best state after each step.
    std::array<std::int32_t, kStates> pm;
    std::array<std::int32_t, kStates> pm_next;
    pm.fill(kMetricFloor);
    pm[0] = 0;

    choices.resize(static_cast<size_t>(steps));
    delta.resize(static_cast<size_t>(steps) * kStates);
    best_end.assign(static_cast<size_t>(steps) + 1, 0);
    std::int32_t bm[4];

    for (int j = 0; j < steps; ++j) {
        branchMetrics(soft[2 * static_cast<size_t>(j)],
                      soft[2 * static_cast<size_t>(j) + 1], bm);
        acsForward(pm.data(), bm, pm_next.data(),
                   choices[static_cast<size_t>(j)],
                   &delta[static_cast<size_t>(j) * kStates]);
        pm = pm_next;
        normalizeMetrics(pm.data());
        best_end[static_cast<size_t>(j) + 1] = bestState(pm.data());
    }

    auto survivor = [&](int state, int j) {
        int b = static_cast<int>(
            (choices[static_cast<size_t>(j)] >> state) & 1);
        return phy::ConvCode::predecessor(state, b);
    };

    // --- Sliding-window decisions (TU1 + TU2 of Figure 3).
    // One merge is examined per anchor time ta. TU1 locates the state
    // the ML path passes through at ta by tracing back tb_l steps from
    // the best state at ta + tb_l; near the terminated block end the
    // anchor is reached from the exactly known final state 0 instead.
    // The hard decision for step ta-1 is emitted at the anchor (the
    // windowed decision at lag l, as in hardware); too-short windows
    // therefore degrade the BER, exactly as a hardware traceback
    // would.
    rel.assign(static_cast<size_t>(steps),
               std::numeric_limits<std::int32_t>::max());

    for (int ta = 1; ta <= steps; ++ta) {
        int t = std::min(ta + tb_l, steps);
        int s = (t == steps) ? 0 : best_end[static_cast<size_t>(t)];
        for (int j = t - 1; j >= ta; --j)
            s = survivor(s, j);

        out[static_cast<size_t>(ta - 1)].bit =
            static_cast<Bit>(phy::ConvCode::inputOf(s));

        // Merge into state s at time ta: survivor vs competitor.
        int b = static_cast<int>(
            (choices[static_cast<size_t>(ta - 1)] >> s) & 1);
        std::int32_t dm =
            delta[static_cast<size_t>(ta - 1) * kStates + s];
        int s_best = phy::ConvCode::predecessor(s, b);
        int s_comp = phy::ConvCode::predecessor(s, 1 - b);

        // TU2: simultaneous traceback of both paths; wherever their
        // bit decisions differ, lower the soft decision to dm.
        const int j_lo = std::max(0, ta - 1 - tb_k);
        for (int j = ta - 2; j >= j_lo; --j) {
            if (s_best == s_comp)
                break; // paths merged; decisions identical onwards
            int bit_best = phy::ConvCode::inputOf(s_best);
            int bit_comp = phy::ConvCode::inputOf(s_comp);
            if (bit_best != bit_comp &&
                dm < rel[static_cast<size_t>(j)]) {
                rel[static_cast<size_t>(j)] = dm;
            }
            s_best = survivor(s_best, j);
            s_comp = survivor(s_comp, j);
        }
    }

    for (int j = 0; j < steps; ++j) {
        std::int32_t r = rel[static_cast<size_t>(j)];
        // Bits never contradicted within any window saturate at the
        // largest representable confidence.
        out[static_cast<size_t>(j)].llr =
            (r == std::numeric_limits<std::int32_t>::max())
                ? std::numeric_limits<double>::infinity()
                : static_cast<double>(r);
    }
}

int
SovaDecoder::pipelineLatencyCycles() const
{
    // Section 4.3.1: BMU (1) + PMU (1) + two traceback units (l, k)
    // + five 2-entry FIFOs (10) = l + k + 12.
    return tb_l + tb_k + 12;
}

} // namespace decode
} // namespace wilis
