/**
 * @file
 * Soft-Output Viterbi Algorithm decoder, modeled on the two-traceback
 * hardware architecture of Figure 3 (Berrou et al., ICC'93): a shared
 * BMU/PMU, a first traceback unit of length l that locates a reliable
 * state, and a second traceback unit of length k that performs two
 * simultaneous tracebacks (best and competitor path) and updates the
 * per-bit soft decisions with the Hagenauer rule
 * rel[j] = min(rel[j], delta) wherever the two paths' decisions
 * differ.
 *
 * Pipeline latency is l + k + 12 cycles (section 4.3.1): one cycle
 * each for BMU and PMU plus five 2-entry FIFOs.
 */

#ifndef WILIS_DECODE_SOVA_HH
#define WILIS_DECODE_SOVA_HH

#include "decode/soft_decoder.hh"

namespace wilis {
namespace decode {

/** SOVA decoder with the Figure 3 two-traceback microarchitecture. */
class SovaDecoder : public SoftDecoder
{
  public:
    /**
     * Config keys:
     *  - traceback_l: first traceback unit length (default 64)
     *  - traceback_k: second traceback unit length (default 64)
     */
    explicit SovaDecoder(const li::Config &cfg = li::Config());

    std::string name() const override { return "sova"; }
    bool producesSoftOutput() const override { return true; }
    void decodeInto(SoftView soft,
                    std::span<SoftDecision> out) override;
    int pipelineLatencyCycles() const override;

    /** First traceback unit length l. */
    int tracebackL() const { return tb_l; }
    /** Second traceback unit length k. */
    int tracebackK() const { return tb_k; }

  private:
    int tb_l;
    int tb_k;
    // Per-block scratch, reused across blocks (no steady-state
    // allocations).
    std::vector<std::uint64_t> choices;
    std::vector<std::int32_t> delta;
    std::vector<int> best_end;
    std::vector<std::int32_t> rel;
};

} // namespace decode
} // namespace wilis

#endif // WILIS_DECODE_SOVA_HH
