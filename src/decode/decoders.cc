/**
 * @file
 * Decoder registry entries and factory helpers.
 */

#include "decode/soft_decoder.hh"

#include "decode/bcjr.hh"
#include "decode/sova.hh"
#include "decode/viterbi.hh"

namespace wilis {
namespace decode {

namespace {

/** BCJR with the logmap flag forced on, for registry purposes. */
class LogMapBcjrFactory
{
  public:
    static std::unique_ptr<SoftDecoder>
    make(const li::Config &cfg)
    {
        li::Config c = cfg;
        c.set("logmap", "true");
        return std::make_unique<BcjrDecoder>(c);
    }
};

const bool registered = [] {
    auto &reg = DecoderRegistry::global();
    reg.add("viterbi", [](const li::Config &cfg) {
        return std::unique_ptr<SoftDecoder>(
            std::make_unique<ViterbiDecoder>(cfg));
    });
    reg.add("sova", [](const li::Config &cfg) {
        return std::unique_ptr<SoftDecoder>(
            std::make_unique<SovaDecoder>(cfg));
    });
    reg.add("bcjr", [](const li::Config &cfg) {
        return std::unique_ptr<SoftDecoder>(
            std::make_unique<BcjrDecoder>(cfg));
    });
    reg.add("bcjr-logmap", LogMapBcjrFactory::make);
    return true;
}();

} // namespace

std::unique_ptr<SoftDecoder>
makeDecoder(const std::string &name, const li::Config &cfg)
{
    return DecoderRegistry::global().create(name, cfg);
}

void
linkDecoders()
{
    // Referencing `registered` pins this translation unit.
    (void)registered;
}

} // namespace decode
} // namespace wilis
