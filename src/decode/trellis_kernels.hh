/**
 * @file
 * Shared trellis kernels: the branch metric unit (BMU) and the
 * add-compare-select path metric update (PMU/ACS) used by Viterbi,
 * SOVA and BCJR alike -- the paper notes these components are common
 * to both soft decoders and differ only in path permutation and ACS
 * flavour (section 4.3).
 */

#ifndef WILIS_DECODE_TRELLIS_KERNELS_HH
#define WILIS_DECODE_TRELLIS_KERNELS_HH

#include <cstdint>

#include "common/kernels.hh"
#include "common/types.hh"
#include "phy/conv_code.hh"

namespace wilis {
namespace decode {

/** Number of trellis states. */
constexpr int kStates = phy::ConvCode::kStates;

/** Very negative path metric used for impossible states. */
constexpr std::int32_t kMetricFloor = INT32_MIN / 4;

/**
 * Precomputed per-state transition tables in both directions.
 * Singleton; derive everything from phy::convCode().
 */
struct TrellisTables {
    /**
     * Backward view: for arrival state s and predecessor choice b,
     * the 2-bit coded output (g0 in bit 0) of the transition
     * predecessor(s, b) -> s.
     */
    std::uint8_t revOut[kStates][2];
    /** Forward view: next state for (state, input). */
    std::uint8_t fwdNext[kStates][2];
    /** Forward view: 2-bit coded output for (state, input). */
    std::uint8_t fwdOut[kStates][2];

    /**
     * The same structure as flat i32/i16 arrays plus the
     * kernels::TrellisView over them, the form the SIMD kernel
     * backends consume (see common/kernels.hh). Building it asserts
     * the shift-register butterfly layout the vector ACS relies on.
     */
    struct Flat {
        /** Predecessor state per arrival state, choice 0 / 1. */
        std::int32_t pred0[kStates], pred1[kStates];
        /** Reverse-transition output index, choice 0 / 1. */
        std::int32_t revOut0[kStates], revOut1[kStates];
        /** Forward next state, input 0 / 1. */
        std::int32_t next0[kStates], next1[kStates];
        /** Forward-transition output index, input 0 / 1. */
        std::int32_t fwdOut0[kStates], fwdOut1[kStates];
        /** i16 copies of revOut0/revOut1 for the narrow ACS. */
        std::int16_t revOut0_16[kStates], revOut1_16[kStates];
    };
    /** The flat arrays kernels::TrellisView points into. */
    Flat flat;

    /** The process-wide tables. */
    static const TrellisTables &get();

    /** The kernel-layer view of the process-wide tables. */
    static const kernels::TrellisView &view();
};

/**
 * Branch metric unit: correlation metrics for the four possible coded
 * output pairs given the two received soft values. bm[o] is the
 * metric for output pair o (g0 in bit 0); larger means more likely.
 */
inline void
branchMetrics(SoftBit la0, SoftBit la1, std::int32_t bm[4])
{
    bm[0] = -la0 - la1;
    bm[1] = la0 - la1;
    bm[2] = -la0 + la1;
    bm[3] = la0 + la1;
}

/**
 * One add-compare-select step over all states (the PMU of Figure 3/4
 * in the forward direction).
 *
 * @param pm_in   Path metrics at time j (per state).
 * @param bm      Output of branchMetrics() for this step's soft pair.
 * @param pm_out  Path metrics at time j+1.
 * @param choices Bit s set if the surviving predecessor of arrival
 *                state s was predecessor(s, 1).
 * @param delta   If non-null, |winner - loser| metric difference per
 *                arrival state (the SOVA soft input).
 */
void acsForward(const std::int32_t pm_in[kStates],
                const std::int32_t bm[4],
                std::int32_t pm_out[kStates], std::uint64_t &choices,
                std::int32_t *delta);

/**
 * One backward path-metric step (the reverse-permutation PMU used by
 * BCJR): beta[j][s] = max over inputs x of (bm(out(s,x)) +
 * beta[j+1][next(s,x)]).
 */
void acsBackward(const std::int32_t beta_next[kStates],
                 const std::int32_t bm[4],
                 std::int32_t beta_out[kStates]);

/**
 * Max-log BCJR decision unit for one trellis step: folds
 * max(alpha[s] + bm[out(s,x)] + beta[next(s,x)]) over all states
 * into @p best0 / @p best1 (per input hypothesis x), which the
 * caller must pre-seed (typically with kMetricFloor).
 */
void bcjrDecision(const std::int32_t alpha[kStates],
                  const std::int32_t bm[4],
                  const std::int32_t beta[kStates],
                  std::int32_t &best0, std::int32_t &best1);

/** Subtract the maximum from @p pm so metrics stay bounded. */
void normalizeMetrics(std::int32_t pm[kStates]);

/** Index of the maximum path metric. */
int bestState(const std::int32_t pm[kStates]);

} // namespace decode
} // namespace wilis

#endif // WILIS_DECODE_TRELLIS_KERNELS_HH
