/**
 * @file
 * Sliding-window BCJR decoder (SW-BCJR, Benedetto et al.), modeled on
 * the streaming hardware pipeline of Figure 4: a forward PMU, a
 * provisional backward PMU that estimates the entry metric of the
 * *next* block from a default "uncertain" state, an exact backward
 * PMU over reversed blocks (the pair of reversal buffers), and a
 * decision unit that picks the most likely input bit per step. The
 * SoftPHY extension subtracts the best '1'-path and best '0'-path
 * metrics to obtain the LLR -- a single extra subtracter.
 *
 * Pipeline latency is 2n + 7 cycles for block size n (section 4.3.2);
 * the reversal buffers dominate.
 *
 * The default arithmetic is max-log (as in the hardware); a log-MAP
 * variant with the exact max* correction is provided as "bcjr-logmap"
 * for accuracy ablations.
 */

#ifndef WILIS_DECODE_BCJR_HH
#define WILIS_DECODE_BCJR_HH

#include "decode/soft_decoder.hh"

namespace wilis {
namespace decode {

/** Sliding-window BCJR decoder with the Figure 4 microarchitecture. */
class BcjrDecoder : public SoftDecoder
{
  public:
    /**
     * Config keys:
     *  - block_len: sliding-window / reversal-buffer size n (default
     *    64; the paper finds n >= 32 is required for reasonable
     *    performance).
     *  - logmap: use exact log-MAP (max*) arithmetic instead of
     *    max-log (default false).
     */
    explicit BcjrDecoder(const li::Config &cfg = li::Config());

    std::string name() const override
    {
        return logmap ? "bcjr-logmap" : "bcjr";
    }
    bool producesSoftOutput() const override { return true; }
    void decodeInto(SoftView soft,
                    std::span<SoftDecision> out) override;
    int pipelineLatencyCycles() const override;

    /** Sliding-window block size n. */
    int blockLen() const { return block_len; }
    /** True if running exact log-MAP arithmetic. */
    bool isLogMap() const { return logmap; }

  private:
    void decodeMaxLog(SoftView soft, std::span<SoftDecision> out);
    void decodeLogMap(SoftView soft, std::span<SoftDecision> out);

    int block_len;
    bool logmap;
    // Forward-metric scratch, reused across blocks (max-log uses the
    // integer lattice, log-MAP the double one).
    std::vector<std::int32_t> alpha_i;
    std::vector<double> alpha_d;
};

} // namespace decode
} // namespace wilis

#endif // WILIS_DECODE_BCJR_HH
