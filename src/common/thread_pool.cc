#include "common/thread_pool.hh"

#include <algorithm>

namespace wilis {

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0) {
        num_threads = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
    }
    workers.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lk(mtx);
        shutdown = true;
    }
    cv_work.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_generation = 0;
    MutexLock lk(mtx);
    for (;;) {
        // Explicit while-loop instead of a predicate lambda: the
        // thread-safety analysis checks a lambda as a separate
        // function, so guarded reads stay in this annotated body.
        while (!shutdown &&
               !(job != nullptr && generation != seen_generation))
            cv_work.wait(mtx);
        if (shutdown)
            return;
        seen_generation = generation;
        const auto *fn = job;
        while (next_chunk < total_chunks) {
            std::uint64_t chunk = next_chunk++;
            lk.unlock();
            (*fn)(chunk);
            lk.lock();
            if (++done_chunks == total_chunks)
                cv_done.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::uint64_t num_chunks,
                        const std::function<void(std::uint64_t)> &fn)
{
    if (num_chunks == 0)
        return;
    MutexLock lk(mtx);
    job = &fn;
    next_chunk = 0;
    total_chunks = num_chunks;
    done_chunks = 0;
    ++generation;
    cv_work.notify_all();

    // The calling thread helps out.
    while (next_chunk < total_chunks) {
        std::uint64_t chunk = next_chunk++;
        lk.unlock();
        fn(chunk);
        lk.lock();
        ++done_chunks;
    }
    while (done_chunks != total_chunks)
        cv_done.wait(mtx);
    job = nullptr;
}

} // namespace wilis
