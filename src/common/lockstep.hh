/**
 * @file
 * Lockstep worker team for slot-synchronous simulation loops.
 *
 * ThreadPool::parallelFor pays two condition-variable handshakes per
 * call (wake + join), so a slot loop that calls it twice per slot --
 * schedule phase, transmit phase -- spends four mutex round trips
 * per simulated slot. That fixed cost is what made the grid-3x3
 * 4-thread bench *slower* than the single-thread run. LockstepTeam
 * keeps its workers inside the slot loop for the whole run and
 * separates phases with a counter/generation barrier: a bounded spin
 * (cheap when each worker owns a core) that falls back to yielding
 * (so oversubscribed hosts -- CI runners, laptops -- make progress
 * instead of burning the shared core).
 *
 * Usage: run(body) executes body(worker) concurrently on size()
 * workers, the calling thread acting as worker 0; inside the body,
 * barrier() separates phases. Every worker must reach every
 * barrier() the same number of times, and a team must not be
 * re-entered while a run() is in flight (asserted in run()).
 *
 * Memory-ordering contract (this is what makes the barrier visible
 * to ThreadSanitizer without suppressions -- every synchronizing
 * access is an explicit std::atomic operation, never a plain read
 * polled in a loop):
 *
 *  - every arriver performs an acq_rel fetch_add on arrived_, so
 *    arrivers form a release/acquire chain through the counter and
 *    all pre-barrier writes happen-before the last arriver;
 *  - the last arriver resets arrived_ (relaxed: nobody reads it
 *    until after the generation bump orders the reset) and then
 *    release-increments generation_;
 *  - waiters spin on an acquire load of generation_, so the last
 *    arriver's accumulated history happens-before every waiter's
 *    return. Transitively, any pre-barrier write by any worker
 *    happens-before any post-barrier read by any worker, which is
 *    exactly the phase-separation the engines rely on.
 */

#ifndef WILIS_COMMON_LOCKSTEP_HH
#define WILIS_COMMON_LOCKSTEP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace wilis {

/** Fixed-size worker team synchronized by a phase barrier. */
class LockstepTeam
{
  public:
    /** @param num_workers Workers including the caller (min 1). */
    explicit LockstepTeam(int num_workers)
        : n_(num_workers < 1 ? 1 : num_workers),
          // Spinning only pays when every worker owns a hardware
          // thread; on an oversubscribed host the spinner is
          // stealing cycles from the worker it is waiting for.
          spin_iters_(static_cast<unsigned>(n_) <=
                              std::thread::hardware_concurrency()
                          ? kSpinIters
                          : 0)
    {}

    /** Teams are tied to their barrier state: not copyable. */
    LockstepTeam(const LockstepTeam &) = delete;
    /** Teams are tied to their barrier state: not copyable. */
    LockstepTeam &operator=(const LockstepTeam &) = delete;

    /** Number of workers, the calling thread included. */
    int size() const { return n_; }

    /**
     * Execute body(worker) for worker in [0, size()) concurrently;
     * the calling thread runs worker 0. Returns when every worker
     * has finished. Threads are spawned per run(), which is in the
     * noise for anything that iterates a slot loop inside the body.
     */
    void
    run(const std::function<void(int)> &body)
    {
        // Overlapping runs would share arrived_/generation_ and
        // deadlock or tear the barrier; catching the misuse here
        // turns a heisenbug into a deterministic panic.
        wilis_assert(!in_run_.exchange(true,
                                       std::memory_order_acq_rel),
                     "LockstepTeam::run() re-entered while a run "
                     "is in flight");
        if (n_ == 1) {
            body(0);
            in_run_.store(false, std::memory_order_release);
            return;
        }
        std::vector<std::thread> extras;
        extras.reserve(static_cast<size_t>(n_ - 1));
        for (int w = 1; w < n_; ++w)
            extras.emplace_back([&body, w] { body(w); });
        body(0);
        for (std::thread &t : extras)
            t.join();
        in_run_.store(false, std::memory_order_release);
    }

    /**
     * Wait until all size() workers arrive. The last arriver resets
     * the arrival counter before releasing the generation, so the
     * barrier is immediately reusable for the next phase.
     */
    void
    barrier()
    {
        if (n_ == 1)
            return;
        const std::uint64_t gen =
            generation_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            n_) {
            arrived_.store(0, std::memory_order_relaxed);
            generation_.fetch_add(1, std::memory_order_release);
            return;
        }
        int spins = 0;
        while (generation_.load(std::memory_order_acquire) == gen) {
            if (++spins > spin_iters_)
                std::this_thread::yield();
        }
    }

  private:
    /** Spins before conceding the core to whoever holds the work. */
    static constexpr int kSpinIters = 256;

    int n_;
    int spin_iters_;
    /** True while a run() is in flight (re-entry guard). */
    std::atomic<bool> in_run_{false};
    /** Workers arrived at the current barrier (acq_rel chain). */
    alignas(64) std::atomic<int> arrived_{0};
    /** Barrier phase number; release-bumped by the last arriver. */
    alignas(64) std::atomic<std::uint64_t> generation_{0};
};

} // namespace wilis

#endif // WILIS_COMMON_LOCKSTEP_HH
