/**
 * @file
 * Scalar instantiation of the kernel layer: the bit-exactness
 * reference every vector backend is held to. Compiled for the
 * baseline target with no vector flags.
 */

#define WILIS_SIMD_LEVEL 0
#include "common/kernels_impl.hh"

namespace wilis {
namespace kernels {
namespace detail {

const Ops *
opsScalar()
{
    return &simd_scalar::kOps;
}

} // namespace detail
} // namespace kernels
} // namespace wilis
