/**
 * @file
 * Random number generation for WiLIS.
 *
 * Two generators are provided:
 *  - SplitMix64: a fast sequential PRNG used for bulk bit/noise
 *    generation where replay is not required.
 *  - CounterRng: a counter-based (Philox-style) generator. Output is a
 *    pure function of (key, counter), which lets the SoftRate oracle
 *    replay *exactly* the same channel noise for every candidate rate
 *    (the paper's "pseudo-random noise model", section 4.4.2).
 *
 * GaussianSource layers Box-Muller on either generator to produce unit
 * normal deviates for the AWGN channel.
 */

#ifndef WILIS_COMMON_RANDOM_HH
#define WILIS_COMMON_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>

namespace wilis {

/** Fast 64-bit sequential PRNG (Steele et al., SplitMix64). */
class SplitMix64
{
  public:
    /** Seed the sequential stream. */
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** A single uniform random bit. */
    std::uint8_t nextBit() { return static_cast<std::uint8_t>(next() & 1); }

  private:
    std::uint64_t state;
};

/**
 * Counter-based generator: value = hash(key, counter). Stateless apart
 * from the key, so any (packet, sample) index can be regenerated
 * independently and in any order.
 */
class CounterRng
{
  public:
    /** Bind the generator to its stream key. */
    explicit CounterRng(std::uint64_t key_) : key(key_) {}

    /** Raw 64-bit output for a given counter value. */
    std::uint64_t
    at(std::uint64_t counter) const
    {
        // Two rounds of a strong 64-bit mix over key ^ counter blocks.
        std::uint64_t z = key + 0x9e3779b97f4a7c15ull * (counter + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z ^= key >> 32;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1) for a given counter value. */
    double
    doubleAt(std::uint64_t counter) const
    {
        return static_cast<double>(at(counter) >> 11) * 0x1.0p-53;
    }

    /** Derive a sub-generator key, e.g. per packet or per subcarrier. */
    CounterRng
    fork(std::uint64_t stream) const
    {
        return CounterRng(at(0xD1B54A32D192ED03ull ^ stream));
    }

  private:
    std::uint64_t key;
};

/**
 * Fill @p out with the canonical deterministic payload bit stream
 * for (seed, stream): bit i of stream s is
 * CounterRng(seed).fork(s).at(i) & 1. This is THE payload derivation
 * of the whole codebase -- sim::Testbench keys streams by packet
 * index and sim::NetworkSim by ARQ sequence number -- so replaying a
 * packet through a different harness regenerates identical bits.
 */
inline void
fillDeterministicBits(std::span<std::uint8_t> out,
                      std::uint64_t seed, std::uint64_t stream)
{
    CounterRng rng = CounterRng(seed).fork(stream);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint8_t>(rng.at(i) & 1);
}

/**
 * Unit-normal deviates via Box-Muller.
 *
 * The stateless pairAt() form is used by the replayable channel; the
 * stateful next() form (with caching of the second deviate) is used by
 * the bulk multi-threaded AWGN channel.
 */
class GaussianSource
{
  public:
    /** Seed the sequential (next()) stream. */
    explicit GaussianSource(std::uint64_t seed)
        : rng(seed), spare(0.0), haveSpare(false)
    {}

    /** Next unit-normal deviate (sequential, not replayable). */
    double
    next()
    {
        if (haveSpare) {
            haveSpare = false;
            return spare;
        }
        double u1 = rng.nextDouble();
        double u2 = rng.nextDouble();
        // Guard against log(0).
        if (u1 < 1e-300)
            u1 = 1e-300;
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 2.0 * std::numbers::pi * u2;
        spare = r * std::sin(theta);
        haveSpare = true;
        return r * std::cos(theta);
    }

    /**
     * Replayable pair of unit-normal deviates for a counter value.
     * Suitable for complex noise: one deviate per I/Q component.
     */
    static void
    pairAt(const CounterRng &rng, std::uint64_t counter, double &g0,
           double &g1)
    {
        double u1 = rng.doubleAt(2 * counter);
        double u2 = rng.doubleAt(2 * counter + 1);
        if (u1 < 1e-300)
            u1 = 1e-300;
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 2.0 * std::numbers::pi * u2;
        g0 = r * std::cos(theta);
        g1 = r * std::sin(theta);
    }

  private:
    SplitMix64 rng;
    double spare;
    bool haveSpare;
};

} // namespace wilis

#endif // WILIS_COMMON_RANDOM_HH
