#include "common/table.hh"

#include <cstdio>

#include "common/logging.hh"

namespace wilis {

Table::Table(std::vector<std::string> headers)
    : cols(std::move(headers))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    wilis_assert(cells.size() == cols.size(),
                 "row has %zu cells, table has %zu columns",
                 cells.size(), cols.size());
    rows.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(cols.size());
    for (size_t c = 0; c < cols.size(); ++c)
        widths[c] = cols[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line += std::string(widths[c] - row[c].size() + 2,
                                    ' ');
        }
        line += '\n';
        return line;
    };

    std::string out = render_row(cols);
    size_t total = 0;
    for (size_t c = 0; c < cols.size(); ++c)
        total += widths[c] + (c + 1 < cols.size() ? 2 : 0);
    out += std::string(total, '-') + '\n';
    for (const auto &row : rows)
        out += render_row(row);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace wilis
