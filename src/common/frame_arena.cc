#include "common/frame_arena.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wilis {

FrameArena::FrameArena(size_t initial_bytes_)
    : initial_bytes(std::max<size_t>(initial_bytes_, 64))
{}

size_t
FrameArena::capacity() const
{
    size_t total = 0;
    for (const auto &b : blocks)
        total += b.size;
    return total;
}

void
FrameArena::addBlock(size_t min_bytes)
{
    // Geometric growth keeps the number of warm-up allocations
    // logarithmic in the eventual frame footprint.
    size_t sz = blocks.empty() ? std::max(min_bytes, initial_bytes)
                               : std::max(min_bytes,
                                          blocks.back().size * 2);
    Block b;
    b.data = std::make_unique<std::byte[]>(sz);
    b.size = sz;
    blocks.push_back(std::move(b));
    ++block_allocs;
}

void *
FrameArena::allocBytes(size_t bytes, size_t align)
{
    wilis_assert(align != 0 && (align & (align - 1)) == 0,
                 "bad alignment %zu", align);
    if (blocks.empty())
        addBlock(bytes + align);
    for (;;) {
        Block &b = blocks[block_idx];
        size_t aligned = (offset + align - 1) & ~(align - 1);
        if (aligned + bytes <= b.size) {
            offset = aligned + bytes;
            bytes_used += bytes;
            high_water = std::max(high_water, bytes_used);
            return b.data.get() + aligned;
        }
        // Current block exhausted: move to (or create) the next one.
        if (block_idx + 1 == blocks.size())
            addBlock(bytes + align);
        ++block_idx;
        offset = 0;
    }
}

void
FrameArena::reset()
{
    if (blocks.size() > 1) {
        // The last frame spilled over several blocks. Replace them
        // with one block big enough for everything seen so far, so
        // subsequent frames bump inside a single block and never
        // allocate again.
        size_t total = capacity();
        blocks.clear();
        addBlock(total);
    }
    block_idx = 0;
    offset = 0;
    bytes_used = 0;
}

} // namespace wilis
