/**
 * @file
 * Versioned binary snapshot transport for checkpoint/resume of the
 * simulation state (ROADMAP item 1: a long campaign must be able to
 * stop mid-flight and resume *bit-identically*).
 *
 * Format: a fixed magic, a container format version, a caller
 * payload version, and a spec fingerprint string, followed by the
 * caller's raw little-endian fields. The reader validates all four
 * before a single payload byte is decoded, and every primitive read
 * is bounds-checked -- a truncated or mismatched file is fatal with
 * a named reason, never a silently corrupted resume.
 *
 * Layout discipline: the byte stream carries no type tags, so writer
 * and reader must agree field for field. Callers bracket logical
 * sections with marker() tags (cheap u32 guards) so a skew between
 * the two sides fails at the section boundary that introduced it,
 * not megabytes later. The engine-level serialization order is
 * canonical (global user id / cell index), which is what lets a
 * snapshot written by one multi-cell engine resume under the other
 * (docs/ARCHITECTURE.md, "Campaign layer").
 */

#ifndef WILIS_COMMON_SNAPSHOT_HH
#define WILIS_COMMON_SNAPSHOT_HH

#include <cstdint>
#include <string>

namespace wilis {

/** Append-only little-endian snapshot serializer. */
class SnapshotWriter
{
  public:
    /**
     * @param payload_version Caller's payload schema version.
     * @param fingerprint     Canonical description of the producing
     *                        spec; the reader refuses a file whose
     *                        fingerprint differs from the spec it
     *                        is asked to resume.
     */
    SnapshotWriter(std::uint32_t payload_version,
                   const std::string &fingerprint);

    /** Append one primitive. */
    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    /** Append a double by IEEE-754 bit pattern (exact). */
    void f64(double v);
    /** Append a length-prefixed string. */
    void str(const std::string &v);
    /** Append a section guard tag (see SnapshotReader::marker). */
    void marker(std::uint32_t tag);

    /**
     * Write the snapshot to @p path atomically (a temporary file in
     * the same directory, then rename), so a crash mid-checkpoint
     * leaves the previous snapshot intact. Fatal on I/O errors.
     */
    void save(const std::string &path) const;

    /** Serialized bytes (header included). */
    const std::string &bytes() const { return buf; }

  private:
    std::string buf;
};

/** Bounds-checked reader over a snapshot file or byte string. */
class SnapshotReader
{
  public:
    /**
     * Load @p path and validate magic, container version, payload
     * version and fingerprint (all fatal on mismatch, with the
     * offending value named).
     */
    SnapshotReader(const std::string &path,
                   std::uint32_t payload_version,
                   const std::string &fingerprint);

    /** Validate an in-memory snapshot (tests). */
    static SnapshotReader fromBytes(const std::string &bytes,
                                    std::uint32_t payload_version,
                                    const std::string &fingerprint);

    /** Read one primitive (fatal on truncation). */
    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    double f64();
    std::string str();
    /** Consume a section guard; fatal if @p tag does not match. */
    void marker(std::uint32_t tag);

    /** Assert the whole payload was consumed. */
    void done() const;

  private:
    SnapshotReader(std::string bytes, std::string origin,
                   std::uint32_t payload_version,
                   const std::string &fingerprint);

    void need(size_t n) const;

    std::string buf;
    std::string origin_;
    size_t pos = 0;
};

} // namespace wilis

#endif // WILIS_COMMON_SNAPSHOT_HH
