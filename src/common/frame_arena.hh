/**
 * @file
 * Per-frame bump allocator backing the zero-copy dataflow between the
 * PHY, channel, decoder, SoftPHY and MAC layers.
 *
 * Every per-packet buffer (padded info bits, coded stream, soft
 * metrics, time-domain samples, decoder decisions...) is carved out
 * of one FrameArena owned by the packet driver (sim::Testbench, the
 * sweep harness, or a bench). The arena hands out std::span views
 * into its blocks; reset() rewinds it for the next packet while
 * keeping the memory, so after a one-packet warm-up the entire
 * transmit -> channel -> receive -> decode flow performs no heap
 * allocations at all. That is what lets a scenario-grid sweep push
 * millions of packets per worker thread without touching the
 * allocator (and without allocator contention across threads: one
 * arena per worker).
 */

#ifndef WILIS_COMMON_FRAME_ARENA_HH
#define WILIS_COMMON_FRAME_ARENA_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace wilis {

/** Growable bump allocator with per-frame reset. */
class FrameArena
{
  public:
    /**
     * @param initial_bytes Capacity of the first block. The block is
     * allocated lazily on first use, so unused arenas (e.g. the
     * legacy-API fallbacks inside tx/rx) cost nothing.
     */
    explicit FrameArena(size_t initial_bytes = kDefaultBytes);

    /** Arenas are move-only: views into a copy would be ambiguous. */
    FrameArena(const FrameArena &) = delete;
    /** Arenas are move-only: views into a copy would be ambiguous. */
    FrameArena &operator=(const FrameArena &) = delete;
    /** Moving transfers the blocks; outstanding views stay valid. */
    FrameArena(FrameArena &&) = default;
    /** Moving transfers the blocks; outstanding views stay valid. */
    FrameArena &operator=(FrameArena &&) = default;

    /**
     * Allocate an uninitialized span of @p count elements. The view
     * stays valid until the next reset(); T must be trivially
     * destructible (no destructors ever run).
     */
    template <typename T>
    std::span<T>
    alloc(size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena types must be trivially destructible");
        void *p = allocBytes(count * sizeof(T), alignof(T));
        return {static_cast<T *>(p), count};
    }

    /** Allocate a copy of @p src. */
    template <typename T>
    std::span<T>
    dup(std::span<const T> src)
    {
        std::span<T> s = alloc<T>(src.size());
        std::copy(src.begin(), src.end(), s.begin());
        return s;
    }

    /**
     * Rewind for the next frame. All outstanding spans become
     * invalid. If the previous frame overflowed into extra blocks,
     * they are coalesced into one block sized for the whole frame, so
     * a steady-state workload settles to zero allocations per frame.
     */
    void reset();

    /** Bytes handed out since the last reset (excluding padding). */
    size_t bytesUsed() const { return bytes_used; }

    /** Total bytes reserved across all blocks. */
    size_t capacity() const;

    /** Largest bytesUsed() observed over any frame. */
    size_t highWater() const { return high_water; }

    /**
     * Number of blocks ever requested from the heap. Stable across
     * frames once the arena has warmed up -- tests assert this to
     * prove the hot path is allocation-free.
     */
    std::uint64_t blockAllocations() const { return block_allocs; }

    /** Default first-block capacity (64 KiB). */
    static constexpr size_t kDefaultBytes = 1 << 16;

  private:
    struct Block {
        std::unique_ptr<std::byte[]> data;
        size_t size = 0;
    };

    void *allocBytes(size_t bytes, size_t align);
    void addBlock(size_t min_bytes);

    std::vector<Block> blocks;
    size_t initial_bytes;   // first-block size hint
    size_t block_idx = 0;   // block currently bumping
    size_t offset = 0;      // bump position within that block
    size_t bytes_used = 0;
    size_t high_water = 0;
    std::uint64_t block_allocs = 0;
};

/**
 * Per-packet dataflow context threaded through the transmitter,
 * channel, receiver, decoder and MAC hooks. Today it carries the
 * arena that owns every intermediate buffer of the frame; it is the
 * extension point for future per-frame metadata (timestamps,
 * SoftPHY annotations, trace sinks) without another signature churn.
 */
struct FrameContext {
    /** Bind the context to the arena owning this frame's buffers. */
    explicit FrameContext(FrameArena &arena_) : arena(arena_) {}

    /** The arena every intermediate buffer is carved from. */
    FrameArena &arena;
};

} // namespace wilis

#endif // WILIS_COMMON_FRAME_ARENA_HH
