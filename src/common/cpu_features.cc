#include "common/cpu_features.hh"

namespace wilis {
namespace cpu {

namespace {

struct Features {
    bool sse42 = false;
    bool avx2 = false;
};

Features
detect()
{
    Features f;
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports consults CPUID (and XGETBV for AVX2's
    // OS-support bit), so a binary carrying AVX2 kernels still runs
    // correctly on older silicon -- it just never selects them.
    __builtin_cpu_init();
    f.sse42 = __builtin_cpu_supports("sse4.2");
    f.avx2 = __builtin_cpu_supports("avx2");
#endif
    return f;
}

const Features &
features()
{
    static const Features f = detect();
    return f;
}

} // namespace

bool
hasSse42()
{
    return features().sse42;
}

bool
hasAvx2()
{
    return features().avx2;
}

std::string
featureString()
{
    std::string s;
    if (hasSse42())
        s += "sse4.2";
    if (hasAvx2())
        s += s.empty() ? "avx2" : " avx2";
    if (s.empty())
        s = "baseline";
    return s;
}

} // namespace cpu
} // namespace wilis
