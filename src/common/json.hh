/**
 * @file
 * Minimal JSON support for machine-readable reports: an ordered,
 * deterministic writer (the emission backend of bench::JsonReport
 * and the campaign RunReport) and a strict recursive-descent parser
 * used by the campaign layer to merge per-shard reports.
 *
 * Determinism contract: the writer emits members in insertion order
 * with a fixed layout (2-space indent, one member per line), and the
 * parser preserves both member order and the *raw text* of numbers,
 * so a parse -> re-emit cycle of numeric state is byte-exact as long
 * as the emitter prints each number the same way (the campaign
 * serializes doubles with "%.17g", which round-trips IEEE doubles
 * losslessly through strtod).
 */

#ifndef WILIS_COMMON_JSON_HH
#define WILIS_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wilis {
namespace json {

/** Escape a string for embedding in a JSON string literal. */
std::string escape(const std::string &s);

/**
 * Streaming JSON writer with automatic comma/indent management.
 * Members appear exactly in call order -- the stable-key-order half
 * of the report determinism contract. Misuse (a value with no
 * pending key inside an object, unbalanced end calls) is a panic.
 */
class JsonWriter
{
  public:
    JsonWriter() = default;

    /** Open the root or a nested object (after key() inside one). */
    JsonWriter &beginObject();
    /** Close the innermost object. */
    JsonWriter &endObject();
    /** Open an array value. */
    JsonWriter &beginArray();
    /** Close the innermost array. */
    JsonWriter &endArray();

    /** Name the next member of the open object. */
    JsonWriter &key(const std::string &name);

    /** String value (escaped). */
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    /** Integer values (emitted exactly). */
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    /** Boolean value. */
    JsonWriter &valueBool(bool v);
    /**
     * Double value via printf @p fmt. The default "%.17g" is the
     * lossless IEEE-754 round-trip form the campaign merge relies
     * on; display-oriented writers may pass "%.6g".
     */
    JsonWriter &valueDouble(double v, const char *fmt = "%.17g");
    /** Pre-formatted token emitted verbatim (numbers, true/false). */
    JsonWriter &valueRaw(const std::string &token);

    /** Finished document (must be balanced; trailing newline). */
    const std::string &str() const;

  private:
    void beforeValue();
    void newlineIndent();

    std::string out;
    // One frame per open container: 'o' (object) / 'a' (array),
    // plus the number of values already emitted in it.
    std::vector<std::pair<char, int>> stack;
    bool keyPending = false;
    bool rootDone = false;
};

/**
 * Parsed JSON value. Objects keep member order; numbers keep their
 * raw source text (see the file comment for why). All accessors are
 * fatal on kind mismatch or malformed numeric text: the parser's
 * single caller is the campaign merge, where a malformed shard
 * report must stop the run, not corrupt it.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /** Parse a complete JSON document (fatal on any syntax error). */
    static JsonValue parse(const std::string &text);
    /** Parse the JSON document in file @p path (fatal if unreadable). */
    static JsonValue parseFile(const std::string &path);

    /** Value kind. */
    Kind kind() const { return kind_; }

    /** Boolean value. */
    bool asBool() const;
    /** Raw source text of a number. */
    const std::string &raw() const;
    /** Number as double (strtod of the raw text). */
    double asDouble() const;
    /** Number as int64 (fatal on range/format errors). */
    std::int64_t asInt() const;
    /** Number as uint64 (fatal on sign/range/format errors). */
    std::uint64_t asU64() const;
    /** String value (unescaped). */
    const std::string &asString() const;
    /** Array elements. */
    const std::vector<JsonValue> &items() const;
    /** Object members in document order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;
    /** Object member @p key (fatal if absent). */
    const JsonValue &at(const std::string &key) const;
    /** Object member @p key, or nullptr if absent. */
    const JsonValue *find(const std::string &key) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string scalar; // number raw text or unescaped string
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;

    friend class JsonParser;
};

} // namespace json
} // namespace wilis

#endif // WILIS_COMMON_JSON_HH
