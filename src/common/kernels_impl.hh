/**
 * @file
 * Kernel bodies of the runtime-dispatched SIMD layer, written ONCE
 * against the portable packed types in common/simd.hh and compiled
 * three times by kernels_scalar.cc / kernels_sse42.cc /
 * kernels_avx2.cc (each defines WILIS_SIMD_LEVEL and is built with
 * the matching -m flags). The level-1 instantiation of every loop IS
 * the scalar reference: there is no separate "reference
 * implementation" to drift from.
 *
 * Bit-exactness discipline (see the policy note in kernels.hh):
 *  - integer kernels use the same i32 arithmetic at every level;
 *  - f64 kernels use only IEEE-exact ops in the same order as the
 *    scalar expressions they replace (demapper axis metrics, complex
 *    multiply as mul/mul/sub + mul/mul/add, quantization as
 *    div -> mul -> round-to-nearest -> clamp);
 *  - vector tails fall back to scalar expressions that are textually
 *    identical to the lane computation.
 *
 * The ACS kernels additionally rely on the shift-register butterfly
 * asserted by decode/trellis_kernels.cc:
 *   pred0[s] = 2*(s % (n/2)),  pred1[s] = pred0[s] + 1,
 *   next0[s] = s / 2,          next1[s] = n/2 + s / 2.
 *
 * libm policy: kernel bodies may call at most one transcendental
 * per lane and only from the whitelist on the next line, which the
 * determinism linter (tools/wilis_lint.py, CI lint job) parses and
 * enforces -- every listed function is required to be IEEE-exact or
 * used identically in the scalar tail and the vector lane, so the
 * backends cannot drift. Extending the whitelist is a policy
 * change: update this directive AND the bit-exactness argument in
 * docs/ARCHITECTURE.md together.
 *
 * wilis-lint: kernel-libm-whitelist: exp floor log log10 nearbyint sqrt
 */

#ifndef WILIS_COMMON_KERNELS_IMPL_HH
#define WILIS_COMMON_KERNELS_IMPL_HH

#include <cmath>
#include <cstdint>

#include "common/kernels.hh"
#include "common/simd.hh"

namespace wilis {
namespace kernels {
namespace WILIS_SIMD_NS {

using simd::WILIS_SIMD_NS::VecF32;
using simd::WILIS_SIMD_NS::VecF64;
using simd::WILIS_SIMD_NS::VecI16;
using simd::WILIS_SIMD_NS::VecI32;
using simd::WILIS_SIMD_NS::VecU64;

using i16 = std::int16_t;
using i32 = std::int32_t;
using u8 = std::uint8_t;
using u64 = std::uint64_t;

// ---------------------------------------------------------- trellis

inline void
acsForwardKernel(const TrellisView &tv, const i32 *pm_in,
                 const i32 bm[4], i32 *pm_out, u64 *choices,
                 i32 *delta)
{
    const int n = tv.nStates;
    const int half = n / 2;
    constexpr int L = VecI32::kLanes;
    u64 ch = 0;
    for (int s = 0; s < n; s += L) {
        const int base = 2 * (s & (half - 1));
        VecI32 m0 = VecI32::loadEven(pm_in + base) +
                    VecI32::lookup4(bm, VecI32::load(tv.revOut0 + s));
        VecI32 m1 = VecI32::loadOdd(pm_in + base) +
                    VecI32::lookup4(bm, VecI32::load(tv.revOut1 + s));
        VecI32 mask = VecI32::gtMask(m1, m0);
        VecI32::blend(m0, m1, mask).store(pm_out + s);
        ch |= static_cast<u64>(mask.moveMask()) << s;
        if (delta)
            VecI32::abs(m1 - m0).store(delta + s);
    }
    *choices = ch;
}

inline void
acsBackwardKernel(const TrellisView &tv, const i32 *beta_next,
                  const i32 bm[4], i32 *beta_out)
{
    const int n = tv.nStates;
    const int half = n / 2;
    constexpr int L = VecI32::kLanes;
    for (int s = 0; s < n; s += L) {
        VecI32 m0 =
            VecI32::loadHalfDup(beta_next + s / 2) +
            VecI32::lookup4(bm, VecI32::load(tv.fwdOut0 + s));
        VecI32 m1 =
            VecI32::loadHalfDup(beta_next + half + s / 2) +
            VecI32::lookup4(bm, VecI32::load(tv.fwdOut1 + s));
        VecI32::max(m0, m1).store(beta_out + s);
    }
}

inline void
bcjrDecisionKernel(const TrellisView &tv, const i32 *alpha,
                   const i32 bm[4], const i32 *beta, i32 *best0,
                   i32 *best1)
{
    const int n = tv.nStates;
    const int half = n / 2;
    constexpr int L = VecI32::kLanes;
    VecI32 acc0 = VecI32::broadcast(*best0);
    VecI32 acc1 = VecI32::broadcast(*best1);
    for (int s = 0; s < n; s += L) {
        VecI32 a = VecI32::load(alpha + s);
        VecI32 c0 =
            a + VecI32::lookup4(bm, VecI32::load(tv.fwdOut0 + s)) +
            VecI32::loadHalfDup(beta + s / 2);
        VecI32 c1 =
            a + VecI32::lookup4(bm, VecI32::load(tv.fwdOut1 + s)) +
            VecI32::loadHalfDup(beta + half + s / 2);
        acc0 = VecI32::max(acc0, c0);
        acc1 = VecI32::max(acc1, c1);
    }
    *best0 = acc0.reduceMax();
    *best1 = acc1.reduceMax();
}

inline void
normalizeMetricsKernel(i32 *pm, int n, i32 floor_threshold,
                       i32 floor_value)
{
    constexpr int L = VecI32::kLanes;
    VecI32 mv = VecI32::load(pm);
    for (int s = L; s < n; s += L)
        mv = VecI32::max(mv, VecI32::load(pm + s));
    const VecI32 vmx = VecI32::broadcast(mv.reduceMax());
    const VecI32 thr = VecI32::broadcast(floor_threshold);
    const VecI32 fl = VecI32::broadcast(floor_value);
    for (int s = 0; s < n; s += L) {
        VecI32 p = VecI32::load(pm + s);
        // Keep impossible states pinned at the floor.
        VecI32 mask = VecI32::gtMask(p, thr);
        VecI32::blend(fl, p - vmx, mask).store(pm + s);
    }
}

inline int
bestStateKernel(const i32 *pm, int n)
{
    constexpr int L = VecI32::kLanes;
    VecI32 mv = VecI32::load(pm);
    for (int s = L; s < n; s += L)
        mv = VecI32::max(mv, VecI32::load(pm + s));
    const i32 mx = mv.reduceMax();
    for (int s = 0; s < n; ++s) {
        if (pm[s] == mx)
            return s;
    }
    return 0;
}

inline void
acsForwardI16Kernel(const TrellisView &tv, const i16 *pm_in,
                    const i16 bm[4], i16 *pm_out, u64 *choices)
{
    const int n = tv.nStates;
    const int half = n / 2;
    constexpr int L = VecI16::kLanes;
    u64 ch = 0;
    for (int s = 0; s < n; s += L) {
        const int base = 2 * (s & (half - 1));
        VecI16 m0 = VecI16::adds(
            VecI16::loadEven(pm_in + base),
            VecI16::lookup4(bm, VecI16::load(tv.revOut0_16 + s)));
        VecI16 m1 = VecI16::adds(
            VecI16::loadOdd(pm_in + base),
            VecI16::lookup4(bm, VecI16::load(tv.revOut1_16 + s)));
        VecI16 mask = VecI16::gtMask(m1, m0);
        VecI16::blend(m0, m1, mask).store(pm_out + s);
        ch |= static_cast<u64>(mask.moveMask()) << s;
    }
    *choices = ch;
}

// --------------------------------------------------------- demapper

/**
 * Quantize lanes of real metrics: x / full_scale * max_code, round
 * to nearest even, clamp -- the vector form of common/fixed_point.hh
 * quantize().
 */
inline VecF64
quantizeLanes(VecF64 x, VecF64 full_scale, VecF64 max_code,
              VecF64 min_code)
{
    VecF64 r = VecF64::roundNearest(x / full_scale * max_code);
    return VecF64::max(VecF64::min(r, max_code), min_code);
}

/** Scalar tail twin of quantizeLanes (same expressions, one lane). */
inline i32
quantizeOne(double x, double full_scale, double max_code,
            double min_code)
{
    double r = std::nearbyint(x / full_scale * max_code);
    if (r > max_code)
        return static_cast<i32>(max_code);
    if (r < min_code)
        return static_cast<i32>(min_code);
    return static_cast<i32>(r);
}

inline void
demapBatchKernel(int mod_kind, const Sample *ys,
                 const double *weights, size_t n, double scale,
                 int soft_width, double full_scale, SoftBit *out)
{
    const double *yd = reinterpret_cast<const double *>(ys);
    const double max_code_d =
        static_cast<double>((1 << (soft_width - 1)) - 1);
    const double min_code_d =
        static_cast<double>(-(1 << (soft_width - 1)));
    constexpr int L = VecF64::kLanes;
    const VecF64 vfs = VecF64::broadcast(full_scale);
    const VecF64 vmax = VecF64::broadcast(max_code_d);
    const VecF64 vmin = VecF64::broadcast(min_code_d);
    const VecF64 vscale = VecF64::broadcast(scale);
    const VecF64 vone = VecF64::broadcast(1.0);

    auto weight = [&](size_t i) {
        return weights ? VecF64::load(weights + i) : vone;
    };
    auto q = [&](VecF64 metric, VecF64 w) {
        return quantizeLanes((vscale * metric) * w, vfs, vmax, vmin);
    };
    auto qs = [&](double metric, double w) {
        return quantizeOne((scale * metric) * w, full_scale,
                           max_code_d, min_code_d);
    };

    size_t i = 0;
    switch (mod_kind) {
      case kDemapBpsk: {
        for (; i + L <= n; i += L) {
            i32 tmp[L];
            q(VecF64::loadEven(yd + 2 * i), weight(i)).storeAsI32(tmp);
            for (int l = 0; l < L; ++l)
                out[i + l] = tmp[l];
        }
        for (; i < n; ++i) {
            double w = weights ? weights[i] : 1.0;
            out[i] = qs(yd[2 * i], w);
        }
        return;
      }
      case kDemapQpsk: {
        for (; i + L <= n; i += L) {
            VecF64 w = weight(i);
            i32 tre[L], tim[L];
            q(VecF64::loadEven(yd + 2 * i), w).storeAsI32(tre);
            q(VecF64::loadOdd(yd + 2 * i), w).storeAsI32(tim);
            for (int l = 0; l < L; ++l) {
                out[2 * (i + l)] = tre[l];
                out[2 * (i + l) + 1] = tim[l];
            }
        }
        for (; i < n; ++i) {
            double w = weights ? weights[i] : 1.0;
            out[2 * i] = qs(yd[2 * i], w);
            out[2 * i + 1] = qs(yd[2 * i + 1], w);
        }
        return;
      }
      case kDemapQam16: {
        const double k = 1.0 / std::sqrt(10.0);
        const double c2 = 2.0 * k;
        const VecF64 vc2 = VecF64::broadcast(c2);
        for (; i + L <= n; i += L) {
            VecF64 w = weight(i);
            VecF64 re = VecF64::loadEven(yd + 2 * i);
            VecF64 im = VecF64::loadOdd(yd + 2 * i);
            i32 t[4][L];
            q(re, w).storeAsI32(t[0]);
            q(vc2 - VecF64::abs(re), w).storeAsI32(t[1]);
            q(im, w).storeAsI32(t[2]);
            q(vc2 - VecF64::abs(im), w).storeAsI32(t[3]);
            for (int l = 0; l < L; ++l) {
                SoftBit *o = out + 4 * (i + l);
                o[0] = t[0][l];
                o[1] = t[1][l];
                o[2] = t[2][l];
                o[3] = t[3][l];
            }
        }
        for (; i < n; ++i) {
            double w = weights ? weights[i] : 1.0;
            double re = yd[2 * i];
            double im = yd[2 * i + 1];
            SoftBit *o = out + 4 * i;
            o[0] = qs(re, w);
            o[1] = qs(c2 - std::abs(re), w);
            o[2] = qs(im, w);
            o[3] = qs(c2 - std::abs(im), w);
        }
        return;
      }
      case kDemapQam64: {
        const double k = 1.0 / std::sqrt(42.0);
        const double c4 = 4.0 * k;
        const double c2 = 2.0 * k;
        const VecF64 vc4 = VecF64::broadcast(c4);
        const VecF64 vc2 = VecF64::broadcast(c2);
        for (; i + L <= n; i += L) {
            VecF64 w = weight(i);
            VecF64 re = VecF64::loadEven(yd + 2 * i);
            VecF64 im = VecF64::loadOdd(yd + 2 * i);
            VecF64 are = VecF64::abs(re);
            VecF64 aim = VecF64::abs(im);
            i32 t[6][L];
            q(re, w).storeAsI32(t[0]);
            q(vc4 - are, w).storeAsI32(t[1]);
            q(vc2 - VecF64::abs(are - vc4), w).storeAsI32(t[2]);
            q(im, w).storeAsI32(t[3]);
            q(vc4 - aim, w).storeAsI32(t[4]);
            q(vc2 - VecF64::abs(aim - vc4), w).storeAsI32(t[5]);
            for (int l = 0; l < L; ++l) {
                SoftBit *o = out + 6 * (i + l);
                for (int b = 0; b < 6; ++b)
                    o[b] = t[b][l];
            }
        }
        for (; i < n; ++i) {
            double w = weights ? weights[i] : 1.0;
            double re = yd[2 * i];
            double im = yd[2 * i + 1];
            SoftBit *o = out + 6 * i;
            o[0] = qs(re, w);
            o[1] = qs(c4 - std::abs(re), w);
            o[2] = qs(c2 - std::abs(std::abs(re) - c4), w);
            o[3] = qs(im, w);
            o[4] = qs(c4 - std::abs(im), w);
            o[5] = qs(c2 - std::abs(std::abs(im) - c4), w);
        }
        return;
      }
    }
}

// ---------------------------------------------------------- channel

inline void
scaleComplexKernel(Sample *s, size_t n, Sample h)
{
    const double hr = h.real();
    const double hi = h.imag();
    constexpr int L = VecF64::kLanes;
    double *d = reinterpret_cast<double *>(s);
    const size_t total = 2 * n;
    size_t i = 0;
    if (L > 1) {
        // (re, im) pairs in lanes: a = v*hr, b = swap(v)*hi,
        // addsub -> (re*hr - im*hi, im*hr + re*hi), the exact
        // product/sum set of the scalar complex multiply.
        const VecF64 vhr = VecF64::broadcast(hr);
        const VecF64 vhi = VecF64::broadcast(hi);
        for (; i + L <= total; i += L) {
            VecF64 v = VecF64::load(d + i);
            VecF64::addsub(v * vhr, v.swapPairs() * vhi)
                .store(d + i);
        }
    }
    for (; i < total; i += 2) {
        double re = d[i];
        double im = d[i + 1];
        d[i] = re * hr - im * hi;
        d[i + 1] = im * hr + re * hi;
    }
}

inline void
axpyNoiseKernel(Sample *s, size_t n, double sigma,
                const double *gauss)
{
    constexpr int L = VecF64::kLanes;
    double *d = reinterpret_cast<double *>(s);
    const size_t total = 2 * n;
    const VecF64 vsig = VecF64::broadcast(sigma);
    size_t i = 0;
    for (; i + L <= total; i += L) {
        (VecF64::load(d + i) + vsig * VecF64::load(gauss + i))
            .store(d + i);
    }
    for (; i < total; ++i)
        d[i] = d[i] + sigma * gauss[i];
}

inline void
axpyF32Kernel(float *y, const float *x, size_t n, float a)
{
    constexpr int L = VecF32::kLanes;
    const VecF32 va = VecF32::broadcast(a);
    size_t i = 0;
    for (; i + L <= n; i += L)
        (VecF32::load(y + i) + va * VecF32::load(x + i)).store(y + i);
    for (; i < n; ++i)
        y[i] = y[i] + a * x[i];
}

// ---------------------------------- SoA analytic-engine kernels
//
// Batched twins of the multi-cell analytic fast path's scalar
// expressions (Ops doc comments in kernels.hh give the contract).
// The integer counter mixing -- the CounterRng recipe from
// common/random.hh -- runs in u64 lanes, where exactness is free.
// Everything that touches a libm transcendental (log, log10, exp,
// floor) stays ONE scalar call per lane in every backend, because
// vectorized transcendental approximations would break the
// bit-exactness guarantee the engine equivalence tests pin.

/** Scalar twin of CounterRng::at(counter) for key @p key. */
inline u64
mixKeyedOne(u64 key, u64 counter)
{
    u64 z = key + 0x9e3779b97f4a7c15ull * (counter + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z ^= key >> 32;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Lane form of mixKeyedOne: kLanes keys, one shared counter. */
inline VecU64
mixKeyedLanes(VecU64 keys, u64 counter)
{
    VecU64 z = keys +
               VecU64::broadcast(0x9e3779b97f4a7c15ull * (counter + 1));
    z = VecU64::mulLo(z ^ z.template shr<30>(),
                      VecU64::broadcast(0xbf58476d1ce4e5b9ull));
    z = z ^ keys.template shr<32>();
    z = VecU64::mulLo(z ^ z.template shr<27>(),
                      VecU64::broadcast(0x94d049bb133111ebull));
    return z ^ z.template shr<31>();
}

/** CounterRng::doubleAt's raw-bits -> [0, 1) conversion. */
inline double
u01FromBits(u64 bits)
{
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

inline void
rngU01KeyedKernel(const u64 *keys, size_t n, u64 counter, double *out)
{
    constexpr int L = VecU64::kLanes;
    u64 bits[L];
    size_t i = 0;
    for (; i + L <= n; i += L) {
        mixKeyedLanes(VecU64::load(keys + i), counter).store(bits);
        for (int l = 0; l < L; ++l)
            out[i + l] = u01FromBits(bits[l]);
    }
    for (; i < n; ++i)
        out[i] = u01FromBits(mixKeyedOne(keys[i], counter));
}

inline void
sinrAccumBatchKernel(const double *const *gain_rows,
                     const i32 *serving, const u64 *fade_keys,
                     const u8 *active, int cells, u64 t,
                     const double *sig, size_t n, double zero_sinr_db,
                     double *sinr_db)
{
    constexpr int L = VecU64::kLanes;
    const u64 base = t * static_cast<u64>(cells);
    u64 bits[L];
    size_t i = 0;
    for (; i + L <= n; i += L) {
        // Interference accumulates per lane in the same ascending
        // cell order as the per-user engine's scalar loop (FP
        // addition is order-sensitive); only the counter mixing
        // vectorizes across the block's entries.
        double interf[L] = {};
        const VecU64 keys = VecU64::load(fade_keys + i);
        for (int c = 0; c < cells; ++c) {
            if (!active[c])
                continue;
            mixKeyedLanes(keys, base + static_cast<u64>(c))
                .store(bits);
            for (int l = 0; l < L; ++l) {
                if (serving[i + l] == c)
                    continue;
                double u = 1.0 - u01FromBits(bits[l]);
                if (u < 1e-300)
                    u = 1e-300;
                const double fade = -std::log(u);
                interf[l] = interf[l] + gain_rows[i + l][c] * fade;
            }
        }
        for (int l = 0; l < L; ++l) {
            const double lin = sig[i + l] / (1.0 + interf[l]);
            sinr_db[i + l] =
                lin > 0.0 ? 10.0 * std::log10(lin) : zero_sinr_db;
        }
    }
    for (; i < n; ++i) {
        double interf = 0.0;
        for (int c = 0; c < cells; ++c) {
            if (!active[c] || serving[i] == c)
                continue;
            double u = 1.0 -
                       u01FromBits(mixKeyedOne(
                           fade_keys[i], base + static_cast<u64>(c)));
            if (u < 1e-300)
                u = 1e-300;
            const double fade = -std::log(u);
            interf = interf + gain_rows[i][c] * fade;
        }
        const double lin = sig[i] / (1.0 + interf);
        sinr_db[i] = lin > 0.0 ? 10.0 * std::log10(lin) : zero_sinr_db;
    }
}

/**
 * Per-entry core of perDrawBatch: textual twin of
 * CalibrationTable::lerpCoords() + per() + pberFeedback() plus the
 * Bernoulli frame draw from AnalyticLink::drawAt(), reading the
 * flattened table rows instead of calling back into softphy.
 */
inline void
perDrawOne(const PerTableView &tv, i32 rate, double snr, u64 bits,
           u8 *ok, double *pber)
{
    const double x = (snr - tv.snrLoDb) / tv.snrStepDb - 0.5;
    int b0, b1;
    double frac;
    if (x <= 0.0) {
        b0 = b1 = 0;
        frac = 0.0;
    } else if (x >= static_cast<double>(tv.numBins - 1)) {
        b0 = b1 = tv.numBins - 1;
        frac = 0.0;
    } else {
        b0 = static_cast<int>(std::floor(x));
        b1 = b0 + 1;
        frac = x - static_cast<double>(b0);
    }
    const int row = rate * tv.numBins;
    const double p0 = tv.per[row + b0];
    const double p1 = tv.per[row + b1];
    const double per = p0 + (p1 - p0) * frac;
    const bool frame_ok = u01FromBits(bits) >= per;
    const double *logs = frame_ok ? tv.logPberOk : tv.logPberBad;
    const double l0 = logs[row + b0];
    const double l1 = logs[row + b1];
    *ok = frame_ok ? 1 : 0;
    *pber = std::exp(l0 + (l1 - l0) * frac);
}

inline void
perDrawBatchKernel(const PerTableView &tv, const i32 *rates,
                   const double *snr_db, const u64 *keys, u64 t,
                   size_t n, u8 *ok, double *pber)
{
    constexpr int L = VecU64::kLanes;
    u64 bits[L];
    size_t i = 0;
    for (; i + L <= n; i += L) {
        mixKeyedLanes(VecU64::load(keys + i), t).store(bits);
        for (int l = 0; l < L; ++l)
            perDrawOne(tv, rates[i + l], snr_db[i + l], bits[l],
                       ok + i + l, pber + i + l);
    }
    for (; i < n; ++i)
        perDrawOne(tv, rates[i], snr_db[i], mixKeyedOne(keys[i], t),
                   ok + i, pber + i);
}

inline void
pfDecayKernel(double *avg, size_t n, double a, i32 granted,
              double served_bits)
{
    constexpr int L = VecF64::kLanes;
    const double keep = 1.0 - a;
    // Compute the granted element from its pre-decay value first,
    // exactly as the scheduler's single-pass scalar loop would.
    double g = 0.0;
    if (granted >= 0)
        g = keep * avg[granted] + a * served_bits;
    const VecF64 vkeep = VecF64::broadcast(keep);
    const VecF64 vzero = VecF64::broadcast(a * 0.0);
    size_t i = 0;
    for (; i + L <= n; i += L)
        (vkeep * VecF64::load(avg + i) + vzero).store(avg + i);
    for (; i < n; ++i)
        avg[i] = keep * avg[i] + a * 0.0;
    if (granted >= 0)
        avg[granted] = g;
}

// -------------------------------------------------------- the table

#if WILIS_SIMD_LEVEL == 2
inline constexpr Backend kBackend = Backend::Avx2;
#elif WILIS_SIMD_LEVEL == 1
inline constexpr Backend kBackend = Backend::Sse42;
#else
inline constexpr Backend kBackend = Backend::Scalar;
#endif

inline const Ops kOps = {
    kBackend,
    simd::WILIS_SIMD_NS::kLevelName,
    &acsForwardKernel,
    &acsBackwardKernel,
    &bcjrDecisionKernel,
    &normalizeMetricsKernel,
    &bestStateKernel,
    &demapBatchKernel,
    &scaleComplexKernel,
    &axpyNoiseKernel,
    &acsForwardI16Kernel,
    &axpyF32Kernel,
    &rngU01KeyedKernel,
    &sinrAccumBatchKernel,
    &perDrawBatchKernel,
    &pfDecayKernel,
};

} // namespace WILIS_SIMD_NS
} // namespace kernels
} // namespace wilis

#endif // WILIS_COMMON_KERNELS_IMPL_HH
