/**
 * @file
 * Plain-text table formatter for the bench binaries, which print the
 * same rows/series the paper's tables and figures report.
 */

#ifndef WILIS_COMMON_TABLE_HH
#define WILIS_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace wilis {

/** Column-aligned text table. */
class Table
{
  public:
    /** @param headers Column titles. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row (must match the column count). */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> cols;
    std::vector<std::vector<std::string>> rows;
};

} // namespace wilis

#endif // WILIS_COMMON_TABLE_HH
