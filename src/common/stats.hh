/**
 * @file
 * Lightweight statistics accumulators used by the evaluation harness:
 * running mean/variance, log-spaced histograms for BER-vs-LLR curves,
 * and simple named counters.
 */

#ifndef WILIS_COMMON_STATS_HH
#define WILIS_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace wilis {

/**
 * Running mean / *sample* variance accumulator (the n-1 Bessel
 * convention -- these accumulators summarize sampled simulation
 * outcomes, not whole populations).
 *
 * The state is moment sums of (x - offset), the offset being the
 * first sample seen: shifting by a ballpark location keeps the
 * squared sums small so variance() does not catastrophically cancel
 * for large-mean/small-spread streams, while the sums themselves
 * stay *exact* for integer-valued samples (latency slots, attempt
 * counts -- the streams the network simulator shards per user).
 * merge() translates the other accumulator's sums to this offset
 * and adds; every translation term is again exact on integer data,
 * so merging shards in any grouping is bit-equal to one single-pass
 * accumulation, and agrees to rounding error on real-valued data.
 *
 * The anchor is only as good as the first sample: a stream whose
 * opening sample is a far outlier from the rest (orders of
 * magnitude off the bulk location) re-creates the cancellation the
 * shift exists to avoid. Welford's recurrence would handle that,
 * but cannot make sharded merges bit-equal to a single pass; this
 * codebase's streams (latencies, attempt counts, noise deviates,
 * powers) are stationary, so the first sample is representative.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        if (n == 0)
            offset = x;
        n += 1;
        double d = x - offset;
        sum += d;
        sum_sq += d * d;
    }

    /** Number of samples seen. */
    std::uint64_t count() const { return n; }

    /** Sample mean (0 if empty). */
    double
    mean() const
    {
        return n ? offset + sum / static_cast<double>(n) : 0.0;
    }

    /** Sample variance, n-1 denominator (0 if fewer than 2 samples). */
    double
    variance() const
    {
        if (n < 2)
            return 0.0;
        // Guard the subtraction: rounding can push the centered sum
        // a hair negative when the variance is ~0.
        double centered =
            sum_sq - sum * sum / static_cast<double>(n);
        if (centered < 0.0)
            centered = 0.0;
        return centered / static_cast<double>(n - 1);
    }

    /** Sample standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /**
     * Raw accumulator state, exposed for lossless transport: the
     * snapshot layer stores the four fields by bit pattern and the
     * campaign report serializes them with "%.17g", so a shipped
     * accumulator merges bit-equal to one that never left the
     * process.
     */
    struct State {
        /** Samples seen. */
        std::uint64_t n;
        /** Anchor (the first sample). */
        double offset;
        /** Sum of (x - offset). */
        double sum;
        /** Sum of (x - offset)^2. */
        double sum_sq;
    };

    /** Export the raw state. */
    State state() const { return {n, offset, sum, sum_sq}; }

    /** Rebuild an accumulator from transported raw state. */
    static RunningStats
    fromState(const State &s)
    {
        RunningStats r;
        r.n = s.n;
        r.offset = s.offset;
        r.sum = s.sum;
        r.sum_sq = s.sum_sq;
        return r;
    }

    /** Merge another accumulator into this one. */
    void
    merge(const RunningStats &other)
    {
        if (other.n == 0)
            return;
        if (n == 0) {
            *this = other;
            return;
        }
        // Translate the other shard's moments to this offset:
        // sum (x - o)^2 = sum (x - o') ^2 + s*(2*sum(x - o') + n*s)
        // with s = o' - o. Exact for integer samples and offsets.
        const double s = other.offset - offset;
        const double on = static_cast<double>(other.n);
        sum_sq += other.sum_sq + s * (2.0 * other.sum + on * s);
        sum += other.sum + on * s;
        n += other.n;
    }

  private:
    std::uint64_t n = 0;
    double offset = 0.0;
    double sum = 0.0;
    double sum_sq = 0.0;
};

/**
 * Per-bin error counting keyed by an integer index, used to build
 * "BER as a function of LLR bin" curves (Figure 5) and
 * "actual PBER per predicted-PBER decade" scatter summaries (Figure 6).
 */
class BinnedErrorCounter
{
  public:
    /** @param num_bins Number of bins; out-of-range indices clamp. */
    explicit BinnedErrorCounter(int num_bins)
        : totals(static_cast<size_t>(num_bins), 0),
          errors(static_cast<size_t>(num_bins), 0)
    {}

    /** Record one observation in @p bin; @p error true if bit wrong. */
    void
    record(int bin, bool error)
    {
        if (bin < 0)
            bin = 0;
        if (bin >= static_cast<int>(totals.size()))
            bin = static_cast<int>(totals.size()) - 1;
        totals[static_cast<size_t>(bin)] += 1;
        if (error)
            errors[static_cast<size_t>(bin)] += 1;
    }

    /** Number of bins. */
    int numBins() const { return static_cast<int>(totals.size()); }

    /** Total observations in @p bin. */
    std::uint64_t total(int bin) const
    {
        return totals[static_cast<size_t>(bin)];
    }

    /** Error observations in @p bin. */
    std::uint64_t errorCount(int bin) const
    {
        return errors[static_cast<size_t>(bin)];
    }

    /** Observed error rate in @p bin (0 if empty). */
    double
    rate(int bin) const
    {
        auto t = total(bin);
        return t ? static_cast<double>(errorCount(bin)) /
                       static_cast<double>(t)
                 : 0.0;
    }

    /** Merge counts from another counter with identical binning. */
    void
    merge(const BinnedErrorCounter &other)
    {
        for (size_t i = 0; i < totals.size(); ++i) {
            totals[i] += other.totals[i];
            errors[i] += other.errors[i];
        }
    }

  private:
    std::vector<std::uint64_t> totals;
    std::vector<std::uint64_t> errors;
};

/**
 * Fixed-binning linear histogram used by the network simulator for
 * per-user latency / retransmission / rate-usage distributions.
 * Values below the range clamp into the first bin, values at or
 * above the range into the last, so totals always equal the number
 * of add() calls and histograms with identical binning merge exactly.
 *
 * The bin array is allocated on the first add() (or the first merge
 * of a non-empty histogram): the network simulator constructs and
 * merges several histograms per user per run, the large majority of
 * which never see a sample, and eagerly zeroing 10k+ users' worth of
 * bins each rep is measurable against the SoA engine's slot loop.
 */
class Histogram
{
  public:
    /**
     * @param num_bins  Number of bins (>= 1).
     * @param bin_width Width of each bin (> 0).
     * @param lo        Lower edge of bin 0.
     */
    Histogram(int num_bins, double bin_width, double lo = 0.0);

    /** Record one observation (clamped into the edge bins). */
    void add(double x);

    /** Number of bins. */
    int numBins() const { return nbins_; }

    /** Observations recorded in @p bin. */
    std::uint64_t count(int bin) const
    {
        return counts.empty() ? 0
                              : counts[static_cast<size_t>(bin)];
    }

    /** Total observations recorded. */
    std::uint64_t total() const { return total_; }

    /** Lower edge of @p bin. */
    double binLo(int bin) const { return lo_ + bin * width_; }

    /** Bin width. */
    double binWidth() const { return width_; }

    /**
     * Lower edge of the first bin at which the cumulative count
     * reaches fraction @p q of the observations (0 if empty; q is
     * clamped to [0, 1]). For discrete values recorded at bin lower
     * edges -- latency in whole slots, attempts -- this is the exact
     * quantile value.
     */
    double quantile(double q) const;

    /** Merge counts from a histogram with identical binning. */
    void merge(const Histogram &other);

    /**
     * Replace the contents with transported counts (snapshot resume
     * and campaign report merge). @p bin_counts must either be empty
     * (a histogram that never saw a sample) or have exactly
     * numBins() entries summing to @p total.
     */
    void restore(const std::vector<std::uint64_t> &bin_counts,
                 std::uint64_t total);

  private:
    std::vector<std::uint64_t> counts; // empty until first sample
    int nbins_;
    double width_;
    double lo_;
    std::uint64_t total_ = 0;
};

/** Bit-error bookkeeping for a stream comparison. */
struct ErrorStats {
    /** Bits compared. */
    std::uint64_t bits = 0;
    /** Bits that differed. */
    std::uint64_t errors = 0;

    /** Observed bit-error rate. */
    double
    ber() const
    {
        return bits ? static_cast<double>(errors) /
                          static_cast<double>(bits)
                    : 0.0;
    }

    /** Accumulate another comparison's counts. */
    void
    merge(const ErrorStats &other)
    {
        bits += other.bits;
        errors += other.errors;
    }
};

/** Count bit errors between two equal-length bit streams. */
ErrorStats countErrors(const std::vector<std::uint8_t> &ref,
                       const std::vector<std::uint8_t> &got);

} // namespace wilis

#endif // WILIS_COMMON_STATS_HH
