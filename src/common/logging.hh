/**
 * @file
 * Status/error reporting in the gem5 style: panic() for internal
 * invariant violations (simulator bugs), fatal() for user/config
 * errors, warn()/inform() for non-fatal conditions.
 */

#ifndef WILIS_COMMON_LOGGING_HH
#define WILIS_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace wilis {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

namespace detail {
/** Backend of wilis_panic(): print and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
/** Backend of wilis_fatal(): print and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
/** Backend of wilis_warn(). */
void warnImpl(const std::string &msg);
/** Backend of wilis_inform(). */
void informImpl(const std::string &msg);
} // namespace detail

/** Abort: something happened that should never happen (a WiLIS bug). */
#define wilis_panic(...) \
    ::wilis::detail::panicImpl(__FILE__, __LINE__, \
                               ::wilis::strprintf(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to a user error. */
#define wilis_fatal(...) \
    ::wilis::detail::fatalImpl(__FILE__, __LINE__, \
                               ::wilis::strprintf(__VA_ARGS__))

/** Non-fatal: functionality may be degraded; user should look here. */
#define wilis_warn(...) \
    ::wilis::detail::warnImpl(::wilis::strprintf(__VA_ARGS__))

/** Status message with no connotation of incorrect behaviour. */
#define wilis_inform(...) \
    ::wilis::detail::informImpl(::wilis::strprintf(__VA_ARGS__))

/** panic() unless the given condition holds. */
#define wilis_assert(cond, ...) \
    do { \
        if (!(cond)) \
            wilis_panic("assertion '%s' failed: %s", #cond, \
                        ::wilis::strprintf(__VA_ARGS__).c_str()); \
    } while (0)

} // namespace wilis

#endif // WILIS_COMMON_LOGGING_HH
