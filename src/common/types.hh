/**
 * @file
 * Fundamental scalar and sample types shared across the WiLIS library.
 */

#ifndef WILIS_COMMON_TYPES_HH
#define WILIS_COMMON_TYPES_HH

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace wilis {

/** A single binary digit stored in a byte (0 or 1). */
using Bit = std::uint8_t;

/** A stream of bits. */
using BitVec = std::vector<Bit>;

/** Complex baseband sample. The software channel operates on doubles. */
using Sample = std::complex<double>;

/** A stream of complex baseband samples. */
using SampleVec = std::vector<Sample>;

/**
 * Quantized soft value as produced by the hardware demapper and
 * consumed by the soft-decision decoders. Sign encodes the bit
 * hypothesis (positive means "more likely 1"), magnitude encodes
 * confidence. Width is bounded by Demapper::Config::softWidth.
 */
using SoftBit = std::int32_t;

/** A stream of quantized soft values. */
using SoftVec = std::vector<SoftBit>;

// Non-owning views used by the zero-copy frame pipeline: the arena
// (common/frame_arena.hh) owns the storage, the PHY/channel/decode
// blocks read and write through these spans.

/** Read-only view of a bit stream. */
using BitView = std::span<const Bit>;
/** Mutable view of a bit stream. */
using BitSpan = std::span<Bit>;
/** Read-only view of a sample stream. */
using SampleView = std::span<const Sample>;
/** Mutable view of a sample stream (channels impair in place). */
using SampleSpan = std::span<Sample>;
/** Read-only view of a soft-value stream. */
using SoftView = std::span<const SoftBit>;
/** Mutable view of a soft-value stream. */
using SoftSpan = std::span<SoftBit>;

/**
 * Decoder output for a single bit: the hard decision plus the
 * log-likelihood-ratio confidence hint exported to SoftPHY.
 */
struct SoftDecision {
    /** Decoded bit value. */
    Bit bit = 0;
    /**
     * Non-negative hardware LLR hint: confidence that @c bit is
     * correct, in decoder-specific units (see eq. 5 of the paper).
     */
    double llr = 0.0;
};

} // namespace wilis

#endif // WILIS_COMMON_TYPES_HH
