/**
 * @file
 * SSE4.2 instantiation of the kernel layer (2 f64 / 4 i32 lanes).
 * CMake compiles this file with -msse4.2 on x86; elsewhere the
 * backend reports itself unavailable and dispatch falls back.
 */

#if defined(__SSE4_2__)
#define WILIS_SIMD_LEVEL 1
#endif
#include "common/kernels_impl.hh"

namespace wilis {
namespace kernels {
namespace detail {

const Ops *
opsSse42()
{
#if defined(__SSE4_2__)
    return &simd_sse42::kOps;
#else
    return nullptr;
#endif
}

} // namespace detail
} // namespace kernels
} // namespace wilis
