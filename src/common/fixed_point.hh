/**
 * @file
 * Saturating fixed-point arithmetic.
 *
 * The paper's hardware pipeline replaces floating point with narrow
 * fixed-point values (section 1, approximation technique 1; section
 * 4.1 discusses shrinking decoder inputs from 23-28 bits to 3-8 bits).
 * FixedPoint models a signed two's-complement value with a compile-
 * time-checked width and runtime saturation, plus a quantize() helper
 * used by the soft demapper.
 */

#ifndef WILIS_COMMON_FIXED_POINT_HH
#define WILIS_COMMON_FIXED_POINT_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/logging.hh"

namespace wilis {

/**
 * Runtime-width signed saturating integer, the value representation
 * used throughout the modeled hardware datapath.
 */
class SatInt
{
  public:
    /** @param width Total signed width in bits, 2..31. */
    explicit SatInt(int width_, std::int32_t value_ = 0) : width(width_)
    {
        wilis_assert(width_ >= 2 && width_ <= 31,
                     "unsupported SatInt width %d", width_);
        value = clamp(value_);
    }

    /** Largest representable value. */
    std::int32_t maxValue() const { return (1 << (width - 1)) - 1; }
    /** Smallest representable value. */
    std::int32_t minValue() const { return -(1 << (width - 1)); }

    /** Current value. */
    std::int32_t get() const { return value; }
    /** Width in bits. */
    int bits() const { return width; }

    /** Saturating assignment. */
    void set(std::int32_t v) { value = clamp(v); }

    /** Saturating add. */
    SatInt
    operator+(const SatInt &o) const
    {
        return SatInt(width, clamp(static_cast<std::int64_t>(value) +
                                   o.value));
    }

    /** Saturating subtract. */
    SatInt
    operator-(const SatInt &o) const
    {
        return SatInt(width, clamp(static_cast<std::int64_t>(value) -
                                   o.value));
    }

  private:
    std::int32_t
    clamp(std::int64_t v) const
    {
        return static_cast<std::int32_t>(
            std::clamp<std::int64_t>(v, minValue(), maxValue()));
    }

    int width;
    std::int32_t value;
};

/**
 * Quantize a real soft value into a signed @p width -bit integer with
 * scaling such that @p full_scale maps to the positive saturation
 * point. This is the demapper's fixed-point output stage.
 *
 * @param x          Real-valued soft metric.
 * @param width      Signed output width in bits (>= 2).
 * @param full_scale Real magnitude mapped to max code.
 * @return Saturated integer code in [-(2^(w-1)), 2^(w-1)-1].
 */
inline std::int32_t
quantize(double x, int width, double full_scale)
{
    const std::int32_t max_code = (1 << (width - 1)) - 1;
    const std::int32_t min_code = -(1 << (width - 1));
    double scaled = x / full_scale * static_cast<double>(max_code);
    double rounded = std::nearbyint(scaled);
    if (rounded > max_code)
        return max_code;
    if (rounded < min_code)
        return min_code;
    return static_cast<std::int32_t>(rounded);
}

/**
 * Invert quantize(): map an integer code back to the real midpoint it
 * represents. Used when converting hardware LLRs back to probability
 * space in the BER estimator.
 */
inline double
dequantize(std::int32_t code, int width, double full_scale)
{
    const std::int32_t max_code = (1 << (width - 1)) - 1;
    return static_cast<double>(code) * full_scale /
           static_cast<double>(max_code);
}

} // namespace wilis

#endif // WILIS_COMMON_FIXED_POINT_HH
