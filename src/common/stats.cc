#include "common/stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wilis {

Histogram::Histogram(int num_bins, double bin_width, double lo)
    : nbins_(num_bins), width_(bin_width), lo_(lo)
{
    wilis_assert(num_bins >= 1, "histogram needs >= 1 bin, got %d",
                 num_bins);
    wilis_assert(bin_width > 0.0, "histogram bin width %f <= 0",
                 bin_width);
}

void
Histogram::add(double x)
{
    if (counts.empty())
        counts.assign(static_cast<size_t>(nbins_), 0);
    double idx = (x - lo_) / width_;
    int bin = idx <= 0.0 ? 0 : static_cast<int>(idx);
    if (bin >= numBins())
        bin = numBins() - 1;
    counts[static_cast<size_t>(bin)] += 1;
    total_ += 1;
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Smallest bin whose cumulative count reaches q * total.
    double target = q * static_cast<double>(total_);
    std::uint64_t cum = 0;
    for (int b = 0; b < numBins(); ++b) {
        cum += count(b);
        if (static_cast<double>(cum) >= target)
            return binLo(b);
    }
    return binLo(numBins() - 1);
}

void
Histogram::merge(const Histogram &other)
{
    wilis_assert(other.numBins() == numBins() &&
                     other.width_ == width_ && other.lo_ == lo_,
                 "merging histograms with different binning");
    if (other.total_ == 0)
        return;
    if (counts.empty())
        counts.assign(static_cast<size_t>(nbins_), 0);
    for (int b = 0; b < numBins(); ++b)
        counts[static_cast<size_t>(b)] +=
            other.counts[static_cast<size_t>(b)];
    total_ += other.total_;
}

void
Histogram::restore(const std::vector<std::uint64_t> &bin_counts,
                   std::uint64_t total)
{
    wilis_assert(bin_counts.empty() ||
                     bin_counts.size() ==
                         static_cast<size_t>(nbins_),
                 "restoring %zu bin counts into a %d-bin histogram",
                 bin_counts.size(), nbins_);
    std::uint64_t sum = 0;
    for (std::uint64_t c : bin_counts)
        sum += c;
    wilis_assert(sum == total,
                 "restored histogram counts sum to %llu, total says "
                 "%llu",
                 static_cast<unsigned long long>(sum),
                 static_cast<unsigned long long>(total));
    counts = bin_counts;
    total_ = total;
}

ErrorStats
countErrors(const std::vector<std::uint8_t> &ref,
            const std::vector<std::uint8_t> &got)
{
    wilis_assert(ref.size() == got.size(),
                 "stream size mismatch: %zu vs %zu", ref.size(),
                 got.size());
    ErrorStats s;
    s.bits = ref.size();
    for (size_t i = 0; i < ref.size(); ++i)
        s.errors += (ref[i] != got[i]) ? 1u : 0u;
    return s;
}

} // namespace wilis
