#include "common/stats.hh"

#include "common/logging.hh"

namespace wilis {

ErrorStats
countErrors(const std::vector<std::uint8_t> &ref,
            const std::vector<std::uint8_t> &got)
{
    wilis_assert(ref.size() == got.size(),
                 "stream size mismatch: %zu vs %zu", ref.size(),
                 got.size());
    ErrorStats s;
    s.bits = ref.size();
    for (size_t i = 0; i < ref.size(); ++i)
        s.errors += (ref[i] != got[i]) ? 1u : 0u;
    return s;
}

} // namespace wilis
