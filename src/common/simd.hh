/**
 * @file
 * Portable packed-vector layer under the runtime-dispatched kernels
 * (common/kernels.hh). One set of small wrapper types -- VecF64,
 * VecF32, VecI32, VecI16 -- is compiled per backend level:
 *
 *   WILIS_SIMD_LEVEL 0  scalar reference   (1 f64 / 1 i32 lane)
 *   WILIS_SIMD_LEVEL 1  SSE4.2             (2 f64 / 4 i32 lanes)
 *   WILIS_SIMD_LEVEL 2  AVX2               (4 f64 / 8 i32 lanes)
 *
 * Each backend translation unit defines WILIS_SIMD_LEVEL before
 * including this header (and is compiled with the matching -m
 * flags); the types land in a level-specific namespace
 * (simd::simd_scalar / simd::simd_sse42 / simd::simd_avx2) so the
 * three instantiations never collide across translation units.
 *
 * Every operation here is IEEE-exact (add, sub, mul, div, abs, min,
 * max, round-to-nearest-even, integer arithmetic), which is what
 * makes the kernel layer's bit-exactness guarantee possible: a
 * kernel written against these wrappers computes identical bits at
 * every level. No FMA contraction is ever emitted -- products and
 * sums stay separate instructions, matching the scalar code compiled
 * for the baseline target.
 */

#ifndef WILIS_COMMON_SIMD_HH
#define WILIS_COMMON_SIMD_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#ifndef WILIS_SIMD_LEVEL
#define WILIS_SIMD_LEVEL 0
#endif

#if WILIS_SIMD_LEVEL >= 1
#if !defined(__SSE4_2__)
#error "WILIS_SIMD_LEVEL >= 1 requires -msse4.2"
#endif
#include <immintrin.h>
#endif
#if WILIS_SIMD_LEVEL >= 2 && !defined(__AVX2__)
#error "WILIS_SIMD_LEVEL == 2 requires -mavx2"
#endif

#if WILIS_SIMD_LEVEL == 2
#define WILIS_SIMD_NS simd_avx2
#elif WILIS_SIMD_LEVEL == 1
#define WILIS_SIMD_NS simd_sse42
#else
#define WILIS_SIMD_NS simd_scalar
#endif

namespace wilis {
namespace simd {
namespace WILIS_SIMD_NS {

/** Human-readable name of this compilation level. */
#if WILIS_SIMD_LEVEL == 2
inline constexpr const char *kLevelName = "avx2";
#elif WILIS_SIMD_LEVEL == 1
inline constexpr const char *kLevelName = "sse4.2";
#else
inline constexpr const char *kLevelName = "scalar";
#endif

// ------------------------------------------------------------- VecF64

/** Packed f64 lanes (1 / 2 / 4 by level). */
struct VecF64 {
#if WILIS_SIMD_LEVEL == 2
    static constexpr int kLanes = 4;
    __m256d v;

    static VecF64 load(const double *p) { return {_mm256_loadu_pd(p)}; }
    static VecF64 broadcast(double x) { return {_mm256_set1_pd(x)}; }
    void store(double *p) const { _mm256_storeu_pd(p, v); }

    /** Lane i <- p[2i] (e.g. real parts of interleaved complexes). */
    static VecF64
    loadEven(const double *p)
    {
        __m256d a = _mm256_loadu_pd(p);
        __m256d b = _mm256_loadu_pd(p + 4);
        return {_mm256_permute4x64_pd(_mm256_unpacklo_pd(a, b),
                                      _MM_SHUFFLE(3, 1, 2, 0))};
    }

    /** Lane i <- p[2i + 1]. */
    static VecF64
    loadOdd(const double *p)
    {
        __m256d a = _mm256_loadu_pd(p);
        __m256d b = _mm256_loadu_pd(p + 4);
        return {_mm256_permute4x64_pd(_mm256_unpackhi_pd(a, b),
                                      _MM_SHUFFLE(3, 1, 2, 0))};
    }

    friend VecF64 operator+(VecF64 a, VecF64 b) { return {_mm256_add_pd(a.v, b.v)}; }
    friend VecF64 operator-(VecF64 a, VecF64 b) { return {_mm256_sub_pd(a.v, b.v)}; }
    friend VecF64 operator*(VecF64 a, VecF64 b) { return {_mm256_mul_pd(a.v, b.v)}; }
    friend VecF64 operator/(VecF64 a, VecF64 b) { return {_mm256_div_pd(a.v, b.v)}; }

    static VecF64
    abs(VecF64 a)
    {
        return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
    }
    static VecF64 min(VecF64 a, VecF64 b) { return {_mm256_min_pd(a.v, b.v)}; }
    static VecF64 max(VecF64 a, VecF64 b) { return {_mm256_max_pd(a.v, b.v)}; }
    /** Round to nearest even (matches std::nearbyint defaults). */
    static VecF64
    roundNearest(VecF64 a)
    {
        return {_mm256_round_pd(
            a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
    }

    /** Swap adjacent lanes: (0,1,2,3) -> (1,0,3,2). */
    VecF64 swapPairs() const { return {_mm256_permute_pd(v, 0x5)}; }
    /** Lane i: even i -> a[i] - b[i], odd i -> a[i] + b[i]. */
    static VecF64
    addsub(VecF64 a, VecF64 b)
    {
        return {_mm256_addsub_pd(a.v, b.v)};
    }

    /** Convert integral-valued lanes to i32 and store. */
    void
    storeAsI32(std::int32_t *p) const
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p),
                         _mm256_cvtpd_epi32(v));
    }
#elif WILIS_SIMD_LEVEL == 1
    static constexpr int kLanes = 2;
    __m128d v;

    static VecF64 load(const double *p) { return {_mm_loadu_pd(p)}; }
    static VecF64 broadcast(double x) { return {_mm_set1_pd(x)}; }
    void store(double *p) const { _mm_storeu_pd(p, v); }

    static VecF64
    loadEven(const double *p)
    {
        __m128d a = _mm_loadu_pd(p);
        __m128d b = _mm_loadu_pd(p + 2);
        return {_mm_shuffle_pd(a, b, 0x0)};
    }
    static VecF64
    loadOdd(const double *p)
    {
        __m128d a = _mm_loadu_pd(p);
        __m128d b = _mm_loadu_pd(p + 2);
        return {_mm_shuffle_pd(a, b, 0x3)};
    }

    friend VecF64 operator+(VecF64 a, VecF64 b) { return {_mm_add_pd(a.v, b.v)}; }
    friend VecF64 operator-(VecF64 a, VecF64 b) { return {_mm_sub_pd(a.v, b.v)}; }
    friend VecF64 operator*(VecF64 a, VecF64 b) { return {_mm_mul_pd(a.v, b.v)}; }
    friend VecF64 operator/(VecF64 a, VecF64 b) { return {_mm_div_pd(a.v, b.v)}; }

    static VecF64
    abs(VecF64 a)
    {
        return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)};
    }
    static VecF64 min(VecF64 a, VecF64 b) { return {_mm_min_pd(a.v, b.v)}; }
    static VecF64 max(VecF64 a, VecF64 b) { return {_mm_max_pd(a.v, b.v)}; }
    static VecF64
    roundNearest(VecF64 a)
    {
        return {_mm_round_pd(
            a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
    }

    VecF64 swapPairs() const { return {_mm_shuffle_pd(v, v, 0x1)}; }
    static VecF64
    addsub(VecF64 a, VecF64 b)
    {
        return {_mm_addsub_pd(a.v, b.v)};
    }

    void
    storeAsI32(std::int32_t *p) const
    {
        __m128i r = _mm_cvtpd_epi32(v);
        std::memcpy(p, &r, 2 * sizeof(std::int32_t));
    }
#else
    static constexpr int kLanes = 1;
    double v;

    static VecF64 load(const double *p) { return {*p}; }
    static VecF64 broadcast(double x) { return {x}; }
    void store(double *p) const { *p = v; }
    static VecF64 loadEven(const double *p) { return {p[0]}; }
    static VecF64 loadOdd(const double *p) { return {p[1]}; }

    friend VecF64 operator+(VecF64 a, VecF64 b) { return {a.v + b.v}; }
    friend VecF64 operator-(VecF64 a, VecF64 b) { return {a.v - b.v}; }
    friend VecF64 operator*(VecF64 a, VecF64 b) { return {a.v * b.v}; }
    friend VecF64 operator/(VecF64 a, VecF64 b) { return {a.v / b.v}; }

    static VecF64 abs(VecF64 a) { return {std::fabs(a.v)}; }
    static VecF64 min(VecF64 a, VecF64 b) { return {std::fmin(a.v, b.v)}; }
    static VecF64 max(VecF64 a, VecF64 b) { return {std::fmax(a.v, b.v)}; }
    static VecF64 roundNearest(VecF64 a) { return {std::nearbyint(a.v)}; }

    /** Degenerate single-lane stand-ins; the complex-pair kernels
     *  branch to a dedicated scalar loop instead of using these. */
    VecF64 swapPairs() const { return *this; }
    static VecF64 addsub(VecF64 a, VecF64 b) { return {a.v - b.v}; }

    void
    storeAsI32(std::int32_t *p) const
    {
        *p = static_cast<std::int32_t>(v);
    }
#endif
};

// ------------------------------------------------------------- VecF32

/** Packed f32 lanes (1 / 4 / 8 by level). */
struct VecF32 {
#if WILIS_SIMD_LEVEL == 2
    static constexpr int kLanes = 8;
    __m256 v;

    static VecF32 load(const float *p) { return {_mm256_loadu_ps(p)}; }
    static VecF32 broadcast(float x) { return {_mm256_set1_ps(x)}; }
    void store(float *p) const { _mm256_storeu_ps(p, v); }

    friend VecF32 operator+(VecF32 a, VecF32 b) { return {_mm256_add_ps(a.v, b.v)}; }
    friend VecF32 operator-(VecF32 a, VecF32 b) { return {_mm256_sub_ps(a.v, b.v)}; }
    friend VecF32 operator*(VecF32 a, VecF32 b) { return {_mm256_mul_ps(a.v, b.v)}; }

    static VecF32
    abs(VecF32 a)
    {
        return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v)};
    }
    static VecF32 min(VecF32 a, VecF32 b) { return {_mm256_min_ps(a.v, b.v)}; }
    static VecF32 max(VecF32 a, VecF32 b) { return {_mm256_max_ps(a.v, b.v)}; }
#elif WILIS_SIMD_LEVEL == 1
    static constexpr int kLanes = 4;
    __m128 v;

    static VecF32 load(const float *p) { return {_mm_loadu_ps(p)}; }
    static VecF32 broadcast(float x) { return {_mm_set1_ps(x)}; }
    void store(float *p) const { _mm_storeu_ps(p, v); }

    friend VecF32 operator+(VecF32 a, VecF32 b) { return {_mm_add_ps(a.v, b.v)}; }
    friend VecF32 operator-(VecF32 a, VecF32 b) { return {_mm_sub_ps(a.v, b.v)}; }
    friend VecF32 operator*(VecF32 a, VecF32 b) { return {_mm_mul_ps(a.v, b.v)}; }

    static VecF32
    abs(VecF32 a)
    {
        return {_mm_andnot_ps(_mm_set1_ps(-0.0f), a.v)};
    }
    static VecF32 min(VecF32 a, VecF32 b) { return {_mm_min_ps(a.v, b.v)}; }
    static VecF32 max(VecF32 a, VecF32 b) { return {_mm_max_ps(a.v, b.v)}; }
#else
    static constexpr int kLanes = 1;
    float v;

    static VecF32 load(const float *p) { return {*p}; }
    static VecF32 broadcast(float x) { return {x}; }
    void store(float *p) const { *p = v; }

    friend VecF32 operator+(VecF32 a, VecF32 b) { return {a.v + b.v}; }
    friend VecF32 operator-(VecF32 a, VecF32 b) { return {a.v - b.v}; }
    friend VecF32 operator*(VecF32 a, VecF32 b) { return {a.v * b.v}; }

    static VecF32 abs(VecF32 a) { return {std::fabs(a.v)}; }
    static VecF32 min(VecF32 a, VecF32 b) { return {std::fmin(a.v, b.v)}; }
    static VecF32 max(VecF32 a, VecF32 b) { return {std::fmax(a.v, b.v)}; }
#endif
};

// ------------------------------------------------------------- VecI32

/** Packed i32 lanes (1 / 4 / 8 by level). */
struct VecI32 {
#if WILIS_SIMD_LEVEL == 2
    static constexpr int kLanes = 8;
    __m256i v;

    static VecI32
    load(const std::int32_t *p)
    {
        return {_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p))};
    }
    static VecI32 broadcast(std::int32_t x) { return {_mm256_set1_epi32(x)}; }
    void
    store(std::int32_t *p) const
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }

    /** Lane i <- p[2i]. */
    static VecI32
    loadEven(const std::int32_t *p)
    {
        const __m256i idx =
            _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
        __m256i a = _mm256_permutevar8x32_epi32(load(p).v, idx);
        __m256i b = _mm256_permutevar8x32_epi32(load(p + 8).v, idx);
        return {_mm256_permute2x128_si256(a, b, 0x20)};
    }
    /** Lane i <- p[2i + 1]. */
    static VecI32
    loadOdd(const std::int32_t *p)
    {
        const __m256i idx =
            _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0);
        __m256i a = _mm256_permutevar8x32_epi32(load(p).v, idx);
        __m256i b = _mm256_permutevar8x32_epi32(load(p + 8).v, idx);
        return {_mm256_permute2x128_si256(a, b, 0x20)};
    }
    /** Lane i <- p[i / 2] (reads kLanes/2 elements only). */
    static VecI32
    loadHalfDup(const std::int32_t *p)
    {
        __m128i x =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        __m256i d = _mm256_inserti128_si256(
            _mm256_castsi128_si256(x), x, 1);
        const __m256i idx =
            _mm256_setr_epi32(0, 0, 1, 1, 2, 2, 3, 3);
        return {_mm256_permutevar8x32_epi32(d, idx)};
    }
    /** Lane i <- tbl[idx lane i], idx lanes in 0..3. */
    static VecI32
    lookup4(const std::int32_t tbl[4], VecI32 idx)
    {
        __m256i t = _mm256_broadcastsi128_si256(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tbl)));
        return {_mm256_permutevar8x32_epi32(t, idx.v)};
    }

    friend VecI32 operator+(VecI32 a, VecI32 b) { return {_mm256_add_epi32(a.v, b.v)}; }
    friend VecI32 operator-(VecI32 a, VecI32 b) { return {_mm256_sub_epi32(a.v, b.v)}; }
    static VecI32 max(VecI32 a, VecI32 b) { return {_mm256_max_epi32(a.v, b.v)}; }
    static VecI32 abs(VecI32 a) { return {_mm256_abs_epi32(a.v)}; }

    /** All-ones lanes where a > b. */
    static VecI32
    gtMask(VecI32 a, VecI32 b)
    {
        return {_mm256_cmpgt_epi32(a.v, b.v)};
    }
    /** mask lane all-ones -> b lane, else a lane. */
    static VecI32
    blend(VecI32 a, VecI32 b, VecI32 mask)
    {
        return {_mm256_blendv_epi8(a.v, b.v, mask.v)};
    }
    /** One bit per lane from a mask vector. */
    unsigned
    moveMask() const
    {
        return static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(v)));
    }

    std::int32_t
    reduceMax() const
    {
        __m128i m = _mm_max_epi32(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
        m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
        m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
        return _mm_cvtsi128_si32(m);
    }
#elif WILIS_SIMD_LEVEL == 1
    static constexpr int kLanes = 4;
    __m128i v;

    static VecI32
    load(const std::int32_t *p)
    {
        return {_mm_loadu_si128(reinterpret_cast<const __m128i *>(p))};
    }
    static VecI32 broadcast(std::int32_t x) { return {_mm_set1_epi32(x)}; }
    void
    store(std::int32_t *p) const
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
    }

    static VecI32
    loadEven(const std::int32_t *p)
    {
        __m128 a = _mm_castsi128_ps(load(p).v);
        __m128 b = _mm_castsi128_ps(load(p + 4).v);
        return {_mm_castps_si128(
            _mm_shuffle_ps(a, b, _MM_SHUFFLE(2, 0, 2, 0)))};
    }
    static VecI32
    loadOdd(const std::int32_t *p)
    {
        __m128 a = _mm_castsi128_ps(load(p).v);
        __m128 b = _mm_castsi128_ps(load(p + 4).v);
        return {_mm_castps_si128(
            _mm_shuffle_ps(a, b, _MM_SHUFFLE(3, 1, 3, 1)))};
    }
    static VecI32
    loadHalfDup(const std::int32_t *p)
    {
        __m128i x =
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p));
        return {_mm_shuffle_epi32(x, _MM_SHUFFLE(1, 1, 0, 0))};
    }
    static VecI32
    lookup4(const std::int32_t tbl[4], VecI32 idx)
    {
        __m128i t =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(tbl));
        // Per-lane byte control: 4*idx + {0,1,2,3}.
        __m128i ctrl = _mm_add_epi8(
            _mm_mullo_epi32(idx.v, _mm_set1_epi32(0x04040404)),
            _mm_set1_epi32(0x03020100));
        return {_mm_shuffle_epi8(t, ctrl)};
    }

    friend VecI32 operator+(VecI32 a, VecI32 b) { return {_mm_add_epi32(a.v, b.v)}; }
    friend VecI32 operator-(VecI32 a, VecI32 b) { return {_mm_sub_epi32(a.v, b.v)}; }
    static VecI32 max(VecI32 a, VecI32 b) { return {_mm_max_epi32(a.v, b.v)}; }
    static VecI32 abs(VecI32 a) { return {_mm_abs_epi32(a.v)}; }

    static VecI32
    gtMask(VecI32 a, VecI32 b)
    {
        return {_mm_cmpgt_epi32(a.v, b.v)};
    }
    static VecI32
    blend(VecI32 a, VecI32 b, VecI32 mask)
    {
        return {_mm_blendv_epi8(a.v, b.v, mask.v)};
    }
    unsigned
    moveMask() const
    {
        return static_cast<unsigned>(
            _mm_movemask_ps(_mm_castsi128_ps(v)));
    }

    std::int32_t
    reduceMax() const
    {
        __m128i m = _mm_max_epi32(
            v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
        m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
        return _mm_cvtsi128_si32(m);
    }
#else
    static constexpr int kLanes = 1;
    std::int32_t v;

    static VecI32 load(const std::int32_t *p) { return {*p}; }
    static VecI32 broadcast(std::int32_t x) { return {x}; }
    void store(std::int32_t *p) const { *p = v; }
    static VecI32 loadEven(const std::int32_t *p) { return {p[0]}; }
    static VecI32 loadOdd(const std::int32_t *p) { return {p[1]}; }
    static VecI32 loadHalfDup(const std::int32_t *p) { return {p[0]}; }
    static VecI32
    lookup4(const std::int32_t tbl[4], VecI32 idx)
    {
        return {tbl[idx.v]};
    }

    friend VecI32 operator+(VecI32 a, VecI32 b) { return {a.v + b.v}; }
    friend VecI32 operator-(VecI32 a, VecI32 b) { return {a.v - b.v}; }
    static VecI32 max(VecI32 a, VecI32 b) { return {std::max(a.v, b.v)}; }
    static VecI32 abs(VecI32 a) { return {a.v < 0 ? -a.v : a.v}; }

    static VecI32 gtMask(VecI32 a, VecI32 b) { return {a.v > b.v ? -1 : 0}; }
    static VecI32
    blend(VecI32 a, VecI32 b, VecI32 mask)
    {
        return {mask.v ? b.v : a.v};
    }
    unsigned moveMask() const { return v ? 1u : 0u; }
    std::int32_t reduceMax() const { return v; }
#endif
};

// ------------------------------------------------------------- VecI16

/** Packed i16 lanes (1 / 8 / 16 by level) with saturating adds. */
struct VecI16 {
#if WILIS_SIMD_LEVEL == 2
    static constexpr int kLanes = 16;
    __m256i v;

    static VecI16
    load(const std::int16_t *p)
    {
        return {_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p))};
    }
    static VecI16 broadcast(std::int16_t x) { return {_mm256_set1_epi16(x)}; }
    void
    store(std::int16_t *p) const
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }

    static VecI16
    deinterleave(const std::int16_t *p, int phase)
    {
        // Gather p[2i + phase] for i = 0..15 (per 128-bit lane, then
        // compact the qwords).
        const __m256i ctrl =
            phase == 0
                ? _mm256_setr_epi8(0, 1, 4, 5, 8, 9, 12, 13, -1, -1,
                                   -1, -1, -1, -1, -1, -1, 0, 1, 4, 5,
                                   8, 9, 12, 13, -1, -1, -1, -1, -1,
                                   -1, -1, -1)
                : _mm256_setr_epi8(2, 3, 6, 7, 10, 11, 14, 15, -1, -1,
                                   -1, -1, -1, -1, -1, -1, 2, 3, 6, 7,
                                   10, 11, 14, 15, -1, -1, -1, -1, -1,
                                   -1, -1, -1);
        __m256i a = _mm256_shuffle_epi8(load(p).v, ctrl);
        __m256i b = _mm256_shuffle_epi8(load(p + 16).v, ctrl);
        __m256i qa = _mm256_permute4x64_epi64(a, _MM_SHUFFLE(3, 1, 2, 0));
        __m256i qb = _mm256_permute4x64_epi64(b, _MM_SHUFFLE(3, 1, 2, 0));
        return {_mm256_inserti128_si256(qa,
                                        _mm256_castsi256_si128(qb), 1)};
    }
    static VecI16 loadEven(const std::int16_t *p) { return deinterleave(p, 0); }
    static VecI16 loadOdd(const std::int16_t *p) { return deinterleave(p, 1); }

    static VecI16
    lookup4(const std::int16_t tbl[4], VecI16 idx)
    {
        std::int64_t t64;
        std::memcpy(&t64, tbl, sizeof(t64));
        __m256i t = _mm256_set1_epi64x(t64);
        __m256i ctrl = _mm256_add_epi8(
            _mm256_mullo_epi16(idx.v, _mm256_set1_epi16(0x0202)),
            _mm256_set1_epi16(0x0100));
        return {_mm256_shuffle_epi8(t, ctrl)};
    }

    /** Saturating add / subtract. */
    static VecI16 adds(VecI16 a, VecI16 b) { return {_mm256_adds_epi16(a.v, b.v)}; }
    static VecI16 subs(VecI16 a, VecI16 b) { return {_mm256_subs_epi16(a.v, b.v)}; }
    static VecI16 max(VecI16 a, VecI16 b) { return {_mm256_max_epi16(a.v, b.v)}; }

    static VecI16
    gtMask(VecI16 a, VecI16 b)
    {
        return {_mm256_cmpgt_epi16(a.v, b.v)};
    }
    static VecI16
    blend(VecI16 a, VecI16 b, VecI16 mask)
    {
        return {_mm256_blendv_epi8(a.v, b.v, mask.v)};
    }
    unsigned
    moveMask() const
    {
        __m256i packed = _mm256_packs_epi16(v, _mm256_setzero_si256());
        packed = _mm256_permute4x64_epi64(packed, _MM_SHUFFLE(3, 1, 2, 0));
        return static_cast<unsigned>(_mm_movemask_epi8(
                   _mm256_castsi256_si128(packed))) &
               0xFFFFu;
    }
#elif WILIS_SIMD_LEVEL == 1
    static constexpr int kLanes = 8;
    __m128i v;

    static VecI16
    load(const std::int16_t *p)
    {
        return {_mm_loadu_si128(reinterpret_cast<const __m128i *>(p))};
    }
    static VecI16 broadcast(std::int16_t x) { return {_mm_set1_epi16(x)}; }
    void
    store(std::int16_t *p) const
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
    }

    static VecI16
    deinterleave(const std::int16_t *p, int phase)
    {
        const __m128i ctrl =
            phase == 0
                ? _mm_setr_epi8(0, 1, 4, 5, 8, 9, 12, 13, -1, -1, -1,
                                -1, -1, -1, -1, -1)
                : _mm_setr_epi8(2, 3, 6, 7, 10, 11, 14, 15, -1, -1,
                                -1, -1, -1, -1, -1, -1);
        __m128i a = _mm_shuffle_epi8(load(p).v, ctrl);
        __m128i b = _mm_shuffle_epi8(load(p + 8).v, ctrl);
        return {_mm_unpacklo_epi64(a, b)};
    }
    static VecI16 loadEven(const std::int16_t *p) { return deinterleave(p, 0); }
    static VecI16 loadOdd(const std::int16_t *p) { return deinterleave(p, 1); }

    static VecI16
    lookup4(const std::int16_t tbl[4], VecI16 idx)
    {
        __m128i t =
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(tbl));
        __m128i ctrl = _mm_add_epi8(
            _mm_mullo_epi16(idx.v, _mm_set1_epi16(0x0202)),
            _mm_set1_epi16(0x0100));
        return {_mm_shuffle_epi8(t, ctrl)};
    }

    static VecI16 adds(VecI16 a, VecI16 b) { return {_mm_adds_epi16(a.v, b.v)}; }
    static VecI16 subs(VecI16 a, VecI16 b) { return {_mm_subs_epi16(a.v, b.v)}; }
    static VecI16 max(VecI16 a, VecI16 b) { return {_mm_max_epi16(a.v, b.v)}; }

    static VecI16
    gtMask(VecI16 a, VecI16 b)
    {
        return {_mm_cmpgt_epi16(a.v, b.v)};
    }
    static VecI16
    blend(VecI16 a, VecI16 b, VecI16 mask)
    {
        return {_mm_blendv_epi8(a.v, b.v, mask.v)};
    }
    unsigned
    moveMask() const
    {
        __m128i packed = _mm_packs_epi16(v, _mm_setzero_si128());
        return static_cast<unsigned>(_mm_movemask_epi8(packed)) &
               0xFFu;
    }
#else
    static constexpr int kLanes = 1;
    std::int16_t v;

    static VecI16 load(const std::int16_t *p) { return {*p}; }
    static VecI16 broadcast(std::int16_t x) { return {x}; }
    void store(std::int16_t *p) const { *p = v; }
    static VecI16 loadEven(const std::int16_t *p) { return {p[0]}; }
    static VecI16 loadOdd(const std::int16_t *p) { return {p[1]}; }
    static VecI16
    lookup4(const std::int16_t tbl[4], VecI16 idx)
    {
        return {tbl[idx.v]};
    }

    static VecI16
    adds(VecI16 a, VecI16 b)
    {
        int s = static_cast<int>(a.v) + b.v;
        return {static_cast<std::int16_t>(std::clamp(s, -32768, 32767))};
    }
    static VecI16
    subs(VecI16 a, VecI16 b)
    {
        int s = static_cast<int>(a.v) - b.v;
        return {static_cast<std::int16_t>(std::clamp(s, -32768, 32767))};
    }
    static VecI16 max(VecI16 a, VecI16 b) { return {std::max(a.v, b.v)}; }

    static VecI16
    gtMask(VecI16 a, VecI16 b)
    {
        return {static_cast<std::int16_t>(a.v > b.v ? -1 : 0)};
    }
    static VecI16
    blend(VecI16 a, VecI16 b, VecI16 mask)
    {
        return {mask.v ? b.v : a.v};
    }
    unsigned moveMask() const { return v ? 1u : 0u; }
#endif
};

// ------------------------------------------------------------- VecU64

/**
 * Packed u64 lanes (1 / 2 / 4 by level), the integer substrate of
 * the batched counter-RNG kernels (common/random.hh SplitMix64-style
 * mixing in lanes). Only the operations that mix needs exist: add,
 * xor, logical shifts and a low-64 multiply. SSE/AVX2 have no 64x64
 * low multiply, so mulLo() composes it from 32x32 widening products
 * -- exact integer arithmetic, so every level computes identical
 * lane values (the kernel bit-exactness guarantee does not even need
 * IEEE reasoning here).
 */
struct VecU64 {
#if WILIS_SIMD_LEVEL == 2
    static constexpr int kLanes = 4;
    __m256i v;

    static VecU64
    load(const std::uint64_t *p)
    {
        return {_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p))};
    }
    static VecU64
    broadcast(std::uint64_t x)
    {
        return {_mm256_set1_epi64x(static_cast<long long>(x))};
    }
    void
    store(std::uint64_t *p) const
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }

    friend VecU64 operator+(VecU64 a, VecU64 b) { return {_mm256_add_epi64(a.v, b.v)}; }
    friend VecU64 operator^(VecU64 a, VecU64 b) { return {_mm256_xor_si256(a.v, b.v)}; }
    /** Logical right shift by an immediate count. */
    template <int N> VecU64 shr() const { return {_mm256_srli_epi64(v, N)}; }
    /** Logical left shift by an immediate count. */
    template <int N> VecU64 shl() const { return {_mm256_slli_epi64(v, N)}; }

    /** Low 64 bits of the per-lane product (exact mod 2^64). */
    static VecU64
    mulLo(VecU64 a, VecU64 b)
    {
        // lo64(a*b) = a_lo*b_lo + ((a_lo*b_hi + a_hi*b_lo) << 32),
        // where mul_epu32 multiplies the low 32 bits of each qword.
        __m256i a_hi = _mm256_srli_epi64(a.v, 32);
        __m256i b_hi = _mm256_srli_epi64(b.v, 32);
        __m256i lo = _mm256_mul_epu32(a.v, b.v);
        __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b.v),
                                         _mm256_mul_epu32(a.v, b_hi));
        return {_mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32))};
    }
#elif WILIS_SIMD_LEVEL == 1
    static constexpr int kLanes = 2;
    __m128i v;

    static VecU64
    load(const std::uint64_t *p)
    {
        return {_mm_loadu_si128(reinterpret_cast<const __m128i *>(p))};
    }
    static VecU64
    broadcast(std::uint64_t x)
    {
        return {_mm_set1_epi64x(static_cast<long long>(x))};
    }
    void
    store(std::uint64_t *p) const
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
    }

    friend VecU64 operator+(VecU64 a, VecU64 b) { return {_mm_add_epi64(a.v, b.v)}; }
    friend VecU64 operator^(VecU64 a, VecU64 b) { return {_mm_xor_si128(a.v, b.v)}; }
    template <int N> VecU64 shr() const { return {_mm_srli_epi64(v, N)}; }
    template <int N> VecU64 shl() const { return {_mm_slli_epi64(v, N)}; }

    static VecU64
    mulLo(VecU64 a, VecU64 b)
    {
        __m128i a_hi = _mm_srli_epi64(a.v, 32);
        __m128i b_hi = _mm_srli_epi64(b.v, 32);
        __m128i lo = _mm_mul_epu32(a.v, b.v);
        __m128i cross = _mm_add_epi64(_mm_mul_epu32(a_hi, b.v),
                                      _mm_mul_epu32(a.v, b_hi));
        return {_mm_add_epi64(lo, _mm_slli_epi64(cross, 32))};
    }
#else
    static constexpr int kLanes = 1;
    std::uint64_t v;

    static VecU64 load(const std::uint64_t *p) { return {*p}; }
    static VecU64 broadcast(std::uint64_t x) { return {x}; }
    void store(std::uint64_t *p) const { *p = v; }

    friend VecU64 operator+(VecU64 a, VecU64 b) { return {a.v + b.v}; }
    friend VecU64 operator^(VecU64 a, VecU64 b) { return {a.v ^ b.v}; }
    template <int N> VecU64 shr() const { return {v >> N}; }
    template <int N> VecU64 shl() const { return {v << N}; }

    static VecU64 mulLo(VecU64 a, VecU64 b) { return {a.v * b.v}; }
#endif
};

} // namespace WILIS_SIMD_NS
} // namespace simd
} // namespace wilis

#endif // WILIS_COMMON_SIMD_HH
