/**
 * @file
 * Runtime-dispatched SIMD kernel registry for the PHY/decoder hot
 * paths.
 *
 * The three hottest inner loops of the simulator -- soft-LLR
 * demapping, the trellis add-compare-select sweep shared by
 * Viterbi/SOVA/BCJR, and the per-sample complex channel arithmetic --
 * are expressed once against the portable packed-vector layer in
 * common/simd.hh and compiled three times: scalar, SSE4.2 and AVX2
 * (kernels_scalar.cc / kernels_sse42.cc / kernels_avx2.cc). At
 * startup the dispatcher picks the widest backend the host supports
 * (CPUID via common/cpu_features.hh); tests, benches and scenario
 * specs can force a backend through WILIS_KERNEL_BACKEND or a
 * KernelPolicy.
 *
 * Numerical-equivalence policy: every backend is BIT-EXACT with the
 * scalar reference. Integer kernels use identical i32 arithmetic;
 * floating kernels use only IEEE-exact f64 operations (add, sub, mul,
 * div, abs, min, max, round-to-nearest) in the same order as the
 * scalar code, and never fuse into FMA. Backend selection therefore
 * changes simulation *speed* only, never simulation *physics* --
 * pinned by tests/test_simd_kernels.cc on randomized inputs and by
 * the rate x channel grid. The layer also exposes packed f32/i16 ops
 * (e.g. the saturating i16 ACS prototype below); those trade
 * precision for width and are benchmarked but deliberately not wired
 * into the decode path.
 */

#ifndef WILIS_COMMON_KERNELS_HH
#define WILIS_COMMON_KERNELS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace wilis {
namespace kernels {

/** Kernel backend identifiers, in increasing vector width. */
enum class Backend {
    /** Portable scalar reference (the semantic ground truth). */
    Scalar = 0,
    /** SSE4.2, 128-bit lanes. */
    Sse42 = 1,
    /** AVX2, 256-bit lanes. */
    Avx2 = 2,
};

/** Registry name of a backend ("scalar", "sse4.2", "avx2"). */
const char *backendName(Backend b);

/**
 * Parse a backend name ("scalar", "sse4.2"/"sse42", "avx2"). "auto"
 * and "" return no value (meaning: best supported).
 */
bool parseBackend(const std::string &name, Backend *out);

/**
 * Per-scenario kernel selection, threaded through sim::ScenarioSpec /
 * sim::NetworkSpec so sweeps can A/B backends from configuration
 * alone. "auto" keeps the process-wide default (the widest supported
 * backend, or whatever WILIS_KERNEL_BACKEND forced).
 */
struct KernelPolicy {
    /** Requested backend name: "auto", "scalar", "sse4.2", "avx2". */
    std::string backend = "auto";
};

/**
 * Trellis structure handed to the ACS kernels as flat i32 arrays (one
 * entry per state, SIMD-friendly). The vector backends additionally
 * rely on the butterfly layout of a shift-register code --
 * pred0[s] = 2*(s % (n/2)), pred1[s] = pred0[s] + 1,
 * next0[s] = s / 2, next1[s] = n/2 + s / 2 -- which
 * decode/trellis_kernels.cc asserts once when building the view.
 */
struct TrellisView {
    /** Number of states (a multiple of the widest vector width). */
    int nStates;
    /** Predecessor state of arrival state s via choice 0. */
    const std::int32_t *pred0;
    /** Predecessor state of arrival state s via choice 1. */
    const std::int32_t *pred1;
    /** Branch-metric index (0..3) of reverse transition choice 0. */
    const std::int32_t *revOut0;
    /** Branch-metric index (0..3) of reverse transition choice 1. */
    const std::int32_t *revOut1;
    /** Forward next state for input 0. */
    const std::int32_t *next0;
    /** Forward next state for input 1. */
    const std::int32_t *next1;
    /** Branch-metric index (0..3) of the forward transition for 0. */
    const std::int32_t *fwdOut0;
    /** Branch-metric index (0..3) of the forward transition for 1. */
    const std::int32_t *fwdOut1;
    /** i16 copy of revOut0 for the narrow ACS prototype. */
    const std::int16_t *revOut0_16;
    /** i16 copy of revOut1 for the narrow ACS prototype. */
    const std::int16_t *revOut1_16;
};

/** Modulation kind for the batched demapper (matches phy::Modulation). */
enum : int {
    /** BPSK, 1 bit per subcarrier. */
    kDemapBpsk = 0,
    /** QPSK, 2 bits per subcarrier. */
    kDemapQpsk = 1,
    /** QAM-16, 4 bits per subcarrier. */
    kDemapQam16 = 2,
    /** QAM-64, 6 bits per subcarrier. */
    kDemapQam64 = 3,
};

/**
 * Flattened view of a softphy::CalibrationTable consumed by the
 * batched PER-interpolation kernel (perDrawBatch): per (rate, bin)
 * cell the measured frame error rate and the log geometric-mean
 * packet BERs of clean/errored frames, precomputed through the same
 * call chain CalibrationTable::pberFeedback() uses inline, so the
 * batched draw is bit-identical to the scalar one. The arrays are
 * indexed [rate * num_bins + bin] and owned by the caller (see
 * CalibrationTable::flatten()).
 */
struct PerTableView {
    /** CalibrationCell::per() per cell. */
    const double *per;
    /** std::log(CalibrationCell::pberOkGeo()) per cell. */
    const double *logPberOk;
    /** std::log(CalibrationCell::pberBadGeo()) per cell. */
    const double *logPberBad;
    /** SNR bins per rate row. */
    int numBins;
    /** Lower edge of SNR bin 0, in dB. */
    double snrLoDb;
    /** SNR bin width in dB. */
    double snrStepDb;
};

/**
 * One backend's kernel table. All entries are non-null; the scalar
 * table is the semantic reference for every function.
 */
struct Ops {
    /** Which backend this table implements. */
    Backend backend;
    /** Registry name, e.g. "avx2". */
    const char *name;

    /**
     * Forward add-compare-select over all states: pm_out[s] =
     * max over b of (pm_in[pred_b[s]] + bm[revOut_b[s]]), recording
     * the winning choice bit per state in @p choices and, when
     * @p delta is non-null, the |winner - loser| margin per state.
     */
    void (*acsForward)(const TrellisView &tv,
                       const std::int32_t *pm_in,
                       const std::int32_t bm[4], std::int32_t *pm_out,
                       std::uint64_t *choices, std::int32_t *delta);

    /**
     * Backward path-metric step: beta_out[s] = max over x of
     * (bm[fwdOut_x[s]] + beta_next[next_x[s]]).
     */
    void (*acsBackward)(const TrellisView &tv,
                        const std::int32_t *beta_next,
                        const std::int32_t bm[4],
                        std::int32_t *beta_out);

    /**
     * Max-log BCJR decision unit for one step: best_x =
     * max over s of (alpha[s] + bm[fwdOut_x[s]] + beta[next_x[s]]).
     */
    void (*bcjrDecision)(const TrellisView &tv,
                         const std::int32_t *alpha,
                         const std::int32_t bm[4],
                         const std::int32_t *beta,
                         std::int32_t *best0, std::int32_t *best1);

    /**
     * Subtract the maximum from every metric; entries at or below
     * @p floor_threshold are pinned to @p floor_value instead.
     */
    void (*normalizeMetrics)(std::int32_t *pm, int n,
                             std::int32_t floor_threshold,
                             std::int32_t floor_value);

    /** Index of the first maximum element. */
    int (*bestState)(const std::int32_t *pm, int n);

    /**
     * Batched soft demap of @p n equalized symbols: per symbol the
     * Tosato-Bisaglia axis metrics of @p mod_kind (kDemap*), scaled
     * by @p scale then the per-symbol weight (null = 1.0), quantized
     * to @p soft_width bits with @p full_scale mapped to the
     * positive rail. Writes bitsPerSubcarrier() values per symbol,
     * symbol-major, to @p out.
     */
    void (*demapBatch)(int mod_kind, const Sample *ys,
                       const double *weights, size_t n, double scale,
                       int soft_width, double full_scale,
                       SoftBit *out);

    /** In-place complex scale: s[i] *= h (flat-fading application). */
    void (*scaleComplex)(Sample *s, size_t n, Sample h);

    /**
     * Noise injection: s[i] += sigma * (gauss[2i] + j*gauss[2i+1])
     * for @p n complex samples (gauss holds 2n unit deviates).
     */
    void (*axpyNoise)(Sample *s, size_t n, double sigma,
                      const double *gauss);

    /**
     * Prototype saturating i16 ACS (the narrow path-metric variant
     * the hardware uses). NOT bit-compatible with the i32 decode
     * path -- exposed for benchmarking the extra vector width and
     * pinned scalar<->SIMD-exact by tests, but not dispatched from
     * the decoders (see the numerical-equivalence policy above).
     */
    void (*acsForwardI16)(const TrellisView &tv,
                          const std::int16_t *pm_in,
                          const std::int16_t bm[4],
                          std::int16_t *pm_out,
                          std::uint64_t *choices);

    /**
     * Packed f32 axpy, y[i] += a * x[i]: the layer's f32 contract
     * (mul + add, no FMA), bit-exact across backends.
     */
    void (*axpyF32)(float *y, const float *x, size_t n, float a);

    // ---- structure-of-arrays analytic-engine kernels -------------
    // (see docs/ARCHITECTURE.md "Structure-of-arrays analytic
    // engine"). Transcendentals (log, log10, exp) are evaluated by
    // the ONE libm call the scalar code makes, per lane, in every
    // backend -- only the surrounding integer mixing and IEEE-exact
    // f64 arithmetic is vectorized, which is what keeps the batched
    // paths bit-identical to the per-user scalar walks they replace.

    /**
     * Batched keyed counter-RNG draw: out[i] = the u01 double
     * common::CounterRng(keys[i]).doubleAt(counter) yields -- many
     * independent per-user streams sampled at one shared counter
     * (one slot), the multi-cell engine's (seed, user, cell, slot)
     * key scheme evaluated in lanes.
     */
    void (*rngU01Keyed)(const std::uint64_t *keys, size_t n,
                        std::uint64_t counter, double *out);

    /**
     * Batched SINR accumulation over the users x cells linear gain
     * matrix, one granted user per lane entry: per entry i with
     * serving cell serving[i] and gain row gain_rows[i],
     *
     *   interf = sum over c != serving[i], active[c] != 0, ascending
     *            of gain_rows[i][c] * fade(keys[i], t * cells + c)
     *   fade(k, ctr) = -log(max(1 - u01(k, ctr), 1e-300))  (iid exp)
     *   lin = sig[i] / (1 + interf)
     *   sinr_db[i] = lin > 0 ? 10 * log10(lin) : zero_sinr_db
     *
     * The interference sum stays sequential in ascending cell order
     * in every backend (FP addition is not associative); lanes
     * vectorize the u64 counter mixing across entries.
     */
    void (*sinrAccumBatch)(const double *const *gain_rows,
                           const std::int32_t *serving,
                           const std::uint64_t *fade_keys,
                           const std::uint8_t *active, int cells,
                           std::uint64_t t, const double *sig,
                           size_t n, double zero_sinr_db,
                           double *sinr_db);

    /**
     * Batched PER-table interpolation + Bernoulli frame draw over a
     * flattened calibration table: per entry i, replicate
     * AnalyticLink::drawAt(rates[i], t, snr_db[i]) for a draw stream
     * keyed keys[i] -- linear-interpolated PER lookup, ok[i] =
     * (u01(keys[i], t) >= per), and the log-interpolated calibrated
     * packet-BER feedback conditioned on the outcome.
     */
    void (*perDrawBatch)(const PerTableView &tv,
                         const std::int32_t *rates,
                         const double *snr_db,
                         const std::uint64_t *keys, std::uint64_t t,
                         size_t n, std::uint8_t *ok, double *pber);

    /**
     * Proportional-fair EWMA decay over a cell's users: avg[i] =
     * (1 - a) * avg[i] + a * served_i, where served_i is
     * served_bits for i == granted and 0.0 otherwise (the
     * mac::CellScheduler::update() recurrence, element-parallel).
     */
    void (*pfDecay)(double *avg, size_t n, double a,
                    std::int32_t granted, double served_bits);
};

/**
 * The active kernel table. First use resolves WILIS_KERNEL_BACKEND
 * (unknown names are fatal; a known but unsupported backend warns and
 * falls back) and defaults to the widest host-supported backend.
 */
const Ops &ops();

/** Backend of the active table. */
Backend activeBackend();

/** True if @p b is compiled in and executable on this host. */
bool backendSupported(Backend b);

/** All backends executable on this host, narrowest first. */
std::vector<Backend> availableBackends();

/**
 * Switch the active table. Returns false (and leaves the table
 * unchanged) if the backend is unsupported on this host. Not safe
 * to call while worker threads are mid-kernel; switch between runs.
 */
bool setBackend(Backend b);

/**
 * Apply a scenario's KernelPolicy: "auto" keeps the current table,
 * anything else selects that backend. WILIS_KERNEL_BACKEND, when
 * set, wins over per-scenario policies so CI can force a backend
 * globally. Unknown names are fatal; unsupported ones warn and keep
 * the current table. Returns the backend active afterwards.
 *
 * The table is process-global: a non-"auto" policy affects every
 * harness in the process, so A/B comparisons must run one backend
 * at a time (see ScenarioSpec::kernel), and backend-comparison
 * benches/tests select tables explicitly via setBackend() instead.
 */
Backend applyPolicy(const KernelPolicy &policy);

} // namespace kernels
} // namespace wilis

#endif // WILIS_COMMON_KERNELS_HH
