#include "common/snapshot.hh"

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace wilis {

namespace {

// Eight bytes of magic: a snapshot is not a config file, a trace or
// a report, and feeding it to the wrong reader must fail on byte 0.
const char kMagic[8] = {'W', 'L', 'S', 'N', 'A', 'P', '0', '\n'};

// Container format version: bump when the header layout itself (not
// a caller's payload) changes shape.
constexpr std::uint32_t kContainerVersion = 1;

} // namespace

// ---------------------------------------------------- SnapshotWriter

SnapshotWriter::SnapshotWriter(std::uint32_t payload_version,
                               const std::string &fingerprint)
{
    buf.append(kMagic, sizeof(kMagic));
    u32(kContainerVersion);
    u32(payload_version);
    str(fingerprint);
}

void
SnapshotWriter::u8(std::uint8_t v)
{
    buf += static_cast<char>(v);
}

void
SnapshotWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void
SnapshotWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void
SnapshotWriter::i64(std::int64_t v)
{
    u64(static_cast<std::uint64_t>(v));
}

void
SnapshotWriter::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
SnapshotWriter::str(const std::string &v)
{
    u64(v.size());
    buf += v;
}

void
SnapshotWriter::marker(std::uint32_t tag)
{
    u32(tag);
}

void
SnapshotWriter::save(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out.good())
            wilis_fatal("cannot write snapshot '%s'", tmp.c_str());
        out.write(buf.data(),
                  static_cast<std::streamsize>(buf.size()));
        out.flush();
        if (!out.good())
            wilis_fatal("short write on snapshot '%s'", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        wilis_fatal("cannot rename snapshot '%s' -> '%s'",
                    tmp.c_str(), path.c_str());
}

// ---------------------------------------------------- SnapshotReader

SnapshotReader::SnapshotReader(std::string bytes, std::string origin,
                               std::uint32_t payload_version,
                               const std::string &fingerprint)
    : buf(std::move(bytes)), origin_(std::move(origin))
{
    need(sizeof(kMagic));
    if (buf.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
        wilis_fatal("'%s' is not a WiLIS snapshot (bad magic)",
                    origin_.c_str());
    pos = sizeof(kMagic);
    const std::uint32_t container = u32();
    if (container != kContainerVersion)
        wilis_fatal("snapshot '%s': container version %u, this "
                    "build reads %u",
                    origin_.c_str(), container, kContainerVersion);
    const std::uint32_t payload = u32();
    if (payload != payload_version)
        wilis_fatal("snapshot '%s': payload version %u, this build "
                    "expects %u",
                    origin_.c_str(), payload, payload_version);
    const std::string fp = str();
    if (fp != fingerprint)
        wilis_fatal("snapshot '%s' was written for a different "
                    "spec:\n  snapshot: %s\n  resuming: %s",
                    origin_.c_str(), fp.c_str(),
                    fingerprint.c_str());
}

SnapshotReader::SnapshotReader(const std::string &path,
                               std::uint32_t payload_version,
                               const std::string &fingerprint)
    : SnapshotReader(
          [&path] {
              std::ifstream in(path, std::ios::binary);
              if (!in.good())
                  wilis_fatal("cannot read snapshot '%s'",
                              path.c_str());
              std::ostringstream ss;
              ss << in.rdbuf();
              return ss.str();
          }(),
          path, payload_version, fingerprint)
{}

SnapshotReader
SnapshotReader::fromBytes(const std::string &bytes,
                          std::uint32_t payload_version,
                          const std::string &fingerprint)
{
    return SnapshotReader(bytes, "<memory>", payload_version,
                          fingerprint);
}

void
SnapshotReader::need(size_t n) const
{
    if (pos + n > buf.size())
        wilis_fatal("snapshot '%s' is truncated: need %zu bytes at "
                    "offset %zu, have %zu",
                    origin_.c_str(), n, pos, buf.size());
}

std::uint8_t
SnapshotReader::u8()
{
    need(1);
    return static_cast<std::uint8_t>(buf[pos++]);
}

std::uint32_t
SnapshotReader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(buf[pos + i]))
             << (8 * i);
    pos += 4;
    return v;
}

std::uint64_t
SnapshotReader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(buf[pos + i]))
             << (8 * i);
    pos += 8;
    return v;
}

std::int64_t
SnapshotReader::i64()
{
    return static_cast<std::int64_t>(u64());
}

double
SnapshotReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
SnapshotReader::str()
{
    const std::uint64_t n = u64();
    need(static_cast<size_t>(n));
    std::string v = buf.substr(pos, static_cast<size_t>(n));
    pos += static_cast<size_t>(n);
    return v;
}

void
SnapshotReader::marker(std::uint32_t tag)
{
    const std::uint32_t got = u32();
    if (got != tag)
        wilis_fatal("snapshot '%s': section marker mismatch at "
                    "offset %zu (expected 0x%08x, found 0x%08x) -- "
                    "writer/reader field skew",
                    origin_.c_str(), pos - 4, tag, got);
}

void
SnapshotReader::done() const
{
    if (pos != buf.size())
        wilis_fatal("snapshot '%s': %zu trailing bytes after the "
                    "payload",
                    origin_.c_str(), buf.size() - pos);
}

} // namespace wilis
