/**
 * @file
 * Minimal persistent worker pool. The paper's software channel is
 * multi-threaded because AWGN noise generation alone saturates a quad
 * core (section 3); AwgnChannel and the BER sweep harness share this
 * pool implementation.
 *
 * All queue state is guarded by one mutex and annotated for clang's
 * thread-safety analysis, so a member access outside the lock is a
 * compile error on the -Werror=thread-safety CI leg, not a latent
 * race.
 */

#ifndef WILIS_COMMON_THREAD_POOL_HH
#define WILIS_COMMON_THREAD_POOL_HH

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.hh"
#include "common/thread_annotations.hh"

namespace wilis {

/** Fixed-size pool executing parallel index ranges. */
class ThreadPool
{
  public:
    /** @param num_threads Worker count; 0 = hardware concurrency. */
    explicit ThreadPool(int num_threads = 0);
    /** Drains and joins every worker. */
    ~ThreadPool();

    /** Pools own their threads: not copyable. */
    ThreadPool(const ThreadPool &) = delete;
    /** Pools own their threads: not copyable. */
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of workers. */
    int size() const { return static_cast<int>(workers.size()); }

    /**
     * Run fn(chunk_index) for chunk_index in [0, num_chunks) across
     * the pool; blocks until all chunks complete. fn must be
     * thread-safe across distinct chunk indices.
     */
    void parallelFor(std::uint64_t num_chunks,
                     const std::function<void(std::uint64_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    Mutex mtx;
    ConditionVariable cv_work;
    ConditionVariable cv_done;
    /** Live job, non-null only while a parallelFor is in flight. */
    const std::function<void(std::uint64_t)> *job
        WILIS_GUARDED_BY(mtx) = nullptr;
    /** Next chunk index to hand out. */
    std::uint64_t next_chunk WILIS_GUARDED_BY(mtx) = 0;
    /** Chunk count of the live job. */
    std::uint64_t total_chunks WILIS_GUARDED_BY(mtx) = 0;
    /** Chunks completed so far (completion condition). */
    std::uint64_t done_chunks WILIS_GUARDED_BY(mtx) = 0;
    /** Bumped per job so sleeping workers recognize new work. */
    std::uint64_t generation WILIS_GUARDED_BY(mtx) = 0;
    /** Set once by the destructor to drain the pool. */
    bool shutdown WILIS_GUARDED_BY(mtx) = false;
};

} // namespace wilis

#endif // WILIS_COMMON_THREAD_POOL_HH
