/**
 * @file
 * Minimal persistent worker pool. The paper's software channel is
 * multi-threaded because AWGN noise generation alone saturates a quad
 * core (section 3); AwgnChannel and the BER sweep harness share this
 * pool implementation.
 */

#ifndef WILIS_COMMON_THREAD_POOL_HH
#define WILIS_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wilis {

/** Fixed-size pool executing parallel index ranges. */
class ThreadPool
{
  public:
    /** @param num_threads Worker count; 0 = hardware concurrency. */
    explicit ThreadPool(int num_threads = 0);
    /** Drains and joins every worker. */
    ~ThreadPool();

    /** Pools own their threads: not copyable. */
    ThreadPool(const ThreadPool &) = delete;
    /** Pools own their threads: not copyable. */
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of workers. */
    int size() const { return static_cast<int>(workers.size()); }

    /**
     * Run fn(chunk_index) for chunk_index in [0, num_chunks) across
     * the pool; blocks until all chunks complete. fn must be
     * thread-safe across distinct chunk indices.
     */
    void parallelFor(std::uint64_t num_chunks,
                     const std::function<void(std::uint64_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::mutex mtx;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    const std::function<void(std::uint64_t)> *job = nullptr;
    std::uint64_t next_chunk = 0;
    std::uint64_t total_chunks = 0;
    std::uint64_t done_chunks = 0;
    std::uint64_t generation = 0;
    bool shutdown = false;
};

} // namespace wilis

#endif // WILIS_COMMON_THREAD_POOL_HH
