/**
 * @file
 * Runtime CPU feature detection for the SIMD kernel layer. Queries
 * the host once (CPUID on x86) and caches the answer; non-x86 hosts
 * report no extensions and the kernel dispatcher falls back to the
 * scalar backend.
 */

#ifndef WILIS_COMMON_CPU_FEATURES_HH
#define WILIS_COMMON_CPU_FEATURES_HH

#include <string>

namespace wilis {
namespace cpu {

/** True if the host executes SSE4.2 instructions. */
bool hasSse42();

/** True if the host executes AVX2 instructions. */
bool hasAvx2();

/** Short human-readable feature summary, e.g. "sse4.2 avx2". */
std::string featureString();

} // namespace cpu
} // namespace wilis

#endif // WILIS_COMMON_CPU_FEATURES_HH
