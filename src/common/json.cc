#include "common/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace wilis {
namespace json {

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

// ------------------------------------------------------- JsonWriter

void
JsonWriter::newlineIndent()
{
    out += '\n';
    out.append(2 * stack.size(), ' ');
}

void
JsonWriter::beforeValue()
{
    if (stack.empty()) {
        wilis_assert(!rootDone, "JsonWriter: two root values");
        return;
    }
    auto &top = stack.back();
    if (top.first == 'o') {
        wilis_assert(keyPending,
                     "JsonWriter: object value without a key()");
        keyPending = false;
        return;
    }
    if (top.second++ > 0)
        out += ',';
    newlineIndent();
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    wilis_assert(!stack.empty() && stack.back().first == 'o',
                 "JsonWriter: key() outside an object");
    wilis_assert(!keyPending, "JsonWriter: two key() calls in a row");
    if (stack.back().second++ > 0)
        out += ',';
    newlineIndent();
    out += '"';
    out += escape(name);
    out += "\": ";
    keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out += '{';
    stack.emplace_back('o', 0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    wilis_assert(!stack.empty() && stack.back().first == 'o' &&
                     !keyPending,
                 "JsonWriter: unbalanced endObject()");
    const bool empty = stack.back().second == 0;
    stack.pop_back();
    if (!empty)
        newlineIndent();
    out += '}';
    if (stack.empty())
        rootDone = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out += '[';
    stack.emplace_back('a', 0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    wilis_assert(!stack.empty() && stack.back().first == 'a',
                 "JsonWriter: unbalanced endArray()");
    const bool empty = stack.back().second == 0;
    stack.pop_back();
    if (!empty)
        newlineIndent();
    out += ']';
    if (stack.empty())
        rootDone = true;
    return *this;
}

JsonWriter &
JsonWriter::valueRaw(const std::string &token)
{
    beforeValue();
    out += token;
    if (stack.empty())
        rootDone = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    return valueRaw("\"" + escape(v) + "\"");
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    return valueRaw(
        strprintf("%llu", static_cast<unsigned long long>(v)));
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    return valueRaw(strprintf("%lld", static_cast<long long>(v)));
}

JsonWriter &
JsonWriter::value(int v)
{
    return valueRaw(strprintf("%d", v));
}

JsonWriter &
JsonWriter::valueBool(bool v)
{
    return valueRaw(v ? "true" : "false");
}

JsonWriter &
JsonWriter::valueDouble(double v, const char *fmt)
{
    // wilis-lint note: strprintf's format attribute wants a literal;
    // the two callers pass compile-time constants.
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return valueRaw(buf);
}

const std::string &
JsonWriter::str() const
{
    wilis_assert(stack.empty() && rootDone,
                 "JsonWriter: str() on an unbalanced document");
    return out;
}

// ------------------------------------------------------- JsonValue

/** Strict recursive-descent parser over a complete document. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string origin)
        : src(text), where(std::move(origin))
    {}

    JsonValue
    document()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos != src.size())
            fail("trailing bytes after the JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        wilis_fatal("%s: malformed JSON at byte %zu: %s",
                    where.c_str(), pos, what.c_str());
    }

    void
    skipWs()
    {
        while (pos < src.size() &&
               (src[pos] == ' ' || src[pos] == '\n' ||
                src[pos] == '\t' || src[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= src.size())
            fail("unexpected end of input");
        return src[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(strprintf("expected '%c', found '%c'", c,
                           src[pos]));
        ++pos;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const size_t n = std::string(lit).size();
        if (src.compare(pos, n, lit) != 0)
            return false;
        pos += n;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= src.size())
                fail("unterminated string");
            char c = src[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= src.size())
                fail("unterminated escape");
            char e = src[pos++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos + 4 > src.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = src[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |=
                            static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |=
                            static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                if (code > 0x7F)
                    fail("non-ASCII \\u escape (unsupported)");
                out += static_cast<char>(code);
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        JsonValue v;
        if (c == '{') {
            ++pos;
            v.kind_ = JsonValue::Kind::Object;
            if (peek() == '}') {
                ++pos;
                return v;
            }
            while (true) {
                std::string k = (skipWs(), parseString());
                expect(':');
                v.members_.emplace_back(std::move(k),
                                        parseValue());
                char t = peek();
                ++pos;
                if (t == '}')
                    return v;
                if (t != ',')
                    fail("expected ',' or '}' in object");
            }
        }
        if (c == '[') {
            ++pos;
            v.kind_ = JsonValue::Kind::Array;
            if (peek() == ']') {
                ++pos;
                return v;
            }
            while (true) {
                v.items_.push_back(parseValue());
                char t = peek();
                ++pos;
                if (t == ']')
                    return v;
                if (t != ',')
                    fail("expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            v.kind_ = JsonValue::Kind::String;
            v.scalar = parseString();
            return v;
        }
        if (consumeLiteral("true")) {
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = true;
            return v;
        }
        if (consumeLiteral("false")) {
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = false;
            return v;
        }
        if (consumeLiteral("null"))
            return v;
        // Number: keep the raw token so re-emission is byte-exact.
        const size_t start = pos;
        if (src[pos] == '-')
            ++pos;
        while (pos < src.size() &&
               (std::isdigit(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '.' || src[pos] == 'e' ||
                src[pos] == 'E' || src[pos] == '+' ||
                src[pos] == '-'))
            ++pos;
        if (pos == start)
            fail("unrecognized value");
        v.kind_ = JsonValue::Kind::Number;
        v.scalar = src.substr(start, pos - start);
        char *end = nullptr;
        errno = 0;
        std::strtod(v.scalar.c_str(), &end);
        if (errno != 0 || end == nullptr || *end != '\0')
            fail(strprintf("malformed number '%s'",
                           v.scalar.c_str()));
        return v;
    }

    const std::string &src;
    std::string where;
    size_t pos = 0;
};

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text, "<string>").document();
}

JsonValue
JsonValue::parseFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        wilis_fatal("cannot read JSON file '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return JsonParser(ss.str(), path).document();
}

bool
JsonValue::asBool() const
{
    wilis_assert(kind_ == Kind::Bool, "JSON value is not a bool");
    return bool_;
}

const std::string &
JsonValue::raw() const
{
    wilis_assert(kind_ == Kind::Number,
                 "JSON value is not a number");
    return scalar;
}

double
JsonValue::asDouble() const
{
    return std::strtod(raw().c_str(), nullptr);
}

std::int64_t
JsonValue::asInt() const
{
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(raw().c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        wilis_fatal("JSON number '%s' is not an int64",
                    raw().c_str());
    return v;
}

std::uint64_t
JsonValue::asU64() const
{
    const std::string &t = raw();
    if (!t.empty() && t[0] == '-')
        wilis_fatal("JSON number '%s' is not a uint64", t.c_str());
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        wilis_fatal("JSON number '%s' is not a uint64", t.c_str());
    return v;
}

const std::string &
JsonValue::asString() const
{
    wilis_assert(kind_ == Kind::String,
                 "JSON value is not a string");
    return scalar;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    wilis_assert(kind_ == Kind::Array, "JSON value is not an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    wilis_assert(kind_ == Kind::Object,
                 "JSON value is not an object");
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &m : members())
        if (m.first == key)
            return &m.second;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        wilis_fatal("JSON object has no member '%s'", key.c_str());
    return *v;
}

} // namespace json
} // namespace wilis
