/**
 * @file
 * AVX2 instantiation of the kernel layer (4 f64 / 8 i32 lanes).
 * CMake compiles this file with -mavx2 on x86; elsewhere the backend
 * reports itself unavailable and dispatch falls back. No FMA flags:
 * the kernels must not contract multiply-add chains, or they would
 * drift from the scalar reference.
 */

#if defined(__AVX2__)
#define WILIS_SIMD_LEVEL 2
#endif
#include "common/kernels_impl.hh"

namespace wilis {
namespace kernels {
namespace detail {

const Ops *
opsAvx2()
{
#if defined(__AVX2__)
    return &simd_avx2::kOps;
#else
    return nullptr;
#endif
}

} // namespace detail
} // namespace kernels
} // namespace wilis
