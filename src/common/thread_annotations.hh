/**
 * @file
 * Clang thread-safety-analysis annotation macros.
 *
 * The determinism contract of every engine in this repo -- identical
 * output at any worker-thread count -- rests on a small set of
 * locking and ownership rules (which mutex guards which member,
 * which functions may only run with a capability held). These
 * macros state those rules in the type system so clang's
 * -Wthread-safety analysis proves them at compile time; the CI
 * clang leg builds with -Werror=thread-safety, turning a forgotten
 * lock into a build break instead of a smoke-test flake.
 *
 * On compilers without the capability attributes (gcc, pre-TSA
 * clang) every macro expands to nothing, so annotated headers stay
 * portable. Semantics follow the clang documentation
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); the
 * annotated wrapper types that make std::mutex visible to the
 * analysis live in common/sync.hh.
 */

#ifndef WILIS_COMMON_THREAD_ANNOTATIONS_HH
#define WILIS_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
/** Expands @p x as a TSA attribute under clang, else to nothing. */
#define WILIS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef WILIS_THREAD_ANNOTATION
/** Expands @p x as a TSA attribute under clang, else to nothing. */
#define WILIS_THREAD_ANNOTATION(x) // no-op outside clang TSA
#endif

/** Marks a class as a lockable capability named @p x in reports. */
#define WILIS_CAPABILITY(x) WILIS_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class whose lifetime holds a capability. */
#define WILIS_SCOPED_CAPABILITY \
    WILIS_THREAD_ANNOTATION(scoped_lockable)

/** Member readable/writable only while holding @p x. */
#define WILIS_GUARDED_BY(x) WILIS_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is guarded by @p x. */
#define WILIS_PT_GUARDED_BY(x) \
    WILIS_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function callable only with the given capabilities held. */
#define WILIS_REQUIRES(...) \
    WILIS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the given capabilities (held on return). */
#define WILIS_ACQUIRE(...) \
    WILIS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the given capabilities. */
#define WILIS_RELEASE(...) \
    WILIS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires the capability when returning @p ret. */
#define WILIS_TRY_ACQUIRE(ret, ...) \
    WILIS_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/** Function that must NOT be called with the capabilities held. */
#define WILIS_EXCLUDES(...) \
    WILIS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Assertion that the calling context holds the capability. */
#define WILIS_ASSERT_CAPABILITY(x) \
    WILIS_THREAD_ANNOTATION(assert_capability(x))

/** Function returning a reference to the capability @p x. */
#define WILIS_RETURN_CAPABILITY(x) \
    WILIS_THREAD_ANNOTATION(lock_returned(x))

/**
 * Escape hatch: disables the analysis for one function. Every use
 * must carry a comment justifying why the analysis cannot see the
 * synchronization (see the suppression policy in
 * docs/ARCHITECTURE.md, "Static determinism guarantees").
 */
#define WILIS_NO_THREAD_SAFETY_ANALYSIS \
    WILIS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // WILIS_COMMON_THREAD_ANNOTATIONS_HH
