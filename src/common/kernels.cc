#include "common/kernels.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/cpu_features.hh"
#include "common/logging.hh"

namespace wilis {
namespace kernels {

namespace detail {
const Ops *opsScalar();
const Ops *opsSse42();
const Ops *opsAvx2();
} // namespace detail

namespace {

const Ops *
tableFor(Backend b)
{
    switch (b) {
      case Backend::Scalar:
        return detail::opsScalar();
      case Backend::Sse42:
        return detail::opsSse42();
      case Backend::Avx2:
        return detail::opsAvx2();
    }
    return nullptr;
}

bool
hostSupports(Backend b)
{
    switch (b) {
      case Backend::Scalar:
        return true;
      case Backend::Sse42:
        return cpu::hasSse42();
      case Backend::Avx2:
        return cpu::hasAvx2();
    }
    return false;
}

Backend
widestSupported()
{
    if (backendSupported(Backend::Avx2))
        return Backend::Avx2;
    if (backendSupported(Backend::Sse42))
        return Backend::Sse42;
    return Backend::Scalar;
}

/**
 * The dispatch pointer. Every synchronizing access is an explicit
 * atomic op (TSan-clean by construction): release stores in
 * setBackend()/the init CAS pair with the acquire loads in
 * activeTable(), and the pointed-to Ops tables are immutable
 * function-local statics, so a reader can never observe a
 * half-published table.
 */
std::atomic<const Ops *> g_active{nullptr};

/**
 * Resolve the initial table: WILIS_KERNEL_BACKEND if set (unknown
 * names are fatal so typos in CI configs can't silently measure the
 * wrong thing; a known but unsupported backend warns and falls
 * back), else the widest backend the host executes.
 */
const Ops *
initialTable()
{
    Backend chosen = widestSupported();
    const char *env = std::getenv("WILIS_KERNEL_BACKEND");
    if (env && *env) {
        Backend requested;
        if (!parseBackend(env, &requested)) {
            // "auto" (or empty) keeps the widest-supported default.
        } else if (!backendSupported(requested)) {
            wilis_warn("WILIS_KERNEL_BACKEND=%s unsupported on this "
                      "host (%s); using %s",
                      env, cpu::featureString().c_str(),
                      backendName(chosen));
        } else {
            chosen = requested;
        }
    }
    return tableFor(chosen);
}

const Ops *
activeTable()
{
    const Ops *t = g_active.load(std::memory_order_acquire);
    if (t)
        return t;
    // The mutex only serializes concurrent *initializers* (so the
    // env var is parsed, and its warnings printed, once). It cannot
    // order us against a concurrent explicit setBackend(), which
    // stores without taking it -- so the install must be a CAS from
    // nullptr: if anything (another initializer or a user-forced
    // setBackend) won the race, their table stands and the
    // env-derived default is discarded, never stomped on top.
    static std::mutex init_mutex;
    std::lock_guard<std::mutex> lock(init_mutex);
    t = g_active.load(std::memory_order_acquire);
    if (!t) {
        const Ops *init = initialTable();
        const Ops *expected = nullptr;
        if (g_active.compare_exchange_strong(
                expected, init, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
            t = init;
        } else {
            t = expected; // a concurrent setBackend() beat us to it
        }
    }
    return t;
}

} // namespace

const char *
backendName(Backend b)
{
    switch (b) {
      case Backend::Scalar:
        return "scalar";
      case Backend::Sse42:
        return "sse4.2";
      case Backend::Avx2:
        return "avx2";
    }
    return "?";
}

bool
parseBackend(const std::string &name, Backend *out)
{
    if (name == "scalar")
        *out = Backend::Scalar;
    else if (name == "sse4.2" || name == "sse42")
        *out = Backend::Sse42;
    else if (name == "avx2")
        *out = Backend::Avx2;
    else if (name == "auto" || name.empty())
        return false;
    else
        wilis_fatal("unknown kernel backend '%s' "
                    "(auto|scalar|sse4.2|avx2)",
                    name.c_str());
    return true;
}

const Ops &
ops()
{
    return *activeTable();
}

Backend
activeBackend()
{
    return ops().backend;
}

bool
backendSupported(Backend b)
{
    return tableFor(b) != nullptr && hostSupports(b);
}

std::vector<Backend>
availableBackends()
{
    std::vector<Backend> v;
    for (Backend b :
         {Backend::Scalar, Backend::Sse42, Backend::Avx2}) {
        if (backendSupported(b))
            v.push_back(b);
    }
    return v;
}

bool
setBackend(Backend b)
{
    if (!backendSupported(b))
        return false;
    g_active.store(tableFor(b), std::memory_order_release);
    return true;
}

Backend
applyPolicy(const KernelPolicy &policy)
{
    const char *env = std::getenv("WILIS_KERNEL_BACKEND");
    if (env && *env)
        return activeBackend(); // the environment pins the backend
    Backend requested;
    if (!parseBackend(policy.backend, &requested))
        return activeBackend(); // "auto": keep the current table
    if (!setBackend(requested)) {
        wilis_warn("kernel backend '%s' unsupported on this host "
                  "(%s); keeping %s",
                  policy.backend.c_str(),
                  cpu::featureString().c_str(),
                  backendName(activeBackend()));
    }
    return activeBackend();
}

} // namespace kernels
} // namespace wilis
