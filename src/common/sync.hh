/**
 * @file
 * Annotated synchronization primitives.
 *
 * libstdc++'s std::mutex carries no thread-safety-analysis
 * attributes, so clang's -Wthread-safety cannot see where it is
 * acquired and every WILIS_GUARDED_BY member would be flagged even
 * in correct code. These thin wrappers put the attributes on the
 * lock operations themselves (zero-cost: the analysis is purely
 * static and the inline bodies compile to the std calls), which is
 * what lets the guarded structures in thread_pool.hh and
 * worker_phy.hh be machine-checked.
 *
 * The scoped lock mirrors the relockable MutexLocker from the clang
 * TSA documentation: unlock()/lock() members let a critical section
 * be suspended mid-scope (the thread-pool worker loop drops the
 * lock around each chunk), with the destructor releasing whatever
 * is still held.
 *
 * ConditionVariable wraps std::condition_variable_any so it can
 * wait on the annotated Mutex directly. Waits are written as
 * explicit while-loops at the call sites rather than predicate
 * lambdas: the analysis checks a lambda body as a separate function
 * that does not inherit the caller's capability set, so a predicate
 * touching guarded members would need its own annotations -- an
 * explicit loop keeps the guarded reads inside the annotated
 * function where the analysis can prove them.
 */

#ifndef WILIS_COMMON_SYNC_HH
#define WILIS_COMMON_SYNC_HH

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hh"

namespace wilis {

/** std::mutex with thread-safety-analysis attributes. */
class WILIS_CAPABILITY("mutex") Mutex
{
  public:
    /** An unlocked mutex. */
    Mutex() = default;
    /** The capability is identity: not copyable. */
    Mutex(const Mutex &) = delete;
    /** The capability is identity: not copyable. */
    Mutex &operator=(const Mutex &) = delete;

    /** Blocks until the mutex is acquired. */
    void
    lock() WILIS_ACQUIRE()
    {
        m_.lock();
    }

    /** Releases the mutex. */
    void
    unlock() WILIS_RELEASE()
    {
        m_.unlock();
    }

    /** Acquires the mutex if free; true on success. */
    bool
    try_lock() WILIS_TRY_ACQUIRE(true)
    {
        return m_.try_lock();
    }

  private:
    std::mutex m_;
};

/**
 * Relockable scoped lock over Mutex. Construction acquires;
 * destruction releases unless unlock() already did. unlock()/lock()
 * suspend and resume the critical section (both sides visible to
 * the analysis), so a loop body can run unlocked without giving up
 * RAII cleanup on early return.
 */
class WILIS_SCOPED_CAPABILITY MutexLock
{
  public:
    /** Acquires @p m for the lifetime of the scope. */
    explicit MutexLock(Mutex &m) WILIS_ACQUIRE(m) : mu_(m)
    {
        mu_.lock();
    }

    /** Releases the mutex if this scope still holds it. */
    ~MutexLock() WILIS_RELEASE()
    {
        if (held_)
            mu_.unlock();
    }

    /** Scoped locks pin one acquisition: not copyable. */
    MutexLock(const MutexLock &) = delete;
    /** Scoped locks pin one acquisition: not copyable. */
    MutexLock &operator=(const MutexLock &) = delete;

    /** Suspends the critical section. */
    void
    unlock() WILIS_RELEASE()
    {
        held_ = false;
        mu_.unlock();
    }

    /** Resumes the critical section. */
    void
    lock() WILIS_ACQUIRE()
    {
        mu_.lock();
        held_ = true;
    }

  private:
    Mutex &mu_;
    bool held_ = true;
};

/**
 * Condition variable waiting on the annotated Mutex. Spurious
 * wakeups pass through exactly as with the std type: callers
 * re-check their condition in a while-loop around wait().
 */
class ConditionVariable
{
  public:
    /** Wakes one waiter. */
    void
    notify_one() noexcept
    {
        cv_.notify_one();
    }

    /** Wakes every waiter. */
    void
    notify_all() noexcept
    {
        cv_.notify_all();
    }

    /**
     * Atomically releases @p m and blocks; @p m is re-acquired
     * before returning. The analysis sees the capability as held
     * across the call (the release/re-acquire pair is internal to
     * the wait), which matches how guarded state may be used on
     * either side of it.
     */
    void
    wait(Mutex &m) WILIS_REQUIRES(m)
    {
        cv_.wait(m);
    }

  private:
    std::condition_variable_any cv_;
};

} // namespace wilis

#endif // WILIS_COMMON_SYNC_HH
