#include "channel/pathloss.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace wilis {
namespace channel {

PathlossModel::PathlossModel(const PathlossSpec &spec,
                             std::uint64_t seed)
    : spec_(spec), seed_(seed)
{
    wilis_assert(spec_.refDistanceM > 0.0,
                 "pathloss reference distance %g m <= 0",
                 spec_.refDistanceM);
    wilis_assert(spec_.exponent >= 0.0,
                 "negative pathloss exponent %g", spec_.exponent);
    wilis_assert(spec_.shadowSigmaDb >= 0.0,
                 "negative shadowing sigma %g dB",
                 spec_.shadowSigmaDb);
}

double
PathlossModel::pathlossDb(double distance_m) const
{
    if (distance_m <= spec_.refDistanceM)
        return 0.0;
    return 10.0 * spec_.exponent *
           std::log10(distance_m / spec_.refDistanceM);
}

double
PathlossModel::shadowingDb(int user, int cell) const
{
    if (spec_.shadowSigmaDb <= 0.0)
        return 0.0;
    // One Gaussian per (user, cell) link, keyed -- not drawn in
    // sequence -- so the link-budget matrix can be filled in any
    // order (or in parallel) and stay bit-identical. Chained
    // forks keep the per-user streams alias-free at any user
    // count.
    const CounterRng rng =
        CounterRng(seed_).fork(0x5AD0ull).fork(
            static_cast<std::uint64_t>(user));
    double g0 = 0.0;
    double g1 = 0.0;
    GaussianSource::pairAt(rng, static_cast<std::uint64_t>(cell),
                           g0, g1);
    return g0 * spec_.shadowSigmaDb;
}

double
PathlossModel::linkSnrDb(double distance_m, int user, int cell) const
{
    return linkSnrDbAt(distance_m, shadowingDb(user, cell));
}

PathlossSpec
PathlossModel::specFromConfig(const li::Config &cfg,
                              const PathlossSpec &defaults)
{
    PathlossSpec s = defaults;
    s.refSnrDb = cfg.getDouble("ref_snr_db", s.refSnrDb);
    s.refDistanceM = cfg.getDouble("ref_distance_m", s.refDistanceM);
    s.exponent = cfg.getDouble("pathloss_exp", s.exponent);
    s.shadowSigmaDb =
        cfg.getDouble("shadow_sigma_db", s.shadowSigmaDb);
    return s;
}

} // namespace channel
} // namespace wilis
