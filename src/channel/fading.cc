#include "channel/fading.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "phy/ofdm_symbol.hh"

namespace wilis {
namespace channel {

RayleighChannel::RayleighChannel(const li::Config &cfg)
    : RayleighChannel(
          cfg.getDouble("snr_db", 10.0),
          cfg.getDouble("doppler_hz", 20.0),
          static_cast<std::uint64_t>(cfg.getInt("seed", 1)),
          cfg.getDouble("packet_interval_us", 2000.0),
          static_cast<int>(cfg.getInt("threads", 1)),
          cfg.getBool("common_noise", false),
          cfg.getBool("block_fading", false))
{}

RayleighChannel::RayleighChannel(double snr_db, double doppler_hz,
                                 std::uint64_t seed,
                                 double packet_interval_us_,
                                 int threads, bool common_noise,
                                 bool block_fading)
    : awgn(snr_db, seed, threads, common_noise), doppler(doppler_hz),
      packet_interval_us(packet_interval_us_),
      block_fading_(block_fading)
{
    wilis_assert(doppler_hz >= 0.0, "negative Doppler %f", doppler_hz);
    // Deterministic oscillator bank (Clarke model): arrival angles
    // uniformly spread with a random rotation, independent random
    // phases for the in-phase and quadrature processes.
    SplitMix64 rng(seed ^ 0xFAD1116ull);
    double rot = rng.nextDouble() * 2.0 * std::numbers::pi;
    for (int m = 0; m < kOscillators; ++m) {
        double angle =
            2.0 * std::numbers::pi * (m + 0.5) / kOscillators + rot;
        freq_scale[static_cast<size_t>(m)] = std::cos(angle);
        phase_i[static_cast<size_t>(m)] =
            rng.nextDouble() * 2.0 * std::numbers::pi;
        phase_q[static_cast<size_t>(m)] =
            rng.nextDouble() * 2.0 * std::numbers::pi;
    }
}

Sample
RayleighChannel::gainAt(double t_us) const
{
    // Clarke sum-of-sinusoids with independent I/Q phase banks:
    // each component has variance M/2 before normalization, so
    // dividing by sqrt(M) yields E[|h|^2] = 1 and Rayleigh |h|.
    double t_s = t_us * 1e-6;
    double re = 0.0;
    double im = 0.0;
    for (int m = 0; m < kOscillators; ++m) {
        double w = 2.0 * std::numbers::pi * doppler *
                   freq_scale[static_cast<size_t>(m)] * t_s;
        re += std::cos(w + phase_i[static_cast<size_t>(m)]);
        im += std::cos(w + phase_q[static_cast<size_t>(m)]);
    }
    double norm = 1.0 / std::sqrt(static_cast<double>(kOscillators));
    return Sample(re * norm, im * norm);
}

Sample
RayleighChannel::gain(std::uint64_t packet_index,
                      int symbol_index) const
{
    // Block fading holds the gain for the whole packet (sampled at
    // the packet start); otherwise it evolves per OFDM symbol.
    double t_us = static_cast<double>(packet_index) *
                  packet_interval_us;
    if (!block_fading_)
        t_us += symbol_index * phy::OfdmGeometry::kSymbolUs;
    return gainAt(t_us);
}

void
RayleighChannel::apply(SampleSpan samples, std::uint64_t packet_index)
{
    // Flat fading: scale each OFDM symbol by its gain, then add
    // white noise at the configured level.
    const int sym_len = phy::OfdmGeometry::kSymbolLen;
    for (size_t i = 0; i < samples.size(); ++i) {
        int symbol = static_cast<int>(i / static_cast<size_t>(sym_len));
        samples[i] *= gain(packet_index, symbol);
    }
    awgn.apply(samples, packet_index);
}

Sample
RayleighChannel::impairSample(Sample s, std::uint64_t packet_index,
                              std::uint64_t sample_index) const
{
    int symbol = static_cast<int>(
        sample_index /
        static_cast<std::uint64_t>(phy::OfdmGeometry::kSymbolLen));
    return awgn.impairSample(s * gain(packet_index, symbol),
                             packet_index, sample_index);
}

} // namespace channel
} // namespace wilis
