#include "channel/fading.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/kernels.hh"
#include "common/logging.hh"
#include "phy/ofdm_symbol.hh"

namespace wilis {
namespace channel {

JakesFader::JakesFader(double doppler_hz, std::uint64_t seed)
    : doppler(doppler_hz)
{
    wilis_assert(doppler_hz >= 0.0, "negative Doppler %f",
                 doppler_hz);
    // Deterministic oscillator bank (Clarke model): arrival angles
    // uniformly spread with a random rotation, independent random
    // phases for the in-phase and quadrature processes.
    SplitMix64 rng(seed ^ 0xFAD1116ull);
    double rot = rng.nextDouble() * 2.0 * std::numbers::pi;
    for (int m = 0; m < kOscillators; ++m) {
        double angle =
            2.0 * std::numbers::pi * (m + 0.5) / kOscillators + rot;
        freq_scale[static_cast<size_t>(m)] = std::cos(angle);
        phase_i[static_cast<size_t>(m)] =
            rng.nextDouble() * 2.0 * std::numbers::pi;
        phase_q[static_cast<size_t>(m)] =
            rng.nextDouble() * 2.0 * std::numbers::pi;
    }
}

Sample
JakesFader::gainAt(double t_us) const
{
    // Clarke sum-of-sinusoids with independent I/Q phase banks:
    // each component has variance M/2 before normalization, so
    // dividing by sqrt(M) yields E[|h|^2] = 1 and Rayleigh |h|.
    double t_s = t_us * 1e-6;
    double re = 0.0;
    double im = 0.0;
    for (int m = 0; m < kOscillators; ++m) {
        double w = 2.0 * std::numbers::pi * doppler *
                   freq_scale[static_cast<size_t>(m)] * t_s;
        re += std::cos(w + phase_i[static_cast<size_t>(m)]);
        im += std::cos(w + phase_q[static_cast<size_t>(m)]);
    }
    double norm = 1.0 / std::sqrt(static_cast<double>(kOscillators));
    return Sample(re * norm, im * norm);
}

RayleighChannel::RayleighChannel(const li::Config &cfg)
    : RayleighChannel(
          cfg.getDouble("snr_db", 10.0),
          cfg.getDouble("doppler_hz", 20.0),
          static_cast<std::uint64_t>(cfg.getInt("seed", 1)),
          cfg.getDouble("packet_interval_us", 2000.0),
          static_cast<int>(cfg.getInt("threads", 1)),
          cfg.getBool("common_noise", false),
          cfg.getBool("block_fading", false))
{}

RayleighChannel::RayleighChannel(double snr_db, double doppler_hz,
                                 std::uint64_t seed,
                                 double packet_interval_us_,
                                 int threads, bool common_noise,
                                 bool block_fading)
    : awgn(snr_db, seed, threads, common_noise),
      fader(doppler_hz, seed),
      packet_interval_us(packet_interval_us_),
      block_fading_(block_fading)
{}

Sample
RayleighChannel::gain(std::uint64_t packet_index,
                      int symbol_index) const
{
    // Block fading holds the gain for the whole packet (sampled at
    // the packet start); otherwise it evolves per OFDM symbol.
    double t_us = static_cast<double>(packet_index) *
                  packet_interval_us;
    if (!block_fading_)
        t_us += symbol_index * phy::OfdmGeometry::kSymbolUs;
    return gainAt(t_us);
}

void
RayleighChannel::apply(SampleSpan samples, std::uint64_t packet_index)
{
    // Flat fading: scale each OFDM symbol by its gain (one kernel
    // call per symbol run), then add white noise at the configured
    // level.
    const size_t sym_len =
        static_cast<size_t>(phy::OfdmGeometry::kSymbolLen);
    size_t i = 0;
    while (i < samples.size()) {
        const size_t symbol = i / sym_len;
        const size_t run =
            std::min((symbol + 1) * sym_len, samples.size()) - i;
        kernels::ops().scaleComplex(
            samples.data() + i, run,
            gain(packet_index, static_cast<int>(symbol)));
        i += run;
    }
    awgn.apply(samples, packet_index);
}

Sample
RayleighChannel::impairSample(Sample s, std::uint64_t packet_index,
                              std::uint64_t sample_index) const
{
    int symbol = static_cast<int>(
        sample_index /
        static_cast<std::uint64_t>(phy::OfdmGeometry::kSymbolLen));
    return awgn.impairSample(s * gain(packet_index, symbol),
                             packet_index, sample_index);
}

// ------------------------------------------------ AR(1) block fading

namespace {

/**
 * Bessel J0 via the Abramowitz & Stegun 9.4.1 / 9.4.3 polynomial
 * approximations (|error| < 1e-7); avoids relying on the optional
 * C++17 special-math functions.
 */
double
besselJ0(double x)
{
    double ax = std::fabs(x);
    if (ax < 3.0) {
        double t = x * x / 9.0;
        return 1.0 +
               t * (-2.2499997 +
                    t * (1.2656208 +
                         t * (-0.3163866 +
                              t * (0.0444479 +
                                   t * (-0.0039444 +
                                        t * 0.0002100)))));
    }
    double t = 3.0 / ax;
    double f0 = 0.79788456 +
                t * (-0.00000077 +
                     t * (-0.00552740 +
                          t * (-0.00009512 +
                               t * (0.00137237 +
                                    t * (-0.00072805 +
                                         t * 0.00014476)))));
    double theta = ax - 0.78539816 +
                   t * (-0.04166397 +
                        t * (-0.00003954 +
                             t * (0.00262573 +
                                  t * (-0.00054125 +
                                       t * (-0.00029333 +
                                            t * 0.00013558)))));
    return f0 * std::cos(theta) / std::sqrt(ax);
}

} // namespace

Ar1FadingChannel::Ar1FadingChannel(const li::Config &cfg)
    : Ar1FadingChannel(
          cfg.getDouble("snr_db", 10.0),
          cfg.getDouble("doppler_hz", 30.0),
          cfg.getDouble("frame_interval_us", 2000.0),
          cfg.getUint64("seed", 1),
          static_cast<int>(cfg.getInt("threads", 1)))
{}

Ar1FadingChannel::Ar1FadingChannel(double snr_db, double doppler_hz,
                                   double frame_interval_us,
                                   std::uint64_t seed, int threads)
    : awgn(snr_db, seed, threads), doppler(doppler_hz),
      frame_interval_us_(frame_interval_us),
      innovations(CounterRng(seed ^ 0xA21FAD0ull).fork(0x1117))
{
    wilis_assert(doppler_hz >= 0.0, "negative Doppler %f", doppler_hz);
    wilis_assert(frame_interval_us > 0.0,
                 "frame interval %f us <= 0", frame_interval_us);
    // Clarke autocorrelation sampled at the slot interval. J0 goes
    // negative past its first zero (very fast fading); clamp to the
    // memoryless process there, and keep rho < 1 so the innovation
    // never degenerates even at doppler 0 -- a static link is then
    // rho ~ 1 with a vanishing innovation, which is the intent.
    double r = besselJ0(2.0 * std::numbers::pi * doppler_hz *
                        frame_interval_us * 1e-6);
    rho_ = std::min(std::max(r, 0.0), 0.999999);
    innov_scale = std::sqrt(1.0 - rho_ * rho_);
}

Sample
Ar1FadingChannel::innovation(std::uint64_t n) const
{
    double g0 = 0.0;
    double g1 = 0.0;
    GaussianSource::pairAt(innovations, n, g0, g1);
    // Per-component variance 1/2 => E[|w|^2] = 1.
    return Sample(g0 * std::numbers::sqrt2 / 2.0,
                  g1 * std::numbers::sqrt2 / 2.0);
}

Sample
Ar1FadingChannel::gainAt(std::uint64_t n) const
{
    if (!cache_valid || n < cache_index) {
        cache_gain = innovation(0);
        cache_index = 0;
        cache_valid = true;
    }
    while (cache_index < n) {
        ++cache_index;
        cache_gain = cache_gain * rho_ +
                     innovation(cache_index) * innov_scale;
    }
    return cache_gain;
}

Sample
Ar1FadingChannel::gain(std::uint64_t packet_index,
                       int symbol_index) const
{
    (void)symbol_index;
    return gainAt(packet_index);
}

void
Ar1FadingChannel::apply(SampleSpan samples,
                        std::uint64_t packet_index)
{
    // Block fading: one gain for the whole frame, applied through
    // the SIMD kernel layer.
    kernels::ops().scaleComplex(samples.data(), samples.size(),
                                gainAt(packet_index));
    awgn.apply(samples, packet_index);
}

Sample
Ar1FadingChannel::impairSample(Sample s, std::uint64_t packet_index,
                               std::uint64_t sample_index) const
{
    return awgn.impairSample(s * gainAt(packet_index), packet_index,
                             sample_index);
}

} // namespace channel
} // namespace wilis
