/**
 * @file
 * Additive White Gaussian Noise channel with a variable SNR
 * (section 3: "we implement an AWGN channel with a variable
 * Signal-to-Noise-Ratio; our software channel implementation is
 * multi-threaded").
 *
 * Noise is generated per 1024-sample block from a counter-based
 * generator, so output is bit-identical for any worker thread count
 * and any packet replay order.
 */

#ifndef WILIS_CHANNEL_AWGN_HH
#define WILIS_CHANNEL_AWGN_HH

#include <memory>

#include "channel/channel.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"

namespace wilis {
namespace channel {

/** Multi-threaded AWGN channel. */
class AwgnChannel : public Channel
{
  public:
    /**
     * Config keys:
     *  - snr_db:  per-subcarrier Es/N0 in dB (default 10)
     *  - seed:    noise stream seed (default 1)
     *  - threads: noise-generation worker threads (default 1;
     *             0 = hardware concurrency)
     *  - common_noise: if true, every packet sees the *same*
     *    pseudo-noise sequence (keyed by sample position only).
     *    This is the paper's section 4.4.2 "pseudo-random noise
     *    model": with noise fixed across time, whether a given rate
     *    survives becomes a deterministic function of the fading
     *    level, which makes the optimal-rate oracle well-posed.
     *    Default false (independent noise per packet).
     */
    explicit AwgnChannel(const li::Config &cfg = li::Config());

    /** Direct constructor. */
    AwgnChannel(double snr_db, std::uint64_t seed, int threads = 1,
                bool common_noise = false);

    std::string name() const override { return "awgn"; }
    void apply(SampleSpan samples, std::uint64_t packet_index) override;
    Sample impairSample(Sample s, std::uint64_t packet_index,
                        std::uint64_t sample_index) const override;
    double noiseVariance() const override { return n0; }

    /** Configured SNR in dB. */
    double snrDb() const { return snr_db_; }

    /** Change the SNR (the "variable SNR" knob). */
    void setSnrDb(double snr_db);

    /** Noise-generation block size (samples per RNG stream). */
    static constexpr size_t kBlockSize = 1024;

  private:
    void addNoiseBlock(SampleSpan samples, std::uint64_t packet_index,
                       size_t block) const;

    double snr_db_;
    double n0;     // noise variance per complex sample
    double sigma;  // per-dimension standard deviation
    std::uint64_t seed;
    bool common_noise_;
    std::unique_ptr<ThreadPool> pool; // null => single-threaded
};

} // namespace channel
} // namespace wilis

#endif // WILIS_CHANNEL_AWGN_HH
