#include "channel/multipath.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "phy/ofdm_symbol.hh"

namespace wilis {
namespace channel {

MultipathChannel::MultipathChannel(const li::Config &cfg)
    : awgn(cfg.getDouble("snr_db", 10.0),
           static_cast<std::uint64_t>(cfg.getInt("seed", 1)),
           static_cast<int>(cfg.getInt("threads", 1)),
           cfg.getBool("common_noise", false)),
      packet_interval_us(cfg.getDouble("packet_interval_us", 2000.0))
{
    const int num_taps = static_cast<int>(cfg.getInt("num_taps", 4));
    const double spread = cfg.getDouble("delay_spread", 3.0);
    const double doppler = cfg.getDouble("doppler_hz", 20.0);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 1));

    wilis_assert(num_taps >= 1, "need at least one tap");
    wilis_assert(num_taps - 1 <= phy::OfdmGeometry::kCpLen,
                 "delay spread of %d taps exceeds the %d-sample "
                 "cyclic prefix",
                 num_taps, phy::OfdmGeometry::kCpLen);
    wilis_assert(spread > 0.0, "delay spread must be positive");

    // Exponential power-delay profile, normalized to unit total
    // power so the mean SNR matches the flat channels.
    double total = 0.0;
    std::vector<double> pdp(static_cast<size_t>(num_taps));
    for (int l = 0; l < num_taps; ++l) {
        pdp[static_cast<size_t>(l)] = std::exp(-l / spread);
        total += pdp[static_cast<size_t>(l)];
    }
    taps.reserve(static_cast<size_t>(num_taps));
    for (int l = 0; l < num_taps; ++l) {
        Tap t;
        t.delay = l;
        t.weight = std::sqrt(pdp[static_cast<size_t>(l)] / total);
        // Each tap gets an independent unit-power fading process
        // (noiseless: the AWGN member adds the noise once).
        t.process = std::make_unique<RayleighChannel>(
            300.0, doppler, seed ^ (0xBEEF0000ull + 131ull * l),
            packet_interval_us);
        taps.push_back(std::move(t));
    }
    tap_cache.resize(static_cast<size_t>(num_taps));
}

Sample
MultipathChannel::tapValue(std::uint64_t packet_index,
                           int symbol_index, int l) const
{
    const Tap &t = taps[static_cast<size_t>(l)];
    return t.weight * t.process->gain(packet_index, symbol_index);
}

Sample
MultipathChannel::gain(std::uint64_t packet_index,
                       int symbol_index) const
{
    // The "flat equivalent" gain is the DC bin response.
    return binGain(packet_index, symbol_index, 0);
}

Sample
MultipathChannel::binGain(std::uint64_t packet_index,
                          int symbol_index, int bin) const
{
    // H[k] = sum_l h_l e^{-j 2 pi k d_l / N}.
    Sample h(0.0, 0.0);
    for (int l = 0; l < numTaps(); ++l) {
        double ang = -2.0 * std::numbers::pi * bin *
                     taps[static_cast<size_t>(l)].delay /
                     phy::OfdmGeometry::kFftSize;
        h += tapValue(packet_index, symbol_index, l) *
             Sample(std::cos(ang), std::sin(ang));
    }
    return h;
}

void
MultipathChannel::apply(SampleSpan samples,
                        std::uint64_t packet_index)
{
    // Linear convolution with per-symbol tap values; the cyclic
    // prefix turns it into the circular convolution the per-bin
    // equalizer assumes. Running the convolution backwards makes it
    // in-place: out[i] only reads samples[i - d] with d >= 0, which
    // a descending sweep has not yet overwritten. Tap values change
    // only at symbol boundaries, so they are cached per symbol.
    const int sym_len = phy::OfdmGeometry::kSymbolLen;
    int cached_symbol = -1;
    for (size_t i = samples.size(); i-- > 0;) {
        int symbol =
            static_cast<int>(i / static_cast<size_t>(sym_len));
        if (symbol != cached_symbol) {
            for (int l = 0; l < numTaps(); ++l)
                tap_cache[static_cast<size_t>(l)] =
                    tapValue(packet_index, symbol, l);
            cached_symbol = symbol;
        }
        Sample acc(0.0, 0.0);
        for (int l = 0; l < numTaps(); ++l) {
            int d = taps[static_cast<size_t>(l)].delay;
            if (i >= static_cast<size_t>(d)) {
                acc += tap_cache[static_cast<size_t>(l)] *
                       samples[i - static_cast<size_t>(d)];
            }
        }
        samples[i] = acc;
    }
    awgn.apply(samples, packet_index);
}

Sample
MultipathChannel::impairSample(Sample s, std::uint64_t packet_index,
                               std::uint64_t sample_index) const
{
    // Streaming form: requires in-order calls per packet (the LI
    // channel module guarantees this).
    if (packet_index != history_packet || sample_index == 0) {
        wilis_assert(sample_index == 0,
                     "multipath streaming must start at sample 0 "
                     "(got %llu)",
                     static_cast<unsigned long long>(sample_index));
        history.clear();
        history_packet = packet_index;
        history_next = 0;
    }
    wilis_assert(sample_index == history_next,
                 "multipath streaming out of order: %llu != %llu",
                 static_cast<unsigned long long>(sample_index),
                 static_cast<unsigned long long>(history_next));
    history.push_back(s);
    ++history_next;

    int symbol = static_cast<int>(
        sample_index /
        static_cast<std::uint64_t>(phy::OfdmGeometry::kSymbolLen));
    Sample acc(0.0, 0.0);
    for (int l = 0; l < numTaps(); ++l) {
        int d = taps[static_cast<size_t>(l)].delay;
        if (sample_index >= static_cast<std::uint64_t>(d)) {
            acc += tapValue(packet_index, symbol, l) *
                   history[sample_index - static_cast<std::uint64_t>(d)];
        }
    }
    return awgn.impairSample(acc, packet_index, sample_index);
}

} // namespace channel
} // namespace wilis
