#include "channel/awgn.hh"

#include <cmath>

#include "common/kernels.hh"
#include "common/logging.hh"

namespace wilis {
namespace channel {

AwgnChannel::AwgnChannel(const li::Config &cfg)
    : AwgnChannel(cfg.getDouble("snr_db", 10.0),
                  static_cast<std::uint64_t>(cfg.getInt("seed", 1)),
                  static_cast<int>(cfg.getInt("threads", 1)),
                  cfg.getBool("common_noise", false))
{}

AwgnChannel::AwgnChannel(double snr_db, std::uint64_t seed_,
                         int threads, bool common_noise)
    : seed(seed_), common_noise_(common_noise)
{
    setSnrDb(snr_db);
    if (threads != 1)
        pool = std::make_unique<ThreadPool>(threads);
}

void
AwgnChannel::setSnrDb(double snr_db)
{
    snr_db_ = snr_db;
    // Unit average symbol energy and unitary FFTs make the
    // per-subcarrier Es/N0 equal to 1/N0 with N0 the per-sample
    // time-domain noise variance.
    n0 = std::pow(10.0, -snr_db / 10.0);
    sigma = std::sqrt(n0 / 2.0);
}

void
AwgnChannel::addNoiseBlock(SampleSpan samples,
                           std::uint64_t packet_index,
                           size_t block) const
{
    CounterRng rng = CounterRng(seed)
                         .fork(common_noise_ ? 0 : packet_index)
                         .fork(0x40E5 + block);
    const size_t begin = block * kBlockSize;
    const size_t end = std::min(begin + kBlockSize, samples.size());
    const size_t count = end - begin;

    // Deviate generation stays scalar (Box-Muller's log/cos/sin have
    // no bit-exact vector form); the injection itself goes through
    // the SIMD kernel layer. Stack scratch keeps the block
    // allocation-free and thread-safe under parallelFor.
    double gauss[2 * kBlockSize];
    for (size_t i = 0; i < count; ++i)
        GaussianSource::pairAt(rng, i, gauss[2 * i],
                               gauss[2 * i + 1]);
    kernels::ops().axpyNoise(samples.data() + begin, count, sigma,
                             gauss);
}

Sample
AwgnChannel::impairSample(Sample s, std::uint64_t packet_index,
                          std::uint64_t sample_index) const
{
    // Reproduce exactly the draw apply() makes for this position.
    const std::uint64_t block = sample_index / kBlockSize;
    CounterRng rng = CounterRng(seed)
                         .fork(common_noise_ ? 0 : packet_index)
                         .fork(0x40E5 + block);
    double g0, g1;
    GaussianSource::pairAt(rng, sample_index % kBlockSize, g0, g1);
    return s + Sample(sigma * g0, sigma * g1);
}

void
AwgnChannel::apply(SampleSpan samples, std::uint64_t packet_index)
{
    const size_t blocks =
        (samples.size() + kBlockSize - 1) / kBlockSize;
    if (pool && blocks > 1) {
        pool->parallelFor(blocks, [&](std::uint64_t b) {
            addNoiseBlock(samples, packet_index,
                          static_cast<size_t>(b));
        });
    } else {
        for (size_t b = 0; b < blocks; ++b)
            addNoiseBlock(samples, packet_index, b);
    }
}

} // namespace channel
} // namespace wilis
