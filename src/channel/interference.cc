#include "channel/interference.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "common/random.hh"
#include "phy/ofdm_symbol.hh"

namespace wilis {
namespace channel {

InterferenceChannel::InterferenceChannel(const li::Config &cfg)
    : awgn(cfg.getDouble("snr_db", 10.0),
           static_cast<std::uint64_t>(cfg.getInt("seed", 1)),
           static_cast<int>(cfg.getInt("threads", 1)),
           cfg.getBool("common_noise", false)),
      bin(static_cast<int>(cfg.getInt("interferer_bin", 10))),
      seed(static_cast<std::uint64_t>(cfg.getInt("seed", 1)))
{
    wilis_assert(bin >= -26 && bin <= 26,
                 "interferer bin %d out of range", bin);
    double sir_db = cfg.getDouble("sir_db", 10.0);
    // Signal power is 1 (normalized constellations); the tone
    // carries all its power on one subcarrier.
    amp = std::sqrt(std::pow(10.0, -sir_db / 10.0));
}

Sample
InterferenceChannel::toneAt(std::uint64_t packet_index,
                            std::uint64_t sample_index) const
{
    // A complex exponential at the interferer subcarrier frequency,
    // with a random-but-replayable phase per packet.
    CounterRng rng = CounterRng(seed ^ 0x1F2E3D4Cull);
    double phase0 = rng.doubleAt(packet_index) * 2.0 *
                    std::numbers::pi;
    double ang = 2.0 * std::numbers::pi * bin *
                     static_cast<double>(sample_index) /
                     phy::OfdmGeometry::kFftSize +
                 phase0;
    return amp * Sample(std::cos(ang), std::sin(ang));
}

void
InterferenceChannel::apply(SampleSpan samples,
                           std::uint64_t packet_index)
{
    for (size_t i = 0; i < samples.size(); ++i)
        samples[i] += toneAt(packet_index, i);
    awgn.apply(samples, packet_index);
}

Sample
InterferenceChannel::impairSample(Sample s,
                                  std::uint64_t packet_index,
                                  std::uint64_t sample_index) const
{
    return awgn.impairSample(s + toneAt(packet_index, sample_index),
                             packet_index, sample_index);
}

} // namespace channel
} // namespace wilis
