/**
 * @file
 * Software channel model interface. In WiLIS the channel is the part
 * of the co-simulation that stays in software (section 1): it is
 * floating-point heavy and not amenable to FPGA implementation.
 *
 * All channels here are *replayable*: impairments are a pure function
 * of (seed, packet_index, sample_index), implemented with the
 * counter-based generator. This is the paper's "pseudo-random noise
 * model which allows us to test multiple packet transmissions at
 * various rates with the same noise and fading across time"
 * (section 4.4.2) -- the property the SoftRate oracle depends on.
 */

#ifndef WILIS_CHANNEL_CHANNEL_HH
#define WILIS_CHANNEL_CHANNEL_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"
#include "li/config.hh"
#include "li/registry.hh"

namespace wilis {
namespace channel {

/** A replayable software channel. */
class Channel
{
  public:
    virtual ~Channel() = default;

    /** Implementation name (matches the registry key). */
    virtual std::string name() const = 0;

    /**
     * Apply impairments to a packet's time-domain samples in place.
     * Deterministic in (seed, packet_index, sample position). The
     * span form is the zero-copy pipeline's entry point; SampleVec
     * arguments convert implicitly. Implementations must not
     * allocate in steady state (scratch lives in members).
     */
    virtual void apply(SampleSpan samples,
                       std::uint64_t packet_index) = 0;

    /**
     * Impair a single sample at a known position. Must agree
     * bit-exactly with apply() on the same positions -- this is what
     * lets the streaming latency-insensitive pipeline and the batch
     * kernel path produce identical packets.
     */
    virtual Sample impairSample(Sample s, std::uint64_t packet_index,
                                std::uint64_t sample_index) const = 0;

    /**
     * Complex channel gain the receiver equalizes with (perfect CSI;
     * the paper models neither channel estimation nor
     * synchronization). Flat fading: one gain per OFDM symbol.
     */
    virtual Sample
    gain(std::uint64_t packet_index, int symbol_index) const
    {
        (void)packet_index;
        (void)symbol_index;
        return Sample(1.0, 0.0);
    }

    /**
     * Per-subcarrier channel gain for frequency-selective channels;
     * flat channels return gain(). @p bin is the FFT bin (0..63).
     */
    virtual Sample
    binGain(std::uint64_t packet_index, int symbol_index,
            int bin) const
    {
        (void)bin;
        return gain(packet_index, symbol_index);
    }

    /** Noise variance N0 per complex sample (for eq. 3 scaling). */
    virtual double noiseVariance() const = 0;
};

/** Shorthand for the channel plug-n-play registry. */
using ChannelRegistry = li::Registry<Channel>;

/** Create a channel by registry name ("awgn", "rayleigh"). */
std::unique_ptr<Channel> makeChannel(
    const std::string &name, const li::Config &cfg = li::Config());

} // namespace channel
} // namespace wilis

#endif // WILIS_CHANNEL_CHANNEL_HH
