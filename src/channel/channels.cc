/**
 * @file
 * Channel registry entries and factory helper.
 */

#include "channel/channel.hh"

#include "channel/awgn.hh"
#include "channel/fading.hh"
#include "channel/interference.hh"
#include "channel/multipath.hh"

namespace wilis {
namespace channel {

namespace {

const bool registered = [] {
    auto &reg = ChannelRegistry::global();
    reg.add("awgn", [](const li::Config &cfg) {
        return std::unique_ptr<Channel>(
            std::make_unique<AwgnChannel>(cfg));
    });
    reg.add("rayleigh", [](const li::Config &cfg) {
        return std::unique_ptr<Channel>(
            std::make_unique<RayleighChannel>(cfg));
    });
    reg.add("ar1", [](const li::Config &cfg) {
        return std::unique_ptr<Channel>(
            std::make_unique<Ar1FadingChannel>(cfg));
    });
    reg.add("multipath", [](const li::Config &cfg) {
        return std::unique_ptr<Channel>(
            std::make_unique<MultipathChannel>(cfg));
    });
    reg.add("interference", [](const li::Config &cfg) {
        return std::unique_ptr<Channel>(
            std::make_unique<InterferenceChannel>(cfg));
    });
    return true;
}();

} // namespace

std::unique_ptr<Channel>
makeChannel(const std::string &name, const li::Config &cfg)
{
    (void)registered;
    return ChannelRegistry::global().create(name, cfg);
}

} // namespace channel
} // namespace wilis
