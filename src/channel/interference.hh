/**
 * @file
 * AWGN plus narrowband interference: a complex tone of configurable
 * power and frequency (an adjacent-channel leak or a non-WiFi
 * emitter). Interference is the third impairment the paper's
 * introduction names (after noise and fading); it concentrates on a
 * few subcarriers, so the interleaver's job -- scattering the hits
 * across the codeword -- is visible in the decoded BER.
 */

#ifndef WILIS_CHANNEL_INTERFERENCE_HH
#define WILIS_CHANNEL_INTERFERENCE_HH

#include "channel/awgn.hh"
#include "channel/channel.hh"

namespace wilis {
namespace channel {

/** AWGN + complex-tone interferer. */
class InterferenceChannel : public Channel
{
  public:
    /**
     * Config keys:
     *  - snr_db: Es/N0 of the background noise (default 10)
     *  - sir_db: signal-to-interference ratio (default 10)
     *  - interferer_bin: center subcarrier of the tone, logical
     *    index -26..26 (default 10; note +-7 and +-21 are pilot
     *    tones the data path never demaps)
     *  - seed, threads, common_noise: as for AWGN.
     */
    explicit InterferenceChannel(const li::Config &cfg = li::Config());

    std::string name() const override { return "interference"; }
    void apply(SampleSpan samples, std::uint64_t packet_index) override;
    Sample impairSample(Sample s, std::uint64_t packet_index,
                        std::uint64_t sample_index) const override;
    double noiseVariance() const override
    {
        return awgn.noiseVariance();
    }

    /** Interferer amplitude (per-sample). */
    double interfererAmplitude() const { return amp; }

    /** Logical subcarrier the tone sits on. */
    int interfererBin() const { return bin; }

  private:
    Sample toneAt(std::uint64_t packet_index,
                  std::uint64_t sample_index) const;

    AwgnChannel awgn;
    double amp;
    int bin;
    std::uint64_t seed;
};

} // namespace channel
} // namespace wilis

#endif // WILIS_CHANNEL_INTERFERENCE_HH
