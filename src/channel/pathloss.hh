/**
 * @file
 * Large-scale propagation model for the multi-cell network
 * simulator: distance-based log-distance pathloss plus per-link
 * log-normal shadowing.
 *
 * The model works in *SNR space* rather than absolute powers: every
 * link budget divides by the same thermal noise floor, so the only
 * quantity the simulator needs is the mean SNR a transmitter
 * produces at a receiver -- the SNR at a reference distance minus
 * the log-distance pathloss plus a zero-mean shadowing term. That
 * is exactly the form the effective-SNR hook of the fidelity ladder
 * consumes (sim::AnalyticLink), so interference-aware SINR folds
 * into the calibrated analytic rung without touching the tables.
 *
 * Shadowing is *static per link*: one deterministic Gaussian draw
 * keyed by (seed, user, cell) through the counter generator, never
 * by evaluation order, so a deployment's link budget matrix is a
 * pure function of the spec -- bit-identical for any thread count,
 * like every other artifact in this codebase.
 */

#ifndef WILIS_CHANNEL_PATHLOSS_HH
#define WILIS_CHANNEL_PATHLOSS_HH

#include <cstdint>

#include "li/config.hh"

namespace wilis {
namespace channel {

/** Parameters of the log-distance pathloss + shadowing model. */
struct PathlossSpec {
    /**
     * Mean SNR in dB a transmitter produces at the reference
     * distance (the close-in "free space" anchor of the
     * log-distance model, with the noise floor already divided
     * out). The default puts the cell edge of the default grid
     * geometry (250 m radius, exponent 3.5) near 5 dB -- the
     * interference-limited regime the calibrated SNR window
     * covers.
     */
    double refSnrDb = 54.0;
    /** Reference distance in meters (d0 of the model). */
    double refDistanceM = 10.0;
    /** Pathloss exponent (2 = free space, 3.5-4 = urban macro). */
    double exponent = 3.5;
    /** Log-normal shadowing standard deviation in dB (0 = off). */
    double shadowSigmaDb = 6.0;
};

/**
 * Deterministic pathloss + shadowing evaluator. Construction is
 * trivial; linkSnrDb() is a pure function of (spec, seed, distance,
 * user, cell).
 */
class PathlossModel
{
  public:
    /** @param seed Shadowing stream seed (derived by the caller). */
    PathlossModel(const PathlossSpec &spec, std::uint64_t seed);

    /** The parameters in use. */
    const PathlossSpec &spec() const { return spec_; }

    /**
     * Log-distance pathloss in dB relative to the reference
     * distance: 10 * exponent * log10(d / d0). Distances inside d0
     * clamp to 0 dB (the model has no close-in gain).
     */
    double pathlossDb(double distance_m) const;

    /**
     * Static shadowing of the (user, cell) link in dB: a zero-mean
     * Gaussian with the configured sigma, keyed by (seed, user,
     * cell) -- replayable in any order.
     */
    double shadowingDb(int user, int cell) const;

    /**
     * Mean link SNR in dB: refSnrDb - pathlossDb(distance) +
     * shadowingDb(user, cell). Fast fading is *not* included; the
     * per-slot gain is the fading process's job.
     */
    double linkSnrDb(double distance_m, int user, int cell) const;

    /**
     * linkSnrDb() with a caller-cached shadowing term: the
     * position-dependent form the mobility layer re-evaluates
     * every gain epoch (shadowing is static per link, so callers
     * that move users precompute it once and vary only the
     * distance). Bitwise identical to linkSnrDb() when
     * @p shadow_db == shadowingDb(user, cell).
     */
    double
    linkSnrDbAt(double distance_m, double shadow_db) const
    {
        return spec_.refSnrDb - pathlossDb(distance_m) + shadow_db;
    }

    /** Parse a spec from config keys (see sim::NetworkSpec docs). */
    static PathlossSpec specFromConfig(const li::Config &cfg,
                                       const PathlossSpec &defaults);

  private:
    PathlossSpec spec_;
    std::uint64_t seed_;
};

} // namespace channel
} // namespace wilis

#endif // WILIS_CHANNEL_PATHLOSS_HH
