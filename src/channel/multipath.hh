/**
 * @file
 * Frequency-selective multipath Rayleigh channel: L discrete taps
 * with an exponential power-delay profile, each tap an independent
 * Jakes process. This is the "multipath induced fading" impairment
 * the paper's introduction lists; the 16-sample cyclic prefix
 * absorbs delay spreads up to 800 ns at 20 MHz, and the receiver
 * equalizes per subcarrier with perfect CSI.
 *
 * Unlike the flat channels, different subcarriers see different
 * gains, so the 802.11a interleaver's frequency spreading actually
 * matters -- deep notches hit isolated coded bits instead of runs.
 */

#ifndef WILIS_CHANNEL_MULTIPATH_HH
#define WILIS_CHANNEL_MULTIPATH_HH

#include <memory>
#include <vector>

#include "channel/awgn.hh"
#include "channel/channel.hh"
#include "channel/fading.hh"

namespace wilis {
namespace channel {

/** L-tap frequency-selective Rayleigh channel + AWGN. */
class MultipathChannel : public Channel
{
  public:
    /**
     * Config keys:
     *  - snr_db:       mean Es/N0 in dB (default 10)
     *  - doppler_hz:   Doppler of every tap process (default 20)
     *  - num_taps:     discrete taps (default 4)
     *  - delay_spread: RMS delay spread in samples (default 3;
     *                  taps sit at delays 0..num_taps-1 and must
     *                  stay within the 16-sample cyclic prefix)
     *  - seed, threads, common_noise, packet_interval_us: as for
     *    the flat channels.
     */
    explicit MultipathChannel(const li::Config &cfg = li::Config());

    std::string name() const override { return "multipath"; }
    void apply(SampleSpan samples, std::uint64_t packet_index) override;
    Sample impairSample(Sample s, std::uint64_t packet_index,
                        std::uint64_t sample_index) const override;
    Sample gain(std::uint64_t packet_index,
                int symbol_index) const override;
    Sample binGain(std::uint64_t packet_index, int symbol_index,
                   int bin) const override;
    double noiseVariance() const override
    {
        return awgn.noiseVariance();
    }

    /** Number of taps. */
    int numTaps() const { return static_cast<int>(taps.size()); }

    /** Complex value of tap @p l for @p symbol of @p packet. */
    Sample tapValue(std::uint64_t packet_index, int symbol_index,
                    int l) const;

  private:
    struct Tap {
        /** Sample delay. */
        int delay;
        /** Amplitude weight (sqrt of PDP share). */
        double weight;
        /** Unit-power Rayleigh process for this tap. */
        std::unique_ptr<RayleighChannel> process;
    };

    AwgnChannel awgn;
    double packet_interval_us;
    std::vector<Tap> taps;
    /** Per-symbol tap values cached during apply() (no per-packet
     *  allocation: sized once at construction). */
    std::vector<Sample> tap_cache;

    // Streaming state for impairSample(): a per-packet delay line.
    mutable SampleVec history;
    mutable std::uint64_t history_packet = ~0ull;
    mutable std::uint64_t history_next = 0;
};

} // namespace channel
} // namespace wilis

#endif // WILIS_CHANNEL_MULTIPATH_HH
