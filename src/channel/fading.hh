/**
 * @file
 * Flat Rayleigh fading channel with AWGN, used for the SoftRate
 * experiment ("20 Hz fading channel with 10 dB AWGN", Figure 7).
 *
 * The fading process is a Jakes/Clarke sum-of-sinusoids evaluated at
 * absolute time, so the gain seen by packet p at symbol s depends
 * only on (seed, p, s) -- every candidate rate in the oracle replay
 * observes the same fading trajectory.
 */

#ifndef WILIS_CHANNEL_FADING_HH
#define WILIS_CHANNEL_FADING_HH

#include <array>

#include "channel/awgn.hh"
#include "channel/channel.hh"

namespace wilis {
namespace channel {

/** Rayleigh flat-fading + AWGN channel. */
class RayleighChannel : public Channel
{
  public:
    /**
     * Config keys:
     *  - snr_db:          mean Es/N0 in dB (default 10)
     *  - doppler_hz:      maximum Doppler frequency (default 20)
     *  - seed:            random stream seed (default 1)
     *  - packet_interval_us: packet start spacing (default 2000)
     *  - threads:         AWGN worker threads (default 1)
     */
    explicit RayleighChannel(const li::Config &cfg = li::Config());

    RayleighChannel(double snr_db, double doppler_hz,
                    std::uint64_t seed, double packet_interval_us = 2000.0,
                    int threads = 1, bool common_noise = false,
                    bool block_fading = false);

    std::string name() const override { return "rayleigh"; }
    void apply(SampleSpan samples, std::uint64_t packet_index) override;
    Sample impairSample(Sample s, std::uint64_t packet_index,
                        std::uint64_t sample_index) const override;
    Sample gain(std::uint64_t packet_index,
                int symbol_index) const override;
    double noiseVariance() const override
    {
        return awgn.noiseVariance();
    }

    /** Maximum Doppler frequency in Hz. */
    double dopplerHz() const { return doppler; }

  private:
    /** Fading gain at absolute time @p t_us (microseconds). */
    Sample gainAt(double t_us) const;

    static constexpr int kOscillators = 16;

    AwgnChannel awgn;
    double doppler;
    double packet_interval_us;
    bool block_fading_;
    std::array<double, kOscillators> freq_scale; // cos(arrival angle)
    std::array<double, kOscillators> phase_i;
    std::array<double, kOscillators> phase_q;
};

} // namespace channel
} // namespace wilis

#endif // WILIS_CHANNEL_FADING_HH
