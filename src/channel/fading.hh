/**
 * @file
 * Flat Rayleigh fading channel with AWGN, used for the SoftRate
 * experiment ("20 Hz fading channel with 10 dB AWGN", Figure 7).
 *
 * The fading process is a Jakes/Clarke sum-of-sinusoids evaluated at
 * absolute time, so the gain seen by packet p at symbol s depends
 * only on (seed, p, s) -- every candidate rate in the oracle replay
 * observes the same fading trajectory.
 */

#ifndef WILIS_CHANNEL_FADING_HH
#define WILIS_CHANNEL_FADING_HH

#include <array>

#include "channel/awgn.hh"
#include "channel/channel.hh"

namespace wilis {
namespace channel {

/**
 * The bare Jakes/Clarke sum-of-sinusoids Rayleigh fading process,
 * split out of RayleighChannel so the multi-cell network simulator
 * can evaluate per-user fading gains at arbitrary slot times
 * without paying for an AWGN channel per user. The oscillator bank
 * is deterministic in the seed, evaluation is random-access (a pure
 * function of absolute time), and E[|h|^2] = 1.
 */
class JakesFader
{
  public:
    /**
     * @param doppler_hz Maximum Doppler frequency.
     * @param seed       Oscillator bank seed; equal seeds produce
     *                   the identical fading trajectory.
     */
    JakesFader(double doppler_hz, std::uint64_t seed);

    /** Maximum Doppler frequency in Hz. */
    double dopplerHz() const { return doppler; }

    /** Complex fading gain at absolute time @p t_us. */
    Sample gainAt(double t_us) const;

  private:
    static constexpr int kOscillators = 16;

    double doppler;
    std::array<double, kOscillators> freq_scale; // cos(arrival angle)
    std::array<double, kOscillators> phase_i;
    std::array<double, kOscillators> phase_q;
};

/** Rayleigh flat-fading + AWGN channel. */
class RayleighChannel : public Channel
{
  public:
    /**
     * Config keys:
     *  - snr_db:          mean Es/N0 in dB (default 10)
     *  - doppler_hz:      maximum Doppler frequency (default 20)
     *  - seed:            random stream seed (default 1)
     *  - packet_interval_us: packet start spacing (default 2000)
     *  - threads:         AWGN worker threads (default 1)
     */
    explicit RayleighChannel(const li::Config &cfg = li::Config());

    /** Direct constructor (seeds keep their full 64-bit range). */
    RayleighChannel(double snr_db, double doppler_hz,
                    std::uint64_t seed, double packet_interval_us = 2000.0,
                    int threads = 1, bool common_noise = false,
                    bool block_fading = false);

    std::string name() const override { return "rayleigh"; }
    void apply(SampleSpan samples, std::uint64_t packet_index) override;
    Sample impairSample(Sample s, std::uint64_t packet_index,
                        std::uint64_t sample_index) const override;
    Sample gain(std::uint64_t packet_index,
                int symbol_index) const override;
    double noiseVariance() const override
    {
        return awgn.noiseVariance();
    }

    /** Maximum Doppler frequency in Hz. */
    double dopplerHz() const { return fader.dopplerHz(); }

  private:
    /** Fading gain at absolute time @p t_us (microseconds). */
    Sample gainAt(double t_us) const { return fader.gainAt(t_us); }

    AwgnChannel awgn;
    JakesFader fader;
    double packet_interval_us;
    bool block_fading_;
};

/**
 * Block-correlated Rayleigh fading + AWGN for multi-user network
 * simulation: one complex gain per frame slot, evolved by a
 * Doppler-parameterized first-order autoregression
 *
 *     h[0] = w[0],   h[n] = rho * h[n-1] + sqrt(1 - rho^2) * w[n]
 *
 * with w[n] ~ CN(0, 1) drawn from the counter-based generator and
 * rho = J0(2 pi f_d T) (Clarke's autocorrelation sampled at the
 * frame interval T). Unlike the sum-of-sinusoids RayleighChannel,
 * the process is defined per *slot index*, so a link that
 * retransmits in a later slot sees a correlated-but-evolved gain --
 * the temporal structure a rate-adaptation loop has to track.
 *
 * The gain at slot n is a pure function of (seed, n) through the
 * recurrence; an internal cursor makes the sequential access pattern
 * of a frame-by-frame simulation O(1) per slot while arbitrary
 * (replay) indices remain available by recomputation. Instances are
 * not safe for concurrent use; in NetworkSim every link owns one.
 */
class Ar1FadingChannel : public Channel
{
  public:
    /**
     * Config keys:
     *  - snr_db:            mean Es/N0 in dB (default 10)
     *  - doppler_hz:        maximum Doppler frequency (default 30)
     *  - frame_interval_us: slot spacing in microseconds, the AR(1)
     *                       sampling interval (default 2000)
     *  - seed:              random stream seed (default 1)
     *  - threads:           AWGN worker threads (default 1)
     */
    explicit Ar1FadingChannel(const li::Config &cfg = li::Config());

    /** Direct constructor (seeds keep their full 64-bit range). */
    Ar1FadingChannel(double snr_db, double doppler_hz,
                     double frame_interval_us, std::uint64_t seed,
                     int threads = 1);

    std::string name() const override { return "ar1"; }
    void apply(SampleSpan samples, std::uint64_t packet_index) override;
    Sample impairSample(Sample s, std::uint64_t packet_index,
                        std::uint64_t sample_index) const override;
    /** Block fading: one gain per slot, symbol index ignored. */
    Sample gain(std::uint64_t packet_index,
                int symbol_index) const override;
    double noiseVariance() const override
    {
        return awgn.noiseVariance();
    }

    /** Maximum Doppler frequency in Hz. */
    double dopplerHz() const { return doppler; }

    /** AR(1) coefficient J0(2 pi f_d T), clamped to [0, 1). */
    double rho() const { return rho_; }

  private:
    /** Gain at slot @p n via the cached recurrence. */
    Sample gainAt(std::uint64_t n) const;

    /** Unit-variance complex innovation w[n]. */
    Sample innovation(std::uint64_t n) const;

    AwgnChannel awgn;
    double doppler;
    double frame_interval_us_;
    double rho_;
    double innov_scale; // sqrt(1 - rho^2)
    CounterRng innovations;
    // Sequential-access cursor; mutable because gain() is
    // observationally const (the gain sequence is a pure function
    // of the seed).
    mutable bool cache_valid = false;
    mutable std::uint64_t cache_index = 0;
    mutable Sample cache_gain = Sample(0.0, 0.0);
};

} // namespace channel
} // namespace wilis

#endif // WILIS_CHANNEL_FADING_HH
