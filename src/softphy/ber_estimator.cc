#include "softphy/ber_estimator.hh"

#include <cmath>

#include "common/logging.hh"
#include "softphy/llr_ber.hh"

namespace wilis {
namespace softphy {

BerTable::BerTable()
{
    table.fill(0.5);
}

BerTable
BerTable::fromScale(double scale, double llr_max)
{
    wilis_assert(scale > 0.0, "BER table needs a positive scale");
    wilis_assert(llr_max > 0.0, "BER table needs a positive range");
    BerTable t;
    t.scale_ = scale;
    t.llr_max_ = llr_max;
    for (int i = 0; i < kEntries; ++i) {
        double hint = (static_cast<double>(i) + 0.5) * llr_max /
                      static_cast<double>(kEntries);
        t.table[static_cast<size_t>(i)] = berFromHint(hint, scale);
    }
    return t;
}

double
BerTable::lookup(double hint) const
{
    if (hint < 0.0)
        hint = 0.0;
    // Saturated hints (including SOVA's infinite "never
    // contradicted" confidence) clamp to the most confident entry.
    if (hint >= llr_max_)
        return table[kEntries - 1];
    int idx = static_cast<int>(hint / llr_max_ *
                               static_cast<double>(kEntries));
    return table[static_cast<size_t>(idx)];
}

namespace {

size_t
modIndex(phy::Modulation mod)
{
    return static_cast<size_t>(mod);
}

} // namespace

void
BerEstimator::setTable(phy::Modulation mod, BerTable table)
{
    tables[modIndex(mod)] = table;
    present[modIndex(mod)] = true;
}

bool
BerEstimator::hasTable(phy::Modulation mod) const
{
    return present[modIndex(mod)];
}

const BerTable &
BerEstimator::tableFor(phy::Modulation mod) const
{
    wilis_assert(present[modIndex(mod)],
                 "no BER table calibrated for %s",
                 phy::modulationName(mod).c_str());
    return tables[modIndex(mod)];
}

double
BerEstimator::perBitBer(phy::Modulation mod, double hint) const
{
    return tableFor(mod).lookup(hint);
}

double
BerEstimator::packetBer(phy::Modulation mod,
                        std::span<const SoftDecision> soft) const
{
    wilis_assert(!soft.empty(), "empty packet");
    const BerTable &t = tableFor(mod);
    double sum = 0.0;
    for (const auto &d : soft)
        sum += t.lookup(d.llr);
    return sum / static_cast<double>(soft.size());
}

double
BerEstimator::packetBer(phy::Modulation mod,
                        const std::vector<SoftDecision> &soft) const
{
    return packetBer(mod, std::span<const SoftDecision>(soft));
}

void
BerEstimator::setRateTable(phy::RateIndex rate, BerTable table)
{
    rate_tables[static_cast<size_t>(rate)] = table;
    rate_present[static_cast<size_t>(rate)] = true;
}

bool
BerEstimator::hasRateTable(phy::RateIndex rate) const
{
    return rate_present[static_cast<size_t>(rate)];
}

const BerTable &
BerEstimator::tableForRate(phy::RateIndex rate) const
{
    wilis_assert(rate_present[static_cast<size_t>(rate)],
                 "no BER table calibrated for rate %d", rate);
    return rate_tables[static_cast<size_t>(rate)];
}

double
BerEstimator::perBitBerForRate(phy::RateIndex rate, double hint) const
{
    return tableForRate(rate).lookup(hint);
}

double
BerEstimator::packetBerForRate(
    phy::RateIndex rate, std::span<const SoftDecision> soft) const
{
    wilis_assert(!soft.empty(), "empty packet");
    const BerTable &t = tableForRate(rate);
    double sum = 0.0;
    for (const auto &d : soft)
        sum += t.lookup(d.llr);
    return sum / static_cast<double>(soft.size());
}

double
BerEstimator::packetBerForRate(
    phy::RateIndex rate, const std::vector<SoftDecision> &soft) const
{
    return packetBerForRate(rate,
                            std::span<const SoftDecision>(soft));
}

} // namespace softphy
} // namespace wilis
