/**
 * @file
 * End-to-end SoftPHY calibration driver: run packets through a
 * transceiver at a fixed mid-band SNR per modulation, fit the
 * combined eq. 5 scale from the observed BER-vs-LLR relationship,
 * and bake the two-level lookup estimator. This is exactly the flow
 * of section 4.4.1: simulate, observe the log-linear curve, derive
 * the scaling factors, generate the lookup tables.
 */

#ifndef WILIS_SOFTPHY_SOFTPHY_HH
#define WILIS_SOFTPHY_SOFTPHY_HH

#include <cstdint>
#include <string>

#include "phy/ofdm_rx.hh"
#include "softphy/ber_estimator.hh"
#include "softphy/calibration.hh"

namespace wilis {
namespace softphy {

/** Parameters of one calibration run. */
struct CalibrationSpec {
    /** Receiver configuration (decoder slot, demapper width...). */
    phy::OfdmReceiver::Config rx;
    /** Payload size of calibration packets. */
    size_t payloadBits = 1704;
    /** Packets per modulation. */
    std::uint64_t packets = 300;
    /** Worker threads (0 = hardware concurrency). */
    int threads = 0;
    /** Base seed for channel noise. */
    std::uint64_t seed = 0xCA11B;

    /** Hint range covered by tables, derived from demapper width. */
    double llrMax() const;
};

/**
 * The mid-band calibration SNR for @p mod: the paper picks a single
 * SNR "in the middle of the range" over which the modulation's BER
 * falls from 1e-1 to 1e-7 (section 4.2).
 */
double midBandSnrDb(phy::Modulation mod);

/** Representative rate index used to calibrate @p mod (1/2-ish). */
phy::RateIndex calibrationRate(phy::Modulation mod);

/**
 * Measure the BER-vs-LLR curve for one rate at one SNR (the raw data
 * behind Figure 5).
 */
LlrCalibrator measureLlrCurve(phy::RateIndex rate, double snr_db,
                              const CalibrationSpec &spec);

/** Calibrate the level-two table for one modulation. */
BerTable calibrateTable(phy::Modulation mod,
                        const CalibrationSpec &spec);

/**
 * Build a fully calibrated estimator (all four modulations) for the
 * decoder named in @p spec.rx.
 */
BerEstimator calibrateEstimator(const CalibrationSpec &spec);

/**
 * Mid-band calibration SNR for a specific rate. Punctured rates of
 * a modulation have their waterfall a few dB to the right of the
 * mother-code rate.
 */
double midBandSnrDbForRate(phy::RateIndex rate);

/** Calibrate the level-two table for one specific rate. */
BerTable calibrateRateTable(phy::RateIndex rate,
                            const CalibrationSpec &spec);

/**
 * Build an estimator with all eight per-rate tables (the refinement
 * used by the SoftRate experiment; see BerEstimator docs).
 */
BerEstimator calibrateRateEstimator(const CalibrationSpec &spec);

/**
 * Calibration-free per-rate estimator: each table's combined eq. 5
 * scale is derived analytically from the mid-band Es/N0, the
 * S_modulation demapper constant and the demapper's quantization
 * step, taking the decoder scale S_dec as 1. A zero-cost stand-in
 * for calibrateRateEstimator() where a full calibration sweep is too
 * expensive (e.g. constructing a many-user sim::NetworkSim); expect
 * coarser absolute PBER accuracy than the calibrated tables.
 */
BerEstimator analyticRateEstimator(const phy::OfdmReceiver::Config &rx);

} // namespace softphy
} // namespace wilis

#endif // WILIS_SOFTPHY_SOFTPHY_HH
