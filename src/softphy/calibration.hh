/**
 * @file
 * Fits the combined eq. 5 scaling factor from observed (LLR hint,
 * bit error) pairs -- the procedure of section 4.4.1: "we can use
 * these curves to determine the values of these scaling factors and
 * to generate lookup tables for our per-bit BER estimator".
 */

#ifndef WILIS_SOFTPHY_CALIBRATION_HH
#define WILIS_SOFTPHY_CALIBRATION_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace wilis {
namespace softphy {

/** One point of a measured BER-vs-LLR curve (Figure 5). */
struct LlrBerPoint {
    double llr;           //!< bin center (hardware hint units)
    double ber;           //!< observed error rate in the bin
    std::uint64_t total;  //!< observations in the bin
    std::uint64_t errors; //!< errors in the bin
};

/**
 * Accumulates per-bit (hint, error) observations into LLR bins and
 * fits BER(hint) = 1 / (1 + e^(scale * hint)).
 */
class LlrCalibrator
{
  public:
    /**
     * @param llr_max   Hints at or above this value share the top bin.
     * @param num_bins  Histogram resolution.
     */
    explicit LlrCalibrator(double llr_max, int num_bins = 64);

    /** Record one decoded bit. */
    void record(double hint, bool error);

    /** Merge another calibrator with identical binning. */
    void merge(const LlrCalibrator &other);

    /** Total observations so far. */
    std::uint64_t totalObservations() const;

    /**
     * Weighted least-squares fit of -ln(BER) = scale * llr through
     * the origin over bins with at least @p min_errors errors
     * (empty-tail bins carry no slope information).
     * @return the combined eq. 5 scale in 1/hint units.
     */
    double fitScale(std::uint64_t min_errors = 10) const;

    /** The measured curve (bins with at least one observation). */
    std::vector<LlrBerPoint> curve() const;

    /** Upper edge of the binned hint range. */
    double llrMax() const { return llr_max; }

  private:
    int binOf(double hint) const;

    double llr_max;
    int num_bins;
    BinnedErrorCounter bins;
};

} // namespace softphy
} // namespace wilis

#endif // WILIS_SOFTPHY_CALIBRATION_HH
