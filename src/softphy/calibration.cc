#include "softphy/calibration.hh"

#include <cmath>

#include "common/logging.hh"

namespace wilis {
namespace softphy {

LlrCalibrator::LlrCalibrator(double llr_max_, int num_bins_)
    : llr_max(llr_max_), num_bins(num_bins_), bins(num_bins_)
{
    wilis_assert(llr_max > 0.0, "llr_max must be positive");
    wilis_assert(num_bins >= 4, "need at least 4 bins");
}

int
LlrCalibrator::binOf(double hint) const
{
    if (hint < 0.0)
        hint = 0.0;
    // Saturated and infinite hints (SOVA's never-contradicted bits)
    // land in the top bin.
    if (hint >= llr_max)
        return num_bins - 1;
    return static_cast<int>(hint / llr_max *
                            static_cast<double>(num_bins));
}

void
LlrCalibrator::record(double hint, bool error)
{
    bins.record(binOf(hint), error);
}

void
LlrCalibrator::merge(const LlrCalibrator &other)
{
    wilis_assert(other.num_bins == num_bins &&
                     other.llr_max == llr_max,
                 "calibrator binning mismatch");
    bins.merge(other.bins);
}

std::uint64_t
LlrCalibrator::totalObservations() const
{
    std::uint64_t t = 0;
    for (int b = 0; b < num_bins; ++b)
        t += bins.total(b);
    return t;
}

double
LlrCalibrator::fitScale(std::uint64_t min_errors) const
{
    // Fit -ln(ber_b) = scale * llr_b over bins with enough errors to
    // make ber_b trustworthy, weighting by the error count (which is
    // proportional to the inverse variance of ln(ber) estimates).
    double sxy = 0.0;
    double sxx = 0.0;
    for (int b = 0; b < num_bins; ++b) {
        if (bins.errorCount(b) < min_errors)
            continue;
        double r = bins.rate(b);
        if (r <= 0.0 || r >= 0.5)
            continue;
        double llr = (static_cast<double>(b) + 0.5) * llr_max /
                     static_cast<double>(num_bins);
        double y = -std::log(r);
        double w = static_cast<double>(bins.errorCount(b));
        sxy += w * llr * y;
        sxx += w * llr * llr;
    }
    if (sxx <= 0.0) {
        wilis_warn("LLR calibration had no usable bins; falling back "
                   "to unit scale");
        return 1.0;
    }
    return sxy / sxx;
}

std::vector<LlrBerPoint>
LlrCalibrator::curve() const
{
    std::vector<LlrBerPoint> pts;
    for (int b = 0; b < num_bins; ++b) {
        if (bins.total(b) == 0)
            continue;
        LlrBerPoint p;
        p.llr = (static_cast<double>(b) + 0.5) * llr_max /
                static_cast<double>(num_bins);
        p.total = bins.total(b);
        p.errors = bins.errorCount(b);
        p.ber = bins.rate(b);
        pts.push_back(p);
    }
    return pts;
}

} // namespace softphy
} // namespace wilis
