/**
 * @file
 * Offline frame-level calibration for the hybrid-fidelity network
 * simulator: a (rate, channel kind, SNR bin) table of frame error
 * rates and SoftPHY packet-BER statistics measured against the
 * bit-exact PHY by a scenario-grid sweep.
 *
 * The analytic fast path of sim::NetworkSim (sim::LinkFidelity mode
 * "analytic"/"auto") conditions each frame slot on the link's fading
 * gain, forms the *effective* SNR of that slot, and draws the frame
 * outcome from this table instead of running tx -> channel -> rx ->
 * decode. Because the table is measured from the same pipeline it
 * replaces -- same rates, same receiver configuration, same
 * SoftPHY estimator feeding SoftRate -- system-level statistics
 * (per-user PER, goodput, rate usage) track the full-PHY reference
 * within sampling tolerance at a small fraction of the cost (the
 * WiLIS mixed-fidelity argument; see also "Performance Modeling of
 * Next-Generation Wireless Networks" in PAPERS.md).
 *
 * Determinism: the build accumulates per-packet observations keyed
 * by packet index and reduces them in packet order, so the table --
 * like every other artifact in this codebase -- is bit-identical
 * for any worker thread count.
 */

#ifndef WILIS_SOFTPHY_CALIBRATION_TABLE_HH
#define WILIS_SOFTPHY_CALIBRATION_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/kernels.hh"
#include "phy/modulation.hh"
#include "phy/ofdm_rx.hh"

namespace wilis {
namespace softphy {

/**
 * Accumulated frame observations of one (rate, SNR bin) cell.
 * Packet-BER statistics are kept as log sums (geometric means):
 * SoftRate compares the per-packet BER against decade thresholds, so
 * the geometric mean is the representative feedback value, where an
 * arithmetic mean would be dominated by the worst frame in the bin.
 */
struct CalibrationCell {
    /** Frames measured. */
    std::uint64_t frames = 0;
    /** Frames decoded without payload errors. */
    std::uint64_t ok = 0;
    /** Sum of SoftPHY packet-BER estimates (arithmetic basis). */
    double sumPber = 0.0;
    /** Sum of ln(packet BER) over clean frames. */
    double sumLogPberOk = 0.0;
    /** Sum of ln(packet BER) over errored frames. */
    double sumLogPberBad = 0.0;

    /** Measured frame error rate (1 if the cell is empty). */
    double per() const;
    /** Geometric-mean packet BER of clean frames (with fallbacks). */
    double pberOkGeo() const;
    /** Geometric-mean packet BER of errored frames (fallbacks). */
    double pberBadGeo() const;

    /** Fold another cell's observations into this one. */
    void merge(const CalibrationCell &other);
};

/**
 * Owning flattened form of a CalibrationTable for the batched
 * PER-interpolation kernel: the per-cell frame error rate and log
 * geometric-mean packet BERs precomputed through the very accessors
 * the scalar lookup calls inline (CalibrationCell::per(),
 * std::log(pberOkGeo()/pberBadGeo())), so a batched draw over
 * view() is bit-identical to the scalar one. Arrays are indexed
 * [rate * numBins + bin]; view() borrows from this object, which
 * must outlive it.
 */
struct FlatCalibration {
    /** CalibrationCell::per() per cell. */
    std::vector<double> per;
    /** ln(CalibrationCell::pberOkGeo()) per cell. */
    std::vector<double> logPberOk;
    /** ln(CalibrationCell::pberBadGeo()) per cell. */
    std::vector<double> logPberBad;
    /** SNR bins per rate row. */
    int numBins = 0;
    /** Lower edge of SNR bin 0 in dB. */
    double snrLoDb = 0.0;
    /** SNR bin width in dB. */
    double snrStepDb = 1.0;

    /** Non-owning kernel view of this flattened table. */
    kernels::PerTableView
    view() const
    {
        return {per.data(),  logPberOk.data(), logPberBad.data(),
                numBins,     snrLoDb,          snrStepDb};
    }
};

/**
 * The (rate, channel kind, SNR bin) calibration table.
 *
 * Lookups interpolate linearly between bin centers (PER in linear
 * space, packet BER in log space) and clamp to the edge bins, so a
 * deep fade below the calibrated range reads PER ~ 1 and a strong
 * peak above it reads the top bin's residual PER.
 */
class CalibrationTable
{
  public:
    /** Parameters of one offline calibration sweep. */
    struct BuildSpec {
        /** Receiver configuration (decoder slot, demapper width). */
        phy::OfdmReceiver::Config rx;
        /**
         * Channel registry kind the table models. The analytic
         * network path conditions on the per-slot fading gain, so
         * its tables are built against "awgn" (flat channel at the
         * bin-center SNR == fading conditioned on |h|).
         */
        std::string channel = "awgn";
        /** Payload length of calibration frames, in bits. */
        size_t payloadBits = 1000;
        /** Lower edge of SNR bin 0, in dB. */
        double snrLoDb = -4.0;
        /** SNR bin width in dB. */
        double snrStepDb = 2.0;
        /** Number of SNR bins. */
        int numBins = 18;
        /** Frames measured per (rate, bin) cell. */
        std::uint64_t packetsPerCell = 64;
        /** Worker threads (0 = hardware concurrency). */
        int threads = 0;
        /** Master seed of the calibration random streams. */
        std::uint64_t seed = 0xCA1B;
    };

    /** An empty (unusable) table; see build()/load()/parse(). */
    CalibrationTable() = default;

    /**
     * Measure a table from the bit-exact PHY: for every (rate, SNR
     * bin) cell, run packetsPerCell frames of the configured channel
     * at the bin-center SNR through sim::sweepFrames and record the
     * frame outcome plus the SoftPHY packet-BER estimate
     * (softphy::analyticRateEstimator -- the same estimator the
     * full-fidelity network path feeds to SoftRate).
     */
    static CalibrationTable build(const BuildSpec &spec);

    /** True if the table holds measured cells. */
    bool valid() const { return !cells.empty(); }

    /** Channel kind the table was measured against. */
    const std::string &channelKind() const { return channel_; }
    /** Decoder the table was measured with. */
    const std::string &decoder() const { return decoder_; }
    /** Demapper soft width the table was measured with. */
    int softWidth() const { return soft_width_; }
    /** Calibration payload length in bits. */
    size_t payloadBits() const { return payload_bits_; }
    /** Frames measured per cell. */
    std::uint64_t packetsPerCell() const { return packets_; }
    /** Build seed (provenance). */
    std::uint64_t seed() const { return seed_; }
    /** Lower edge of SNR bin 0 in dB. */
    double snrLoDb() const { return snr_lo_; }
    /** SNR bin width in dB. */
    double snrStepDb() const { return snr_step_; }
    /** Number of SNR bins. */
    int numBins() const { return num_bins_; }
    /** Center SNR of @p bin in dB. */
    double binCenterDb(int bin) const;
    /** Bin index covering @p snr_db (clamped to the edge bins). */
    int binOf(double snr_db) const;

    /** Measured cell for (@p rate, @p bin). */
    const CalibrationCell &cell(phy::RateIndex rate, int bin) const;

    /**
     * Frame error probability at @p snr_db for @p rate,
     * interpolated between bin centers and clamped to the edges.
     */
    double per(phy::RateIndex rate, double snr_db) const;

    /**
     * Calibrated SoftRate feedback: the packet-BER estimate a frame
     * at @p snr_db would have produced, conditioned on its decode
     * outcome @p ok (log-interpolated geometric means).
     */
    double pberFeedback(phy::RateIndex rate, double snr_db,
                        bool ok) const;

    /**
     * Precompute the flattened per-cell arrays the batched PER
     * kernel reads (see FlatCalibration). Call once per run, not
     * per slot.
     */
    FlatCalibration flatten() const;

    /** Serialize to the versioned text format (round-trips). */
    std::string serialize() const;

    /** Parse a serialized table; fatal on malformed input. */
    static CalibrationTable parse(const std::string &text);

    /** Write serialize() to @p path; fatal on I/O failure. */
    void save(const std::string &path) const;

    /** Load and parse @p path; fatal on I/O or format errors. */
    static CalibrationTable load(const std::string &path);

  private:
    CalibrationCell &cellAt(int rate, int bin);
    /** Continuous bin coordinate of @p snr_db with edge clamping. */
    void lerpCoords(double snr_db, int *b0, int *b1,
                    double *frac) const;

    std::string channel_ = "awgn";
    std::string decoder_ = "";
    int soft_width_ = 0;
    size_t payload_bits_ = 0;
    std::uint64_t packets_ = 0;
    std::uint64_t seed_ = 0;
    double snr_lo_ = 0.0;
    double snr_step_ = 1.0;
    int num_bins_ = 0;
    std::vector<CalibrationCell> cells; // [rate * num_bins_ + bin]
};

} // namespace softphy
} // namespace wilis

#endif // WILIS_SOFTPHY_CALIBRATION_TABLE_HH
