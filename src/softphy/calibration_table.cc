#include "softphy/calibration_table.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "sim/sweep.hh"
#include "softphy/softphy.hh"

namespace wilis {
namespace softphy {

namespace {

/** Packet-BER estimates are clamped into [kPberFloor, 1] before the
 *  log sums so a zero estimate cannot produce -inf. */
constexpr double kPberFloor = 1e-12;

double
clampPber(double pber)
{
    if (pber < kPberFloor)
        return kPberFloor;
    if (pber > 1.0)
        return 1.0;
    return pber;
}

} // namespace

double
CalibrationCell::per() const
{
    if (!frames)
        return 1.0;
    return static_cast<double>(frames - ok) /
           static_cast<double>(frames);
}

double
CalibrationCell::pberOkGeo() const
{
    if (ok)
        return std::exp(sumLogPberOk / static_cast<double>(ok));
    // Every calibrated frame failed here: the best available
    // conditional statistic is the errored-frame mean.
    if (frames)
        return pberBadGeo();
    return kPberFloor;
}

double
CalibrationCell::pberBadGeo() const
{
    const std::uint64_t bad = frames - ok;
    if (bad)
        return std::exp(sumLogPberBad / static_cast<double>(bad));
    if (frames)
        return pberOkGeo();
    return 0.5;
}

void
CalibrationCell::merge(const CalibrationCell &other)
{
    frames += other.frames;
    ok += other.ok;
    sumPber += other.sumPber;
    sumLogPberOk += other.sumLogPberOk;
    sumLogPberBad += other.sumLogPberBad;
}

CalibrationTable
CalibrationTable::build(const BuildSpec &spec)
{
    wilis_assert(spec.numBins >= 1, "calibration needs >= 1 SNR bin");
    wilis_assert(spec.snrStepDb > 0.0,
                 "calibration needs a positive SNR step");
    wilis_assert(spec.packetsPerCell >= 1,
                 "calibration needs >= 1 packet per cell");

    CalibrationTable t;
    t.channel_ = spec.channel;
    t.decoder_ = spec.rx.decoder;
    t.soft_width_ = spec.rx.demapper.softWidth;
    t.payload_bits_ = spec.payloadBits;
    t.packets_ = spec.packetsPerCell;
    t.seed_ = spec.seed;
    t.snr_lo_ = spec.snrLoDb;
    t.snr_step_ = spec.snrStepDb;
    t.num_bins_ = spec.numBins;
    t.cells.assign(static_cast<size_t>(phy::kNumRates) *
                       static_cast<size_t>(spec.numBins),
                   CalibrationCell());

    const BerEstimator estimator = analyticRateEstimator(spec.rx);
    const CounterRng root(spec.seed);

    for (int rate = 0; rate < phy::kNumRates; ++rate) {
        const CounterRng rate_rng =
            root.fork(static_cast<std::uint64_t>(rate));
        for (int bin = 0; bin < spec.numBins; ++bin) {
            sim::ScenarioSpec scen;
            scen.name = strprintf("cal/r%d/b%d", rate, bin);
            scen.rate = rate;
            scen.rx = spec.rx;
            scen.channel = spec.channel;
            scen.channelCfg.set(
                "snr_db",
                strprintf("%.17g", t.binCenterDb(bin)));
            scen.channelCfg.set(
                "seed",
                strprintf("%llu",
                          static_cast<unsigned long long>(
                              rate_rng.at(2 * static_cast<std::uint64_t>(
                                                  bin)))));
            scen.payloadBits = spec.payloadBits;
            scen.payloadSeed =
                rate_rng.at(2 * static_cast<std::uint64_t>(bin) + 1);

            // Per-packet staging buffers reduced in packet order, so
            // the accumulated sums are independent of how the sweep
            // shards packets over workers.
            std::vector<std::uint8_t> ok_by_packet(
                spec.packetsPerCell, 0);
            std::vector<double> pber_by_packet(spec.packetsPerCell,
                                               0.0);
            sim::sweepFrames(
                scen, spec.packetsPerCell, spec.threads,
                [&](int, const sim::FrameResult &res,
                    std::uint64_t p) {
                    ok_by_packet[static_cast<size_t>(p)] =
                        res.ok ? 1 : 0;
                    pber_by_packet[static_cast<size_t>(p)] =
                        clampPber(estimator.packetBerForRate(
                            rate, res.rx.soft));
                });

            CalibrationCell &cell = t.cellAt(rate, bin);
            for (std::uint64_t p = 0; p < spec.packetsPerCell; ++p) {
                const double pber =
                    pber_by_packet[static_cast<size_t>(p)];
                cell.frames += 1;
                cell.sumPber += pber;
                if (ok_by_packet[static_cast<size_t>(p)]) {
                    cell.ok += 1;
                    cell.sumLogPberOk += std::log(pber);
                } else {
                    cell.sumLogPberBad += std::log(pber);
                }
            }
        }
    }
    return t;
}

double
CalibrationTable::binCenterDb(int bin) const
{
    return snr_lo_ + (static_cast<double>(bin) + 0.5) * snr_step_;
}

int
CalibrationTable::binOf(double snr_db) const
{
    int bin = static_cast<int>(
        std::floor((snr_db - snr_lo_) / snr_step_));
    if (bin < 0)
        bin = 0;
    if (bin >= num_bins_)
        bin = num_bins_ - 1;
    return bin;
}

CalibrationCell &
CalibrationTable::cellAt(int rate, int bin)
{
    return cells[static_cast<size_t>(rate) *
                     static_cast<size_t>(num_bins_) +
                 static_cast<size_t>(bin)];
}

const CalibrationCell &
CalibrationTable::cell(phy::RateIndex rate, int bin) const
{
    wilis_assert(valid(), "calibration table is empty");
    wilis_assert(rate >= 0 && rate < phy::kNumRates,
                 "rate %d out of range", rate);
    wilis_assert(bin >= 0 && bin < num_bins_, "bin %d out of %d",
                 bin, num_bins_);
    return cells[static_cast<size_t>(rate) *
                     static_cast<size_t>(num_bins_) +
                 static_cast<size_t>(bin)];
}

void
CalibrationTable::lerpCoords(double snr_db, int *b0, int *b1,
                             double *frac) const
{
    // Continuous coordinate in units of bins, 0 at bin 0's center.
    double x = (snr_db - snr_lo_) / snr_step_ - 0.5;
    if (x <= 0.0) {
        *b0 = *b1 = 0;
        *frac = 0.0;
        return;
    }
    if (x >= static_cast<double>(num_bins_ - 1)) {
        *b0 = *b1 = num_bins_ - 1;
        *frac = 0.0;
        return;
    }
    *b0 = static_cast<int>(std::floor(x));
    *b1 = *b0 + 1;
    *frac = x - static_cast<double>(*b0);
}

double
CalibrationTable::per(phy::RateIndex rate, double snr_db) const
{
    wilis_assert(valid(), "calibration table is empty");
    wilis_assert(rate >= 0 && rate < phy::kNumRates,
                 "rate %d out of range", rate);
    int b0, b1;
    double frac;
    lerpCoords(snr_db, &b0, &b1, &frac);
    const double p0 = cell(rate, b0).per();
    const double p1 = cell(rate, b1).per();
    return p0 + (p1 - p0) * frac;
}

double
CalibrationTable::pberFeedback(phy::RateIndex rate, double snr_db,
                               bool ok) const
{
    wilis_assert(valid(), "calibration table is empty");
    wilis_assert(rate >= 0 && rate < phy::kNumRates,
                 "rate %d out of range", rate);
    int b0, b1;
    double frac;
    lerpCoords(snr_db, &b0, &b1, &frac);
    const CalibrationCell &c0 = cell(rate, b0);
    const CalibrationCell &c1 = cell(rate, b1);
    const double l0 =
        std::log(ok ? c0.pberOkGeo() : c0.pberBadGeo());
    const double l1 =
        std::log(ok ? c1.pberOkGeo() : c1.pberBadGeo());
    return std::exp(l0 + (l1 - l0) * frac);
}

FlatCalibration
CalibrationTable::flatten() const
{
    wilis_assert(valid(), "cannot flatten an empty table");
    FlatCalibration flat;
    flat.numBins = num_bins_;
    flat.snrLoDb = snr_lo_;
    flat.snrStepDb = snr_step_;
    flat.per.reserve(cells.size());
    flat.logPberOk.reserve(cells.size());
    flat.logPberBad.reserve(cells.size());
    for (const CalibrationCell &c : cells) {
        flat.per.push_back(c.per());
        flat.logPberOk.push_back(std::log(c.pberOkGeo()));
        flat.logPberBad.push_back(std::log(c.pberBadGeo()));
    }
    return flat;
}

std::string
CalibrationTable::serialize() const
{
    wilis_assert(valid(), "cannot serialize an empty table");
    std::ostringstream out;
    out << "# WiLIS network calibration table\n";
    out << "version 1\n";
    out << "channel " << channel_ << "\n";
    out << "decoder " << decoder_ << "\n";
    out << "soft_width " << soft_width_ << "\n";
    out << "payload_bits " << payload_bits_ << "\n";
    out << "packets_per_cell " << packets_ << "\n";
    out << "seed " << seed_ << "\n";
    out << strprintf("snr_lo_db %.17g\n", snr_lo_);
    out << strprintf("snr_step_db %.17g\n", snr_step_);
    out << "num_bins " << num_bins_ << "\n";
    out << "num_rates " << phy::kNumRates << "\n";
    for (int rate = 0; rate < phy::kNumRates; ++rate) {
        for (int bin = 0; bin < num_bins_; ++bin) {
            const CalibrationCell &c = cell(rate, bin);
            out << strprintf(
                "cell %d %d %llu %llu %.17g %.17g %.17g\n", rate,
                bin, static_cast<unsigned long long>(c.frames),
                static_cast<unsigned long long>(c.ok), c.sumPber,
                c.sumLogPberOk, c.sumLogPberBad);
        }
    }
    return out.str();
}

CalibrationTable
CalibrationTable::parse(const std::string &text)
{
    CalibrationTable t;
    int num_rates = 0;
    int version = 0;
    std::uint64_t cells_seen = 0;
    std::vector<bool> seen;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "version") {
            ls >> version;
            wilis_assert(version == 1,
                         "unsupported calibration table version %d",
                         version);
        } else if (key == "channel") {
            ls >> t.channel_;
        } else if (key == "decoder") {
            ls >> t.decoder_;
        } else if (key == "soft_width") {
            ls >> t.soft_width_;
        } else if (key == "payload_bits") {
            ls >> t.payload_bits_;
        } else if (key == "packets_per_cell") {
            ls >> t.packets_;
        } else if (key == "seed") {
            ls >> t.seed_;
        } else if (key == "snr_lo_db") {
            ls >> t.snr_lo_;
        } else if (key == "snr_step_db") {
            ls >> t.snr_step_;
            wilis_assert(t.snr_step_ > 0.0,
                         "calibration table needs a positive SNR "
                         "step, got %g",
                         t.snr_step_);
        } else if (key == "num_bins") {
            // The cells vector is sized from this value at the
            // first 'cell' line; changing it afterwards would let
            // later bounds checks pass against a stale allocation.
            wilis_assert(t.cells.empty(),
                         "calibration table geometry after cells");
            ls >> t.num_bins_;
        } else if (key == "num_rates") {
            wilis_assert(t.cells.empty(),
                         "calibration table geometry after cells");
            ls >> num_rates;
        } else if (key == "cell") {
            wilis_assert(t.num_bins_ > 0 && num_rates > 0,
                         "calibration cell before table geometry");
            if (t.cells.empty()) {
                t.cells.assign(static_cast<size_t>(phy::kNumRates) *
                                   static_cast<size_t>(t.num_bins_),
                               CalibrationCell());
                seen.assign(t.cells.size(), false);
            }
            int rate = -1, bin = -1;
            unsigned long long frames = 0, ok = 0;
            CalibrationCell c;
            ls >> rate >> bin >> frames >> ok >> c.sumPber >>
                c.sumLogPberOk >> c.sumLogPberBad;
            wilis_assert(!ls.fail(),
                         "malformed calibration cell line '%s'",
                         line.c_str());
            wilis_assert(rate >= 0 && rate < phy::kNumRates &&
                             bin >= 0 && bin < t.num_bins_,
                         "calibration cell (%d, %d) out of range",
                         rate, bin);
            c.frames = frames;
            c.ok = ok;
            wilis_assert(c.ok <= c.frames,
                         "calibration cell (%d, %d): ok > frames",
                         rate, bin);
            // Duplicates must not count toward completeness, or a
            // repeated line could mask a missing (empty, PER ~ 1)
            // cell.
            const size_t idx =
                static_cast<size_t>(rate) *
                    static_cast<size_t>(t.num_bins_) +
                static_cast<size_t>(bin);
            wilis_assert(!seen[idx],
                         "duplicate calibration cell (%d, %d)", rate,
                         bin);
            seen[idx] = true;
            t.cellAt(rate, bin) = c;
            ++cells_seen;
        } else {
            wilis_fatal("unknown calibration table key '%s'",
                        key.c_str());
        }
    }
    wilis_assert(version == 1, "missing calibration table version");
    wilis_assert(t.num_bins_ >= 1 && t.snr_step_ > 0.0,
                 "calibration table has no usable SNR geometry");
    wilis_assert(num_rates == phy::kNumRates,
                 "calibration table covers %d rates, need %d",
                 num_rates, phy::kNumRates);
    wilis_assert(cells_seen ==
                     static_cast<std::uint64_t>(phy::kNumRates) *
                         static_cast<std::uint64_t>(t.num_bins_),
                 "calibration table is missing cells (%llu of %llu)",
                 static_cast<unsigned long long>(cells_seen),
                 static_cast<unsigned long long>(
                     static_cast<std::uint64_t>(phy::kNumRates) *
                     static_cast<std::uint64_t>(t.num_bins_)));
    return t;
}

void
CalibrationTable::save(const std::string &path) const
{
    std::ofstream out(path);
    wilis_assert(out.good(), "cannot write calibration table to %s",
                 path.c_str());
    out << serialize();
    out.close();
    wilis_assert(out.good(), "short write saving calibration table %s",
                 path.c_str());
}

CalibrationTable
CalibrationTable::load(const std::string &path)
{
    std::ifstream in(path);
    wilis_assert(in.good(), "cannot read calibration table %s",
                 path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

} // namespace softphy
} // namespace wilis
