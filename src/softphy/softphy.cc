#include "softphy/softphy.hh"

#include <cmath>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "sim/sweep.hh"

namespace wilis {
namespace softphy {

double
CalibrationSpec::llrMax() const
{
    // Decoder hints are path-metric differences accumulated over the
    // code's constraint span; ~20x the demapper's positive rail
    // comfortably covers the observed range.
    return 20.0 * static_cast<double>(
                      1 << (rx.demapper.softWidth - 1));
}

double
midBandSnrDb(phy::Modulation mod)
{
    // Mid-points of the coded 802.11a waterfall regions (a few dB
    // wide per modulation, see Doufexi et al. for the ranges),
    // verified against this pipeline: decoded BER is ~1e-2 at these
    // points, so a calibration run observes enough errors to trace
    // the full Figure 5 curve.
    switch (mod) {
      case phy::Modulation::BPSK:
        return -1.0;
      case phy::Modulation::QPSK:
        return 2.0;
      case phy::Modulation::QAM16:
        return 8.0;
      case phy::Modulation::QAM64:
        return 14.0;
    }
    wilis_panic("bad modulation");
}

phy::RateIndex
calibrationRate(phy::Modulation mod)
{
    switch (mod) {
      case phy::Modulation::BPSK:
        return 0; // BPSK 1/2
      case phy::Modulation::QPSK:
        return 2; // QPSK 1/2
      case phy::Modulation::QAM16:
        return 4; // QAM16 1/2
      case phy::Modulation::QAM64:
        return 6; // QAM64 2/3 (no 1/2 rate exists)
    }
    wilis_panic("bad modulation");
}

LlrCalibrator
measureLlrCurve(phy::RateIndex rate, double snr_db,
                const CalibrationSpec &spec)
{
    sim::ScenarioSpec scen;
    scen.rate = rate;
    scen.rx = spec.rx;
    scen.channel = "awgn";
    scen.channelCfg = li::Config::fromString(
        strprintf("snr_db=%f,seed=%llu", snr_db,
                  static_cast<unsigned long long>(spec.seed)));
    scen.payloadBits = spec.payloadBits;

    const int threads = spec.threads > 0 ? spec.threads : 2;
    std::vector<LlrCalibrator> per_thread(
        static_cast<size_t>(threads),
        LlrCalibrator(spec.llrMax()));

    sim::sweepFrames(
        scen, spec.packets, threads,
        [&](int tid, const sim::FrameResult &res, std::uint64_t) {
            auto &cal = per_thread[static_cast<size_t>(tid)];
            for (size_t i = 0; i < res.txPayload.size(); ++i) {
                cal.record(res.rx.soft[i].llr,
                           res.rx.soft[i].bit != res.txPayload[i]);
            }
        });

    LlrCalibrator total = per_thread[0];
    for (size_t t = 1; t < per_thread.size(); ++t)
        total.merge(per_thread[t]);
    return total;
}

BerTable
calibrateTable(phy::Modulation mod, const CalibrationSpec &spec)
{
    LlrCalibrator cal = measureLlrCurve(
        calibrationRate(mod), midBandSnrDb(mod), spec);
    double scale = cal.fitScale();
    wilis_assert(scale > 0.0, "calibration produced scale %f for %s",
                 scale, phy::modulationName(mod).c_str());
    return BerTable::fromScale(scale, spec.llrMax());
}

BerEstimator
calibrateEstimator(const CalibrationSpec &spec)
{
    BerEstimator est;
    for (phy::Modulation mod :
         {phy::Modulation::BPSK, phy::Modulation::QPSK,
          phy::Modulation::QAM16, phy::Modulation::QAM64}) {
        est.setTable(mod, calibrateTable(mod, spec));
    }
    return est;
}

double
midBandSnrDbForRate(phy::RateIndex rate)
{
    // Decoded-BER ~1e-2 points of each rate's waterfall on this
    // pipeline: the punctured 3/4 (and 2/3) rates sit ~3 dB to the
    // right of the mother-code rate of the same modulation.
    static const double snr[phy::kNumRates] = {-1.0, 2.0, 2.0, 5.0,
                                               8.0,  11.0, 14.0, 17.0};
    return snr[static_cast<size_t>(rate)];
}

BerTable
calibrateRateTable(phy::RateIndex rate, const CalibrationSpec &spec)
{
    LlrCalibrator cal =
        measureLlrCurve(rate, midBandSnrDbForRate(rate), spec);
    double scale = cal.fitScale();
    wilis_assert(scale > 0.0,
                 "calibration produced scale %f for rate %d", scale,
                 rate);
    return BerTable::fromScale(scale, spec.llrMax());
}

BerEstimator
calibrateRateEstimator(const CalibrationSpec &spec)
{
    BerEstimator est;
    for (int r = 0; r < phy::kNumRates; ++r)
        est.setRateTable(r, calibrateRateTable(r, spec));
    return est;
}

BerEstimator
analyticRateEstimator(const phy::OfdmReceiver::Config &rx)
{
    CalibrationSpec spec;
    spec.rx = rx;
    // eq. 5 without a fitted decoder factor: the demapper emits
    // |metric| * rail / fullScale after quantization, so one hint
    // count is worth fullScale / rail in real-metric units, and the
    // true LLR per hint count is Es/N0 * S_mod * fullScale / rail
    // (S_dec taken as 1, the mother-code ballpark).
    const double rail = static_cast<double>(
        1 << (rx.demapper.softWidth - 1));
    BerEstimator est;
    for (int r = 0; r < phy::kNumRates; ++r) {
        phy::Modulation mod = phy::rateTable(r).modulation;
        double es_n0 =
            std::pow(10.0, midBandSnrDbForRate(r) / 10.0);
        double scale = es_n0 * phy::modulationLlrScale(mod) *
                       rx.demapper.fullScale / rail;
        est.setRateTable(r, BerTable::fromScale(scale, spec.llrMax()));
    }
    return est;
}

} // namespace softphy
} // namespace wilis
