/**
 * @file
 * The hardware per-bit BER estimator of section 4.2: a two-level
 * lookup. Level one selects a table by modulation (each table bakes
 * in the mid-band SNR constant, S_modulation and S_decoder of
 * eq. 5); level two maps the decoder's LLR hint to a BER through a
 * 256-entry table built from eq. 4.
 *
 * The estimator is intentionally *not* SNR-adaptive: the paper
 * argues a fixed mid-band SNR constant per modulation suffices
 * because the SNR range over which a modulation's BER swings from
 * 1e-1 to 1e-7 is only a few dB, at the cost of slight over/under
 * estimation away from the band center (visible in Figure 6).
 */

#ifndef WILIS_SOFTPHY_BER_ESTIMATOR_HH
#define WILIS_SOFTPHY_BER_ESTIMATOR_HH

#include <array>
#include <span>
#include <vector>

#include "common/types.hh"
#include "phy/modulation.hh"

namespace wilis {
namespace softphy {

/** Level-two table: LLR hint -> per-bit BER for one configuration. */
class BerTable
{
  public:
    /** Table resolution (the paper uses a small ROM). */
    static constexpr int kEntries = 256;

    /** All-zero table; use fromScale() for a real one. */
    BerTable();

    /**
     * Build from a combined eq. 5 scale.
     * @param scale   Combined Es/N0 * S_mod * S_dec factor.
     * @param llr_max Hint value mapped to the last entry.
     */
    static BerTable fromScale(double scale, double llr_max);

    /** Per-bit BER estimate for @p hint (clamped to table range). */
    double lookup(double hint) const;

    /** The combined scale the table was built from. */
    double scale() const { return scale_; }

    /** Hint range covered. */
    double llrMax() const { return llr_max_; }

  private:
    std::array<double, kEntries> table;
    double scale_ = 1.0;
    double llr_max_ = 1.0;
};

/**
 * Level-one dispatch plus per-packet aggregation: the SoftPHY unit a
 * receiver instantiates per decoder.
 *
 * Two dispatch granularities are supported:
 *  - per *modulation* (the paper's section 4.2 design: four tables),
 *  - per *rate* (eight tables). Puncturing shrinks decoder metric
 *    margins (a rate-3/4 trellis has roughly half the free-distance
 *    margin of the mother code), so the punctured rates of a
 *    modulation need their own scale to avoid systematically
 *    pessimistic estimates. The hardware cost is four extra small
 *    ROMs. The SoftRate experiment uses per-rate dispatch; see
 *    EXPERIMENTS.md for the ablation.
 */
class BerEstimator
{
  public:
    /** Empty estimator; install tables before lookups. */
    BerEstimator() = default;

    /** Install the table for @p mod. */
    void setTable(phy::Modulation mod, BerTable table);

    /** True if a table is installed for @p mod. */
    bool hasTable(phy::Modulation mod) const;

    /** Per-bit BER for one decoded bit's hint. */
    double perBitBer(phy::Modulation mod, double hint) const;

    /**
     * Per-packet BER: the arithmetic mean of the per-bit estimates
     * (section 4.4.2). The span form serves the zero-copy frame
     * pipeline (phy::RxFrame::soft) without a copy.
     */
    double packetBer(phy::Modulation mod,
                     std::span<const SoftDecision> soft) const;

    /** Owning-vector convenience form of packetBer(). */
    double packetBer(phy::Modulation mod,
                     const std::vector<SoftDecision> &soft) const;

    /** Install the table for @p rate (per-rate dispatch). */
    void setRateTable(phy::RateIndex rate, BerTable table);

    /** True if a per-rate table is installed for @p rate. */
    bool hasRateTable(phy::RateIndex rate) const;

    /** Per-bit BER under per-rate dispatch. */
    double perBitBerForRate(phy::RateIndex rate, double hint) const;

    /** Per-packet BER under per-rate dispatch (zero-copy form). */
    double packetBerForRate(phy::RateIndex rate,
                            std::span<const SoftDecision> soft) const;

    /** Owning-vector convenience form of packetBerForRate(). */
    double packetBerForRate(
        phy::RateIndex rate,
        const std::vector<SoftDecision> &soft) const;

  private:
    const BerTable &tableFor(phy::Modulation mod) const;
    const BerTable &tableForRate(phy::RateIndex rate) const;

    std::array<BerTable, 4> tables;
    std::array<bool, 4> present{};
    std::array<BerTable, phy::kNumRates> rate_tables;
    std::array<bool, phy::kNumRates> rate_present{};
};

} // namespace softphy
} // namespace wilis

#endif // WILIS_SOFTPHY_BER_ESTIMATOR_HH
