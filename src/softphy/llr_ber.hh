/**
 * @file
 * The SoftPHY LLR <-> BER mathematics of section 4.2:
 *
 *   BER_bit = 1 / (1 + e^LLR)                               (eq. 4)
 *   LLR_true = Es/N0 * S_modulation * S_decoder * LLR_hw    (eq. 5)
 *
 * Hardware decoders emit LLR hints whose *scale* differs from the
 * true LLR because the demapper drops the Es/N0 and S_modulation
 * factors and each decoder interprets its inputs on its own scale.
 * A single combined scale per (modulation, SNR band, decoder)
 * converts hints to true LLRs.
 */

#ifndef WILIS_SOFTPHY_LLR_BER_HH
#define WILIS_SOFTPHY_LLR_BER_HH

#include <cmath>

namespace wilis {
namespace softphy {

/** eq. 4: probability the decision is wrong given the true LLR. */
inline double
berFromTrueLlr(double llr)
{
    // Numerically stable on both tails.
    if (llr > 40.0)
        return std::exp(-llr);
    return 1.0 / (1.0 + std::exp(llr));
}

/** Inverse of eq. 4. */
inline double
trueLlrFromBer(double ber)
{
    if (ber <= 0.0)
        return 1e9;
    if (ber >= 1.0)
        return -1e9;
    return std::log((1.0 - ber) / ber);
}

/**
 * eq. 5: convert a hardware LLR hint to a true LLR with the combined
 * scale (Es/N0 * S_mod * S_dec).
 */
inline double
trueLlrFromHint(double hint, double combined_scale)
{
    return combined_scale * hint;
}

/** Per-bit BER estimate from a hardware hint and combined scale. */
inline double
berFromHint(double hint, double combined_scale)
{
    return berFromTrueLlr(trueLlrFromHint(hint, combined_scale));
}

} // namespace softphy
} // namespace wilis

#endif // WILIS_SOFTPHY_LLR_BER_HH
