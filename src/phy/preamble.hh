/**
 * @file
 * 802.11a PLCP preamble: the short training sequence (10 repetitions
 * of a 16-sample pattern, used for packet detection and coarse
 * frequency estimation) and the long training sequence (a 32-sample
 * guard plus two 64-sample known symbols, used for fine timing and
 * channel estimation).
 *
 * The paper's WiLIS model omits synchronization and channel
 * estimation (section 4.4.4); this module and phy/sync.hh implement
 * them as the natural extension.
 */

#ifndef WILIS_PHY_PREAMBLE_HH
#define WILIS_PHY_PREAMBLE_HH

#include "common/types.hh"

namespace wilis {
namespace phy {

/** PLCP preamble generation and reference sequences. */
class Preamble
{
  public:
    /** Samples in the short training section (10 x 16). */
    static constexpr int kShortLen = 160;
    /** Samples in the long training section (32 GI + 2 x 64). */
    static constexpr int kLongLen = 160;
    /** Total preamble length. */
    static constexpr int kTotalLen = kShortLen + kLongLen;
    /** Period of the short training pattern. */
    static constexpr int kShortPeriod = 16;

    /** The 160-sample short training sequence. */
    static SampleVec shortTraining();

    /** The 160-sample long training sequence (with guard). */
    static SampleVec longTraining();

    /** One 64-sample long-training symbol (no guard). */
    static SampleVec longTrainingSymbol();

    /** The full 320-sample preamble. */
    static SampleVec full();

    /**
     * Frequency-domain long-training values on the 64 FFT bins
     * (+-1 on the 52 used subcarriers, 0 elsewhere); used for
     * preamble-based channel estimation.
     */
    static SampleVec longTrainingFreq();
};

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_PREAMBLE_HH
