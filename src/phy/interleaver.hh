/**
 * @file
 * 802.11a block interleaver (clause 17.3.5.6): two permutations over
 * each OFDM symbol's N_CBPS coded bits. The first spreads adjacent
 * coded bits across subcarriers (defeating frequency-local fades);
 * the second alternates them between more- and less-significant
 * constellation bit positions.
 */

#ifndef WILIS_PHY_INTERLEAVER_HH
#define WILIS_PHY_INTERLEAVER_HH

#include <vector>

#include "common/types.hh"
#include "phy/modulation.hh"

namespace wilis {
namespace phy {

/** Per-symbol block interleaver/deinterleaver. */
class Interleaver
{
  public:
    /** @param mod Modulation (fixes N_BPSC and hence N_CBPS). */
    explicit Interleaver(Modulation mod);

    /** Coded bits per interleaving block. */
    int blockSize() const { return n_cbps; }

    /** Interleave one symbol's worth of bits. */
    BitVec interleave(const BitVec &in) const;

    /** Deinterleave one symbol's worth of soft values. */
    SoftVec deinterleave(const SoftVec &in) const;

    /**
     * Interleave a whole stream (length must be a multiple of
     * blockSize()).
     */
    BitVec interleaveStream(const BitVec &in) const;

    /** Deinterleave a whole soft stream. */
    SoftVec deinterleaveStream(const SoftVec &in) const;

    /** Interleave a stream into caller-owned storage (same length). */
    void interleaveStream(BitView in, BitSpan out) const;

    /** Deinterleave one block into caller-owned storage. */
    void deinterleave(SoftView in, SoftSpan out) const;

    /** Deinterleave a stream into caller-owned storage. */
    void deinterleaveStream(SoftView in, SoftSpan out) const;

    /** Position bit k moves to after interleaving. */
    int
    txPosition(int k) const
    {
        return fwd[static_cast<size_t>(k)];
    }

  private:
    int n_cbps;
    std::vector<int> fwd; // fwd[k] = interleaved position of bit k
    std::vector<int> inv; // inv[j] = original position of bit j
};

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_INTERLEAVER_HH
