/**
 * @file
 * PLCP framing: the SIGNAL field (rate + length header, always BPSK
 * 1/2, unscrambled) and full-frame assembly (preamble + SIGNAL +
 * DATA). With this layer a receiver no longer needs out-of-band
 * knowledge of the packet's rate and size -- it reads them from the
 * header like a real 802.11a device.
 */

#ifndef WILIS_PHY_PLCP_HH
#define WILIS_PHY_PLCP_HH

#include <cstdint>
#include <memory>

#include "channel/channel.hh"
#include "common/types.hh"
#include "phy/modulation.hh"
#include "phy/ofdm_rx.hh"

namespace wilis {
namespace phy {

/** Decoded contents of a SIGNAL field. */
struct SignalField {
    /** Data rate index of the payload. */
    RateIndex rate = 0;
    /** PSDU length in bytes (1..4095). */
    int lengthBytes = 0;

    /** Field-wise equality. */
    bool
    operator==(const SignalField &o) const
    {
        return rate == o.rate && lengthBytes == o.lengthBytes;
    }
};

/** SIGNAL field encode/decode (one BPSK 1/2 OFDM symbol). */
class Signal
{
  public:
    /** 4-bit RATE encoding of clause 17.3.4.1 for a rate index. */
    static unsigned rateBits(RateIndex rate);

    /** Rate index for a 4-bit RATE pattern; -1 if invalid. */
    static int rateFromBits(unsigned bits);

    /** The 24 SIGNAL bits (rate, reserved, length, parity, tail). */
    static BitVec encodeBits(const SignalField &f);

    /**
     * Parse 24 decoded SIGNAL bits.
     * @return true if the parity and rate pattern are valid.
     */
    static bool decodeBits(const BitVec &bits, SignalField &out);

    /** Modulate the SIGNAL field into one 80-sample OFDM symbol. */
    static SampleVec modulate(const SignalField &f);

    /**
     * Demodulate and decode a received 80-sample SIGNAL symbol.
     * @param h_bins Per-bin channel estimate for equalization.
     * @return true on valid parity/rate.
     */
    static bool demodulate(const SampleVec &symbol,
                           const SampleVec &h_bins, SignalField &out);
};

/** Full-frame transmitter: preamble + SIGNAL + DATA. */
class PlcpTransmitter
{
  public:
    /** @param scrambler_seed Initial DATA scrambler state. */
    explicit PlcpTransmitter(std::uint8_t scrambler_seed = 0x5D);

    /**
     * Assemble a complete PLCP frame.
     * @param rate    Data rate index for the payload.
     * @param payload Payload bytes as bits (length must be a
     *                multiple of 8, up to 4095 bytes).
     */
    SampleVec buildFrame(RateIndex rate, const BitVec &payload);

    /** Samples in a frame carrying @p payload_bits at @p rate. */
    size_t frameSamples(RateIndex rate, size_t payload_bits) const;

  private:
    std::uint8_t seed;
};

/** Result of receiving one PLCP frame. */
struct PlcpRxResult {
    /** Header parsed successfully (parity + rate pattern valid). */
    bool headerOk = false;
    /** The decoded SIGNAL field. */
    SignalField header;
    /** Decoded payload (empty if headerOk is false). */
    BitVec payload;
    /** Per-bit SoftPHY hints for the payload. */
    std::vector<SoftDecision> soft;
};

/**
 * Full-frame receiver: consumes a frame whose start is known (from
 * the synchronizer or by construction), estimates the channel from
 * the long training symbols, decodes SIGNAL, then the payload.
 */
class PlcpReceiver
{
  public:
    /** @param rx_cfg Receiver config applied to the DATA section. */
    explicit PlcpReceiver(const OfdmReceiver::Config &rx_cfg =
                              OfdmReceiver::Config());

    /**
     * Receive a frame starting at @p frame (the first preamble
     * sample). Uses preamble-based per-bin channel estimation -- no
     * external CSI.
     */
    PlcpRxResult receiveFrame(const SampleVec &frame);

  private:
    /** Per-bin channel estimate from the two long training symbols. */
    SampleVec estimateChannel(const SampleVec &frame) const;

    OfdmReceiver::Config cfg;
    /** One cached data receiver per rate (created on demand). */
    std::array<std::unique_ptr<OfdmReceiver>, kNumRates> data_rx;
};

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_PLCP_HH
