#include "phy/ofdm_tx.hh"

#include "common/logging.hh"
#include "phy/cyclic_prefix.hh"

namespace wilis {
namespace phy {

OfdmTransmitter::OfdmTransmitter(RateIndex rate_idx,
                                 std::uint8_t scrambler_seed)
    : params(rateTable(rate_idx)), seed(scrambler_seed),
      interleaver(params.modulation), mapper(params.modulation),
      puncturer(params.codeRate), fft(OfdmGeometry::kFftSize)
{}

int
OfdmTransmitter::numSymbols(size_t payload_bits) const
{
    size_t with_tail = payload_bits + ConvCode::kTailBits;
    return static_cast<int>(
        (with_tail + static_cast<size_t>(params.nDbps) - 1) /
        static_cast<size_t>(params.nDbps));
}

size_t
OfdmTransmitter::paddedInfoBits(size_t payload_bits) const
{
    return static_cast<size_t>(numSymbols(payload_bits)) *
               static_cast<size_t>(params.nDbps) -
           ConvCode::kTailBits;
}

size_t
OfdmTransmitter::numSamples(size_t payload_bits) const
{
    return static_cast<size_t>(numSymbols(payload_bits)) *
           OfdmGeometry::kSymbolLen;
}

SampleVec
OfdmTransmitter::modulate(const BitVec &payload, Debug *dbg)
{
    legacy_arena.reset();
    FrameContext ctx(legacy_arena);
    SampleSpan s = modulate(BitView(payload), ctx, dbg);
    return SampleVec(s.begin(), s.end());
}

SampleSpan
OfdmTransmitter::modulate(BitView payload, FrameContext &ctx,
                          Debug *dbg)
{
    wilis_assert(!payload.empty(), "empty payload");
    FrameArena &arena = ctx.arena;

    // Pad to fill whole OFDM symbols, scramble, encode (terminated).
    const size_t info_bits = paddedInfoBits(payload.size());
    BitSpan info = arena.alloc<Bit>(info_bits);
    std::copy(payload.begin(), payload.end(), info.begin());
    std::fill(info.begin() + static_cast<long>(payload.size()),
              info.end(), 0);

    Scrambler scrambler(seed);
    BitSpan scrambled = arena.alloc<Bit>(info_bits);
    scrambler.process(info, scrambled);
    BitSpan coded = arena.alloc<Bit>(
        2 * (info_bits + static_cast<size_t>(ConvCode::kTailBits)));
    convCode().encode(scrambled, true, coded);
    BitSpan punctured =
        arena.alloc<Bit>(puncturer.puncturedLength(coded.size()));
    puncturer.puncture(coded, punctured);
    BitSpan interleaved = arena.alloc<Bit>(punctured.size());
    interleaver.interleaveStream(punctured, interleaved);

    if (dbg) {
        dbg->scrambled.assign(scrambled.begin(), scrambled.end());
        dbg->coded.assign(coded.begin(), coded.end());
        dbg->punctured.assign(punctured.begin(), punctured.end());
        dbg->interleaved.assign(interleaved.begin(),
                                interleaved.end());
    }

    // Map each symbol's coded bits to the 48 data subcarriers; the
    // IFFT runs in the bins buffer and the CP copy lands directly in
    // the output span (no per-symbol temporaries).
    const int nsym = numSymbols(payload.size());
    SampleSpan out = arena.alloc<Sample>(
        static_cast<size_t>(nsym) * OfdmGeometry::kSymbolLen);

    PilotTracker pilots;
    SampleSpan bins = arena.alloc<Sample>(OfdmGeometry::kFftSize);
    const int n_bpsc = params.nBpsc;
    for (int s = 0; s < nsym; ++s) {
        std::fill(bins.begin(), bins.end(), Sample(0.0, 0.0));
        const size_t base = static_cast<size_t>(s) *
                            static_cast<size_t>(params.nCbps);
        for (int d = 0; d < OfdmGeometry::kDataCarriers; ++d) {
            const Bit *bits =
                &interleaved[base + static_cast<size_t>(d * n_bpsc)];
            bins[static_cast<size_t>(OfdmGeometry::dataBin(d))] =
                mapper.map(bits);
        }
        pilots.insertPilots(bins);

        fft.inverse(bins);
        addCyclicPrefix(bins,
                        out.subspan(static_cast<size_t>(s) *
                                        OfdmGeometry::kSymbolLen,
                                    OfdmGeometry::kSymbolLen));
    }
    return out;
}

} // namespace phy
} // namespace wilis
