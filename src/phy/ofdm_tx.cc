#include "phy/ofdm_tx.hh"

#include "common/logging.hh"
#include "phy/cyclic_prefix.hh"

namespace wilis {
namespace phy {

OfdmTransmitter::OfdmTransmitter(RateIndex rate_idx,
                                 std::uint8_t scrambler_seed)
    : params(rateTable(rate_idx)), seed(scrambler_seed),
      interleaver(params.modulation), mapper(params.modulation),
      puncturer(params.codeRate), fft(OfdmGeometry::kFftSize)
{}

int
OfdmTransmitter::numSymbols(size_t payload_bits) const
{
    size_t with_tail = payload_bits + ConvCode::kTailBits;
    return static_cast<int>(
        (with_tail + static_cast<size_t>(params.nDbps) - 1) /
        static_cast<size_t>(params.nDbps));
}

size_t
OfdmTransmitter::paddedInfoBits(size_t payload_bits) const
{
    return static_cast<size_t>(numSymbols(payload_bits)) *
               static_cast<size_t>(params.nDbps) -
           ConvCode::kTailBits;
}

size_t
OfdmTransmitter::numSamples(size_t payload_bits) const
{
    return static_cast<size_t>(numSymbols(payload_bits)) *
           OfdmGeometry::kSymbolLen;
}

SampleVec
OfdmTransmitter::modulate(const BitVec &payload, Debug *dbg)
{
    wilis_assert(!payload.empty(), "empty payload");

    // Pad to fill whole OFDM symbols, scramble, encode (terminated).
    BitVec info = payload;
    info.resize(paddedInfoBits(payload.size()), 0);

    Scrambler scrambler(seed);
    BitVec scrambled = scrambler.process(info);
    BitVec coded = convCode().encode(scrambled, true);
    BitVec punctured = puncturer.puncture(coded);
    BitVec interleaved = interleaver.interleaveStream(punctured);

    if (dbg) {
        dbg->scrambled = scrambled;
        dbg->coded = coded;
        dbg->punctured = punctured;
        dbg->interleaved = interleaved;
    }

    // Map each symbol's coded bits to the 48 data subcarriers.
    const int nsym = numSymbols(payload.size());
    SampleVec out;
    out.reserve(static_cast<size_t>(nsym) * OfdmGeometry::kSymbolLen);

    PilotTracker pilots;
    SampleVec bins(OfdmGeometry::kFftSize);
    const int n_bpsc = params.nBpsc;
    for (int s = 0; s < nsym; ++s) {
        std::fill(bins.begin(), bins.end(), Sample(0.0, 0.0));
        const size_t base = static_cast<size_t>(s) *
                            static_cast<size_t>(params.nCbps);
        for (int d = 0; d < OfdmGeometry::kDataCarriers; ++d) {
            const Bit *bits =
                &interleaved[base + static_cast<size_t>(d * n_bpsc)];
            bins[static_cast<size_t>(OfdmGeometry::dataBin(d))] =
                mapper.map(bits);
        }
        pilots.insertPilots(bins);

        SampleVec body = bins;
        fft.inverse(body);
        SampleVec sym = addCyclicPrefix(body);
        out.insert(out.end(), sym.begin(), sym.end());
    }
    return out;
}

} // namespace phy
} // namespace wilis
