/**
 * @file
 * Gray constellation mapper for BPSK/QPSK/16-QAM/64-QAM, normalized
 * to unit average symbol energy as in 802.11a (K_mod = 1, 1/sqrt(2),
 * 1/sqrt(10), 1/sqrt(42)).
 *
 * Bit-to-axis convention (per axis, MSB first): the first bit selects
 * the sign (1 = positive), subsequent bits Gray-select the magnitude
 * from inside out -- the same convention the soft demapper's
 * simplified metrics (Tosato-Bisaglia) assume.
 */

#ifndef WILIS_PHY_MAPPER_HH
#define WILIS_PHY_MAPPER_HH

#include <vector>

#include "common/types.hh"
#include "phy/modulation.hh"

namespace wilis {
namespace phy {

/** Bits-to-constellation-point mapper. */
class Mapper
{
  public:
    /** Build the mapper for one modulation. */
    explicit Mapper(Modulation mod_);

    /** Modulation handled. */
    Modulation modulation() const { return mod; }

    /** Bits consumed per symbol. */
    int bitsPerSymbol() const { return n_bpsc; }

    /** Normalization factor K_mod. */
    double kmod() const { return k_mod; }

    /**
     * Map @p n_bpsc bits (MSB first) to one constellation point.
     * @param bits Pointer to bitsPerSymbol() bits.
     */
    Sample map(const Bit *bits) const;

    /** Map a whole stream (length must divide evenly). */
    SampleVec mapStream(const BitVec &bits) const;

    /**
     * Ideal constellation points indexed by the bit pattern
     * (MSB-first packing), for tests and hard demapping.
     */
    std::vector<Sample> constellation() const;

  private:
    /** Map per-axis bits (MSB-first Gray) to an unnormalized level. */
    static double axisLevel(const Bit *bits, int bits_per_axis);

    Modulation mod;
    int n_bpsc;
    double k_mod;
};

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_MAPPER_HH
