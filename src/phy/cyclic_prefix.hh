/**
 * @file
 * Cyclic prefix insertion and removal: the last kCpLen time-domain
 * samples of each OFDM symbol are prepended as a guard interval.
 */

#ifndef WILIS_PHY_CYCLIC_PREFIX_HH
#define WILIS_PHY_CYCLIC_PREFIX_HH

#include "common/types.hh"
#include "phy/ofdm_symbol.hh"

namespace wilis {
namespace phy {

/** Prepend the cyclic prefix to one 64-sample symbol body. */
SampleVec addCyclicPrefix(const SampleVec &body);

/** Strip the cyclic prefix from one 80-sample symbol. */
SampleVec removeCyclicPrefix(const SampleVec &symbol);

/** Write CP + body (80 samples) into caller-owned @p out. */
void addCyclicPrefix(SampleView body, SampleSpan out);

/** Write the 64-sample body of @p symbol into caller-owned @p out. */
void removeCyclicPrefix(SampleView symbol, SampleSpan out);

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_CYCLIC_PREFIX_HH
