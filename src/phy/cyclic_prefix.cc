#include "phy/cyclic_prefix.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wilis {
namespace phy {

SampleVec
addCyclicPrefix(const SampleVec &body)
{
    SampleVec out(OfdmGeometry::kSymbolLen);
    addCyclicPrefix(SampleView(body), SampleSpan(out));
    return out;
}

void
addCyclicPrefix(SampleView body, SampleSpan out)
{
    wilis_assert(body.size() == OfdmGeometry::kFftSize,
                 "symbol body size %zu", body.size());
    wilis_assert(out.size() == OfdmGeometry::kSymbolLen,
                 "CP output size %zu", out.size());
    std::copy(body.end() - OfdmGeometry::kCpLen, body.end(),
              out.begin());
    std::copy(body.begin(), body.end(),
              out.begin() + OfdmGeometry::kCpLen);
}

SampleVec
removeCyclicPrefix(const SampleVec &symbol)
{
    SampleVec out(OfdmGeometry::kFftSize);
    removeCyclicPrefix(SampleView(symbol), SampleSpan(out));
    return out;
}

void
removeCyclicPrefix(SampleView symbol, SampleSpan out)
{
    wilis_assert(symbol.size() == OfdmGeometry::kSymbolLen,
                 "symbol size %zu", symbol.size());
    wilis_assert(out.size() == OfdmGeometry::kFftSize,
                 "CP-strip output size %zu", out.size());
    std::copy(symbol.begin() + OfdmGeometry::kCpLen, symbol.end(),
              out.begin());
}

} // namespace phy
} // namespace wilis
