#include "phy/cyclic_prefix.hh"

#include "common/logging.hh"

namespace wilis {
namespace phy {

SampleVec
addCyclicPrefix(const SampleVec &body)
{
    wilis_assert(body.size() == OfdmGeometry::kFftSize,
                 "symbol body size %zu", body.size());
    SampleVec out;
    out.reserve(OfdmGeometry::kSymbolLen);
    out.insert(out.end(),
               body.end() - OfdmGeometry::kCpLen, body.end());
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

SampleVec
removeCyclicPrefix(const SampleVec &symbol)
{
    wilis_assert(symbol.size() == OfdmGeometry::kSymbolLen,
                 "symbol size %zu", symbol.size());
    return SampleVec(symbol.begin() + OfdmGeometry::kCpLen,
                     symbol.end());
}

} // namespace phy
} // namespace wilis
