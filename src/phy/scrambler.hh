/**
 * @file
 * 802.11 frame-synchronous scrambler (polynomial x^7 + x^4 + 1).
 *
 * The same structure both scrambles and descrambles: XORing the data
 * with the identical PRBS recovers the original. The all-ones-seeded
 * zero-input sequence also defines the pilot polarity sequence p_n of
 * 802.11a, which PilotMapper reuses.
 */

#ifndef WILIS_PHY_SCRAMBLER_HH
#define WILIS_PHY_SCRAMBLER_HH

#include <cstdint>

#include "common/types.hh"

namespace wilis {
namespace phy {

/** Frame-synchronous PRBS scrambler/descrambler. */
class Scrambler
{
  public:
    /** @param seed 7-bit nonzero initial state. */
    explicit Scrambler(std::uint8_t seed = 0x7F);

    /** Reset to a new seed. */
    void reset(std::uint8_t seed);

    /** Next PRBS bit (advances state). */
    Bit nextPrbsBit();

    /** Scramble (or descramble) one bit. */
    Bit process(Bit in) { return in ^ nextPrbsBit(); }

    /** Scramble (or descramble) a whole stream. */
    BitVec process(const BitVec &in);

    /**
     * Scramble (or descramble) @p in into @p out (same length).
     * In-place operation (out.data() == in.data()) is allowed.
     */
    void process(BitView in, BitSpan out);

    /**
     * The 127-element pilot polarity sequence of 802.11a: the PRBS of
     * an all-ones-seeded scrambler, mapped 0 -> +1, 1 -> -1.
     */
    static void pilotPolarity(int out[127]);

  private:
    std::uint8_t state;
};

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_SCRAMBLER_HH
