#include "phy/scrambler.hh"

#include "common/logging.hh"

namespace wilis {
namespace phy {

Scrambler::Scrambler(std::uint8_t seed)
{
    reset(seed);
}

void
Scrambler::reset(std::uint8_t seed)
{
    wilis_assert((seed & 0x7F) != 0, "scrambler seed must be nonzero");
    state = seed & 0x7F;
}

Bit
Scrambler::nextPrbsBit()
{
    // Feedback = x^7 ^ x^4 (bits 6 and 3 of the 7-bit register).
    Bit fb = static_cast<Bit>(((state >> 6) ^ (state >> 3)) & 1);
    state = static_cast<std::uint8_t>(((state << 1) | fb) & 0x7F);
    return fb;
}

BitVec
Scrambler::process(const BitVec &in)
{
    BitVec out(in.size());
    process(BitView(in), BitSpan(out));
    return out;
}

void
Scrambler::process(BitView in, BitSpan out)
{
    wilis_assert(in.size() == out.size(),
                 "scrambler span mismatch: %zu vs %zu", in.size(),
                 out.size());
    for (size_t i = 0; i < in.size(); ++i)
        out[i] = process(in[i]);
}

void
Scrambler::pilotPolarity(int out[127])
{
    Scrambler s(0x7F);
    for (int i = 0; i < 127; ++i)
        out[i] = s.nextPrbsBit() ? -1 : 1;
}

} // namespace phy
} // namespace wilis
