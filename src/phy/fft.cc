#include "phy/fft.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace wilis {
namespace phy {

Fft::Fft(int size_) : n(size_)
{
    wilis_assert(n >= 2 && (n & (n - 1)) == 0,
                 "FFT size %d is not a power of two", n);
    log2n = 0;
    while ((1 << log2n) < n)
        ++log2n;

    twiddles.resize(static_cast<size_t>(n / 2));
    for (int k = 0; k < n / 2; ++k) {
        double ang = -2.0 * std::numbers::pi * k / n;
        twiddles[static_cast<size_t>(k)] =
            Sample(std::cos(ang), std::sin(ang));
    }

    bitrev.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        int r = 0;
        for (int b = 0; b < log2n; ++b)
            r |= ((i >> b) & 1) << (log2n - 1 - b);
        bitrev[static_cast<size_t>(i)] = r;
    }
}

void
Fft::transform(SampleSpan x, bool invert) const
{
    wilis_assert(static_cast<int>(x.size()) == n,
                 "FFT input size %zu != %d", x.size(), n);

    for (int i = 0; i < n; ++i) {
        int j = bitrev[static_cast<size_t>(i)];
        if (i < j)
            std::swap(x[static_cast<size_t>(i)],
                      x[static_cast<size_t>(j)]);
    }

    for (int len = 2; len <= n; len <<= 1) {
        int half = len >> 1;
        int step = n / len;
        for (int i = 0; i < n; i += len) {
            for (int j = 0; j < half; ++j) {
                Sample w = twiddles[static_cast<size_t>(j * step)];
                if (invert)
                    w = std::conj(w);
                Sample u = x[static_cast<size_t>(i + j)];
                Sample v = x[static_cast<size_t>(i + j + half)] * w;
                x[static_cast<size_t>(i + j)] = u + v;
                x[static_cast<size_t>(i + j + half)] = u - v;
            }
        }
    }

    double scale = 1.0 / std::sqrt(static_cast<double>(n));
    for (auto &v : x)
        v *= scale;
}

void
Fft::forward(SampleSpan x) const
{
    transform(x, false);
}

void
Fft::inverse(SampleSpan x) const
{
    transform(x, true);
}

} // namespace phy
} // namespace wilis
