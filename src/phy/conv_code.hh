/**
 * @file
 * The 802.11a convolutional code: constraint length K = 7, rate 1/2,
 * generators g0 = 133, g1 = 171 (octal). The encoder is the shift
 * register described in section 4.1 of the paper; ConvCode also
 * exposes the trellis tables shared by all three decoders (Viterbi,
 * SOVA, BCJR) -- the paper notes that the BMU and the ACS structure
 * are common to both soft decoders.
 */

#ifndef WILIS_PHY_CONV_CODE_HH
#define WILIS_PHY_CONV_CODE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace wilis {
namespace phy {

/** Static description of the K=7 802.11a convolutional code. */
class ConvCode
{
  public:
    /** Constraint length. */
    static constexpr int kConstraint = 7;
    /** Number of trellis states (2^(K-1)). */
    static constexpr int kStates = 64;
    /** Generator polynomial g0 (octal 133). */
    static constexpr unsigned kG0 = 0133;
    /** Generator polynomial g1 (octal 171). */
    static constexpr unsigned kG1 = 0171;
    /** Tail bits appended to terminate the trellis. */
    static constexpr int kTailBits = kConstraint - 1;

    /** Build the per-state transition tables once. */
    ConvCode();

    /**
     * Encode @p data at rate 1/2.
     * @param data      Information bits.
     * @param terminate Append kTailBits zeros to drive the encoder
     *                  back to state 0 (802.11a behaviour).
     * @return Coded bits, interleaved (g0 output then g1 output per
     *         input bit).
     */
    BitVec encode(const BitVec &data, bool terminate = true) const;

    /**
     * Encode into caller-owned storage. @p out must hold exactly
     * 2 * (data.size() + kTailBits-if-terminated) bits.
     */
    void encode(BitView data, bool terminate, BitSpan out) const;

    /** State reached from @p state on input @p bit. */
    int
    nextState(int state, int bit) const
    {
        return next_state[static_cast<size_t>(state)][bit];
    }

    /**
     * Two coded output bits (g0 in bit 0, g1 in bit 1) for the
     * transition from @p state on input @p bit.
     */
    unsigned
    outputBits(int state, int bit) const
    {
        return output[static_cast<size_t>(state)][bit];
    }

    /**
     * Predecessor of arrival state @p state via low-bit choice @p b:
     * the state whose oldest register bit was @p b. The input bit that
     * caused the transition into @p state is its MSB (bit 5).
     */
    static int
    predecessor(int state, int b)
    {
        return ((state & 0x1F) << 1) | b;
    }

    /** Input bit that produced arrival state @p state. */
    static int inputOf(int state) { return (state >> 5) & 1; }

  private:
    std::array<std::array<int, 2>, kStates> next_state;
    std::array<std::array<unsigned, 2>, kStates> output;
};

/** Process-wide shared code tables. */
const ConvCode &convCode();

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_CONV_CODE_HH
