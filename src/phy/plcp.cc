#include "phy/plcp.hh"

#include "common/logging.hh"
#include "decode/soft_decoder.hh"
#include "phy/conv_code.hh"
#include "phy/cyclic_prefix.hh"
#include "phy/demapper.hh"
#include "phy/fft.hh"
#include "phy/interleaver.hh"
#include "phy/mapper.hh"
#include "phy/ofdm_symbol.hh"
#include "phy/ofdm_tx.hh"
#include "phy/preamble.hh"

namespace wilis {
namespace phy {

namespace {

// Clause 17.3.4.1 RATE encodings, indexed by our rate table order
// (R1 in the MSB).
const unsigned rate_codes[kNumRates] = {
    0b1101, // 6 Mbps
    0b1111, // 9
    0b0101, // 12
    0b0111, // 18
    0b1001, // 24
    0b1011, // 36
    0b0001, // 48
    0b0011, // 54
};

/** Fixed per-bin CSI wrapper for preamble-estimated channels. */
class StaticCsi : public channel::Channel
{
  public:
    explicit StaticCsi(SampleVec h_bins_) : h(std::move(h_bins_)) {}

    std::string name() const override { return "static-csi"; }
    void apply(SampleSpan, std::uint64_t) override {}
    Sample
    impairSample(Sample s, std::uint64_t, std::uint64_t) const override
    {
        return s;
    }
    double noiseVariance() const override { return 0.0; }
    Sample
    binGain(std::uint64_t, int, int bin) const override
    {
        return h[static_cast<size_t>(bin)];
    }
    Sample
    gain(std::uint64_t, int) const override
    {
        return h[0];
    }

  private:
    SampleVec h;
};

} // namespace

unsigned
Signal::rateBits(RateIndex rate)
{
    wilis_assert(rate >= 0 && rate < kNumRates, "rate %d", rate);
    return rate_codes[static_cast<size_t>(rate)];
}

int
Signal::rateFromBits(unsigned bits)
{
    for (int r = 0; r < kNumRates; ++r) {
        if (rate_codes[static_cast<size_t>(r)] == (bits & 0xF))
            return r;
    }
    return -1;
}

BitVec
Signal::encodeBits(const SignalField &f)
{
    wilis_assert(f.lengthBytes >= 1 && f.lengthBytes <= 4095,
                 "SIGNAL length %d out of range", f.lengthBytes);
    BitVec bits(24, 0);
    unsigned rb = rateBits(f.rate);
    for (int i = 0; i < 4; ++i)
        bits[static_cast<size_t>(i)] =
            static_cast<Bit>((rb >> (3 - i)) & 1); // R1 first
    bits[4] = 0; // reserved
    for (int i = 0; i < 12; ++i)
        bits[static_cast<size_t>(5 + i)] = static_cast<Bit>(
            (static_cast<unsigned>(f.lengthBytes) >> i) & 1);
    Bit parity = 0;
    for (int i = 0; i < 17; ++i)
        parity ^= bits[static_cast<size_t>(i)];
    bits[17] = parity;
    // bits 18..23: zero tail (terminates the trellis).
    return bits;
}

bool
Signal::decodeBits(const BitVec &bits, SignalField &out)
{
    wilis_assert(bits.size() >= 24, "SIGNAL needs 24 bits");
    Bit parity = 0;
    for (int i = 0; i < 17; ++i)
        parity ^= bits[static_cast<size_t>(i)];
    if (parity != bits[17])
        return false;
    unsigned rb = 0;
    for (int i = 0; i < 4; ++i)
        rb = (rb << 1) | bits[static_cast<size_t>(i)];
    int rate = rateFromBits(rb);
    if (rate < 0)
        return false;
    unsigned len = 0;
    for (int i = 0; i < 12; ++i)
        len |= static_cast<unsigned>(bits[static_cast<size_t>(5 + i)])
               << i;
    if (len == 0)
        return false;
    out.rate = rate;
    out.lengthBytes = static_cast<int>(len);
    return true;
}

SampleVec
Signal::modulate(const SignalField &f)
{
    // 24 bits -> rate-1/2 coded 48 bits (tail included in the 24)
    // -> BPSK interleaving -> one OFDM symbol.
    BitVec bits = encodeBits(f);
    BitVec coded = convCode().encode(bits, /*terminate=*/false);
    Interleaver il(Modulation::BPSK);
    BitVec inter = il.interleave(coded);
    Mapper mapper(Modulation::BPSK);

    SampleVec bins(OfdmGeometry::kFftSize, Sample(0, 0));
    for (int d = 0; d < OfdmGeometry::kDataCarriers; ++d) {
        bins[static_cast<size_t>(OfdmGeometry::dataBin(d))] =
            mapper.map(&inter[static_cast<size_t>(d)]);
    }
    PilotTracker pilots;
    pilots.insertPilots(bins);

    Fft fft(OfdmGeometry::kFftSize);
    fft.inverse(bins);
    return addCyclicPrefix(bins);
}

bool
Signal::demodulate(const SampleVec &symbol, const SampleVec &h_bins,
                   SignalField &out)
{
    wilis_assert(symbol.size() == OfdmGeometry::kSymbolLen,
                 "SIGNAL symbol size %zu", symbol.size());
    SampleVec body = removeCyclicPrefix(symbol);
    Fft fft(OfdmGeometry::kFftSize);
    fft.forward(body);

    Demapper demapper(Modulation::BPSK);
    SoftVec soft;
    for (int d = 0; d < OfdmGeometry::kDataCarriers; ++d) {
        int bin = OfdmGeometry::dataBin(d);
        Sample y = body[static_cast<size_t>(bin)] /
                   h_bins[static_cast<size_t>(bin)];
        demapper.demap(y, soft);
    }
    Interleaver il(Modulation::BPSK);
    SoftVec deint = il.deinterleave(soft);

    auto dec = decode::makeDecoder("viterbi");
    auto decisions = dec->decodeBlock(deint);
    BitVec bits(24);
    for (int i = 0; i < 24; ++i)
        bits[static_cast<size_t>(i)] =
            decisions[static_cast<size_t>(i)].bit;
    return decodeBits(bits, out);
}

PlcpTransmitter::PlcpTransmitter(std::uint8_t scrambler_seed)
    : seed(scrambler_seed)
{}

size_t
PlcpTransmitter::frameSamples(RateIndex rate,
                              size_t payload_bits) const
{
    OfdmTransmitter tx(rate, seed);
    return static_cast<size_t>(Preamble::kTotalLen) +
           OfdmGeometry::kSymbolLen + tx.numSamples(payload_bits);
}

SampleVec
PlcpTransmitter::buildFrame(RateIndex rate, const BitVec &payload)
{
    wilis_assert(payload.size() % 8 == 0,
                 "payload must be whole bytes (%zu bits)",
                 payload.size());
    wilis_assert(payload.size() / 8 >= 1 &&
                     payload.size() / 8 <= 4095,
                 "payload of %zu bytes out of PLCP range",
                 payload.size() / 8);

    SampleVec frame = Preamble::full();

    SignalField f;
    f.rate = rate;
    f.lengthBytes = static_cast<int>(payload.size() / 8);
    SampleVec sig = Signal::modulate(f);
    frame.insert(frame.end(), sig.begin(), sig.end());

    OfdmTransmitter tx(rate, seed);
    SampleVec data = tx.modulate(payload);
    frame.insert(frame.end(), data.begin(), data.end());
    return frame;
}

PlcpReceiver::PlcpReceiver(const OfdmReceiver::Config &rx_cfg)
    : cfg(rx_cfg)
{}

SampleVec
PlcpReceiver::estimateChannel(const SampleVec &frame) const
{
    // Average the two long training symbols and divide by the known
    // sequence: H[k] = (Y1[k] + Y2[k]) / (2 L[k]).
    Fft fft(OfdmGeometry::kFftSize);
    SampleVec y1(frame.begin() + Preamble::kShortLen + 32,
                 frame.begin() + Preamble::kShortLen + 32 + 64);
    SampleVec y2(frame.begin() + Preamble::kShortLen + 96,
                 frame.begin() + Preamble::kShortLen + 96 + 64);
    fft.forward(y1);
    fft.forward(y2);
    SampleVec lref = Preamble::longTrainingFreq();

    SampleVec h(OfdmGeometry::kFftSize, Sample(1.0, 0.0));
    for (int k = 0; k < OfdmGeometry::kFftSize; ++k) {
        Sample l = lref[static_cast<size_t>(k)];
        if (std::abs(l) > 1e-9) {
            h[static_cast<size_t>(k)] =
                (y1[static_cast<size_t>(k)] +
                 y2[static_cast<size_t>(k)]) /
                (2.0 * l);
        }
    }
    return h;
}

PlcpRxResult
PlcpReceiver::receiveFrame(const SampleVec &frame)
{
    PlcpRxResult res;
    const size_t header_end = static_cast<size_t>(
        Preamble::kTotalLen + OfdmGeometry::kSymbolLen);
    wilis_assert(frame.size() >= header_end,
                 "frame too short for preamble + SIGNAL (%zu)",
                 frame.size());

    SampleVec h = estimateChannel(frame);

    SampleVec sig(frame.begin() + Preamble::kTotalLen,
                  frame.begin() + static_cast<long>(header_end));
    if (!Signal::demodulate(sig, h, res.header))
        return res; // headerOk stays false
    res.headerOk = true;

    const size_t payload_bits =
        static_cast<size_t>(res.header.lengthBytes) * 8;
    OfdmTransmitter geom(res.header.rate, cfg.scramblerSeed);
    const size_t need = geom.numSamples(payload_bits);
    wilis_assert(frame.size() >= header_end + need,
                 "frame truncated: %zu < %zu", frame.size(),
                 header_end + need);

    auto &rx = data_rx[static_cast<size_t>(res.header.rate)];
    if (!rx) {
        rx = std::make_unique<OfdmReceiver>(res.header.rate, cfg);
    }
    SampleVec data(frame.begin() + static_cast<long>(header_end),
                   frame.begin() +
                       static_cast<long>(header_end + need));
    StaticCsi csi(h);
    RxResult rr = rx->demodulate(data, payload_bits, &csi, 0);
    res.payload = std::move(rr.payload);
    res.soft = std::move(rr.soft);
    return res;
}

} // namespace phy
} // namespace wilis
