#include "phy/demapper.hh"

#include <cmath>

#include "common/fixed_point.hh"
#include "common/kernels.hh"
#include "common/logging.hh"

namespace wilis {
namespace phy {

Demapper::Demapper(Modulation mod_) : Demapper(mod_, Config()) {}

Demapper::Demapper(Modulation mod_, const Config &cfg_)
    : mod(mod_), cfg(cfg_)
{
    wilis_assert(cfg.softWidth >= 2 && cfg.softWidth <= 24,
                 "soft width %d out of range", cfg.softWidth);
    scale = cfg.applySnrScaling
                ? cfg.esN0 * modulationLlrScale(mod)
                : 1.0;
}

void
Demapper::axisMetrics(double v, double *m, int bits_per_axis) const
{
    // Simplified piecewise-linear metrics (Tosato-Bisaglia). The
    // constellation levels are at odd multiples of k_mod.
    switch (bits_per_axis) {
      case 1:
        m[0] = v;
        return;
      case 2: {
        const double k = 1.0 / std::sqrt(10.0);
        m[0] = v;
        m[1] = 2.0 * k - std::abs(v);
        return;
      }
      case 3: {
        const double k = 1.0 / std::sqrt(42.0);
        m[0] = v;
        m[1] = 4.0 * k - std::abs(v);
        m[2] = 2.0 * k - std::abs(std::abs(v) - 4.0 * k);
        return;
      }
      default:
        wilis_panic("unsupported bits per axis %d", bits_per_axis);
    }
}

int
Demapper::demapReal(Sample y, double *out) const
{
    double m[3];
    switch (mod) {
      case Modulation::BPSK:
        axisMetrics(y.real(), m, 1);
        out[0] = scale * m[0];
        return 1;
      case Modulation::QPSK:
        axisMetrics(y.real(), m, 1);
        out[0] = scale * m[0];
        axisMetrics(y.imag(), m, 1);
        out[1] = scale * m[0];
        return 2;
      case Modulation::QAM16:
        axisMetrics(y.real(), m, 2);
        out[0] = scale * m[0];
        out[1] = scale * m[1];
        axisMetrics(y.imag(), m, 2);
        out[2] = scale * m[0];
        out[3] = scale * m[1];
        return 4;
      case Modulation::QAM64:
        axisMetrics(y.real(), m, 3);
        out[0] = scale * m[0];
        out[1] = scale * m[1];
        out[2] = scale * m[2];
        axisMetrics(y.imag(), m, 3);
        out[3] = scale * m[0];
        out[4] = scale * m[1];
        out[5] = scale * m[2];
        return 6;
    }
    wilis_panic("bad modulation");
}

void
Demapper::demapReal(Sample y, std::vector<double> &out) const
{
    double metrics[6];
    int n = demapReal(y, metrics);
    out.insert(out.end(), metrics, metrics + n);
}

int
Demapper::demap(Sample y, SoftBit *out, double weight) const
{
    double metrics[6];
    int n = demapReal(y, metrics);
    for (int i = 0; i < n; ++i)
        out[i] = quantize(metrics[i] * weight, cfg.softWidth,
                          cfg.fullScale);
    return n;
}

void
Demapper::demap(Sample y, SoftVec &out, double weight) const
{
    SoftBit soft[6];
    int n = demap(y, soft, weight);
    out.insert(out.end(), soft, soft + n);
}

void
Demapper::demapBatch(const Sample *ys, const double *weights,
                     size_t n, SoftBit *out) const
{
    // Modulation enumerators coincide with the kernel layer's
    // kDemap* kinds.
    kernels::ops().demapBatch(static_cast<int>(mod), ys, weights, n,
                              scale, cfg.softWidth, cfg.fullScale,
                              out);
}

SoftVec
Demapper::demapStream(const SampleVec &symbols) const
{
    SoftVec out;
    out.reserve(symbols.size() *
                static_cast<size_t>(bitsPerSubcarrier(mod)));
    for (Sample y : symbols)
        demap(y, out);
    return out;
}

} // namespace phy
} // namespace wilis
