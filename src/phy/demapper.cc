#include "phy/demapper.hh"

#include <cmath>

#include "common/fixed_point.hh"
#include "common/logging.hh"

namespace wilis {
namespace phy {

Demapper::Demapper(Modulation mod_) : Demapper(mod_, Config()) {}

Demapper::Demapper(Modulation mod_, const Config &cfg_)
    : mod(mod_), cfg(cfg_)
{
    wilis_assert(cfg.softWidth >= 2 && cfg.softWidth <= 24,
                 "soft width %d out of range", cfg.softWidth);
    scale = cfg.applySnrScaling
                ? cfg.esN0 * modulationLlrScale(mod)
                : 1.0;
}

void
Demapper::axisMetrics(double v, double *m, int bits_per_axis) const
{
    // Simplified piecewise-linear metrics (Tosato-Bisaglia). The
    // constellation levels are at odd multiples of k_mod.
    switch (bits_per_axis) {
      case 1:
        m[0] = v;
        return;
      case 2: {
        const double k = 1.0 / std::sqrt(10.0);
        m[0] = v;
        m[1] = 2.0 * k - std::abs(v);
        return;
      }
      case 3: {
        const double k = 1.0 / std::sqrt(42.0);
        m[0] = v;
        m[1] = 4.0 * k - std::abs(v);
        m[2] = 2.0 * k - std::abs(std::abs(v) - 4.0 * k);
        return;
      }
      default:
        wilis_panic("unsupported bits per axis %d", bits_per_axis);
    }
}

void
Demapper::demapReal(Sample y, std::vector<double> &out) const
{
    double m[3];
    switch (mod) {
      case Modulation::BPSK:
        axisMetrics(y.real(), m, 1);
        out.push_back(scale * m[0]);
        return;
      case Modulation::QPSK:
        axisMetrics(y.real(), m, 1);
        out.push_back(scale * m[0]);
        axisMetrics(y.imag(), m, 1);
        out.push_back(scale * m[0]);
        return;
      case Modulation::QAM16:
        axisMetrics(y.real(), m, 2);
        out.push_back(scale * m[0]);
        out.push_back(scale * m[1]);
        axisMetrics(y.imag(), m, 2);
        out.push_back(scale * m[0]);
        out.push_back(scale * m[1]);
        return;
      case Modulation::QAM64:
        axisMetrics(y.real(), m, 3);
        out.push_back(scale * m[0]);
        out.push_back(scale * m[1]);
        out.push_back(scale * m[2]);
        axisMetrics(y.imag(), m, 3);
        out.push_back(scale * m[0]);
        out.push_back(scale * m[1]);
        out.push_back(scale * m[2]);
        return;
    }
    wilis_panic("bad modulation");
}

void
Demapper::demap(Sample y, SoftVec &out, double weight) const
{
    std::vector<double> real_metrics;
    real_metrics.reserve(6);
    demapReal(y, real_metrics);
    for (double v : real_metrics)
        out.push_back(
            quantize(v * weight, cfg.softWidth, cfg.fullScale));
}

SoftVec
Demapper::demapStream(const SampleVec &symbols) const
{
    SoftVec out;
    out.reserve(symbols.size() *
                static_cast<size_t>(bitsPerSubcarrier(mod)));
    for (Sample y : symbols)
        demap(y, out);
    return out;
}

} // namespace phy
} // namespace wilis
