/**
 * @file
 * Composed 802.11a/g OFDM receiver kernel: cyclic prefix removal ->
 * FFT -> equalization (perfect CSI) -> soft demapper ->
 * deinterleaver -> depuncturer -> pluggable soft decoder ->
 * descrambler (the RX half of Figure 1). The decoder slot is
 * resolved through the plug-n-play registry, so a receiver can be
 * built with "viterbi", "sova", "bcjr" or "bcjr-logmap" without any
 * source change.
 */

#ifndef WILIS_PHY_OFDM_RX_HH
#define WILIS_PHY_OFDM_RX_HH

#include <cstdint>
#include <memory>
#include <string>

#include "channel/channel.hh"
#include "common/frame_arena.hh"
#include "common/types.hh"
#include "decode/soft_decoder.hh"
#include "phy/demapper.hh"
#include "phy/fft.hh"
#include "phy/interleaver.hh"
#include "phy/modulation.hh"
#include "phy/ofdm_symbol.hh"
#include "phy/puncture.hh"

namespace wilis {
namespace phy {

/** Output of demodulating one packet. */
struct RxResult {
    /** Decoded, descrambled payload bits. */
    BitVec payload;
    /**
     * Per-payload-bit decisions with the decoder's LLR hints (the
     * SoftPHY export). payload[i] == soft[i].bit.
     */
    std::vector<SoftDecision> soft;

    /** Bit errors against a reference payload. */
    std::uint64_t bitErrors(const BitVec &ref) const;

    /** True if the payload matches @p ref exactly. */
    bool packetOk(const BitVec &ref) const { return bitErrors(ref) == 0; }
};

/**
 * Zero-copy variant of RxResult: views into the frame arena, valid
 * until the arena is reset. payload[i] == soft[i].bit.
 */
struct RxFrame {
    /** Decoded, descrambled payload bits (arena view). */
    BitSpan payload;
    /** Per-payload-bit decisions with LLR hints (arena view). */
    std::span<SoftDecision> soft;

    /** Bit errors against a reference payload. */
    std::uint64_t bitErrors(BitView ref) const;

    /** True if the payload matches @p ref exactly. */
    bool packetOk(BitView ref) const { return bitErrors(ref) == 0; }

    /** Deep copy into an owning RxResult. */
    RxResult toResult() const;
};

/** Full OFDM receiver for one 802.11a/g rate. */
class OfdmReceiver
{
  public:
    /** Receiver configuration. */
    struct Config {
        /** Decoder registry name. */
        std::string decoder = "bcjr";
        /** Decoder parameters (traceback/window lengths...). */
        li::Config decoderCfg;
        /** Demapper quantization parameters. */
        Demapper::Config demapper;
        /** Scrambler seed (must match the transmitter). */
        std::uint8_t scramblerSeed = 0x5D;
        /**
         * Weight each subcarrier's soft metrics by its channel
         * amplitude |H| (matched-filter metric after zero-forcing).
         * Essential on frequency-selective channels; false models
         * the paper's unweighted hardware demapper.
         */
        bool applyCsiWeight = false;
    };

    /** Construct with the default configuration (BCJR decoder). */
    explicit OfdmReceiver(RateIndex rate_idx);

    /** Construct with an explicit configuration. */
    OfdmReceiver(RateIndex rate_idx, const Config &cfg);

    /** Rate parameters in use. */
    const RateParams &rate() const { return params; }

    /** The decoder instance (for latency/area queries). */
    const decode::SoftDecoder &decoder() const { return *dec; }

    /**
     * Demodulate a packet.
     * @param samples      Received time-domain samples.
     * @param payload_bits Expected payload length in bits (from the
     *                     PLCP header in a real system).
     * @param csi          Channel providing per-symbol gains for
     *                     equalization; nullptr = unity gain.
     * @param packet_index Packet index for CSI lookup.
     */
    RxResult demodulate(const SampleVec &samples, size_t payload_bits,
                        const channel::Channel *csi = nullptr,
                        std::uint64_t packet_index = 0);

    /**
     * Zero-copy form: all intermediate stages and the returned
     * payload/soft views live in @p ctx's arena. A warmed-up arena
     * makes this path allocation-free end to end (the decoder keeps
     * its scratch in members).
     */
    RxFrame demodulate(SampleView samples, size_t payload_bits,
                       const channel::Channel *csi,
                       std::uint64_t packet_index, FrameContext &ctx);

  private:
    RateParams params;
    Config cfg;
    Interleaver interleaver;
    Puncturer puncturer;
    Demapper demapper;
    Fft fft;
    std::unique_ptr<decode::SoftDecoder> dec;
    /** Backs the legacy vector-returning demodulate(). */
    FrameArena legacy_arena;
};

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_OFDM_RX_HH
