#include "phy/sync.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "phy/preamble.hh"

namespace wilis {
namespace phy {

void
Synchronizer::applyCfo(SampleVec &samples, double cfo_hz)
{
    for (size_t n = 0; n < samples.size(); ++n) {
        double ang = 2.0 * std::numbers::pi * cfo_hz *
                     static_cast<double>(n) * kTs;
        samples[n] *= Sample(std::cos(ang), std::sin(ang));
    }
}

SyncResult
Synchronizer::locate(const SampleVec &rx) const
{
    SyncResult res;
    const int lag = Preamble::kShortPeriod; // 16
    const int win = 32;
    if (rx.size() < static_cast<size_t>(Preamble::kTotalLen + win +
                                        lag))
        return res;

    // --- Stage 1: Schmidl-Cox plateau on the periodic STS.
    const size_t search_end = rx.size() - static_cast<size_t>(
                                              win + lag);
    int above = 0;
    size_t plateau_start = 0;
    bool found = false;
    Sample p_acc(0, 0);
    double r_acc = 0.0;
    // Initialize the sliding sums at n = 0.
    for (int k = 0; k < win; ++k) {
        p_acc += rx[static_cast<size_t>(k + lag)] *
                 std::conj(rx[static_cast<size_t>(k)]);
        r_acc += std::norm(rx[static_cast<size_t>(k + lag)]);
    }
    for (size_t n = 0;; ++n) {
        double metric =
            r_acc > 1e-12 ? std::norm(p_acc) / (r_acc * r_acc) : 0.0;
        if (metric > cfg.detectThreshold) {
            if (above == 0)
                plateau_start = n;
            if (++above >= cfg.plateauLen) {
                found = true;
                res.metric = metric;
                break;
            }
        } else {
            above = 0;
        }
        if (n + 1 > search_end)
            break;
        // Slide the window by one sample.
        p_acc += rx[n + static_cast<size_t>(win + lag)] *
                     std::conj(rx[n + static_cast<size_t>(win)]) -
                 rx[n + static_cast<size_t>(lag)] *
                     std::conj(rx[n]);
        r_acc += std::norm(rx[n + static_cast<size_t>(win + lag)]) -
                 std::norm(rx[n + static_cast<size_t>(lag)]);
    }
    if (!found)
        return res;

    // --- Coarse CFO from the STS periodicity at the plateau.
    Sample p(0, 0);
    for (int k = 0; k < 96 && plateau_start + static_cast<size_t>(
                                  k + lag) < rx.size();
         ++k) {
        p += rx[plateau_start + static_cast<size_t>(k + lag)] *
             std::conj(rx[plateau_start + static_cast<size_t>(k)]);
    }
    double coarse_hz =
        std::arg(p) / (2.0 * std::numbers::pi * lag * kTs);

    // --- Stage 2: fine timing by LTS cross-correlation on a
    // coarse-CFO-corrected copy of the search region.
    const size_t region_start =
        plateau_start > 32 ? plateau_start - 32 : 0;
    const size_t region_len = std::min(
        rx.size() - region_start, static_cast<size_t>(512));
    SampleVec region(rx.begin() + static_cast<long>(region_start),
                     rx.begin() +
                         static_cast<long>(region_start + region_len));
    // Correct with the proper absolute-time phase.
    for (size_t n = 0; n < region.size(); ++n) {
        double ang = -2.0 * std::numbers::pi * coarse_hz *
                     static_cast<double>(n + region_start) * kTs;
        region[n] *= Sample(std::cos(ang), std::sin(ang));
    }

    SampleVec lts = Preamble::longTrainingSymbol();
    double best = -1.0;
    size_t best_n = 0;
    for (size_t n = 0; n + 128 + 64 <= region.size(); ++n) {
        // Look for the *pair* of LTS symbols 64 samples apart.
        Sample c1(0, 0);
        Sample c2(0, 0);
        for (int k = 0; k < 64; ++k) {
            c1 += region[n + static_cast<size_t>(k)] *
                  std::conj(lts[static_cast<size_t>(k)]);
            c2 += region[n + static_cast<size_t>(k + 64)] *
                  std::conj(lts[static_cast<size_t>(k)]);
        }
        double score = std::abs(c1) + std::abs(c2);
        if (score > best) {
            best = score;
            best_n = n;
        }
    }
    // best_n is the first LTS symbol: preamble starts 192 samples
    // earlier (160 STS + 32 guard).
    size_t lts_abs = region_start + best_n;
    if (lts_abs < 192)
        return res;
    res.frameStart = lts_abs - 192;

    // --- Fine CFO from the two LTS repetitions.
    Sample q(0, 0);
    for (int k = 0; k < 64; ++k) {
        q += region[best_n + static_cast<size_t>(k + 64)] *
             std::conj(region[best_n + static_cast<size_t>(k)]);
    }
    double fine_hz = std::arg(q) / (2.0 * std::numbers::pi * 64 * kTs);

    res.cfoHz = coarse_hz + fine_hz;
    res.detected = true;
    return res;
}

} // namespace phy
} // namespace wilis
