/**
 * @file
 * Soft-output demapper after Tosato & Bisaglia (ICC'02), the design
 * the paper bases its demapper on (section 4.1). Per received symbol
 * it emits one simplified log-likelihood metric per coded bit using
 * only additions and absolute values (no multiplies or divides), then
 * quantizes to a configurable fixed-point width.
 *
 * The hardware optimization the paper studies is to *ignore* the
 * Es/N0 and S_modulation scaling (eq. 3): the decoder's bit decisions
 * depend only on relative ordering so decode performance is
 * unaffected, but the LLR magnitudes -- and hence SoftPHY BER
 * estimates -- change scale. Config::applySnrScaling restores the
 * full eq. 3 computation for comparison.
 */

#ifndef WILIS_PHY_DEMAPPER_HH
#define WILIS_PHY_DEMAPPER_HH

#include "common/types.hh"
#include "phy/modulation.hh"

namespace wilis {
namespace phy {

/** Soft demapper with fixed-point output quantization. */
class Demapper
{
  public:
    /** Demapper configuration. */
    struct Config {
        /**
         * Signed output width in bits. The paper reports decoders
         * work with 3-8 bit inputs once SNR scaling is dropped
         * (versus 23-28 bits with it).
         */
        int softWidth = 6;
        /**
         * Real metric magnitude mapped to the positive saturation
         * point of the quantizer.
         */
        double fullScale = 2.0;
        /**
         * Apply the full eq. 3 scaling (Es/N0 * S_mod * Rdist). The
         * hardware default is false: raw distance metrics only.
         */
        bool applySnrScaling = false;
        /** Es/N0 (linear) used when applySnrScaling is set. */
        double esN0 = 1.0;
    };

    /** Construct with default quantization parameters. */
    explicit Demapper(Modulation mod_);

    /** Construct with explicit quantization parameters. */
    Demapper(Modulation mod_, const Config &cfg_);

    /** Modulation handled. */
    Modulation modulation() const { return mod; }

    /** Active configuration. */
    const Config &config() const { return cfg; }

    /**
     * Demap one (equalized) received symbol into bitsPerSubcarrier()
     * quantized soft values, appended to @p out. Positive values
     * favour bit = 1.
     *
     * @param weight Optional per-subcarrier confidence weight
     *        (typically |H| of the zero-forced bin): metrics are
     *        scaled before quantization so the decoder trusts
     *        notched subcarriers less. 1.0 = the paper's unweighted
     *        hardware path.
     */
    void demap(Sample y, SoftVec &out, double weight = 1.0) const;

    /**
     * Allocation-free demap: writes bitsPerSubcarrier() quantized
     * soft values to @p out and returns the count. This is the form
     * the zero-copy frame pipeline uses.
     */
    int demap(Sample y, SoftBit *out, double weight) const;

    /**
     * Batched demap of @p n equalized symbols (typically one OFDM
     * symbol's data carriers) through the runtime-dispatched SIMD
     * kernel layer: writes n * bitsPerSubcarrier() quantized soft
     * values to @p out, symbol-major, bit-exactly equal to n calls
     * of the per-symbol demap(). @p weights holds one confidence
     * weight per symbol, or nullptr for the unweighted hardware
     * path.
     */
    void demapBatch(const Sample *ys, const double *weights, size_t n,
                    SoftBit *out) const;

    /**
     * Demap one symbol into real-valued (unquantized) metrics,
     * appended to @p out. Used by calibration and tests.
     */
    void demapReal(Sample y, std::vector<double> &out) const;

    /**
     * Allocation-free real-metric demap: writes at most 6 metrics to
     * @p out and returns the count.
     */
    int demapReal(Sample y, double *out) const;

    /** Demap a stream of symbols. */
    SoftVec demapStream(const SampleVec &symbols) const;

  private:
    /** Simplified per-axis metrics (1, 2, or 3 per axis). */
    void axisMetrics(double v, double *m, int bits_per_axis) const;

    Modulation mod;
    Config cfg;
    double scale; // combined eq. 3 scale (1.0 in hardware mode)
};

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_DEMAPPER_HH
