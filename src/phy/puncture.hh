/**
 * @file
 * 802.11a puncturing: derives rates 2/3 and 3/4 from the rate-1/2
 * mother code by deleting coded bits; the depuncturer reinserts
 * zero-confidence erasures so the decoders always see the full
 * rate-1/2 lattice.
 */

#ifndef WILIS_PHY_PUNCTURE_HH
#define WILIS_PHY_PUNCTURE_HH

#include "common/types.hh"
#include "phy/modulation.hh"

namespace wilis {
namespace phy {

/** Puncturer/depuncturer for the 802.11a code-rate set. */
class Puncturer
{
  public:
    /** Build the puncturer for one code rate. */
    explicit Puncturer(CodeRate rate_) : rate(rate_) {}

    /** Code rate handled. */
    CodeRate codeRate() const { return rate; }

    /**
     * Remove punctured positions from rate-1/2 @p coded bits.
     * For R12 this is the identity.
     */
    BitVec puncture(const BitVec &coded) const;

    /**
     * Reinsert erasures (soft value 0) at punctured positions.
     * @param soft  Received soft bits in punctured order.
     * @return Soft stream matching the rate-1/2 coded length.
     */
    SoftVec depuncture(const SoftVec &soft) const;

    /** Punctured length for a rate-1/2 stream of @p coded_len bits. */
    size_t puncturedLength(size_t coded_len) const;

    /** Rate-1/2 length that punctures to @p punct_len bits. */
    size_t unpuncturedLength(size_t punct_len) const;

    /**
     * Puncture into caller-owned storage; @p out must hold exactly
     * puncturedLength(coded.size()) bits.
     */
    void puncture(BitView coded, BitSpan out) const;

    /**
     * Depuncture into caller-owned storage; @p out must hold exactly
     * unpuncturedLength(soft.size()) values.
     */
    void depuncture(SoftView soft, SoftSpan out) const;

  private:
    /**
     * Keep-pattern over one puncturing period of the rate-1/2 output
     * stream (A1 B1 A2 B2 ...): R23 keeps A1 B1 A2 (drops B2); R34
     * keeps A1 B1 A2 B3 (drops B2 A3).
     */
    void pattern(const Bit *&pat, size_t &period) const;

    CodeRate rate;
};

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_PUNCTURE_HH
