#include "phy/ofdm_symbol.hh"

#include "common/logging.hh"
#include "phy/scrambler.hh"

namespace wilis {
namespace phy {

namespace {

// Logical subcarrier indices -26..26 used for data, in ascending
// order, skipping DC (0) and the pilots (+-7, +-21).
constexpr std::array<int, OfdmGeometry::kDataCarriers> data_logical = {
    -26, -25, -24, -23, -22, -20, -19, -18, -17, -16, -15, -14,
    -13, -12, -11, -10, -9,  -8,  -6,  -5,  -4,  -3,  -2,  -1,
    1,   2,   3,   4,   5,   6,   8,   9,   10,  11,  12,  13,
    14,  15,  16,  17,  18,  19,  20,  22,  23,  24,  25,  26,
};

constexpr std::array<int, OfdmGeometry::kPilotCarriers> pilot_logical =
    {-21, -7, 7, 21};

// Relative polarity of the four pilot tones within one symbol.
constexpr std::array<int, OfdmGeometry::kPilotCarriers> pilot_sign = {
    1, 1, 1, -1};

int
logicalToBin(int k)
{
    return k >= 0 ? k : OfdmGeometry::kFftSize + k;
}

} // namespace

int
OfdmGeometry::dataBin(int i)
{
    wilis_assert(i >= 0 && i < kDataCarriers, "data carrier %d", i);
    return logicalToBin(data_logical[static_cast<size_t>(i)]);
}

int
OfdmGeometry::pilotBin(int i)
{
    wilis_assert(i >= 0 && i < kPilotCarriers, "pilot carrier %d", i);
    return logicalToBin(pilot_logical[static_cast<size_t>(i)]);
}

PilotTracker::PilotTracker()
{
    int seq[127];
    Scrambler::pilotPolarity(seq);
    for (int i = 0; i < 127; ++i)
        polarity[static_cast<size_t>(i)] = seq[i];
}

void
PilotTracker::insertPilots(SampleSpan bins)
{
    wilis_assert(bins.size() == OfdmGeometry::kFftSize,
                 "bad bin buffer size %zu", bins.size());
    int p = polarity[static_cast<size_t>(symbol_index % 127)];
    for (int i = 0; i < OfdmGeometry::kPilotCarriers; ++i) {
        bins[static_cast<size_t>(OfdmGeometry::pilotBin(i))] =
            Sample(p * pilot_sign[static_cast<size_t>(i)], 0.0);
    }
    ++symbol_index;
}

} // namespace phy
} // namespace wilis
