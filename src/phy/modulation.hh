/**
 * @file
 * 802.11a/g rate set: modulation schemes, code rates, and the derived
 * per-OFDM-symbol bit counts (N_BPSC, N_CBPS, N_DBPS). These are the
 * eight rates evaluated in Figure 2 of the paper.
 */

#ifndef WILIS_PHY_MODULATION_HH
#define WILIS_PHY_MODULATION_HH

#include <string>
#include <vector>

namespace wilis {
namespace phy {

/** Subcarrier modulation schemes of 802.11a/g. */
enum class Modulation {
    /** 1 bit per subcarrier. */
    BPSK,
    /** 2 bits per subcarrier. */
    QPSK,
    /** 4 bits per subcarrier. */
    QAM16,
    /** 6 bits per subcarrier. */
    QAM64,
};

/** Convolutional code rates of 802.11a/g (mother code 1/2). */
enum class CodeRate {
    /** Rate 1/2 (unpunctured). */
    R12,
    /** Rate 2/3. */
    R23,
    /** Rate 3/4. */
    R34,
};

/** Number of coded bits carried per subcarrier (N_BPSC). */
int bitsPerSubcarrier(Modulation m);

/** Human-readable modulation name ("QAM-16" etc.). */
std::string modulationName(Modulation m);

/** Human-readable code-rate name ("1/2" etc.). */
std::string codeRateName(CodeRate r);

/** Code rate as a fraction. */
double codeRateValue(CodeRate r);

/**
 * Demapper LLR scaling constant S_modulation of eqs. 3/5: the factor
 * relating the simplified distance metric to a true LLR at unit SNR.
 * Equal to 4 / sqrt(constellation normalization).
 */
double modulationLlrScale(Modulation m);

/** One entry of the 802.11a/g rate table. */
struct RateParams {
    /** Subcarrier modulation. */
    Modulation modulation;
    /** Convolutional code rate. */
    CodeRate codeRate;
    /** Line rate in Mb/s (6..54). */
    double lineRateMbps;
    /** Coded bits per subcarrier. */
    int nBpsc;
    /** Coded bits per OFDM symbol (48 data subcarriers). */
    int nCbps;
    /** Data bits per OFDM symbol. */
    int nDbps;

    /** e.g. "QPSK 3/4 (18 Mbps)". */
    std::string name() const;
};

/** Index into the 8-entry rate table (0 = BPSK 1/2 ... 7 = QAM64 3/4). */
using RateIndex = int;

/** Number of 802.11a/g rates. */
constexpr int kNumRates = 8;

/** The 802.11a/g rate table in increasing-speed order. */
const RateParams &rateTable(RateIndex idx);

/** All rates, for sweeps. */
std::vector<RateIndex> allRates();

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_MODULATION_HH
