#include "phy/conv_code.hh"

#include <bit>

#include "common/logging.hh"

namespace wilis {
namespace phy {

ConvCode::ConvCode()
{
    // State s holds the previous 6 input bits, most recent in bit 5.
    // The 7-bit encoder register for input x is (x << 6) | s, with the
    // current input in bit 6 (tap D^0) and the oldest bit in bit 0
    // (tap D^6), matching the octal generator conventions.
    for (int s = 0; s < kStates; ++s) {
        for (int x = 0; x < 2; ++x) {
            unsigned reg = (static_cast<unsigned>(x) << 6) |
                           static_cast<unsigned>(s);
            unsigned o0 = std::popcount(reg & kG0) & 1u;
            unsigned o1 = std::popcount(reg & kG1) & 1u;
            output[static_cast<size_t>(s)][x] = o0 | (o1 << 1);
            next_state[static_cast<size_t>(s)][x] =
                static_cast<int>((reg >> 1) & 0x3F);
        }
    }
}

BitVec
ConvCode::encode(const BitVec &data, bool terminate) const
{
    BitVec out(2 * (data.size() +
                    (terminate ? static_cast<size_t>(kTailBits) : 0)));
    encode(BitView(data), terminate, BitSpan(out));
    return out;
}

void
ConvCode::encode(BitView data, bool terminate, BitSpan out) const
{
    wilis_assert(out.size() ==
                     2 * (data.size() +
                          (terminate ? static_cast<size_t>(kTailBits)
                                     : 0)),
                 "encoder output span size %zu for %zu data bits",
                 out.size(), data.size());
    int state = 0;
    size_t w = 0;
    auto emit = [&](Bit x) {
        unsigned o = outputBits(state, x);
        out[w++] = static_cast<Bit>(o & 1);
        out[w++] = static_cast<Bit>((o >> 1) & 1);
        state = nextState(state, x);
    };
    for (Bit b : data)
        emit(b & 1);
    if (terminate) {
        for (int i = 0; i < kTailBits; ++i)
            emit(0);
    }
}

const ConvCode &
convCode()
{
    static const ConvCode code;
    return code;
}

} // namespace phy
} // namespace wilis
