#include "phy/puncture.hh"

#include "common/logging.hh"

namespace wilis {
namespace phy {

namespace {
// Keep-patterns over the interleaved A/B rate-1/2 stream.
const Bit pat_r12[2] = {1, 1};
const Bit pat_r23[4] = {1, 1, 1, 0};
const Bit pat_r34[6] = {1, 1, 1, 0, 0, 1};
} // namespace

void
Puncturer::pattern(const Bit *&pat, size_t &period) const
{
    switch (rate) {
      case CodeRate::R12:
        pat = pat_r12;
        period = 2;
        return;
      case CodeRate::R23:
        pat = pat_r23;
        period = 4;
        return;
      case CodeRate::R34:
        pat = pat_r34;
        period = 6;
        return;
    }
    wilis_panic("bad code rate");
}

BitVec
Puncturer::puncture(const BitVec &coded) const
{
    BitVec out(puncturedLength(coded.size()));
    puncture(BitView(coded), BitSpan(out));
    return out;
}

void
Puncturer::puncture(BitView coded, BitSpan out) const
{
    const Bit *pat;
    size_t period;
    pattern(pat, period);
    wilis_assert(coded.size() % period == 0,
                 "coded length %zu not a multiple of puncture period "
                 "%zu", coded.size(), period);
    wilis_assert(out.size() == puncturedLength(coded.size()),
                 "puncture output span size %zu, expected %zu",
                 out.size(), puncturedLength(coded.size()));
    size_t w = 0;
    for (size_t i = 0; i < coded.size(); ++i) {
        if (pat[i % period])
            out[w++] = coded[i];
    }
}

SoftVec
Puncturer::depuncture(const SoftVec &soft) const
{
    SoftVec out(unpuncturedLength(soft.size()));
    depuncture(SoftView(soft), SoftSpan(out));
    return out;
}

void
Puncturer::depuncture(SoftView soft, SoftSpan out) const
{
    const Bit *pat;
    size_t period;
    pattern(pat, period);
    size_t kept_per_period = 0;
    for (size_t i = 0; i < period; ++i)
        kept_per_period += pat[i];
    wilis_assert(soft.size() % kept_per_period == 0,
                 "punctured length %zu not a multiple of %zu",
                 soft.size(), kept_per_period);
    wilis_assert(out.size() == unpuncturedLength(soft.size()),
                 "depuncture output span size %zu, expected %zu",
                 out.size(), unpuncturedLength(soft.size()));
    size_t in = 0;
    size_t w = 0;
    while (in < soft.size()) {
        for (size_t j = 0; j < period; ++j) {
            if (pat[j]) {
                out[w++] = soft[in];
                ++in;
            } else {
                out[w++] = 0; // erasure: no channel information
            }
        }
    }
}

size_t
Puncturer::puncturedLength(size_t coded_len) const
{
    const Bit *pat;
    size_t period;
    pattern(pat, period);
    size_t kept = 0;
    for (size_t i = 0; i < period; ++i)
        kept += pat[i];
    wilis_assert(coded_len % period == 0, "bad coded length %zu",
                 coded_len);
    return coded_len / period * kept;
}

size_t
Puncturer::unpuncturedLength(size_t punct_len) const
{
    const Bit *pat;
    size_t period;
    pattern(pat, period);
    size_t kept = 0;
    for (size_t i = 0; i < period; ++i)
        kept += pat[i];
    wilis_assert(punct_len % kept == 0, "bad punctured length %zu",
                 punct_len);
    return punct_len / kept * period;
}

} // namespace phy
} // namespace wilis
