#include "phy/ofdm_rx.hh"

#include "common/logging.hh"
#include "phy/conv_code.hh"
#include "phy/cyclic_prefix.hh"
#include "phy/scrambler.hh"

namespace wilis {
namespace phy {

std::uint64_t
RxResult::bitErrors(const BitVec &ref) const
{
    wilis_assert(ref.size() == payload.size(),
                 "payload size mismatch: %zu vs %zu", ref.size(),
                 payload.size());
    std::uint64_t errors = 0;
    for (size_t i = 0; i < ref.size(); ++i)
        errors += (ref[i] != payload[i]) ? 1u : 0u;
    return errors;
}

OfdmReceiver::OfdmReceiver(RateIndex rate_idx)
    : OfdmReceiver(rate_idx, Config())
{}

OfdmReceiver::OfdmReceiver(RateIndex rate_idx, const Config &cfg_)
    : params(rateTable(rate_idx)), cfg(cfg_),
      interleaver(params.modulation), puncturer(params.codeRate),
      demapper(params.modulation, cfg_.demapper),
      fft(OfdmGeometry::kFftSize),
      dec(decode::makeDecoder(cfg_.decoder, cfg_.decoderCfg))
{}

RxResult
OfdmReceiver::demodulate(const SampleVec &samples, size_t payload_bits,
                         const channel::Channel *csi,
                         std::uint64_t packet_index)
{
    wilis_assert(samples.size() % OfdmGeometry::kSymbolLen == 0,
                 "sample count %zu not a whole number of symbols",
                 samples.size());
    const int nsym =
        static_cast<int>(samples.size() / OfdmGeometry::kSymbolLen);

    // Per-symbol: strip CP, FFT, equalize, soft-demap, deinterleave.
    SoftVec soft_stream;
    soft_stream.reserve(static_cast<size_t>(nsym) *
                        static_cast<size_t>(params.nCbps));
    SampleVec sym(OfdmGeometry::kSymbolLen);
    for (int s = 0; s < nsym; ++s) {
        const size_t base = static_cast<size_t>(s) *
                            OfdmGeometry::kSymbolLen;
        sym.assign(samples.begin() + static_cast<long>(base),
                   samples.begin() +
                       static_cast<long>(base +
                                         OfdmGeometry::kSymbolLen));
        SampleVec body = removeCyclicPrefix(sym);
        fft.forward(body);

        SoftVec sym_soft;
        sym_soft.reserve(static_cast<size_t>(params.nCbps));
        for (int d = 0; d < OfdmGeometry::kDataCarriers; ++d) {
            int bin = OfdmGeometry::dataBin(d);
            Sample h = csi ? csi->binGain(packet_index, s, bin)
                           : Sample(1.0, 0.0);
            Sample y = body[static_cast<size_t>(bin)] / h;
            double w = cfg.applyCsiWeight ? std::abs(h) : 1.0;
            demapper.demap(y, sym_soft, w);
        }
        SoftVec deint = interleaver.deinterleave(sym_soft);
        soft_stream.insert(soft_stream.end(), deint.begin(),
                           deint.end());
    }

    // Depuncture and decode the terminated block.
    SoftVec rate_half = puncturer.depuncture(soft_stream);
    std::vector<SoftDecision> decisions = dec->decodeBlock(rate_half);

    const size_t info_bits =
        static_cast<size_t>(nsym) *
            static_cast<size_t>(params.nDbps) -
        ConvCode::kTailBits;
    wilis_assert(decisions.size() ==
                     info_bits + ConvCode::kTailBits,
                 "decoder returned %zu decisions, expected %zu",
                 decisions.size(), info_bits + ConvCode::kTailBits);
    wilis_assert(payload_bits <= info_bits,
                 "payload %zu larger than frame capacity %zu",
                 payload_bits, info_bits);

    // Descramble and trim pad/tail.
    Scrambler scrambler(cfg.scramblerSeed);
    RxResult res;
    res.payload.resize(payload_bits);
    res.soft.resize(payload_bits);
    for (size_t i = 0; i < info_bits; ++i) {
        Bit prbs = scrambler.nextPrbsBit();
        if (i < payload_bits) {
            SoftDecision d = decisions[i];
            d.bit = d.bit ^ prbs;
            res.payload[i] = d.bit;
            res.soft[i] = d;
        }
    }
    return res;
}

} // namespace phy
} // namespace wilis
