#include "phy/ofdm_rx.hh"

#include "common/logging.hh"
#include "phy/conv_code.hh"
#include "phy/cyclic_prefix.hh"
#include "phy/scrambler.hh"

namespace wilis {
namespace phy {

namespace {

std::uint64_t
countBitErrors(BitView ref, BitView got)
{
    wilis_assert(ref.size() == got.size(),
                 "payload size mismatch: %zu vs %zu", ref.size(),
                 got.size());
    std::uint64_t errors = 0;
    for (size_t i = 0; i < ref.size(); ++i)
        errors += (ref[i] != got[i]) ? 1u : 0u;
    return errors;
}

} // namespace

std::uint64_t
RxResult::bitErrors(const BitVec &ref) const
{
    return countBitErrors(BitView(ref), BitView(payload));
}

std::uint64_t
RxFrame::bitErrors(BitView ref) const
{
    return countBitErrors(ref, BitView(payload));
}

RxResult
RxFrame::toResult() const
{
    RxResult res;
    res.payload.assign(payload.begin(), payload.end());
    res.soft.assign(soft.begin(), soft.end());
    return res;
}

OfdmReceiver::OfdmReceiver(RateIndex rate_idx)
    : OfdmReceiver(rate_idx, Config())
{}

OfdmReceiver::OfdmReceiver(RateIndex rate_idx, const Config &cfg_)
    : params(rateTable(rate_idx)), cfg(cfg_),
      interleaver(params.modulation), puncturer(params.codeRate),
      demapper(params.modulation, cfg_.demapper),
      fft(OfdmGeometry::kFftSize),
      dec(decode::makeDecoder(cfg_.decoder, cfg_.decoderCfg))
{}

RxResult
OfdmReceiver::demodulate(const SampleVec &samples, size_t payload_bits,
                         const channel::Channel *csi,
                         std::uint64_t packet_index)
{
    legacy_arena.reset();
    FrameContext ctx(legacy_arena);
    return demodulate(SampleView(samples), payload_bits, csi,
                      packet_index, ctx)
        .toResult();
}

RxFrame
OfdmReceiver::demodulate(SampleView samples, size_t payload_bits,
                         const channel::Channel *csi,
                         std::uint64_t packet_index, FrameContext &ctx)
{
    wilis_assert(samples.size() % OfdmGeometry::kSymbolLen == 0,
                 "sample count %zu not a whole number of symbols",
                 samples.size());
    const int nsym =
        static_cast<int>(samples.size() / OfdmGeometry::kSymbolLen);
    FrameArena &arena = ctx.arena;

    // Per-symbol: strip CP, FFT, equalize, soft-demap, deinterleave
    // straight into the whole-packet soft stream.
    SoftSpan soft_stream = arena.alloc<SoftBit>(
        static_cast<size_t>(nsym) *
        static_cast<size_t>(params.nCbps));
    SampleSpan body = arena.alloc<Sample>(OfdmGeometry::kFftSize);
    SoftSpan sym_soft = arena.alloc<SoftBit>(
        static_cast<size_t>(params.nCbps));
    SampleSpan eq = arena.alloc<Sample>(OfdmGeometry::kDataCarriers);
    std::span<double> csi_w =
        arena.alloc<double>(OfdmGeometry::kDataCarriers);
    for (int s = 0; s < nsym; ++s) {
        const size_t base = static_cast<size_t>(s) *
                            OfdmGeometry::kSymbolLen;
        removeCyclicPrefix(samples.subspan(base,
                                           OfdmGeometry::kSymbolLen),
                           body);
        fft.forward(body);

        // Equalize the data carriers, then soft-demap the whole
        // symbol in one batched kernel call.
        for (int d = 0; d < OfdmGeometry::kDataCarriers; ++d) {
            int bin = OfdmGeometry::dataBin(d);
            Sample h = csi ? csi->binGain(packet_index, s, bin)
                           : Sample(1.0, 0.0);
            eq[static_cast<size_t>(d)] =
                body[static_cast<size_t>(bin)] / h;
            if (cfg.applyCsiWeight)
                csi_w[static_cast<size_t>(d)] = std::abs(h);
        }
        demapper.demapBatch(eq.data(),
                            cfg.applyCsiWeight ? csi_w.data()
                                               : nullptr,
                            static_cast<size_t>(
                                OfdmGeometry::kDataCarriers),
                            sym_soft.data());
        interleaver.deinterleave(
            sym_soft,
            soft_stream.subspan(static_cast<size_t>(s) *
                                    static_cast<size_t>(params.nCbps),
                                static_cast<size_t>(params.nCbps)));
    }

    // Depuncture and decode the terminated block.
    SoftSpan rate_half = arena.alloc<SoftBit>(
        puncturer.unpuncturedLength(soft_stream.size()));
    puncturer.depuncture(soft_stream, rate_half);
    std::span<SoftDecision> decisions =
        arena.alloc<SoftDecision>(rate_half.size() / 2);
    dec->decodeInto(rate_half, decisions);

    const size_t info_bits =
        static_cast<size_t>(nsym) *
            static_cast<size_t>(params.nDbps) -
        ConvCode::kTailBits;
    wilis_assert(decisions.size() ==
                     info_bits + ConvCode::kTailBits,
                 "decoder returned %zu decisions, expected %zu",
                 decisions.size(), info_bits + ConvCode::kTailBits);
    wilis_assert(payload_bits <= info_bits,
                 "payload %zu larger than frame capacity %zu",
                 payload_bits, info_bits);

    // Descramble and trim pad/tail.
    Scrambler scrambler(cfg.scramblerSeed);
    RxFrame res;
    res.payload = arena.alloc<Bit>(payload_bits);
    res.soft = arena.alloc<SoftDecision>(payload_bits);
    for (size_t i = 0; i < payload_bits; ++i) {
        Bit prbs = scrambler.nextPrbsBit();
        SoftDecision d = decisions[i];
        d.bit = d.bit ^ prbs;
        res.payload[i] = d.bit;
        res.soft[i] = d;
    }
    return res;
}

} // namespace phy
} // namespace wilis
