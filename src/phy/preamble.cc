#include "phy/preamble.hh"

#include <cmath>

#include "common/logging.hh"
#include "phy/fft.hh"
#include "phy/ofdm_symbol.hh"

namespace wilis {
namespace phy {

namespace {

// Short training frequency-domain sequence on logical subcarriers
// -26..26 (clause 17.3.3): nonzero every 4th bin, values
// sqrt(13/6) * (+-1 +- j).
const int sts_sign[53] = {
    // -26..-1
    0, 0, 1, 0, 0, 0, -1, 0, 0, 0, 1, 0, 0, 0, -1, 0, 0, 0, -1, 0,
    0, 0, 1, 0, 0, 0,
    // 0
    0,
    // 1..26
    0, 0, 0, -1, 0, 0, 0, -1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1,
    0, 0, 0, 1, 0, 0};

// Long training sequence on logical subcarriers -26..26 (clause
// 17.3.3).
const int lts_val[53] = {
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1,
    1, -1, 1, -1, 1, 1, 1, 1,
    0,
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1,
    -1, 1, -1, 1, -1, 1, 1, 1, 1};

int
logicalToBin(int k)
{
    return k >= 0 ? k : OfdmGeometry::kFftSize + k;
}

SampleVec
timeDomainOf(const SampleVec &bins)
{
    SampleVec t = bins;
    Fft fft(OfdmGeometry::kFftSize);
    fft.inverse(t);
    return t;
}

} // namespace

SampleVec
Preamble::shortTraining()
{
    SampleVec bins(OfdmGeometry::kFftSize, Sample(0, 0));
    const double amp = std::sqrt(13.0 / 6.0);
    for (int k = -26; k <= 26; ++k) {
        int s = sts_sign[k + 26];
        if (s != 0) {
            bins[static_cast<size_t>(logicalToBin(k))] =
                amp * Sample(s, s);
        }
    }
    SampleVec period = timeDomainOf(bins); // periodic with period 16
    SampleVec out;
    out.reserve(kShortLen);
    for (int i = 0; i < kShortLen; ++i)
        out.push_back(period[static_cast<size_t>(i % 64)]);
    return out;
}

SampleVec
Preamble::longTrainingFreq()
{
    SampleVec bins(OfdmGeometry::kFftSize, Sample(0, 0));
    for (int k = -26; k <= 26; ++k) {
        bins[static_cast<size_t>(logicalToBin(k))] =
            Sample(lts_val[k + 26], 0.0);
    }
    return bins;
}

SampleVec
Preamble::longTrainingSymbol()
{
    return timeDomainOf(longTrainingFreq());
}

SampleVec
Preamble::longTraining()
{
    SampleVec sym = longTrainingSymbol();
    SampleVec out;
    out.reserve(kLongLen);
    // 32-sample guard: the tail of the symbol.
    out.insert(out.end(), sym.end() - 32, sym.end());
    out.insert(out.end(), sym.begin(), sym.end());
    out.insert(out.end(), sym.begin(), sym.end());
    return out;
}

SampleVec
Preamble::full()
{
    SampleVec p = shortTraining();
    SampleVec l = longTraining();
    p.insert(p.end(), l.begin(), l.end());
    wilis_assert(static_cast<int>(p.size()) == kTotalLen,
                 "preamble length %zu", p.size());
    return p;
}

} // namespace phy
} // namespace wilis
