#include "phy/interleaver.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wilis {
namespace phy {

Interleaver::Interleaver(Modulation mod)
{
    int n_bpsc = bitsPerSubcarrier(mod);
    n_cbps = 48 * n_bpsc;
    int s = std::max(n_bpsc / 2, 1);

    fwd.resize(static_cast<size_t>(n_cbps));
    inv.resize(static_cast<size_t>(n_cbps));

    for (int k = 0; k < n_cbps; ++k) {
        // First permutation (17-18).
        int i = (n_cbps / 16) * (k % 16) + (k / 16);
        // Second permutation (17-19).
        int j = s * (i / s) +
                (i + n_cbps - (16 * i) / n_cbps) % s;
        fwd[static_cast<size_t>(k)] = j;
    }
    for (int k = 0; k < n_cbps; ++k)
        inv[static_cast<size_t>(fwd[static_cast<size_t>(k)])] = k;
}

BitVec
Interleaver::interleave(const BitVec &in) const
{
    wilis_assert(static_cast<int>(in.size()) == n_cbps,
                 "interleave block size %zu != N_CBPS %d", in.size(),
                 n_cbps);
    BitVec out(in.size());
    for (int k = 0; k < n_cbps; ++k)
        out[static_cast<size_t>(fwd[static_cast<size_t>(k)])] =
            in[static_cast<size_t>(k)];
    return out;
}

SoftVec
Interleaver::deinterleave(const SoftVec &in) const
{
    SoftVec out(in.size());
    deinterleave(SoftView(in), SoftSpan(out));
    return out;
}

void
Interleaver::deinterleave(SoftView in, SoftSpan out) const
{
    wilis_assert(static_cast<int>(in.size()) == n_cbps,
                 "deinterleave block size %zu != N_CBPS %d", in.size(),
                 n_cbps);
    wilis_assert(out.size() == in.size(),
                 "deinterleave output span size %zu", out.size());
    for (int j = 0; j < n_cbps; ++j)
        out[static_cast<size_t>(inv[static_cast<size_t>(j)])] =
            in[static_cast<size_t>(j)];
}

BitVec
Interleaver::interleaveStream(const BitVec &in) const
{
    BitVec out(in.size());
    interleaveStream(BitView(in), BitSpan(out));
    return out;
}

void
Interleaver::interleaveStream(BitView in, BitSpan out) const
{
    wilis_assert(in.size() % static_cast<size_t>(n_cbps) == 0,
                 "stream length %zu not a multiple of N_CBPS %d",
                 in.size(), n_cbps);
    wilis_assert(out.size() == in.size(),
                 "interleave output span size %zu", out.size());
    for (size_t base = 0; base < in.size();
         base += static_cast<size_t>(n_cbps)) {
        for (int k = 0; k < n_cbps; ++k) {
            out[base + static_cast<size_t>(
                           fwd[static_cast<size_t>(k)])] =
                in[base + static_cast<size_t>(k)];
        }
    }
}

SoftVec
Interleaver::deinterleaveStream(const SoftVec &in) const
{
    SoftVec out(in.size());
    deinterleaveStream(SoftView(in), SoftSpan(out));
    return out;
}

void
Interleaver::deinterleaveStream(SoftView in, SoftSpan out) const
{
    wilis_assert(in.size() % static_cast<size_t>(n_cbps) == 0,
                 "stream length %zu not a multiple of N_CBPS %d",
                 in.size(), n_cbps);
    wilis_assert(out.size() == in.size(),
                 "deinterleave output span size %zu", out.size());
    for (size_t base = 0; base < in.size();
         base += static_cast<size_t>(n_cbps)) {
        for (int j = 0; j < n_cbps; ++j) {
            out[base + static_cast<size_t>(
                           inv[static_cast<size_t>(j)])] =
                in[base + static_cast<size_t>(j)];
        }
    }
}

} // namespace phy
} // namespace wilis
