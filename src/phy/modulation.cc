#include "phy/modulation.hh"

#include <array>
#include <cmath>

#include "common/logging.hh"

namespace wilis {
namespace phy {

int
bitsPerSubcarrier(Modulation m)
{
    switch (m) {
      case Modulation::BPSK:
        return 1;
      case Modulation::QPSK:
        return 2;
      case Modulation::QAM16:
        return 4;
      case Modulation::QAM64:
        return 6;
    }
    wilis_panic("bad modulation %d", static_cast<int>(m));
}

std::string
modulationName(Modulation m)
{
    switch (m) {
      case Modulation::BPSK:
        return "BPSK";
      case Modulation::QPSK:
        return "QPSK";
      case Modulation::QAM16:
        return "QAM-16";
      case Modulation::QAM64:
        return "QAM-64";
    }
    wilis_panic("bad modulation %d", static_cast<int>(m));
}

std::string
codeRateName(CodeRate r)
{
    switch (r) {
      case CodeRate::R12:
        return "1/2";
      case CodeRate::R23:
        return "2/3";
      case CodeRate::R34:
        return "3/4";
    }
    wilis_panic("bad code rate %d", static_cast<int>(r));
}

double
codeRateValue(CodeRate r)
{
    switch (r) {
      case CodeRate::R12:
        return 0.5;
      case CodeRate::R23:
        return 2.0 / 3.0;
      case CodeRate::R34:
        return 0.75;
    }
    wilis_panic("bad code rate %d", static_cast<int>(r));
}

double
modulationLlrScale(Modulation m)
{
    // LLR = 4 * Es/N0 * d(y) / sqrt(norm), where norm is the average-
    // energy normalization of the constellation (1, 2, 10, 42).
    switch (m) {
      case Modulation::BPSK:
        return 4.0;
      case Modulation::QPSK:
        return 4.0 / std::sqrt(2.0);
      case Modulation::QAM16:
        return 4.0 / std::sqrt(10.0);
      case Modulation::QAM64:
        return 4.0 / std::sqrt(42.0);
    }
    wilis_panic("bad modulation %d", static_cast<int>(m));
}

std::string
RateParams::name() const
{
    return strprintf("%s %s (%g Mbps)", modulationName(modulation).c_str(),
                     codeRateName(codeRate).c_str(), lineRateMbps);
}

namespace {

const std::array<RateParams, kNumRates> rate_table = {{
    {Modulation::BPSK, CodeRate::R12, 6.0, 1, 48, 24},
    {Modulation::BPSK, CodeRate::R34, 9.0, 1, 48, 36},
    {Modulation::QPSK, CodeRate::R12, 12.0, 2, 96, 48},
    {Modulation::QPSK, CodeRate::R34, 18.0, 2, 96, 72},
    {Modulation::QAM16, CodeRate::R12, 24.0, 4, 192, 96},
    {Modulation::QAM16, CodeRate::R34, 36.0, 4, 192, 144},
    {Modulation::QAM64, CodeRate::R23, 48.0, 6, 288, 192},
    {Modulation::QAM64, CodeRate::R34, 54.0, 6, 288, 216},
}};

} // namespace

const RateParams &
rateTable(RateIndex idx)
{
    wilis_assert(idx >= 0 && idx < kNumRates, "rate index %d out of "
                 "range", idx);
    return rate_table[static_cast<size_t>(idx)];
}

std::vector<RateIndex>
allRates()
{
    std::vector<RateIndex> v;
    for (int i = 0; i < kNumRates; ++i)
        v.push_back(i);
    return v;
}

} // namespace phy
} // namespace wilis
