/**
 * @file
 * Composed 802.11a/g OFDM transmitter kernel: scrambler ->
 * convolutional encoder -> puncturer -> interleaver -> mapper ->
 * pilot/subcarrier mapping -> IFFT -> cyclic prefix (the TX half of
 * Figure 1). This is the functional kernel; li wrappers build the
 * cycle-counted pipeline from the same blocks.
 */

#ifndef WILIS_PHY_OFDM_TX_HH
#define WILIS_PHY_OFDM_TX_HH

#include <cstdint>

#include "common/frame_arena.hh"
#include "common/types.hh"
#include "phy/conv_code.hh"
#include "phy/fft.hh"
#include "phy/interleaver.hh"
#include "phy/mapper.hh"
#include "phy/modulation.hh"
#include "phy/ofdm_symbol.hh"
#include "phy/puncture.hh"
#include "phy/scrambler.hh"

namespace wilis {
namespace phy {

/** Full OFDM transmitter for one 802.11a/g rate. */
class OfdmTransmitter
{
  public:
    /** Intermediate stages exposed for tests. */
    struct Debug {
        /** Payload after scrambling. */
        BitVec scrambled;
        /** Scrambled bits after rate-1/2 encoding. */
        BitVec coded;
        /** Coded bits after puncturing. */
        BitVec punctured;
        /** Punctured bits after interleaving. */
        BitVec interleaved;
    };

    /**
     * @param rate_idx       802.11a/g rate (0..7).
     * @param scrambler_seed Initial scrambler state.
     */
    explicit OfdmTransmitter(RateIndex rate_idx,
                             std::uint8_t scrambler_seed = 0x5D);

    /** Rate parameters in use. */
    const RateParams &rate() const { return params; }

    /** OFDM symbols needed for @p payload_bits data bits. */
    int numSymbols(size_t payload_bits) const;

    /** Info bits after padding (excluding the 6 tail bits). */
    size_t paddedInfoBits(size_t payload_bits) const;

    /** Time-domain samples for @p payload_bits (with CP). */
    size_t numSamples(size_t payload_bits) const;

    /**
     * Modulate a payload into time-domain samples.
     * @param payload Data bits.
     * @param dbg     Optional tap of the intermediate stages.
     */
    SampleVec modulate(const BitVec &payload, Debug *dbg = nullptr);

    /**
     * Zero-copy form: every intermediate stage and the returned
     * sample buffer live in @p ctx's arena. The view is valid until
     * the arena is reset; a warmed-up arena makes this path
     * allocation-free.
     */
    SampleSpan modulate(BitView payload, FrameContext &ctx,
                        Debug *dbg = nullptr);

  private:
    RateParams params;
    std::uint8_t seed;
    Interleaver interleaver;
    Mapper mapper;
    Puncturer puncturer;
    Fft fft;
    /** Backs the legacy vector-returning modulate(). */
    FrameArena legacy_arena;
};

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_OFDM_TX_HH
