#include "phy/mapper.hh"

#include <cmath>

#include "common/logging.hh"

namespace wilis {
namespace phy {

Mapper::Mapper(Modulation mod_) : mod(mod_)
{
    n_bpsc = bitsPerSubcarrier(mod);
    switch (mod) {
      case Modulation::BPSK:
        k_mod = 1.0;
        break;
      case Modulation::QPSK:
        k_mod = 1.0 / std::sqrt(2.0);
        break;
      case Modulation::QAM16:
        k_mod = 1.0 / std::sqrt(10.0);
        break;
      case Modulation::QAM64:
        k_mod = 1.0 / std::sqrt(42.0);
        break;
    }
}

double
Mapper::axisLevel(const Bit *bits, int bits_per_axis)
{
    // First bit: sign (1 = positive). Remaining bits Gray-select the
    // magnitude from the inside of the constellation outward.
    double sign = bits[0] ? 1.0 : -1.0;
    double mag;
    switch (bits_per_axis) {
      case 1:
        mag = 1.0;
        break;
      case 2:
        mag = bits[1] ? 1.0 : 3.0;
        break;
      case 3:
        if (bits[1])
            mag = bits[2] ? 3.0 : 1.0;
        else
            mag = bits[2] ? 5.0 : 7.0;
        break;
      default:
        wilis_panic("unsupported bits per axis %d", bits_per_axis);
    }
    return sign * mag;
}

Sample
Mapper::map(const Bit *bits) const
{
    switch (mod) {
      case Modulation::BPSK:
        return Sample(axisLevel(bits, 1), 0.0);
      case Modulation::QPSK:
        return k_mod * Sample(axisLevel(bits, 1),
                              axisLevel(bits + 1, 1));
      case Modulation::QAM16:
        return k_mod * Sample(axisLevel(bits, 2),
                              axisLevel(bits + 2, 2));
      case Modulation::QAM64:
        return k_mod * Sample(axisLevel(bits, 3),
                              axisLevel(bits + 3, 3));
    }
    wilis_panic("bad modulation");
}

SampleVec
Mapper::mapStream(const BitVec &bits) const
{
    wilis_assert(bits.size() % static_cast<size_t>(n_bpsc) == 0,
                 "bit stream length %zu not a multiple of %d",
                 bits.size(), n_bpsc);
    SampleVec out;
    out.reserve(bits.size() / static_cast<size_t>(n_bpsc));
    for (size_t i = 0; i < bits.size();
         i += static_cast<size_t>(n_bpsc))
        out.push_back(map(&bits[i]));
    return out;
}

std::vector<Sample>
Mapper::constellation() const
{
    std::vector<Sample> pts;
    int count = 1 << n_bpsc;
    pts.reserve(static_cast<size_t>(count));
    for (int v = 0; v < count; ++v) {
        Bit bits[6];
        for (int b = 0; b < n_bpsc; ++b)
            bits[b] = static_cast<Bit>((v >> (n_bpsc - 1 - b)) & 1);
        pts.push_back(map(bits));
    }
    return pts;
}

} // namespace phy
} // namespace wilis
