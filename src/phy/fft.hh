/**
 * @file
 * Unitary radix-2 FFT/IFFT used by the OFDM modulator and
 * demodulator. Both directions scale by 1/sqrt(N) so that symbol
 * energy is preserved and the AWGN variance set in the time domain
 * equals the per-subcarrier noise variance seen by the demapper.
 */

#ifndef WILIS_PHY_FFT_HH
#define WILIS_PHY_FFT_HH

#include <vector>

#include "common/types.hh"

namespace wilis {
namespace phy {

/** Precomputed-twiddle unitary FFT of a fixed power-of-two size. */
class Fft
{
  public:
    /** @param size_ Transform size; must be a power of two. */
    explicit Fft(int size_);

    /** Transform size. */
    int size() const { return n; }

    /** In-place forward transform (time -> frequency), unitary. */
    void forward(SampleSpan x) const;

    /** In-place inverse transform (frequency -> time), unitary. */
    void inverse(SampleSpan x) const;

  private:
    void transform(SampleSpan x, bool invert) const;

    int n;
    int log2n;
    std::vector<Sample> twiddles; // exp(-2*pi*i*k/n), k < n/2
    std::vector<int> bitrev;
};

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_FFT_HH
