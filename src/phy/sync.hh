/**
 * @file
 * Packet synchronization from the PLCP preamble: Schmidl-Cox style
 * detection on the periodic short training sequence, fine timing by
 * cross-correlation against the known long training symbol, and
 * two-stage (coarse STS + fine LTS) carrier-frequency-offset
 * estimation.
 *
 * Section 4.4.4 lists synchronization as one of the pieces the WiLIS
 * study did not model; this is that extension.
 */

#ifndef WILIS_PHY_SYNC_HH
#define WILIS_PHY_SYNC_HH

#include <cstddef>

#include "common/types.hh"

namespace wilis {
namespace phy {

/** Outcome of searching a sample stream for a frame. */
struct SyncResult {
    /** A preamble was found. */
    bool detected = false;
    /** Index of the first preamble sample. */
    size_t frameStart = 0;
    /** Estimated carrier frequency offset in Hz. */
    double cfoHz = 0.0;
    /** Peak detection metric (0..1). */
    double metric = 0.0;
};

/** Preamble detector and CFO estimator. */
class Synchronizer
{
  public:
    /** Detector parameters. */
    struct Config {
        /** Plateau threshold on the normalized STS metric. */
        double detectThreshold = 0.6;
        /** Samples the metric must stay above threshold. */
        int plateauLen = 64;
    };

    /** Construct with default detector parameters. */
    Synchronizer() : Synchronizer(Config()) {}
    /** Construct with explicit detector parameters. */
    explicit Synchronizer(const Config &cfg_) : cfg(cfg_) {}

    /**
     * Search @p rx for a PLCP preamble.
     * The fine timing is exact when the frame is present; the CFO
     * estimate combines the STS (coarse, wide range) and LTS (fine)
     * stages.
     */
    SyncResult locate(const SampleVec &rx) const;

    /**
     * Multiply a sample stream by e^{j 2 pi cfo_hz t}: inject a CFO
     * with positive @p cfo_hz, correct one with the negated
     * estimate. 20 MHz sample rate.
     */
    static void applyCfo(SampleVec &samples, double cfo_hz);

    /** Sample period in seconds (20 MHz). */
    static constexpr double kTs = 1.0 / 20e6;

  private:
    Config cfg;
};

} // namespace phy
} // namespace wilis

#endif // WILIS_PHY_SYNC_HH
