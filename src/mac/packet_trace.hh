/**
 * @file
 * Deterministic per-packet event trace of the upper stack.
 *
 * Every packet-visible MAC event -- enqueue, queue drop, scheduler
 * grant, transmission, in-order delivery (ack) and retry-budget
 * expiry -- is recorded with its slot timestamp and packet identity
 * (cell, user, traffic class, per-user sequence number). Engines
 * record into per-shard buffers (one shard per cell in the
 * multi-cell engines, one per user in the single-cell engine), so
 * recording is race-free without locks; finalize() then sorts every
 * entry into the canonical order (cell, user, seq, slot, event),
 * which is a total key over the events one run can produce.
 *
 * That makes the finalized trace a pure function of the NetworkSpec:
 * independent of the worker-thread count, of the cell sharding, and
 * of which engine (peruser or soa) produced it -- so a saved trace
 * is byte-diffable against any later run of the same spec, which is
 * the differential-testing workhorse pinning every MAC, scheduler
 * and engine change (tests/test_packet_trace.cc and the committed
 * golden trace under data/).
 *
 * The text format is versioned and all-integer (the class and event
 * columns are fixed-name strings), so a committed fixture is stable
 * across platforms -- no floating-point formatting is involved.
 */

#ifndef WILIS_MAC_PACKET_TRACE_HH
#define WILIS_MAC_PACKET_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/snapshot.hh"
#include "mac/traffic.hh"

namespace wilis {
namespace mac {

/** What happened to a packet at one slot. */
enum class PacketEvent : std::uint8_t {
    /** Entered its traffic queue (arg0 = queue depth after). */
    Enqueue,
    /**
     * Dropped from its traffic queue (arg0 = 0 for a tail-dropped
     * arrival on a full queue, 1 for a head-of-line eviction under
     * drop_head, 2 for a churn-departure flush; arg1 = the dropped
     * packet's age in slots).
     */
    QueueDrop,
    /**
     * Granted the slot by its cell's scheduler (arg0 = transmission
     * attempts after this grant, arg1 = queue wait in slots on the
     * first attempt, 0 on retransmissions).
     */
    Grant,
    /** Transmitted (arg0 = decoded clean, arg1 = rate index). */
    Tx,
    /**
     * Delivered in order by the ARQ (arg0 = attempts consumed,
     * arg1 = end-to-end latency in slots, arrival to delivery).
     */
    Ack,
    /**
     * Dropped by the ARQ after exhausting its retry budget
     * (arg0 = attempts consumed, arg1 = slots since arrival).
     */
    Expire,
    /**
     * Serving-cell handover (a per-user session event, not a
     * packet event: seq = 0, class = data). The entry's cell is
     * the *new* serving cell; arg0 = the old cell, arg1 = 1 when
     * the mobility layer classified it as a ping-pong.
     */
    Handover,
    /**
     * Churn session start (seq = 0, class = data; the entry's cell
     * is the cell joined). arg0 = the pre-departure serving cell,
     * arg1 = 0.
     */
    Join,
    /**
     * Churn session end (seq = 0, class = data; the entry's cell
     * is the cell left). arg0 = queued packets flushed, arg1 =
     * in-flight ARQ frames aborted by the departure.
     */
    Leave,
};

/** Trace-file name of @p ev ("enq", "qdrop", "grant", ...). */
const char *packetEventName(PacketEvent ev);

/** Inverse of packetEventName(); fatal on unknown names. */
PacketEvent packetEventFromName(const std::string &name);

/**
 * The per-packet event log. Thread contract: record() calls must be
 * partitioned by shard (each shard written by exactly one thread at
 * a time); finalize() and everything after it are single-threaded.
 *
 * The contract is ownership-based, not lock-based, so it is outside
 * what the clang thread-safety analysis can express; it is checked
 * dynamically instead: the CI TSan leg runs every threaded suite
 * over this class (shard-partitioned recording from all workers,
 * finalize on the joining thread), record()/finalize() misuse
 * panics via the assertions in packet_trace.cc, and the byte-exact
 * trace smokes pin the result against re-sharding.
 */
class PacketTrace
{
  public:
    /** One traced event. */
    struct Entry {
        /** Slot timestamp. */
        std::uint64_t slot = 0;
        /** Serving cell (0 in single-cell runs). */
        std::int32_t cell = 0;
        /** Global user id. */
        std::int32_t user = 0;
        /** Traffic class of the packet. */
        TrafficClass cls = TrafficClass::Data;
        /** Per-user packet sequence number (arrival order). */
        std::uint64_t seq = 0;
        /** What happened. */
        PacketEvent event = PacketEvent::Enqueue;
        /** Event-specific argument (see PacketEvent). */
        std::int64_t arg0 = 0;
        /** Event-specific argument (see PacketEvent). */
        std::int64_t arg1 = 0;

        /** Field-wise equality. */
        bool operator==(const Entry &other) const = default;
    };

    /** Build a trace with @p shards race-free recording lanes. */
    explicit PacketTrace(int shards = 1);

    /** Append @p e to shard @p shard (pre-finalize only). */
    void record(int shard, const Entry &e);

    /**
     * Merge all shards and sort into the canonical
     * (cell, user, seq, slot, event) order. Idempotent; required
     * before entries() / toText() / save() / diff().
     */
    void finalize();

    /** True once finalize() has run. */
    bool finalized() const { return finalized_; }

    /** The canonically ordered events (finalized traces only). */
    const std::vector<Entry> &entries() const;

    /** Serialize to the versioned text format. */
    std::string toText() const;

    /** Write toText() to @p path; fatal on I/O errors. */
    void save(const std::string &path) const;

    /**
     * Parse a trace saved by save(); fatal on a missing file, a
     * version-header mismatch or a malformed line. The result is
     * finalized.
     */
    static PacketTrace load(const std::string &path);

    /**
     * First divergence between two finalized traces, or the empty
     * string when they are identical. The message names the entry
     * index and shows both sides' text lines.
     */
    static std::string diff(const PacketTrace &a,
                            const PacketTrace &b);

    /**
     * Serialize the pre-finalize per-shard buffers (checkpoint
     * only; fatal on a finalized trace). Shards are written in
     * index order, which is the engines' cell order -- canonical
     * across engines and thread counts.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore state written by saveState() (same shard count). */
    void loadState(SnapshotReader &r);

  private:
    std::vector<std::vector<Entry>> shards_;
    std::vector<Entry> entries_;
    bool finalized_ = false;
};

} // namespace mac
} // namespace wilis

#endif // WILIS_MAC_PACKET_TRACE_HH
