#include "mac/packet_trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <tuple>

#include "common/logging.hh"

namespace wilis {
namespace mac {

namespace {

/** The version header pinning the committed fixtures' format. */
const char *const kHeader = "# wilis packet trace v1";
const char *const kColumns = "# slot cell user class seq event "
                             "arg0 arg1";

/** One entry as its text line (no trailing newline). */
std::string
entryLine(const PacketTrace::Entry &e)
{
    return strprintf("%" PRIu64 " %d %d %s %" PRIu64 " %s %" PRId64
                     " %" PRId64,
                     e.slot, e.cell, e.user,
                     trafficClassName(e.cls), e.seq,
                     packetEventName(e.event), e.arg0, e.arg1);
}

/** The canonical total order (see the file comment). */
bool
entryLess(const PacketTrace::Entry &a, const PacketTrace::Entry &b)
{
    return std::tie(a.cell, a.user, a.seq, a.slot, a.event, a.arg0,
                    a.arg1) < std::tie(b.cell, b.user, b.seq, b.slot,
                                       b.event, b.arg0, b.arg1);
}

} // namespace

const char *
packetEventName(PacketEvent ev)
{
    switch (ev) {
      case PacketEvent::Enqueue:
        return "enq";
      case PacketEvent::QueueDrop:
        return "qdrop";
      case PacketEvent::Grant:
        return "grant";
      case PacketEvent::Tx:
        return "tx";
      case PacketEvent::Ack:
        return "ack";
      case PacketEvent::Expire:
        return "expire";
      case PacketEvent::Handover:
        return "ho";
      case PacketEvent::Join:
        return "join";
      case PacketEvent::Leave:
        return "leave";
    }
    return "?";
}

PacketEvent
packetEventFromName(const std::string &name)
{
    if (name == "enq")
        return PacketEvent::Enqueue;
    if (name == "qdrop")
        return PacketEvent::QueueDrop;
    if (name == "grant")
        return PacketEvent::Grant;
    if (name == "tx")
        return PacketEvent::Tx;
    if (name == "ack")
        return PacketEvent::Ack;
    if (name == "expire")
        return PacketEvent::Expire;
    if (name == "ho")
        return PacketEvent::Handover;
    if (name == "join")
        return PacketEvent::Join;
    if (name == "leave")
        return PacketEvent::Leave;
    wilis_fatal("unknown packet event '%s' "
                "(enq|qdrop|grant|tx|ack|expire|ho|join|leave)",
                name.c_str());
}

PacketTrace::PacketTrace(int shards)
{
    wilis_assert(shards >= 1, "packet trace needs >= 1 shard");
    shards_.resize(static_cast<size_t>(shards));
}

void
PacketTrace::record(int shard, const Entry &e)
{
    // Shard ownership (one recording worker per shard, finalize only
    // after the team joins) is barrier-phase discipline: no lock to
    // annotate, so it is checked dynamically -- these panics catch
    // lifecycle misuse, the CI TSan leg catches two workers sharing
    // a shard index.
    wilis_assert(!finalized_,
                 "record() into a finalized packet trace");
    wilis_assert(shard >= 0 &&
                     shard < static_cast<int>(shards_.size()),
                 "trace shard %d out of %zu", shard,
                 shards_.size());
    shards_[static_cast<size_t>(shard)].push_back(e);
}

void
PacketTrace::finalize()
{
    if (finalized_)
        return;
    size_t total = 0;
    for (const auto &s : shards_)
        total += s.size();
    entries_.reserve(total);
    for (auto &s : shards_) {
        entries_.insert(entries_.end(), s.begin(), s.end());
        s.clear();
        s.shrink_to_fit();
    }
    // The sort key is total over one run's events (a packet sees at
    // most one event of each kind per slot), so the result is
    // independent of the per-shard generation order -- the property
    // every thread-count and engine equivalence test rides on.
    std::sort(entries_.begin(), entries_.end(), entryLess);
    finalized_ = true;
}

const std::vector<PacketTrace::Entry> &
PacketTrace::entries() const
{
    wilis_assert(finalized_,
                 "entries() before finalize() on a packet trace");
    return entries_;
}

std::string
PacketTrace::toText() const
{
    wilis_assert(finalized_,
                 "toText() before finalize() on a packet trace");
    std::string out;
    out.reserve(entries_.size() * 32 + 64);
    out += kHeader;
    out += '\n';
    out += kColumns;
    out += '\n';
    for (const Entry &e : entries_) {
        out += entryLine(e);
        out += '\n';
    }
    return out;
}

void
PacketTrace::save(const std::string &path) const
{
    const std::string text = toText();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        wilis_fatal("cannot write packet trace '%s'", path.c_str());
    const size_t n = std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = n == text.size() && std::fclose(f) == 0;
    wilis_assert(ok, "short write saving packet trace '%s'",
                 path.c_str());
}

PacketTrace
PacketTrace::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        wilis_fatal("cannot read packet trace '%s'", path.c_str());
    PacketTrace trace(1);
    char line[256];
    bool saw_header = false;
    int lineno = 0;
    while (std::fgets(line, sizeof line, f)) {
        ++lineno;
        std::string s(line);
        while (!s.empty() &&
               (s.back() == '\n' || s.back() == '\r'))
            s.pop_back();
        if (!saw_header) {
            if (s != kHeader) {
                std::fclose(f);
                wilis_fatal("packet trace '%s' has version header "
                            "'%s', expected '%s'",
                            path.c_str(), s.c_str(), kHeader);
            }
            saw_header = true;
            continue;
        }
        if (s.empty() || s[0] == '#')
            continue;
        Entry e;
        char cls[32];
        char ev[32];
        if (std::sscanf(s.c_str(),
                        "%" SCNu64 " %d %d %31s %" SCNu64
                        " %31s %" SCNd64 " %" SCNd64,
                        &e.slot, &e.cell, &e.user, cls, &e.seq, ev,
                        &e.arg0, &e.arg1) != 8) {
            std::fclose(f);
            wilis_fatal("malformed packet-trace line %d in '%s': "
                        "'%s'",
                        lineno, path.c_str(), s.c_str());
        }
        e.cls = trafficClassFromName(cls);
        e.event = packetEventFromName(ev);
        trace.record(0, e);
    }
    std::fclose(f);
    if (!saw_header)
        wilis_fatal("packet trace '%s' is empty (missing header "
                    "'%s')",
                    path.c_str(), kHeader);
    trace.finalize();
    return trace;
}

std::string
PacketTrace::diff(const PacketTrace &a, const PacketTrace &b)
{
    const std::vector<Entry> &ea = a.entries();
    const std::vector<Entry> &eb = b.entries();
    const size_t n = std::min(ea.size(), eb.size());
    for (size_t i = 0; i < n; ++i) {
        if (!(ea[i] == eb[i]))
            return strprintf("entry %zu differs:\n  a: %s\n  b: %s",
                             i, entryLine(ea[i]).c_str(),
                             entryLine(eb[i]).c_str());
    }
    if (ea.size() != eb.size())
        return strprintf("entry counts differ: a has %zu, b has "
                         "%zu (first extra: %s)",
                         ea.size(), eb.size(),
                         entryLine(ea.size() > eb.size() ? ea[n]
                                                         : eb[n])
                             .c_str());
    return std::string();
}

void
PacketTrace::saveState(SnapshotWriter &w) const
{
    wilis_assert(!finalized_,
                 "saveState() on a finalized packet trace");
    w.marker(0x43415254); // "TRAC"
    w.u64(shards_.size());
    for (const std::vector<Entry> &shard : shards_) {
        w.u64(shard.size());
        for (const Entry &e : shard) {
            w.u64(e.slot);
            w.i64(e.cell);
            w.i64(e.user);
            w.u8(static_cast<std::uint8_t>(e.cls));
            w.u64(e.seq);
            w.u8(static_cast<std::uint8_t>(e.event));
            w.i64(e.arg0);
            w.i64(e.arg1);
        }
    }
}

void
PacketTrace::loadState(SnapshotReader &r)
{
    wilis_assert(!finalized_,
                 "loadState() on a finalized packet trace");
    r.marker(0x43415254);
    const std::uint64_t shards = r.u64();
    wilis_assert(shards == shards_.size(),
                 "snapshot trace has %llu shards, this trace has "
                 "%zu",
                 static_cast<unsigned long long>(shards),
                 shards_.size());
    for (std::vector<Entry> &shard : shards_) {
        shard.clear();
        const std::uint64_t n = r.u64();
        shard.reserve(static_cast<size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            Entry e;
            e.slot = r.u64();
            e.cell = static_cast<std::int32_t>(r.i64());
            e.user = static_cast<std::int32_t>(r.i64());
            e.cls = static_cast<TrafficClass>(r.u8());
            e.seq = r.u64();
            e.event = static_cast<PacketEvent>(r.u8());
            e.arg0 = r.i64();
            e.arg1 = r.i64();
            shard.push_back(e);
        }
    }
}

} // namespace mac
} // namespace wilis
