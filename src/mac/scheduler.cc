#include "mac/scheduler.hh"

#include "common/kernels.hh"
#include "common/logging.hh"

namespace wilis {
namespace mac {

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::RoundRobin:
        return "round_robin";
      case SchedulerKind::ProportionalFair:
        return "proportional_fair";
    }
    return "?";
}

SchedulerKind
schedulerKindFromName(const std::string &name)
{
    if (name == "round_robin" || name == "rr")
        return SchedulerKind::RoundRobin;
    if (name == "proportional_fair" || name == "pf")
        return SchedulerKind::ProportionalFair;
    wilis_fatal("unknown scheduler '%s' "
                "(round_robin|proportional_fair)",
                name.c_str());
}

const char *
contentionModeName(ContentionMode mode)
{
    return mode == ContentionMode::Fixed ? "fixed" : "none";
}

ContentionMode
contentionModeFromName(const std::string &name)
{
    if (name == "none")
        return ContentionMode::None;
    if (name == "fixed")
        return ContentionMode::Fixed;
    wilis_fatal("unknown contention mode '%s' (none|fixed)",
                name.c_str());
}

CellScheduler::CellScheduler(const Config &cfg, int num_users)
    : cfg_(cfg), num_users_(num_users)
{
    wilis_assert(num_users_ >= 0, "negative user count %d",
                 num_users_);
    wilis_assert(cfg_.pfHorizonSlots >= 1.0,
                 "PF horizon %g slots < 1", cfg_.pfHorizonSlots);
    if (cfg_.kind == SchedulerKind::ProportionalFair)
        avg_.assign(static_cast<size_t>(num_users_), 0.0);
}

int
CellScheduler::pick(const std::vector<std::uint8_t> &eligible,
                    const std::vector<double> &inst_rate,
                    const std::vector<std::uint8_t> *urgent) const
{
    wilis_assert(static_cast<int>(eligible.size()) == num_users_,
                 "eligibility vector size %zu != %d users",
                 eligible.size(), num_users_);
    if (num_users_ == 0)
        return -1;
    // Class-aware preemption: when any eligible user is urgent,
    // restrict the discipline to the eligible-and-urgent subset.
    bool any_urgent = false;
    if (urgent) {
        wilis_assert(static_cast<int>(urgent->size()) == num_users_,
                     "urgency vector size %zu != %d users",
                     urgent->size(), num_users_);
        for (int u = 0; u < num_users_; ++u) {
            if (eligible[static_cast<size_t>(u)] &&
                (*urgent)[static_cast<size_t>(u)]) {
                any_urgent = true;
                break;
            }
        }
    }
    if (cfg_.kind == SchedulerKind::RoundRobin) {
        for (int i = 0; i < num_users_; ++i) {
            const int u = (cursor_ + i) % num_users_;
            if (!eligible[static_cast<size_t>(u)])
                continue;
            if (any_urgent && !(*urgent)[static_cast<size_t>(u)])
                continue;
            return u;
        }
        return -1;
    }
    // Proportional fair: argmax inst/avg with a floor on the
    // average so a never-served user wins its first contention.
    // Ties break to the lowest index -- scheduling stays a pure
    // function of the inputs.
    int best = -1;
    double best_metric = 0.0;
    for (int u = 0; u < num_users_; ++u) {
        if (!eligible[static_cast<size_t>(u)])
            continue;
        if (any_urgent && !(*urgent)[static_cast<size_t>(u)])
            continue;
        const double avg =
            avg_[static_cast<size_t>(u)] > 1e-12
                ? avg_[static_cast<size_t>(u)]
                : 1e-12;
        const double metric =
            inst_rate[static_cast<size_t>(u)] / avg;
        if (best < 0 || metric > best_metric) {
            best = u;
            best_metric = metric;
        }
    }
    return best;
}

void
CellScheduler::update(int granted, double served_bits)
{
    if (cfg_.kind == SchedulerKind::RoundRobin) {
        if (granted >= 0)
            cursor_ = (granted + 1) % num_users_;
        return;
    }
    // The EWMA decay runs as the pfDecay kernel: element-parallel
    // (1 - a) * avg + a * served with served nonzero only for the
    // granted user, bit-identical to the scalar recurrence on every
    // backend.
    const double a = 1.0 / cfg_.pfHorizonSlots;
    kernels::ops().pfDecay(avg_.data(), avg_.size(), a, granted,
                           served_bits);
}

void
CellScheduler::insertUser(int pos, double avg_rate)
{
    wilis_assert(pos >= 0 && pos <= num_users_,
                 "insert position %d outside [0, %d]", pos,
                 num_users_);
    ++num_users_;
    // The cursor names a local index; an insertion below it shifts
    // the user it pointed at up by one. Inserting *at* the cursor
    // leaves it alone: the newcomer inherits the next turn, a pure
    // function of (pos, cursor) in both engines.
    if (pos < cursor_)
        ++cursor_;
    if (cfg_.kind == SchedulerKind::ProportionalFair)
        avg_.insert(avg_.begin() + pos, avg_rate);
}

void
CellScheduler::removeUser(int pos)
{
    wilis_assert(pos >= 0 && pos < num_users_,
                 "remove position %d outside [0, %d)", pos,
                 num_users_);
    --num_users_;
    if (pos < cursor_)
        --cursor_;
    if (cursor_ >= num_users_)
        cursor_ = 0;
    if (cfg_.kind == SchedulerKind::ProportionalFair)
        avg_.erase(avg_.begin() + pos);
}

void
CellScheduler::saveState(SnapshotWriter &w) const
{
    w.marker(0x44454853); // "SHED"
    w.i64(cursor_);
    w.u64(avg_.size());
    for (double a : avg_)
        w.f64(a);
}

void
CellScheduler::loadState(SnapshotReader &r)
{
    r.marker(0x44454853);
    cursor_ = static_cast<int>(r.i64());
    const std::uint64_t n = r.u64();
    wilis_assert(n == avg_.size(),
                 "snapshot PF average count %llu != %zu users the "
                 "scheduler was rebuilt with",
                 static_cast<unsigned long long>(n), avg_.size());
    for (double &a : avg_)
        a = r.f64();
}

double
CellScheduler::averageRate(int local_user) const
{
    wilis_assert(cfg_.kind == SchedulerKind::ProportionalFair,
                 "averageRate() is a proportional-fair statistic");
    return avg_[static_cast<size_t>(local_user)];
}

} // namespace mac
} // namespace wilis
