#include "mac/ppr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wilis {
namespace mac {

PprOutcome
PprPolicy::evaluate(phy::Modulation mod,
                    const std::vector<SoftDecision> &soft,
                    const BitVec &ref) const
{
    return evaluate(mod, std::span<const SoftDecision>(soft),
                    BitView(ref));
}

PprOutcome
PprPolicy::evaluate(phy::Modulation mod,
                    std::span<const SoftDecision> soft,
                    BitView ref) const
{
    wilis_assert(soft.size() == ref.size(),
                 "soft/ref size mismatch %zu vs %zu", soft.size(),
                 ref.size());
    const size_t n = soft.size();
    const size_t chunk_sz = static_cast<size_t>(chunk);

    // Chunk at a time: one pass decides the chunk flag, a second
    // accounts outcomes -- no per-packet flag buffer needed.
    PprOutcome out;
    out.totalBits = n;
    for (size_t base = 0; base < n; base += chunk_sz) {
        const size_t end = std::min(base + chunk_sz, n);
        bool chunk_flagged = false;
        for (size_t i = base; i < end && !chunk_flagged; ++i)
            chunk_flagged =
                est->perBitBer(mod, soft[i].llr) > threshold;
        for (size_t i = base; i < end; ++i) {
            bool wrong = soft[i].bit != ref[i];
            if (chunk_flagged)
                ++out.flaggedBits;
            if (wrong && chunk_flagged)
                ++out.caughtErrors;
            else if (wrong)
                ++out.missedErrors;
        }
    }
    return out;
}

} // namespace mac
} // namespace wilis
