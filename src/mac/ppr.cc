#include "mac/ppr.hh"

#include "common/logging.hh"

namespace wilis {
namespace mac {

PprOutcome
PprPolicy::evaluate(phy::Modulation mod,
                    const std::vector<SoftDecision> &soft,
                    const BitVec &ref) const
{
    wilis_assert(soft.size() == ref.size(),
                 "soft/ref size mismatch %zu vs %zu", soft.size(),
                 ref.size());
    const size_t n = soft.size();
    const size_t chunk_sz = static_cast<size_t>(chunk);
    const size_t num_chunks = (n + chunk_sz - 1) / chunk_sz;

    // Pass 1: flag chunks containing any suspicious bit.
    std::vector<bool> flagged(num_chunks, false);
    for (size_t i = 0; i < n; ++i) {
        if (est->perBitBer(mod, soft[i].llr) > threshold)
            flagged[i / chunk_sz] = true;
    }

    // Pass 2: account outcomes against ground truth.
    PprOutcome out;
    out.totalBits = n;
    for (size_t i = 0; i < n; ++i) {
        bool chunk_flagged = flagged[i / chunk_sz];
        bool wrong = soft[i].bit != ref[i];
        if (chunk_flagged)
            ++out.flaggedBits;
        if (wrong && chunk_flagged)
            ++out.caughtErrors;
        else if (wrong)
            ++out.missedErrors;
    }
    return out;
}

} // namespace mac
} // namespace wilis
