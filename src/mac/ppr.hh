/**
 * @file
 * Partial Packet Recovery (Jamieson & Balakrishnan, SIGCOMM'07): use
 * SoftPHY per-bit BER estimates to retransmit only the suspicious
 * chunks of a corrupted packet instead of the whole frame -- the
 * first motivating consumer of SoftPHY hints named in section 4.
 */

#ifndef WILIS_MAC_PPR_HH
#define WILIS_MAC_PPR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "phy/modulation.hh"
#include "softphy/ber_estimator.hh"

namespace wilis {
namespace mac {

/** Outcome of a PPR recovery decision on one packet. */
struct PprOutcome {
    /** Bits whose estimated BER exceeded the threshold. */
    std::uint64_t flaggedBits = 0;
    /** Actually erroneous bits that were flagged (recoverable). */
    std::uint64_t caughtErrors = 0;
    /** Actually erroneous bits that escaped flagging. */
    std::uint64_t missedErrors = 0;
    /** Total payload bits. */
    std::uint64_t totalBits = 0;

    /** Retransmission would repair the packet. */
    bool recoverable() const { return missedErrors == 0; }

    /** Fraction of the packet requested for retransmission. */
    double
    retransmitFraction() const
    {
        return totalBits ? static_cast<double>(flaggedBits) /
                               static_cast<double>(totalBits)
                         : 0.0;
    }
};

/** Per-bit-hint driven partial recovery policy. */
class PprPolicy
{
  public:
    /**
     * @param estimator  Calibrated SoftPHY estimator (not owned).
     * @param ber_threshold Bits with estimated BER above this are
     *                   requested for retransmission.
     * @param chunk_bits Retransmission granularity: flagging any bit
     *                   flags its whole chunk (PPR operates on
     *                   chunks, not single bits).
     */
    PprPolicy(const softphy::BerEstimator *estimator,
              double ber_threshold = 1e-3, int chunk_bits = 32)
        : est(estimator), threshold(ber_threshold),
          chunk(chunk_bits)
    {}

    /**
     * Evaluate PPR on one received packet.
     * @param mod  Modulation (selects the estimator table).
     * @param soft Per-bit decisions with hints.
     * @param ref  Ground-truth payload for outcome accounting.
     */
    PprOutcome evaluate(phy::Modulation mod,
                        const std::vector<SoftDecision> &soft,
                        const BitVec &ref) const;

    /**
     * Zero-copy form over frame-arena views (allocation-free: the
     * chunk scan is restructured so no flag buffer is needed).
     */
    PprOutcome evaluate(phy::Modulation mod,
                        std::span<const SoftDecision> soft,
                        BitView ref) const;

  private:
    const softphy::BerEstimator *est;
    double threshold;
    int chunk;
};

} // namespace mac
} // namespace wilis

#endif // WILIS_MAC_PPR_HH
