/**
 * @file
 * Conventional link-layer Automatic Repeat-reQuest: any bit error
 * forces retransmission of the *entire* packet (section 4's framing
 * of why PPR and SoftRate help). Used as the efficiency baseline for
 * the PPR comparison.
 */

#ifndef WILIS_MAC_ARQ_HH
#define WILIS_MAC_ARQ_HH

#include <cstdint>

namespace wilis {
namespace mac {

/** Transmission bookkeeping for whole-packet ARQ. */
class ArqTracker
{
  public:
    /** @param max_retries Attempts before giving up (0 = infinite). */
    explicit ArqTracker(int max_retries = 8)
        : max_retries_(max_retries)
    {}

    /**
     * Account one packet delivery attempt sequence.
     * @param payload_bits    Packet size.
     * @param attempts_needed Attempts until the first error-free
     *                        reception (>= 1); if it exceeds the
     *                        retry budget, the packet is lost.
     */
    void
    recordPacket(std::uint64_t payload_bits, int attempts_needed)
    {
        ++packets;
        int attempts = attempts_needed;
        if (max_retries_ > 0 && attempts > max_retries_) {
            attempts = max_retries_;
            ++lost;
        } else {
            delivered_bits += payload_bits;
        }
        transmitted_bits +=
            static_cast<std::uint64_t>(attempts) * payload_bits;
    }

    /** Useful bits delivered / bits transmitted. */
    double
    efficiency() const
    {
        return transmitted_bits
                   ? static_cast<double>(delivered_bits) /
                         static_cast<double>(transmitted_bits)
                   : 0.0;
    }

    std::uint64_t packetsSeen() const { return packets; }
    std::uint64_t packetsLost() const { return lost; }
    std::uint64_t bitsTransmitted() const { return transmitted_bits; }
    std::uint64_t bitsDelivered() const { return delivered_bits; }

  private:
    int max_retries_;
    std::uint64_t packets = 0;
    std::uint64_t lost = 0;
    std::uint64_t transmitted_bits = 0;
    std::uint64_t delivered_bits = 0;
};

} // namespace mac
} // namespace wilis

#endif // WILIS_MAC_ARQ_HH
