/**
 * @file
 * Link-layer Automatic Repeat-reQuest.
 *
 * Two components live here:
 *  - ArqTracker: the whole-packet retransmission *accounting* used as
 *    the efficiency baseline for the PPR comparison (section 4's
 *    framing of why PPR and SoftRate help).
 *  - Arq: a sequence-number ARQ state machine (stop-and-wait or
 *    selective-repeat) driven slot-by-slot by the multi-user network
 *    simulator (sim::NetworkSim), with delayed acknowledgements,
 *    windowed transmission, in-order delivery and per-frame latency
 *    bookkeeping.
 */

#ifndef WILIS_MAC_ARQ_HH
#define WILIS_MAC_ARQ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace wilis {
namespace mac {

/** Transmission bookkeeping for whole-packet ARQ. */
class ArqTracker
{
  public:
    /** @param max_retries Attempts before giving up (0 = infinite). */
    explicit ArqTracker(int max_retries = 8)
        : max_retries_(max_retries)
    {}

    /**
     * Account one packet delivery attempt sequence.
     * @param payload_bits    Packet size.
     * @param attempts_needed Attempts until the first error-free
     *                        reception (>= 1); if it exceeds the
     *                        retry budget, the packet is lost.
     */
    void
    recordPacket(std::uint64_t payload_bits, int attempts_needed)
    {
        ++packets;
        int attempts = attempts_needed;
        if (max_retries_ > 0 && attempts > max_retries_) {
            attempts = max_retries_;
            ++lost;
        } else {
            delivered_bits += payload_bits;
        }
        transmitted_bits +=
            static_cast<std::uint64_t>(attempts) * payload_bits;
    }

    /** Useful bits delivered / bits transmitted. */
    double
    efficiency() const
    {
        return transmitted_bits
                   ? static_cast<double>(delivered_bits) /
                         static_cast<double>(transmitted_bits)
                   : 0.0;
    }

    /** Packets accounted so far. */
    std::uint64_t packetsSeen() const { return packets; }
    /** Packets that exhausted the retry budget. */
    std::uint64_t packetsLost() const { return lost; }
    /** Bits sent over the air, retransmissions included. */
    std::uint64_t bitsTransmitted() const { return transmitted_bits; }
    /** Useful payload bits delivered. */
    std::uint64_t bitsDelivered() const { return delivered_bits; }

  private:
    int max_retries_;
    std::uint64_t packets = 0;
    std::uint64_t lost = 0;
    std::uint64_t transmitted_bits = 0;
    std::uint64_t delivered_bits = 0;
};

/** Retransmission discipline of the sequence-number ARQ. */
enum class ArqMode {
    /** One frame in flight; the sender idles until its ACK returns. */
    StopAndWait,
    /**
     * Window of frames in flight; only NACKed frames are resent and
     * out-of-order successes are buffered for in-order delivery.
     */
    SelectiveRepeat,
};

/** Config-file name of @p mode ("stopwait" / "selective"). */
inline const char *
arqModeName(ArqMode mode)
{
    return mode == ArqMode::StopAndWait ? "stopwait" : "selective";
}

/** Inverse of arqModeName(); fatal on unknown names. */
inline ArqMode
arqModeFromName(const std::string &name)
{
    if (name == "stopwait" || name == "stop-and-wait")
        return ArqMode::StopAndWait;
    if (name == "selective" || name == "selective-repeat")
        return ArqMode::SelectiveRepeat;
    wilis_fatal("unknown ARQ mode '%s' (stopwait|selective)",
                name.c_str());
}

/**
 * Sequence-number ARQ state machine for a slotted link.
 *
 * The driver runs one slot at a time:
 *
 *   1. tick(now, out)       -- process acknowledgements that arrive
 *                              this slot; in-order deliveries (and
 *                              drops) are appended to @p out.
 *   2. nextToSend(now, seq) -- ask which sequence number to transmit
 *                              this slot, if any: the oldest NACKed
 *                              frame first, else a new frame if the
 *                              window has room, else idle.
 *   3. onSendResult(seq,ok) -- report the decode outcome of the
 *                              transmission; the resulting ACK/NACK
 *                              becomes visible to tick() at
 *                              now + ackDelaySlots.
 *
 * All state is bounded by the window, so a warmed-up instance
 * performs no heap allocations in steady state (the slot and
 * pending-ack rings are sized at construction).
 */
class Arq
{
  public:
    /** ARQ configuration. */
    struct Config {
        /** Retransmission discipline. */
        ArqMode mode = ArqMode::SelectiveRepeat;
        /** Window size (forced to 1 for StopAndWait). */
        int window = 8;
        /**
         * Total transmission attempts per frame (the first send
         * included) before it is dropped; 0 = never give up.
         */
        int maxAttempts = 8;
        /**
         * Slots between a transmission and its ACK/NACK becoming
         * visible to tick(). 0 means the result is applied
         * immediately in onSendResult() (deliveries still surface
         * at the next tick()).
         */
        std::uint64_t ackDelaySlots = 1;
    };

    /** One frame leaving the ARQ, in sequence order. */
    struct Delivery {
        /** Sequence number. */
        std::uint64_t seq = 0;
        /** Slots from first transmission to delivery. */
        std::uint64_t latencySlots = 0;
        /** Transmission attempts consumed. */
        int attempts = 0;
        /** True if the retry budget was exhausted (frame lost). */
        bool dropped = false;
    };

    explicit Arq(const Config &cfg)
        : cfg_(cfg),
          win(static_cast<size_t>(windowFor(cfg))),
          pending(static_cast<size_t>(windowFor(cfg)))
    {
        wilis_assert(cfg.window >= 1, "ARQ window %d < 1",
                     cfg.window);
        wilis_assert(cfg.maxAttempts >= 0, "ARQ max attempts %d < 0",
                     cfg.maxAttempts);
    }

    /** Effective window size (1 under StopAndWait). */
    int windowSize() const { return static_cast<int>(win.size()); }

    /** Next never-transmitted sequence number. */
    std::uint64_t nextSeq() const { return next_new; }

    /** Next sequence number owed to the in-order delivery stream. */
    std::uint64_t deliverNext() const { return deliver_next; }

    /** Total retransmissions performed so far. */
    std::uint64_t retransmissions() const { return retrans; }

    /**
     * Transmission attempts consumed so far by @p seq. Valid for
     * frames still in the window (transmitted, not yet delivered);
     * 1 right after a frame's first nextToSend() grant.
     */
    int
    attemptsOf(std::uint64_t seq) const
    {
        return win[static_cast<size_t>(
                       seq % static_cast<std::uint64_t>(win.size()))]
            .attempts;
    }

    /**
     * Process acknowledgements arriving at slot @p now and append
     * any frames that become deliverable -- in sequence order -- to
     * @p out. Must be called with non-decreasing @p now.
     */
    void
    tick(std::uint64_t now, std::vector<Delivery> &out)
    {
        while (pending_count > 0 &&
               pending[pending_head].dueSlot <= now) {
            const PendingAck &ack = pending[pending_head];
            resolve(slotFor(ack.seq), ack.ok);
            pending_head = (pending_head + 1) % pending.size();
            --pending_count;
        }
        drainDeliverable(now, out);
    }

    /** True if a NACKed frame is waiting for retransmission. */
    bool hasResend() const { return resend_count > 0; }

    /**
     * Slot at which the oldest in-flight acknowledgement matures,
     * or UINT64_MAX when none is pending. The pending ring is
     * ordered by due slot (sends happen at strictly increasing
     * slots), so this bounds every queued acknowledgement.
     */
    std::uint64_t
    nextAckDue() const
    {
        return pending_count ? pending[pending_head].dueSlot
                             : UINT64_MAX;
    }

    /** True if the in-order head is already deliverable. */
    bool
    headHasDelivery() const
    {
        if (deliver_next >= next_new)
            return false;
        const Slot &head = win[static_cast<size_t>(
            deliver_next % static_cast<std::uint64_t>(win.size()))];
        return head.state == State::Acked ||
               head.state == State::Failed;
    }

    /**
     * True if tick(@p now) would be a no-op: no acknowledgement has
     * matured and nothing is deliverable. Lets slot-loop drivers
     * skip the per-slot ARQ walk for idle users.
     */
    bool
    quiescentAt(std::uint64_t now) const
    {
        return nextAckDue() > now && !headHasDelivery();
    }

    /** True if the window can admit a never-transmitted frame. */
    bool
    windowHasRoom() const
    {
        return next_new - deliver_next <
               static_cast<std::uint64_t>(win.size());
    }

    /**
     * Sequence number to transmit at slot @p now.
     * @param allow_new Admit a never-transmitted frame when no
     *        retransmission is pending; pass false when the traffic
     *        queue has nothing new to offer (the scheduler-driven
     *        network simulator gates new frames on arrivals).
     * @return false if the link should stay idle this slot (window
     *         stalled on outstanding acknowledgements, or nothing
     *         to send).
     */
    bool
    nextToSend(std::uint64_t now, std::uint64_t &seq,
               bool allow_new = true)
    {
        // Oldest NACKed frame first.
        if (resend_count > 0) {
            for (std::uint64_t s = deliver_next; s < next_new; ++s) {
                Slot &slot = slotFor(s);
                if (slot.state == State::NeedsResend) {
                    slot.state = State::AwaitingAck;
                    --resend_count;
                    slot.sentAt = now;
                    ++slot.attempts;
                    ++retrans;
                    seq = s;
                    return true;
                }
            }
        }
        // Else a new frame if offered and the window has room.
        if (allow_new && windowHasRoom()) {
            Slot &slot = slotFor(next_new);
            slot.state = State::AwaitingAck;
            slot.firstTx = now;
            slot.sentAt = now;
            slot.attempts = 1;
            seq = next_new++;
            return true;
        }
        return false;
    }

    /**
     * Report the decode outcome of the transmission of @p seq handed
     * out by the last nextToSend() call.
     */
    void
    onSendResult(std::uint64_t seq, bool ok)
    {
        Slot &slot = slotFor(seq);
        wilis_assert(slot.state == State::AwaitingAck,
                     "result for seq %llu which is not in flight",
                     static_cast<unsigned long long>(seq));
        if (cfg_.ackDelaySlots == 0) {
            resolve(slot, ok);
            return;
        }
        wilis_assert(pending_count < pending.size(),
                     "ARQ pending-ack ring overflow");
        size_t tail =
            (pending_head + pending_count) % pending.size();
        pending[tail] = PendingAck{seq,
                                   slot.sentAt + cfg_.ackDelaySlots,
                                   ok};
        ++pending_count;
    }

    /**
     * Abort every in-flight frame at slot @p now -- the session
     * teardown of the churn model. Pending acknowledgements are
     * discarded; frames already received clean still deliver in
     * order (their payloads made it), while frames awaiting an
     * acknowledgement or a retransmission fail as dropped.
     * Deliveries append to @p out exactly like tick(), so packet
     * accounting stays conserved across a departure. Afterwards
     * the window is empty (quiescent at any slot) and sequence
     * numbers continue monotonically, so the same instance serves
     * the user's next session without seq reuse.
     */
    void
    abortAll(std::uint64_t now, std::vector<Delivery> &out)
    {
        pending_head = 0;
        pending_count = 0;
        resend_count = 0;
        for (std::uint64_t s = deliver_next; s < next_new; ++s) {
            Slot &slot = slotFor(s);
            if (slot.state == State::AwaitingAck ||
                slot.state == State::NeedsResend)
                slot.state = State::Failed;
        }
        drainDeliverable(now, out);
    }

    /**
     * Serialize the mutable state (checkpoint/resume). The window
     * and the pending-ack ring are written in canonical order --
     * window slots by index, pending acknowledgements oldest first
     * -- so two engines holding equal logical state write equal
     * bytes. The Config is not stored; it is re-derived from the
     * spec on resume.
     */
    void
    saveState(SnapshotWriter &w) const
    {
        w.marker(0x00515241); // "ARQ"
        for (const Slot &slot : win) {
            w.u8(static_cast<std::uint8_t>(slot.state));
            w.u64(slot.firstTx);
            w.u64(slot.sentAt);
            w.i64(slot.attempts);
        }
        w.u64(pending_count);
        for (size_t i = 0; i < pending_count; ++i) {
            const PendingAck &ack =
                pending[(pending_head + i) % pending.size()];
            w.u64(ack.seq);
            w.u64(ack.dueSlot);
            w.u8(ack.ok ? 1 : 0);
        }
        w.i64(resend_count);
        w.u64(next_new);
        w.u64(deliver_next);
        w.u64(retrans);
    }

    /** Restore state written by saveState() (same Config). */
    void
    loadState(SnapshotReader &r)
    {
        r.marker(0x00515241);
        for (Slot &slot : win) {
            const std::uint8_t s = r.u8();
            wilis_assert(
                s <= static_cast<std::uint8_t>(State::Failed),
                "snapshot ARQ slot state %u out of range", s);
            slot.state = static_cast<State>(s);
            slot.firstTx = r.u64();
            slot.sentAt = r.u64();
            slot.attempts = static_cast<int>(r.i64());
        }
        const std::uint64_t n = r.u64();
        wilis_assert(n <= pending.size(),
                     "snapshot ARQ pending count %llu > window %zu",
                     static_cast<unsigned long long>(n),
                     pending.size());
        pending_head = 0;
        pending_count = static_cast<size_t>(n);
        for (size_t i = 0; i < pending_count; ++i) {
            pending[i].seq = r.u64();
            pending[i].dueSlot = r.u64();
            pending[i].ok = r.u8() != 0;
        }
        resend_count = static_cast<int>(r.i64());
        next_new = r.u64();
        deliver_next = r.u64();
        retrans = r.u64();
    }

  private:
    enum class State : std::uint8_t {
        Unused,       // no frame occupies this window slot
        AwaitingAck,  // transmitted, acknowledgement in flight
        NeedsResend,  // NACKed with retry budget remaining
        Acked,        // received clean, awaiting in-order delivery
        Failed,       // retry budget exhausted, awaiting delivery
    };

    struct Slot {
        State state = State::Unused;
        std::uint64_t firstTx = 0;
        std::uint64_t sentAt = 0;
        int attempts = 0;
    };

    struct PendingAck {
        std::uint64_t seq = 0;
        std::uint64_t dueSlot = 0;
        bool ok = false;
    };

    static int
    windowFor(const Config &cfg)
    {
        return cfg.mode == ArqMode::StopAndWait ? 1 : cfg.window;
    }

    Slot &
    slotFor(std::uint64_t seq)
    {
        return win[static_cast<size_t>(
            seq % static_cast<std::uint64_t>(win.size()))];
    }

    void
    resolve(Slot &slot, bool ok)
    {
        // NeedsResend is entered only here and left only in
        // nextToSend(), so a simple counter keeps hasResend() O(1).
        if (ok) {
            slot.state = State::Acked;
        } else if (cfg_.maxAttempts == 0 ||
                   slot.attempts < cfg_.maxAttempts) {
            slot.state = State::NeedsResend;
            ++resend_count;
        } else {
            slot.state = State::Failed;
        }
    }

    void
    drainDeliverable(std::uint64_t now, std::vector<Delivery> &out)
    {
        while (deliver_next < next_new) {
            Slot &head = slotFor(deliver_next);
            if (head.state != State::Acked &&
                head.state != State::Failed)
                break;
            out.push_back(Delivery{deliver_next,
                                   now - head.firstTx,
                                   head.attempts,
                                   head.state == State::Failed});
            head.state = State::Unused;
            ++deliver_next;
        }
    }

    Config cfg_;
    std::vector<Slot> win;
    std::vector<PendingAck> pending; // circular, capacity = window
    size_t pending_head = 0;
    size_t pending_count = 0;
    int resend_count = 0;
    std::uint64_t next_new = 0;
    std::uint64_t deliver_next = 0;
    std::uint64_t retrans = 0;
};

} // namespace mac
} // namespace wilis

#endif // WILIS_MAC_ARQ_HH
