/**
 * @file
 * The SoftRate rate-adaptation MAC (Vutukuru et al., SIGCOMM'09) as
 * evaluated in section 4.4.2: the transmitter observes the per-packet
 * BER estimate the receiver's SoftPHY unit attaches to the (modeled)
 * ARQ acknowledgement, and if the PBER falls outside a pre-computed
 * operating range it immediately steps the rate down or up.
 */

#ifndef WILIS_MAC_SOFTRATE_HH
#define WILIS_MAC_SOFTRATE_HH

#include <cstdint>

#include "common/snapshot.hh"
#include "phy/modulation.hh"

namespace wilis {
namespace mac {

/** SoftRate rate controller state machine. */
class SoftRateMac
{
  public:
    /** Controller thresholds. */
    struct Config {
        /**
         * PBER operating range for the ARQ link layer (section
         * 4.4.2: between 1e-7 and 1e-5). Below lo the channel has
         * headroom -> rate up; above hi errors loom -> rate down.
         */
        double pberLo = 1e-7;
        double pberHi = 1e-5;
        /** Initial rate index. */
        phy::RateIndex initialRate = 0;
    };

    /** Construct with the default thresholds. */
    SoftRateMac() : SoftRateMac(Config()) {}

    /** Construct with explicit thresholds. */
    explicit SoftRateMac(const Config &cfg_) : cfg(cfg_),
        current(cfg_.initialRate)
    {}

    /** Rate to use for the next packet. */
    phy::RateIndex currentRate() const { return current; }

    /**
     * Feed back the receiver's PBER estimate for the last packet;
     * adjusts the rate for future packets.
     * @return the new current rate.
     */
    phy::RateIndex
    onFeedback(double pber)
    {
        if (pber > cfg.pberHi && current > 0) {
            --current;
        } else if (pber < cfg.pberLo &&
                   current < phy::kNumRates - 1) {
            ++current;
        }
        return current;
    }

    /** Reset to the initial rate. */
    void reset() { current = cfg.initialRate; }

    /** Serialize the mutable state (the current rate index). */
    void
    saveState(SnapshotWriter &w) const
    {
        w.i64(static_cast<std::int64_t>(current));
    }

    /** Restore state written by saveState() (same Config). */
    void
    loadState(SnapshotReader &r)
    {
        current = static_cast<phy::RateIndex>(r.i64());
    }

  private:
    Config cfg;
    phy::RateIndex current;
};

} // namespace mac
} // namespace wilis

#endif // WILIS_MAC_SOFTRATE_HH
