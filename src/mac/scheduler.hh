/**
 * @file
 * Per-cell slot scheduler of the multi-cell network simulator: the
 * MAC-level arbitration layer that decides which single user
 * transmits in each cell's slot, instead of every user transmitting
 * every slot ("Modelling MAC-Layer Communications in Wireless
 * Systems" motivates treating this arbitration as a first-class
 * modeled layer).
 *
 * Two disciplines:
 *  - round_robin        -- cycle through the cell's users, skipping
 *    ones with nothing to send; the fairness baseline.
 *  - proportional_fair  -- grant argmax of instantaneous rate over
 *    exponentially averaged served throughput (the classic PF
 *    metric), trading peak throughput against starvation.
 *
 * Both are pure functions of (cell state, per-slot inputs), with
 * deterministic tie-breaks (lowest user index), so scheduling can
 * never depend on worker sharding.
 */

#ifndef WILIS_MAC_SCHEDULER_HH
#define WILIS_MAC_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/snapshot.hh"

namespace wilis {
namespace mac {

/** Arbitration discipline of a cell's slot scheduler. */
enum class SchedulerKind {
    /** Cyclic grants over backlogged users. */
    RoundRobin,
    /** Instantaneous rate / average throughput argmax. */
    ProportionalFair,
};

/** Config-file name ("round_robin" / "proportional_fair"). */
const char *schedulerKindName(SchedulerKind kind);

/** Inverse of schedulerKindName(); fatal on unknown names. */
SchedulerKind schedulerKindFromName(const std::string &name);

/**
 * Medium-contention model of a cell (per LL-SimpleWireless's fixed
 * bandwidth sharing): how granting a slot with k contenders charges
 * the cell's airtime.
 */
enum class ContentionMode {
    /** One grant per slot regardless of contenders (ideal TDMA). */
    None,
    /**
     * Fixed 1/k sharing: a grant contested by k eligible users
     * occupies the cell's medium for k slots, so each contender
     * sees 1/k of the bandwidth under sustained contention.
     */
    Fixed,
};

/** Config-file name ("none" / "fixed"). */
const char *contentionModeName(ContentionMode mode);

/** Inverse of contentionModeName(); fatal on unknown names. */
ContentionMode contentionModeFromName(const std::string &name);

/**
 * One cell's scheduler state. Users are addressed by their local
 * index within the cell (0..numUsers-1); the caller owns the
 * mapping to global user ids.
 */
class CellScheduler
{
  public:
    /** Scheduler configuration. */
    struct Config {
        /** Arbitration discipline. */
        SchedulerKind kind = SchedulerKind::RoundRobin;
        /**
         * Proportional-fair averaging horizon in slots (the EWMA
         * time constant of the served-throughput estimate).
         */
        double pfHorizonSlots = 64.0;
        /** Medium-contention model the engines apply per grant. */
        ContentionMode contention = ContentionMode::None;
    };

    /** Build a scheduler for a cell of @p num_users users. */
    CellScheduler(const Config &cfg, int num_users);

    /**
     * Pick the user to grant this slot.
     * @param eligible  Per-user flag: has something to send.
     * @param inst_rate Per-user instantaneous rate estimate; only
     *                  consulted by proportional_fair, and only at
     *                  eligible indices.
     * @param urgent    Optional per-user flag: class-aware
     *                  arbitration. When any eligible user is
     *                  urgent (has queued control traffic), the
     *                  pick is restricted to the eligible-and-
     *                  urgent subset -- control preempts data --
     *                  and the discipline (RR cursor / PF metric)
     *                  operates within that subset. Null or
     *                  all-false behaves exactly like the
     *                  two-argument overload.
     * @return the granted local user index, or -1 if no user is
     *         eligible. Does not mutate state; call update() with
     *         the result to close the slot.
     */
    int pick(const std::vector<std::uint8_t> &eligible,
             const std::vector<double> &inst_rate,
             const std::vector<std::uint8_t> *urgent =
                 nullptr) const;

    /**
     * Close the slot: advance the round-robin cursor / decay the PF
     * throughput averages.
     * @param granted     pick()'s return value (-1 = idle slot).
     * @param served_bits Bits served to the granted user this slot.
     */
    void update(int granted, double served_bits);

    /** PF average served throughput of @p local_user (bits/slot). */
    double averageRate(int local_user) const;

    /**
     * Admit a user at local index @p pos, shifting higher indices
     * up (the engines keep cell membership sorted by global user
     * id, so @p pos is that order's insertion point -- identical in
     * both engines, which is what keeps scheduler state bit-exact
     * across them). The round-robin cursor moves with the user it
     * pointed at; @p avg_rate seeds the proportional-fair
     * throughput average -- the pre-handover value to migrate EWMA
     * state across cells, or 0 for a fresh session.
     */
    void insertUser(int pos, double avg_rate);

    /**
     * Remove the user at local index @p pos, shifting higher
     * indices down (cursor adjustment mirrors insertUser()).
     */
    void removeUser(int pos);

    /**
     * Serialize the mutable state: the round-robin cursor and the
     * PF throughput averages, in local-index order. The instance
     * must be constructed for the same user count before
     * loadState() (the engines rebuild cell membership from the
     * snapshot first).
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore state written by saveState(). */
    void loadState(SnapshotReader &r);

  private:
    Config cfg_;
    int num_users_;
    int cursor_ = 0;          // round robin: last granted + 1
    std::vector<double> avg_; // PF served-throughput EWMA
};

} // namespace mac
} // namespace wilis

#endif // WILIS_MAC_SCHEDULER_HH
