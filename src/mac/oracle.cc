#include "mac/oracle.hh"

namespace wilis {
namespace mac {

RateOracle::RateOracle(const sim::TestbenchConfig &base)
{
    for (int r = 0; r < phy::kNumRates; ++r) {
        sim::TestbenchConfig cfg = base;
        cfg.rate = r;
        benches[static_cast<size_t>(r)] =
            std::make_unique<sim::Testbench>(cfg);
    }
}

int
RateOracle::optimalRate(size_t payload_bits,
                        std::uint64_t packet_index)
{
    for (int r = phy::kNumRates - 1; r >= 0; --r) {
        sim::FrameResult res =
            benches[static_cast<size_t>(r)]->runFrame(payload_bits,
                                                      packet_index);
        if (res.ok)
            return r;
    }
    return -1;
}

sim::PacketResult
RateOracle::runAtRate(phy::RateIndex rate, size_t payload_bits,
                      std::uint64_t packet_index)
{
    return runFrameAtRate(rate, payload_bits, packet_index)
        .toPacketResult();
}

sim::FrameResult
RateOracle::runFrameAtRate(phy::RateIndex rate, size_t payload_bits,
                           std::uint64_t packet_index)
{
    return benches[static_cast<size_t>(rate)]->runFrame(
        payload_bits, packet_index);
}

double
SelectionStats::underPct() const
{
    return total() ? 100.0 * static_cast<double>(under) /
                         static_cast<double>(total())
                   : 0.0;
}

double
SelectionStats::accuratePct() const
{
    return total() ? 100.0 * static_cast<double>(accurate) /
                         static_cast<double>(total())
                   : 0.0;
}

double
SelectionStats::overPct() const
{
    return total() ? 100.0 * static_cast<double>(over) /
                         static_cast<double>(total())
                   : 0.0;
}

} // namespace mac
} // namespace wilis
