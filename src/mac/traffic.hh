/**
 * @file
 * Per-user traffic models and the head-of-line frame queue feeding
 * the per-cell scheduler of the multi-cell network simulator.
 *
 * Three arrival processes are modeled:
 *  - "full_buffer" -- the user always has a frame to send (the
 *    classic capacity-evaluation workload); nothing queues.
 *  - "poisson"     -- frames arrive as an independent Poisson count
 *    per slot with a configurable mean load.
 *  - "onoff"       -- a two-state Markov burst model: geometric ON
 *    and OFF dwell times, Poisson arrivals while ON (the bursty
 *    workload that makes scheduling and queueing visible).
 *
 * Every draw is keyed by (user stream, slot) through the
 * counter-based generator, and the ON/OFF state evolves once per
 * slot in slot order, so a user's arrival sequence is a pure
 * function of (spec, stream seed) -- bit-identical for any worker
 * thread count, like the rest of the simulator.
 */

#ifndef WILIS_MAC_TRAFFIC_HH
#define WILIS_MAC_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"

namespace wilis {
namespace mac {

/** Arrival process of one user's traffic source. */
enum class TrafficKind {
    /** Always backlogged; frames materialize at service time. */
    FullBuffer,
    /** Independent Poisson frame arrivals per slot. */
    Poisson,
    /** Markov ON/OFF bursts with Poisson arrivals while ON. */
    OnOff,
};

/** Config-file name ("full_buffer" / "poisson" / "onoff"). */
const char *trafficKindName(TrafficKind kind);

/** Inverse of trafficKindName(); fatal on unknown names. */
TrafficKind trafficKindFromName(const std::string &name);

/** Declarative traffic-model parameters (per user). */
struct TrafficSpec {
    /** Arrival process. */
    TrafficKind kind = TrafficKind::FullBuffer;
    /**
     * Mean frame arrivals per slot: the Poisson rate ("poisson"),
     * or the rate while ON ("onoff"). Ignored by "full_buffer".
     */
    double load = 0.5;
    /** Mean ON dwell in slots (geometric; "onoff" only). */
    double onSlots = 32.0;
    /** Mean OFF dwell in slots (geometric; "onoff" only). */
    double offSlots = 96.0;
    /** Frame queue capacity; arrivals beyond it are dropped. */
    int queueLimit = 64;
};

/**
 * One user's arrival process plus bounded FIFO frame queue. The
 * queue stores arrival slots so the scheduler's grant can account
 * head-of-line queueing delay. Drive it once per slot with tick(),
 * in slot order.
 */
class TrafficSource
{
  public:
    /** @param stream_seed Per-user arrival stream key. */
    TrafficSource(const TrafficSpec &spec,
                  std::uint64_t stream_seed);

    /** The parameters in use. */
    const TrafficSpec &spec() const { return spec_; }

    /**
     * Advance to slot @p t: evolve the ON/OFF state, draw this
     * slot's arrivals and enqueue them (dropping overflow). Must be
     * called once per slot with increasing @p t.
     */
    void tick(std::uint64_t t);

    /** True if a frame is ready to send. */
    bool
    backlogged() const
    {
        return spec_.kind == TrafficKind::FullBuffer || depth_ > 0;
    }

    /**
     * Dequeue the head-of-line frame and return its arrival slot
     * (@p now for "full_buffer", whose frames materialize at
     * service). Only valid when backlogged().
     */
    std::uint64_t pop(std::uint64_t now);

    /** Frames currently queued (always 0 for "full_buffer"). */
    int depth() const { return depth_; }

    /** Total frames arrived so far (0 for "full_buffer"). */
    std::uint64_t arrivals() const { return arrivals_; }

    /** Arrivals dropped on a full queue. */
    std::uint64_t drops() const { return drops_; }

    /** True if the ON/OFF chain is currently ON. */
    bool on() const { return on_; }

  private:
    /** Poisson(@p mean) count from this slot's sub-stream. */
    int poissonAt(std::uint64_t t, double mean) const;

    void push(std::uint64_t arrival_slot);

    TrafficSpec spec_;
    CounterRng rng_;
    /**
     * ON/OFF dwell-transition stream, double-forked so it can
     * never collide with the per-slot Poisson sub-streams
     * rng_.fork(t) (a single fork keyed by the raw slot index).
     */
    CounterRng transitions_;
    std::vector<std::uint64_t> queue_; // ring of arrival slots
    int head_ = 0;
    int depth_ = 0;
    bool on_ = false;
    std::uint64_t arrivals_ = 0;
    std::uint64_t drops_ = 0;
};

} // namespace mac
} // namespace wilis

#endif // WILIS_MAC_TRAFFIC_HH
