/**
 * @file
 * Per-user traffic models and the head-of-line packet queue feeding
 * the per-cell scheduler of the multi-cell network simulator.
 *
 * Three arrival processes are modeled:
 *  - "full_buffer" -- the user always has a frame to send (the
 *    classic capacity-evaluation workload); nothing queues.
 *  - "poisson"     -- frames arrive as an independent Poisson count
 *    per slot with a configurable mean load.
 *  - "onoff"       -- a two-state Markov burst model: geometric ON
 *    and OFF dwell times, Poisson arrivals while ON (the bursty
 *    workload that makes scheduling and queueing visible).
 *
 * On top of the data process, a per-slot Poisson *control* stream
 * (controlRate > 0) models the low-volume high-priority plane
 * (beacons, association, ARQ feedback in LL-SimpleWireless terms).
 * Both classes share one bounded queue drained under a pluggable
 * discipline: "fifo" (global arrival order), "priority" (control
 * strictly first) or "drop_head" (fifo service, but overflow evicts
 * the oldest queued packet instead of the arrival).
 *
 * Every draw is keyed by (user stream, slot) through the
 * counter-based generator, and the ON/OFF state evolves once per
 * slot in slot order, so a user's arrival sequence is a pure
 * function of (spec, stream seed) -- bit-identical for any worker
 * thread count, like the rest of the simulator.
 */

#ifndef WILIS_MAC_TRAFFIC_HH
#define WILIS_MAC_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/snapshot.hh"

namespace wilis {
namespace mac {

class PacketTrace; // mac/packet_trace.hh

/** Arrival process of one user's traffic source. */
enum class TrafficKind {
    /** Always backlogged; frames materialize at service time. */
    FullBuffer,
    /** Independent Poisson frame arrivals per slot. */
    Poisson,
    /** Markov ON/OFF bursts with Poisson arrivals while ON. */
    OnOff,
};

/** Config-file name ("full_buffer" / "poisson" / "onoff"). */
const char *trafficKindName(TrafficKind kind);

/** Inverse of trafficKindName(); fatal on unknown names. */
TrafficKind trafficKindFromName(const std::string &name);

/** Traffic class of one packet. */
enum class TrafficClass : std::uint8_t {
    /** Control plane: low volume, scheduled ahead of data. */
    Control,
    /** Data plane: the bulk traffic the arrival model generates. */
    Data,
};

/** Trace-file name of @p cls ("ctrl" / "data"). */
const char *trafficClassName(TrafficClass cls);

/** Inverse of trafficClassName(); fatal on unknown names. */
TrafficClass trafficClassFromName(const std::string &name);

/** Queue discipline of the shared bounded packet queue. */
enum class QdiscKind {
    /** Serve in global arrival order; overflow drops the arrival. */
    Fifo,
    /**
     * Serve every queued control packet before any data packet
     * (arrival order within each class); overflow drops the
     * arrival.
     */
    StrictPriority,
    /**
     * Serve in global arrival order, but overflow evicts the
     * oldest queued packet to admit the arrival (fresh packets
     * beat stale ones under congestion).
     */
    DropHead,
};

/** Config-file name ("fifo" / "priority" / "drop_head"). */
const char *qdiscKindName(QdiscKind kind);

/** Inverse of qdiscKindName(); fatal on unknown names. */
QdiscKind qdiscKindFromName(const std::string &name);

/** Declarative traffic-model parameters (per user). */
struct TrafficSpec {
    /** Arrival process of the data class. */
    TrafficKind kind = TrafficKind::FullBuffer;
    /**
     * Mean frame arrivals per slot: the Poisson rate ("poisson"),
     * or the rate while ON ("onoff"). Ignored by "full_buffer".
     */
    double load = 0.5;
    /** Mean ON dwell in slots (geometric; "onoff" only). */
    double onSlots = 32.0;
    /** Mean OFF dwell in slots (geometric; "onoff" only). */
    double offSlots = 96.0;
    /** Shared packet-queue capacity across both classes. */
    int queueLimit = 64;
    /** Queue discipline of the shared bounded queue. */
    QdiscKind qdisc = QdiscKind::Fifo;
    /**
     * Mean control-class Poisson arrivals per slot; 0 disables the
     * control plane (the default, preserving pre-class behavior
     * bit for bit).
     */
    double controlRate = 0.0;
};

/**
 * One queued or dequeued packet: its arrival slot (so the grant can
 * account head-of-line delay), its per-user sequence number
 * (assigned in arrival order, control before data within a slot)
 * and its class.
 */
struct Packet {
    /** Arrival slot. */
    std::uint64_t arrival = 0;
    /** Per-user packet sequence number (arrival order). */
    std::uint64_t seq = 0;
    /** Traffic class. */
    TrafficClass cls = TrafficClass::Data;
};

/**
 * One user's arrival processes plus the shared bounded packet
 * queue. Drive it once per slot with tick(), in slot order; pop()
 * dequeues under the configured discipline. When a PacketTrace is
 * bound, enqueues and queue drops are recorded as they happen.
 */
class TrafficSource
{
  public:
    /** @param stream_seed Per-user arrival stream key. */
    TrafficSource(const TrafficSpec &spec,
                  std::uint64_t stream_seed);

    /** The parameters in use. */
    const TrafficSpec &spec() const { return spec_; }

    /**
     * Record enqueue/drop events into @p trace (null detaches).
     * @param shard Trace recording lane (the caller's cell/user).
     * @param cell  Serving cell stamped on events.
     * @param user  Global user id stamped on events.
     */
    void
    bindTrace(PacketTrace *trace, int shard, int cell, int user)
    {
        trace_ = trace;
        traceShard_ = shard;
        traceCell_ = cell;
        traceUser_ = user;
    }

    /**
     * Advance to slot @p t: draw this slot's control arrivals, then
     * evolve the ON/OFF state and draw the data arrivals, enqueuing
     * under the configured discipline. Must be called once per slot
     * with increasing @p t.
     */
    void tick(std::uint64_t t);

    /** True if a packet is ready to send. */
    bool
    backlogged() const
    {
        return spec_.kind == TrafficKind::FullBuffer ||
               ctrl_.depth + data_.depth > 0;
    }

    /**
     * Dequeue the next packet under the configured discipline
     * ("full_buffer" synthesizes a data packet arriving at @p now
     * when the queue is empty). Only valid when backlogged().
     */
    Packet pop(std::uint64_t now);

    /**
     * Flush every queued packet at slot @p now -- the session-
     * departure teardown of the churn model. Each flushed packet
     * records a QueueDrop with arg0 = 2 (churn flush) and counts in
     * drops(), so per-packet trace accounting stays conserved
     * across a departure. Sequence numbers keep incrementing from
     * where they left off, so a rejoining session never reuses a
     * seq.
     * @return the number of packets flushed.
     */
    int flush(std::uint64_t now);

    /** Packets currently queued across both classes. */
    int depth() const { return ctrl_.depth + data_.depth; }

    /** Control packets currently queued. */
    int ctrlDepth() const { return ctrl_.depth; }

    /** True if a control packet is waiting (the urgency flag). */
    bool controlBacklogged() const { return ctrl_.depth > 0; }

    /** Total packets arrived so far (both classes). */
    std::uint64_t arrivals() const { return arrivals_; }

    /** Packets dropped on a full queue (either flavor). */
    std::uint64_t drops() const { return drops_; }

    /** True if the ON/OFF chain is currently ON. */
    bool on() const { return on_; }

    /**
     * Serialize the mutable state: the ON/OFF phase, both packet
     * rings (queued packets oldest first) and the arrival/drop/seq
     * counters. The RNG streams are counter-based -- pure functions
     * of (seed, slot) -- so no generator state is stored; resume at
     * slot t redraws exactly the arrivals an uninterrupted run
     * would. Trace bindings are not stored: the engine re-binds
     * after loadState().
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore state written by saveState() (same spec and seed). */
    void loadState(SnapshotReader &r);

  private:
    /** One class's ring of queued packets (arrival order). */
    struct Ring {
        int head = 0;
        int depth = 0;
        std::vector<Packet> slots;

        const Packet &
        front() const
        {
            return slots[static_cast<size_t>(head)];
        }

        Packet
        popFront()
        {
            Packet p = slots[static_cast<size_t>(head)];
            head = (head + 1) % static_cast<int>(slots.size());
            --depth;
            return p;
        }
    };

    /** Poisson(@p mean) count from @p slot_stream. */
    static int poissonFrom(const CounterRng &slot_stream,
                           double mean);

    /** Poisson(@p mean) count from slot @p t's data sub-stream. */
    int poissonAt(std::uint64_t t, double mean) const;

    void push(TrafficClass cls, std::uint64_t arrival_slot);
    void evictOldest(std::uint64_t now);
    /** @p reason is the QueueDrop arg0 code (see PacketEvent). */
    void traceDrop(const Packet &p, std::uint64_t now,
                   std::int64_t reason);

    // Member order is deliberate: the engines call tick() and
    // backlogged() for every user every slot, and with 10k+ sources
    // scanned per slot the idle path must stay within the first two
    // cache lines -- spec_/rng_/transitions_/on_ plus the ring
    // head/depth words. Arrival-only state (counters, the control
    // stream, the ring payloads, trace plumbing) sits behind them.
    TrafficSpec spec_;
    CounterRng rng_;
    /**
     * ON/OFF dwell-transition stream, double-forked so it can
     * never collide with the per-slot Poisson sub-streams
     * rng_.fork(t) (a single fork keyed by the raw slot index).
     */
    CounterRng transitions_;
    bool on_ = false;
    Ring ctrl_; // control class (controlRate > 0 only)
    Ring data_; // data class (non-full-buffer kinds only)
    std::uint64_t arrivals_ = 0;
    std::uint64_t drops_ = 0;
    /** Next per-user packet sequence number (arrival order). */
    std::uint64_t pktSeq_ = 0;
    /**
     * Control-arrival stream root: the same double-fork family as
     * transitions_ with a distinct second key, forked once more per
     * slot for the control Poisson draws -- disjoint from both the
     * data sub-streams and the dwell draws.
     */
    CounterRng ctrlRng_;
    PacketTrace *trace_ = nullptr;
    int traceShard_ = 0;
    int traceCell_ = 0;
    int traceUser_ = 0;
};

} // namespace mac
} // namespace wilis

#endif // WILIS_MAC_TRAFFIC_HH
