#include "mac/traffic.hh"

#include <cmath>

#include "mac/packet_trace.hh"

namespace wilis {
namespace mac {

const char *
trafficKindName(TrafficKind kind)
{
    switch (kind) {
      case TrafficKind::FullBuffer:
        return "full_buffer";
      case TrafficKind::Poisson:
        return "poisson";
      case TrafficKind::OnOff:
        return "onoff";
    }
    return "?";
}

TrafficKind
trafficKindFromName(const std::string &name)
{
    if (name == "full_buffer")
        return TrafficKind::FullBuffer;
    if (name == "poisson")
        return TrafficKind::Poisson;
    if (name == "onoff")
        return TrafficKind::OnOff;
    wilis_fatal("unknown traffic model '%s' "
                "(full_buffer|poisson|onoff)",
                name.c_str());
}

const char *
trafficClassName(TrafficClass cls)
{
    return cls == TrafficClass::Control ? "ctrl" : "data";
}

TrafficClass
trafficClassFromName(const std::string &name)
{
    if (name == "ctrl")
        return TrafficClass::Control;
    if (name == "data")
        return TrafficClass::Data;
    wilis_fatal("unknown traffic class '%s' (ctrl|data)",
                name.c_str());
}

const char *
qdiscKindName(QdiscKind kind)
{
    switch (kind) {
      case QdiscKind::Fifo:
        return "fifo";
      case QdiscKind::StrictPriority:
        return "priority";
      case QdiscKind::DropHead:
        return "drop_head";
    }
    return "?";
}

QdiscKind
qdiscKindFromName(const std::string &name)
{
    if (name == "fifo")
        return QdiscKind::Fifo;
    if (name == "priority" || name == "strict_priority")
        return QdiscKind::StrictPriority;
    if (name == "drop_head")
        return QdiscKind::DropHead;
    wilis_fatal("unknown queue discipline '%s' "
                "(fifo|priority|drop_head)",
                name.c_str());
}

TrafficSource::TrafficSource(const TrafficSpec &spec,
                             std::uint64_t stream_seed)
    : spec_(spec), rng_(stream_seed),
      transitions_(rng_.fork(0x70661Eull).fork(0xD11ull)),
      ctrlRng_(rng_.fork(0x70661Eull).fork(0xC7A1ull))
{
    // The upper bound keeps Knuth's product sampler in its working
    // range (exp(-load) underflows near 708 and the loop would
    // return underflow counts, not Poisson draws); dozens of frame
    // arrivals per user per slot is already far beyond any cell's
    // service rate.
    wilis_assert(spec_.load >= 0.0 && spec_.load <= 64.0,
                 "traffic load %g outside [0, 64] frames/slot",
                 spec_.load);
    wilis_assert(spec_.controlRate >= 0.0 &&
                     spec_.controlRate <= 64.0,
                 "control rate %g outside [0, 64] frames/slot",
                 spec_.controlRate);
    wilis_assert(spec_.queueLimit >= 1, "queue limit %d < 1",
                 spec_.queueLimit);
    wilis_assert(spec_.onSlots >= 1.0 && spec_.offSlots >= 1.0,
                 "ON/OFF dwell means (%g, %g) must be >= 1 slot",
                 spec_.onSlots, spec_.offSlots);
    // Each ring holds at most queueLimit packets because the limit
    // bounds the *total* depth across both classes.
    if (spec_.kind != TrafficKind::FullBuffer)
        data_.slots.resize(static_cast<size_t>(spec_.queueLimit));
    if (spec_.controlRate > 0.0)
        ctrl_.slots.resize(static_cast<size_t>(spec_.queueLimit));
    // Start the ON/OFF chain in its stationary distribution so a
    // cell's initial load is representative, not synchronized.
    if (spec_.kind == TrafficKind::OnOff)
        on_ = rng_.doubleAt(0x0FF0Full) <
              spec_.onSlots / (spec_.onSlots + spec_.offSlots);
}

int
TrafficSource::poissonFrom(const CounterRng &slot_stream,
                           double mean)
{
    // Knuth's product-of-uniforms sampler on the slot's own
    // sub-stream; the draw count varies per slot, which is why each
    // slot forks its own counter space.
    const double limit = std::exp(-mean);
    double prod = 1.0;
    int k = 0;
    do {
        prod *= slot_stream.doubleAt(static_cast<std::uint64_t>(k));
        ++k;
    } while (prod > limit);
    return k - 1;
}

int
TrafficSource::poissonAt(std::uint64_t t, double mean) const
{
    return poissonFrom(rng_.fork(t), mean);
}

void
TrafficSource::traceDrop(const Packet &p, std::uint64_t now,
                         std::int64_t reason)
{
    if (!trace_)
        return;
    trace_->record(
        traceShard_,
        PacketTrace::Entry{now, traceCell_, traceUser_, p.cls,
                           p.seq, PacketEvent::QueueDrop, reason,
                           static_cast<std::int64_t>(now -
                                                     p.arrival)});
}

void
TrafficSource::evictOldest(std::uint64_t now)
{
    // Global-oldest across both rings: sequence numbers are
    // assigned in arrival order, so the smaller head seq is the
    // older packet.
    Ring &r = ctrl_.depth == 0 ? data_
              : data_.depth == 0
                  ? ctrl_
                  : (ctrl_.front().seq < data_.front().seq ? ctrl_
                                                           : data_);
    const Packet victim = r.popFront();
    ++drops_;
    traceDrop(victim, now, 1);
}

int
TrafficSource::flush(std::uint64_t now)
{
    int flushed = 0;
    for (Ring *r : {&ctrl_, &data_}) {
        while (r->depth > 0) {
            const Packet p = r->popFront();
            ++drops_;
            ++flushed;
            traceDrop(p, now, 2);
        }
    }
    return flushed;
}

void
TrafficSource::push(TrafficClass cls, std::uint64_t arrival_slot)
{
    ++arrivals_;
    const Packet p{arrival_slot, pktSeq_++, cls};
    if (ctrl_.depth + data_.depth >= spec_.queueLimit) {
        if (spec_.qdisc == QdiscKind::DropHead) {
            evictOldest(arrival_slot);
        } else {
            // fifo/priority drop the arrival (tail drop).
            ++drops_;
            traceDrop(p, arrival_slot, 0);
            return;
        }
    }
    Ring &r = cls == TrafficClass::Control ? ctrl_ : data_;
    const int tail =
        (r.head + r.depth) % static_cast<int>(r.slots.size());
    r.slots[static_cast<size_t>(tail)] = p;
    ++r.depth;
    if (trace_)
        trace_->record(
            traceShard_,
            PacketTrace::Entry{arrival_slot, traceCell_,
                               traceUser_, cls, p.seq,
                               PacketEvent::Enqueue,
                               ctrl_.depth + data_.depth, 0});
}

void
TrafficSource::tick(std::uint64_t t)
{
    // Control arrivals first, so a same-slot control packet sorts
    // ahead of the slot's data arrivals in sequence order.
    if (spec_.controlRate > 0.0) {
        const int n =
            poissonFrom(ctrlRng_.fork(t), spec_.controlRate);
        for (int i = 0; i < n; ++i)
            push(TrafficClass::Control, t);
    }
    switch (spec_.kind) {
      case TrafficKind::FullBuffer:
        return;
      case TrafficKind::Poisson: {
        const int n = poissonAt(t, spec_.load);
        for (int i = 0; i < n; ++i)
            push(TrafficClass::Data, t);
        return;
      }
      case TrafficKind::OnOff:
        break;
    }
    // Geometric dwell times: one keyed transition draw per slot,
    // evaluated before this slot's arrivals so a freshly started
    // burst delivers immediately.
    const double u = transitions_.doubleAt(t);
    if (on_) {
        if (u < 1.0 / spec_.onSlots)
            on_ = false;
    } else {
        if (u < 1.0 / spec_.offSlots)
            on_ = true;
    }
    if (on_) {
        const int n = poissonAt(t, spec_.load);
        for (int i = 0; i < n; ++i)
            push(TrafficClass::Data, t);
    }
}

namespace {

void
saveRing(SnapshotWriter &w, int depth, int head,
         const std::vector<Packet> &slots)
{
    w.u64(static_cast<std::uint64_t>(depth));
    for (int i = 0; i < depth; ++i) {
        const Packet &p =
            slots[static_cast<size_t>((head + i) %
                                      static_cast<int>(
                                          slots.size()))];
        w.u64(p.arrival);
        w.u64(p.seq);
        w.u8(static_cast<std::uint8_t>(p.cls));
    }
}

void
loadRing(SnapshotReader &r, int &depth, int &head,
         std::vector<Packet> &slots)
{
    const std::uint64_t n = r.u64();
    wilis_assert(n <= slots.size(),
                 "snapshot queue depth %llu > ring capacity %zu",
                 static_cast<unsigned long long>(n), slots.size());
    head = 0;
    depth = static_cast<int>(n);
    for (int i = 0; i < depth; ++i) {
        Packet &p = slots[static_cast<size_t>(i)];
        p.arrival = r.u64();
        p.seq = r.u64();
        p.cls = static_cast<TrafficClass>(r.u8());
    }
}

} // namespace

void
TrafficSource::saveState(SnapshotWriter &w) const
{
    w.marker(0x46464152); // "RAFF"
    w.u8(on_ ? 1 : 0);
    saveRing(w, ctrl_.depth, ctrl_.head, ctrl_.slots);
    saveRing(w, data_.depth, data_.head, data_.slots);
    w.u64(arrivals_);
    w.u64(drops_);
    w.u64(pktSeq_);
}

void
TrafficSource::loadState(SnapshotReader &r)
{
    r.marker(0x46464152);
    on_ = r.u8() != 0;
    loadRing(r, ctrl_.depth, ctrl_.head, ctrl_.slots);
    loadRing(r, data_.depth, data_.head, data_.slots);
    arrivals_ = r.u64();
    drops_ = r.u64();
    pktSeq_ = r.u64();
}

Packet
TrafficSource::pop(std::uint64_t now)
{
    if (ctrl_.depth > 0) {
        // Strict priority always serves control first; fifo and
        // drop_head serve the globally oldest head.
        if (spec_.qdisc == QdiscKind::StrictPriority ||
            data_.depth == 0 ||
            ctrl_.front().seq < data_.front().seq)
            return ctrl_.popFront();
    }
    if (spec_.kind == TrafficKind::FullBuffer)
        return Packet{now, pktSeq_++, TrafficClass::Data};
    wilis_assert(data_.depth > 0,
                 "pop() from an empty traffic queue");
    return data_.popFront();
}

} // namespace mac
} // namespace wilis
