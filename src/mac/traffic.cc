#include "mac/traffic.hh"

#include <cmath>

namespace wilis {
namespace mac {

const char *
trafficKindName(TrafficKind kind)
{
    switch (kind) {
      case TrafficKind::FullBuffer:
        return "full_buffer";
      case TrafficKind::Poisson:
        return "poisson";
      case TrafficKind::OnOff:
        return "onoff";
    }
    return "?";
}

TrafficKind
trafficKindFromName(const std::string &name)
{
    if (name == "full_buffer")
        return TrafficKind::FullBuffer;
    if (name == "poisson")
        return TrafficKind::Poisson;
    if (name == "onoff")
        return TrafficKind::OnOff;
    wilis_fatal("unknown traffic model '%s' "
                "(full_buffer|poisson|onoff)",
                name.c_str());
}

TrafficSource::TrafficSource(const TrafficSpec &spec,
                             std::uint64_t stream_seed)
    : spec_(spec), rng_(stream_seed),
      transitions_(rng_.fork(0x70661Eull).fork(0xD11ull))
{
    // The upper bound keeps Knuth's product sampler in its working
    // range (exp(-load) underflows near 708 and the loop would
    // return underflow counts, not Poisson draws); dozens of frame
    // arrivals per user per slot is already far beyond any cell's
    // service rate.
    wilis_assert(spec_.load >= 0.0 && spec_.load <= 64.0,
                 "traffic load %g outside [0, 64] frames/slot",
                 spec_.load);
    wilis_assert(spec_.queueLimit >= 1, "queue limit %d < 1",
                 spec_.queueLimit);
    wilis_assert(spec_.onSlots >= 1.0 && spec_.offSlots >= 1.0,
                 "ON/OFF dwell means (%g, %g) must be >= 1 slot",
                 spec_.onSlots, spec_.offSlots);
    if (spec_.kind != TrafficKind::FullBuffer)
        queue_.resize(static_cast<size_t>(spec_.queueLimit));
    // Start the ON/OFF chain in its stationary distribution so a
    // cell's initial load is representative, not synchronized.
    if (spec_.kind == TrafficKind::OnOff)
        on_ = rng_.doubleAt(0x0FF0Full) <
              spec_.onSlots / (spec_.onSlots + spec_.offSlots);
}

int
TrafficSource::poissonAt(std::uint64_t t, double mean) const
{
    // Knuth's product-of-uniforms sampler on the slot's own
    // sub-stream; the draw count varies per slot, which is why each
    // slot forks its own counter space.
    const CounterRng slot = rng_.fork(t);
    const double limit = std::exp(-mean);
    double prod = 1.0;
    int k = 0;
    do {
        prod *= slot.doubleAt(static_cast<std::uint64_t>(k));
        ++k;
    } while (prod > limit);
    return k - 1;
}

void
TrafficSource::push(std::uint64_t arrival_slot)
{
    ++arrivals_;
    if (depth_ >= spec_.queueLimit) {
        ++drops_;
        return;
    }
    const int tail =
        (head_ + depth_) % static_cast<int>(queue_.size());
    queue_[static_cast<size_t>(tail)] = arrival_slot;
    ++depth_;
}

void
TrafficSource::tick(std::uint64_t t)
{
    switch (spec_.kind) {
      case TrafficKind::FullBuffer:
        return;
      case TrafficKind::Poisson: {
        const int n = poissonAt(t, spec_.load);
        for (int i = 0; i < n; ++i)
            push(t);
        return;
      }
      case TrafficKind::OnOff:
        break;
    }
    // Geometric dwell times: one keyed transition draw per slot,
    // evaluated before this slot's arrivals so a freshly started
    // burst delivers immediately.
    const double u = transitions_.doubleAt(t);
    if (on_) {
        if (u < 1.0 / spec_.onSlots)
            on_ = false;
    } else {
        if (u < 1.0 / spec_.offSlots)
            on_ = true;
    }
    if (on_) {
        const int n = poissonAt(t, spec_.load);
        for (int i = 0; i < n; ++i)
            push(t);
    }
}

std::uint64_t
TrafficSource::pop(std::uint64_t now)
{
    if (spec_.kind == TrafficKind::FullBuffer)
        return now;
    wilis_assert(depth_ > 0, "pop() from an empty traffic queue");
    const std::uint64_t arrival =
        queue_[static_cast<size_t>(head_)];
    head_ = (head_ + 1) % static_cast<int>(queue_.size());
    --depth_;
    return arrival;
}

} // namespace mac
} // namespace wilis
