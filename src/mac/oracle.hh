/**
 * @file
 * Optimal-rate oracle for the Figure 7 experiment: "We consider the
 * optimal rate to be the highest rate at which a packet would be
 * successfully received with no errors." The oracle replays the
 * *same* packet index -- and hence, through the counter-based
 * channel, the same noise and fading -- at every candidate rate.
 */

#ifndef WILIS_MAC_ORACLE_HH
#define WILIS_MAC_ORACLE_HH

#include <array>
#include <cstdint>
#include <memory>

#include "sim/testbench.hh"

namespace wilis {
namespace mac {

/**
 * Owns one testbench per rate (all sharing the channel
 * configuration) and answers optimal-rate queries.
 */
class RateOracle
{
  public:
    /**
     * @param base Configuration whose rate field is overridden per
     *             candidate; channel and seeds are shared so replay
     *             sees identical impairments.
     */
    explicit RateOracle(const sim::TestbenchConfig &base);

    /**
     * Highest rate index at which @p packet_index is received with
     * zero payload errors; -1 if no rate succeeds. Runs on the
     * zero-copy frame path (each candidate bench reuses its arena).
     */
    int optimalRate(size_t payload_bits, std::uint64_t packet_index);

    /** Run one packet at an explicit rate (shares the testbenches). */
    sim::PacketResult runAtRate(phy::RateIndex rate,
                                size_t payload_bits,
                                std::uint64_t packet_index);

    /**
     * Zero-copy form of runAtRate(): views die at the next call on
     * the same rate's testbench.
     */
    sim::FrameResult runFrameAtRate(phy::RateIndex rate,
                                    size_t payload_bits,
                                    std::uint64_t packet_index);

  private:
    std::array<std::unique_ptr<sim::Testbench>, phy::kNumRates>
        benches;
};

/** Selection outcome relative to the oracle (Figure 7 categories). */
enum class RateSelection { Underselect, Accurate, Overselect };

/** Tally of selection outcomes. */
struct SelectionStats {
    /** Packets where the controller chose below the oracle. */
    std::uint64_t under = 0;
    /** Packets where the controller matched the oracle. */
    std::uint64_t accurate = 0;
    /** Packets where the controller chose above the oracle. */
    std::uint64_t over = 0;

    /** Total packets judged. */
    std::uint64_t total() const { return under + accurate + over; }
    /** Underselections as a percentage of total() (0 if empty). */
    double underPct() const;
    /** Accurate selections as a percentage of total(). */
    double accuratePct() const;
    /** Overselections as a percentage of total(). */
    double overPct() const;

    /** Count one classified selection. */
    void
    record(RateSelection s)
    {
        switch (s) {
          case RateSelection::Underselect:
            ++under;
            break;
          case RateSelection::Accurate:
            ++accurate;
            break;
          case RateSelection::Overselect:
            ++over;
            break;
        }
    }
};

/** Classify @p chosen against @p optimal. */
inline RateSelection
classifySelection(int chosen, int optimal)
{
    if (chosen < optimal)
        return RateSelection::Underselect;
    if (chosen > optimal)
        return RateSelection::Overselect;
    return RateSelection::Accurate;
}

} // namespace mac
} // namespace wilis

#endif // WILIS_MAC_ORACLE_HH
