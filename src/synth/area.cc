#include "synth/area.hh"

#include <cmath>

#include "common/logging.hh"

namespace wilis {
namespace synth {

// Calibration coefficients. Fitted so that the default parameters
// (64 states, 6-bit soft inputs, 11-bit wide metrics, window/block
// 64) reproduce the paper's Figure 8 synthesis table; the scaling
// *forms* (what multiplies what) follow the block structure described
// in sections 4.3.1/4.3.2.
namespace {
constexpr double kBmuLutsPerBit = 8.0;
constexpr double kBmuLutsBase = 15.0;
constexpr double kBmuRegsPerBit = 7.0;
constexpr double kBmuRegsBase = -1.0;

constexpr double kAcsLutsPerMetricBit = 6.0;
constexpr double kAcsLutsBase = 7.0;

constexpr double kTbLutsPerCell = 1.25;
constexpr double kTbLutsBase = 24.0;
constexpr double kTbRegsPerCell = 0.96;

constexpr double kSoftTbLutsPerRelBit = 12.0;
constexpr double kSoftTbRegsPerRelBit = 13.5;
constexpr double kSpdLutsPerRelBit = 10.5;
constexpr double kSpdRegsPerRelBit = 6.7;

constexpr double kRevBufLutsPerEntry = 135.0 / 470.0; // per entry-bit
constexpr double kSduLutsPerStateBit = 9.3;
constexpr double kSduRegsPerStateBit = 1.17;

constexpr double kBcjrFifoLutsPerBit = 2.2;
constexpr double kBcjrFifoRegsPerBit = 3.0;
constexpr double kBcjrCtrlLutsPerState = 17.0;
constexpr double kBcjrAlphaPipeRegsPerStateBit = 3.5;

long
li(double v)
{
    return static_cast<long>(std::lround(v));
}
} // namespace

AreaEstimate
bmuArea(int soft_width)
{
    return {li(kBmuLutsPerBit * soft_width + kBmuLutsBase),
            li(kBmuRegsPerBit * soft_width + kBmuRegsBase)};
}

AreaEstimate
pmuArea(int states, int metric_width, bool registered_metrics)
{
    AreaEstimate a;
    a.luts = li(states * (kAcsLutsPerMetricBit * metric_width +
                          kAcsLutsBase));
    a.registers = registered_metrics ? states * metric_width : 0;
    return a;
}

AreaEstimate
tracebackArea(int states, int window)
{
    double cells = static_cast<double>(states) * window;
    return {li(kTbLutsPerCell * cells + kTbLutsBase),
            li(kTbRegsPerCell * cells)};
}

AreaEstimate
softPathDetectArea(int window, int rel_width)
{
    double relbits = static_cast<double>(window) * rel_width;
    return {li(kSpdLutsPerRelBit * relbits),
            li(kSpdRegsPerRelBit * relbits)};
}

AreaEstimate
softTracebackArea(int states, int window, int rel_width)
{
    // Trace memory + simultaneous two-path traceback + reliability
    // update/storage (includes the soft path detector).
    double cells = static_cast<double>(states) * window;
    double relbits = static_cast<double>(window) * rel_width;
    return {li(kTbLutsPerCell * cells + kSoftTbLutsPerRelBit * relbits),
            li(kTbRegsPerCell * cells +
               kSoftTbRegsPerRelBit * relbits)};
}

AreaEstimate
delayBufferArea(int depth, int width)
{
    double bits = static_cast<double>(depth) * width;
    return {li(bits / 16.0), li(bits)};
}

AreaEstimate
reversalBufferArea(int depth, int entry_width)
{
    double bits = static_cast<double>(depth) * entry_width;
    return {li(kRevBufLutsPerEntry * bits), li(bits)};
}

AreaEstimate
softDecisionUnitArea(int states, int metric_width)
{
    double sb = static_cast<double>(states) * metric_width;
    return {li(kSduLutsPerStateBit * sb), li(kSduRegsPerStateBit * sb)};
}

std::vector<AreaRow>
viterbiAreaReport(const DecoderAreaParams &p)
{
    // Hard Viterbi runs the narrow decode-only datapath (the paper's
    // reduced 3-8 bit regime); 5 bits of path metric suffice.
    const int mw_narrow = 5;
    AreaEstimate bmu = bmuArea(p.softWidth);
    AreaEstimate pmu = pmuArea(p.states, mw_narrow, true);
    AreaEstimate tb = tracebackArea(p.states, p.window);

    std::vector<AreaRow> rows;
    rows.push_back({"Viterbi", bmu + pmu + tb, 0});
    rows.push_back({"Traceback Unit", tb, 1});
    rows.push_back({"Path Metric Unit", pmu, 1});
    rows.push_back({"Branch Metric Unit", bmu, 1});
    return rows;
}

std::vector<AreaRow>
sovaAreaReport(const DecoderAreaParams &p)
{
    // SOVA also decodes on a narrow metric path (3 bits beyond the
    // inputs' relative ordering needs), but carries wide reliability
    // values through the soft traceback.
    const int mw_narrow = 3;
    AreaEstimate bmu = bmuArea(p.softWidth);
    AreaEstimate pmu = pmuArea(p.states, mw_narrow, true);
    AreaEstimate soft_tb =
        softTracebackArea(p.states, p.window, p.metricWidth);
    AreaEstimate spd = softPathDetectArea(p.window, p.metricWidth);
    AreaEstimate delay =
        delayBufferArea(2 * p.window, 2 * p.softWidth);

    std::vector<AreaRow> rows;
    rows.push_back({"SOVA", bmu + pmu + soft_tb + delay, 0});
    rows.push_back({"Soft TU", soft_tb, 1});
    rows.push_back({"Soft Path Detect", spd, 1});
    rows.push_back({"Path Metric Unit", pmu, 1});
    rows.push_back({"Delay Buffer", delay, 1});
    rows.push_back({"Branch Metric Unit", bmu, 1});
    return rows;
}

std::vector<AreaRow>
bcjrAreaReport(const DecoderAreaParams &p)
{
    AreaEstimate bmu = bmuArea(p.softWidth);
    AreaEstimate bmu2 = bmu + bmu; // forward + backward gamma
    AreaEstimate pmu1 = pmuArea(p.states, p.metricWidth, false);
    AreaEstimate pmu3 = pmu1 + pmu1 + pmu1; // fwd, bwd, provisional
    // The initial reversal buffer holds raw soft pairs; the final
    // one holds per-step state-metric slices (~470 bits/entry at the
    // default widths).
    AreaEstimate rev_init =
        reversalBufferArea(p.window, 2 * p.softWidth + 29);
    AreaEstimate rev_final = reversalBufferArea(
        p.window, li(p.states * (p.metricWidth * 2.0 / 3.0)));
    AreaEstimate sdu = softDecisionUnitArea(p.states, p.metricWidth);
    // Large FIFO covering the provisional PMU latency plus control.
    double fifo_bits =
        static_cast<double>(p.window) * 2.0 * p.softWidth;
    AreaEstimate fifo = {li(kBcjrFifoLutsPerBit * fifo_bits),
                         li(kBcjrFifoRegsPerBit * fifo_bits)};
    AreaEstimate ctrl = {
        li(kBcjrCtrlLutsPerState * p.states),
        li(kBcjrAlphaPipeRegsPerStateBit * p.states * p.metricWidth)};

    std::vector<AreaRow> rows;
    rows.push_back(
        {"BCJR", bmu2 + pmu3 + rev_init + rev_final + sdu + fifo + ctrl,
         0});
    rows.push_back({"Soft Decision Unit", sdu, 1});
    rows.push_back({"Initial Rev. Buf.", rev_init, 1});
    rows.push_back({"Final Rev. Buf.", rev_final, 1});
    rows.push_back({"Path Metric Unit", pmu1, 1});
    rows.push_back({"Branch Metric Unit", bmu, 1});
    return rows;
}

AreaEstimate
decoderTotal(const std::string &decoder, const DecoderAreaParams &p)
{
    if (decoder == "viterbi")
        return viterbiAreaReport(p)[0].area;
    if (decoder == "sova")
        return sovaAreaReport(p)[0].area;
    if (decoder == "bcjr" || decoder == "bcjr-logmap")
        return bcjrAreaReport(p)[0].area;
    wilis_fatal("no area model for decoder '%s'", decoder.c_str());
}

AreaEstimate
berEstimatorArea()
{
    // Two-level lookup: a 4-entry scale select plus a 256-entry ROM
    // and an output register -- deliberately tiny (section 4.2).
    return {220, 40};
}

long
baselineTransceiverLuts()
{
    // Airblue-class 802.11a/g baseband (both directions: FFT/IFFT,
    // mapper/demapper, (de)interleavers, (de)puncturers, scramblers,
    // sync & channel estimation) with a hard Viterbi decoder.
    return 70000;
}

double
softPhyOverheadPct(const std::string &decoder,
                   const DecoderAreaParams &p)
{
    AreaEstimate dec = decoderTotal(decoder, p);
    AreaEstimate vit = decoderTotal("viterbi", p);
    AreaEstimate est = berEstimatorArea();
    double extra = static_cast<double>(dec.luts - vit.luts + est.luts);
    return 100.0 * extra /
           static_cast<double>(baselineTransceiverLuts());
}

} // namespace synth
} // namespace wilis
