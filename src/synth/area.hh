/**
 * @file
 * Architectural area model: the substitute for the paper's Synplify
 * Pro / Virtex-5 synthesis results (Figure 8). We cannot run FPGA
 * synthesis, so each hardware block's LUT/register cost is modeled
 * as a function of its architectural parameters (trellis states,
 * metric width, traceback window, reversal-buffer depth, soft-input
 * width), with coefficients calibrated against the paper's reported
 * numbers (all storage forced to registers, as in the paper's
 * comparison methodology).
 *
 * What this model preserves -- and what the repo's experiments rely
 * on -- is the *relative* cost structure: BCJR ~ 2x SOVA ~ 4x
 * Viterbi, BCJR's registers dominated by the reversal buffers, and
 * first-order scaling in window/block length and bit widths. The
 * absolute numbers are fitted, not synthesized; see EXPERIMENTS.md.
 */

#ifndef WILIS_SYNTH_AREA_HH
#define WILIS_SYNTH_AREA_HH

#include <string>
#include <vector>

namespace wilis {
namespace synth {

/** LUT / register counts for one block. */
struct AreaEstimate {
    long luts = 0;
    long registers = 0;

    AreaEstimate
    operator+(const AreaEstimate &o) const
    {
        return {luts + o.luts, registers + o.registers};
    }

    AreaEstimate &
    operator+=(const AreaEstimate &o)
    {
        luts += o.luts;
        registers += o.registers;
        return *this;
    }
};

/** One row of a Figure 8 style report. */
struct AreaRow {
    std::string name;
    AreaEstimate area;
    /** 0 = decoder total, 1 = sub-block. */
    int indent = 0;
};

/** Architectural parameters of a decoder instance. */
struct DecoderAreaParams {
    /** Trellis states (64 for K=7). */
    int states = 64;
    /** Demapper soft-input width in bits. */
    int softWidth = 6;
    /**
     * Path-metric datapath width. The paper's point (section 4.1):
     * dropping SNR scaling lets the decode-only path shrink to a few
     * bits, while BER estimation needs the wide path.
     */
    int metricWidth = 11;
    /** Traceback window (Viterbi/SOVA) or block length n (BCJR). */
    int window = 64;
};

/** Branch metric unit (shared by all decoders, section 4.3). */
AreaEstimate bmuArea(int soft_width);

/**
 * Path metric unit: @p states ACS slices of @p metric_width bits.
 * @p registered_metrics false models the BCJR PMUs whose metrics
 * stream through memory instead of a register bank.
 */
AreaEstimate pmuArea(int states, int metric_width,
                     bool registered_metrics);

/** Hard traceback unit (Viterbi). */
AreaEstimate tracebackArea(int states, int window);

/** SOVA soft traceback unit (TU2 + reliability storage). */
AreaEstimate softTracebackArea(int states, int window, int rel_width);

/** SOVA soft path detector (subcomponent of the soft TU). */
AreaEstimate softPathDetectArea(int window, int rel_width);

/** Simple delay buffer of @p depth entries x @p width bits. */
AreaEstimate delayBufferArea(int depth, int width);

/** BCJR reversal buffer of @p depth entries x @p entry_width bits. */
AreaEstimate reversalBufferArea(int depth, int entry_width);

/** BCJR soft decision unit (the SoftPHY subtracter is included). */
AreaEstimate softDecisionUnitArea(int states, int metric_width);

/** Full decoder reports (total + Figure 8 sub-block rows). */
std::vector<AreaRow> viterbiAreaReport(const DecoderAreaParams &p);
std::vector<AreaRow> sovaAreaReport(const DecoderAreaParams &p);
std::vector<AreaRow> bcjrAreaReport(const DecoderAreaParams &p);

/** Decoder total only. */
AreaEstimate decoderTotal(const std::string &decoder,
                          const DecoderAreaParams &p);

/**
 * The two-level lookup BER estimator unit (section 4.2): tiny --
 * two small ROMs and an address mux.
 */
AreaEstimate berEstimatorArea();

/**
 * Modeled LUT count of a complete 802.11a/g transceiver with a hard
 * Viterbi decoder (used for the conclusion's "~10% increase in the
 * size of a transceiver" figure).
 */
long baselineTransceiverLuts();

/**
 * Percentage LUT increase of a full transceiver when the hard
 * Viterbi decoder is replaced by @p decoder plus the BER estimator.
 */
double softPhyOverheadPct(const std::string &decoder,
                          const DecoderAreaParams &p);

/** Latency in microseconds of @p cycles at @p freq_mhz. */
inline double
latencyUs(int cycles, double freq_mhz)
{
    return static_cast<double>(cycles) / freq_mhz;
}

} // namespace synth
} // namespace wilis

#endif // WILIS_SYNTH_AREA_HH
