/**
 * @file
 * Plug-n-play implementation registry (the AWB analog, WiLIS section
 * 2). For any interface type I, Registry<I> maps implementation names
 * to factories taking a Config. Pipelines look implementations up by
 * name at construction time, so swapping e.g. the soft decoder from
 * "sova" to "bcjr" is a configuration change, not a source change.
 */

#ifndef WILIS_LI_REGISTRY_HH
#define WILIS_LI_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "li/config.hh"

namespace wilis {
namespace li {

/**
 * Registry of named factories producing implementations of interface
 * @tparam I. One global registry exists per interface type.
 */
template <typename I>
class Registry
{
  public:
    using Factory = std::function<std::unique_ptr<I>(const Config &)>;

    /** The process-wide registry for interface I. */
    static Registry &
    global()
    {
        static Registry instance;
        return instance;
    }

    /**
     * Register a factory under @p name.
     * @return true (usable as a static initializer).
     */
    bool
    add(const std::string &name, Factory factory)
    {
        wilis_assert(!factories.count(name),
                     "duplicate registration '%s'", name.c_str());
        factories[name] = std::move(factory);
        return true;
    }

    /** True if an implementation named @p name exists. */
    bool has(const std::string &name) const
    {
        return factories.count(name) > 0;
    }

    /** Instantiate @p name with @p cfg; fatal if unknown. */
    std::unique_ptr<I>
    create(const std::string &name, const Config &cfg = Config()) const
    {
        auto it = factories.find(name);
        if (it == factories.end()) {
            wilis_fatal("no implementation '%s' registered (known: %s)",
                        name.c_str(), knownList().c_str());
        }
        return it->second(cfg);
    }

    /** Names of all registered implementations, sorted. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        for (const auto &kv : factories)
            out.push_back(kv.first);
        return out;
    }

  private:
    std::string
    knownList() const
    {
        std::string s;
        for (const auto &kv : factories) {
            if (!s.empty())
                s += ", ";
            s += kv.first;
        }
        return s.empty() ? "<none>" : s;
    }

    std::map<std::string, Factory> factories;
};

/**
 * Register @p impl_class as implementation @p name_str of interface
 * @p iface. The class must have a constructor taking const Config&.
 */
#define WILIS_REGISTER_IMPL(iface, name_str, impl_class) \
    static const bool wilis_reg_##impl_class = \
        ::wilis::li::Registry<iface>::global().add( \
            name_str, \
            [](const ::wilis::li::Config &cfg) \
                -> std::unique_ptr<iface> { \
                return std::make_unique<impl_class>(cfg); \
            })

} // namespace li
} // namespace wilis

#endif // WILIS_LI_REGISTRY_HH
