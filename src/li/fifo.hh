/**
 * @file
 * Bounded FIFOs: the only communication mechanism between latency-
 * insensitive modules (WiLIS section 2, "Latency-Insensitivity").
 *
 * A module may enq() only after checking canEnq(), and deq() only
 * after canDeq(); violating the handshake is a panic, mirroring the
 * guarded-FIFO semantics of Bluespec. FifoBase collects occupancy and
 * stall statistics so the scheduler can detect quiescence and the
 * benches can report back-pressure.
 */

#ifndef WILIS_LI_FIFO_HH
#define WILIS_LI_FIFO_HH

#include <cstdint>
#include <deque>
#include <string>

#include "common/logging.hh"

namespace wilis {
namespace li {

/** Type-erased FIFO interface used by the scheduler and stats. */
class FifoBase
{
  public:
    FifoBase(std::string name_, size_t capacity_)
        : name_str(std::move(name_)), cap(capacity_)
    {
        wilis_assert(cap >= 1, "FIFO '%s' needs capacity >= 1",
                     name_str.c_str());
    }

    virtual ~FifoBase() = default;

    FifoBase(const FifoBase &) = delete;
    FifoBase &operator=(const FifoBase &) = delete;

    /** FIFO instance name (for diagnostics). */
    const std::string &name() const { return name_str; }

    /** Maximum number of buffered elements. */
    size_t capacity() const { return cap; }

    /** Current number of buffered elements. */
    virtual size_t size() const = 0;

    /** True if empty. */
    bool empty() const { return size() == 0; }

    /** True if an element may be enqueued this cycle. */
    virtual bool canEnq() const { return size() < cap; }

    /** True if an element may be dequeued this cycle. */
    virtual bool canDeq() const { return size() > 0; }

    /** Total elements ever enqueued. */
    std::uint64_t enqCount() const { return enqs; }

    /** Producer-side stalls observed (canEnq() false when polled). */
    std::uint64_t fullStalls() const { return full_stalls; }

    /** Consumer-side stalls observed (canDeq() false when polled). */
    std::uint64_t emptyStalls() const { return empty_stalls; }

    /** Record a producer stall (called by modules). */
    void noteFullStall() { ++full_stalls; }

    /** Record a consumer stall (called by modules). */
    void noteEmptyStall() { ++empty_stalls; }

  protected:
    std::string name_str;
    size_t cap;
    std::uint64_t enqs = 0;
    std::uint64_t full_stalls = 0;
    std::uint64_t empty_stalls = 0;
};

/**
 * Typed bounded FIFO.
 *
 * @tparam T element type; moved in and out.
 */
template <typename T>
class Fifo : public FifoBase
{
  public:
    Fifo(std::string name_, size_t capacity_)
        : FifoBase(std::move(name_), capacity_)
    {}

    size_t size() const override { return buf.size(); }

    /** Enqueue one element; panics if full. */
    virtual void
    enq(T value)
    {
        wilis_assert(canEnq(), "enq on full FIFO '%s'",
                     name_str.c_str());
        buf.push_back(std::move(value));
        ++enqs;
    }

    /** Peek at the oldest element; panics if empty. */
    virtual const T &
    first() const
    {
        wilis_assert(canDeq(), "first on empty FIFO '%s'",
                     name_str.c_str());
        return buf.front();
    }

    /** Dequeue the oldest element; panics if empty. */
    virtual T
    deq()
    {
        wilis_assert(canDeq(), "deq on empty FIFO '%s'",
                     name_str.c_str());
        T v = std::move(buf.front());
        buf.pop_front();
        return v;
    }

  protected:
    std::deque<T> buf;
};

} // namespace li
} // namespace wilis

#endif // WILIS_LI_FIFO_HH
