/**
 * @file
 * Cross-clock-domain synchronizing FIFO.
 *
 * When WiLIS connects two modules in different clock domains it
 * automatically inserts a synchronizer (section 2, "Automatic
 * Multi-Clock Support", extending SoftConnections with clock
 * information). We model the standard two-flop synchronizer cost: an
 * element enqueued at time t is not visible at the consumer before
 * t + 2 consumer clock periods.
 */

#ifndef WILIS_LI_SYNC_FIFO_HH
#define WILIS_LI_SYNC_FIFO_HH

#include <deque>

#include "li/clock.hh"
#include "li/fifo.hh"

namespace wilis {
namespace li {

/**
 * Typed FIFO whose elements become visible only after a fixed
 * crossing latency, measured against an externally owned time source.
 */
template <typename T>
class SyncFifo : public Fifo<T>
{
  public:
    /**
     * @param name_       Instance name.
     * @param capacity_   Buffer capacity.
     * @param now_        Pointer to the scheduler's simulated time.
     * @param latency_ps_ Crossing latency in picoseconds.
     */
    SyncFifo(std::string name_, size_t capacity_, const SimTime *now_,
             SimTime latency_ps_)
        : Fifo<T>(std::move(name_), capacity_), now(now_),
          latency_ps(latency_ps_)
    {}

    bool
    canDeq() const override
    {
        return !this->buf.empty() && stamps.front() + latency_ps <= *now;
    }

    void
    enq(T value) override
    {
        stamps.push_back(*now);
        Fifo<T>::enq(std::move(value));
    }

    T
    deq() override
    {
        wilis_assert(canDeq(), "deq on sync FIFO '%s' before element "
                     "crossed domains", this->name().c_str());
        // Dequeue the payload before dropping the timestamp: the base
        // class re-checks canDeq(), which consults stamps.front().
        T v = Fifo<T>::deq();
        stamps.pop_front();
        return v;
    }

    /** Earliest time the head element becomes visible (0 if empty). */
    SimTime
    headReadyAt() const
    {
        return stamps.empty() ? 0 : stamps.front() + latency_ps;
    }

  private:
    std::deque<SimTime> stamps;
    const SimTime *now;
    SimTime latency_ps;
};

} // namespace li
} // namespace wilis

#endif // WILIS_LI_SYNC_FIFO_HH
