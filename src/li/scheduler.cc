#include "li/scheduler.hh"

#include <algorithm>
#include <limits>

namespace wilis {
namespace li {

Scheduler::Scheduler() = default;

ClockDomain *
Scheduler::createDomain(const std::string &name, double freq_mhz)
{
    for (const auto &ds : domains) {
        wilis_assert(ds.domain->name() != name,
                     "duplicate clock domain '%s'", name.c_str());
    }
    DomainState ds;
    ds.domain = std::make_unique<ClockDomain>(name, freq_mhz);
    ClockDomain *raw = ds.domain.get();
    domains.push_back(std::move(ds));
    return raw;
}

Scheduler::DomainState *
Scheduler::findState(ClockDomain *domain)
{
    for (auto &ds : domains) {
        if (ds.domain.get() == domain)
            return &ds;
    }
    wilis_panic("clock domain '%s' not owned by this scheduler",
                domain ? domain->name().c_str() : "<null>");
}

void
Scheduler::add(Module *m, ClockDomain *domain)
{
    DomainState *ds = findState(domain);
    m->setDomain(domain);
    ds->modules.push_back(m);
}

Module *
Scheduler::adopt(std::unique_ptr<Module> m, ClockDomain *domain)
{
    Module *raw = m.get();
    owned_modules.push_back(std::move(m));
    add(raw, domain);
    return raw;
}

bool
Scheduler::step()
{
    wilis_assert(!domains.empty(), "scheduler has no clock domains");

    SimTime earliest = std::numeric_limits<SimTime>::max();
    for (const auto &ds : domains)
        earliest = std::min(earliest, ds.domain->nextEdge());

    now_ps = earliest;

    bool any_progress = false;
    for (auto &ds : domains) {
        if (ds.domain->nextEdge() != earliest)
            continue;
        ds.domain->advance();
        bool domain_progress = false;
        for (Module *m : ds.modules)
            domain_progress |= m->clockedTick();
        if (domain_progress) {
            ds.consecutive_idle = 0;
            any_progress = true;
        } else {
            ++ds.consecutive_idle;
        }
    }
    return any_progress;
}

std::uint64_t
Scheduler::runUntilIdle(int idle_cycles, std::uint64_t max_edges)
{
    // Idle bookkeeping restarts per run: stale counters from a
    // previous quiescent run must not satisfy the exit condition
    // before newly injected work gets a chance to tick.
    for (auto &ds : domains)
        ds.consecutive_idle = 0;

    std::uint64_t edges = 0;
    while (edges < max_edges) {
        step();
        ++edges;
        bool all_idle = true;
        for (const auto &ds : domains) {
            if (ds.consecutive_idle <
                static_cast<std::uint64_t>(idle_cycles)) {
                all_idle = false;
                break;
            }
        }
        if (all_idle)
            break;
    }
    return edges;
}

void
Scheduler::runCycles(ClockDomain *domain, std::uint64_t cycles)
{
    DomainState *ds = findState(domain);
    std::uint64_t target = ds->domain->cycles() + cycles;
    while (ds->domain->cycles() < target)
        step();
}

} // namespace li
} // namespace wilis
