#include "li/config.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace wilis {
namespace li {

namespace {

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

void
parsePair(Config &cfg, const std::string &pair)
{
    std::string p = trim(pair);
    if (p.empty())
        return;
    size_t eq = p.find('=');
    if (eq == std::string::npos) {
        wilis_fatal("malformed config entry '%s' (expected key=value)",
                    p.c_str());
    }
    cfg.set(trim(p.substr(0, eq)), trim(p.substr(eq + 1)));
}

} // namespace

Config
Config::fromString(const std::string &text)
{
    Config cfg;
    std::string token;
    std::istringstream in(text);
    while (std::getline(in, token, ','))
        parsePair(cfg, token);
    return cfg;
}

Config
Config::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        wilis_fatal("cannot open config file '%s'", path.c_str());
    Config cfg;
    std::string line;
    while (std::getline(in, line)) {
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        if (trim(line).empty())
            continue;
        parsePair(cfg, line);
    }
    return cfg;
}

std::string
Config::toString() const
{
    std::string out;
    for (const auto &e : kv) {
        if (!out.empty())
            out += ',';
        out += e.first;
        out += '=';
        out += e.second;
    }
    return out;
}

void
Config::set(const std::string &key, const std::string &value)
{
    kv[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return kv.count(key) > 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
}

long
Config::getInt(const std::string &key, long def) const
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    char *end = nullptr;
    long v = std::strtol(it->second.c_str(), &end, 0);
    if (end == nullptr || *end != '\0')
        wilis_fatal("config key '%s': '%s' is not an integer",
                    key.c_str(), it->second.c_str());
    return v;
}

std::uint64_t
Config::getUint64(const std::string &key, std::uint64_t def) const
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    char *end = nullptr;
    // strtoull would silently wrap a leading minus sign.
    unsigned long long v =
        it->second.find('-') == std::string::npos
            ? std::strtoull(it->second.c_str(), &end, 0)
            : 0;
    if (end == nullptr || *end != '\0')
        wilis_fatal("config key '%s': '%s' is not an unsigned "
                    "integer", key.c_str(), it->second.c_str());
    return static_cast<std::uint64_t>(v);
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0')
        wilis_fatal("config key '%s': '%s' is not a number",
                    key.c_str(), it->second.c_str());
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    wilis_fatal("config key '%s': '%s' is not a boolean", key.c_str(),
                it->second.c_str());
}

} // namespace li
} // namespace wilis
