/**
 * @file
 * Multi-clock scheduler for latency-insensitive pipelines.
 *
 * The scheduler owns clock domains, FIFOs, and (optionally) modules.
 * It advances simulated time edge by edge: at each step the domain(s)
 * with the earliest next clock edge tick all of their modules. This
 * reproduces the WiLIS execution model where e.g. the baseband runs at
 * 35 MHz while the per-bit BER unit runs at 60 MHz (section 3).
 */

#ifndef WILIS_LI_SCHEDULER_HH
#define WILIS_LI_SCHEDULER_HH

#include <memory>
#include <string>
#include <vector>

#include "li/clock.hh"
#include "li/fifo.hh"
#include "li/module.hh"
#include "li/sync_fifo.hh"

namespace wilis {
namespace li {

/** Owns and advances a set of clock domains and their modules. */
class Scheduler
{
  public:
    Scheduler();

    /** Create a clock domain. The scheduler retains ownership. */
    ClockDomain *createDomain(const std::string &name, double freq_mhz);

    /** Register a module (non-owning) in @p domain. */
    void add(Module *m, ClockDomain *domain);

    /** Register a module the scheduler should own, in @p domain. */
    Module *adopt(std::unique_ptr<Module> m, ClockDomain *domain);

    /**
     * Create a FIFO connecting a producer in @p src to a consumer in
     * @p dst. If the domains differ, a SyncFifo with a two-consumer-
     * cycle crossing latency is inserted automatically.
     */
    template <typename T>
    Fifo<T> *
    connectFifo(const std::string &name, size_t capacity,
                ClockDomain *src, ClockDomain *dst)
    {
        std::unique_ptr<Fifo<T>> f;
        if (src == dst || src == nullptr || dst == nullptr) {
            f = std::make_unique<Fifo<T>>(name, capacity);
        } else {
            f = std::make_unique<SyncFifo<T>>(
                name, capacity, &now_ps, 2 * dst->periodPs());
            ++sync_fifo_count;
        }
        Fifo<T> *raw = f.get();
        fifos.push_back(std::move(f));
        return raw;
    }

    /** Current simulated time in picoseconds. */
    SimTime now() const { return now_ps; }

    /** Pointer to simulated time (for externally built SyncFifos). */
    const SimTime *timeSource() const { return &now_ps; }

    /** Number of automatically inserted cross-domain synchronizers. */
    int syncFifoCount() const { return sync_fifo_count; }

    /** All FIFOs created through connectFifo(). */
    const std::vector<std::unique_ptr<FifoBase>> &allFifos() const
    {
        return fifos;
    }

    /**
     * Advance exactly one clock edge (the earliest pending edge over
     * all domains; simultaneous edges all fire).
     * @return true if any ticked module reported progress.
     */
    bool step();

    /**
     * Run until every domain has been idle (no module progress) for
     * @p idle_cycles consecutive cycles, or until @p max_edges edges
     * have fired.
     * @return number of edges executed.
     */
    std::uint64_t runUntilIdle(int idle_cycles = 8,
                               std::uint64_t max_edges = ~0ull);

    /** Run for @p cycles cycles of @p domain. */
    void runCycles(ClockDomain *domain, std::uint64_t cycles);

  private:
    struct DomainState {
        std::unique_ptr<ClockDomain> domain;
        std::vector<Module *> modules;
        std::uint64_t consecutive_idle = 0;
    };

    DomainState *findState(ClockDomain *domain);

    std::vector<DomainState> domains;
    std::vector<std::unique_ptr<Module>> owned_modules;
    std::vector<std::unique_ptr<FifoBase>> fifos;
    SimTime now_ps = 0;
    int sync_fifo_count = 0;
};

} // namespace li
} // namespace wilis

#endif // WILIS_LI_SCHEDULER_HH
