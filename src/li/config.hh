/**
 * @file
 * Key/value configuration used by the plug-n-play registry (the AWB
 * analog, WiLIS section 2 "Plug-n-Play"). A Config is a flat string
 * map with typed accessors; it can be parsed from "k=v,k=v" strings
 * or from simple "k = v" text files.
 */

#ifndef WILIS_LI_CONFIG_HH
#define WILIS_LI_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>

namespace wilis {
namespace li {

/** Flat key/value configuration with typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Parse "key=value,key2=value2" (commas and/or whitespace). */
    static Config fromString(const std::string &text);

    /** Parse a file of "key = value" lines ('#' starts a comment). */
    static Config fromFile(const std::string &path);

    /** Set a key. */
    void set(const std::string &key, const std::string &value);

    /** True if @p key is present. */
    bool has(const std::string &key) const;

    /** String value or @p def. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;

    /** Integer value or @p def; fatal on malformed numbers. */
    long getInt(const std::string &key, long def = 0) const;

    /**
     * Unsigned 64-bit value or @p def; fatal on malformed numbers.
     * Use for seeds, which occupy the full 64-bit range.
     */
    std::uint64_t getUint64(const std::string &key,
                            std::uint64_t def = 0) const;

    /** Double value or @p def; fatal on malformed numbers. */
    double getDouble(const std::string &key, double def = 0.0) const;

    /** Bool value ("1/true/yes/on") or @p def. */
    bool getBool(const std::string &key, bool def = false) const;

    /** All keys (for diagnostics). */
    const std::map<std::string, std::string> &entries() const
    {
        return kv;
    }

    /**
     * Canonical "k=v,k2=v2" form: entries in sorted key order, so
     * two configs with equal entries stringify identically and the
     * result parses back via fromString(). Values containing commas
     * would not round-trip; no spec key emits one.
     */
    std::string toString() const;

  private:
    std::map<std::string, std::string> kv;
};

} // namespace li
} // namespace wilis

#endif // WILIS_LI_CONFIG_HH
