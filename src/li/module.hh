/**
 * @file
 * Base class for latency-insensitive modules.
 *
 * A Module is a clocked state machine whose only external interaction
 * is through FIFO ports. tick() is invoked once per cycle of the
 * module's clock domain and returns whether the module made forward
 * progress (used for quiescence detection). Modules must not assume
 * anything about neighbour latency: this is the property that lets
 * WiLIS swap implementations and change clock ratios without breaking
 * the pipeline.
 */

#ifndef WILIS_LI_MODULE_HH
#define WILIS_LI_MODULE_HH

#include <cstdint>
#include <string>

#include "li/clock.hh"

namespace wilis {
namespace li {

/** A clocked latency-insensitive module. */
class Module
{
  public:
    /**
     * @param name_  Instance name for diagnostics.
     */
    explicit Module(std::string name_)
        : name_str(std::move(name_))
    {}

    virtual ~Module() = default;

    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /** Instance name. */
    const std::string &name() const { return name_str; }

    /** Clock domain this module is scheduled in (set by Scheduler). */
    ClockDomain *domain() const { return clock_domain; }

    /** Bind the module to a clock domain (Scheduler calls this). */
    void setDomain(ClockDomain *d) { clock_domain = d; }

    /**
     * Execute one cycle.
     * @return true if any state changed or data moved; false if the
     *         module was completely idle this cycle.
     */
    virtual bool tick() = 0;

    /** Cycles in which this module did useful work. */
    std::uint64_t busyCycles() const { return busy_cycles; }

    /** Total tick() invocations. */
    std::uint64_t totalCycles() const { return total_cycles; }

    /** Scheduler-side accounting wrapper around tick(). */
    bool
    clockedTick()
    {
        ++total_cycles;
        bool busy = tick();
        if (busy)
            ++busy_cycles;
        return busy;
    }

  private:
    std::string name_str;
    ClockDomain *clock_domain = nullptr;
    std::uint64_t busy_cycles = 0;
    std::uint64_t total_cycles = 0;
};

} // namespace li
} // namespace wilis

#endif // WILIS_LI_MODULE_HH
