/**
 * @file
 * Clock domains for the multi-clock LI framework (WiLIS section 2,
 * "Automatic Multi-Clock Support").
 *
 * Each module belongs to exactly one ClockDomain; the Scheduler ticks
 * domains at rates proportional to their frequencies. Simulated time
 * is tracked in picoseconds so that e.g. 35 MHz and 60 MHz domains
 * interleave exactly.
 */

#ifndef WILIS_LI_CLOCK_HH
#define WILIS_LI_CLOCK_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace wilis {
namespace li {

/** Simulated time in picoseconds. */
using SimTime = std::uint64_t;

/** A named clock with a fixed frequency. */
class ClockDomain
{
  public:
    /**
     * @param name_     Domain name for diagnostics.
     * @param freq_mhz  Frequency in MHz (e.g. 35.0, 60.0).
     */
    ClockDomain(std::string name_, double freq_mhz)
        : name_str(std::move(name_)), freq(freq_mhz)
    {
        wilis_assert(freq_mhz > 0.0, "clock '%s' needs positive freq",
                     name_str.c_str());
        period_ps = static_cast<SimTime>(1e6 / freq_mhz + 0.5);
        wilis_assert(period_ps > 0, "clock '%s' period underflow",
                     name_str.c_str());
    }

    /** Domain name. */
    const std::string &name() const { return name_str; }

    /** Frequency in MHz. */
    double freqMhz() const { return freq; }

    /** Clock period in picoseconds. */
    SimTime periodPs() const { return period_ps; }

    /** Cycles elapsed in this domain. */
    std::uint64_t cycles() const { return cycle_count; }

    /** Advance the domain by one cycle (scheduler only). */
    void advance() { ++cycle_count; }

    /** Simulated time of the next edge given current cycle count. */
    SimTime nextEdge() const { return (cycle_count + 1) * period_ps; }

  private:
    std::string name_str;
    double freq;
    SimTime period_ps;
    std::uint64_t cycle_count = 0;
};

} // namespace li
} // namespace wilis

#endif // WILIS_LI_CLOCK_HH
