/**
 * @file
 * The per-link fidelity ladder of the hybrid network simulator: one
 * interface, two interchangeable backends.
 *
 *  - "full"     -- the bit-exact PHY path (tx -> channel -> rx ->
 *                  decode), unchanged from sim::NetworkSim's
 *                  original frame loop.
 *  - "analytic" -- a calibrated fast path: the slot's fading gain is
 *                  folded into an effective SNR, the frame outcome
 *                  is drawn from a softphy::CalibrationTable
 *                  (per-rate, per-SNR-bin frame error rates measured
 *                  offline against the full PHY), and the SoftRate
 *                  feedback is the table's calibrated packet-BER
 *                  statistic. Roughly three orders of magnitude
 *                  cheaper per slot.
 *  - "auto"     -- full PHY for a per-user warm-up prefix and
 *                  periodic refresh windows, analytic in between:
 *                  the mixed-fidelity operating point WiLIS argues
 *                  for (bit-exact where it matters, modeled where it
 *                  does not).
 *
 * Both backends produce the same LinkFrameResult, so SoftRate and
 * ARQ consume frame outcomes without knowing which fidelity produced
 * them. All analytic randomness is keyed by (master seed, user,
 * slot) through the counter generator -- never by worker id -- so
 * every mode stays bit-identical across thread counts, and the
 * fidelity schedule itself is a pure function of the slot index.
 */

#ifndef WILIS_SIM_LINK_FIDELITY_HH
#define WILIS_SIM_LINK_FIDELITY_HH

#include <cstdint>
#include <span>
#include <string>

#include "common/kernels.hh"
#include "common/random.hh"
#include "phy/modulation.hh"

namespace wilis {

namespace channel {
class Channel;
}
namespace softphy {
class CalibrationTable;
}

namespace sim {

/**
 * Effective SNR/SINR assigned to a slot with no usable signal (a
 * dropped fade, or a zero signal term in the multi-cell SINR): far
 * below any calibrated bin, so the PER lookup saturates at the
 * worst-case row edge. Shared by the scalar per-user path, the
 * batched SoA kernels and the analytic link so every path bins a
 * dead slot identically.
 */
inline constexpr double kZeroSinrDb = -300.0;

/** Which backend simulates a link's frame slots. */
enum class FidelityMode {
    /** Bit-exact PHY for every slot. */
    Full = 0,
    /** Calibrated analytic model for every slot. */
    Analytic = 1,
    /** Full PHY for warm-up/refresh slots, analytic in between. */
    Auto = 2,
};

/** Config-file name of @p mode ("full" / "analytic" / "auto"). */
const char *fidelityModeName(FidelityMode mode);

/** Inverse of fidelityModeName(); fatal on unknown names. */
FidelityMode fidelityModeFromName(const std::string &name);

/**
 * Per-link fidelity selection, threaded through sim::NetworkSpec.
 * The schedule knobs only matter in Auto mode.
 */
struct FidelityPolicy {
    /** Backend selection. */
    FidelityMode mode = FidelityMode::Full;
    /** Auto: leading slots per user simulated with the full PHY. */
    std::uint64_t warmupSlots = 16;
    /** Auto: slots between the starts of two refresh windows. */
    std::uint64_t refreshPeriod = 64;
    /** Auto: full-PHY slots at the start of each refresh window. */
    std::uint64_t refreshSlots = 4;

    /**
     * True if slot @p t of a user timeline runs the full PHY under
     * this policy -- a pure function of the slot index, so the
     * fidelity schedule can never depend on sharding.
     */
    bool fullPhySlot(std::uint64_t t) const;
};

/** Frame outcome as seen by the MAC, whatever fidelity produced it. */
struct LinkFrameResult {
    /** True if the frame decoded (or was drawn) error-free. */
    bool ok = false;
    /** SoftPHY packet-BER feedback for SoftRate. */
    double pber = 0.0;
    /** True if the bit-exact PHY produced this result. */
    bool fullPhy = false;
};

/**
 * One link's frame-slot simulator. Implementations are created per
 * user timeline by sim::NetworkSim and hold only borrowed state
 * (worker PHY context, channel, calibration table), so they are
 * cheap to construct and never shared across workers.
 */
class LinkFidelity
{
  public:
    virtual ~LinkFidelity() = default;

    /**
     * Simulate the transmission of sequence number @p seq at slot
     * @p t with rate @p rate.
     */
    virtual LinkFrameResult transmit(phy::RateIndex rate,
                                     std::uint64_t seq,
                                     std::uint64_t t) = 0;

    /** Registry-style backend name ("full", "analytic", "auto"). */
    virtual const char *name() const = 0;
};

/**
 * The calibrated analytic backend, exposed for tests and for
 * composition by the Auto backend (sim::NetworkSim instantiates it
 * internally; the full-PHY backend lives in network_sim.cc because
 * it borrows the worker PHY context defined there).
 *
 * Per transmit(): effective SNR = mean link SNR + 10 log10 |h(t)|^2,
 * success drawn as uniform(seed, t) >= PER(rate, snr_eff), feedback
 * = calibrated packet BER conditioned on the outcome.
 */
class AnalyticLink : public LinkFidelity
{
  public:
    /**
     * @param table     Calibration table (borrowed, non-null).
     * @param chan      The link's fading channel (borrowed); only
     *                  gain() is consulted -- no samples flow.
     * @param mean_snr_db Link mean SNR incl. the user's offset.
     * @param draw_stream Per-user stream key for the success draws
     *                  ((master seed, user)-derived by NetworkSim).
     */
    AnalyticLink(const softphy::CalibrationTable *table,
                 const channel::Channel *chan, double mean_snr_db,
                 std::uint64_t draw_stream);

    /**
     * Channel-less form for callers that supply the effective SNR
     * themselves through drawAt() -- the multi-cell simulator folds
     * pathloss, shadowing, fading and same-slot interference into
     * one SINR and reuses this link's calibrated draw unchanged.
     * transmit() is invalid on a channel-less link.
     */
    AnalyticLink(const softphy::CalibrationTable *table,
                 std::uint64_t draw_stream);

    LinkFrameResult transmit(phy::RateIndex rate, std::uint64_t seq,
                             std::uint64_t t) override;
    const char *name() const override { return "analytic"; }

    /**
     * The effective-SNR hook shared by every analytic caller: draw
     * the frame outcome of slot @p t at @p snr_eff_db from the
     * calibration table -- success as uniform(stream, t) >=
     * PER(rate, snr), feedback as the calibrated packet BER
     * conditioned on the outcome.
     */
    LinkFrameResult drawAt(phy::RateIndex rate, std::uint64_t t,
                           double snr_eff_db);

    /**
     * Span-based batch sibling of drawAt(): one calibrated draw per
     * entry for slot @p t, evaluated by the runtime-dispatched
     * perDrawBatch kernel over a flattened table
     * (CalibrationTable::flatten()). Entry i replicates bit-for-bit
     * what drawAt(rates[i], t, snr_eff_db[i]) returns on an
     * AnalyticLink whose draw stream is keyed @p draw_keys[i].
     * All spans must have equal length.
     */
    static void drawBatch(const kernels::PerTableView &tv,
                          std::span<const std::int32_t> rates,
                          std::span<const double> snr_eff_db,
                          std::span<const std::uint64_t> draw_keys,
                          std::uint64_t t, std::span<std::uint8_t> ok,
                          std::span<double> pber);

    /** Effective SNR of slot @p t in dB (fading folded in). */
    double effectiveSnrDb(std::uint64_t t) const;

  private:
    const softphy::CalibrationTable *table_;
    const channel::Channel *chan_;
    double mean_snr_db_;
    CounterRng draws_;
};

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_LINK_FIDELITY_HH
