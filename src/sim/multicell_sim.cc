#include "sim/multicell_sim.hh"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "channel/awgn.hh"
#include "channel/fading.hh"
#include "common/lockstep.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "mac/arq.hh"
#include "mac/scheduler.hh"
#include "mac/softrate.hh"
#include "mac/traffic.hh"
#include "sim/link_fidelity.hh"
#include "sim/mobility.hh"
#include "sim/multicell_detail.hh"
#include "sim/worker_phy.hh"

namespace wilis {
namespace sim {

namespace {

using detail::interferenceFade;
using detail::notePop;
using detail::recordDelivery;
using detail::recordGrant;
using detail::recordMobilityEvent;
using detail::recordTx;

/** One user's per-run state, owned by its serving cell. */
struct McUser {
    McUser(const NetworkSpec &spec, const Topology &topo, int id_,
           const softphy::CalibrationTable *table)
        : id(id_), cell(topo.servingCell(id_)),
          meanSnrDb(topo.servingSnrDb(id_)),
          servGainLin(topo.linkGainLin(id_, cell)),
          // Chained forks: one purpose family, then the user id,
          // so no user's stream can alias another family's
          // (XOR-ing ids into the constant would collide at
          // user counts above the constants' XOR distance).
          seeds(CounterRng(spec.seed)
                    .fork(0xCE77ull)
                    .fork(static_cast<std::uint64_t>(id_))),
          fader(spec.dopplerHz, seeds.at(0)),
          traffic(spec.traffic, seeds.at(2)),
          interfStream(seeds.at(4)), payloadSeed(seeds.at(1)),
          awgnSeed(seeds.at(5))
    {
        mac::SoftRateMac::Config src;
        src.pberLo = spec.pberLo;
        src.pberHi = spec.pberHi;
        src.initialRate = spec.link.rate;
        softrate = mac::SoftRateMac(src);

        mac::Arq::Config ac;
        ac.mode = spec.arqMode;
        ac.window = spec.arqWindow;
        ac.maxAttempts = spec.arqMaxAttempts;
        ac.ackDelaySlots = spec.ackDelaySlots;
        arq = std::make_unique<mac::Arq>(ac);

        if (table)
            analytic =
                std::make_unique<AnalyticLink>(table, seeds.at(3));

        stats.user = id;
        stats.servingCell = cell;
        stats.meanSnrDb = meanSnrDb;
    }

    /** Serving-link |h|^2 at slot @p t (memoized per slot). */
    double
    fadingPower(std::uint64_t t, double frame_interval_us)
    {
        if (h2_slot != t || !h2_valid) {
            h2 = std::norm(fader.gainAt(static_cast<double>(t) *
                                        frame_interval_us));
            h2_slot = t;
            h2_valid = true;
        }
        return h2;
    }

    int id;
    int cell;
    double meanSnrDb;
    double servGainLin;
    CounterRng seeds;
    channel::JakesFader fader;
    mac::TrafficSource traffic;
    mac::SoftRateMac softrate;
    std::unique_ptr<mac::Arq> arq;
    std::unique_ptr<AnalyticLink> analytic;
    std::unique_ptr<channel::AwgnChannel> awgn; // full rung, lazy
    CounterRng interfStream;
    std::uint64_t payloadSeed;
    std::uint64_t awgnSeed;
    UserStats stats;
    detail::TraceCtx tctx;

    double h2 = 0.0;
    std::uint64_t h2_slot = 0;
    bool h2_valid = false;
};

/** One cell's scheduler state plus its slot decision. */
struct McCell {
    std::vector<int> users; // global ids, increasing
    std::unique_ptr<mac::CellScheduler> sched;
    std::vector<std::uint8_t> eligible;
    std::vector<std::uint8_t> urgent; // queued control traffic
    std::vector<double> instRate;
    std::vector<mac::Arq::Delivery> deliveries;

    // Phase-1 outputs consumed by every cell's phase 2.
    int grantedUser = -1; // global id, -1 = idle slot
    std::uint64_t grantedSeq = 0;
};

/**
 * Adapter mapping this engine's per-user object layout onto the
 * canonical checkpoint byte order (detail::saveMcCheckpoint() /
 * detail::loadMcCheckpoint() in multicell_detail.hh). sync()
 * derives the user -> member-cell map; call it before a save.
 */
struct PuCheckpoint {
    std::vector<McUser> *users;
    std::vector<McCell> *cells;
    std::vector<std::uint64_t> *busy;
    const mac::CellScheduler::Config *schedCfg;
    MobilityRuntime *mobp;
    mac::PacketTrace *tracep;
    std::vector<int> cellOf; // user id -> member cell, -1 = none

    void
    sync()
    {
        cellOf.assign(users->size(), -1);
        for (size_t c = 0; c < cells->size(); ++c)
            for (int id : (*cells)[c].users)
                cellOf[static_cast<size_t>(id)] =
                    static_cast<int>(c);
    }

    McUser &
    at(int id)
    {
        return (*users)[static_cast<size_t>(id)];
    }

    int numUsers() const { return static_cast<int>(users->size()); }
    int numCells() const { return static_cast<int>(cells->size()); }
    MobilityRuntime *mob() const { return mobp; }
    mac::PacketTrace *trace() const { return tracep; }
    int memberCellOf(int id) { return cellOf[static_cast<size_t>(id)]; }
    double servGainOf(int id) { return at(id).servGainLin; }
    mac::SoftRateMac &softrateOf(int id) { return at(id).softrate; }
    mac::Arq &arqOf(int id) { return *at(id).arq; }
    mac::TrafficSource &trafficOf(int id) { return at(id).traffic; }
    detail::TraceCtx &tctxOf(int id) { return at(id).tctx; }
    UserStats &statsOf(int id) { return at(id).stats; }

    std::vector<int>
    memberIdsOf(int c)
    {
        return (*cells)[static_cast<size_t>(c)].users;
    }

    mac::CellScheduler &
    schedOf(int c)
    {
        return *(*cells)[static_cast<size_t>(c)].sched;
    }

    std::uint64_t
    busyUntilOf(int c)
    {
        return (*busy)[static_cast<size_t>(c)];
    }

    void
    setMemberCell(int id, int c)
    {
        if (cellOf.size() != users->size())
            cellOf.assign(users->size(), -1);
        cellOf[static_cast<size_t>(id)] = c;
        if (c >= 0)
            at(id).cell = c;
    }

    void setServGain(int id, double g) { at(id).servGainLin = g; }

    void
    resetCell(int c, const std::vector<int> &ids)
    {
        McCell &cs = (*cells)[static_cast<size_t>(c)];
        cs.users = ids;
        cs.sched = std::make_unique<mac::CellScheduler>(
            *schedCfg, static_cast<int>(ids.size()));
        cs.eligible.resize(cs.users.size());
        cs.urgent.assign(cs.users.size(), 0);
        cs.instRate.assign(cs.users.size(), 0.0);
    }

    void
    setBusyUntil(int c, std::uint64_t v)
    {
        (*busy)[static_cast<size_t>(c)] = v;
    }
};

} // namespace

NetworkResult
runMulticellPerUser(
    const NetworkSpec &spec, const Topology &topo,
    const softphy::BerEstimator &estimator,
    std::shared_ptr<const softphy::CalibrationTable> calib,
    std::uint64_t slots, int threads)
{
    const int cells = topo.numCells();
    const int num_users = topo.numUsers();
    const size_t payload_bits = spec.link.payloadBits;
    const softphy::CalibrationTable *table =
        spec.fidelity.mode != FidelityMode::Full ? calib.get()
                                                 : nullptr;

    NetworkResult res;
    res.spec = spec;
    res.slots = slots;
    res.cells = cells;

    // Per-user and per-cell state, all owned by the serving cell's
    // worker once the slot loop starts.
    std::vector<McUser> users;
    users.reserve(static_cast<size_t>(num_users));
    for (int u = 0; u < num_users; ++u)
        users.emplace_back(spec, topo, u, table);

    // The packet trace records per-cell (one shard per cell, each
    // written only by the cell's owning worker).
    std::shared_ptr<mac::PacketTrace> trace;
    if (spec.trace) {
        trace = std::make_shared<mac::PacketTrace>(cells);
        for (McUser &u : users) {
            u.tctx.bind(trace.get(), u.cell, u.cell, u.id,
                        u.arq->windowSize());
            u.traffic.bindTrace(trace.get(), u.cell, u.cell, u.id);
        }
    }

    // Mobility / handover / churn: one shared decision engine,
    // driven single-threaded between barriers, so the per-user and
    // SoA engines see identical epochs by construction. Null for
    // static runs, which therefore stay bit-identical to the
    // pre-mobility engine.
    std::unique_ptr<MobilityRuntime> mob;
    if (spec.mobility.enabled())
        mob = std::make_unique<MobilityRuntime>(
            spec.mobility, topo, spec.seed, spec.frameIntervalUs);
    // Post-first-handover flag routing delivered payload into the
    // before/after-handover goodput split.
    auto post_ho = [&](int uid) {
        return mob &&
               mob->handovers(uid) > 0;
    };

    std::vector<McCell> cell_state(static_cast<size_t>(cells));
    for (int c = 0; c < cells; ++c) {
        McCell &cs = cell_state[static_cast<size_t>(c)];
        cs.users = topo.cellUsers(c);
        cs.sched = std::make_unique<mac::CellScheduler>(
            spec.scheduler, static_cast<int>(cs.users.size()));
        cs.eligible.resize(cs.users.size());
        cs.urgent.assign(cs.users.size(), 0);
        cs.instRate.assign(cs.users.size(), 0.0);
        cs.deliveries.reserve(
            static_cast<size_t>(spec.arqWindow) + 1);
    }
    // Fixed-contention airtime: a cell whose last grant saw k > 1
    // contenders is busy (no grants) until this slot.
    std::vector<std::uint64_t> busy_until(
        static_cast<size_t>(cells), 0);
    const bool class_aware =
        spec.traffic.qdisc == mac::QdiscKind::StrictPriority;
    const bool fixed_contention =
        spec.scheduler.contention == mac::ContentionMode::Fixed;

    // The cross-cell coupling: which cells transmit this slot.
    // Written by each cell's phase 1 (own index only), read by
    // every cell's phase 2 after the barrier.
    std::vector<std::uint8_t> active(static_cast<size_t>(cells), 0);

    WorkerPhyPool phy_pool;

    // ---- phase 1: deliver ACKs, draw traffic, schedule ----------
    auto phase_schedule = [&](std::uint64_t ci, std::uint64_t t) {
        McCell &cs = cell_state[static_cast<size_t>(ci)];
        // Under fixed contention the medium may still be occupied
        // by the previous grant's contention charge: per-user
        // processes advance, but no grant is issued.
        const bool busy = t < busy_until[static_cast<size_t>(ci)];
        for (size_t i = 0; i < cs.users.size(); ++i) {
            McUser &u = users[static_cast<size_t>(cs.users[i])];
            // tick() is a no-op for a quiescent ARQ (no matured
            // acknowledgement, nothing deliverable), which is the
            // common case at low load -- skip the walk.
            if (!u.arq->quiescentAt(t)) {
                cs.deliveries.clear();
                u.arq->tick(t, cs.deliveries);
                for (const auto &d : cs.deliveries)
                    recordDelivery(u.stats, d, payload_bits, t,
                                   u.tctx, post_ho(u.id));
            }
            u.traffic.tick(t);
            const bool can_send =
                u.arq->hasResend() ||
                (u.traffic.backlogged() && u.arq->windowHasRoom());
            cs.eligible[i] = can_send ? 1 : 0;
            if (class_aware)
                cs.urgent[i] =
                    u.traffic.controlBacklogged() ? 1 : 0;
            // Proportional fair ranks by the noise-limited
            // instantaneous rate (interference is unknown until
            // every cell has scheduled); only eligible users pay
            // for the fading evaluation, and a busy cell skips it
            // entirely (no grant to rank for).
            if (can_send && !busy &&
                spec.scheduler.kind ==
                    mac::SchedulerKind::ProportionalFair) {
                const double h2 =
                    u.fadingPower(t, spec.frameIntervalUs);
                cs.instRate[i] =
                    std::log2(1.0 + u.servGainLin * h2);
            }
        }

        if (busy) {
            // The contention charge consumes the slot: everyone
            // with traffic stalls, the scheduler's clock advances.
            cs.grantedUser = -1;
            active[static_cast<size_t>(ci)] = 0;
            cs.sched->update(-1, 0.0);
            for (size_t i = 0; i < cs.users.size(); ++i) {
                if (cs.eligible[i])
                    ++users[static_cast<size_t>(cs.users[i])]
                          .stats.stalledSlots;
            }
            return;
        }

        const int pick = cs.sched->pick(
            cs.eligible, cs.instRate,
            class_aware ? &cs.urgent : nullptr);
        if (pick < 0) {
            cs.grantedUser = -1;
            active[static_cast<size_t>(ci)] = 0;
            // Idle slots still close the scheduler's slot: the PF
            // throughput averages must decay while a cell is
            // silent, or the next burst would see stale metrics.
            cs.sched->update(-1, 0.0);
            return;
        }
        McUser &u = users[static_cast<size_t>(cs.users[
            static_cast<size_t>(pick)])];
        const bool allow_new =
            u.traffic.backlogged() && u.arq->windowHasRoom();
        const std::uint64_t prev_next = u.arq->nextSeq();
        std::uint64_t seq = 0;
        const bool sending = u.arq->nextToSend(t, seq, allow_new);
        wilis_assert(sending, "scheduler granted an idle user");
        std::int64_t first_wait = 0;
        if (u.arq->nextSeq() != prev_next) {
            // A never-transmitted frame leaves the traffic queue.
            const mac::Packet p = u.traffic.pop(t);
            u.stats.queueWaitSlots.add(
                static_cast<double>(t - p.arrival));
            u.stats.queueWaitHist.add(
                static_cast<double>(t - p.arrival));
            notePop(u.tctx, seq, p);
            first_wait = static_cast<std::int64_t>(t - p.arrival);
        }
        recordGrant(u.tctx, t, seq, u.arq->attemptsOf(seq),
                    first_wait);
        cs.grantedUser = u.id;
        cs.grantedSeq = seq;
        active[static_cast<size_t>(ci)] = 1;
        // PF averages track attempted service; outcome-independent
        // so the slot can close here.
        cs.sched->update(pick, static_cast<double>(payload_bits));
        // Contention accounting: eligible but passed over.
        int contenders = 0;
        for (size_t i = 0; i < cs.users.size(); ++i) {
            if (!cs.eligible[i])
                continue;
            ++contenders;
            if (static_cast<int>(i) != pick)
                ++users[static_cast<size_t>(cs.users[i])]
                      .stats.stalledSlots;
        }
        // Fixed 1/k sharing: a grant contested by k eligible users
        // occupies the medium for k slots in total.
        if (fixed_contention && contenders > 1)
            busy_until[static_cast<size_t>(ci)] =
                t + static_cast<std::uint64_t>(contenders);
    };

    // ---- phase 2: SINR over the active set, transmit ------------
    auto phase_transmit = [&](std::uint64_t ci, std::uint64_t t) {
        McCell &cs = cell_state[static_cast<size_t>(ci)];
        if (cs.grantedUser < 0)
            return;
        McUser &u = users[static_cast<size_t>(cs.grantedUser)];
        const int serv = static_cast<int>(ci);

        const double h2 = u.fadingPower(t, spec.frameIntervalUs);
        const double sig = u.servGainLin * h2;
        // Under mobility the live matrix row replaces the static
        // topology gains (identical at epoch 0 by construction).
        const double *grow = mob ? mob->gainRow(u.id) : nullptr;
        double interference = 0.0;
        for (int c2 = 0; c2 < cells; ++c2) {
            if (c2 == serv || !active[static_cast<size_t>(c2)])
                continue;
            interference +=
                (grow ? grow[c2] : topo.linkGainLin(u.id, c2)) *
                interferenceFade(
                    u.interfStream,
                    t * static_cast<std::uint64_t>(cells) +
                        static_cast<std::uint64_t>(c2));
        }
        const double sinr_lin = sig / (1.0 + interference);
        const double sinr_db = sinr_lin > 0.0
                                   ? 10.0 * std::log10(sinr_lin)
                                   : kZeroSinrDb;

        const phy::RateIndex rate = u.softrate.currentRate();
        LinkFrameResult fr;
        if (spec.fidelity.fullPhySlot(t)) {
            // The bit-exact rung, conditioned on this slot's SINR:
            // the frame runs tx -> AWGN at the effective SINR ->
            // rx -> decode (interference enters as Gaussian noise,
            // the same conditioning the calibration table uses).
            if (!u.awgn)
                u.awgn = std::make_unique<channel::AwgnChannel>(
                    sinr_db, u.awgnSeed);
            else
                u.awgn->setSnrDb(sinr_db);
            std::unique_ptr<WorkerPhy> phy = phy_pool.acquire();
            phy->arena.reset();
            BitSpan payload =
                phy->arena.alloc<Bit>(payload_bits);
            fillDeterministicBits(payload, u.payloadSeed,
                                  cs.grantedSeq);
            FrameContext ctx(phy->arena);
            SampleSpan samples =
                phy->txAt(rate, spec.link.rx)
                    .modulate(payload, ctx);
            u.awgn->apply(samples, t);
            phy::RxFrame rx_frame =
                phy->rxAt(rate, spec.link.rx)
                    .demodulate(samples, payload_bits,
                                u.awgn.get(), t, ctx);
            fr.ok = rx_frame.bitErrors(payload) == 0;
            fr.pber = estimator.packetBerForRate(rate,
                                                 rx_frame.soft);
            fr.fullPhy = true;
            phy_pool.release(std::move(phy));
        } else {
            fr = u.analytic->drawAt(rate, t, sinr_db);
        }

        ++u.stats.framesSent;
        u.stats.framesOk += fr.ok ? 1 : 0;
        if (fr.fullPhy)
            ++u.stats.fullPhyFrames;
        else
            ++u.stats.analyticFrames;
        u.stats.rateHist.add(static_cast<double>(rate));
        u.stats.sinrDb.add(sinr_db);
        recordTx(u.tctx, t, cs.grantedSeq, fr.ok,
                 static_cast<int>(rate));
        u.softrate.onFeedback(fr.pber);
        u.arq->onSendResult(cs.grantedSeq, fr.ok);
    };

    // ---- mobility epochs: apply membership events ---------------
    // Runs single-threaded on worker 0 with the team held at a
    // barrier, so it may touch any cell's state.
    const bool pf =
        spec.scheduler.kind == mac::SchedulerKind::ProportionalFair;
    auto member_pos = [](const McCell &cs, int uid) {
        return static_cast<int>(
            std::lower_bound(cs.users.begin(), cs.users.end(), uid) -
            cs.users.begin());
    };
    auto resize_cell = [](McCell &cs) {
        cs.eligible.resize(cs.users.size());
        cs.urgent.assign(cs.users.size(), 0);
        cs.instRate.assign(cs.users.size(), 0.0);
    };
    auto remove_member = [&](int c, int uid, double *pf_carry) {
        McCell &cs = cell_state[static_cast<size_t>(c)];
        const int pos = member_pos(cs, uid);
        if (pf_carry)
            *pf_carry = cs.sched->averageRate(pos);
        cs.sched->removeUser(pos);
        cs.users.erase(cs.users.begin() + pos);
        resize_cell(cs);
    };
    auto insert_member = [&](int c, int uid, double pf_carry) {
        McCell &cs = cell_state[static_cast<size_t>(c)];
        const int pos = member_pos(cs, uid);
        cs.sched->insertUser(pos, pf_carry);
        cs.users.insert(cs.users.begin() + pos, uid);
        resize_cell(cs);
    };
    std::vector<MobilityRuntime::Event> mob_events;
    std::vector<mac::Arq::Delivery> mob_deliv;
    auto apply_mobility = [&](std::uint64_t t) {
        mob_events.clear();
        mob->epoch(t, mob_events);
        for (const MobilityRuntime::Event &ev : mob_events) {
            McUser &u = users[static_cast<size_t>(ev.user)];
            int flushed = 0;
            int aborted = 0;
            switch (ev.kind) {
              case MobilityRuntime::Event::Kind::Leave: {
                // Teardown records into the pre-departure shard:
                // queued packets flush (qdrop reason 2), in-flight
                // ARQ frames abort (already-acked heads still
                // deliver in order).
                remove_member(ev.fromCell, ev.user, nullptr);
                flushed = u.traffic.flush(t);
                mob_deliv.clear();
                u.arq->abortAll(t, mob_deliv);
                for (const auto &d : mob_deliv) {
                    recordDelivery(u.stats, d, payload_bits, t,
                                   u.tctx, post_ho(u.id));
                    if (d.dropped)
                        ++aborted;
                }
                break;
              }
              case MobilityRuntime::Event::Kind::Join: {
                insert_member(ev.toCell, ev.user, 0.0);
                u.cell = ev.toCell;
                u.tctx.rebind(ev.toCell, ev.toCell);
                if (trace)
                    u.traffic.bindTrace(trace.get(), ev.toCell,
                                        ev.toCell, u.id);
                break;
              }
              case MobilityRuntime::Event::Kind::Handover: {
                // Queue, ARQ window and rate-control state migrate
                // untouched; the PF throughput average carries so
                // the target cell does not treat the user as
                // starved.
                double carry = 0.0;
                remove_member(ev.fromCell, ev.user,
                              pf ? &carry : nullptr);
                insert_member(ev.toCell, ev.user, carry);
                u.cell = ev.toCell;
                u.tctx.rebind(ev.toCell, ev.toCell);
                if (trace)
                    u.traffic.bindTrace(trace.get(), ev.toCell,
                                        ev.toCell, u.id);
                break;
              }
            }
            recordMobilityEvent(trace.get(), t, ev, flushed,
                                aborted);
        }
        // The epoch rewrote the live gain rows: refresh every
        // user's serving-link gain (cheap, and also what keeps the
        // PF metric and SINR on the moved positions).
        for (McUser &uu : users)
            uu.servGainLin = mob->servingGainLin(uu.id);
    };

    // ---- checkpoint/resume --------------------------------------
    // The adapter maps this engine onto the canonical snapshot
    // order; a fresh one is built per use (sync() re-derives the
    // membership map).
    auto make_ckpt = [&]() {
        PuCheckpoint a;
        a.users = &users;
        a.cells = &cell_state;
        a.busy = &busy_until;
        a.schedCfg = &spec.scheduler;
        a.mobp = mob.get();
        a.tracep = trace.get();
        a.sync();
        return a;
    };
    std::uint64_t start_slot = 0;
    if (spec.checkpoint.enabled() && spec.checkpoint.resume) {
        PuCheckpoint a = make_ckpt();
        start_slot = detail::loadMcCheckpoint(spec, a);
        wilis_assert(start_slot <= slots,
                     "checkpoint '%s' is at slot %llu, past the "
                     "%llu-slot horizon",
                     spec.checkpoint.file.c_str(),
                     static_cast<unsigned long long>(start_slot),
                     static_cast<unsigned long long>(slots));
        // Re-point the traffic sources' trace lanes at the restored
        // serving cells (the trace contexts restore their own lane;
        // a churned-out user keeps its initial binding, which is
        // dormant until the next join rebinds it).
        if (trace) {
            for (McUser &u : users)
                if (a.cellOf[static_cast<size_t>(u.id)] >= 0)
                    u.traffic.bindTrace(
                        trace.get(),
                        a.cellOf[static_cast<size_t>(u.id)],
                        a.cellOf[static_cast<size_t>(u.id)], u.id);
        }
    }
    const std::uint64_t ckpt_every =
        spec.checkpoint.enabled() ? spec.checkpoint.everySlots : 0;

    int n = threads > 0
                ? threads
                : static_cast<int>(std::max(
                      1u, std::thread::hardware_concurrency()));
    n = std::min(n, cells);

    // The whole slot loop runs inside one LockstepTeam::run():
    // cells are statically partitioned across workers (each cell's
    // state has exactly one owner, so static and dynamic sharding
    // compute identical results) and the two phases are separated
    // by barriers -- two per slot, where the old per-slot
    // ThreadPool::parallelFor pair cost four condition-variable
    // handshakes (the grid-3x3 thread-scaling regression). This
    // barrier-phase ownership is lock-free by design and therefore
    // invisible to -Wthread-safety; the CI TSan leg is what holds
    // it (docs/ARCHITECTURE.md, "Static determinism guarantees").
    LockstepTeam team(n);
    const int chunk = (cells + n - 1) / n;
    const std::uint64_t epoch_slots = mob ? mob->epochSlots() : 1;
    team.run([&](int w) {
        const int c_lo = std::min(cells, w * chunk);
        const int c_hi = std::min(cells, c_lo + chunk);
        for (std::uint64_t t = start_slot; t < slots; ++t) {
            if (ckpt_every != 0 && t > start_slot &&
                t % ckpt_every == 0) {
                // Every worker evaluates the same condition, so the
                // whole team is parked at this barrier while worker
                // 0 serializes -- the snapshot sees the state after
                // slot t - 1, before slot t's mobility epoch.
                if (w == 0) {
                    PuCheckpoint a = make_ckpt();
                    detail::saveMcCheckpoint(spec, a, t);
                }
                team.barrier();
            }
            if (mob && t % epoch_slots == 0) {
                // The previous slot's trailing barrier (or run()
                // entry at t = 0) already synced the team, so
                // worker 0 may mutate any cell's state here; one
                // barrier releases the others afterwards.
                if (w == 0)
                    apply_mobility(t);
                team.barrier();
            }
            for (int c = c_lo; c < c_hi; ++c)
                phase_schedule(static_cast<std::uint64_t>(c), t);
            team.barrier();
            for (int c = c_lo; c < c_hi; ++c)
                phase_transmit(static_cast<std::uint64_t>(c), t);
            // Phase 1 of slot t+1 rewrites active[] -- every
            // cell's phase 2 must have read it first.
            team.barrier();
        }
    });

    // Drain acknowledgements still in flight at the horizon so
    // their deliveries are counted (no new transmissions).
    for (McUser &u : users) {
        std::vector<mac::Arq::Delivery> tail;
        for (std::uint64_t t = slots;
             t <= slots + spec.ackDelaySlots; ++t) {
            tail.clear();
            u.arq->tick(t, tail);
            for (const auto &d : tail)
                recordDelivery(u.stats, d, payload_bits, t, u.tctx,
                               post_ho(u.id));
        }
        u.stats.retransmissions = u.arq->retransmissions();
        u.stats.arrivals = u.traffic.arrivals();
        u.stats.queueDrops = u.traffic.drops();
    }

    // Mobility outcome statistics (the final serving cell replaces
    // the drop-time association; the first-handover slot splits the
    // run into the before/after throughput windows).
    for (McUser &u : users) {
        if (mob) {
            u.stats.servingCell = mob->servingCell(u.id);
            u.stats.handovers = mob->handovers(u.id);
            u.stats.pingPongs = mob->pingPongs(u.id);
            u.stats.joins = mob->joins(u.id);
            u.stats.leaves = mob->leaves(u.id);
            u.stats.preHoSlots =
                std::min(mob->firstHandoverSlot(u.id), slots);
        } else {
            u.stats.preHoSlots = slots;
        }
        u.stats.postHoSlots = slots - u.stats.preHoSlots;
    }

    // End-to-end latency (arrival -> in-order delivery) is derived
    // from the finalized trace's Ack events, so it exists exactly
    // when the trace does.
    if (trace) {
        trace->finalize();
        for (const auto &e : trace->entries()) {
            if (e.event == mac::PacketEvent::Ack)
                users[static_cast<size_t>(e.user)]
                    .stats.e2eLatencyHist.add(
                        static_cast<double>(e.arg1));
        }
        res.trace = trace;
    }

    res.users.resize(static_cast<size_t>(num_users));
    for (int u = 0; u < num_users; ++u)
        res.users[static_cast<size_t>(u)] =
            users[static_cast<size_t>(u)].stats;

    // Aggregate in user order: the merge sequence is fixed, so the
    // merged floating-point statistics are deterministic too.
    res.aggregate = UserStats();
    res.aggregate.user = -1;
    for (const UserStats &u : res.users)
        res.aggregate.merge(u);
    return res;
}

NetworkResult
runMulticellNetwork(
    const NetworkSpec &spec, const Topology &topo,
    const softphy::BerEstimator &estimator,
    std::shared_ptr<const softphy::CalibrationTable> calib,
    std::uint64_t slots, int threads,
    std::shared_ptr<McSoaCache> *cache)
{
    if (spec.engine == "peruser")
        return runMulticellPerUser(spec, topo, estimator,
                                   std::move(calib), slots, threads);
    // "soa" and its "auto" alias.
    return runMulticellSoa(spec, topo, estimator, std::move(calib),
                           slots, threads, cache);
}

} // namespace sim
} // namespace wilis
