#include "sim/li_transceiver.hh"

#include <deque>

#include "common/kernels.hh"
#include "common/logging.hh"
#include "decode/soft_decoder.hh"
#include "phy/conv_code.hh"
#include "phy/cyclic_prefix.hh"
#include "phy/fft.hh"
#include "phy/interleaver.hh"
#include "phy/mapper.hh"
#include "phy/ofdm_symbol.hh"
#include "phy/puncture.hh"
#include "phy/scrambler.hh"
#include "sim/scenario.hh"

namespace wilis {
namespace sim {

namespace {

using li::Fifo;

/** Two soft values for one trellis step. */
struct SoftPairTok {
    SoftBit a = 0;
    SoftBit b = 0;
};

/** Emits the (padded) payload bit stream, one bit per cycle. */
class BitSourceMod : public li::Module
{
  public:
    BitSourceMod(Fifo<Bit> *out_, int lanes_)
        : li::Module("bit_source"), out(out_), lanes(lanes_)
    {}

    void
    load(const BitVec &bits)
    {
        pending.assign(bits.begin(), bits.end());
    }

    bool
    tick() override
    {
        bool busy = false;
        for (int i = 0; i < lanes; ++i) {
            if (pending.empty() || !out->canEnq())
                break;
            out->enq(pending.front());
            pending.pop_front();
            busy = true;
        }
        return busy;
    }

  private:
    Fifo<Bit> *out;
    int lanes;
    std::deque<Bit> pending;
};

/** Frame-synchronous scrambler, one bit per cycle. */
class ScramblerMod : public li::Module
{
  public:
    ScramblerMod(Fifo<Bit> *in_, Fifo<Bit> *out_, std::uint8_t seed_,
                 int lanes_)
        : li::Module("scrambler"), in(in_), out(out_), seed(seed_),
          scrambler(seed_), lanes(lanes_)
    {}

    void reset() { scrambler.reset(seed); }

    bool
    tick() override
    {
        bool busy = false;
        for (int i = 0; i < lanes; ++i) {
            if (!in->canDeq() || !out->canEnq())
                break;
            out->enq(scrambler.process(in->deq()));
            busy = true;
        }
        return busy;
    }

  private:
    Fifo<Bit> *in;
    Fifo<Bit> *out;
    std::uint8_t seed;
    phy::Scrambler scrambler;
    int lanes;
};

/**
 * Rate-1/2 convolutional encoder: one input bit per cycle, one coded
 * pair per cycle; appends the terminating tail itself.
 */
class EncoderMod : public li::Module
{
  public:
    EncoderMod(Fifo<Bit> *in_, Fifo<std::uint8_t> *out_, int lanes_)
        : li::Module("encoder"), in(in_), out(out_), lanes(lanes_)
    {}

    void
    reset(size_t info_bits_)
    {
        info_bits = info_bits_;
        consumed = 0;
        tail_fed = 0;
        state = 0;
    }

    bool
    tick() override
    {
        bool busy = false;
        for (int i = 0; i < lanes; ++i) {
            if (!out->canEnq())
                break;
            Bit x;
            if (consumed < info_bits) {
                if (!in->canDeq())
                    break;
                x = in->deq() & 1;
                ++consumed;
            } else if (tail_fed < phy::ConvCode::kTailBits) {
                x = 0;
                ++tail_fed;
            } else {
                break;
            }
            unsigned o = phy::convCode().outputBits(state, x);
            state = phy::convCode().nextState(state, x);
            out->enq(static_cast<std::uint8_t>(o));
            busy = true;
        }
        return busy;
    }

  private:
    Fifo<Bit> *in;
    Fifo<std::uint8_t> *out;
    int lanes = 1;
    size_t info_bits = 0;
    size_t consumed = 0;
    int tail_fed = 0;
    int state = 0;
};

/** Puncturer: consumes one coded pair, emits the surviving bits. */
class PuncturerMod : public li::Module
{
  public:
    PuncturerMod(Fifo<std::uint8_t> *in_, Fifo<Bit> *out_,
                 phy::CodeRate rate, int lanes_)
        : li::Module("puncturer"), in(in_), out(out_), punct(rate),
          lanes(lanes_)
    {
        // Keep-pattern over the interleaved A/B stream, one period.
        keep.resize(identityPeriod(rate));
        for (size_t i = 0; i < keep.size(); ++i)
            keep[i] = isKept(rate, i);
    }

    void reset() { pos = 0; }

    bool
    tick() override
    {
        bool busy = false;
        for (int i = 0; i < lanes; ++i) {
            if (!in->canDeq())
                break;
            // Need room for up to two bits from this pair.
            int needed = keep[pos % keep.size()] +
                         keep[(pos + 1) % keep.size()];
            if (out->capacity() - out->size() <
                static_cast<size_t>(needed)) {
                out->noteFullStall();
                break;
            }
            std::uint8_t pair = in->deq();
            if (keep[pos % keep.size()])
                out->enq(static_cast<Bit>(pair & 1));
            if (keep[(pos + 1) % keep.size()])
                out->enq(static_cast<Bit>((pair >> 1) & 1));
            pos += 2;
            busy = true;
        }
        return busy;
    }

  private:
    static size_t
    identityPeriod(phy::CodeRate rate)
    {
        switch (rate) {
          case phy::CodeRate::R12:
            return 2;
          case phy::CodeRate::R23:
            return 4;
          case phy::CodeRate::R34:
            return 6;
        }
        wilis_panic("bad rate");
    }

    static bool
    isKept(phy::CodeRate rate, size_t i)
    {
        static const bool r12[2] = {true, true};
        static const bool r23[4] = {true, true, true, false};
        static const bool r34[6] = {true, true, true,
                                    false, false, true};
        switch (rate) {
          case phy::CodeRate::R12:
            return r12[i % 2];
          case phy::CodeRate::R23:
            return r23[i % 4];
          case phy::CodeRate::R34:
            return r34[i % 6];
        }
        wilis_panic("bad rate");
    }

    Fifo<std::uint8_t> *in;
    Fifo<Bit> *out;
    phy::Puncturer punct;
    int lanes;
    std::vector<bool> keep;
    size_t pos = 0;
};

/** Collects N_CBPS bits and emits one interleaved block token. */
class InterleaverMod : public li::Module
{
  public:
    InterleaverMod(Fifo<Bit> *in_, Fifo<BitVec> *out_,
                   phy::Modulation mod, int lanes_)
        : li::Module("interleaver"), in(in_), out(out_), il(mod),
          lanes(lanes_)
    {}

    void reset() { buf.clear(); }

    bool
    tick() override
    {
        if (buf.size() == static_cast<size_t>(il.blockSize())) {
            if (!out->canEnq()) {
                out->noteFullStall();
                return false;
            }
            out->enq(il.interleave(buf));
            buf.clear();
            return true;
        }
        bool busy = false;
        for (int i = 0; i < lanes; ++i) {
            if (!in->canDeq() ||
                buf.size() == static_cast<size_t>(il.blockSize()))
                break;
            buf.push_back(in->deq());
            busy = true;
        }
        return busy;
    }

  private:
    Fifo<Bit> *in;
    Fifo<BitVec> *out;
    phy::Interleaver il;
    int lanes;
    BitVec buf;
};

/**
 * Maps one interleaved block onto the 48 data subcarriers, inserts
 * pilots, and emits the 64-bin frequency-domain symbol. Models the
 * 48-cycle streaming cost of the mapper.
 */
class MapperPilotMod : public li::Module
{
  public:
    MapperPilotMod(Fifo<BitVec> *in_, Fifo<SampleVec> *out_,
                   phy::Modulation mod)
        : li::Module("mapper"), in(in_), out(out_), mapper(mod),
          n_bpsc(phy::bitsPerSubcarrier(mod))
    {}

    void
    reset()
    {
        pilots.reset();
        busy = 0;
        staged.clear();
    }

    bool
    tick() override
    {
        if (busy > 0) {
            if (--busy == 0)
                emitSymbol();
            return true;
        }
        if (!staged.empty())
            return false; // waiting for output space
        if (!in->canDeq())
            return false;
        BitVec block = in->deq();
        staged = std::move(block);
        busy = phy::OfdmGeometry::kDataCarriers;
        return true;
    }

  private:
    void
    emitSymbol()
    {
        SampleVec bins(phy::OfdmGeometry::kFftSize, Sample(0, 0));
        for (int d = 0; d < phy::OfdmGeometry::kDataCarriers; ++d) {
            bins[static_cast<size_t>(phy::OfdmGeometry::dataBin(d))] =
                mapper.map(&staged[static_cast<size_t>(d * n_bpsc)]);
        }
        pilots.insertPilots(bins);
        if (out->canEnq()) {
            out->enq(std::move(bins));
            staged.clear();
        } else {
            // Retry next cycle: keep the staged block, redo emit.
            out->noteFullStall();
            busy = 1;
        }
    }

    Fifo<BitVec> *in;
    Fifo<SampleVec> *out;
    phy::Mapper mapper;
    phy::PilotTracker pilots;
    int n_bpsc;
    int busy = 0;
    BitVec staged;
};

/** Streaming (I)FFT: 64-cycle initiation interval and latency. */
class FftMod : public li::Module
{
  public:
    FftMod(std::string name, Fifo<SampleVec> *in_,
           Fifo<SampleVec> *out_, bool inverse_)
        : li::Module(std::move(name)), in(in_), out(out_),
          fft(phy::OfdmGeometry::kFftSize), inverse(inverse_)
    {}

    void
    reset()
    {
        busy = 0;
        staged.clear();
    }

    bool
    tick() override
    {
        if (busy > 0) {
            if (--busy == 0)
                emit();
            return true;
        }
        if (!staged.empty())
            return false;
        if (!in->canDeq())
            return false;
        staged = in->deq();
        busy = phy::OfdmGeometry::kFftSize;
        return true;
    }

  private:
    void
    emit()
    {
        if (!out->canEnq()) {
            out->noteFullStall();
            busy = 1;
            return;
        }
        if (inverse)
            fft.inverse(staged);
        else
            fft.forward(staged);
        out->enq(std::move(staged));
        staged.clear();
    }

    Fifo<SampleVec> *in;
    Fifo<SampleVec> *out;
    phy::Fft fft;
    bool inverse;
    int busy = 0;
    SampleVec staged;
};

/** Prepends the cyclic prefix and streams samples one per cycle. */
class CpStreamMod : public li::Module
{
  public:
    CpStreamMod(Fifo<SampleVec> *in_, Fifo<Sample> *out_)
        : li::Module("cp_insert"), in(in_), out(out_)
    {}

    void reset() { pending.clear(); }

    bool
    tick() override
    {
        if (!pending.empty()) {
            if (!out->canEnq()) {
                out->noteFullStall();
                return false;
            }
            out->enq(pending.front());
            pending.pop_front();
            return true;
        }
        if (!in->canDeq())
            return false;
        SampleVec body = in->deq();
        SampleVec sym = phy::addCyclicPrefix(body);
        pending.assign(sym.begin(), sym.end());
        return true;
    }

  private:
    Fifo<SampleVec> *in;
    Fifo<Sample> *out;
    std::deque<Sample> pending;
};

/** The software channel partition: impairs one sample per cycle. */
class ChannelMod : public li::Module
{
  public:
    ChannelMod(Fifo<Sample> *in_, Fifo<Sample> *out_,
               channel::Channel *chan_)
        : li::Module("sw_channel"), in(in_), out(out_), chan(chan_)
    {}

    void
    reset(std::uint64_t packet_index_)
    {
        packet_index = packet_index_;
        sample_index = 0;
    }

    bool
    tick() override
    {
        if (!in->canDeq() || !out->canEnq())
            return false;
        out->enq(chan->impairSample(in->deq(), packet_index,
                                    sample_index++));
        return true;
    }

  private:
    Fifo<Sample> *in;
    Fifo<Sample> *out;
    channel::Channel *chan;
    std::uint64_t packet_index = 0;
    std::uint64_t sample_index = 0;
};

/** Collects 80 samples, strips the CP, emits the 64-sample body. */
class SymbolCollectMod : public li::Module
{
  public:
    SymbolCollectMod(Fifo<Sample> *in_, Fifo<SampleVec> *out_)
        : li::Module("cp_remove"), in(in_), out(out_)
    {}

    void reset() { buf.clear(); }

    bool
    tick() override
    {
        if (buf.size() ==
            static_cast<size_t>(phy::OfdmGeometry::kSymbolLen)) {
            if (!out->canEnq()) {
                out->noteFullStall();
                return false;
            }
            out->enq(phy::removeCyclicPrefix(buf));
            buf.clear();
            return true;
        }
        if (!in->canDeq())
            return false;
        buf.push_back(in->deq());
        return true;
    }

  private:
    Fifo<Sample> *in;
    Fifo<SampleVec> *out;
    SampleVec buf;
};

/** Extracts and equalizes the 48 data subcarriers (perfect CSI). */
class EqualizerMod : public li::Module
{
  public:
    EqualizerMod(Fifo<SampleVec> *in_, Fifo<SampleVec> *out_,
                 const channel::Channel *chan_)
        : li::Module("equalizer"), in(in_), out(out_), chan(chan_)
    {}

    void
    reset(std::uint64_t packet_index_)
    {
        packet_index = packet_index_;
        symbol = 0;
    }

    bool
    tick() override
    {
        if (!in->canDeq() || !out->canEnq())
            return false;
        SampleVec bins = in->deq();
        SampleVec data(phy::OfdmGeometry::kDataCarriers);
        for (int d = 0; d < phy::OfdmGeometry::kDataCarriers; ++d) {
            int bin = phy::OfdmGeometry::dataBin(d);
            Sample h = chan ? chan->binGain(packet_index, symbol, bin)
                            : Sample(1.0, 0.0);
            data[static_cast<size_t>(d)] =
                bins[static_cast<size_t>(bin)] / h;
        }
        ++symbol;
        out->enq(std::move(data));
        return true;
    }

  private:
    Fifo<SampleVec> *in;
    Fifo<SampleVec> *out;
    const channel::Channel *chan;
    std::uint64_t packet_index = 0;
    int symbol = 0;
};

/** Soft demapper: one symbol's data carriers -> N_CBPS soft bits. */
class DemapperMod : public li::Module
{
  public:
    DemapperMod(Fifo<SampleVec> *in_, Fifo<SoftVec> *out_,
                phy::Modulation mod, const phy::Demapper::Config &cfg)
        : li::Module("demapper"), in(in_), out(out_),
          demapper(mod, cfg)
    {}

    void
    reset()
    {
        busy = 0;
        staged.clear();
    }

    bool
    tick() override
    {
        if (busy > 0) {
            if (--busy == 0)
                emit();
            return true;
        }
        if (!staged.empty())
            return false;
        if (!in->canDeq())
            return false;
        staged = in->deq();
        busy = phy::OfdmGeometry::kDataCarriers;
        return true;
    }

  private:
    void
    emit()
    {
        if (!out->canEnq()) {
            out->noteFullStall();
            busy = 1;
            return;
        }
        out->enq(demapper.demapStream(staged));
        staged.clear();
    }

    Fifo<SampleVec> *in;
    Fifo<SoftVec> *out;
    phy::Demapper demapper;
    int busy = 0;
    SampleVec staged;
};

/** Per-symbol soft deinterleaver. */
class DeinterleaverMod : public li::Module
{
  public:
    DeinterleaverMod(Fifo<SoftVec> *in_, Fifo<SoftVec> *out_,
                     phy::Modulation mod)
        : li::Module("deinterleaver"), in(in_), out(out_), il(mod)
    {}

    void
    reset()
    {
        busy = 0;
        staged.clear();
    }

    bool
    tick() override
    {
        if (busy > 0) {
            if (--busy == 0)
                emit();
            return true;
        }
        if (!staged.empty())
            return false;
        if (!in->canDeq())
            return false;
        staged = in->deq();
        // Per-subcarrier granularity: nBpsc bits move in parallel.
        busy = phy::OfdmGeometry::kDataCarriers;
        return true;
    }

  private:
    void
    emit()
    {
        if (!out->canEnq()) {
            out->noteFullStall();
            busy = 1;
            return;
        }
        out->enq(il.deinterleave(staged));
        staged.clear();
    }

    Fifo<SoftVec> *in;
    Fifo<SoftVec> *out;
    phy::Interleaver il;
    int busy = 0;
    SoftVec staged;
};

/** Depuncturer: one rate-1/2 soft pair per cycle, with erasures. */
class DepuncturerMod : public li::Module
{
  public:
    DepuncturerMod(Fifo<SoftVec> *in_, Fifo<SoftPairTok> *out_,
                   phy::CodeRate rate, int lanes_)
        : li::Module("depuncturer"), in(in_), out(out_), punct(rate),
          lanes(lanes_)
    {}

    void reset() { staged.clear(); }

    bool
    tick() override
    {
        bool busy = false;
        for (int i = 0; i < lanes; ++i) {
            if (staged.size() < 2 || !out->canEnq())
                break;
            SoftPairTok tok;
            tok.a = staged.front();
            staged.pop_front();
            tok.b = staged.front();
            staged.pop_front();
            out->enq(tok);
            busy = true;
        }
        if (busy)
            return true;
        if (!in->canDeq())
            return false;
        SoftVec full = punct.depuncture(in->deq());
        staged.insert(staged.end(), full.begin(), full.end());
        return true;
    }

  private:
    Fifo<SoftVec> *in;
    Fifo<SoftPairTok> *out;
    phy::Puncturer punct;
    int lanes;
    std::deque<SoftBit> staged;
};

/**
 * The decoder / BER unit (runs in its own 60 MHz domain): consumes
 * one soft pair per cycle, decodes the terminated block with the
 * pluggable kernel, then streams decisions out one per cycle after
 * the modeled pipeline latency.
 */
class DecoderMod : public li::Module
{
  public:
    DecoderMod(Fifo<SoftPairTok> *in_, Fifo<SoftDecision> *out_,
               decode::SoftDecoder *dec_, int lanes_)
        : li::Module("decoder"), in(in_), out(out_), dec(dec_),
          lanes(lanes_)
    {}

    void
    reset(size_t total_steps_)
    {
        total_steps = total_steps_;
        soft.clear();
        soft.reserve(2 * total_steps_);
        decisions.clear();
        latency_wait = 0;
        emitted = 0;
    }

    bool
    tick() override
    {
        // Phase 3: stream decoded bits (the extra lane models the
        // streaming hardware's ability to overlap decode output with
        // input collection, which the block-kernel form serializes).
        if (!decisions.empty()) {
            if (latency_wait > 0) {
                --latency_wait;
                return true;
            }
            bool busy = false;
            for (int i = 0; i < lanes; ++i) {
                if (decisions.empty() || !out->canEnq())
                    break;
                out->enq(decisions.front());
                decisions.pop_front();
                ++emitted;
                busy = true;
            }
            return busy;
        }
        // Phase 1: collect the block.
        bool busy = false;
        for (int i = 0; i < lanes; ++i) {
            if (soft.size() >= 2 * total_steps || !in->canDeq())
                break;
            SoftPairTok tok = in->deq();
            soft.push_back(tok.a);
            soft.push_back(tok.b);
            busy = true;
            // Phase 2: decode once the terminated block is in.
            if (soft.size() == 2 * total_steps) {
                auto dv = dec->decodeBlock(soft);
                decisions.assign(dv.begin(), dv.end());
                latency_wait = dec->pipelineLatencyCycles();
            }
        }
        return busy;
    }

  private:
    Fifo<SoftPairTok> *in;
    Fifo<SoftDecision> *out;
    decode::SoftDecoder *dec;
    int lanes;
    size_t total_steps = 0;
    SoftVec soft;
    std::deque<SoftDecision> decisions;
    int latency_wait = 0;
    size_t emitted = 0;
};

/** Descrambles decisions and keeps only the payload bits. */
class DescramblerMod : public li::Module
{
  public:
    DescramblerMod(Fifo<SoftDecision> *in_, Fifo<SoftDecision> *out_,
                   std::uint8_t seed_, int lanes_)
        : li::Module("descrambler"), in(in_), out(out_), seed(seed_),
          scrambler(seed_), lanes(lanes_)
    {}

    void
    reset(size_t payload_bits_, size_t info_bits_)
    {
        payload_bits = payload_bits_;
        info_bits = info_bits_;
        consumed = 0;
        scrambler.reset(seed);
    }

    bool
    tick() override
    {
        bool busy = false;
        for (int i = 0; i < lanes; ++i) {
            if (!in->canDeq())
                break;
            if (consumed < payload_bits && !out->canEnq()) {
                out->noteFullStall();
                break;
            }
            SoftDecision d = in->deq();
            if (consumed < info_bits) {
                Bit prbs = scrambler.nextPrbsBit();
                if (consumed < payload_bits) {
                    d.bit = d.bit ^ prbs;
                    out->enq(d);
                }
            }
            // Tail decisions beyond info_bits consumed silently.
            ++consumed;
            busy = true;
        }
        return busy;
    }

  private:
    Fifo<SoftDecision> *in;
    Fifo<SoftDecision> *out;
    std::uint8_t seed;
    phy::Scrambler scrambler;
    int lanes;
    size_t payload_bits = 0;
    size_t info_bits = 0;
    size_t consumed = 0;
};

/** Terminal sink collecting the payload decisions. */
class RxSinkMod : public li::Module
{
  public:
    RxSinkMod(Fifo<SoftDecision> *in_, int lanes_)
        : li::Module("rx_sink"), in(in_), lanes(lanes_)
    {}

    void
    reset(size_t expected_)
    {
        expected = expected_;
        got.clear();
    }

    bool done() const { return got.size() == expected; }
    const std::vector<SoftDecision> &received() const { return got; }

    bool
    tick() override
    {
        bool busy = false;
        for (int i = 0; i < lanes; ++i) {
            if (!in->canDeq())
                break;
            got.push_back(in->deq());
            busy = true;
        }
        return busy;
    }

  private:
    Fifo<SoftDecision> *in;
    int lanes;
    size_t expected = 0;
    std::vector<SoftDecision> got;
};

} // namespace

struct LiTransceiver::Impl {
    phy::RateParams params;
    phy::OfdmReceiver::Config rx_cfg;
    li::Scheduler sched;
    li::ClockDomain *baseband = nullptr;
    li::ClockDomain *decoder_clk = nullptr;
    li::ClockDomain *host = nullptr;

    std::unique_ptr<channel::Channel> chan;
    std::unique_ptr<decode::SoftDecoder> dec;
    phy::OfdmTransmitter geometry; // frame geometry queries only

    // Modules (owned by the scheduler).
    BitSourceMod *source = nullptr;
    ScramblerMod *scrambler = nullptr;
    EncoderMod *encoder = nullptr;
    PuncturerMod *puncturer = nullptr;
    InterleaverMod *interleaver = nullptr;
    MapperPilotMod *mapper = nullptr;
    FftMod *ifft = nullptr;
    CpStreamMod *cp = nullptr;
    ChannelMod *channel_mod = nullptr;
    SymbolCollectMod *collector = nullptr;
    FftMod *fft = nullptr;
    EqualizerMod *equalizer = nullptr;
    DemapperMod *demapper = nullptr;
    DeinterleaverMod *deinterleaver = nullptr;
    DepuncturerMod *depuncturer = nullptr;
    DecoderMod *decoder = nullptr;
    DescramblerMod *descrambler = nullptr;
    RxSinkMod *sink = nullptr;

    Impl(phy::RateIndex rate, const phy::OfdmReceiver::Config &cfg,
         const std::string &channel_name,
         const li::Config &channel_cfg,
         const LiTransceiverClocks &clocks)
        : params(phy::rateTable(rate)), rx_cfg(cfg),
          geometry(rate, cfg.scramblerSeed)
    {
        chan = channel::makeChannel(channel_name, channel_cfg);
        dec = decode::makeDecoder(cfg.decoder, cfg.decoderCfg);

        baseband =
            sched.createDomain("baseband", clocks.basebandMhz);
        decoder_clk =
            sched.createDomain("ber_unit", clocks.decoderMhz);
        host = sched.createDomain("host", clocks.hostMhz);

        // --- FIFOs. Names follow the Figure 1 block boundaries.
        auto *f_bits = sched.connectFifo<Bit>("tx_bits", 8, baseband,
                                              baseband);
        auto *f_scr = sched.connectFifo<Bit>("scrambled", 8, baseband,
                                             baseband);
        auto *f_pairs = sched.connectFifo<std::uint8_t>(
            "coded_pairs", 8, baseband, baseband);
        auto *f_punct = sched.connectFifo<Bit>("punctured", 8,
                                               baseband, baseband);
        auto *f_blocks = sched.connectFifo<BitVec>(
            "interleaved_blocks", 4, baseband, baseband);
        auto *f_freq = sched.connectFifo<SampleVec>(
            "freq_symbols", 4, baseband, baseband);
        auto *f_time = sched.connectFifo<SampleVec>(
            "time_symbols", 4, baseband, baseband);
        auto *f_tx_samp = sched.connectFifo<Sample>(
            "tx_samples", 256, baseband, host);
        auto *f_rx_samp = sched.connectFifo<Sample>(
            "rx_samples", 256, host, baseband);
        auto *f_rx_sym = sched.connectFifo<SampleVec>(
            "rx_symbols", 4, baseband, baseband);
        auto *f_rx_freq = sched.connectFifo<SampleVec>(
            "rx_freq", 4, baseband, baseband);
        auto *f_rx_data = sched.connectFifo<SampleVec>(
            "rx_data_carriers", 4, baseband, baseband);
        auto *f_soft_sym = sched.connectFifo<SoftVec>(
            "soft_symbols", 4, baseband, baseband);
        auto *f_soft_deint = sched.connectFifo<SoftVec>(
            "soft_deinterleaved", 4, baseband, baseband);
        auto *f_soft_pairs = sched.connectFifo<SoftPairTok>(
            "soft_pairs", 16, baseband, decoder_clk);
        auto *f_decisions = sched.connectFifo<SoftDecision>(
            "decisions", 16, decoder_clk, decoder_clk);
        auto *f_payload = sched.connectFifo<SoftDecision>(
            "payload", 16, decoder_clk, decoder_clk);

        // --- Modules, registered in pipeline order. Bit-granularity
        // stages get a datapath wide enough to keep up with one
        // OFDM symbol (80 baseband cycles) per N_CBPS coded bits --
        // exactly why real basebands use multi-bit buses for the
        // bit-level blocks.
        const int lanes = (params.nCbps + 79) / 80 + 1;
        const int dec_lanes = 2;
        auto adopt = [&](auto mod, li::ClockDomain *dom) {
            auto *raw = mod.get();
            sched.adopt(std::move(mod), dom);
            return raw;
        };
        source = adopt(std::make_unique<BitSourceMod>(f_bits, lanes),
                       baseband);
        scrambler = adopt(std::make_unique<ScramblerMod>(
                              f_bits, f_scr, cfg.scramblerSeed,
                              lanes),
                          baseband);
        encoder = adopt(std::make_unique<EncoderMod>(f_scr, f_pairs,
                                                     lanes),
                        baseband);
        puncturer = adopt(std::make_unique<PuncturerMod>(
                              f_pairs, f_punct, params.codeRate,
                              lanes),
                          baseband);
        interleaver = adopt(std::make_unique<InterleaverMod>(
                                f_punct, f_blocks, params.modulation,
                                lanes),
                            baseband);
        mapper = adopt(std::make_unique<MapperPilotMod>(
                           f_blocks, f_freq, params.modulation),
                       baseband);
        ifft = adopt(std::make_unique<FftMod>("ifft", f_freq, f_time,
                                              true),
                     baseband);
        cp = adopt(std::make_unique<CpStreamMod>(f_time, f_tx_samp),
                   baseband);
        channel_mod = adopt(std::make_unique<ChannelMod>(
                                f_tx_samp, f_rx_samp, chan.get()),
                            host);
        collector = adopt(std::make_unique<SymbolCollectMod>(
                              f_rx_samp, f_rx_sym),
                          baseband);
        fft = adopt(std::make_unique<FftMod>("fft", f_rx_sym,
                                             f_rx_freq, false),
                    baseband);
        equalizer = adopt(std::make_unique<EqualizerMod>(
                              f_rx_freq, f_rx_data, chan.get()),
                          baseband);
        demapper = adopt(std::make_unique<DemapperMod>(
                             f_rx_data, f_soft_sym, params.modulation,
                             cfg.demapper),
                         baseband);
        deinterleaver = adopt(std::make_unique<DeinterleaverMod>(
                                  f_soft_sym, f_soft_deint,
                                  params.modulation),
                              baseband);
        depuncturer = adopt(std::make_unique<DepuncturerMod>(
                                f_soft_deint, f_soft_pairs,
                                params.codeRate, lanes),
                            baseband);
        decoder = adopt(std::make_unique<DecoderMod>(
                            f_soft_pairs, f_decisions, dec.get(),
                            dec_lanes),
                        decoder_clk);
        descrambler = adopt(std::make_unique<DescramblerMod>(
                                f_decisions, f_payload,
                                cfg.scramblerSeed, dec_lanes),
                            decoder_clk);
        sink = adopt(std::make_unique<RxSinkMod>(f_payload,
                                                 dec_lanes),
                     decoder_clk);
    }
};

LiTransceiver::LiTransceiver(phy::RateIndex rate,
                             const phy::OfdmReceiver::Config &rx_cfg,
                             const std::string &channel_name,
                             const li::Config &channel_cfg,
                             const LiTransceiverClocks &clocks)
    : impl(std::make_unique<Impl>(rate, rx_cfg, channel_name,
                                  channel_cfg, clocks))
{}

LiTransceiver::LiTransceiver(const ScenarioSpec &spec)
    : LiTransceiver(spec.rate, spec.rx, spec.channel, spec.channelCfg,
                    spec.clocks)
{
    kernels::applyPolicy(spec.kernel);
}

LiTransceiver::~LiTransceiver() = default;

int
LiTransceiver::syncFifoCount() const
{
    return impl->sched.syncFifoCount();
}

li::Scheduler &
LiTransceiver::scheduler()
{
    return impl->sched;
}

LiPacketResult
LiTransceiver::runPacket(const BitVec &payload,
                         std::uint64_t packet_index)
{
    Impl &im = *impl;
    wilis_assert(!payload.empty(), "empty payload");

    const size_t info_bits = im.geometry.paddedInfoBits(payload.size());
    const size_t total_steps = info_bits + phy::ConvCode::kTailBits;

    BitVec padded = payload;
    padded.resize(info_bits, 0);

    im.source->load(padded);
    im.scrambler->reset();
    im.encoder->reset(info_bits);
    im.puncturer->reset();
    im.interleaver->reset();
    im.mapper->reset();
    im.ifft->reset();
    im.cp->reset();
    im.channel_mod->reset(packet_index);
    im.collector->reset();
    im.fft->reset();
    im.equalizer->reset(packet_index);
    im.demapper->reset();
    im.deinterleaver->reset();
    im.depuncturer->reset();
    im.decoder->reset(total_steps);
    im.descrambler->reset(payload.size(), info_bits);
    im.sink->reset(payload.size());

    const std::uint64_t bb_start = im.baseband->cycles();
    const std::uint64_t dec_start = im.decoder_clk->cycles();

    // Generous bound: ~100 edges per payload bit across 3 domains.
    const std::uint64_t max_edges =
        400ull * static_cast<std::uint64_t>(total_steps) + 200000;
    im.sched.runUntilIdle(32, max_edges);
    wilis_assert(im.sink->done(),
                 "LI pipeline stalled: sink has %zu of %zu bits",
                 im.sink->received().size(), payload.size());

    LiPacketResult res;
    res.soft = im.sink->received();
    res.payload.resize(res.soft.size());
    for (size_t i = 0; i < res.soft.size(); ++i)
        res.payload[i] = res.soft[i].bit;
    res.basebandCycles = im.baseband->cycles() - bb_start;
    res.decoderCycles = im.decoder_clk->cycles() - dec_start;
    res.samples = im.geometry.numSamples(payload.size());
    return res;
}

} // namespace sim
} // namespace wilis
