#include "sim/topology.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "common/random.hh"

namespace wilis {
namespace sim {

Topology::Topology(const TopologySpec &spec, int num_users,
                   std::uint64_t seed)
    : spec_(spec), seed_(seed),
      pathloss_(spec.pathloss,
                CounterRng(seed).at(0x70B0ull)) // shadowing stream
{
    wilis_assert(spec_.rows >= 1 && spec_.cols >= 1,
                 "topology grid %dx%d needs >= 1 cell", spec_.rows,
                 spec_.cols);
    wilis_assert(num_users >= 1, "topology needs >= 1 user, got %d",
                 num_users);
    wilis_assert(spec_.cellSpacingM > 0.0,
                 "cell spacing %g m <= 0 (all base stations would "
                 "coincide)",
                 spec_.cellSpacingM);
    wilis_assert(spec_.cellRadiusM > 0.0,
                 "cell radius %g m <= 0", spec_.cellRadiusM);
    wilis_assert(spec_.minDistanceM >= 0.0 &&
                     spec_.minDistanceM < spec_.cellRadiusM,
                 "min distance %g m outside [0, radius %g m)",
                 spec_.minDistanceM, spec_.cellRadiusM);

    const int cells = numCells();
    users_.resize(static_cast<size_t>(num_users));
    cell_users_.resize(static_cast<size_t>(cells));
    gains_.resize(static_cast<size_t>(num_users) *
                  static_cast<size_t>(cells));

    const CounterRng root(seed_);
    for (int u = 0; u < num_users; ++u) {
        User &usr = users_[static_cast<size_t>(u)];
        usr.cell = u % cells;
        cell_users_[static_cast<size_t>(usr.cell)].push_back(u);

        // Uniform drop over the serving annulus [minDistance,
        // radius): r = sqrt(lerp(min^2, R^2, u1)) gives uniform
        // area density, theta uniform. Both draws come from the
        // user's own counter stream (chained forks -- XOR-ing the
        // user id into the purpose constant would alias against
        // other purpose families at large user counts), so
        // placement never depends on construction order.
        const CounterRng place =
            root.fork(0x9D0Cull)
                .fork(static_cast<std::uint64_t>(u));
        const double lo2 = spec_.minDistanceM * spec_.minDistanceM;
        const double hi2 = spec_.cellRadiusM * spec_.cellRadiusM;
        const double r =
            std::sqrt(lo2 + (hi2 - lo2) * place.doubleAt(0));
        const double theta =
            2.0 * std::numbers::pi * place.doubleAt(1);
        const Position center = cellCenter(usr.cell);
        usr.pos.x = center.x + r * std::cos(theta);
        usr.pos.y = center.y + r * std::sin(theta);
        usr.servingDistanceM = r;

        for (int c = 0; c < cells; ++c) {
            gains_[static_cast<size_t>(u) *
                       static_cast<size_t>(cells) +
                   static_cast<size_t>(c)] =
                linkGainLinAt(usr.pos, u, c);
        }
    }
}

int
Topology::at(int u) const
{
    wilis_assert(u >= 0 && u < numUsers(), "user %d out of %d", u,
                 numUsers());
    return u;
}

Position
Topology::cellCenter(int c) const
{
    wilis_assert(c >= 0 && c < numCells(), "cell %d out of %d", c,
                 numCells());
    return Position{(c % spec_.cols) * spec_.cellSpacingM,
                    (c / spec_.cols) * spec_.cellSpacingM};
}

const std::vector<int> &
Topology::cellUsers(int c) const
{
    wilis_assert(c >= 0 && c < numCells(), "cell %d out of %d", c,
                 numCells());
    return cell_users_[static_cast<size_t>(c)];
}

double
Topology::linkGainLinAt(const Position &pos, int u, int c) const
{
    const Position bs = cellCenter(c);
    const double dx = pos.x - bs.x;
    const double dy = pos.y - bs.y;
    const double d = std::sqrt(dx * dx + dy * dy);
    return std::pow(10.0, pathloss_.linkSnrDb(d, u, c) / 10.0);
}

double
Topology::linkSnrDb(int u, int c) const
{
    wilis_assert(c >= 0 && c < numCells(), "cell %d out of %d", c,
                 numCells());
    return 10.0 * std::log10(linkGainLin(u, c));
}

double
Topology::staticSinrDb(int u) const
{
    const int serv = servingCell(u);
    double interference = 0.0;
    for (int c = 0; c < numCells(); ++c) {
        if (c != serv)
            interference += linkGainLin(u, c);
    }
    const double sinr =
        linkGainLin(u, serv) / (1.0 + interference);
    return 10.0 * std::log10(sinr);
}

} // namespace sim
} // namespace wilis
