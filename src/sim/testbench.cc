#include "sim/testbench.hh"

#include "common/logging.hh"

namespace wilis {
namespace sim {

Testbench::Testbench(const TestbenchConfig &cfg_) : cfg(cfg_)
{
    tx_ = std::make_unique<phy::OfdmTransmitter>(
        cfg.rate, cfg.rx.scramblerSeed);
    rx_ = std::make_unique<phy::OfdmReceiver>(cfg.rate, cfg.rx);
    chan = channel::makeChannel(cfg.channel, cfg.channelCfg);
}

BitVec
Testbench::makePayload(size_t bits, std::uint64_t packet_index) const
{
    CounterRng rng = CounterRng(cfg.payloadSeed).fork(packet_index);
    BitVec payload(bits);
    for (size_t i = 0; i < bits; ++i)
        payload[i] = static_cast<Bit>(rng.at(i) & 1);
    return payload;
}

PacketResult
Testbench::runPacket(size_t payload_bits, std::uint64_t packet_index)
{
    return runPacketWithPayload(makePayload(payload_bits, packet_index),
                                packet_index);
}

PacketResult
Testbench::runPacketWithPayload(const BitVec &payload,
                                std::uint64_t packet_index)
{
    PacketResult res;
    res.txPayload = payload;

    SampleVec samples = tx_->modulate(payload);
    chan->apply(samples, packet_index);
    res.rx = rx_->demodulate(samples, payload.size(), chan.get(),
                             packet_index);
    res.bitErrors = res.rx.bitErrors(payload);
    res.ok = res.bitErrors == 0;
    return res;
}

} // namespace sim
} // namespace wilis
