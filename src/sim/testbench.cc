#include "sim/testbench.hh"

#include "common/logging.hh"
#include "sim/scenario.hh"

namespace wilis {
namespace sim {

Testbench::Testbench(const TestbenchConfig &cfg_) : cfg(cfg_)
{
    kernels::applyPolicy(cfg.kernel);
    tx_ = std::make_unique<phy::OfdmTransmitter>(
        cfg.rate, cfg.rx.scramblerSeed);
    rx_ = std::make_unique<phy::OfdmReceiver>(cfg.rate, cfg.rx);
    chan = channel::makeChannel(cfg.channel, cfg.channelCfg);
}

Testbench::Testbench(const ScenarioSpec &spec)
    : Testbench(spec.testbench())
{}

BitVec
Testbench::makePayload(size_t bits, std::uint64_t packet_index) const
{
    BitVec payload(bits);
    makePayloadInto(BitSpan(payload), packet_index);
    return payload;
}

void
Testbench::makePayloadInto(BitSpan out,
                           std::uint64_t packet_index) const
{
    fillDeterministicBits(out, cfg.payloadSeed, packet_index);
}

PacketResult
FrameResult::toPacketResult() const
{
    PacketResult res;
    res.txPayload.assign(txPayload.begin(), txPayload.end());
    res.rx = rx.toResult();
    res.bitErrors = bitErrors;
    res.ok = ok;
    return res;
}

PacketResult
Testbench::runPacket(size_t payload_bits, std::uint64_t packet_index)
{
    return runFrame(payload_bits, packet_index).toPacketResult();
}

PacketResult
Testbench::runPacketWithPayload(const BitVec &payload,
                                std::uint64_t packet_index)
{
    return runFrameWithPayload(BitView(payload), packet_index)
        .toPacketResult();
}

FrameResult
Testbench::runFrame(size_t payload_bits, std::uint64_t packet_index)
{
    arena_.reset();
    BitSpan payload = arena_.alloc<Bit>(payload_bits);
    makePayloadInto(payload, packet_index);
    return runFrameInternal(payload, packet_index);
}

FrameResult
Testbench::runFrameWithPayload(BitView payload,
                               std::uint64_t packet_index)
{
    arena_.reset();
    return runFrameInternal(payload, packet_index);
}

FrameResult
Testbench::runFrameInternal(BitView payload,
                            std::uint64_t packet_index)
{
    FrameContext ctx(arena_);
    FrameResult res;
    res.txPayload = payload;

    SampleSpan samples = tx_->modulate(payload, ctx);
    chan->apply(samples, packet_index);
    res.rx = rx_->demodulate(samples, payload.size(), chan.get(),
                             packet_index, ctx);
    res.bitErrors = res.rx.bitErrors(payload);
    res.ok = res.bitErrors == 0;
    return res;
}

} // namespace sim
} // namespace wilis
