/**
 * @file
 * Pieces shared by the two multi-cell engine implementations
 * (multicell_sim.cc, multicell_soa.cc) that must stay textually
 * identical between them: statistics recording, packet-trace
 * plumbing and the scalar interference fade. Internal to the sim
 * module (the single-cell engine reuses the trace plumbing too).
 *
 * Concurrency discipline for everything in this header: all state
 * (TraceCtx, per-user stats, the seq ring) is *barrier-phase
 * owned*, never locked -- between two LockstepTeam::barrier()
 * calls each structure is touched by exactly one worker (the
 * serving cell's owner, or worker 0 inside a mobility epoch with
 * the team parked at the barrier). That ownership is invisible to
 * lock-based static analysis, so it is enforced dynamically: the
 * CI TSan leg runs the threaded suites at 8 workers, where any
 * phase-ownership violation is a hard data-race report (the
 * barrier itself is pure release/acquire atomics, see
 * common/lockstep.hh, so TSan needs no suppressions).
 */

#ifndef WILIS_SIM_MULTICELL_DETAIL_HH
#define WILIS_SIM_MULTICELL_DETAIL_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "mac/arq.hh"
#include "mac/packet_trace.hh"
#include "mac/traffic.hh"
#include "sim/mobility.hh"
#include "sim/network_sim.hh"

namespace wilis {
namespace sim {
namespace detail {

/**
 * Unit-mean exponential deviate (Rayleigh power fading) for one
 * interference link at one slot, keyed so any (user, cell, slot)
 * can be regenerated independently. Interferer identity changes
 * slot to slot, so i.i.d. per-slot fading is the right model --
 * temporal correlation only matters on the serving link, where the
 * rate controller tracks it. The batched twin lives in the
 * sinrAccumBatch kernel (common/kernels_impl.hh).
 */
inline double
interferenceFade(const CounterRng &stream, std::uint64_t counter)
{
    double u = 1.0 - stream.doubleAt(counter);
    if (u < 1e-300)
        u = 1e-300;
    return -std::log(u);
}

/**
 * Identity of the queued packet an in-flight ARQ sequence number
 * carries: the traffic queue's packet id, its arrival slot and its
 * class -- what Grant/Tx/Ack/Expire trace events are stamped with.
 */
struct PktRef {
    /** Per-user packet sequence number. */
    std::uint64_t pkt = 0;
    /** Arrival slot (end-to-end latency baseline). */
    std::uint64_t arrival = 0;
    /** Traffic class. */
    mac::TrafficClass cls = mac::TrafficClass::Data;
};

/**
 * One user's packet-trace recording context: a null trace disables
 * every hook (the untraced hot path pays a single branch), and the
 * ring maps in-window ARQ sequence numbers back to packet
 * identities (an ARQ seq S is delivered before seq S + window can
 * pop, so window-sized storage suffices).
 */
struct TraceCtx {
    /** Destination trace; null = recording disabled. */
    mac::PacketTrace *trace = nullptr;
    /** Recording shard (the owning cell or user lane). */
    int shard = 0;
    /** Serving cell stamped on events. */
    int cell = 0;
    /** Global user id stamped on events. */
    int user = 0;
    /** ARQ seq -> packet identity, indexed by seq % window. */
    std::vector<PktRef> ring;

    /** Attach to @p t and size the seq ring for @p window. */
    void
    bind(mac::PacketTrace *t, int shard_, int cell_, int user_,
         int window)
    {
        trace = t;
        shard = shard_;
        cell = cell_;
        user = user_;
        ring.assign(static_cast<size_t>(window), PktRef{});
    }

    /**
     * Re-point the recording lane and stamped cell after a
     * serving-cell handover, *preserving* the seq ring -- in-flight
     * ARQ sequence numbers keep their packet identities across the
     * migration (bind() would wipe them).
     */
    void
    rebind(int shard_, int cell_)
    {
        shard = shard_;
        cell = cell_;
    }

    /** The identity slot of ARQ sequence number @p seq. */
    PktRef &
    ref(std::uint64_t seq)
    {
        return ring[static_cast<size_t>(
            seq % static_cast<std::uint64_t>(ring.size()))];
    }
};

/** Bind ARQ seq @p seq to the popped packet @p p (trace only). */
inline void
notePop(TraceCtx &tc, std::uint64_t seq, const mac::Packet &p)
{
    if (!tc.trace)
        return;
    tc.ref(seq) = PktRef{p.seq, p.arrival, p.cls};
}

/** Record a scheduler grant of ARQ seq @p seq at slot @p t. */
inline void
recordGrant(TraceCtx &tc, std::uint64_t t, std::uint64_t seq,
            int attempts, std::int64_t first_wait)
{
    if (!tc.trace)
        return;
    const PktRef &r = tc.ref(seq);
    tc.trace->record(
        tc.shard,
        mac::PacketTrace::Entry{t, tc.cell, tc.user, r.cls, r.pkt,
                                mac::PacketEvent::Grant, attempts,
                                first_wait});
}

/** Record the transmission outcome of ARQ seq @p seq at @p t. */
inline void
recordTx(TraceCtx &tc, std::uint64_t t, std::uint64_t seq, bool ok,
         int rate)
{
    if (!tc.trace)
        return;
    const PktRef &r = tc.ref(seq);
    tc.trace->record(
        tc.shard,
        mac::PacketTrace::Entry{t, tc.cell, tc.user, r.cls, r.pkt,
                                mac::PacketEvent::Tx, ok ? 1 : 0,
                                rate});
}

/**
 * Record one ARQ delivery into the user's statistics, emitting the
 * trace's Ack/Expire event when @p tc has a bound trace (@p now is
 * the delivery slot). @p post_ho routes a successful delivery's
 * payload into the post-first-handover goodput accumulator instead
 * of the pre-handover one (mobility runs only; the totals always
 * land in goodputBits).
 */
inline void
recordDelivery(UserStats &st, const mac::Arq::Delivery &d,
               size_t payload_bits, std::uint64_t now, TraceCtx &tc,
               bool post_ho = false)
{
    st.attemptsHist.add(static_cast<double>(d.attempts));
    if (tc.trace) {
        const PktRef &r = tc.ref(d.seq);
        tc.trace->record(
            tc.shard,
            mac::PacketTrace::Entry{
                now, tc.cell, tc.user, r.cls, r.pkt,
                d.dropped ? mac::PacketEvent::Expire
                          : mac::PacketEvent::Ack,
                d.attempts,
                static_cast<std::int64_t>(now - r.arrival)});
    }
    if (d.dropped) {
        ++st.dropped;
        return;
    }
    ++st.delivered;
    st.goodputBits += payload_bits;
    if (post_ho)
        st.goodputBitsPostHo += payload_bits;
    else
        st.goodputBitsPreHo += payload_bits;
    st.latencySlots.add(static_cast<double>(d.latencySlots));
    st.latencyHist.add(static_cast<double>(d.latencySlots));
}

/**
 * Record one mobility session event (handover / join / leave) into
 * @p trace. Session events are stamped seq = 0, class = data; the
 * shard is the event's *entry* cell (new cell for a handover or
 * join, the departed cell for a leave), matching the trace-format
 * spec. @p flushed / @p aborted fill the Leave arguments and are
 * ignored by the other kinds. No-op when @p trace is null.
 */
inline void
recordMobilityEvent(mac::PacketTrace *trace, std::uint64_t t,
                    const MobilityRuntime::Event &ev, int flushed,
                    int aborted)
{
    if (!trace)
        return;
    mac::PacketTrace::Entry e{t,
                              ev.toCell,
                              ev.user,
                              mac::TrafficClass::Data,
                              0,
                              mac::PacketEvent::Handover,
                              ev.fromCell,
                              ev.pingPong ? 1 : 0};
    switch (ev.kind) {
      case MobilityRuntime::Event::Kind::Handover:
        break;
      case MobilityRuntime::Event::Kind::Join:
        e.event = mac::PacketEvent::Join;
        e.arg1 = 0;
        break;
      case MobilityRuntime::Event::Kind::Leave:
        e.event = mac::PacketEvent::Leave;
        e.cell = ev.fromCell;
        e.arg0 = flushed;
        e.arg1 = aborted;
        break;
    }
    trace->record(e.cell, e);
}

} // namespace detail
} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_MULTICELL_DETAIL_HH
