/**
 * @file
 * Pieces shared by the two multi-cell engine implementations
 * (multicell_sim.cc, multicell_soa.cc) that must stay textually
 * identical between them: statistics recording, packet-trace
 * plumbing and the scalar interference fade. Internal to the sim
 * module (the single-cell engine reuses the trace plumbing too).
 *
 * Concurrency discipline for everything in this header: all state
 * (TraceCtx, per-user stats, the seq ring) is *barrier-phase
 * owned*, never locked -- between two LockstepTeam::barrier()
 * calls each structure is touched by exactly one worker (the
 * serving cell's owner, or worker 0 inside a mobility epoch with
 * the team parked at the barrier). That ownership is invisible to
 * lock-based static analysis, so it is enforced dynamically: the
 * CI TSan leg runs the threaded suites at 8 workers, where any
 * phase-ownership violation is a hard data-race report (the
 * barrier itself is pure release/acquire atomics, see
 * common/lockstep.hh, so TSan needs no suppressions).
 */

#ifndef WILIS_SIM_MULTICELL_DETAIL_HH
#define WILIS_SIM_MULTICELL_DETAIL_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/snapshot.hh"
#include "mac/arq.hh"
#include "mac/packet_trace.hh"
#include "mac/scheduler.hh"
#include "mac/softrate.hh"
#include "mac/traffic.hh"
#include "sim/mobility.hh"
#include "sim/network_sim.hh"

namespace wilis {
namespace sim {
namespace detail {

/**
 * Unit-mean exponential deviate (Rayleigh power fading) for one
 * interference link at one slot, keyed so any (user, cell, slot)
 * can be regenerated independently. Interferer identity changes
 * slot to slot, so i.i.d. per-slot fading is the right model --
 * temporal correlation only matters on the serving link, where the
 * rate controller tracks it. The batched twin lives in the
 * sinrAccumBatch kernel (common/kernels_impl.hh).
 */
inline double
interferenceFade(const CounterRng &stream, std::uint64_t counter)
{
    double u = 1.0 - stream.doubleAt(counter);
    if (u < 1e-300)
        u = 1e-300;
    return -std::log(u);
}

/**
 * Identity of the queued packet an in-flight ARQ sequence number
 * carries: the traffic queue's packet id, its arrival slot and its
 * class -- what Grant/Tx/Ack/Expire trace events are stamped with.
 */
struct PktRef {
    /** Per-user packet sequence number. */
    std::uint64_t pkt = 0;
    /** Arrival slot (end-to-end latency baseline). */
    std::uint64_t arrival = 0;
    /** Traffic class. */
    mac::TrafficClass cls = mac::TrafficClass::Data;
};

/**
 * One user's packet-trace recording context: a null trace disables
 * every hook (the untraced hot path pays a single branch), and the
 * ring maps in-window ARQ sequence numbers back to packet
 * identities (an ARQ seq S is delivered before seq S + window can
 * pop, so window-sized storage suffices).
 */
struct TraceCtx {
    /** Destination trace; null = recording disabled. */
    mac::PacketTrace *trace = nullptr;
    /** Recording shard (the owning cell or user lane). */
    int shard = 0;
    /** Serving cell stamped on events. */
    int cell = 0;
    /** Global user id stamped on events. */
    int user = 0;
    /** ARQ seq -> packet identity, indexed by seq % window. */
    std::vector<PktRef> ring;

    /** Attach to @p t and size the seq ring for @p window. */
    void
    bind(mac::PacketTrace *t, int shard_, int cell_, int user_,
         int window)
    {
        trace = t;
        shard = shard_;
        cell = cell_;
        user = user_;
        ring.assign(static_cast<size_t>(window), PktRef{});
    }

    /**
     * Re-point the recording lane and stamped cell after a
     * serving-cell handover, *preserving* the seq ring -- in-flight
     * ARQ sequence numbers keep their packet identities across the
     * migration (bind() would wipe them).
     */
    void
    rebind(int shard_, int cell_)
    {
        shard = shard_;
        cell = cell_;
    }

    /** The identity slot of ARQ sequence number @p seq. */
    PktRef &
    ref(std::uint64_t seq)
    {
        return ring[static_cast<size_t>(
            seq % static_cast<std::uint64_t>(ring.size()))];
    }

    /**
     * Serialize the recording lane and the seq ring (checkpoint).
     * The trace pointer is not stored -- the engine re-binds it on
     * resume (bind() then loadState(), restoring the lane and the
     * in-flight packet identities bind() wiped). The lane *is*
     * stored because a churned-out user keeps its pre-departure
     * binding until the next join rebinds it, and the resumed run
     * must reproduce that exactly.
     */
    void
    saveState(SnapshotWriter &w) const
    {
        w.i64(shard);
        w.i64(cell);
        w.u64(ring.size());
        for (const PktRef &r : ring) {
            w.u64(r.pkt);
            w.u64(r.arrival);
            w.u8(static_cast<std::uint8_t>(r.cls));
        }
    }

    /** Restore state written by saveState() (after bind()). */
    void
    loadState(SnapshotReader &r)
    {
        shard = static_cast<int>(r.i64());
        cell = static_cast<int>(r.i64());
        const std::uint64_t n = r.u64();
        wilis_assert(n == ring.size(),
                     "snapshot trace ring has %llu slots, bound "
                     "ring has %zu",
                     static_cast<unsigned long long>(n),
                     ring.size());
        for (PktRef &p : ring) {
            p.pkt = r.u64();
            p.arrival = r.u64();
            p.cls = static_cast<mac::TrafficClass>(r.u8());
        }
    }
};

/** Bind ARQ seq @p seq to the popped packet @p p (trace only). */
inline void
notePop(TraceCtx &tc, std::uint64_t seq, const mac::Packet &p)
{
    if (!tc.trace)
        return;
    tc.ref(seq) = PktRef{p.seq, p.arrival, p.cls};
}

/** Record a scheduler grant of ARQ seq @p seq at slot @p t. */
inline void
recordGrant(TraceCtx &tc, std::uint64_t t, std::uint64_t seq,
            int attempts, std::int64_t first_wait)
{
    if (!tc.trace)
        return;
    const PktRef &r = tc.ref(seq);
    tc.trace->record(
        tc.shard,
        mac::PacketTrace::Entry{t, tc.cell, tc.user, r.cls, r.pkt,
                                mac::PacketEvent::Grant, attempts,
                                first_wait});
}

/** Record the transmission outcome of ARQ seq @p seq at @p t. */
inline void
recordTx(TraceCtx &tc, std::uint64_t t, std::uint64_t seq, bool ok,
         int rate)
{
    if (!tc.trace)
        return;
    const PktRef &r = tc.ref(seq);
    tc.trace->record(
        tc.shard,
        mac::PacketTrace::Entry{t, tc.cell, tc.user, r.cls, r.pkt,
                                mac::PacketEvent::Tx, ok ? 1 : 0,
                                rate});
}

/**
 * Record one ARQ delivery into the user's statistics, emitting the
 * trace's Ack/Expire event when @p tc has a bound trace (@p now is
 * the delivery slot). @p post_ho routes a successful delivery's
 * payload into the post-first-handover goodput accumulator instead
 * of the pre-handover one (mobility runs only; the totals always
 * land in goodputBits).
 */
inline void
recordDelivery(UserStats &st, const mac::Arq::Delivery &d,
               size_t payload_bits, std::uint64_t now, TraceCtx &tc,
               bool post_ho = false)
{
    st.attemptsHist.add(static_cast<double>(d.attempts));
    if (tc.trace) {
        const PktRef &r = tc.ref(d.seq);
        tc.trace->record(
            tc.shard,
            mac::PacketTrace::Entry{
                now, tc.cell, tc.user, r.cls, r.pkt,
                d.dropped ? mac::PacketEvent::Expire
                          : mac::PacketEvent::Ack,
                d.attempts,
                static_cast<std::int64_t>(now - r.arrival)});
    }
    if (d.dropped) {
        ++st.dropped;
        return;
    }
    ++st.delivered;
    st.goodputBits += payload_bits;
    if (post_ho)
        st.goodputBitsPostHo += payload_bits;
    else
        st.goodputBitsPreHo += payload_bits;
    st.latencySlots.add(static_cast<double>(d.latencySlots));
    st.latencyHist.add(static_cast<double>(d.latencySlots));
}

/**
 * Record one mobility session event (handover / join / leave) into
 * @p trace. Session events are stamped seq = 0, class = data; the
 * shard is the event's *entry* cell (new cell for a handover or
 * join, the departed cell for a leave), matching the trace-format
 * spec. @p flushed / @p aborted fill the Leave arguments and are
 * ignored by the other kinds. No-op when @p trace is null.
 */
inline void
recordMobilityEvent(mac::PacketTrace *trace, std::uint64_t t,
                    const MobilityRuntime::Event &ev, int flushed,
                    int aborted)
{
    if (!trace)
        return;
    mac::PacketTrace::Entry e{t,
                              ev.toCell,
                              ev.user,
                              mac::TrafficClass::Data,
                              0,
                              mac::PacketEvent::Handover,
                              ev.fromCell,
                              ev.pingPong ? 1 : 0};
    switch (ev.kind) {
      case MobilityRuntime::Event::Kind::Handover:
        break;
      case MobilityRuntime::Event::Kind::Join:
        e.event = mac::PacketEvent::Join;
        e.arg1 = 0;
        break;
      case MobilityRuntime::Event::Kind::Leave:
        e.event = mac::PacketEvent::Leave;
        e.cell = ev.fromCell;
        e.arg0 = flushed;
        e.arg1 = aborted;
        break;
    }
    trace->record(e.cell, e);
}

/** Serialize one RunningStats by raw accumulator state (exact). */
inline void
saveStats(SnapshotWriter &w, const RunningStats &s)
{
    const RunningStats::State st = s.state();
    w.u64(st.n);
    w.f64(st.offset);
    w.f64(st.sum);
    w.f64(st.sum_sq);
}

/** Inverse of saveStats(). */
inline RunningStats
loadStats(SnapshotReader &r)
{
    RunningStats::State st;
    st.n = r.u64();
    st.offset = r.f64();
    st.sum = r.f64();
    st.sum_sq = r.f64();
    return RunningStats::fromState(st);
}

/**
 * Serialize one Histogram's counts. An empty histogram writes only
 * its zero total, preserving the lazy-allocation state on resume.
 */
inline void
saveHist(SnapshotWriter &w, const Histogram &h)
{
    w.u64(h.total());
    if (h.total() == 0)
        return;
    for (int b = 0; b < h.numBins(); ++b)
        w.u64(h.count(b));
}

/** Inverse of saveHist() (into a same-binning histogram). */
inline void
loadHist(SnapshotReader &r, Histogram &h)
{
    const std::uint64_t total = r.u64();
    std::vector<std::uint64_t> counts;
    if (total > 0) {
        counts.resize(static_cast<size_t>(h.numBins()));
        for (std::uint64_t &c : counts)
            c = r.u64();
    }
    h.restore(counts, total);
}

/**
 * Serialize one user's statistics (checkpoint). Field order is
 * declaration order in UserStats; both engines call this from the
 * same canonical global-user-id loop.
 */
inline void
saveUserStats(SnapshotWriter &w, const UserStats &st)
{
    w.marker(0x54415355); // "USAT"
    w.i64(st.user);
    w.f64(st.snrOffsetDb);
    w.i64(st.servingCell);
    w.f64(st.meanSnrDb);
    w.u64(st.framesSent);
    w.u64(st.framesOk);
    w.u64(st.stalledSlots);
    w.u64(st.retransmissions);
    w.u64(st.delivered);
    w.u64(st.dropped);
    w.u64(st.goodputBits);
    w.u64(st.fullPhyFrames);
    w.u64(st.analyticFrames);
    w.u64(st.arrivals);
    w.u64(st.queueDrops);
    w.u64(st.handovers);
    w.u64(st.pingPongs);
    w.u64(st.joins);
    w.u64(st.leaves);
    w.u64(st.goodputBitsPreHo);
    w.u64(st.goodputBitsPostHo);
    w.u64(st.preHoSlots);
    w.u64(st.postHoSlots);
    saveStats(w, st.latencySlots);
    saveStats(w, st.queueWaitSlots);
    saveStats(w, st.sinrDb);
    saveHist(w, st.latencyHist);
    saveHist(w, st.attemptsHist);
    saveHist(w, st.rateHist);
    saveHist(w, st.queueWaitHist);
    saveHist(w, st.e2eLatencyHist);
}

/** Inverse of saveUserStats(). */
inline void
loadUserStats(SnapshotReader &r, UserStats &st)
{
    r.marker(0x54415355);
    st.user = static_cast<int>(r.i64());
    st.snrOffsetDb = r.f64();
    st.servingCell = static_cast<int>(r.i64());
    st.meanSnrDb = r.f64();
    st.framesSent = r.u64();
    st.framesOk = r.u64();
    st.stalledSlots = r.u64();
    st.retransmissions = r.u64();
    st.delivered = r.u64();
    st.dropped = r.u64();
    st.goodputBits = r.u64();
    st.fullPhyFrames = r.u64();
    st.analyticFrames = r.u64();
    st.arrivals = r.u64();
    st.queueDrops = r.u64();
    st.handovers = r.u64();
    st.pingPongs = r.u64();
    st.joins = r.u64();
    st.leaves = r.u64();
    st.goodputBitsPreHo = r.u64();
    st.goodputBitsPostHo = r.u64();
    st.preHoSlots = r.u64();
    st.postHoSlots = r.u64();
    st.latencySlots = loadStats(r);
    st.queueWaitSlots = loadStats(r);
    st.sinrDb = loadStats(r);
    loadHist(r, st.latencyHist);
    loadHist(r, st.attemptsHist);
    loadHist(r, st.rateHist);
    loadHist(r, st.queueWaitHist);
    loadHist(r, st.e2eLatencyHist);
}

// ------------------------------------------------ checkpointing

/** Payload version of the multi-cell checkpoint format. */
constexpr std::uint32_t kMcCheckpointVersion = 1;

/**
 * Serialize a full mid-run engine state to
 * spec.checkpoint.file. @p E adapts one engine's layout (AoS or
 * SoA) to a common accessor surface; the byte order below is the
 * canonical one, shared by both engines, which is what makes a
 * snapshot written by either engine resumable by the other:
 *
 *   slot, then per-user blocks in global-user-id order (member
 *   cell or -1, serving gain, SoftRate, ARQ, traffic, trace ctx if
 *   tracing, UserStats), then per-cell blocks in cell order
 *   (member ids, scheduler, busy-until slot), then the mobility
 *   runtime if enabled, then the packet trace if tracing.
 *
 * Must run with every worker parked at a barrier (single-writer).
 */
template <typename E>
void
saveMcCheckpoint(const NetworkSpec &spec, E &e, std::uint64_t slot)
{
    SnapshotWriter w(kMcCheckpointVersion, spec.fingerprint());
    w.u64(slot);
    const int users = e.numUsers();
    for (int id = 0; id < users; ++id) {
        w.i64(e.memberCellOf(id));
        w.f64(e.servGainOf(id));
        e.softrateOf(id).saveState(w);
        e.arqOf(id).saveState(w);
        e.trafficOf(id).saveState(w);
        if (e.trace())
            e.tctxOf(id).saveState(w);
        saveUserStats(w, e.statsOf(id));
    }
    const int cells = e.numCells();
    for (int c = 0; c < cells; ++c) {
        const std::vector<int> ids = e.memberIdsOf(c);
        w.u64(ids.size());
        for (int id : ids)
            w.i64(id);
        e.schedOf(c).saveState(w);
        w.u64(e.busyUntilOf(c));
    }
    if (e.mob())
        e.mob()->saveState(w);
    if (e.trace())
        e.trace()->saveState(w);
    w.save(spec.checkpoint.file);
}

/**
 * Inverse of saveMcCheckpoint(): restore the engine state from
 * spec.checkpoint.file into a freshly constructed engine (initial
 * bindings done, no slots run) and return the slot to resume at.
 * Fatal on a missing file, version skew or a spec whose
 * fingerprint differs from the snapshot's.
 */
template <typename E>
std::uint64_t
loadMcCheckpoint(const NetworkSpec &spec, E &e)
{
    SnapshotReader r(spec.checkpoint.file, kMcCheckpointVersion,
                     spec.fingerprint());
    const std::uint64_t slot = r.u64();
    const int users = e.numUsers();
    for (int id = 0; id < users; ++id) {
        e.setMemberCell(id, static_cast<int>(r.i64()));
        e.setServGain(id, r.f64());
        e.softrateOf(id).loadState(r);
        e.arqOf(id).loadState(r);
        e.trafficOf(id).loadState(r);
        if (e.trace())
            e.tctxOf(id).loadState(r);
        loadUserStats(r, e.statsOf(id));
    }
    const int cells = e.numCells();
    for (int c = 0; c < cells; ++c) {
        const std::uint64_t n = r.u64();
        std::vector<int> ids;
        ids.reserve(static_cast<size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i)
            ids.push_back(static_cast<int>(r.i64()));
        e.resetCell(c, ids);
        e.schedOf(c).loadState(r);
        e.setBusyUntil(c, r.u64());
    }
    if (e.mob())
        e.mob()->loadState(r);
    if (e.trace())
        e.trace()->loadState(r);
    r.done();
    return slot;
}

} // namespace detail
} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_MULTICELL_DETAIL_HH
