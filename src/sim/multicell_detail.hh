/**
 * @file
 * Pieces shared by the two multi-cell engine implementations
 * (multicell_sim.cc, multicell_soa.cc) that must stay textually
 * identical between them: statistics recording and the scalar
 * interference fade. Internal to the sim module.
 */

#ifndef WILIS_SIM_MULTICELL_DETAIL_HH
#define WILIS_SIM_MULTICELL_DETAIL_HH

#include <cmath>
#include <cstdint>

#include "common/random.hh"
#include "mac/arq.hh"
#include "sim/network_sim.hh"

namespace wilis {
namespace sim {
namespace detail {

/**
 * Unit-mean exponential deviate (Rayleigh power fading) for one
 * interference link at one slot, keyed so any (user, cell, slot)
 * can be regenerated independently. Interferer identity changes
 * slot to slot, so i.i.d. per-slot fading is the right model --
 * temporal correlation only matters on the serving link, where the
 * rate controller tracks it. The batched twin lives in the
 * sinrAccumBatch kernel (common/kernels_impl.hh).
 */
inline double
interferenceFade(const CounterRng &stream, std::uint64_t counter)
{
    double u = 1.0 - stream.doubleAt(counter);
    if (u < 1e-300)
        u = 1e-300;
    return -std::log(u);
}

/** Record one ARQ delivery into the user's statistics. */
inline void
recordDelivery(UserStats &st, const mac::Arq::Delivery &d,
               size_t payload_bits)
{
    st.attemptsHist.add(static_cast<double>(d.attempts));
    if (d.dropped) {
        ++st.dropped;
        return;
    }
    ++st.delivered;
    st.goodputBits += payload_bits;
    st.latencySlots.add(static_cast<double>(d.latencySlots));
    st.latencyHist.add(static_cast<double>(d.latencySlots));
}

} // namespace detail
} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_MULTICELL_DETAIL_HH
