#include "sim/link_fidelity.hh"

#include <cmath>
#include <complex>

#include "channel/channel.hh"
#include "common/logging.hh"
#include "softphy/calibration_table.hh"

namespace wilis {
namespace sim {

const char *
fidelityModeName(FidelityMode mode)
{
    switch (mode) {
      case FidelityMode::Full:
        return "full";
      case FidelityMode::Analytic:
        return "analytic";
      case FidelityMode::Auto:
        return "auto";
    }
    return "?";
}

FidelityMode
fidelityModeFromName(const std::string &name)
{
    if (name == "full")
        return FidelityMode::Full;
    if (name == "analytic")
        return FidelityMode::Analytic;
    if (name == "auto")
        return FidelityMode::Auto;
    wilis_fatal("unknown fidelity mode '%s' (full|analytic|auto)",
                name.c_str());
}

bool
FidelityPolicy::fullPhySlot(std::uint64_t t) const
{
    switch (mode) {
      case FidelityMode::Full:
        return true;
      case FidelityMode::Analytic:
        return false;
      case FidelityMode::Auto:
        break;
    }
    if (t < warmupSlots)
        return true;
    if (refreshPeriod == 0 || refreshSlots == 0)
        return false;
    return (t - warmupSlots) % refreshPeriod < refreshSlots;
}

AnalyticLink::AnalyticLink(const softphy::CalibrationTable *table,
                           const channel::Channel *chan,
                           double mean_snr_db,
                           std::uint64_t draw_stream)
    : table_(table), chan_(chan), mean_snr_db_(mean_snr_db),
      draws_(draw_stream)
{
    wilis_assert(table_ && table_->valid(),
                 "analytic link needs a calibration table");
    wilis_assert(chan_ != nullptr, "analytic link needs a channel");
}

AnalyticLink::AnalyticLink(const softphy::CalibrationTable *table,
                           std::uint64_t draw_stream)
    : table_(table), chan_(nullptr), mean_snr_db_(0.0),
      draws_(draw_stream)
{
    wilis_assert(table_ && table_->valid(),
                 "analytic link needs a calibration table");
}

double
AnalyticLink::effectiveSnrDb(std::uint64_t t) const
{
    wilis_assert(chan_ != nullptr,
                 "channel-less analytic link: use drawAt()");
    // Block fading: one gain per slot; conditioning on |h|^2 turns
    // the slot into a flat channel at the effective SNR, which is
    // exactly what the table was calibrated against.
    const double h2 = std::norm(chan_->gain(t, 0));
    if (h2 <= 0.0)
        return kZeroSinrDb; // a dropped slot
    return mean_snr_db_ + 10.0 * std::log10(h2);
}

LinkFrameResult
AnalyticLink::drawAt(phy::RateIndex rate, std::uint64_t t,
                     double snr_eff_db)
{
    const double per = table_->per(rate, snr_eff_db);
    LinkFrameResult res;
    // Keyed by the slot index alone: a retransmission in a later
    // slot draws fresh slot randomness, exactly like the full PHY's
    // per-slot noise streams.
    res.ok = draws_.doubleAt(t) >= per;
    res.pber = table_->pberFeedback(rate, snr_eff_db, res.ok);
    res.fullPhy = false;
    return res;
}

void
AnalyticLink::drawBatch(const kernels::PerTableView &tv,
                        std::span<const std::int32_t> rates,
                        std::span<const double> snr_eff_db,
                        std::span<const std::uint64_t> draw_keys,
                        std::uint64_t t, std::span<std::uint8_t> ok,
                        std::span<double> pber)
{
    const size_t n = rates.size();
    wilis_assert(snr_eff_db.size() == n && draw_keys.size() == n &&
                     ok.size() == n && pber.size() == n,
                 "drawBatch spans disagree on length");
    if (n == 0)
        return;
    kernels::ops().perDrawBatch(tv, rates.data(), snr_eff_db.data(),
                                draw_keys.data(), t, n, ok.data(),
                                pber.data());
}

LinkFrameResult
AnalyticLink::transmit(phy::RateIndex rate, std::uint64_t seq,
                       std::uint64_t t)
{
    (void)seq; // payload content does not exist on the fast path
    return drawAt(rate, t, effectiveSnrDb(t));
}

} // namespace sim
} // namespace wilis
