/**
 * @file
 * End-to-end transceiver testbench: transmitter -> software channel
 * -> receiver, the co-simulation arrangement of Figure 1 at the
 * functional-kernel level. The latency-insensitive cycle-counted
 * pipeline lives in sim/li_pipeline; both are built from the same
 * blocks, which is what lets WiLIS move between software simulation
 * and the FPGA "without modifying any source" (section 2).
 */

#ifndef WILIS_SIM_TESTBENCH_HH
#define WILIS_SIM_TESTBENCH_HH

#include <cstdint>
#include <memory>
#include <string>

#include "channel/channel.hh"
#include "common/frame_arena.hh"
#include "common/kernels.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "phy/ofdm_rx.hh"
#include "phy/ofdm_tx.hh"

namespace wilis {
namespace sim {

struct ScenarioSpec;

/** Everything needed to instantiate a transceiver + channel. */
struct TestbenchConfig {
    /** 802.11a/g rate index (0..7). */
    phy::RateIndex rate = 4;
    /** Receiver configuration (decoder slot, demapper widths...). */
    phy::OfdmReceiver::Config rx;
    /** Channel registry name ("awgn", "rayleigh"). */
    std::string channel = "awgn";
    /** Channel parameters (snr_db, doppler_hz, seed...). */
    li::Config channelCfg;
    /** Seed for random payload generation. */
    std::uint64_t payloadSeed = 0x5EED;
    /** SIMD kernel backend selection ("auto" = widest supported). */
    kernels::KernelPolicy kernel;
};

/** One packet's worth of results. */
struct PacketResult {
    /** The transmitted payload bits. */
    BitVec txPayload;
    /** Receiver output (decoded payload + SoftPHY hints). */
    phy::RxResult rx;
    /** Decoded-payload bit errors against txPayload. */
    std::uint64_t bitErrors = 0;
    /** True if the payload decoded error-free. */
    bool ok = false;
};

/**
 * Zero-copy packet result: views into the testbench's frame arena,
 * valid until the next runFrame()/runPacket() call on the same
 * testbench.
 */
struct FrameResult {
    /** View of the transmitted payload bits. */
    BitView txPayload;
    /** Receiver output views (decoded payload + SoftPHY hints). */
    phy::RxFrame rx;
    /** Decoded-payload bit errors against txPayload. */
    std::uint64_t bitErrors = 0;
    /** True if the payload decoded error-free. */
    bool ok = false;

    /** Deep copy into an owning PacketResult. */
    PacketResult toPacketResult() const;
};

/** A single-threaded transceiver instance. */
class Testbench
{
  public:
    /** Build transmitter, channel and receiver from @p cfg. */
    explicit Testbench(const TestbenchConfig &cfg);

    /** Build from a unified scenario description. */
    explicit Testbench(const ScenarioSpec &spec);

    /** Configuration in use. */
    const TestbenchConfig &config() const { return cfg; }

    /** Transmitter (for frame geometry queries). */
    phy::OfdmTransmitter &tx() { return *tx_; }

    /** Channel instance. */
    channel::Channel &channel() { return *chan; }

    /** Receiver instance. */
    phy::OfdmReceiver &rx() { return *rx_; }

    /** Deterministic random payload for @p packet_index. */
    BitVec makePayload(size_t bits, std::uint64_t packet_index) const;

    /** Fill @p out with the same deterministic payload stream. */
    void makePayloadInto(BitSpan out,
                         std::uint64_t packet_index) const;

    /**
     * Run one packet end to end.
     * @param payload_bits  Payload length in bits.
     * @param packet_index  Packet index (selects payload and the
     *                      replayable channel realization).
     */
    PacketResult runPacket(size_t payload_bits,
                           std::uint64_t packet_index);

    /**
     * Run one packet of known payload through the channel at this
     * testbench's rate (used by the oracle, which replays the same
     * packet index at several rates).
     */
    PacketResult runPacketWithPayload(const BitVec &payload,
                                      std::uint64_t packet_index);

    /**
     * Zero-copy form of runPacket(): rewinds the per-testbench frame
     * arena and runs one packet end to end entirely inside it. After
     * a one-packet warm-up this performs no heap allocations. The
     * returned views die at the next runFrame()/runPacket() call.
     */
    FrameResult runFrame(size_t payload_bits,
                         std::uint64_t packet_index);

    /**
     * Zero-copy replay form: run a caller-owned payload (which must
     * outlive the call and not live in this testbench's arena).
     */
    FrameResult runFrameWithPayload(BitView payload,
                                    std::uint64_t packet_index);

    /** The frame arena backing the zero-copy path (for stats). */
    const FrameArena &arena() const { return arena_; }

  private:
    FrameResult runFrameInternal(BitView payload,
                                 std::uint64_t packet_index);

    TestbenchConfig cfg;
    std::unique_ptr<phy::OfdmTransmitter> tx_;
    std::unique_ptr<phy::OfdmReceiver> rx_;
    std::unique_ptr<channel::Channel> chan;
    FrameArena arena_;
};

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_TESTBENCH_HH
