/**
 * @file
 * Cell-grid deployment geometry for the multi-cell network
 * simulator: base stations on a rows x cols grid, users dropped at
 * deterministic 2-D positions around their serving cell, and a
 * precomputed link-budget matrix (pathloss + shadowing, in linear
 * SNR units) from *every* cell to *every* user -- the quantity the
 * per-slot SINR folds over the set of same-slot interfering cells.
 *
 * Everything here is a pure function of (spec, user count, seed):
 * placements draw from per-user counter streams, shadowing from
 * per-link keys, so the whole deployment is bit-identical for any
 * thread count and any evaluation order. The matrix costs
 * O(users x cells) doubles (a 10k-user, 100-cell deployment is
 * 8 MB) and makes the per-slot interference sum a cache-friendly
 * row walk.
 */

#ifndef WILIS_SIM_TOPOLOGY_HH
#define WILIS_SIM_TOPOLOGY_HH

#include <cstdint>
#include <vector>

#include "channel/pathloss.hh"

namespace wilis {
namespace sim {

/** Declarative description of a cell-grid deployment. */
struct TopologySpec {
    /** Cell grid rows (1x1 = the single-cell legacy timeline). */
    int rows = 1;
    /** Cell grid columns. */
    int cols = 1;
    /** Distance between adjacent cell centers in meters. */
    double cellSpacingM = 500.0;
    /** User drop radius around the serving cell center in meters. */
    double cellRadiusM = 250.0;
    /** Minimum user distance from the serving cell in meters. */
    double minDistanceM = 20.0;
    /** Large-scale propagation model. */
    channel::PathlossSpec pathloss;

    /** Number of cells in the grid. */
    int numCells() const { return rows * cols; }
    /** True if this spec describes a multi-cell deployment. */
    bool multicell() const { return numCells() > 1; }
};

/** 2-D position in meters. */
struct Position {
    /** East coordinate in meters. */
    double x = 0.0;
    /** North coordinate in meters. */
    double y = 0.0;
};

/**
 * One realized deployment: cell centers, user placements and the
 * users x cells link-budget matrix. Users are assigned to cells
 * round-robin by index (user u serves from cell u % numCells), so
 * every cell's population differs by at most one user.
 */
class Topology
{
  public:
    /**
     * Realize a deployment.
     * @param spec      Grid geometry + propagation model.
     * @param num_users Users to drop (>= 1).
     * @param seed      Master seed; placement and shadowing streams
     *                  are forked from it per user / per link.
     */
    Topology(const TopologySpec &spec, int num_users,
             std::uint64_t seed);

    /** The geometry in use. */
    const TopologySpec &spec() const { return spec_; }

    /**
     * The realized propagation model (the position-dependent link
     * query: pathloss at any distance plus the static per-link
     * shadowing draw). sim::MobilityRuntime re-evaluates moving
     * users' link budgets through it.
     */
    const channel::PathlossModel &pathloss() const
    {
        return pathloss_;
    }

    /** Number of cells. */
    int numCells() const { return spec_.numCells(); }
    /** Number of users. */
    int numUsers() const { return static_cast<int>(users_.size()); }

    /** Center of cell @p c in meters. */
    Position cellCenter(int c) const;

    /** Position of user @p u in meters. */
    Position userPosition(int u) const { return users_[at(u)].pos; }

    /** Serving cell of user @p u. */
    int servingCell(int u) const { return users_[at(u)].cell; }

    /** Distance from user @p u to its serving cell in meters. */
    double servingDistanceM(int u) const
    {
        return users_[at(u)].servingDistanceM;
    }

    /** Users served by cell @p c, in increasing user order. */
    const std::vector<int> &cellUsers(int c) const;

    /**
     * Mean link SNR (dB) from cell @p c's transmitter at user
     * @p u -- pathloss + shadowing, no fast fading.
     */
    double linkSnrDb(int u, int c) const;

    /** linkSnrDb() of the serving link. */
    double servingSnrDb(int u) const
    {
        return linkSnrDb(u, servingCell(u));
    }

    /**
     * Link budget of user @p u's stream from cell @p c evaluated at
     * an arbitrary position, in linear SNR units: the
     * position-dependent form of the matrix query (pathloss at the
     * distance from @p pos to the cell, plus user @p u's static
     * shadowing draw toward @p c). linkGainLinAt(userPosition(u),
     * u, c) reproduces linkGainLin(u, c) bitwise; the mobility
     * layer evaluates it along trajectories.
     */
    double linkGainLinAt(const Position &pos, int u, int c) const;

    /** The same link budget in linear SNR units (10^(dB/10)). */
    double linkGainLin(int u, int c) const
    {
        return gains_[static_cast<size_t>(at(u)) *
                          static_cast<size_t>(numCells()) +
                      static_cast<size_t>(c)];
    }

    /**
     * User @p u's full row of the users x cells linear gain matrix
     * (numCells() entries), the input of the batched SINR kernel.
     */
    const double *
    gainRow(int u) const
    {
        return gains_.data() + static_cast<size_t>(at(u)) *
                                   static_cast<size_t>(numCells());
    }

    /**
     * Geometry SINR of user @p u in dB with every cell transmitting
     * (no fading, unit-mean interference): the classic wrap-free
     * grid SINR map, exposed for tests and the example's narrative
     * columns.
     */
    double staticSinrDb(int u) const;

  private:
    struct User {
        Position pos;
        int cell = 0;
        double servingDistanceM = 0.0;
    };

    int at(int u) const;

    TopologySpec spec_;
    std::uint64_t seed_;
    channel::PathlossModel pathloss_;
    std::vector<User> users_;
    std::vector<std::vector<int>> cell_users_;
    std::vector<double> gains_; // [user * numCells + cell], linear
};

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_TOPOLOGY_HH
