#include "sim/campaign.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "mac/packet_trace.hh"

namespace wilis {
namespace sim {

const char *const RunReport::kSchema = "wilis.campaign.report";

namespace {

/** Stream tag under which replication seeds fork off the master. */
constexpr std::uint64_t kRepSeedStream = 0x53504552; // "REPS"

/**
 * The seed replication @p rep runs at. Rep 0 *is* the spec's own
 * seed, so a one-rep campaign reproduces a plain run exactly;
 * later reps fork independent seeds off the master counter key.
 */
std::uint64_t
repSeed(std::uint64_t master, int rep)
{
    if (rep == 0)
        return master;
    return CounterRng(master).fork(kRepSeedStream).at(
        static_cast<std::uint64_t>(rep));
}

/**
 * The calibration table all of a campaign's replications share.
 * calibrationBuildSpec() depends only on the link template and
 * topology shape -- never the seed -- so one table is exact for
 * every rep. Null in full-fidelity mode (no table consulted).
 */
std::shared_ptr<const softphy::CalibrationTable>
sharedCalibration(const NetworkSpec &spec)
{
    if (spec.fidelity.mode == FidelityMode::Full)
        return nullptr;
    return std::make_shared<const softphy::CalibrationTable>(
        spec.calibrationFile.empty()
            ? softphy::CalibrationTable::build(
                  NetworkSim::calibrationBuildSpec(spec))
            : softphy::CalibrationTable::load(spec.calibrationFile));
}

// ------------------------------------------------- JSON emission

void
writeStatsState(json::JsonWriter &w, const char *name,
                const RunningStats &s)
{
    const RunningStats::State st = s.state();
    w.key(name).beginObject();
    w.key("n").value(st.n);
    w.key("offset").valueDouble(st.offset);
    w.key("sum").valueDouble(st.sum);
    w.key("sum_sq").valueDouble(st.sum_sq);
    w.endObject();
}

void
writeHist(json::JsonWriter &w, const char *name, const Histogram &h)
{
    w.key(name).beginObject();
    w.key("total").value(h.total());
    w.key("counts").beginArray();
    // A histogram that never saw a sample serializes as an empty
    // counts array (Histogram::restore() accepts it back), keeping
    // 10k-user reports from ballooning on all-zero distributions.
    if (h.total() != 0)
        for (int b = 0; b < h.numBins(); ++b)
            w.value(h.count(b));
    w.endArray();
    w.endObject();
}

void
writeUserStats(json::JsonWriter &w, const char *name,
               const UserStats &s)
{
    w.key(name).beginObject();
    w.key("frames_sent").value(s.framesSent);
    w.key("frames_ok").value(s.framesOk);
    w.key("stalled_slots").value(s.stalledSlots);
    w.key("retransmissions").value(s.retransmissions);
    w.key("delivered").value(s.delivered);
    w.key("dropped").value(s.dropped);
    w.key("goodput_bits").value(s.goodputBits);
    w.key("full_phy_frames").value(s.fullPhyFrames);
    w.key("analytic_frames").value(s.analyticFrames);
    w.key("arrivals").value(s.arrivals);
    w.key("queue_drops").value(s.queueDrops);
    w.key("handovers").value(s.handovers);
    w.key("ping_pongs").value(s.pingPongs);
    w.key("joins").value(s.joins);
    w.key("leaves").value(s.leaves);
    w.key("goodput_bits_pre_ho").value(s.goodputBitsPreHo);
    w.key("goodput_bits_post_ho").value(s.goodputBitsPostHo);
    w.key("pre_ho_slots").value(s.preHoSlots);
    w.key("post_ho_slots").value(s.postHoSlots);
    writeStatsState(w, "latency_slots", s.latencySlots);
    writeStatsState(w, "queue_wait_slots", s.queueWaitSlots);
    writeStatsState(w, "sinr_db", s.sinrDb);
    writeHist(w, "latency_hist", s.latencyHist);
    writeHist(w, "attempts_hist", s.attemptsHist);
    writeHist(w, "rate_hist", s.rateHist);
    writeHist(w, "queue_wait_hist", s.queueWaitHist);
    writeHist(w, "e2e_latency_hist", s.e2eLatencyHist);
    w.endObject();
}

void
writeUnit(json::JsonWriter &w, const std::string &kind,
          const UnitReport &u)
{
    w.beginObject();
    w.key("unit").value(u.unit);
    if (kind == "network") {
        w.key("seed").value(u.seed);
        w.key("cells").value(u.cells);
        w.key("users").value(u.users);
        writeUserStats(w, "stats", u.stats);
    } else {
        w.key("name").value(u.name);
        w.key("packets").value(u.packets);
        w.key("packet_errors").value(u.packetErrors);
        w.key("bits").value(u.bits);
        w.key("bit_errors").value(u.bitErrors);
    }
    w.endObject();
}

// -------------------------------------------------- JSON parsing

RunningStats
readStatsState(const json::JsonValue &v)
{
    RunningStats::State st;
    st.n = v.at("n").asU64();
    st.offset = v.at("offset").asDouble();
    st.sum = v.at("sum").asDouble();
    st.sum_sq = v.at("sum_sq").asDouble();
    return RunningStats::fromState(st);
}

void
readHist(const json::JsonValue &v, Histogram &h)
{
    std::vector<std::uint64_t> counts;
    for (const auto &c : v.at("counts").items())
        counts.push_back(c.asU64());
    h.restore(counts, v.at("total").asU64());
}

UserStats
readUserStats(const json::JsonValue &v)
{
    UserStats s;
    s.framesSent = v.at("frames_sent").asU64();
    s.framesOk = v.at("frames_ok").asU64();
    s.stalledSlots = v.at("stalled_slots").asU64();
    s.retransmissions = v.at("retransmissions").asU64();
    s.delivered = v.at("delivered").asU64();
    s.dropped = v.at("dropped").asU64();
    s.goodputBits = v.at("goodput_bits").asU64();
    s.fullPhyFrames = v.at("full_phy_frames").asU64();
    s.analyticFrames = v.at("analytic_frames").asU64();
    s.arrivals = v.at("arrivals").asU64();
    s.queueDrops = v.at("queue_drops").asU64();
    s.handovers = v.at("handovers").asU64();
    s.pingPongs = v.at("ping_pongs").asU64();
    s.joins = v.at("joins").asU64();
    s.leaves = v.at("leaves").asU64();
    s.goodputBitsPreHo = v.at("goodput_bits_pre_ho").asU64();
    s.goodputBitsPostHo = v.at("goodput_bits_post_ho").asU64();
    s.preHoSlots = v.at("pre_ho_slots").asU64();
    s.postHoSlots = v.at("post_ho_slots").asU64();
    s.latencySlots = readStatsState(v.at("latency_slots"));
    s.queueWaitSlots = readStatsState(v.at("queue_wait_slots"));
    s.sinrDb = readStatsState(v.at("sinr_db"));
    readHist(v.at("latency_hist"), s.latencyHist);
    readHist(v.at("attempts_hist"), s.attemptsHist);
    readHist(v.at("rate_hist"), s.rateHist);
    readHist(v.at("queue_wait_hist"), s.queueWaitHist);
    readHist(v.at("e2e_latency_hist"), s.e2eLatencyHist);
    return s;
}

UnitReport
readUnit(const json::JsonValue &v, const std::string &kind)
{
    UnitReport u;
    u.unit = static_cast<int>(v.at("unit").asInt());
    if (kind == "network") {
        u.seed = v.at("seed").asU64();
        u.cells = static_cast<int>(v.at("cells").asInt());
        u.users = static_cast<int>(v.at("users").asInt());
        u.stats = readUserStats(v.at("stats"));
    } else {
        u.name = v.at("name").asString();
        u.packets = v.at("packets").asU64();
        u.packetErrors = v.at("packet_errors").asU64();
        u.bits = v.at("bits").asU64();
        u.bitErrors = v.at("bit_errors").asU64();
    }
    return u;
}

/**
 * The campaign aggregate, recomputed from @p units in ascending
 * unit order. Always the same merge sequence a one-process run
 * performs -- the operation every byte-identity guarantee of the
 * merged report reduces to.
 */
UnitReport
aggregateUnits(const std::string &kind,
               const std::vector<UnitReport> &units)
{
    UnitReport agg;
    agg.unit = -1;
    if (units.empty())
        return agg;
    if (kind == "network") {
        // Replications share the deployment shape (topology and
        // user count come from the spec, not the rep seed).
        agg.cells = units.front().cells;
        agg.users = units.front().users;
        for (const auto &u : units)
            agg.stats.merge(u.stats);
    } else {
        for (const auto &u : units) {
            agg.packets += u.packets;
            agg.packetErrors += u.packetErrors;
            agg.bits += u.bits;
            agg.bitErrors += u.bitErrors;
        }
    }
    return agg;
}

} // namespace

std::string
RunReport::toJsonText() const
{
    json::JsonWriter w;
    w.beginObject();
    w.key("schema").value(kSchema);
    w.key("version").value(kVersion);
    w.key("kind").value(kind);
    w.key("config").value(config);
    if (kind == "network")
        w.key("slots").value(slots);
    else
        w.key("packets_per_cell").value(packetsPerCell);
    w.key("units_total").value(unitsTotal);
    w.key("units").beginArray();
    for (const auto &u : units)
        writeUnit(w, kind, u);
    w.endArray();
    if (merged) {
        w.key("aggregate");
        writeUnit(w, kind, aggregate);
    }
    w.endObject();
    return w.str();
}

void
RunReport::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        wilis_fatal("cannot write campaign report '%s'",
                    path.c_str());
    out << toJsonText();
    out.flush();
    if (!out)
        wilis_fatal("short write on campaign report '%s'",
                    path.c_str());
}

RunReport
RunReport::fromJsonText(const std::string &text,
                        const std::string &what)
{
    const json::JsonValue v = json::JsonValue::parse(text);
    const std::string schema = v.at("schema").asString();
    wilis_assert(schema == kSchema,
                 "%s: schema '%s' is not a campaign report",
                 what.c_str(), schema.c_str());
    const std::int64_t version = v.at("version").asInt();
    wilis_assert(version == kVersion,
                 "%s: campaign report version %lld (this build "
                 "reads %d)",
                 what.c_str(), static_cast<long long>(version),
                 kVersion);

    RunReport rep;
    rep.kind = v.at("kind").asString();
    wilis_assert(rep.kind == "network" || rep.kind == "grid",
                 "%s: unknown campaign kind '%s'", what.c_str(),
                 rep.kind.c_str());
    rep.config = v.at("config").asString();
    if (rep.kind == "network")
        rep.slots = v.at("slots").asU64();
    else
        rep.packetsPerCell = v.at("packets_per_cell").asU64();
    rep.unitsTotal = static_cast<int>(v.at("units_total").asInt());
    for (const auto &u : v.at("units").items())
        rep.units.push_back(readUnit(u, rep.kind));
    if (const json::JsonValue *agg = v.find("aggregate")) {
        rep.merged = true;
        rep.aggregate = readUnit(*agg, rep.kind);
    }
    return rep;
}

RunReport
RunReport::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        wilis_fatal("cannot read campaign report '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return fromJsonText(text.str(), path);
}

NetworkResult
runNetworkRun(const RunRequest &req)
{
    NetworkSpec spec = req.spec;
    if (!req.traceFile.empty())
        spec.trace = true;
    NetworkSim sim(spec);
    NetworkResult res = sim.run(req.slots, req.threads);
    if (!req.traceFile.empty())
        res.trace->save(req.traceFile);
    return res;
}

RunReport
runCampaignShard(const RunRequest &req)
{
    wilis_assert(req.shardCount >= 1 && req.shardIndex >= 0 &&
                     req.shardIndex < req.shardCount,
                 "campaign shard %d/%d out of range", req.shardIndex,
                 req.shardCount);
    const int units_total = req.spec.reps;
    wilis_assert(units_total >= 1, "campaign needs >= 1 rep");
    // A packet trace names one run; checkpoint files likewise hold
    // one run's state and resuming mid-campaign would alias them
    // across units or shards. Keep both single-unit, single-shard.
    wilis_assert(units_total == 1 ||
                     (req.traceFile.empty() && !req.spec.trace),
                 "tracing a campaign requires reps=1");
    wilis_assert(!req.spec.checkpoint.enabled() ||
                     (units_total == 1 && req.shardCount == 1),
                 "checkpointing requires reps=1 and a single shard");

    RunReport rep;
    rep.kind = "network";
    rep.config = req.spec.toConfig().toString();
    rep.slots = req.slots;
    rep.unitsTotal = units_total;

    // One calibration sweep serves every replication (the table is
    // seed-independent); built lazily so an ownerless shard stays
    // free and full-fidelity campaigns never build one.
    std::shared_ptr<const softphy::CalibrationTable> table;
    bool have_table = false;
    for (int u = req.shardIndex; u < units_total;
         u += req.shardCount) {
        NetworkSpec spec = req.spec;
        spec.seed = repSeed(req.spec.seed, u);
        if (!req.traceFile.empty())
            spec.trace = true;
        if (!have_table) {
            table = sharedCalibration(spec);
            have_table = true;
        }
        NetworkSim sim(spec, table);
        NetworkResult res = sim.run(req.slots, req.threads);
        if (!req.traceFile.empty())
            res.trace->save(req.traceFile);

        UnitReport unit;
        unit.unit = u;
        unit.seed = spec.seed;
        unit.cells = res.cells;
        unit.users = static_cast<int>(res.users.size());
        unit.stats = res.aggregate;
        rep.units.push_back(unit);
    }

    if (!req.reportFile.empty())
        rep.save(req.reportFile);
    return rep;
}

RunReport
runGridShard(const GridRunRequest &req)
{
    GridSweepOptions opt;
    opt.packetsPerCell = req.packetsPerCell;
    opt.threads = req.threads;
    opt.shardIndex = req.shardIndex;
    opt.shardCount = req.shardCount;
    const std::vector<CellResult> cells = sweepGrid(req.grid, opt);

    RunReport rep;
    rep.kind = "grid";
    rep.config = req.grid.base.toConfig().toString();
    rep.packetsPerCell = req.packetsPerCell;
    rep.unitsTotal = static_cast<int>(req.grid.cellCount());
    for (const CellResult &c : cells) {
        UnitReport unit;
        unit.unit = static_cast<int>(c.cellIndex);
        unit.name = c.spec.name;
        unit.packets = c.packets;
        unit.packetErrors = c.packetErrors;
        unit.bits = c.bits.bits;
        unit.bitErrors = c.bits.errors;
        rep.units.push_back(unit);
    }

    if (!req.reportFile.empty())
        rep.save(req.reportFile);
    return rep;
}

RunReport
mergeReports(const std::vector<RunReport> &shards)
{
    wilis_assert(!shards.empty(), "mergeReports needs >= 1 shard");
    const RunReport &first = shards.front();
    for (const RunReport &s : shards) {
        wilis_assert(!s.merged,
                     "cannot merge an already-merged report");
        wilis_assert(s.kind == first.kind && s.config == first.config,
                     "shard reports describe different campaigns "
                     "('%s' vs '%s')",
                     s.config.c_str(), first.config.c_str());
        wilis_assert(s.slots == first.slots &&
                         s.packetsPerCell == first.packetsPerCell &&
                         s.unitsTotal == first.unitsTotal,
                     "shard reports disagree on the campaign shape");
    }

    // Reassemble the campaign's unit list in unit order -- the
    // pinned iteration every determinism property hangs off -- and
    // insist the shards partition it exactly.
    const int total = first.unitsTotal;
    std::vector<const UnitReport *> slots_by_unit(
        static_cast<size_t>(total), nullptr);
    for (const RunReport &s : shards) {
        for (const UnitReport &u : s.units) {
            wilis_assert(u.unit >= 0 && u.unit < total,
                         "unit %d out of campaign range %d", u.unit,
                         total);
            wilis_assert(!slots_by_unit[static_cast<size_t>(u.unit)],
                         "unit %d reported by two shards", u.unit);
            slots_by_unit[static_cast<size_t>(u.unit)] = &u;
        }
    }

    RunReport out;
    out.kind = first.kind;
    out.config = first.config;
    out.slots = first.slots;
    out.packetsPerCell = first.packetsPerCell;
    out.unitsTotal = total;
    for (int u = 0; u < total; ++u) {
        wilis_assert(slots_by_unit[static_cast<size_t>(u)],
                     "no shard reported unit %d", u);
        out.units.push_back(*slots_by_unit[static_cast<size_t>(u)]);
    }
    out.merged = true;
    out.aggregate = aggregateUnits(out.kind, out.units);
    return out;
}

} // namespace sim
} // namespace wilis
