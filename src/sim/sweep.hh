/**
 * @file
 * Parallel packet sweeps: run many packets of a TestbenchConfig
 * across worker threads, each thread owning its own Testbench
 * instance. Because channels are replayable (pure functions of the
 * packet index), results are independent of the thread count.
 */

#ifndef WILIS_SIM_SWEEP_HH
#define WILIS_SIM_SWEEP_HH

#include <cstdint>
#include <functional>

#include "common/stats.hh"
#include "sim/testbench.hh"

namespace wilis {
namespace sim {

/**
 * Run packets [0, num_packets) through per-thread testbenches.
 *
 * @param cfg          Testbench configuration (cloned per thread).
 * @param payload_bits Payload size per packet.
 * @param num_packets  Number of packets to run.
 * @param threads      Worker threads (0 = hardware concurrency).
 * @param per_packet   Called for every packet with the thread index;
 *                     must only touch thread-indexed state.
 */
void sweepPackets(
    const TestbenchConfig &cfg, size_t payload_bits,
    std::uint64_t num_packets, int threads,
    const std::function<void(int thread, const PacketResult &,
                             std::uint64_t packet_index)> &per_packet);

/** Aggregate payload BER over a packet sweep. */
ErrorStats measureBer(const TestbenchConfig &cfg, size_t payload_bits,
                      std::uint64_t num_packets, int threads = 0);

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_SWEEP_HH
