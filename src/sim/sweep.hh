/**
 * @file
 * Parallel packet sweeps: run many packets of one scenario across
 * worker threads, each thread owning its own Testbench instance (and
 * with it a private frame arena, so the steady-state hot path makes
 * no heap allocations and workers never contend on the allocator).
 *
 * Determinism: every per-packet random stream -- payload bits and
 * channel impairments -- is keyed by the *packet index* through the
 * counter-based generator, never by the worker id or the iteration
 * order. Results are therefore bit-identical for any thread count;
 * tests assert this at 1, 2 and 8 threads.
 */

#ifndef WILIS_SIM_SWEEP_HH
#define WILIS_SIM_SWEEP_HH

#include <cstdint>
#include <functional>

#include "common/stats.hh"
#include "sim/scenario.hh"
#include "sim/testbench.hh"

namespace wilis {
namespace sim {

/**
 * Worker count a sweep of @p num_packets packets will actually use
 * for a requested @p threads (0 = hardware concurrency, clamped to
 * the packet count). Callbacks receive worker indices in
 * [0, sweepWorkerCount()); size per-worker accumulators with this.
 */
int sweepWorkerCount(int threads, std::uint64_t num_packets);

/**
 * Zero-copy sweep: run packets [0, num_packets) of @p spec through
 * per-thread testbenches on their arena-backed fast path.
 *
 * @param spec        Scenario (payloadBits taken from the spec).
 * @param num_packets Number of packets to run.
 * @param threads     Worker threads (0 = hardware concurrency).
 * @param per_frame   Called for every packet with the worker index;
 *                    must only touch worker-indexed state. The
 *                    FrameResult views die when the callback
 *                    returns (the next packet reuses the arena).
 */
void sweepFrames(
    const ScenarioSpec &spec, std::uint64_t num_packets, int threads,
    const std::function<void(int worker, const FrameResult &,
                             std::uint64_t packet_index)> &per_frame);

/** Aggregate payload BER over a packet sweep (allocation-free). */
ErrorStats measureBer(const ScenarioSpec &spec,
                      std::uint64_t num_packets, int threads = 0);

/**
 * Legacy form of measureBer() over a TestbenchConfig. Deprecated:
 * lift the config with ScenarioSpec::fromTestbench() and call the
 * spec overload (the copying sweepPackets() sweep is gone entirely
 * -- use sweepFrames()).
 */
[[deprecated("use measureBer(ScenarioSpec::fromTestbench(cfg, "
             "payload_bits), ...)")]]
ErrorStats measureBer(const TestbenchConfig &cfg, size_t payload_bits,
                      std::uint64_t num_packets, int threads = 0);

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_SWEEP_HH
