/**
 * @file
 * The campaign layer: one run-request surface for everything that
 * executes a simulation, plus process-level sharding with a
 * deterministic merge (docs/ARCHITECTURE.md, "Campaign layer").
 *
 * A *campaign* is an ordered list of independent units -- the
 * replications of one network spec (`reps=N`), or the cells of a
 * scenario grid. Unit u always computes the same result (counter-RNG
 * keyed by the unit's derived seed), and unit u is owned by shard
 * u % shardCount, so any shard partition covers every unit exactly
 * once. mergeReports() concatenates shard reports in unit order and
 * recomputes the aggregate with the same fixed merge sequence a
 * single process uses -- the merged report is byte-identical for
 * any shard count (and, transitively, any thread count per shard).
 *
 * Entry points:
 *  - runNetworkRun()    -- one network run (the primitive every
 *    printing front end uses; checkpoint/resume rides on
 *    spec.checkpoint inside the engines);
 *  - runCampaignShard() -- this shard's replications as a RunReport;
 *  - runGridShard()     -- this shard's grid cells as a RunReport;
 *  - mergeReports()     -- shard reports -> the campaign report.
 *
 * Reports serialize as versioned JSON with a pinned key order
 * (common/json.hh); RunReport::load() consumes exactly what save()
 * emits, which is how the wilis_campaign driver collects its
 * workers' results.
 */

#ifndef WILIS_SIM_CAMPAIGN_HH
#define WILIS_SIM_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network_sim.hh"
#include "sim/scenario_grid.hh"

namespace wilis {
namespace sim {

/**
 * One network-campaign execution request: the spec (including its
 * replication count), the horizon, and this process's place in the
 * shard partition. The single entry point wilis_cli, network_sim
 * and the campaign driver all route through.
 */
struct RunRequest {
    /** What to run (spec.reps = campaign unit count). */
    NetworkSpec spec;
    /** Frame slots per replication. */
    std::uint64_t slots = 120;
    /** Worker threads per run (0 = hardware concurrency). */
    int threads = 0;
    /** This process's shard index in [0, shardCount). */
    int shardIndex = 0;
    /** Total shards the campaign is split across. */
    int shardCount = 1;
    /** Save the packet trace here (reps = 1 only; "" = none). */
    std::string traceFile;
    /** Save the shard's RunReport here ("" = none). */
    std::string reportFile;
};

/** runGridShard()'s request: a grid instead of a network spec. */
struct GridRunRequest {
    /** The scenario grid (units = cells, in index order). */
    ScenarioGrid grid;
    /** Packets per cell. */
    std::uint64_t packetsPerCell = 100;
    /** Worker threads (0 = hardware concurrency). */
    int threads = 0;
    /** This process's shard index in [0, shardCount). */
    int shardIndex = 0;
    /** Total shards the campaign is split across. */
    int shardCount = 1;
    /** Save the shard's RunReport here ("" = none). */
    std::string reportFile;
};

/**
 * One campaign unit's results. Network units fill seed/cells/users
 * and stats (the run's aggregate UserStats, raw accumulator state);
 * grid units fill name and the packet/bit counters. The merged
 * report's aggregate reuses this shape with unit = -1.
 */
struct UnitReport {
    /** Campaign-wide unit index (-1 = the merged aggregate). */
    int unit = 0;
    /** Seed the replication ran with (network). */
    std::uint64_t seed = 0;
    /** Cell count of the deployment (network). */
    int cells = 0;
    /** User count of the deployment (network). */
    int users = 0;
    /** The run's aggregate statistics (network). */
    UserStats stats;
    /** Resolved scenario label (grid). */
    std::string name;
    /** Packets run (grid). */
    std::uint64_t packets = 0;
    /** Packets with >= 1 bit error (grid). */
    std::uint64_t packetErrors = 0;
    /** Payload bits simulated (grid). */
    std::uint64_t bits = 0;
    /** Payload bit errors (grid). */
    std::uint64_t bitErrors = 0;
};

/**
 * A campaign (or campaign-shard) report: the schema every runner
 * emits and the merge consumes. Serialization is exact -- counters
 * as integers, accumulators as %.17g raw state -- so save/load
 * round-trips bit-identically and merged statistics cannot depend
 * on which process computed a unit.
 */
struct RunReport {
    /** Schema identifier in the JSON ("schema" key). */
    static const char *const kSchema;
    /** Schema version this code reads and writes. */
    static constexpr int kVersion = 1;

    /** Unit kind: "network" or "grid". */
    std::string kind;
    /** Canonical config string of the campaign's spec/grid base. */
    std::string config;
    /** Frame slots per replication (network kind). */
    std::uint64_t slots = 0;
    /** Packets per cell (grid kind). */
    std::uint64_t packetsPerCell = 0;
    /** Campaign-wide unit count (across all shards). */
    int unitsTotal = 0;
    /** This report's units, ascending unit index. */
    std::vector<UnitReport> units;
    /** True once merged (aggregate is filled). */
    bool merged = false;
    /** Campaign aggregate, unit order merge (merged only). */
    UnitReport aggregate;

    /** The report as its canonical JSON text. */
    std::string toJsonText() const;
    /** Write the canonical JSON to @p path (fatal on I/O error). */
    void save(const std::string &path) const;
    /** Parse a report (@p what names the source in fatals). */
    static RunReport fromJsonText(const std::string &text,
                                  const std::string &what);
    /** Load a report written by save(). */
    static RunReport load(const std::string &path);
};

/**
 * Run one network simulation per @p req (spec.reps is ignored:
 * exactly one run at spec.seed), saving the packet trace to
 * req.traceFile when set (implies spec.trace). Checkpoint/resume
 * honors spec.checkpoint inside the multi-cell engines.
 */
NetworkResult runNetworkRun(const RunRequest &req);

/**
 * Run this shard's replications of req.spec (unit u = replication
 * u; owned when u % shardCount == shardIndex; rep 0 runs at
 * spec.seed, rep r > 0 at a counter-forked seed) and return them as
 * a RunReport, saved to req.reportFile when set. Tracing and
 * checkpointing require a single-unit, single-shard campaign.
 */
RunReport runCampaignShard(const RunRequest &req);

/** The grid twin of runCampaignShard() (unit u = grid cell u). */
RunReport runGridShard(const GridRunRequest &req);

/**
 * Merge shard reports into the campaign report: units concatenated
 * in unit order (fatal on a missing or duplicated unit, or on
 * shards from different campaigns) and the aggregate recomputed
 * from the unit statistics in that order. Byte-identical output
 * for any shard count, including 1.
 */
RunReport mergeReports(const std::vector<RunReport> &shards);

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_CAMPAIGN_HH
