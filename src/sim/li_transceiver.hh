/**
 * @file
 * The full WiLIS transceiver as a latency-insensitive, multi-clock
 * pipeline: every Figure 1 block is a li::Module communicating only
 * through FIFOs, spread over three clock domains exactly as in
 * section 3 -- the baseband at 35 MHz, the per-bit BER/decoder unit
 * at 60 MHz, and the software channel on the host. Cross-domain
 * hops use automatically inserted synchronizing FIFOs.
 *
 * Every module delegates its mathematics to the same kernels the
 * batch path (sim::Testbench) uses, so the two execution styles are
 * bit-exact by construction -- the WiLIS property that lets a design
 * "transition to the FPGA from software simulation without modifying
 * any source" (section 2). Tests assert the equivalence.
 */

#ifndef WILIS_SIM_LI_TRANSCEIVER_HH
#define WILIS_SIM_LI_TRANSCEIVER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "channel/channel.hh"
#include "common/types.hh"
#include "li/scheduler.hh"
#include "phy/demapper.hh"
#include "phy/ofdm_rx.hh"
#include "phy/ofdm_tx.hh"
#include "sim/scenario.hh"

namespace wilis {
namespace sim {

/**
 * Clock frequencies of the three partitions -- the same struct the
 * unified ScenarioSpec carries, so the spec stays the single source
 * of truth for clock assignment.
 */
using LiTransceiverClocks = ScenarioClocks;

/** Result of one packet through the LI pipeline. */
struct LiPacketResult {
    /** Decoded, descrambled payload bits. */
    BitVec payload;
    /** Per-bit decisions with the decoder's LLR hints. */
    std::vector<SoftDecision> soft;
    /** Baseband cycles consumed by the run. */
    std::uint64_t basebandCycles = 0;
    /** Decoder-domain cycles consumed by the run. */
    std::uint64_t decoderCycles = 0;
    /** Time-domain samples that crossed the channel. */
    std::uint64_t samples = 0;
};

/**
 * A complete streaming transceiver instance. Construction wires up
 * ~15 modules and their FIFOs inside a private scheduler; runPacket()
 * feeds payload bits in at one end and runs the scheduler to
 * quiescence.
 */
class LiTransceiver
{
  public:
    /**
     * @param rate        802.11a/g rate index.
     * @param rx_cfg      Receiver configuration (decoder slot,
     *                    demapper quantization, scrambler seed).
     * @param channel_name Channel registry name.
     * @param channel_cfg Channel parameters.
     * @param clocks      Clock-domain frequencies.
     */
    LiTransceiver(phy::RateIndex rate,
                  const phy::OfdmReceiver::Config &rx_cfg,
                  const std::string &channel_name,
                  const li::Config &channel_cfg,
                  const LiTransceiverClocks &clocks =
                      LiTransceiverClocks());

    /**
     * Build from the same unified scenario description the batch
     * testbench consumes -- the single source of truth for the
     * bit-exactness tests between the two execution styles.
     */
    explicit LiTransceiver(const ScenarioSpec &spec);

    ~LiTransceiver();

    /** Run one packet end to end through the streaming pipeline. */
    LiPacketResult runPacket(const BitVec &payload,
                             std::uint64_t packet_index);

    /** Number of auto-inserted cross-domain synchronizers. */
    int syncFifoCount() const;

    /** The scheduler (for inspection in tests). */
    li::Scheduler &scheduler();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_LI_TRANSCEIVER_HH
