/**
 * @file
 * Cycle-counted latency-insensitive pipeline building blocks.
 *
 * These modules let WiLIS measure what the paper measures on the
 * FPGA: pipeline latency in cycles (SOVA l+k+12, BCJR 2n+7) and the
 * latency-insensitivity property itself -- results must be bit-exact
 * under any FIFO capacities and any clock-frequency assignment.
 *
 * Each stage moves at most one token per cycle and models a fixed
 * pipeline depth. A stage's stated latency *includes* its input FIFO
 * (2 entries -> up to 2 cycles), matching the accounting in section
 * 4.3.1.
 */

#ifndef WILIS_SIM_LI_PIPELINE_HH
#define WILIS_SIM_LI_PIPELINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "li/fifo.hh"
#include "li/module.hh"
#include "li/scheduler.hh"

namespace wilis {
namespace sim {

/** Token carried through the modeled decoder pipelines. */
struct LiToken {
    /** Sequence number (used to check ordering at the sink). */
    std::uint64_t id = 0;
    /** Payload value (transformed by the stages). */
    std::int64_t value = 0;
};

/** Feeds a prepared token stream into the pipeline, 1 per cycle. */
class SourceModule : public li::Module
{
  public:
    /** @param out_ FIFO the source emits into. */
    SourceModule(std::string name, li::Fifo<LiToken> *out_);

    /** Queue tokens to emit. */
    void feed(const std::vector<LiToken> &tokens);

    /** Domain cycle at which token 0 was enqueued (-1 if not yet). */
    std::int64_t firstEmitCycle() const { return first_emit; }

    /** True once everything fed has been emitted. */
    bool done() const { return pending.empty(); }

    /** Emit at most one pending token into the output FIFO. */
    bool tick() override;

  private:
    li::Fifo<LiToken> *out;
    std::deque<LiToken> pending;
    std::int64_t first_emit = -1;
};

/** Drains tokens and records their arrival cycles. */
class SinkModule : public li::Module
{
  public:
    /** @param in_ FIFO the sink drains. */
    SinkModule(std::string name, li::Fifo<LiToken> *in_);

    /** Drain at most one token and record its arrival cycle. */
    bool tick() override;

    /** All received tokens in arrival order. */
    const std::vector<LiToken> &received() const { return tokens; }

    /** Domain cycle of the first arrival (-1 if none). */
    std::int64_t firstArrivalCycle() const { return first_arrival; }

    /** Scheduler time (ps) of the first arrival (0 if none). */
    li::SimTime firstArrivalTime() const { return first_arrival_ps; }

  private:
    li::Fifo<LiToken> *in;
    std::vector<LiToken> tokens;
    std::int64_t first_arrival = -1;
    li::SimTime first_arrival_ps = 0;
};

/**
 * A fixed-depth processing stage: tokens exit depth cycles after
 * entering (counting the 2-cycle input FIFO), at most one per cycle,
 * with an optional value transformation.
 */
class DelayStageModule : public li::Module
{
  public:
    /** Optional per-token value transformation. */
    using Transform = std::function<std::int64_t(std::int64_t)>;

    /**
     * @param depth Total stage latency in cycles including the input
     *              FIFO (must be >= 1).
     */
    DelayStageModule(std::string name, li::Fifo<LiToken> *in_,
                     li::Fifo<LiToken> *out_, int depth,
                     Transform fn = nullptr);

    /** Advance the stage clock; move tokens whose delay elapsed. */
    bool tick() override;

  private:
    struct InFlight {
        std::uint64_t ready_cycle;
        LiToken token;
    };

    li::Fifo<LiToken> *in;
    li::Fifo<LiToken> *out;
    int depth;
    Transform fn;
    std::deque<InFlight> inflight;
    std::uint64_t cycle = 0;
};

/** A constructed pipeline: source -> stages -> sink. */
struct LiPipeline {
    /** Feeding end (owned by the scheduler). */
    SourceModule *source = nullptr;
    /** Draining end (owned by the scheduler). */
    SinkModule *sink = nullptr;
    /** Clock domain the stages run in. */
    li::ClockDomain *domain = nullptr;
    /** Sum of the stage depths (the architectural latency). */
    int modeledLatency = 0;
};

/**
 * Build the SOVA pipeline of Figure 3 as delay stages: BMU(1) ->
 * PMU(1) -> TU1(l) -> TU2(k), with five 2-entry FIFOs; total latency
 * l + k + 12 cycles.
 */
LiPipeline buildSovaPipeline(li::Scheduler &sched,
                             li::ClockDomain *domain, int l, int k);

/**
 * Build the BCJR pipeline of Figure 4: BMU -> initial reversal
 * buffer (n) -> PMUs -> final reversal buffer (n) -> decision unit;
 * total latency 2n + 7 cycles.
 */
LiPipeline buildBcjrPipeline(li::Scheduler &sched,
                             li::ClockDomain *domain, int n);

/**
 * Measure the first-token latency of a pipeline in cycles of its
 * domain: feed @p tokens tokens, run to quiescence, and return
 * (sink first arrival cycle - source first emit cycle).
 */
int measurePipelineLatency(li::Scheduler &sched, LiPipeline &pipe,
                           int tokens);

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_LI_PIPELINE_HH
