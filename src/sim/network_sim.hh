/**
 * @file
 * Multi-user cell simulator: N independent link sessions -- each
 * owning a per-user ScenarioSpec derivation, a time-correlated AR(1)
 * fading process, a SoftRate adapter and a windowed ARQ instance --
 * evolving frame slot by frame slot over a shared simulated
 * timeline. This is the system-level payoff WiLIS argues for:
 * rate adaptation and ARQ evaluated on top of the bit-exact PHY,
 * scaled from one link to a whole cell.
 *
 * Execution model: users are sharded across the common::ThreadPool,
 * one whole user timeline per work item. The heavy per-rate
 * transmitter/receiver kernels and the frame arena live in a
 * per-worker PHY context leased for the duration of a user, so the
 * steady state performs no heap allocations in the frame path and
 * workers never contend on the allocator. Every random stream
 * (payload bits, fading innovations, channel noise, traffic
 * arrivals) is keyed by (master seed, user, slot/sequence) through
 * the counter-based generator -- never by worker id -- so a run is
 * bit-identical for any thread count.
 */

#ifndef WILIS_SIM_NETWORK_SIM_HH
#define WILIS_SIM_NETWORK_SIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "phy/modulation.hh"
#include "sim/scenario.hh"
#include "sim/topology.hh"
#include "softphy/ber_estimator.hh"
#include "softphy/calibration_table.hh"

namespace wilis {

namespace mac {
class PacketTrace; // mac/packet_trace.hh
}

namespace sim {

struct McSoaCache; // sim/multicell_sim.hh

/**
 * Outcome of one user's link over a network run; the aggregate is
 * the exact merge of all users (in user order, so merged floating-
 * point statistics are deterministic too).
 */
struct UserStats {
    /** Latency histogram range in slots (1-slot bins). */
    static constexpr int kLatencyBins = 64;
    /** Retransmission histogram range in attempts (1-wide bins). */
    static constexpr int kAttemptBins = 16;
    /** Queue-wait / end-to-end histogram bin count (2-slot bins). */
    static constexpr int kWaitBins = 128;

    /** User index (-1 for the aggregate). */
    int user = -1;
    /** Deterministic per-user mean SNR offset in dB. */
    double snrOffsetDb = 0.0;
    /** Serving cell (multi-cell runs; -1 single-cell/aggregate). */
    int servingCell = -1;
    /** Serving-link mean SNR in dB (pathloss + shadowing). */
    double meanSnrDb = 0.0;

    /** Slots in which this user transmitted a frame. */
    std::uint64_t framesSent = 0;
    /** Transmissions decoded without payload errors. */
    std::uint64_t framesOk = 0;
    /**
     * Slots the user had traffic but could not transmit: stalled
     * on the ARQ window (single-cell), or eligible but passed over
     * by the cell scheduler (multi-cell contention).
     */
    std::uint64_t stalledSlots = 0;
    /** Retransmission transmissions (attempts beyond the first). */
    std::uint64_t retransmissions = 0;
    /** Frames delivered in order. */
    std::uint64_t delivered = 0;
    /** Frames dropped after exhausting the retry budget. */
    std::uint64_t dropped = 0;
    /** Payload bits of delivered frames. */
    std::uint64_t goodputBits = 0;
    /** Transmissions simulated by the bit-exact PHY. */
    std::uint64_t fullPhyFrames = 0;
    /** Transmissions drawn from the calibrated analytic model. */
    std::uint64_t analyticFrames = 0;
    /** Traffic-model frame arrivals (0 under full buffer). */
    std::uint64_t arrivals = 0;
    /** Arrivals dropped on a full traffic queue. */
    std::uint64_t queueDrops = 0;

    /** Serving-cell handovers completed (mobility runs only). */
    std::uint64_t handovers = 0;
    /**
     * Handovers that bounced straight back to the previous serving
     * cell within the mobility layer's ping-pong window.
     */
    std::uint64_t pingPongs = 0;
    /** Churn session starts (re-entries after a departure). */
    std::uint64_t joins = 0;
    /** Churn session ends (departures with queue/ARQ teardown). */
    std::uint64_t leaves = 0;
    /** Payload bits delivered before the user's first handover. */
    std::uint64_t goodputBitsPreHo = 0;
    /** Payload bits delivered after the user's first handover. */
    std::uint64_t goodputBitsPostHo = 0;
    /** Slots before the first handover (the run length if none). */
    std::uint64_t preHoSlots = 0;
    /** Slots from the first handover to the horizon (0 if none). */
    std::uint64_t postHoSlots = 0;

    /** Delivery latency in slots (first transmission -> delivery). */
    RunningStats latencySlots;
    /** Head-of-line wait from arrival to first transmission. */
    RunningStats queueWaitSlots;
    /** Per-transmission effective SINR in dB (multi-cell runs). */
    RunningStats sinrDb;
    /** Delivery latency distribution (1-slot bins). */
    Histogram latencyHist{kLatencyBins, 1.0};
    /** Attempts per delivered/dropped frame (1-wide bins). */
    Histogram attemptsHist{kAttemptBins, 1.0};
    /** Transmissions per rate index. */
    Histogram rateHist{phy::kNumRates, 1.0};
    /** Queue-wait distribution, arrival -> first transmission. */
    Histogram queueWaitHist{kWaitBins, 2.0};
    /**
     * End-to-end latency distribution (arrival -> in-order
     * delivery), derived from the packet event trace; filled only
     * when NetworkSpec::trace is on.
     */
    Histogram e2eLatencyHist{kWaitBins, 2.0};

    /** Fraction of transmissions decoded clean. */
    double
    frameSuccessRate() const
    {
        return framesSent ? static_cast<double>(framesOk) /
                                static_cast<double>(framesSent)
                          : 0.0;
    }

    /** Goodput in Mb/s given the slot duration and slot count. */
    double
    goodputMbps(std::uint64_t slots, double frame_interval_us) const
    {
        double us = static_cast<double>(slots) * frame_interval_us;
        return us > 0.0 ? static_cast<double>(goodputBits) / us : 0.0;
    }

    /** Goodput before the first handover in Mb/s (0 if no slots). */
    double
    preHoGoodputMbps(double frame_interval_us) const
    {
        double us = static_cast<double>(preHoSlots) *
                    frame_interval_us;
        return us > 0.0
                   ? static_cast<double>(goodputBitsPreHo) / us
                   : 0.0;
    }

    /** Goodput after the first handover in Mb/s (0 if no slots). */
    double
    postHoGoodputMbps(double frame_interval_us) const
    {
        double us = static_cast<double>(postHoSlots) *
                    frame_interval_us;
        return us > 0.0
                   ? static_cast<double>(goodputBitsPostHo) / us
                   : 0.0;
    }

    /** Merge another user's statistics into this accumulator. */
    void merge(const UserStats &other);
};

/** Result of NetworkSim::run(). */
struct NetworkResult {
    /** The network description the run executed. */
    NetworkSpec spec;
    /** Slots simulated. */
    std::uint64_t slots = 0;
    /** Cells in the deployment (1 for single-cell runs). */
    int cells = 1;
    /** Per-user statistics, indexed by user. */
    std::vector<UserStats> users;
    /** Exact merge of all users (user == -1). */
    UserStats aggregate;
    /**
     * The finalized per-packet event trace (see mac::PacketTrace);
     * null unless the spec's trace flag was set.
     */
    std::shared_ptr<const mac::PacketTrace> trace;

    /** Cell goodput in Mb/s. */
    double
    aggregateGoodputMbps() const
    {
        return aggregate.goodputMbps(slots, spec.frameIntervalUs);
    }
};

/**
 * The multi-user network simulator. Construction derives the shared
 * analytic SoftPHY tables (and, for multi-cell specs, realizes the
 * deployment geometry); run() executes the slotted timeline and is
 * deterministic for any thread count (and repeatable: every run
 * rebuilds the per-user sessions from the spec's master seed).
 *
 * A 1x1 topology runs the original single-cell engine: independent
 * links, every user transmitting every slot. A larger grid runs
 * the multi-cell engine (see sim/multicell_sim.hh): pathloss +
 * shadowing link budgets from sim::Topology, per-slot SINR over
 * same-slot interfering cells, per-user traffic queues and a
 * per-cell scheduler arbitrating the slot.
 */
class NetworkSim
{
  public:
    /**
     * Build a simulator for @p spec. When the fidelity mode is
     * analytic/auto, the calibration table comes from
     * spec.calibrationFile if set, else from a fresh offline sweep
     * (calibrationBuildSpec(spec); deterministic but not free --
     * share one table across sims via the two-argument constructor
     * when comparing modes).
     */
    explicit NetworkSim(const NetworkSpec &spec);

    /** Build with an injected (pre-built or shared) table. */
    NetworkSim(const NetworkSpec &spec,
               std::shared_ptr<const softphy::CalibrationTable> table);

    /** The network description in use. */
    const NetworkSpec &spec() const { return spec_; }

    /**
     * The calibration table backing the analytic path. Non-null
     * whenever the fidelity mode is analytic/auto; in full mode it
     * is null unless one was injected (a full-fidelity run never
     * consults it either way).
     */
    const softphy::CalibrationTable *calibration() const
    {
        return calib.get();
    }

    /**
     * The offline sweep NetworkSim would run to calibrate @p spec:
     * the link template's receiver/payload against a flat channel
     * across the SNR range its users can reach (mean SNR +- spread
     * plus fading excursions).
     */
    static softphy::CalibrationTable::BuildSpec
    calibrationBuildSpec(const NetworkSpec &spec);

    /** Deterministic mean-SNR offset of @p user in dB. */
    double userSnrOffsetDb(int user) const;

    /**
     * The realized deployment geometry; non-null only for
     * multi-cell specs (spec().multicell()).
     */
    const Topology *topology() const { return topo.get(); }

    /**
     * Fully resolved per-user link scenario: the link template with
     * the user's AR(1) channel configuration and derived seeds
     * substituted (exported for tools and tests; run() derives the
     * same values internally).
     */
    ScenarioSpec userLinkSpec(int user) const;

    /**
     * Simulate @p slots frame slots for every user.
     * @param threads Worker threads (0 = hardware concurrency,
     *                clamped to the user count).
     */
    NetworkResult run(std::uint64_t slots, int threads = 0);

  private:
    struct UserSeeds {
        double snrOffsetDb;
        std::uint64_t channelSeed;
        std::uint64_t payloadSeed;
        std::uint64_t arrivalStream;
        /** Analytic-path success draws ((seed, user, slot)-keyed). */
        std::uint64_t fidelityStream;
    };

    UserSeeds userSeeds(int user) const;

    /** Load or measure the table when the policy needs one. */
    void ensureCalibration();

    NetworkSpec spec_;
    softphy::BerEstimator estimator;
    std::shared_ptr<const softphy::CalibrationTable> calib;
    std::unique_ptr<Topology> topo; // multi-cell specs only
    // Immutable derived state the SoA multi-cell engine reuses
    // across run() calls (fader banks, stream keys, flattened
    // calibration). Opaque; see sim/multicell_sim.hh.
    std::shared_ptr<McSoaCache> soaCache;
};

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_NETWORK_SIM_HH
