#include "sim/scenario_grid.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"
#include "sim/testbench.hh"

namespace wilis {
namespace sim {

size_t
ScenarioGrid::cellCount() const
{
    size_t n = 1;
    n *= rates.empty() ? 1 : rates.size();
    n *= channels.empty() ? 1 : channels.size();
    n *= snrsDb.empty() ? 1 : snrsDb.size();
    n *= payloads.empty() ? 1 : payloads.size();
    return n;
}

ScenarioSpec
ScenarioGrid::cell(size_t index) const
{
    wilis_assert(index < cellCount(), "cell index %zu out of %zu",
                 index, cellCount());

    const size_t n_rates = rates.empty() ? 1 : rates.size();
    const size_t n_chans = channels.empty() ? 1 : channels.size();
    const size_t n_snrs = snrsDb.empty() ? 1 : snrsDb.size();
    const size_t n_pay = payloads.empty() ? 1 : payloads.size();

    // Row-major decomposition: rate is the slowest axis, payload the
    // fastest. The layout is part of the replayability contract (a
    // cell index always names the same scenario), so tests pin it.
    size_t rest = index;
    const size_t i_pay = rest % n_pay;
    rest /= n_pay;
    const size_t i_snr = rest % n_snrs;
    rest /= n_snrs;
    const size_t i_chan = rest % n_chans;
    rest /= n_chans;
    const size_t i_rate = rest;
    (void)n_rates;

    ScenarioSpec spec = base;
    if (!rates.empty())
        spec.rate = rates[i_rate];
    if (!channels.empty())
        spec.channel = channels[i_chan];
    if (!snrsDb.empty())
        spec = spec.withSnrDb(snrsDb[i_snr]);
    if (!payloads.empty())
        spec.payloadBits = payloads[i_pay];

    // Replayable per-cell seeding: independent channel noise and
    // payload streams per cell, derived only from (grid seed, cell).
    CounterRng cell_rng = CounterRng(seed).fork(index);
    spec = spec.withChannelSeed(cell_rng.at(1) >> 1);
    spec.payloadSeed = cell_rng.at(2);
    spec.name = spec.label();
    return spec;
}

std::vector<CellResult>
sweepGrid(const ScenarioGrid &grid, const GridSweepOptions &opt)
{
    wilis_assert(opt.shardCount >= 1 && opt.shardIndex >= 0 &&
                     opt.shardIndex < opt.shardCount,
                 "grid shard %d/%d out of range", opt.shardIndex,
                 opt.shardCount);
    // This process's round-robin share of the cell indices (all of
    // them for the default 1-shard options).
    std::vector<size_t> owned;
    for (size_t c = static_cast<size_t>(opt.shardIndex);
         c < grid.cellCount();
         c += static_cast<size_t>(opt.shardCount))
        owned.push_back(c);
    std::vector<CellResult> results(owned.size());

    // Shard by cell: each worker claims whole cells from the pool's
    // dynamic queue and owns a private Testbench (arena included)
    // while it runs one. Writes go to the worker's own results slot,
    // so no synchronization beyond the pool's queue is needed.
    auto run_cell = [&](std::uint64_t c) {
        const size_t idx = owned[static_cast<size_t>(c)];
        CellResult &res = results[static_cast<size_t>(c)];
        res.cellIndex = idx;
        res.spec = grid.cell(idx);

        Testbench tb(res.spec);
        for (std::uint64_t p = 0; p < opt.packetsPerCell; ++p) {
            FrameResult fr = tb.runFrame(res.spec.payloadBits, p);
            res.bits.bits += fr.txPayload.size();
            res.bits.errors += fr.bitErrors;
            res.packets += 1;
            res.packetErrors += fr.ok ? 0 : 1;
        }
        if (opt.onCell)
            opt.onCell(res);
    };

    if (opt.threads == 1 || owned.size() <= 1) {
        for (size_t c = 0; c < owned.size(); ++c)
            run_cell(c);
    } else {
        ThreadPool pool(opt.threads);
        pool.parallelFor(owned.size(), run_cell);
    }
    return results;
}

} // namespace sim
} // namespace wilis
