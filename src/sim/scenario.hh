/**
 * @file
 * The unified scenario description consumed by every execution style
 * in WiLIS: the batched functional testbench (sim::Testbench), the
 * cycle-counted latency-insensitive pipeline (sim::LiTransceiver) and
 * the parallel sweep harness (sim::sweepPackets / sim::sweepGrid).
 *
 * A ScenarioSpec is one declarative value naming the 802.11a/g rate,
 * the receiver configuration (decoder slot, demapper quantization),
 * the channel registry entry with its parameters, the payload
 * geometry and seeds, and the LI clock-domain assignment. Because
 * both execution paths build from the same spec, bit-exactness
 * across them is a property of the spec, not of call-site
 * discipline -- the WiLIS "same blocks, both worlds" claim lifted to
 * whole scenarios.
 *
 * Specs round-trip through li::Config ("k=v,k=v" strings or config
 * files), and a process-wide preset registry maps names like
 * "rayleigh-fading" to ready-made specs, so scenario selection is a
 * configuration change, not a source change (the paper's Plug-n-Play
 * property at scenario granularity).
 */

#ifndef WILIS_SIM_SCENARIO_HH
#define WILIS_SIM_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "li/config.hh"
#include "phy/ofdm_rx.hh"

namespace wilis {
namespace sim {

struct TestbenchConfig;

/** Clock frequencies of the three LI partitions (section 3). */
struct ScenarioClocks {
    /** Baseband pipeline clock in MHz (section 3: 35). */
    double basebandMhz = 35.0;
    /** Decoder / BER-unit clock in MHz (section 3: 60). */
    double decoderMhz = 60.0;
    /** Software-channel partition clock in MHz. */
    double hostMhz = 100.0;
};

/** One fully specified simulation scenario. */
struct ScenarioSpec {
    /** Human-readable label (grid sweeps derive cell labels). */
    std::string name = "default";
    /** 802.11a/g rate index (0..7). */
    phy::RateIndex rate = 4;
    /** Receiver configuration (decoder slot, demapper widths...). */
    phy::OfdmReceiver::Config rx;
    /** Channel registry name ("awgn", "rayleigh", ...). */
    std::string channel = "awgn";
    /** Channel parameters (snr_db, doppler_hz, seed...). */
    li::Config channelCfg;
    /** Payload length in bits. */
    size_t payloadBits = 1000;
    /** Seed for random payload generation. */
    std::uint64_t payloadSeed = 0x5EED;
    /** LI clock-domain assignment. */
    ScenarioClocks clocks;

    // ---- fluent copies for grid expansion ------------------------
    ScenarioSpec withRate(phy::RateIndex r) const;
    ScenarioSpec withChannel(const std::string &name) const;
    ScenarioSpec withSnrDb(double snr_db) const;
    ScenarioSpec withPayloadBits(size_t bits) const;
    ScenarioSpec withChannelSeed(std::uint64_t seed) const;

    /** SNR currently configured (channelCfg "snr_db", default 10). */
    double snrDb() const;

    /** Compact cell label, e.g. "r4/awgn/snr10/p1000". */
    std::string label() const;

    /** Legacy testbench configuration equivalent to this spec. */
    TestbenchConfig testbench() const;

    /** Lift a legacy testbench configuration into a spec. */
    static ScenarioSpec fromTestbench(const TestbenchConfig &cfg,
                                      size_t payload_bits);

    /**
     * Overlay the keys present in @p cfg onto this spec (absent
     * keys keep their current values). Keys: rate, channel,
     * payload_bits, payload_seed, decoder, soft_width, csi_weight,
     * scrambler_seed, baseband_mhz, decoder_mhz, host_mhz, name;
     * "channel.<k>" and "decoder.<k>" pass <k> through to the
     * channel / decoder sub-configs; "snr_db" and "seed" are
     * forwarded to the channel as the common shorthand.
     */
    void applyConfig(const li::Config &cfg);

    /** Parse a spec from defaults + applyConfig(cfg). */
    static ScenarioSpec fromConfig(const li::Config &cfg);

    /** Serialize to the fromConfig() key set (round-trips). */
    li::Config toConfig() const;
};

/**
 * Process-wide scenario preset registry ("awgn-mid",
 * "rayleigh-fading", ...). Presets are factories so registration is
 * cheap and the returned spec is freely mutable.
 */
void registerScenarioPreset(const std::string &name,
                            ScenarioSpec (*factory)());

/** Instantiate a preset; fatal if unknown. */
ScenarioSpec scenarioPreset(const std::string &name);

/** True if @p name is a registered preset. */
bool hasScenarioPreset(const std::string &name);

/** Sorted names of all registered presets. */
std::vector<std::string> scenarioPresetNames();

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_SCENARIO_HH
