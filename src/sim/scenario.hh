/**
 * @file
 * The unified scenario description consumed by every execution style
 * in WiLIS: the batched functional testbench (sim::Testbench), the
 * cycle-counted latency-insensitive pipeline (sim::LiTransceiver) and
 * the parallel sweep harness (sim::sweepFrames / sim::sweepGrid).
 *
 * A ScenarioSpec is one declarative value naming the 802.11a/g rate,
 * the receiver configuration (decoder slot, demapper quantization),
 * the channel registry entry with its parameters, the payload
 * geometry and seeds, and the LI clock-domain assignment. Because
 * both execution paths build from the same spec, bit-exactness
 * across them is a property of the spec, not of call-site
 * discipline -- the WiLIS "same blocks, both worlds" claim lifted to
 * whole scenarios.
 *
 * Specs round-trip through li::Config ("k=v,k=v" strings or config
 * files), and a process-wide preset registry maps names like
 * "rayleigh-fading" to ready-made specs, so scenario selection is a
 * configuration change, not a source change (the paper's Plug-n-Play
 * property at scenario granularity).
 */

#ifndef WILIS_SIM_SCENARIO_HH
#define WILIS_SIM_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/kernels.hh"
#include "li/config.hh"
#include "mac/arq.hh"
#include "mac/scheduler.hh"
#include "mac/traffic.hh"
#include "phy/ofdm_rx.hh"
#include "sim/link_fidelity.hh"
#include "sim/mobility.hh"
#include "sim/topology.hh"

namespace wilis {
namespace sim {

struct TestbenchConfig;

/** Clock frequencies of the three LI partitions (section 3). */
struct ScenarioClocks {
    /** Baseband pipeline clock in MHz (section 3: 35). */
    double basebandMhz = 35.0;
    /** Decoder / BER-unit clock in MHz (section 3: 60). */
    double decoderMhz = 60.0;
    /** Software-channel partition clock in MHz. */
    double hostMhz = 100.0;
};

/** One fully specified simulation scenario. */
struct ScenarioSpec {
    /** Human-readable label (grid sweeps derive cell labels). */
    std::string name = "default";
    /** 802.11a/g rate index (0..7). */
    phy::RateIndex rate = 4;
    /** Receiver configuration (decoder slot, demapper widths...). */
    phy::OfdmReceiver::Config rx;
    /** Channel registry name ("awgn", "rayleigh", ...). */
    std::string channel = "awgn";
    /** Channel parameters (snr_db, doppler_hz, seed...). */
    li::Config channelCfg;
    /** Payload length in bits. */
    size_t payloadBits = 1000;
    /** Seed for random payload generation. */
    std::uint64_t payloadSeed = 0x5EED;
    /** LI clock-domain assignment. */
    ScenarioClocks clocks;
    /**
     * SIMD kernel backend for this scenario ("auto", "scalar",
     * "sse4.2", "avx2"), so runs can A/B backends from
     * configuration alone. Backends are bit-exact; this changes
     * speed only. WILIS_KERNEL_BACKEND overrides it process-wide.
     *
     * Selection is PROCESS-GLOBAL (one dispatch table), applied
     * when a harness is constructed: A/B backends sequentially --
     * one backend per run -- not by mixing kernel_backend values
     * across cells of one multi-threaded sweep, where the last
     * constructed cell would silently win the timing attribution
     * for all workers (results stay bit-identical either way).
     */
    kernels::KernelPolicy kernel;

    // ---- fluent copies for grid expansion ------------------------
    /** Copy with the rate replaced. */
    ScenarioSpec withRate(phy::RateIndex r) const;
    /** Copy with the kernel backend replaced. */
    ScenarioSpec withKernelBackend(const std::string &backend) const;
    /** Copy with the channel registry name replaced. */
    ScenarioSpec withChannel(const std::string &name) const;
    /** Copy with the channel "snr_db" parameter replaced. */
    ScenarioSpec withSnrDb(double snr_db) const;
    /** Copy with the payload length replaced. */
    ScenarioSpec withPayloadBits(size_t bits) const;
    /** Copy with the channel "seed" parameter replaced. */
    ScenarioSpec withChannelSeed(std::uint64_t seed) const;

    /** SNR currently configured (channelCfg "snr_db", default 10). */
    double snrDb() const;

    /** Compact cell label, e.g. "r4/awgn/snr10/p1000". */
    std::string label() const;

    /** Legacy testbench configuration equivalent to this spec. */
    TestbenchConfig testbench() const;

    /** Lift a legacy testbench configuration into a spec. */
    static ScenarioSpec fromTestbench(const TestbenchConfig &cfg,
                                      size_t payload_bits);

    /**
     * Overlay the keys present in @p cfg onto this spec (absent
     * keys keep their current values). Keys: rate, channel,
     * payload_bits, payload_seed, decoder, soft_width, csi_weight,
     * scrambler_seed, baseband_mhz, decoder_mhz, host_mhz, name,
     * kernel_backend;
     * "channel.<k>" and "decoder.<k>" pass <k> through to the
     * channel / decoder sub-configs; "snr_db" and "seed" are
     * forwarded to the channel as the common shorthand. Any other
     * key is a hard error ("unknown ScenarioSpec key ...").
     */
    void applyConfig(const li::Config &cfg);

    /** Parse a spec from defaults + applyConfig(cfg). */
    static ScenarioSpec fromConfig(const li::Config &cfg);

    /** Serialize to the fromConfig() key set (round-trips). */
    li::Config toConfig() const;
};

/**
 * Process-wide scenario preset registry ("awgn-mid",
 * "rayleigh-fading", ...). Presets are factories so registration is
 * cheap and the returned spec is freely mutable.
 */
void registerScenarioPreset(const std::string &name,
                            ScenarioSpec (*factory)());

/** Instantiate a preset; fatal if unknown. */
ScenarioSpec scenarioPreset(const std::string &name);

/** True if @p name is a registered preset. */
bool hasScenarioPreset(const std::string &name);

/** Sorted names of all registered presets. */
std::vector<std::string> scenarioPresetNames();

/**
 * Every exact key ScenarioSpec::applyConfig() accepts, sorted
 * (prefixed families like "channel.<k>" / "decoder.<k>" appear as
 * the literal prefix "channel." / "decoder."). The authoritative
 * list docs/SCENARIOS.md is cross-checked against, so the reference
 * cannot silently drift from the parser.
 */
std::vector<std::string> scenarioSpecKeys();

/**
 * Checkpoint/resume policy of a multi-cell run (see
 * src/sim/campaign.hh and common/snapshot.hh). Snapshots capture
 * the full mutable simulation state at a slot boundary; resuming
 * from one continues the run bit-identically to an uninterrupted
 * execution, for any thread count and either multi-cell engine.
 */
struct CheckpointSpec {
    /** Snapshot file path; empty disables checkpointing. */
    std::string file;
    /**
     * Save a snapshot every this many slots (at slot boundaries
     * past the start slot). 0 writes no periodic snapshots --
     * useful for a pure resume run.
     */
    std::uint64_t everySlots = 0;
    /** Resume from `file` (which must exist) instead of slot 0. */
    bool resume = false;

    /** True when any checkpoint behavior is requested. */
    bool enabled() const { return !file.empty(); }
};

/**
 * Declarative description of a multi-user cell simulation: N
 * independent links sharing one slotted timeline, each built from
 * the embedded per-link ScenarioSpec template plus per-user derived
 * seeds, an AR(1) fading process, a SoftRate adapter and an ARQ
 * instance (see sim::NetworkSim). Like ScenarioSpec, a NetworkSpec
 * round-trips through li::Config and has its own preset family
 * ("cell-16", "cell-dense", ...), so whole network experiments are
 * a configuration change.
 */
struct NetworkSpec {
    /** Human-readable label. */
    std::string name = "cell";

    /**
     * Per-link template: rate is the initial SoftRate rate, channel
     * configuration supplies the mean SNR. The channel itself is
     * replaced per user by an AR(1) fading instance with a derived
     * seed, so `channel`/seed fields of the template are ignored.
     */
    ScenarioSpec link;

    /** Number of users (independent links) in the cell. */
    int numUsers = 16;

    /**
     * Traffic arrival model: "full" (every user offers a frame every
     * slot) or "bernoulli" (each user independently offers a frame
     * with probability arrivalProb per slot).
     */
    std::string arrivalModel = "full";

    /** Per-slot offer probability under the "bernoulli" model. */
    double arrivalProb = 1.0;

    /** Maximum Doppler frequency of every link's fading, in Hz. */
    double dopplerHz = 30.0;

    /**
     * Half-width of the per-user mean SNR spread in dB: user u's
     * mean SNR is the template SNR plus a deterministic offset in
     * [-snrSpreadDb, +snrSpreadDb] (near/far users). 0 = uniform
     * cell.
     */
    double snrSpreadDb = 0.0;

    /** Slot duration in microseconds (AR(1) sampling interval). */
    double frameIntervalUs = 2000.0;

    /** ARQ discipline for every link. */
    mac::ArqMode arqMode = mac::ArqMode::SelectiveRepeat;
    /** ARQ window (selective repeat; stop-and-wait forces 1). */
    int arqWindow = 8;
    /** Attempts per frame before the ARQ drops it (0 = infinite). */
    int arqMaxAttempts = 8;
    /** Slots from transmission to ACK/NACK visibility. */
    std::uint64_t ackDelaySlots = 1;

    /** SoftRate PBER operating range (rate up below lo). */
    double pberLo = 1e-6;
    /** SoftRate PBER operating range (rate down above hi). */
    double pberHi = 1e-4;

    /** Master seed; all per-user streams are forked from it. */
    std::uint64_t seed = 0xCE11;

    /**
     * Independent replications of this spec a campaign runs (see
     * sim::runCampaignShard): rep 0 uses `seed` itself, rep r > 0 a
     * seed forked deterministically from it. 1 -- the default --
     * is a plain single run everywhere outside the campaign layer.
     */
    int reps = 1;

    /**
     * Per-link fidelity ladder (see sim::LinkFidelity): "full" runs
     * the bit-exact PHY every slot, "analytic" draws frame outcomes
     * from a calibrated softphy::CalibrationTable, "auto" mixes the
     * two on a warm-up + periodic-refresh schedule.
     */
    FidelityPolicy fidelity;

    /**
     * Calibration table file for the analytic/auto modes. Empty
     * means sim::NetworkSim measures a table itself at construction
     * (deterministic, but costs a small offline sweep); non-empty
     * loads a committed table (see examples/build_calibration).
     */
    std::string calibrationFile;

    /**
     * Cell-grid deployment geometry. A 1x1 grid (the default) runs
     * the single-cell legacy timeline -- every user transmitting
     * every slot on an independent link, exactly the PR 2-4
     * trajectories. Any larger grid engages the multi-cell engine:
     * per-user 2-D placement, pathloss + shadowing link budgets,
     * per-slot SINR over the same-slot interfering cells, traffic
     * queues and a per-cell scheduler.
     */
    TopologySpec topology;

    /** Per-user traffic model (multi-cell engine). */
    mac::TrafficSpec traffic;

    /** Per-cell slot scheduler (multi-cell engine). */
    mac::CellScheduler::Config scheduler;

    /**
     * User mobility, handover and session churn (multi-cell engine;
     * see sim::MobilityRuntime). The default -- no trajectory model
     * and zero churn -- keeps every multi-cell run bit-identical to
     * the static simulator.
     */
    MobilitySpec mobility;

    /**
     * Record the per-packet event trace (mac::PacketTrace) into
     * NetworkResult::trace. Off by default: recording costs memory
     * proportional to the event count and a store per MAC event.
     * The trace contents are bit-identical for any thread count and
     * either multi-cell engine.
     */
    bool trace = false;

    /**
     * Snapshot checkpoint/resume of the run state (multi-cell
     * engine only; keys checkpoint_file / checkpoint_every /
     * checkpoint_resume). Disabled by default.
     */
    CheckpointSpec checkpoint;

    /**
     * Multi-cell execution engine: "soa" runs the batched
     * structure-of-arrays slot loop (the default resolution of
     * "auto"), "peruser" the original per-user object walk kept as
     * the bit-exact reference. Both produce identical NetworkResults
     * for any spec, thread count and kernel backend; the knob exists
     * for equivalence tests and A/B benchmarking.
     */
    std::string engine = "auto";

    /** True if this spec engages the multi-cell engine. */
    bool multicell() const { return topology.multicell(); }

    /**
     * Overlay the keys present in @p cfg onto this spec. Keys:
     * name, users, arrival, arrival_prob, doppler_hz, snr_spread_db,
     * frame_interval_us, arq (stopwait|selective), arq_window,
     * arq_max_attempts, ack_delay, pber_lo, pber_hi, net_seed,
     * fidelity (full|analytic|auto), fidelity_warmup,
     * fidelity_refresh_period, fidelity_refresh_slots,
     * calibration_file; multi-cell keys cells ("RxC", e.g. "3x3"),
     * cell_spacing_m, cell_radius_m, min_distance_m, ref_snr_db,
     * ref_distance_m, pathloss_exp, shadow_sigma_db, traffic
     * (full_buffer|poisson|onoff), traffic_load, on_slots,
     * off_slots, queue_limit, scheduler
     * (round_robin|proportional_fair), pf_horizon, qdisc
     * (fifo|priority|drop_head), control_rate, contention
     * (none|fixed), mobility (none|line|orbit|waypoint), speed_mps,
     * handover_hyst_db, handover_ttt_slots, churn_rate; the common
     * key trace (bool) records the per-packet event trace;
     * "link.<k>" keys pass <k> through to the link template, and
     * the common shorthands rate, snr_db, payload_bits, decoder and
     * kernel_backend are forwarded to it directly. Any other key is
     * a hard error ("unknown NetworkSpec key ...").
     */
    void applyConfig(const li::Config &cfg);

    /** Parse a spec from defaults + applyConfig(cfg). */
    static NetworkSpec fromConfig(const li::Config &cfg);

    /** Serialize to the fromConfig() key set (round-trips). */
    li::Config toConfig() const;

    /**
     * Canonical description of everything that shapes the run's
     * slot-by-slot dynamics, used to match a snapshot to the spec
     * resuming it (common/snapshot.hh). Excludes the engine choice
     * (both engines are bit-identical by contract, so a snapshot
     * written under one resumes under the other), the checkpoint
     * policy itself (a resume run may change where or how often it
     * saves) and the campaign rep count.
     */
    std::string fingerprint() const;
};

/** Register a network preset (same contract as scenario presets). */
void registerNetworkPreset(const std::string &name,
                           NetworkSpec (*factory)());

/** Instantiate a network preset; fatal if unknown. */
NetworkSpec networkPreset(const std::string &name);

/** True if @p name is a registered network preset. */
bool hasNetworkPreset(const std::string &name);

/** Sorted names of all registered network presets. */
std::vector<std::string> networkPresetNames();

/**
 * Every exact key NetworkSpec::applyConfig() accepts, sorted (the
 * "link.<k>" pass-through family appears as the literal prefix
 * "link."). Same docs cross-check contract as scenarioSpecKeys().
 */
std::vector<std::string> networkSpecKeys();

/**
 * Resolve a command-line scenario argument -- the one spec-argument
 * grammar every CLI shares (wilis_cli, scenario tooling):
 *  - a preset name                      ("rayleigh-fading")
 *  - a preset with overrides appended   ("rayleigh-fading,snr_db=12")
 *  - an inline config string            ("rate=4,decoder=sova"),
 *    which may name its base via the preset= key
 *  - a config file path (no '=' anywhere, not a preset name)
 * Starts from @p defaults; fatal on unknown presets, unreadable
 * files and unknown keys, exactly like applyConfig().
 */
ScenarioSpec parseScenarioSpecArg(const std::string &arg,
                                  const ScenarioSpec &defaults =
                                      ScenarioSpec());

/** The NetworkSpec twin of parseScenarioSpecArg(). */
NetworkSpec parseNetworkSpecArg(const std::string &arg,
                                const NetworkSpec &defaults =
                                    NetworkSpec());

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_SCENARIO_HH
