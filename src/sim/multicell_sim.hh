/**
 * @file
 * The multi-cell engine behind sim::NetworkSim: a cell grid
 * (sim::Topology) evolving in lockstep over the shared slotted
 * timeline with per-slot SINR from same-slot interfering cells,
 * per-user traffic queues (mac::TrafficSource) and a per-cell slot
 * scheduler (mac::CellScheduler) arbitrating who transmits. ARQ,
 * SoftRate and the fidelity ladder consume the scheduler's grants
 * unchanged.
 *
 * Execution model: each slot runs two phases separated by a
 * LockstepTeam barrier, cells statically partitioned across workers.
 *
 *   Phase 1 (schedule) -- per cell: deliver due ACKs, draw traffic
 *       arrivals, evaluate eligibility and (for proportional fair)
 *       the instantaneous rate metric, and pick this slot's grant.
 *       The only cross-cell output is the per-cell activity flag +
 *       granted user.
 *   Phase 2 (transmit) -- per cell: fold the grant's serving gain,
 *       per-slot fading and the *other* cells' phase-1 activity
 *       into an effective SINR, push it through the fidelity rung
 *       (calibrated analytic draw, or the bit-exact PHY at the
 *       conditioned SINR), and feed ARQ/SoftRate.
 *
 * Two engines implement this model and produce bit-identical
 * NetworkResults for any spec, thread count and kernel backend
 * (NetworkSpec::engine selects; "auto" resolves to "soa"):
 *
 *  - runMulticellPerUser() -- the original per-user object walk,
 *    kept as the readable bit-exact reference.
 *  - runMulticellSoa()     -- the structure-of-arrays engine
 *    (multicell_soa.cc): per-cell contiguous state blocks, with the
 *    phase-2 SINR accumulation, counter-RNG fades and calibrated
 *    PER draws batched through the runtime-dispatched kernels in
 *    common/kernels.hh (docs/ARCHITECTURE.md, "Structure-of-arrays
 *    analytic engine").
 *
 * All mutable state is owned by exactly one cell (its users'
 * queues, ARQ windows, schedulers, statistics) or one worker (PHY
 * contexts), every random stream is keyed by (seed, user, slot) or
 * (seed, user, cell, slot), and the phase barrier makes the
 * activity set each cell observes independent of sharding -- so a
 * deployment of any size is bit-identical at any thread count.
 *
 * Internal to sim::NetworkSim; call NetworkSim::run() instead.
 */

#ifndef WILIS_SIM_MULTICELL_SIM_HH
#define WILIS_SIM_MULTICELL_SIM_HH

#include <cstdint>
#include <memory>

#include "sim/network_sim.hh"
#include "sim/topology.hh"
#include "softphy/ber_estimator.hh"
#include "softphy/calibration_table.hh"

namespace wilis {
namespace sim {

/**
 * Cross-run cache of the SoA engine's immutable derived per-user
 * state: Jakes oscillator banks, forked stream keys, serving gains
 * and the flattened calibration table -- everything that is a pure
 * function of (spec, topology, table) and therefore identical for
 * every run() of the same NetworkSim. Owned by NetworkSim (opaque
 * here; defined in multicell_soa.cc) so repeated runs skip the
 * rederivation; caching cannot change results.
 */
struct McSoaCache;

/**
 * Run @p slots frame slots of the multi-cell deployment @p topo
 * described by @p spec, dispatching on spec.engine. @p calib backs
 * the analytic fidelity rung (must be valid unless the mode is
 * "full"); @p estimator feeds SoftRate on the full-PHY rung.
 * @p cache, when non-null, lets the SoA engine reuse immutable
 * derived state across runs (pass the same slot for the same
 * spec/topo/calib only).
 */
NetworkResult runMulticellNetwork(
    const NetworkSpec &spec, const Topology &topo,
    const softphy::BerEstimator &estimator,
    std::shared_ptr<const softphy::CalibrationTable> calib,
    std::uint64_t slots, int threads,
    std::shared_ptr<McSoaCache> *cache = nullptr);

/** The per-user reference engine (see file comment). */
NetworkResult runMulticellPerUser(
    const NetworkSpec &spec, const Topology &topo,
    const softphy::BerEstimator &estimator,
    std::shared_ptr<const softphy::CalibrationTable> calib,
    std::uint64_t slots, int threads);

/** The SIMD-batched structure-of-arrays engine (see file comment). */
NetworkResult runMulticellSoa(
    const NetworkSpec &spec, const Topology &topo,
    const softphy::BerEstimator &estimator,
    std::shared_ptr<const softphy::CalibrationTable> calib,
    std::uint64_t slots, int threads,
    std::shared_ptr<McSoaCache> *cache = nullptr);

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_MULTICELL_SIM_HH
