/**
 * @file
 * The multi-cell engine behind sim::NetworkSim: a cell grid
 * (sim::Topology) evolving in lockstep over the shared slotted
 * timeline with per-slot SINR from same-slot interfering cells,
 * per-user traffic queues (mac::TrafficSource) and a per-cell slot
 * scheduler (mac::CellScheduler) arbitrating who transmits. ARQ,
 * SoftRate and the fidelity ladder consume the scheduler's grants
 * unchanged.
 *
 * Execution model: each slot runs two phases, each sharded one cell
 * per work item across the common::ThreadPool.
 *
 *   Phase 1 (schedule) -- per cell: deliver due ACKs, draw traffic
 *       arrivals, evaluate eligibility and (for proportional fair)
 *       the instantaneous rate metric, and pick this slot's grant.
 *       The only cross-cell output is the per-cell activity flag +
 *       granted user.
 *   Phase 2 (transmit) -- per cell: fold the grant's serving gain,
 *       per-slot fading and the *other* cells' phase-1 activity
 *       into an effective SINR, push it through the fidelity rung
 *       (calibrated analytic draw, or the bit-exact PHY at the
 *       conditioned SINR), and feed ARQ/SoftRate.
 *
 * All mutable state is owned by exactly one cell (its users'
 * queues, ARQ windows, schedulers, statistics) or one worker (PHY
 * contexts), every random stream is keyed by (seed, user, slot) or
 * (seed, user, cell, slot), and the phase barrier makes the
 * activity set each cell observes independent of sharding -- so a
 * deployment of any size is bit-identical at any thread count.
 *
 * Internal to sim::NetworkSim; call NetworkSim::run() instead.
 */

#ifndef WILIS_SIM_MULTICELL_SIM_HH
#define WILIS_SIM_MULTICELL_SIM_HH

#include <cstdint>
#include <memory>

#include "sim/network_sim.hh"
#include "sim/topology.hh"
#include "softphy/ber_estimator.hh"
#include "softphy/calibration_table.hh"

namespace wilis {
namespace sim {

/**
 * Run @p slots frame slots of the multi-cell deployment @p topo
 * described by @p spec. @p calib backs the analytic fidelity rung
 * (must be valid unless the mode is "full"); @p estimator feeds
 * SoftRate on the full-PHY rung.
 */
NetworkResult runMulticellNetwork(
    const NetworkSpec &spec, const Topology &topo,
    const softphy::BerEstimator &estimator,
    std::shared_ptr<const softphy::CalibrationTable> calib,
    std::uint64_t slots, int threads);

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_MULTICELL_SIM_HH
