/**
 * @file
 * Shared worker-thread PHY context of the network simulators: one
 * transmitter/receiver pair per rate (built lazily -- a run that
 * never visits QAM64 never pays for it) and the frame arena backing
 * the zero-copy packet path, plus the mutex-guarded free list that
 * leases contexts to work items. Both the single-cell engine
 * (network_sim.cc) and the multi-cell engine (multicell_sim.cc)
 * draw from this pool, so at most `threads` contexts ever exist
 * regardless of the user or cell count.
 *
 * Internal to src/sim -- not part of the public simulator API.
 */

#ifndef WILIS_SIM_WORKER_PHY_HH
#define WILIS_SIM_WORKER_PHY_HH

#include <array>
#include <memory>
#include <vector>

#include "common/frame_arena.hh"
#include "common/sync.hh"
#include "common/thread_annotations.hh"
#include "phy/ofdm_rx.hh"
#include "phy/ofdm_tx.hh"

namespace wilis {
namespace sim {

/** Per-worker PHY context, leased to one work item at a time. */
struct WorkerPhy {
    /** Per-rate transmitters, built on first use. */
    std::array<std::unique_ptr<phy::OfdmTransmitter>, phy::kNumRates>
        tx;
    /** Per-rate receivers, built on first use. */
    std::array<std::unique_ptr<phy::OfdmReceiver>, phy::kNumRates> rx;
    /** Frame arena backing the zero-copy packet path. */
    FrameArena arena;

    /** Transmitter for rate @p r (lazily constructed). */
    phy::OfdmTransmitter &
    txAt(phy::RateIndex r, const phy::OfdmReceiver::Config &cfg)
    {
        auto &slot = tx[static_cast<size_t>(r)];
        if (!slot)
            slot = std::make_unique<phy::OfdmTransmitter>(
                r, cfg.scramblerSeed);
        return *slot;
    }

    /** Receiver for rate @p r (lazily constructed). */
    phy::OfdmReceiver &
    rxAt(phy::RateIndex r, const phy::OfdmReceiver::Config &cfg)
    {
        auto &slot = rx[static_cast<size_t>(r)];
        if (!slot)
            slot = std::make_unique<phy::OfdmReceiver>(r, cfg);
        return *slot;
    }
};

/** Mutex-guarded free list of worker PHY contexts. */
class WorkerPhyPool
{
  public:
    /** Lease a context (reused if available, else built fresh). */
    std::unique_ptr<WorkerPhy>
    acquire()
    {
        MutexLock lock(mtx);
        if (!free_.empty()) {
            auto w = std::move(free_.back());
            free_.pop_back();
            return w;
        }
        return std::make_unique<WorkerPhy>();
    }

    /** Return a leased context to the free list. */
    void
    release(std::unique_ptr<WorkerPhy> w)
    {
        MutexLock lock(mtx);
        free_.push_back(std::move(w));
    }

  private:
    Mutex mtx;
    /** Idle contexts; a leased context is owned by its work item. */
    std::vector<std::unique_ptr<WorkerPhy>> free_
        WILIS_GUARDED_BY(mtx);
};

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_WORKER_PHY_HH
