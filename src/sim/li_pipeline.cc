#include "sim/li_pipeline.hh"

#include "common/logging.hh"

namespace wilis {
namespace sim {

SourceModule::SourceModule(std::string name, li::Fifo<LiToken> *out_)
    : li::Module(std::move(name)), out(out_)
{}

void
SourceModule::feed(const std::vector<LiToken> &tokens)
{
    for (const auto &t : tokens)
        pending.push_back(t);
}

bool
SourceModule::tick()
{
    if (pending.empty())
        return false;
    if (!out->canEnq()) {
        out->noteFullStall();
        return false;
    }
    if (first_emit < 0)
        first_emit = static_cast<std::int64_t>(domain()->cycles());
    out->enq(pending.front());
    pending.pop_front();
    return true;
}

SinkModule::SinkModule(std::string name, li::Fifo<LiToken> *in_)
    : li::Module(std::move(name)), in(in_)
{}

bool
SinkModule::tick()
{
    if (!in->canDeq()) {
        in->noteEmptyStall();
        return false;
    }
    if (first_arrival < 0) {
        first_arrival = static_cast<std::int64_t>(domain()->cycles());
        first_arrival_ps = domain()->cycles() * domain()->periodPs();
    }
    tokens.push_back(in->deq());
    return true;
}

DelayStageModule::DelayStageModule(std::string name,
                                   li::Fifo<LiToken> *in_,
                                   li::Fifo<LiToken> *out_, int depth_,
                                   Transform fn_)
    : li::Module(std::move(name)), in(in_), out(out_), depth(depth_),
      fn(std::move(fn_))
{
    wilis_assert(depth >= 1, "stage '%s' needs depth >= 1",
                 this->name().c_str());
}

bool
DelayStageModule::tick()
{
    ++cycle;
    bool busy = false;

    // Emit at most one ready token per cycle. Emission happens
    // before acceptance so a full pipe can retire and refill in the
    // same cycle, sustaining one token per cycle.
    if (!inflight.empty() && inflight.front().ready_cycle <= cycle) {
        if (out->canEnq()) {
            LiToken t = inflight.front().token;
            inflight.pop_front();
            if (fn)
                t.value = fn(t.value);
            out->enq(t);
            busy = true;
        } else {
            out->noteFullStall();
        }
    }

    // Accept at most one token per cycle while the pipe has room.
    if (in->canDeq() &&
        inflight.size() < static_cast<size_t>(depth)) {
        InFlight f;
        f.token = in->deq();
        f.ready_cycle = cycle + static_cast<std::uint64_t>(depth);
        inflight.push_back(f);
        busy = true;
    }
    return busy;
}

namespace {

/** Wire up a chain of delay stages with the given depths. */
LiPipeline
buildChain(li::Scheduler &sched, li::ClockDomain *domain,
           const std::vector<std::pair<std::string, int>> &stages)
{
    LiPipeline pipe;
    pipe.domain = domain;

    std::vector<li::Fifo<LiToken> *> fifos;
    for (size_t i = 0; i <= stages.size(); ++i) {
        fifos.push_back(sched.connectFifo<LiToken>(
            strprintf("fifo%zu", i), 4, domain, domain));
    }

    auto src = std::make_unique<SourceModule>("source", fifos.front());
    pipe.source = src.get();
    sched.adopt(std::move(src), domain);

    for (size_t i = 0; i < stages.size(); ++i) {
        auto stage = std::make_unique<DelayStageModule>(
            stages[i].first, fifos[i], fifos[i + 1],
            stages[i].second);
        sched.adopt(std::move(stage), domain);
        pipe.modeledLatency += stages[i].second;
    }

    auto sink = std::make_unique<SinkModule>("sink", fifos.back());
    pipe.sink = sink.get();
    sched.adopt(std::move(sink), domain);
    return pipe;
}

} // namespace

LiPipeline
buildSovaPipeline(li::Scheduler &sched, li::ClockDomain *domain,
                  int l, int k)
{
    // Figure 3: BMU and PMU are single-cycle kernels, the traceback
    // units contribute their window lengths, and the five 2-entry
    // FIFOs contribute 2 cycles each. Each stage depth below folds
    // in its input FIFO; the trailing "output fifo" stage is the
    // fifth FIFO. Total: 3 + 3 + (l+2) + (k+2) + 2 = l + k + 12.
    return buildChain(sched, domain,
                      {{"bmu", 3},
                       {"pmu", 3},
                       {"traceback1", l + 2},
                       {"traceback2", k + 2},
                       {"outfifo", 2}});
}

LiPipeline
buildBcjrPipeline(li::Scheduler &sched, li::ClockDomain *domain, int n)
{
    // Figure 4: latency dominated by the two size-n reversal
    // buffers; pipeline stages and FIFOs contribute the constant.
    // Total: 3 + n + 1 + n + 1 + 2 = 2n + 7.
    return buildChain(sched, domain,
                      {{"bmu", 3},
                       {"initial_reversal", n},
                       {"pmu", 1},
                       {"final_reversal", n},
                       {"decision", 1},
                       {"outfifo", 2}});
}

int
measurePipelineLatency(li::Scheduler &sched, LiPipeline &pipe,
                       int tokens)
{
    std::vector<LiToken> ts(static_cast<size_t>(tokens));
    for (int i = 0; i < tokens; ++i) {
        ts[static_cast<size_t>(i)].id = static_cast<std::uint64_t>(i);
        ts[static_cast<size_t>(i)].value = i;
    }
    pipe.source->feed(ts);
    sched.runUntilIdle(16);
    wilis_assert(pipe.sink->firstArrivalCycle() >= 0,
                 "pipeline produced no output");
    return static_cast<int>(pipe.sink->firstArrivalCycle() -
                            pipe.source->firstEmitCycle());
}

} // namespace sim
} // namespace wilis
