#include "sim/network_sim.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <thread>

#include "channel/fading.hh"
#include "common/frame_arena.hh"
#include "common/kernels.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"
#include "mac/arq.hh"
#include "mac/softrate.hh"
#include "phy/ofdm_rx.hh"
#include "phy/ofdm_tx.hh"
#include "sim/link_fidelity.hh"
#include "sim/multicell_detail.hh"
#include "sim/multicell_sim.hh"
#include "sim/worker_phy.hh"
#include "softphy/softphy.hh"

namespace wilis {
namespace sim {

void
UserStats::merge(const UserStats &other)
{
    framesSent += other.framesSent;
    framesOk += other.framesOk;
    stalledSlots += other.stalledSlots;
    retransmissions += other.retransmissions;
    delivered += other.delivered;
    dropped += other.dropped;
    goodputBits += other.goodputBits;
    fullPhyFrames += other.fullPhyFrames;
    analyticFrames += other.analyticFrames;
    arrivals += other.arrivals;
    queueDrops += other.queueDrops;
    handovers += other.handovers;
    pingPongs += other.pingPongs;
    joins += other.joins;
    leaves += other.leaves;
    goodputBitsPreHo += other.goodputBitsPreHo;
    goodputBitsPostHo += other.goodputBitsPostHo;
    preHoSlots += other.preHoSlots;
    postHoSlots += other.postHoSlots;
    latencySlots.merge(other.latencySlots);
    queueWaitSlots.merge(other.queueWaitSlots);
    sinrDb.merge(other.sinrDb);
    latencyHist.merge(other.latencyHist);
    attemptsHist.merge(other.attemptsHist);
    rateHist.merge(other.rateHist);
    queueWaitHist.merge(other.queueWaitHist);
    e2eLatencyHist.merge(other.e2eLatencyHist);
}

namespace {

/**
 * The bit-exact fidelity backend: the original NetworkSim frame
 * transaction (tx -> channel -> rx -> decode) behind the
 * LinkFidelity interface. Borrows the leased worker PHY context and
 * the user's channel for the duration of one user timeline.
 */
class FullPhyLink : public LinkFidelity
{
  public:
    FullPhyLink(WorkerPhy &phy, const ScenarioSpec &link,
                channel::Channel &chan,
                const softphy::BerEstimator &estimator,
                std::uint64_t payload_seed)
        : phy_(phy), link_(link), chan_(chan), est_(estimator),
          payload_seed_(payload_seed)
    {}

    LinkFrameResult
    transmit(phy::RateIndex rate, std::uint64_t seq,
             std::uint64_t t) override
    {
        phy_.arena.reset();
        BitSpan payload = phy_.arena.alloc<Bit>(link_.payloadBits);
        // Same derivation as Testbench::makePayloadInto, keyed by
        // sequence number so a retransmission resends the same bits.
        fillDeterministicBits(payload, payload_seed_, seq);

        FrameContext ctx(phy_.arena);
        SampleSpan samples =
            phy_.txAt(rate, link_.rx).modulate(payload, ctx);
        chan_.apply(samples, t);
        phy::RxFrame rx_frame =
            phy_.rxAt(rate, link_.rx)
                .demodulate(samples, link_.payloadBits, &chan_, t,
                            ctx);

        LinkFrameResult res;
        res.ok = rx_frame.bitErrors(payload) == 0;
        res.pber = est_.packetBerForRate(rate, rx_frame.soft);
        res.fullPhy = true;
        return res;
    }

    const char *name() const override { return "full"; }

  private:
    WorkerPhy &phy_;
    const ScenarioSpec &link_;
    channel::Channel &chan_;
    const softphy::BerEstimator &est_;
    std::uint64_t payload_seed_;
};

/**
 * The mixed-fidelity backend: full PHY on the policy's warm-up and
 * refresh slots, calibrated analytic in between. The schedule is a
 * pure function of the slot index (FidelityPolicy::fullPhySlot), so
 * it cannot depend on sharding.
 */
class AutoLink : public LinkFidelity
{
  public:
    AutoLink(const FidelityPolicy &policy, FullPhyLink &full,
             AnalyticLink &fast)
        : policy_(policy), full_(full), fast_(fast)
    {}

    LinkFrameResult
    transmit(phy::RateIndex rate, std::uint64_t seq,
             std::uint64_t t) override
    {
        return policy_.fullPhySlot(t) ? full_.transmit(rate, seq, t)
                                      : fast_.transmit(rate, seq, t);
    }

    const char *name() const override { return "auto"; }

  private:
    const FidelityPolicy &policy_;
    FullPhyLink &full_;
    AnalyticLink &fast_;
};

} // namespace

NetworkSim::NetworkSim(const NetworkSpec &spec)
    : NetworkSim(spec, nullptr)
{}

NetworkSim::NetworkSim(
    const NetworkSpec &spec,
    std::shared_ptr<const softphy::CalibrationTable> table)
    : spec_(spec),
      estimator(softphy::analyticRateEstimator(spec.link.rx)),
      calib(std::move(table))
{
    kernels::applyPolicy(spec_.link.kernel);
    wilis_assert(spec_.numUsers >= 1, "network needs >= 1 user");
    wilis_assert(spec_.link.rate >= 0 &&
                     spec_.link.rate < phy::kNumRates,
                 "initial rate %d out of range", spec_.link.rate);
    if (spec_.multicell())
        topo = std::make_unique<Topology>(spec_.topology,
                                          spec_.numUsers,
                                          spec_.seed);
    ensureCalibration();
}

softphy::CalibrationTable::BuildSpec
NetworkSim::calibrationBuildSpec(const NetworkSpec &spec)
{
    softphy::CalibrationTable::BuildSpec b;
    b.rx = spec.link.rx;
    b.payloadBits = spec.link.payloadBits;
    // Conditioning on the per-slot fading gain reduces every slot to
    // a flat channel at the effective SNR, so the table is measured
    // against "awgn" across the SNR range the cell's users can
    // actually reach: mean +- near/far spread, widened by typical
    // Rayleigh excursions (deep fades below bin 0 clamp to its
    // PER ~ 1 edge, peaks above the top bin to its residual).
    b.channel = "awgn";
    b.snrStepDb = 2.0;
    if (spec.multicell()) {
        // The deployment's SNR span comes from the link-budget
        // extremes, not the single-cell spread: cell edge with a
        // deep shadowing draw at the bottom (interference pushes
        // further down, where the table's PER ~ 1 edge bin already
        // saturates), minimum distance with a high draw at the
        // top. 2.5 sigma covers ~99% of shadowing draws.
        const channel::PathlossModel pl(spec.topology.pathloss, 0);
        const double shadow =
            2.5 * spec.topology.pathloss.shadowSigmaDb;
        double lo = spec.topology.pathloss.refSnrDb -
                    pl.pathlossDb(spec.topology.cellRadiusM) -
                    shadow - 12.0;
        double hi =
            spec.topology.pathloss.refSnrDb -
            pl.pathlossDb(spec.topology.minDistanceM) + shadow;
        // Clamp to the PHY's informative window: below -10 dB every
        // rate has saturated to PER ~ 1 and above 28 dB every rate
        // is at its residual, so bins outside it measure nothing
        // the edge clamping doesn't already model (and the
        // committed network_calibration.txt covers exactly this
        // window). lo is clamped below the hi ceiling so even an
        // all-users-near-the-mast geometry keeps >= 1 bin.
        lo = std::min(std::max(lo, -10.0), 28.0 - b.snrStepDb);
        hi = std::min(std::max(hi, lo + b.snrStepDb), 28.0);
        b.snrLoDb = lo;
        b.numBins = static_cast<int>(
            std::ceil((hi - b.snrLoDb) / b.snrStepDb));
        return b;
    }
    const double mean = spec.link.snrDb();
    b.snrLoDb = mean - spec.snrSpreadDb - 18.0;
    const double hi = mean + spec.snrSpreadDb + 8.0;
    b.numBins = static_cast<int>(
        std::ceil((hi - b.snrLoDb) / b.snrStepDb));
    return b;
}

void
NetworkSim::ensureCalibration()
{
    if (spec_.fidelity.mode == FidelityMode::Full) {
        return; // the bit-exact path needs no table
    }
    if (!calib) {
        calib = std::make_shared<const softphy::CalibrationTable>(
            spec_.calibrationFile.empty()
                ? softphy::CalibrationTable::build(
                      calibrationBuildSpec(spec_))
                : softphy::CalibrationTable::load(
                      spec_.calibrationFile));
    }
    wilis_assert(calib->valid(),
                 "fidelity mode '%s' needs a valid calibration table",
                 fidelityModeName(spec_.fidelity.mode));
    // A table measured for a different frame geometry or receiver
    // still *runs*, but its error rates describe another link; warn
    // loudly instead of silently mis-modeling. The channel kind is
    // part of that contract: the analytic path already conditions
    // on the per-slot fading gain, so its table must be flat
    // ("awgn") -- a fading-averaged table would count fading twice.
    const softphy::CalibrationTable::BuildSpec want =
        calibrationBuildSpec(spec_);
    if (calib->payloadBits() != spec_.link.payloadBits ||
        calib->decoder() != spec_.link.rx.decoder ||
        calib->softWidth() != spec_.link.rx.demapper.softWidth ||
        calib->channelKind() != want.channel) {
        wilis_warn(
            "calibration table (payload %zu, decoder %s, width %d, "
            "channel %s) does not match the link template "
            "(payload %zu, decoder %s, width %d, channel %s); "
            "analytic statistics will be biased",
            calib->payloadBits(), calib->decoder().c_str(),
            calib->softWidth(), calib->channelKind().c_str(),
            spec_.link.payloadBits,
            spec_.link.rx.decoder.c_str(),
            spec_.link.rx.demapper.softWidth,
            want.channel.c_str());
    }
    // SNR coverage is provenance too: lookups outside the calibrated
    // window clamp to the edge bins, so a cell whose users live
    // beyond the table's range would be silently modeled at the
    // nearest calibrated SNR.
    const double have_hi =
        calib->snrLoDb() + calib->numBins() * calib->snrStepDb();
    const double want_hi =
        want.snrLoDb + want.numBins * want.snrStepDb;
    if (calib->snrLoDb() > want.snrLoDb + 1e-9 ||
        have_hi < want_hi - 1e-9) {
        wilis_warn(
            "calibration table covers [%g, %g] dB but this cell "
            "needs [%g, %g] dB; out-of-range slots clamp to the "
            "edge bins",
            calib->snrLoDb(), have_hi, want.snrLoDb, want_hi);
    }
}

NetworkSim::UserSeeds
NetworkSim::userSeeds(int user) const
{
    wilis_assert(user >= 0 && user < spec_.numUsers,
                 "user %d out of %d", user, spec_.numUsers);
    CounterRng root =
        CounterRng(spec_.seed).fork(static_cast<std::uint64_t>(user));
    UserSeeds s;
    s.snrOffsetDb =
        (root.doubleAt(0) * 2.0 - 1.0) * spec_.snrSpreadDb;
    s.channelSeed = root.at(1);
    s.payloadSeed = root.at(2);
    s.arrivalStream = root.at(3);
    // Counter 4 extends the PR 2 scheme without disturbing the
    // existing streams: full-fidelity runs stay bit-identical to
    // their pre-fidelity trajectories.
    s.fidelityStream = root.at(4);
    return s;
}

double
NetworkSim::userSnrOffsetDb(int user) const
{
    return userSeeds(user).snrOffsetDb;
}

ScenarioSpec
NetworkSim::userLinkSpec(int user) const
{
    const UserSeeds seeds = userSeeds(user);
    ScenarioSpec s = spec_.link;
    s.name = strprintf("%s/u%d", spec_.name.c_str(), user);
    s.channel = "ar1";
    s.channelCfg = li::Config();
    s.channelCfg.set("snr_db",
                     strprintf("%.17g",
                               spec_.link.snrDb() + seeds.snrOffsetDb));
    s.channelCfg.set("doppler_hz",
                     strprintf("%.17g", spec_.dopplerHz));
    s.channelCfg.set("frame_interval_us",
                     strprintf("%.17g", spec_.frameIntervalUs));
    s.channelCfg.set(
        "seed", strprintf("%llu", static_cast<unsigned long long>(
                                      seeds.channelSeed)));
    s.payloadSeed = seeds.payloadSeed;
    return s;
}

NetworkResult
NetworkSim::run(std::uint64_t slots, int threads)
{
    if (spec_.multicell())
        return runMulticellNetwork(spec_, *topo, estimator, calib,
                                   slots, threads, &soaCache);

    NetworkResult res;
    res.spec = spec_;
    res.slots = slots;
    res.users.resize(static_cast<size_t>(spec_.numUsers));

    WorkerPhyPool phy_pool;
    const size_t payload_bits = spec_.link.payloadBits;
    const bool bernoulli = spec_.arrivalModel == "bernoulli";

    // One trace shard per user: each worker records into its own
    // lane, finalize() sorts into the canonical order, so the trace
    // is bit-identical for any thread count.
    std::shared_ptr<mac::PacketTrace> trace;
    if (spec_.trace)
        trace = std::make_shared<mac::PacketTrace>(spec_.numUsers);

    // One work item = one user's whole timeline: links are
    // independent, so lockstep rounds and per-user runs produce the
    // same trajectories, and the latter shards with no per-slot
    // barrier. All state a slot touches is either per-user (channel,
    // ARQ, SoftRate, stats) or per-worker (kernels + arena), and
    // every random stream is keyed by (seed, user, slot/seq), so
    // results are independent of the sharding.
    auto run_user = [&](std::uint64_t u) {
        std::unique_ptr<WorkerPhy> phy = phy_pool.acquire();
        const UserSeeds seeds = userSeeds(static_cast<int>(u));
        const double mean_snr_db =
            spec_.link.snrDb() + seeds.snrOffsetDb;

        channel::Ar1FadingChannel chan(
            mean_snr_db, spec_.dopplerHz, spec_.frameIntervalUs,
            seeds.channelSeed);
        const CounterRng arrivals(seeds.arrivalStream);

        // The fidelity ladder: both backends are constructed (they
        // are cheap shells over borrowed state) and the policy picks
        // which one -- or, under "auto", which mix -- simulates this
        // user's slots.
        FullPhyLink full_link(*phy, spec_.link, chan, estimator,
                              seeds.payloadSeed);
        std::unique_ptr<AnalyticLink> fast_link;
        if (spec_.fidelity.mode != FidelityMode::Full)
            fast_link = std::make_unique<AnalyticLink>(
                calib.get(), &chan, mean_snr_db,
                seeds.fidelityStream);
        std::unique_ptr<AutoLink> auto_link;
        if (spec_.fidelity.mode == FidelityMode::Auto)
            auto_link = std::make_unique<AutoLink>(
                spec_.fidelity, full_link, *fast_link);
        LinkFidelity *link = nullptr;
        switch (spec_.fidelity.mode) {
          case FidelityMode::Full:
            link = &full_link;
            break;
          case FidelityMode::Analytic:
            link = fast_link.get();
            break;
          case FidelityMode::Auto:
            link = auto_link.get();
            break;
        }
        wilis_assert(link != nullptr, "no fidelity backend selected");

        mac::SoftRateMac::Config src;
        src.pberLo = spec_.pberLo;
        src.pberHi = spec_.pberHi;
        src.initialRate = spec_.link.rate;
        mac::SoftRateMac softrate(src);

        mac::Arq::Config ac;
        ac.mode = spec_.arqMode;
        ac.window = spec_.arqWindow;
        ac.maxAttempts = spec_.arqMaxAttempts;
        ac.ackDelaySlots = spec_.ackDelaySlots;
        mac::Arq arq(ac);

        UserStats st;
        st.user = static_cast<int>(u);
        st.snrOffsetDb = seeds.snrOffsetDb;

        // Single-cell links have no upper-stack queue: a frame's
        // "arrival" is its first grant slot, and the ARQ sequence
        // number doubles as the packet id.
        detail::TraceCtx tctx;
        if (trace)
            tctx.bind(trace.get(), static_cast<int>(u), 0,
                      static_cast<int>(u), arq.windowSize());

        std::vector<mac::Arq::Delivery> deliveries;
        deliveries.reserve(static_cast<size_t>(arq.windowSize()) + 1);

        for (std::uint64_t t = 0; t < slots; ++t) {
            deliveries.clear();
            arq.tick(t, deliveries);
            for (const auto &d : deliveries)
                detail::recordDelivery(st, d, payload_bits, t, tctx);

            // Traffic model: under "bernoulli" the user only holds
            // the (shared, slotted) medium in its arrival slots;
            // "full" offers a frame every slot.
            if (bernoulli &&
                arrivals.doubleAt(t) >= spec_.arrivalProb)
                continue;

            std::uint64_t seq = 0;
            if (!arq.nextToSend(t, seq)) {
                ++st.stalledSlots;
                continue;
            }
            if (arq.attemptsOf(seq) == 1)
                detail::notePop(
                    tctx, seq,
                    mac::Packet{t, seq, mac::TrafficClass::Data});
            detail::recordGrant(tctx, t, seq, arq.attemptsOf(seq),
                                0);

            const phy::RateIndex rate = softrate.currentRate();
            const LinkFrameResult res = link->transmit(rate, seq, t);

            ++st.framesSent;
            st.framesOk += res.ok ? 1 : 0;
            if (res.fullPhy)
                ++st.fullPhyFrames;
            else
                ++st.analyticFrames;
            st.rateHist.add(static_cast<double>(rate));
            detail::recordTx(tctx, t, seq, res.ok,
                             static_cast<int>(rate));

            softrate.onFeedback(res.pber);
            arq.onSendResult(seq, res.ok);
        }

        // Drain acknowledgements still in flight at the horizon so
        // their deliveries are counted (no new transmissions).
        for (std::uint64_t t = slots;
             t <= slots + spec_.ackDelaySlots; ++t) {
            deliveries.clear();
            arq.tick(t, deliveries);
            for (const auto &d : deliveries)
                detail::recordDelivery(st, d, payload_bits, t, tctx);
        }

        st.retransmissions = arq.retransmissions();
        // No mobility on the single-cell timeline: the whole run is
        // "before the first handover".
        st.preHoSlots = slots;
        res.users[static_cast<size_t>(u)] = st;
        phy_pool.release(std::move(phy));
    };

    int n = threads > 0
                ? threads
                : static_cast<int>(std::max(
                      1u, std::thread::hardware_concurrency()));
    n = std::min(n, spec_.numUsers);
    if (n <= 1) {
        for (int u = 0; u < spec_.numUsers; ++u)
            run_user(static_cast<std::uint64_t>(u));
    } else {
        ThreadPool pool(n);
        pool.parallelFor(
            static_cast<std::uint64_t>(spec_.numUsers), run_user);
    }

    if (trace) {
        trace->finalize();
        // End-to-end latency from the Ack events, in canonical
        // trace order.
        for (const mac::PacketTrace::Entry &e : trace->entries()) {
            if (e.event == mac::PacketEvent::Ack)
                res.users[static_cast<size_t>(e.user)]
                    .e2eLatencyHist.add(static_cast<double>(e.arg1));
        }
        res.trace = trace;
    }

    // Aggregate in user order: the merge sequence is fixed, so the
    // merged floating-point statistics are deterministic too.
    res.aggregate = UserStats();
    res.aggregate.user = -1;
    for (const UserStats &u : res.users)
        res.aggregate.merge(u);
    return res;
}

} // namespace sim
} // namespace wilis
