#include "sim/network_sim.hh"

#include <algorithm>
#include <memory>
#include <mutex>
#include <thread>

#include "channel/fading.hh"
#include "common/frame_arena.hh"
#include "common/kernels.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"
#include "mac/arq.hh"
#include "mac/softrate.hh"
#include "phy/ofdm_rx.hh"
#include "phy/ofdm_tx.hh"
#include "softphy/softphy.hh"

namespace wilis {
namespace sim {

void
UserStats::merge(const UserStats &other)
{
    framesSent += other.framesSent;
    framesOk += other.framesOk;
    stalledSlots += other.stalledSlots;
    retransmissions += other.retransmissions;
    delivered += other.delivered;
    dropped += other.dropped;
    goodputBits += other.goodputBits;
    latencySlots.merge(other.latencySlots);
    latencyHist.merge(other.latencyHist);
    attemptsHist.merge(other.attemptsHist);
    rateHist.merge(other.rateHist);
}

namespace {

/**
 * Per-worker PHY context: one transmitter/receiver pair per rate
 * (built lazily -- a run that never visits QAM64 never pays for it)
 * and the frame arena backing the zero-copy packet path. Leased to
 * one user timeline at a time, so at most `threads` contexts ever
 * exist regardless of the user count.
 */
struct WorkerPhy {
    std::array<std::unique_ptr<phy::OfdmTransmitter>, phy::kNumRates>
        tx;
    std::array<std::unique_ptr<phy::OfdmReceiver>, phy::kNumRates> rx;
    FrameArena arena;

    phy::OfdmTransmitter &
    txAt(phy::RateIndex r, const phy::OfdmReceiver::Config &cfg)
    {
        auto &slot = tx[static_cast<size_t>(r)];
        if (!slot)
            slot = std::make_unique<phy::OfdmTransmitter>(
                r, cfg.scramblerSeed);
        return *slot;
    }

    phy::OfdmReceiver &
    rxAt(phy::RateIndex r, const phy::OfdmReceiver::Config &cfg)
    {
        auto &slot = rx[static_cast<size_t>(r)];
        if (!slot)
            slot = std::make_unique<phy::OfdmReceiver>(r, cfg);
        return *slot;
    }
};

/** Mutex-guarded free list of worker PHY contexts. */
class WorkerPhyPool
{
  public:
    std::unique_ptr<WorkerPhy>
    acquire()
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (!free_.empty()) {
            auto w = std::move(free_.back());
            free_.pop_back();
            return w;
        }
        return std::make_unique<WorkerPhy>();
    }

    void
    release(std::unique_ptr<WorkerPhy> w)
    {
        std::lock_guard<std::mutex> lock(mtx);
        free_.push_back(std::move(w));
    }

  private:
    std::mutex mtx;
    std::vector<std::unique_ptr<WorkerPhy>> free_;
};

} // namespace

NetworkSim::NetworkSim(const NetworkSpec &spec)
    : spec_(spec), estimator(softphy::analyticRateEstimator(spec.link.rx))
{
    kernels::applyPolicy(spec_.link.kernel);
    wilis_assert(spec_.numUsers >= 1, "network needs >= 1 user");
    wilis_assert(spec_.link.rate >= 0 &&
                     spec_.link.rate < phy::kNumRates,
                 "initial rate %d out of range", spec_.link.rate);
}

NetworkSim::UserSeeds
NetworkSim::userSeeds(int user) const
{
    wilis_assert(user >= 0 && user < spec_.numUsers,
                 "user %d out of %d", user, spec_.numUsers);
    CounterRng root =
        CounterRng(spec_.seed).fork(static_cast<std::uint64_t>(user));
    UserSeeds s;
    s.snrOffsetDb =
        (root.doubleAt(0) * 2.0 - 1.0) * spec_.snrSpreadDb;
    s.channelSeed = root.at(1);
    s.payloadSeed = root.at(2);
    s.arrivalStream = root.at(3);
    return s;
}

double
NetworkSim::userSnrOffsetDb(int user) const
{
    return userSeeds(user).snrOffsetDb;
}

ScenarioSpec
NetworkSim::userLinkSpec(int user) const
{
    const UserSeeds seeds = userSeeds(user);
    ScenarioSpec s = spec_.link;
    s.name = strprintf("%s/u%d", spec_.name.c_str(), user);
    s.channel = "ar1";
    s.channelCfg = li::Config();
    s.channelCfg.set("snr_db",
                     strprintf("%.17g",
                               spec_.link.snrDb() + seeds.snrOffsetDb));
    s.channelCfg.set("doppler_hz",
                     strprintf("%.17g", spec_.dopplerHz));
    s.channelCfg.set("frame_interval_us",
                     strprintf("%.17g", spec_.frameIntervalUs));
    s.channelCfg.set(
        "seed", strprintf("%llu", static_cast<unsigned long long>(
                                      seeds.channelSeed)));
    s.payloadSeed = seeds.payloadSeed;
    return s;
}

NetworkResult
NetworkSim::run(std::uint64_t slots, int threads)
{
    NetworkResult res;
    res.spec = spec_;
    res.slots = slots;
    res.users.resize(static_cast<size_t>(spec_.numUsers));

    WorkerPhyPool phy_pool;
    const size_t payload_bits = spec_.link.payloadBits;
    const bool bernoulli = spec_.arrivalModel == "bernoulli";

    // One work item = one user's whole timeline: links are
    // independent, so lockstep rounds and per-user runs produce the
    // same trajectories, and the latter shards with no per-slot
    // barrier. All state a slot touches is either per-user (channel,
    // ARQ, SoftRate, stats) or per-worker (kernels + arena), and
    // every random stream is keyed by (seed, user, slot/seq), so
    // results are independent of the sharding.
    auto run_user = [&](std::uint64_t u) {
        std::unique_ptr<WorkerPhy> phy = phy_pool.acquire();
        const UserSeeds seeds = userSeeds(static_cast<int>(u));

        channel::Ar1FadingChannel chan(
            spec_.link.snrDb() + seeds.snrOffsetDb, spec_.dopplerHz,
            spec_.frameIntervalUs, seeds.channelSeed);
        const CounterRng arrivals(seeds.arrivalStream);

        mac::SoftRateMac::Config src;
        src.pberLo = spec_.pberLo;
        src.pberHi = spec_.pberHi;
        src.initialRate = spec_.link.rate;
        mac::SoftRateMac softrate(src);

        mac::Arq::Config ac;
        ac.mode = spec_.arqMode;
        ac.window = spec_.arqWindow;
        ac.maxAttempts = spec_.arqMaxAttempts;
        ac.ackDelaySlots = spec_.ackDelaySlots;
        mac::Arq arq(ac);

        UserStats st;
        st.user = static_cast<int>(u);
        st.snrOffsetDb = seeds.snrOffsetDb;

        std::vector<mac::Arq::Delivery> deliveries;
        deliveries.reserve(static_cast<size_t>(arq.windowSize()) + 1);

        auto record = [&](const mac::Arq::Delivery &d) {
            st.attemptsHist.add(static_cast<double>(d.attempts));
            if (d.dropped) {
                ++st.dropped;
                return;
            }
            ++st.delivered;
            st.goodputBits += payload_bits;
            st.latencySlots.add(static_cast<double>(d.latencySlots));
            st.latencyHist.add(static_cast<double>(d.latencySlots));
        };

        for (std::uint64_t t = 0; t < slots; ++t) {
            deliveries.clear();
            arq.tick(t, deliveries);
            for (const auto &d : deliveries)
                record(d);

            // Traffic model: under "bernoulli" the user only holds
            // the (shared, slotted) medium in its arrival slots;
            // "full" offers a frame every slot.
            if (bernoulli &&
                arrivals.doubleAt(t) >= spec_.arrivalProb)
                continue;

            std::uint64_t seq = 0;
            if (!arq.nextToSend(t, seq)) {
                ++st.stalledSlots;
                continue;
            }

            const phy::RateIndex rate = softrate.currentRate();
            phy->arena.reset();
            BitSpan payload = phy->arena.alloc<Bit>(payload_bits);
            // Same derivation as Testbench::makePayloadInto, keyed
            // by sequence number so a retransmission resends the
            // same bits.
            fillDeterministicBits(payload, seeds.payloadSeed, seq);

            FrameContext ctx(phy->arena);
            SampleSpan samples =
                phy->txAt(rate, spec_.link.rx).modulate(payload, ctx);
            chan.apply(samples, t);
            phy::RxFrame rx_frame =
                phy->rxAt(rate, spec_.link.rx)
                    .demodulate(samples, payload_bits, &chan, t, ctx);

            const bool ok = rx_frame.bitErrors(payload) == 0;
            ++st.framesSent;
            st.framesOk += ok ? 1 : 0;
            st.rateHist.add(static_cast<double>(rate));

            softrate.onFeedback(
                estimator.packetBerForRate(rate, rx_frame.soft));
            arq.onSendResult(seq, ok);
        }

        // Drain acknowledgements still in flight at the horizon so
        // their deliveries are counted (no new transmissions).
        for (std::uint64_t t = slots;
             t <= slots + spec_.ackDelaySlots; ++t) {
            deliveries.clear();
            arq.tick(t, deliveries);
            for (const auto &d : deliveries)
                record(d);
        }

        st.retransmissions = arq.retransmissions();
        res.users[static_cast<size_t>(u)] = st;
        phy_pool.release(std::move(phy));
    };

    int n = threads > 0
                ? threads
                : static_cast<int>(std::max(
                      1u, std::thread::hardware_concurrency()));
    n = std::min(n, spec_.numUsers);
    if (n <= 1) {
        for (int u = 0; u < spec_.numUsers; ++u)
            run_user(static_cast<std::uint64_t>(u));
    } else {
        ThreadPool pool(n);
        pool.parallelFor(
            static_cast<std::uint64_t>(spec_.numUsers), run_user);
    }

    // Aggregate in user order: the merge sequence is fixed, so the
    // merged floating-point statistics are deterministic too.
    res.aggregate = UserStats();
    res.aggregate.user = -1;
    for (const UserStats &u : res.users)
        res.aggregate.merge(u);
    return res;
}

} // namespace sim
} // namespace wilis
