#include "sim/mobility.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "common/random.hh"

namespace wilis {
namespace sim {

namespace {

/**
 * Purpose constants of the mobility streams, chained-forked per
 * user off the master seed (XOR-ing the user id into the constant
 * would alias against the other purpose families at large user
 * counts, same reasoning as the placement and traffic streams).
 */
constexpr std::uint64_t kTrajStream = 0x6D0Bull;
constexpr std::uint64_t kChurnStream = 0xC40Dull;

/** Ping-pong window: a bounce back within this many epochs. */
constexpr std::uint64_t kPingPongEpochs = 8;

/** Meters of travel per gain-refresh epoch. */
constexpr double kEpochTravelM = 5.0;

} // namespace

const char *
mobilityModelName(MobilityModel model)
{
    switch (model) {
      case MobilityModel::None:
        return "none";
      case MobilityModel::Line:
        return "line";
      case MobilityModel::Orbit:
        return "orbit";
      case MobilityModel::Waypoint:
        return "waypoint";
    }
    return "?";
}

MobilityModel
mobilityModelFromName(const std::string &name)
{
    if (name == "none")
        return MobilityModel::None;
    if (name == "line")
        return MobilityModel::Line;
    if (name == "orbit")
        return MobilityModel::Orbit;
    if (name == "waypoint")
        return MobilityModel::Waypoint;
    wilis_fatal("unknown mobility model '%s' "
                "(none|line|orbit|waypoint)",
                name.c_str());
}

MobilityRuntime::MobilityRuntime(const MobilitySpec &spec,
                                 const Topology &topo,
                                 std::uint64_t seed,
                                 double frame_interval_us)
    : spec_(spec), topo_(topo), seed_(seed),
      slotSec_(frame_interval_us * 1e-6), users_(topo.numUsers()),
      cells_(topo.numCells()),
      hystLin_(std::pow(10.0, spec.handoverHystDb / 10.0))
{
    wilis_assert(spec_.enabled(),
                 "MobilityRuntime on a static spec (model none, "
                 "churn 0)");
    wilis_assert(spec_.model == MobilityModel::None ||
                     spec_.speedMps > 0.0,
                 "mobility model '%s' needs speed_mps > 0, got %g",
                 mobilityModelName(spec_.model), spec_.speedMps);
    wilis_assert(spec_.handoverHystDb >= 0.0,
                 "negative handover hysteresis %g dB",
                 spec_.handoverHystDb);
    wilis_assert(spec_.churnRate >= 0.0 && spec_.churnRate <= 1.0,
                 "churn rate %g outside [0, 1]", spec_.churnRate);
    wilis_assert(slotSec_ > 0.0, "slot duration %g s <= 0",
                 slotSec_);

    // One epoch is ~5 m of travel: short enough that the pathloss
    // along a leg is piecewise-accurate, long enough that the
    // refresh stays a vanishing fraction of slot work. Churn-only
    // runs never move, so any fixed quantum works; 64 keeps the
    // epoch overhead negligible.
    if (spec_.model != MobilityModel::None) {
        const double slots =
            kEpochTravelM / (spec_.speedMps * slotSec_);
        epochSlots_ = static_cast<std::uint64_t>(std::llround(
            std::min(1024.0, std::max(1.0, slots))));
    } else {
        epochSlots_ = 64;
    }

    const TopologySpec &ts = topo_.spec();
    xLo_ = -ts.cellRadiusM;
    xHi_ = (ts.cols - 1) * ts.cellSpacingM + ts.cellRadiusM;
    yLo_ = -ts.cellRadiusM;
    yHi_ = (ts.rows - 1) * ts.cellSpacingM + ts.cellRadiusM;

    const size_t links = static_cast<size_t>(users_) *
                         static_cast<size_t>(cells_);
    gains_.resize(links);
    shadow_.resize(links);
    for (int u = 0; u < users_; ++u) {
        for (int c = 0; c < cells_; ++c) {
            const size_t i = static_cast<size_t>(u) *
                                 static_cast<size_t>(cells_) +
                             static_cast<size_t>(c);
            // Epoch 0 reuses the deployment's own matrix bit for
            // bit; shadowing is static per link, so only the
            // pathloss term is re-evaluated on later epochs.
            gains_[i] = topo_.linkGainLin(u, c);
            shadow_[i] = topo_.pathloss().shadowingDb(u, c);
        }
    }

    serving_.resize(static_cast<size_t>(users_));
    for (int u = 0; u < users_; ++u)
        serving_[static_cast<size_t>(u)] = topo_.servingCell(u);
    active_.assign(static_cast<size_t>(users_), 1);
    hoCand_.assign(static_cast<size_t>(users_), -1);
    hoSince_.assign(static_cast<size_t>(users_), 0);
    prevCell_.assign(static_cast<size_t>(users_), -1);
    lastHoSlot_.assign(static_cast<size_t>(users_), UINT64_MAX);
    nextToggle_.assign(static_cast<size_t>(users_), UINT64_MAX);
    toggleIdx_.assign(static_cast<size_t>(users_), 0);
    if (spec_.churnRate > 0.0) {
        for (int u = 0; u < users_; ++u)
            nextToggle_[static_cast<size_t>(u)] = churnDwell(u, 0);
    }
    handovers_.assign(static_cast<size_t>(users_), 0);
    pingPongs_.assign(static_cast<size_t>(users_), 0);
    joins_.assign(static_cast<size_t>(users_), 0);
    leaves_.assign(static_cast<size_t>(users_), 0);
    firstHoSlot_.assign(static_cast<size_t>(users_), UINT64_MAX);
}

double
MobilityRuntime::fold(double p, double lo, double hi)
{
    // Triangle-wave reflection into [lo, hi]: the exact position of
    // a billiard traveler after any number of wall bounces, still a
    // pure function of the unfolded coordinate.
    const double period = 2.0 * (hi - lo);
    double q = std::fmod(p - lo, period);
    if (q < 0.0)
        q += period;
    return q <= hi - lo ? lo + q : hi - (q - (hi - lo));
}

Position
MobilityRuntime::positionAt(int u, std::uint64_t t) const
{
    wilis_assert(u >= 0 && u < users_, "user %d out of %d", u,
                 users_);
    const Position start = topo_.userPosition(u);
    if (spec_.model == MobilityModel::None)
        return start;

    const CounterRng traj =
        CounterRng(seed_).fork(kTrajStream).fork(
            static_cast<std::uint64_t>(u));
    const double dist =
        spec_.speedMps * slotSec_ * static_cast<double>(t);

    switch (spec_.model) {
      case MobilityModel::Line: {
        const double theta =
            2.0 * std::numbers::pi * traj.doubleAt(0);
        return Position{
            fold(start.x + dist * std::cos(theta), xLo_, xHi_),
            fold(start.y + dist * std::sin(theta), yLo_, yHi_)};
      }
      case MobilityModel::Orbit: {
        // Lap radius in [0.25, 1] x drop radius, centered so the
        // orbit passes through the drop position at t = 0.
        const double r = (0.25 + 0.75 * traj.doubleAt(0)) *
                         topo_.spec().cellRadiusM;
        const double phi0 =
            2.0 * std::numbers::pi * traj.doubleAt(1);
        const double phi = phi0 + dist / r;
        const double cx = start.x - r * std::cos(phi0);
        const double cy = start.y - r * std::sin(phi0);
        return Position{cx + r * std::cos(phi),
                        cy + r * std::sin(phi)};
      }
      case MobilityModel::Waypoint: {
        // Fixed-length legs (one drop radius of travel each) so
        // the current leg index -- and with it the two bracketing
        // waypoints -- is O(1) in t. Waypoint k >= 1 is a keyed
        // uniform draw over the bounding box; waypoint 0 is the
        // drop position.
        const std::uint64_t leg_slots = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::llround(
                   topo_.spec().cellRadiusM /
                   (spec_.speedMps * slotSec_))));
        const std::uint64_t k = t / leg_slots;
        const double frac =
            static_cast<double>(t - k * leg_slots) /
            static_cast<double>(leg_slots);
        auto waypoint = [&](std::uint64_t idx) {
            if (idx == 0)
                return start;
            return Position{
                xLo_ + (xHi_ - xLo_) * traj.doubleAt(2 * idx),
                yLo_ + (yHi_ - yLo_) * traj.doubleAt(2 * idx + 1)};
        };
        const Position a = waypoint(k);
        const Position b = waypoint(k + 1);
        return Position{a.x + (b.x - a.x) * frac,
                        a.y + (b.y - a.y) * frac};
      }
      case MobilityModel::None:
        break;
    }
    return start;
}

std::uint64_t
MobilityRuntime::churnDwell(int u, std::uint64_t k) const
{
    const double u01 =
        CounterRng(seed_).fork(kChurnStream)
            .fork(static_cast<std::uint64_t>(u))
            .doubleAt(k);
    // Exponential dwell of mean 1/churnRate slots, floored at one
    // slot so the toggle chain always advances.
    const double slots = -std::log1p(-u01) / spec_.churnRate;
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(
               std::min(slots, 1e18))));
}

void
MobilityRuntime::refreshRow(int u, std::uint64_t t)
{
    const Position pos = positionAt(u, t);
    const channel::PathlossModel &pl = topo_.pathloss();
    double *row = gains_.data() +
                  static_cast<size_t>(u) *
                      static_cast<size_t>(cells_);
    for (int c = 0; c < cells_; ++c) {
        const Position bs = topo_.cellCenter(c);
        const double dx = pos.x - bs.x;
        const double dy = pos.y - bs.y;
        const double d = std::sqrt(dx * dx + dy * dy);
        // Same expression as Topology's construction-time fill --
        // refSnr minus pathloss plus static shadowing -- so a
        // zero-displacement refresh reproduces the matrix bitwise.
        const double snr_db = pl.linkSnrDbAt(
            d, shadow_[static_cast<size_t>(u) *
                           static_cast<size_t>(cells_) +
                       static_cast<size_t>(c)]);
        row[c] = std::pow(10.0, snr_db / 10.0);
    }
}

int
MobilityRuntime::bestCell(const double *row) const
{
    int best = 0;
    for (int c = 1; c < cells_; ++c) {
        if (row[c] > row[best])
            best = c;
    }
    return best;
}

void
MobilityRuntime::epoch(std::uint64_t t, std::vector<Event> &out)
{
    wilis_assert(t % epochSlots_ == 0,
                 "epoch at slot %llu is not a multiple of the "
                 "%llu-slot epoch",
                 static_cast<unsigned long long>(t),
                 static_cast<unsigned long long>(epochSlots_));
    wilis_assert(lastEpochT_ == UINT64_MAX || t > lastEpochT_,
                 "epoch at slot %llu replays or reorders the last "
                 "epoch at slot %llu",
                 static_cast<unsigned long long>(t),
                 static_cast<unsigned long long>(lastEpochT_));
    lastEpochT_ = t;

    // Positions have not moved at t = 0: the constructor's copy of
    // the deployment matrix *is* the epoch-0 state.
    if (t > 0 && spec_.model != MobilityModel::None) {
        for (int u = 0; u < users_; ++u)
            refreshRow(u, t);
    }

    for (int u = 0; u < users_; ++u) {
        const size_t ui = static_cast<size_t>(u);

        // Churn first: a toggle this epoch supersedes handover
        // evaluation (at most one membership event per user per
        // epoch). Several toggles inside one epoch collapse by
        // parity.
        if (spec_.churnRate > 0.0) {
            bool want = active_[ui] != 0;
            while (nextToggle_[ui] <= t) {
                want = !want;
                ++toggleIdx_[ui];
                nextToggle_[ui] += churnDwell(u, toggleIdx_[ui]);
            }
            if (want != (active_[ui] != 0)) {
                const int from = serving_[ui];
                if (want) {
                    // Rejoin associates with the strongest cell at
                    // the current position (RSRP association, not
                    // the original placement assignment).
                    const int to = bestCell(gainRow(u));
                    serving_[ui] = to;
                    active_[ui] = 1;
                    ++joins_[ui];
                    out.push_back(Event{Event::Kind::Join, u, from,
                                        to, false});
                } else {
                    active_[ui] = 0;
                    ++leaves_[ui];
                    out.push_back(Event{Event::Kind::Leave, u,
                                        from, from, false});
                }
                hoCand_[ui] = -1;
                continue;
            }
        }

        if (spec_.model == MobilityModel::None || !active_[ui])
            continue;

        // A3-style handover: the best neighbor must beat the
        // serving gain by the hysteresis margin continuously for
        // the time-to-trigger window; a candidate change restarts
        // the clock.
        const double *row = gainRow(u);
        const int serv = serving_[ui];
        int best = -1;
        for (int c = 0; c < cells_; ++c) {
            if (c == serv)
                continue;
            if (best < 0 || row[c] > row[best])
                best = c;
        }
        if (best < 0 || row[best] <= row[serv] * hystLin_) {
            hoCand_[ui] = -1;
            continue;
        }
        if (hoCand_[ui] != best) {
            hoCand_[ui] = best;
            hoSince_[ui] = t;
        }
        if (t - hoSince_[ui] < spec_.handoverTttSlots)
            continue;

        const bool pingpong =
            best == prevCell_[ui] &&
            lastHoSlot_[ui] != UINT64_MAX &&
            t - lastHoSlot_[ui] <= kPingPongEpochs * epochSlots_;
        prevCell_[ui] = serv;
        lastHoSlot_[ui] = t;
        serving_[ui] = best;
        hoCand_[ui] = -1;
        ++handovers_[ui];
        if (pingpong)
            ++pingPongs_[ui];
        if (firstHoSlot_[ui] == UINT64_MAX)
            firstHoSlot_[ui] = t;
        out.push_back(
            Event{Event::Kind::Handover, u, serv, best, pingpong});
    }
}

void
MobilityRuntime::saveState(SnapshotWriter &w) const
{
    w.marker(0x4C49424D); // "MBIL"
    w.u64(gains_.size());
    for (double g : gains_)
        w.f64(g);
    for (int u = 0; u < users_; ++u) {
        const size_t ui = static_cast<size_t>(u);
        w.i64(serving_[ui]);
        w.u8(active_[ui]);
        w.i64(hoCand_[ui]);
        w.u64(hoSince_[ui]);
        w.i64(prevCell_[ui]);
        w.u64(lastHoSlot_[ui]);
        w.u64(nextToggle_[ui]);
        w.u64(toggleIdx_[ui]);
        w.u64(handovers_[ui]);
        w.u64(pingPongs_[ui]);
        w.u64(joins_[ui]);
        w.u64(leaves_[ui]);
        w.u64(firstHoSlot_[ui]);
    }
    w.u64(lastEpochT_);
}

void
MobilityRuntime::loadState(SnapshotReader &r)
{
    r.marker(0x4C49424D);
    const std::uint64_t n = r.u64();
    wilis_assert(n == gains_.size(),
                 "snapshot gain matrix has %llu entries, this "
                 "deployment needs %zu",
                 static_cast<unsigned long long>(n), gains_.size());
    for (double &g : gains_)
        g = r.f64();
    for (int u = 0; u < users_; ++u) {
        const size_t ui = static_cast<size_t>(u);
        serving_[ui] = static_cast<int>(r.i64());
        active_[ui] = r.u8();
        hoCand_[ui] = static_cast<int>(r.i64());
        hoSince_[ui] = r.u64();
        prevCell_[ui] = static_cast<int>(r.i64());
        lastHoSlot_[ui] = r.u64();
        nextToggle_[ui] = r.u64();
        toggleIdx_[ui] = r.u64();
        handovers_[ui] = r.u64();
        pingPongs_[ui] = r.u64();
        joins_[ui] = r.u64();
        leaves_[ui] = r.u64();
        firstHoSlot_[ui] = r.u64();
    }
    lastEpochT_ = r.u64();
}

} // namespace sim
} // namespace wilis
