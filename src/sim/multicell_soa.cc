/**
 * @file
 * The structure-of-arrays multi-cell engine: the batched twin of
 * runMulticellPerUser() (multicell_sim.cc). Identical simulation
 * semantics -- same phases, same random streams, same update order
 * per user -- but per-user state lives in per-cell contiguous
 * arrays instead of McUser objects, and phase 2's math runs through
 * the runtime-dispatched kernels:
 *
 *   sinrAccumBatch -- interference fades (counter-RNG in u64
 *       lanes), gain-weighted accumulation and dB conversion for
 *       every granted user of a worker's cells in one call;
 *   perDrawBatch   -- calibrated PER interpolation + Bernoulli
 *       frame draws over the flattened table for the same batch.
 *
 * Because every kernel lane computes the textually identical scalar
 * expression (see kernels_impl.hh), the engine reproduces the
 * per-user engine's NetworkResult bit-for-bit at any thread count
 * and any kernel backend -- pinned by tests/test_multicell.cc and
 * the slow-label equivalence test in tests/test_simd_kernels.cc.
 *
 * Immutable derived per-user state (Jakes oscillator banks, forked
 * stream keys, serving gains, the flattened calibration table) is a
 * pure function of (spec, topology, table) and is cached across
 * run() calls in McSoaCache, owned by NetworkSim.
 */

#include <algorithm>
#include <cmath>
#include <complex>
#include <thread>
#include <vector>

#include "channel/awgn.hh"
#include "channel/fading.hh"
#include "common/kernels.hh"
#include "common/lockstep.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "mac/arq.hh"
#include "mac/scheduler.hh"
#include "mac/softrate.hh"
#include "mac/traffic.hh"
#include "sim/link_fidelity.hh"
#include "sim/mobility.hh"
#include "sim/multicell_detail.hh"
#include "sim/multicell_sim.hh"
#include "sim/worker_phy.hh"

namespace wilis {
namespace sim {

using detail::notePop;
using detail::recordDelivery;
using detail::recordGrant;
using detail::recordMobilityEvent;
using detail::recordTx;

/** See the declaration in multicell_sim.hh. */
struct McSoaCache {
    // ---- fingerprint of the inputs this cache was derived from
    std::uint64_t seed = 0;
    double dopplerHz = 0.0;
    double frameIntervalUs = 0.0;
    const Topology *topo = nullptr;
    const softphy::CalibrationTable *table = nullptr;

    // ---- layout: SoA index = position in cell-major user order
    // (cell 0's users by increasing id, then cell 1's, ...), so
    // each cell's state is one contiguous block.
    std::vector<int> order;               // soa index -> user id
    std::vector<int> soaOf;               // user id -> soa index
    std::vector<std::uint32_t> cellBegin; // cells + 1 offsets

    // ---- immutable per-user derived state, soa-indexed
    std::vector<std::int32_t> serving;    // serving cell
    std::vector<double> servGain;         // serving link, linear
    std::vector<double> meanSnr;          // serving link, dB
    std::vector<const double *> gainRows; // into topo's matrix
    std::vector<std::uint64_t> faderSeed;
    std::vector<std::uint64_t> payloadSeed;
    std::vector<std::uint64_t> trafficSeed;
    std::vector<std::uint64_t> drawKey;  // analytic success draws
    std::vector<std::uint64_t> interfKey; // interference fades
    std::vector<std::uint64_t> awgnSeed;
    std::vector<channel::JakesFader> faders; // gainAt() is const

    // ---- flattened calibration (analytic/auto modes only)
    softphy::FlatCalibration flat;
    bool hasFlat = false;

    // Cross-run memo of the serving-link |h|^2 per (slot, user):
    // JakesFader::gainAt() is a pure function of (fader, t), so a
    // value computed in one run is valid in every later run of the
    // same spec -- memoization cannot change results. Filled lazily
    // (PF evaluates only eligible users); bounded by kH2MemoBytes,
    // slots past h2Slots fall back to the per-run memo. Within a
    // run each user's entries are written by the one worker that
    // owns its cell, so access is race-free.
    static constexpr std::uint64_t kH2MemoBytes = 64ull << 20;
    std::uint64_t h2Slots = 0;      // slots covered by the memo
    std::vector<double> h2;         // [slot * users + user]
    std::vector<std::uint8_t> h2Known;
};

namespace {

bool
cacheMatches(const McSoaCache &c, const NetworkSpec &spec,
             const Topology &topo,
             const softphy::CalibrationTable *table)
{
    return c.seed == spec.seed && c.dopplerHz == spec.dopplerHz &&
           c.frameIntervalUs == spec.frameIntervalUs &&
           c.topo == &topo && c.table == table &&
           static_cast<int>(c.order.size()) == topo.numUsers();
}

std::shared_ptr<McSoaCache>
buildCache(const NetworkSpec &spec, const Topology &topo,
           const softphy::CalibrationTable *table)
{
    const int cells = topo.numCells();
    const int num_users = topo.numUsers();
    auto cache = std::make_shared<McSoaCache>();
    cache->seed = spec.seed;
    cache->dopplerHz = spec.dopplerHz;
    cache->frameIntervalUs = spec.frameIntervalUs;
    cache->topo = &topo;
    cache->table = table;

    cache->order.reserve(static_cast<size_t>(num_users));
    cache->cellBegin.reserve(static_cast<size_t>(cells) + 1);
    cache->cellBegin.push_back(0);
    for (int c = 0; c < cells; ++c) {
        for (int id : topo.cellUsers(c))
            cache->order.push_back(id);
        cache->cellBegin.push_back(
            static_cast<std::uint32_t>(cache->order.size()));
    }
    cache->soaOf.assign(static_cast<size_t>(num_users), -1);
    for (int i = 0; i < num_users; ++i)
        cache->soaOf[static_cast<size_t>(cache->order[
            static_cast<size_t>(i)])] = i;

    const size_t n = static_cast<size_t>(num_users);
    cache->serving.resize(n);
    cache->servGain.resize(n);
    cache->meanSnr.resize(n);
    cache->gainRows.resize(n);
    cache->faderSeed.resize(n);
    cache->payloadSeed.resize(n);
    cache->trafficSeed.resize(n);
    cache->drawKey.resize(n);
    cache->interfKey.resize(n);
    cache->awgnSeed.resize(n);
    cache->faders.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        const int id = cache->order[i];
        const int cell = topo.servingCell(id);
        cache->serving[i] = static_cast<std::int32_t>(cell);
        cache->servGain[i] = topo.linkGainLin(id, cell);
        cache->meanSnr[i] = topo.servingSnrDb(id);
        cache->gainRows[i] = topo.gainRow(id);
        // The exact seed chain of McUser: one purpose family, then
        // the user id, then the per-purpose counters.
        const CounterRng seeds =
            CounterRng(spec.seed)
                .fork(0xCE77ull)
                .fork(static_cast<std::uint64_t>(id));
        cache->faderSeed[i] = seeds.at(0);
        cache->payloadSeed[i] = seeds.at(1);
        cache->trafficSeed[i] = seeds.at(2);
        cache->drawKey[i] = seeds.at(3);
        cache->interfKey[i] = seeds.at(4);
        cache->awgnSeed[i] = seeds.at(5);
        cache->faders.emplace_back(spec.dopplerHz,
                                   cache->faderSeed[i]);
    }

    if (table) {
        cache->flat = table->flatten();
        cache->hasFlat = true;
    }
    return cache;
}

/**
 * Adapter mapping this engine's SoA layout onto the canonical
 * checkpoint byte order (detail::saveMcCheckpoint() /
 * detail::loadMcCheckpoint() in multicell_detail.hh): accessors
 * translate global user ids to SoA indices, so the serialized
 * stream is byte-identical to the per-user engine's. sync()
 * derives the user -> member-cell map; call it before a save.
 */
struct SoaCheckpoint {
    const McSoaCache *cache;
    std::vector<mac::Arq> *arqs;
    std::vector<mac::TrafficSource> *traffic;
    std::vector<mac::SoftRateMac> *softrate;
    std::vector<UserStats> *stats;
    std::vector<detail::TraceCtx> *tctx;
    std::vector<double> *servGain;
    std::vector<std::vector<std::uint32_t>> *members;
    std::vector<mac::CellScheduler> *scheds;
    std::vector<std::vector<std::uint8_t>> *eligible;
    std::vector<std::vector<std::uint8_t>> *urgent;
    std::vector<std::vector<double>> *instRate;
    std::vector<std::uint64_t> *busy;
    const mac::CellScheduler::Config *schedCfg;
    MobilityRuntime *mobp;
    mac::PacketTrace *tracep;
    std::vector<int> cellOf; // user id -> member cell, -1 = none

    size_t
    soa(int id) const
    {
        return static_cast<size_t>(
            cache->soaOf[static_cast<size_t>(id)]);
    }

    void
    sync()
    {
        cellOf.assign(cache->order.size(), -1);
        for (size_t c = 0; c < members->size(); ++c)
            for (std::uint32_t i : (*members)[c])
                cellOf[static_cast<size_t>(
                    cache->order[static_cast<size_t>(i)])] =
                    static_cast<int>(c);
    }

    int numUsers() const { return static_cast<int>(cache->order.size()); }
    int numCells() const { return static_cast<int>(members->size()); }
    MobilityRuntime *mob() const { return mobp; }
    mac::PacketTrace *trace() const { return tracep; }
    int memberCellOf(int id) { return cellOf[static_cast<size_t>(id)]; }
    double servGainOf(int id) { return (*servGain)[soa(id)]; }
    mac::SoftRateMac &softrateOf(int id) { return (*softrate)[soa(id)]; }
    mac::Arq &arqOf(int id) { return (*arqs)[soa(id)]; }
    mac::TrafficSource &trafficOf(int id) { return (*traffic)[soa(id)]; }
    detail::TraceCtx &tctxOf(int id) { return (*tctx)[soa(id)]; }
    UserStats &statsOf(int id) { return (*stats)[soa(id)]; }

    std::vector<int>
    memberIdsOf(int c)
    {
        std::vector<int> ids;
        ids.reserve((*members)[static_cast<size_t>(c)].size());
        for (std::uint32_t i : (*members)[static_cast<size_t>(c)])
            ids.push_back(
                cache->order[static_cast<size_t>(i)]);
        return ids;
    }

    mac::CellScheduler &
    schedOf(int c)
    {
        return (*scheds)[static_cast<size_t>(c)];
    }

    std::uint64_t
    busyUntilOf(int c)
    {
        return (*busy)[static_cast<size_t>(c)];
    }

    void
    setMemberCell(int id, int c)
    {
        if (cellOf.size() != cache->order.size())
            cellOf.assign(cache->order.size(), -1);
        cellOf[static_cast<size_t>(id)] = c;
    }

    void
    setServGain(int id, double g)
    {
        (*servGain)[soa(id)] = g;
    }

    void
    resetCell(int c, const std::vector<int> &ids)
    {
        std::vector<std::uint32_t> &mem =
            (*members)[static_cast<size_t>(c)];
        mem.clear();
        for (int id : ids)
            mem.push_back(static_cast<std::uint32_t>(
                cache->soaOf[static_cast<size_t>(id)]));
        (*scheds)[static_cast<size_t>(c)] = mac::CellScheduler(
            *schedCfg, static_cast<int>(ids.size()));
        (*eligible)[static_cast<size_t>(c)].resize(mem.size());
        (*urgent)[static_cast<size_t>(c)].assign(mem.size(), 0);
        (*instRate)[static_cast<size_t>(c)].assign(mem.size(), 0.0);
    }

    void
    setBusyUntil(int c, std::uint64_t v)
    {
        (*busy)[static_cast<size_t>(c)] = v;
    }
};

} // namespace

NetworkResult
runMulticellSoa(
    const NetworkSpec &spec, const Topology &topo,
    const softphy::BerEstimator &estimator,
    std::shared_ptr<const softphy::CalibrationTable> calib,
    std::uint64_t slots, int threads,
    std::shared_ptr<McSoaCache> *cache_slot)
{
    const int cells = topo.numCells();
    const int num_users = topo.numUsers();
    const size_t payload_bits = spec.link.payloadBits;
    const softphy::CalibrationTable *table =
        spec.fidelity.mode != FidelityMode::Full ? calib.get()
                                                 : nullptr;
    if (spec.fidelity.mode != FidelityMode::Full)
        wilis_assert(table && table->valid(),
                     "analytic fidelity needs a calibration table");

    // Immutable derived state: reuse the caller's cache when it
    // matches, else (re)derive. A local cache serves one-shot
    // callers.
    std::shared_ptr<McSoaCache> local;
    std::shared_ptr<McSoaCache> &slot =
        cache_slot ? *cache_slot : local;
    if (!slot || !cacheMatches(*slot, spec, topo, table))
        slot = buildCache(spec, topo, table);
    McSoaCache &cache = *slot;
    // Grow the cross-run |h|^2 memo to cover this run (bounded);
    // resize preserves filled slots because the layout is
    // slot-major.
    {
        const std::uint64_t users64 =
            static_cast<std::uint64_t>(topo.numUsers());
        const std::uint64_t cap = std::max<std::uint64_t>(
            1, McSoaCache::kH2MemoBytes / (8 * users64));
        const std::uint64_t want = std::min(slots, cap);
        if (want > cache.h2Slots) {
            cache.h2.resize(want * users64);
            cache.h2Known.resize(want * users64, 0);
            cache.h2Slots = want;
        }
    }
    const kernels::PerTableView flat_view =
        cache.hasFlat ? cache.flat.view() : kernels::PerTableView{};

    NetworkResult res;
    res.spec = spec;
    res.slots = slots;
    res.cells = cells;

    // ---- mutable per-user state, soa-indexed -------------------
    const size_t nu = static_cast<size_t>(num_users);
    mac::SoftRateMac::Config src;
    src.pberLo = spec.pberLo;
    src.pberHi = spec.pberHi;
    src.initialRate = spec.link.rate;
    mac::Arq::Config ac;
    ac.mode = spec.arqMode;
    ac.window = spec.arqWindow;
    ac.maxAttempts = spec.arqMaxAttempts;
    ac.ackDelaySlots = spec.ackDelaySlots;

    std::vector<mac::Arq> arqs;
    std::vector<mac::TrafficSource> traffic;
    std::vector<mac::SoftRateMac> softrate;
    std::vector<UserStats> stats(nu);
    arqs.reserve(nu);
    traffic.reserve(nu);
    softrate.reserve(nu);
    for (size_t i = 0; i < nu; ++i) {
        arqs.emplace_back(ac);
        traffic.emplace_back(spec.traffic, cache.trafficSeed[i]);
        softrate.emplace_back(src);
        stats[i].user = cache.order[i];
        stats[i].servingCell = cache.serving[i];
        stats[i].meanSnrDb = cache.meanSnr[i];
    }
    // The packet trace records per-cell (one shard per cell, each
    // written only by the cell's owning worker).
    std::vector<detail::TraceCtx> tctx(nu);
    std::shared_ptr<mac::PacketTrace> trace;
    if (spec.trace) {
        trace = std::make_shared<mac::PacketTrace>(cells);
        for (size_t i = 0; i < nu; ++i) {
            const int cell = static_cast<int>(cache.serving[i]);
            const int id = cache.order[i];
            tctx[i].bind(trace.get(), cell, cell, id,
                         arqs[i].windowSize());
            traffic[i].bindTrace(trace.get(), cell, cell, id);
        }
    }
    // Mobility / handover / churn: the same shared decision engine
    // the per-user engine drives, so both apply identical epochs.
    // The cache stays immutable (it is shared across runs); all
    // membership-dependent state below is run-local.
    std::unique_ptr<MobilityRuntime> mob;
    if (spec.mobility.enabled())
        mob = std::make_unique<MobilityRuntime>(
            spec.mobility, topo, spec.seed, spec.frameIntervalUs);
    auto post_ho = [&](std::uint32_t i) {
        return mob &&
               mob->handovers(cache.order[static_cast<size_t>(i)]) >
                   0;
    };
    // Run-local serving gains and gain-row pointers: start as the
    // cache's static values, move with the epochs under mobility
    // (the fader, payload, traffic and draw streams are serving-
    // cell-independent by construction, so they stay cached).
    std::vector<double> serv_gain(cache.servGain);
    std::vector<const double *> rows(cache.gainRows);
    if (mob) {
        for (size_t i = 0; i < nu; ++i)
            rows[i] = mob->gainRow(cache.order[i]);
    }
    // Run-local cell membership: SoA indices ordered by global user
    // id (identical to the per-user engine's per-cell user lists,
    // which is what keeps scheduler local indices bit-exact across
    // engines). Static runs never mutate it, so it is exactly the
    // cache's cell-major blocks.
    std::vector<std::vector<std::uint32_t>> members(
        static_cast<size_t>(cells));
    for (int c = 0; c < cells; ++c) {
        for (std::uint32_t i =
                 cache.cellBegin[static_cast<size_t>(c)];
             i < cache.cellBegin[static_cast<size_t>(c) + 1]; ++i)
            members[static_cast<size_t>(c)].push_back(i);
    }

    // Serving-link |h|^2 memo (per user, per slot), matching
    // McUser::fadingPower().
    std::vector<double> h2val(nu, 0.0);
    std::vector<std::uint64_t> h2slot(nu, 0);
    std::vector<std::uint8_t> h2valid(nu, 0);
    auto fadingPower = [&](int i, std::uint64_t t) {
        const size_t s = static_cast<size_t>(i);
        if (t < cache.h2Slots) {
            const size_t e = static_cast<size_t>(t) * nu + s;
            if (!cache.h2Known[e]) {
                cache.h2[e] = std::norm(cache.faders[s].gainAt(
                    static_cast<double>(t) *
                    spec.frameIntervalUs));
                cache.h2Known[e] = 1;
            }
            return cache.h2[e];
        }
        if (h2slot[s] != t || !h2valid[s]) {
            h2val[s] = std::norm(cache.faders[s].gainAt(
                static_cast<double>(t) * spec.frameIntervalUs));
            h2slot[s] = t;
            h2valid[s] = 1;
        }
        return h2val[s];
    };
    // Full-PHY rung only, lazily constructed like McUser::awgn.
    std::vector<std::unique_ptr<channel::AwgnChannel>> awgn(nu);

    // ---- per-cell state ----------------------------------------
    std::vector<mac::CellScheduler> scheds;
    scheds.reserve(static_cast<size_t>(cells));
    std::vector<std::vector<std::uint8_t>> eligible(
        static_cast<size_t>(cells));
    std::vector<std::vector<std::uint8_t>> urgent(
        static_cast<size_t>(cells));
    std::vector<std::vector<double>> inst_rate(
        static_cast<size_t>(cells));
    std::vector<std::vector<mac::Arq::Delivery>> deliveries(
        static_cast<size_t>(cells));
    for (int c = 0; c < cells; ++c) {
        const size_t cn = cache.cellBegin[static_cast<size_t>(c) + 1] -
                          cache.cellBegin[static_cast<size_t>(c)];
        scheds.emplace_back(spec.scheduler, static_cast<int>(cn));
        eligible[static_cast<size_t>(c)].resize(cn);
        urgent[static_cast<size_t>(c)].assign(cn, 0);
        inst_rate[static_cast<size_t>(c)].assign(cn, 0.0);
        deliveries[static_cast<size_t>(c)].reserve(
            static_cast<size_t>(spec.arqWindow) + 1);
    }
    std::vector<int> granted_soa(static_cast<size_t>(cells), -1);
    std::vector<std::uint64_t> granted_seq(
        static_cast<size_t>(cells), 0);
    std::vector<std::uint8_t> active(static_cast<size_t>(cells), 0);
    // Fixed-contention airtime: a cell whose last grant saw k > 1
    // contenders is busy (no grants) until this slot.
    std::vector<std::uint64_t> busy_until(
        static_cast<size_t>(cells), 0);
    const bool class_aware =
        spec.traffic.qdisc == mac::QdiscKind::StrictPriority;
    const bool fixed_contention =
        spec.scheduler.contention == mac::ContentionMode::Fixed;

    WorkerPhyPool phy_pool;
    const bool pf = spec.scheduler.kind ==
                    mac::SchedulerKind::ProportionalFair;

    // ---- phase 1: deliver ACKs, draw traffic, schedule ---------
    auto phase_schedule = [&](int c, std::uint64_t t) {
        const std::vector<std::uint32_t> &mem =
            members[static_cast<size_t>(c)];
        std::vector<std::uint8_t> &elig =
            eligible[static_cast<size_t>(c)];
        std::vector<std::uint8_t> &urg =
            urgent[static_cast<size_t>(c)];
        std::vector<double> &inst =
            inst_rate[static_cast<size_t>(c)];
        std::vector<mac::Arq::Delivery> &del =
            deliveries[static_cast<size_t>(c)];
        // Under fixed contention the medium may still be occupied
        // by the previous grant's contention charge: per-user
        // processes advance, but no grant is issued.
        const bool busy = t < busy_until[static_cast<size_t>(c)];
        for (size_t m = 0; m < mem.size(); ++m) {
            const std::uint32_t i = mem[m];
            if (!arqs[i].quiescentAt(t)) {
                del.clear();
                arqs[i].tick(t, del);
                for (const auto &d : del)
                    recordDelivery(stats[i], d, payload_bits, t,
                                   tctx[i], post_ho(i));
            }
            traffic[i].tick(t);
            const bool can_send =
                arqs[i].hasResend() ||
                (traffic[i].backlogged() &&
                 arqs[i].windowHasRoom());
            elig[m] = can_send ? 1 : 0;
            if (class_aware)
                urg[m] =
                    traffic[i].controlBacklogged() ? 1 : 0;
            if (can_send && !busy && pf) {
                const double h2 =
                    fadingPower(static_cast<int>(i), t);
                inst[m] =
                    std::log2(1.0 + serv_gain[i] * h2);
            }
        }

        if (busy) {
            // The contention charge consumes the slot: everyone
            // with traffic stalls, the scheduler's clock advances.
            granted_soa[static_cast<size_t>(c)] = -1;
            active[static_cast<size_t>(c)] = 0;
            scheds[static_cast<size_t>(c)].update(-1, 0.0);
            for (size_t m = 0; m < mem.size(); ++m) {
                if (elig[m])
                    ++stats[mem[m]].stalledSlots;
            }
            return;
        }

        const int pick = scheds[static_cast<size_t>(c)].pick(
            elig, inst, class_aware ? &urg : nullptr);
        if (pick < 0) {
            granted_soa[static_cast<size_t>(c)] = -1;
            active[static_cast<size_t>(c)] = 0;
            scheds[static_cast<size_t>(c)].update(-1, 0.0);
            return;
        }
        const std::uint32_t g = mem[static_cast<size_t>(pick)];
        const bool allow_new =
            traffic[g].backlogged() && arqs[g].windowHasRoom();
        const std::uint64_t prev_next = arqs[g].nextSeq();
        std::uint64_t seq = 0;
        const bool sending = arqs[g].nextToSend(t, seq, allow_new);
        wilis_assert(sending, "scheduler granted an idle user");
        std::int64_t first_wait = 0;
        if (arqs[g].nextSeq() != prev_next) {
            const mac::Packet p = traffic[g].pop(t);
            stats[g].queueWaitSlots.add(
                static_cast<double>(t - p.arrival));
            stats[g].queueWaitHist.add(
                static_cast<double>(t - p.arrival));
            notePop(tctx[g], seq, p);
            first_wait = static_cast<std::int64_t>(t - p.arrival);
        }
        recordGrant(tctx[g], t, seq, arqs[g].attemptsOf(seq),
                    first_wait);
        granted_soa[static_cast<size_t>(c)] = static_cast<int>(g);
        granted_seq[static_cast<size_t>(c)] = seq;
        active[static_cast<size_t>(c)] = 1;
        scheds[static_cast<size_t>(c)].update(
            pick, static_cast<double>(payload_bits));
        int contenders = 0;
        for (size_t m = 0; m < mem.size(); ++m) {
            if (!elig[m])
                continue;
            ++contenders;
            if (static_cast<int>(m) != pick)
                ++stats[mem[m]].stalledSlots;
        }
        // Fixed 1/k sharing: a grant contested by k eligible users
        // occupies the medium for k slots in total.
        if (fixed_contention && contenders > 1)
            busy_until[static_cast<size_t>(c)] =
                t + static_cast<std::uint64_t>(contenders);
    };

    // ---- phase 2: batched SINR + draws over the active set -----
    // Worker-local gather buffers: one entry per granted cell.
    struct Scratch {
        std::vector<int> gi;            // soa index
        std::vector<int> cell;          // owning cell
        std::vector<std::int32_t> serving;
        std::vector<const double *> rows;
        std::vector<std::uint64_t> fade_keys;
        std::vector<std::uint64_t> draw_keys;
        std::vector<std::int32_t> rates;
        std::vector<double> sig;
        std::vector<double> sinr_db;
        std::vector<double> pber;
        std::vector<std::uint8_t> ok;

        explicit Scratch(size_t cap)
            : gi(cap), cell(cap), serving(cap), rows(cap),
              fade_keys(cap), draw_keys(cap), rates(cap), sig(cap),
              sinr_db(cap), pber(cap), ok(cap)
        {}
    };

    auto phase_transmit = [&](Scratch &sc, int c_lo, int c_hi,
                              std::uint64_t t) {
        size_t k = 0;
        for (int c = c_lo; c < c_hi; ++c) {
            const int g = granted_soa[static_cast<size_t>(c)];
            if (g < 0)
                continue;
            const size_t gs = static_cast<size_t>(g);
            sc.gi[k] = g;
            sc.cell[k] = c;
            sc.serving[k] = static_cast<std::int32_t>(c);
            sc.rows[k] = rows[gs];
            sc.fade_keys[k] = cache.interfKey[gs];
            sc.draw_keys[k] = cache.drawKey[gs];
            sc.rates[k] = static_cast<std::int32_t>(
                softrate[gs].currentRate());
            sc.sig[k] = serv_gain[gs] * fadingPower(g, t);
            ++k;
        }
        if (k == 0)
            return;

        const kernels::Ops &ops = kernels::ops();
        ops.sinrAccumBatch(sc.rows.data(), sc.serving.data(),
                           sc.fade_keys.data(), active.data(),
                           cells, t, sc.sig.data(), k, kZeroSinrDb,
                           sc.sinr_db.data());

        if (spec.fidelity.fullPhySlot(t)) {
            // The bit-exact rung, one frame at a time -- identical
            // to the per-user engine's full-PHY branch, fed by the
            // batch-computed SINR (same bits as the scalar sum).
            for (size_t j = 0; j < k; ++j) {
                const size_t g = static_cast<size_t>(sc.gi[j]);
                const double sinr_db = sc.sinr_db[j];
                const phy::RateIndex rate =
                    static_cast<phy::RateIndex>(sc.rates[j]);
                if (!awgn[g])
                    awgn[g] =
                        std::make_unique<channel::AwgnChannel>(
                            sinr_db, cache.awgnSeed[g]);
                else
                    awgn[g]->setSnrDb(sinr_db);
                const std::uint64_t seq =
                    granted_seq[static_cast<size_t>(sc.cell[j])];
                std::unique_ptr<WorkerPhy> phy =
                    phy_pool.acquire();
                phy->arena.reset();
                BitSpan payload =
                    phy->arena.alloc<Bit>(payload_bits);
                fillDeterministicBits(payload,
                                      cache.payloadSeed[g], seq);
                FrameContext ctx(phy->arena);
                SampleSpan samples =
                    phy->txAt(rate, spec.link.rx)
                        .modulate(payload, ctx);
                awgn[g]->apply(samples, t);
                phy::RxFrame rx_frame =
                    phy->rxAt(rate, spec.link.rx)
                        .demodulate(samples, payload_bits,
                                    awgn[g].get(), t, ctx);
                const bool ok =
                    rx_frame.bitErrors(payload) == 0;
                const double pber = estimator.packetBerForRate(
                    rate, rx_frame.soft);
                phy_pool.release(std::move(phy));

                UserStats &st = stats[g];
                ++st.framesSent;
                st.framesOk += ok ? 1 : 0;
                ++st.fullPhyFrames;
                st.rateHist.add(static_cast<double>(rate));
                st.sinrDb.add(sinr_db);
                recordTx(tctx[g], t, seq, ok,
                         static_cast<int>(rate));
                softrate[g].onFeedback(pber);
                arqs[g].onSendResult(seq, ok);
            }
            return;
        }

        // The analytic rung: calibrated PER draws for the whole
        // batch in one kernel call.
        ops.perDrawBatch(flat_view, sc.rates.data(),
                         sc.sinr_db.data(), sc.draw_keys.data(), t,
                         k, sc.ok.data(), sc.pber.data());
        for (size_t j = 0; j < k; ++j) {
            const size_t g = static_cast<size_t>(sc.gi[j]);
            UserStats &st = stats[g];
            ++st.framesSent;
            st.framesOk += sc.ok[j] ? 1 : 0;
            ++st.analyticFrames;
            st.rateHist.add(static_cast<double>(sc.rates[j]));
            st.sinrDb.add(sc.sinr_db[j]);
            recordTx(tctx[g], t,
                     granted_seq[static_cast<size_t>(sc.cell[j])],
                     sc.ok[j] != 0, static_cast<int>(sc.rates[j]));
            softrate[g].onFeedback(sc.pber[j]);
            arqs[g].onSendResult(
                granted_seq[static_cast<size_t>(sc.cell[j])],
                sc.ok[j] != 0);
        }
    };

    // ---- mobility epochs: apply membership events ---------------
    // Runs single-threaded on worker 0 with the team held at a
    // barrier; mirrors the per-user engine's application exactly
    // (same event list, same sorted-membership positions, same
    // scheduler ops), which is what keeps the engines bit-exact
    // under mobility.
    auto member_pos = [&](const std::vector<std::uint32_t> &mem,
                          int uid) {
        return static_cast<int>(
            std::lower_bound(mem.begin(), mem.end(), uid,
                             [&](std::uint32_t a, int b) {
                                 return cache.order[static_cast<
                                            size_t>(a)] < b;
                             }) -
            mem.begin());
    };
    auto resize_cell = [&](int c) {
        const size_t cn = members[static_cast<size_t>(c)].size();
        eligible[static_cast<size_t>(c)].resize(cn);
        urgent[static_cast<size_t>(c)].assign(cn, 0);
        inst_rate[static_cast<size_t>(c)].assign(cn, 0.0);
    };
    auto remove_member = [&](int c, int uid, double *pf_carry) {
        std::vector<std::uint32_t> &mem =
            members[static_cast<size_t>(c)];
        const int pos = member_pos(mem, uid);
        if (pf_carry)
            *pf_carry =
                scheds[static_cast<size_t>(c)].averageRate(pos);
        scheds[static_cast<size_t>(c)].removeUser(pos);
        mem.erase(mem.begin() + pos);
        resize_cell(c);
    };
    auto insert_member = [&](int c, int uid, double pf_carry) {
        std::vector<std::uint32_t> &mem =
            members[static_cast<size_t>(c)];
        const int pos = member_pos(mem, uid);
        scheds[static_cast<size_t>(c)].insertUser(pos, pf_carry);
        mem.insert(mem.begin() + pos,
                   static_cast<std::uint32_t>(
                       cache.soaOf[static_cast<size_t>(uid)]));
        resize_cell(c);
    };
    std::vector<MobilityRuntime::Event> mob_events;
    std::vector<mac::Arq::Delivery> mob_deliv;
    auto apply_mobility = [&](std::uint64_t t) {
        mob_events.clear();
        mob->epoch(t, mob_events);
        for (const MobilityRuntime::Event &ev : mob_events) {
            const std::uint32_t i = static_cast<std::uint32_t>(
                cache.soaOf[static_cast<size_t>(ev.user)]);
            int flushed = 0;
            int aborted = 0;
            switch (ev.kind) {
              case MobilityRuntime::Event::Kind::Leave: {
                // Teardown records into the pre-departure shard:
                // queued packets flush (qdrop reason 2), in-flight
                // ARQ frames abort (already-acked heads still
                // deliver in order).
                remove_member(ev.fromCell, ev.user, nullptr);
                flushed = traffic[i].flush(t);
                mob_deliv.clear();
                arqs[i].abortAll(t, mob_deliv);
                for (const auto &d : mob_deliv) {
                    recordDelivery(stats[i], d, payload_bits, t,
                                   tctx[i], post_ho(i));
                    if (d.dropped)
                        ++aborted;
                }
                break;
              }
              case MobilityRuntime::Event::Kind::Join: {
                insert_member(ev.toCell, ev.user, 0.0);
                tctx[i].rebind(ev.toCell, ev.toCell);
                if (trace)
                    traffic[i].bindTrace(trace.get(), ev.toCell,
                                         ev.toCell, ev.user);
                break;
              }
              case MobilityRuntime::Event::Kind::Handover: {
                // Queue, ARQ window and rate-control state migrate
                // untouched; the PF throughput average carries so
                // the target cell does not treat the user as
                // starved.
                double carry = 0.0;
                remove_member(ev.fromCell, ev.user,
                              pf ? &carry : nullptr);
                insert_member(ev.toCell, ev.user, carry);
                tctx[i].rebind(ev.toCell, ev.toCell);
                if (trace)
                    traffic[i].bindTrace(trace.get(), ev.toCell,
                                         ev.toCell, ev.user);
                break;
              }
            }
            recordMobilityEvent(trace.get(), t, ev, flushed,
                                aborted);
        }
        // The epoch rewrote the live gain rows: refresh every
        // user's serving-link gain.
        for (size_t i2 = 0; i2 < nu; ++i2)
            serv_gain[i2] = mob->servingGainLin(cache.order[i2]);
    };

    // ---- checkpoint/resume --------------------------------------
    // The adapter maps this engine onto the canonical snapshot
    // order; a fresh one is built per use (sync() re-derives the
    // membership map).
    auto make_ckpt = [&]() {
        SoaCheckpoint a;
        a.cache = &cache;
        a.arqs = &arqs;
        a.traffic = &traffic;
        a.softrate = &softrate;
        a.stats = &stats;
        a.tctx = &tctx;
        a.servGain = &serv_gain;
        a.members = &members;
        a.scheds = &scheds;
        a.eligible = &eligible;
        a.urgent = &urgent;
        a.instRate = &inst_rate;
        a.busy = &busy_until;
        a.schedCfg = &spec.scheduler;
        a.mobp = mob.get();
        a.tracep = trace.get();
        a.sync();
        return a;
    };
    std::uint64_t start_slot = 0;
    if (spec.checkpoint.enabled() && spec.checkpoint.resume) {
        SoaCheckpoint a = make_ckpt();
        start_slot = detail::loadMcCheckpoint(spec, a);
        wilis_assert(start_slot <= slots,
                     "checkpoint '%s' is at slot %llu, past the "
                     "%llu-slot horizon",
                     spec.checkpoint.file.c_str(),
                     static_cast<unsigned long long>(start_slot),
                     static_cast<unsigned long long>(slots));
        // Re-point the traffic sources' trace lanes at the restored
        // serving cells (the trace contexts restore their own lane;
        // a churned-out user keeps its initial binding, which is
        // dormant until the next join rebinds it).
        if (trace) {
            for (int id = 0; id < num_users; ++id) {
                const int c = a.cellOf[static_cast<size_t>(id)];
                if (c >= 0)
                    traffic[a.soa(id)].bindTrace(trace.get(), c, c,
                                                 id);
            }
        }
    }
    const std::uint64_t ckpt_every =
        spec.checkpoint.enabled() ? spec.checkpoint.everySlots : 0;

    int n = threads > 0
                ? threads
                : static_cast<int>(std::max(
                      1u, std::thread::hardware_concurrency()));
    n = std::min(n, cells);

    // Same barrier-phase ownership as the per-user engine: the SoA
    // lanes have one writer per phase and publication rides the
    // barrier's release/acquire edges, so there is no lock for the
    // static analysis to check -- the CI TSan leg enforces this
    // (docs/ARCHITECTURE.md, "Static determinism guarantees").
    LockstepTeam team(n);
    const int chunk = (cells + n - 1) / n;
    const std::uint64_t epoch_slots = mob ? mob->epochSlots() : 1;
    team.run([&](int w) {
        const int c_lo = std::min(cells, w * chunk);
        const int c_hi = std::min(cells, c_lo + chunk);
        Scratch sc(static_cast<size_t>(c_hi - c_lo));
        for (std::uint64_t t = start_slot; t < slots; ++t) {
            if (ckpt_every != 0 && t > start_slot &&
                t % ckpt_every == 0) {
                // Every worker evaluates the same condition, so the
                // whole team is parked at this barrier while worker
                // 0 serializes -- the snapshot sees the state after
                // slot t - 1, before slot t's mobility epoch.
                if (w == 0) {
                    SoaCheckpoint a = make_ckpt();
                    detail::saveMcCheckpoint(spec, a, t);
                }
                team.barrier();
            }
            if (mob && t % epoch_slots == 0) {
                // The previous slot's trailing barrier (or run()
                // entry at t = 0) already synced the team, so
                // worker 0 may mutate any cell's state here; one
                // barrier releases the others afterwards.
                if (w == 0)
                    apply_mobility(t);
                team.barrier();
            }
            for (int c = c_lo; c < c_hi; ++c)
                phase_schedule(c, t);
            team.barrier();
            phase_transmit(sc, c_lo, c_hi, t);
            // Phase 1 of slot t+1 rewrites active[] -- every
            // worker's phase 2 must have read it first.
            team.barrier();
        }
    });

    // Drain acknowledgements still in flight at the horizon, in
    // user-id order like the per-user engine.
    std::vector<mac::Arq::Delivery> tail;
    for (int id = 0; id < num_users; ++id) {
        const size_t i = static_cast<size_t>(
            cache.soaOf[static_cast<size_t>(id)]);
        for (std::uint64_t t = slots;
             t <= slots + spec.ackDelaySlots; ++t) {
            tail.clear();
            arqs[i].tick(t, tail);
            for (const auto &d : tail)
                recordDelivery(stats[i], d, payload_bits, t,
                               tctx[i],
                               post_ho(static_cast<std::uint32_t>(
                                   i)));
        }
        stats[i].retransmissions = arqs[i].retransmissions();
        stats[i].arrivals = traffic[i].arrivals();
        stats[i].queueDrops = traffic[i].drops();
    }

    // Mobility outcome statistics (the final serving cell replaces
    // the drop-time association; the first-handover slot splits the
    // run into the before/after throughput windows).
    for (int id = 0; id < num_users; ++id) {
        UserStats &st = stats[static_cast<size_t>(
            cache.soaOf[static_cast<size_t>(id)])];
        if (mob) {
            st.servingCell = mob->servingCell(id);
            st.handovers = mob->handovers(id);
            st.pingPongs = mob->pingPongs(id);
            st.joins = mob->joins(id);
            st.leaves = mob->leaves(id);
            st.preHoSlots =
                std::min(mob->firstHandoverSlot(id), slots);
        } else {
            st.preHoSlots = slots;
        }
        st.postHoSlots = slots - st.preHoSlots;
    }

    if (trace) {
        trace->finalize();
        // End-to-end latency (arrival -> in-order delivery) from
        // the Ack events, in canonical trace order.
        for (const mac::PacketTrace::Entry &e : trace->entries()) {
            if (e.event == mac::PacketEvent::Ack)
                stats[static_cast<size_t>(
                          cache.soaOf[static_cast<size_t>(e.user)])]
                    .e2eLatencyHist.add(static_cast<double>(e.arg1));
        }
        res.trace = trace;
    }

    res.users.resize(nu);
    for (int id = 0; id < num_users; ++id)
        res.users[static_cast<size_t>(id)] =
            stats[static_cast<size_t>(
                cache.soaOf[static_cast<size_t>(id)])];

    res.aggregate = UserStats();
    res.aggregate.user = -1;
    for (const UserStats &u : res.users)
        res.aggregate.merge(u);
    return res;
}

} // namespace sim
} // namespace wilis
