/**
 * @file
 * Deterministic user mobility, RSRP-style handover and session
 * churn for the multi-cell network simulator.
 *
 * Three trajectory models move users through the deployment:
 *  - "line"     -- constant speed along a random heading, reflected
 *    off the deployment bounding box (an infinite billiard path).
 *  - "orbit"    -- a circular lap around a point near the user's
 *    drop position, radius drawn per user.
 *  - "waypoint" -- the classic random-waypoint walk: straight legs
 *    between uniformly drawn waypoints inside the bounding box.
 *
 * Every trajectory is a *pure function of (seed, user, slot)*: the
 * per-user heading/radius/waypoint draws come from a counter stream
 * forked off the master seed, and the position at slot t is
 * computed directly from t -- no integration state -- so positions
 * can be queried out of order, from any thread, and are
 * bit-identical for any worker count (the property every other
 * random stream in this codebase already has).
 *
 * Positions feed a *live link-gain matrix*: every gain-refresh
 * epoch (a slot-count quantum derived from the speed, ~5 m of
 * travel) the pathloss term of every (user, cell) link is
 * re-evaluated at the user's current position while the shadowing
 * term stays the static per-link draw of channel::PathlossModel --
 * the standard decomposition (shadowing decorrelates over tens of
 * meters; modeling it as fixed per link keeps the matrix a pure
 * function of the spec).
 *
 * On the refreshed gains the runtime evaluates A3-style handover --
 * a neighbor must beat the serving cell by a hysteresis margin
 * continuously for a time-to-trigger window before the user is
 * re-associated -- and Poisson session churn: per-user exponential
 * session/gap dwells (mean 1/churn_rate slots) toggle users between
 * active and departed, quantized to epoch boundaries. Both emit an
 * ordered per-epoch event list that the per-user and SoA engines
 * apply identically, which is how the two engines stay bit-exact
 * under mobility.
 */

#ifndef WILIS_SIM_MOBILITY_HH
#define WILIS_SIM_MOBILITY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/snapshot.hh"
#include "sim/topology.hh"

namespace wilis {
namespace sim {

/** Trajectory model moving users through the deployment. */
enum class MobilityModel {
    /** Users stay at their drop positions (the static default). */
    None,
    /** Constant speed along a random heading, box-reflected. */
    Line,
    /** Circular laps around a point near the drop position. */
    Orbit,
    /** Random-waypoint walk over the deployment bounding box. */
    Waypoint,
};

/** Config-file name ("none" / "line" / "orbit" / "waypoint"). */
const char *mobilityModelName(MobilityModel model);

/** Inverse of mobilityModelName(); fatal on unknown names. */
MobilityModel mobilityModelFromName(const std::string &name);

/** Declarative mobility / handover / churn parameters. */
struct MobilitySpec {
    /** Trajectory model (None = static deployment). */
    MobilityModel model = MobilityModel::None;
    /** User speed in meters per second (trajectory models only). */
    double speedMps = 1.4;
    /** Handover hysteresis margin in dB (A3 offset). */
    double handoverHystDb = 3.0;
    /**
     * Handover time-to-trigger in slots: the hysteresis condition
     * must hold continuously this long (measured across gain
     * epochs) before the user is re-associated. 0 fires on the
     * first epoch the condition holds.
     */
    std::uint64_t handoverTttSlots = 16;
    /**
     * Session churn rate: the per-slot hazard of a session toggle,
     * i.e. active sessions and departed gaps both last an
     * exponential dwell of mean 1/churn_rate slots. 0 disables
     * churn (every user stays active for the whole run).
     */
    double churnRate = 0.0;

    /** True when mobility or churn changes the run's dynamics. */
    bool
    enabled() const
    {
        return model != MobilityModel::None || churnRate > 0.0;
    }
};

/**
 * The shared mobility/handover/churn decision engine of one run.
 *
 * Both multi-cell engines construct one runtime per run and drive
 * it single-threaded at every gain-refresh epoch (the worker team
 * barriers around the call): epoch() refreshes the live gain
 * matrix from the trajectory positions, advances the churn chains
 * and the handover time-to-trigger state, and returns the slot's
 * ordered membership events. The engines then apply those events
 * to their own scheduler/queue/ARQ state -- every decision is made
 * once, here, so the two engines cannot diverge.
 *
 * Between epochs the runtime is read-only: gainRow() /
 * servingGainLin() replace the static Topology matrix wherever the
 * engines fold interference or rate estimates.
 *
 * Publication contract: epoch() mutates the gain matrix and every
 * decision chain with no internal locking, so the caller must hold
 * all other workers at a LockstepTeam barrier for the duration of
 * the call; the barrier's release/acquire protocol then publishes
 * the new epoch state to every worker (and the pre-epoch reads back
 * to worker 0). This write-parked / read-shared pattern is
 * barrier-phase ownership -- enforced dynamically by the CI TSan
 * leg, not expressible to the lock-based static analysis (see
 * docs/ARCHITECTURE.md, "Static determinism guarantees").
 */
class MobilityRuntime
{
  public:
    /** One membership event of a gain epoch. */
    struct Event {
        /** What happened to the user. */
        enum class Kind {
            /**
             * Departed user re-entered: fromCell is the
             * pre-departure serving cell, toCell the strongest
             * cell at the current position (RSRP re-association,
             * so the two differ when the user moved while away).
             */
            Join,
            /** Active user departed (fromCell == toCell). */
            Leave,
            /** Serving-cell re-association (fromCell != toCell). */
            Handover,
        };
        /** Event kind. */
        Kind kind = Kind::Join;
        /** Global user id. */
        int user = 0;
        /** Serving cell before the event. */
        int fromCell = 0;
        /** Serving cell after the event. */
        int toCell = 0;
        /**
         * Handover only: true when this bounces straight back to
         * the previous serving cell within the ping-pong window
         * (8 gain epochs).
         */
        bool pingPong = false;
    };

    /**
     * Build the runtime for a realized deployment.
     * @param spec              Mobility / handover / churn knobs.
     * @param topo              The deployment (drop positions seed
     *                          the trajectories; its gain matrix is
     *                          the epoch-0 state of the live one).
     * @param seed              The run's master seed; trajectory and
     *                          churn streams fork from it per user.
     * @param frame_interval_us Slot duration (converts speed in m/s
     *                          into m/slot).
     */
    MobilityRuntime(const MobilitySpec &spec, const Topology &topo,
                    std::uint64_t seed, double frame_interval_us);

    /** The parameters in use. */
    const MobilitySpec &spec() const { return spec_; }

    /**
     * Gain-refresh epoch length in slots: ~5 m of travel at the
     * configured speed, clamped to [1, 1024] (64 for churn-only
     * runs, whose gains never change).
     */
    std::uint64_t epochSlots() const { return epochSlots_; }

    /**
     * Position of user @p u at slot @p t -- a pure function of
     * (seed, user, slot), independent of any runtime state.
     */
    Position positionAt(int u, std::uint64_t t) const;

    /** Current serving cell of user @p u. */
    int servingCell(int u) const
    {
        return serving_[static_cast<size_t>(u)];
    }

    /** True when user @p u's session is currently active. */
    bool userActive(int u) const
    {
        return active_[static_cast<size_t>(u)] != 0;
    }

    /** Serving-link gain of user @p u in linear SNR units. */
    double servingGainLin(int u) const
    {
        return gainRow(u)[serving_[static_cast<size_t>(u)]];
    }

    /**
     * User @p u's row of the *live* users x cells linear gain
     * matrix (refreshed every epoch; the mobile replacement for
     * Topology::gainRow()). The row's address is stable for the
     * runtime's lifetime.
     */
    const double *
    gainRow(int u) const
    {
        return gains_.data() +
               static_cast<size_t>(u) * static_cast<size_t>(cells_);
    }

    /**
     * Advance to slot @p t (a multiple of epochSlots(), strictly
     * increasing across calls): refresh the gain matrix from the
     * slot-@p t positions, advance churn and handover state, and
     * append this epoch's events to @p out in user-id order (at
     * most one event per user per epoch). Must be called from one
     * thread at a time.
     */
    void epoch(std::uint64_t t, std::vector<Event> &out);

    /** Completed handovers of user @p u. */
    std::uint64_t handovers(int u) const
    {
        return handovers_[static_cast<size_t>(u)];
    }

    /** Ping-pong handovers of user @p u (see Event::pingPong). */
    std::uint64_t pingPongs(int u) const
    {
        return pingPongs_[static_cast<size_t>(u)];
    }

    /** Churn re-entries of user @p u. */
    std::uint64_t joins(int u) const
    {
        return joins_[static_cast<size_t>(u)];
    }

    /** Churn departures of user @p u. */
    std::uint64_t leaves(int u) const
    {
        return leaves_[static_cast<size_t>(u)];
    }

    /**
     * Slot of user @p u's first handover, or UINT64_MAX if none
     * happened yet (the split point of the before/after-handover
     * throughput statistics).
     */
    std::uint64_t firstHandoverSlot(int u) const
    {
        return firstHoSlot_[static_cast<size_t>(u)];
    }

    /**
     * Serialize the mutable state: the live gain matrix, serving /
     * active membership, handover and churn decision chains, event
     * counters and the last-epoch guard. The static shadowing draws
     * are re-derived by the constructor on resume (a pure function
     * of the spec), and trajectories carry no state at all.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore state written by saveState() (same spec and topo). */
    void loadState(SnapshotReader &r);

  private:
    /** Reflect @p p into [lo, hi] by triangle-wave folding. */
    static double fold(double p, double lo, double hi);

    /** Exponential churn dwell @p k of user @p u, in slots. */
    std::uint64_t churnDwell(int u, std::uint64_t k) const;

    /** Re-evaluate user @p u's gain row at its slot-@p t position. */
    void refreshRow(int u, std::uint64_t t);

    /** Best cell of @p row (argmax gain, lowest index on ties). */
    int bestCell(const double *row) const;

    MobilitySpec spec_;
    const Topology &topo_;
    std::uint64_t seed_;
    double slotSec_;
    int users_;
    int cells_;
    std::uint64_t epochSlots_;
    double hystLin_; // 10^(handoverHystDb / 10)
    // Deployment bounding box (cell grid extended by the drop
    // radius): trajectories reflect off / draw waypoints within it.
    double xLo_, xHi_, yLo_, yHi_;

    std::vector<double> gains_; // live [user * cells + cell] matrix
    std::vector<double> shadow_; // static per-link shadowing, dB
    std::vector<int> serving_;
    std::vector<std::uint8_t> active_;

    // Handover time-to-trigger state: the current best-neighbor
    // candidate and the slot its hysteresis condition started
    // holding.
    std::vector<int> hoCand_;
    std::vector<std::uint64_t> hoSince_;
    // Ping-pong detection: the pre-handover serving cell and the
    // slot of the last handover.
    std::vector<int> prevCell_;
    std::vector<std::uint64_t> lastHoSlot_;
    // Churn chains: the next session-toggle slot and dwell index.
    std::vector<std::uint64_t> nextToggle_;
    std::vector<std::uint64_t> toggleIdx_;

    // Last slot epoch() ran at (UINT64_MAX = never): enforces the
    // strictly-increasing call contract, so a scheduling bug that
    // replayed or reordered epochs panics instead of silently
    // re-advancing the churn chains.
    std::uint64_t lastEpochT_ = UINT64_MAX;

    std::vector<std::uint64_t> handovers_;
    std::vector<std::uint64_t> pingPongs_;
    std::vector<std::uint64_t> joins_;
    std::vector<std::uint64_t> leaves_;
    std::vector<std::uint64_t> firstHoSlot_;
};

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_MOBILITY_HH
