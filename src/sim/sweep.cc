#include "sim/sweep.hh"

#include <memory>
#include <thread>
#include <vector>

namespace wilis {
namespace sim {

int
sweepWorkerCount(int threads, std::uint64_t num_packets)
{
    int n = threads > 0
                ? threads
                : static_cast<int>(
                      std::max(1u, std::thread::hardware_concurrency()));
    return static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(n),
                                std::max<std::uint64_t>(num_packets, 1)));
}

void
sweepFrames(
    const ScenarioSpec &spec, std::uint64_t num_packets, int threads,
    const std::function<void(int, const FrameResult &, std::uint64_t)>
        &per_frame)
{
    const int n = sweepWorkerCount(threads, num_packets);

    // Static packet striding: worker t owns packets t, t+n, t+2n...
    // Every random stream is keyed by the packet index, so the
    // assignment of packets to workers is irrelevant to the results.
    auto worker = [&](int tid) {
        Testbench tb(spec);
        for (std::uint64_t p = static_cast<std::uint64_t>(tid);
             p < num_packets; p += static_cast<std::uint64_t>(n)) {
            FrameResult res = tb.runFrame(spec.payloadBits, p);
            per_frame(tid, res, p);
        }
    };

    if (n == 1) {
        worker(0);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t)
        pool.emplace_back(worker, t);
    for (auto &th : pool)
        th.join();
}

ErrorStats
measureBer(const ScenarioSpec &spec, std::uint64_t num_packets,
           int threads)
{
    const int n = sweepWorkerCount(threads, num_packets);
    std::vector<ErrorStats> per_worker(static_cast<size_t>(n));
    sweepFrames(spec, num_packets, n,
                [&](int tid, const FrameResult &res, std::uint64_t) {
                    per_worker[static_cast<size_t>(tid)].bits +=
                        res.txPayload.size();
                    per_worker[static_cast<size_t>(tid)].errors +=
                        res.bitErrors;
                });
    ErrorStats total;
    for (const auto &s : per_worker)
        total.merge(s);
    return total;
}

// Defining the deprecated shim must not trip -Werror builds.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
ErrorStats
measureBer(const TestbenchConfig &cfg, size_t payload_bits,
           std::uint64_t num_packets, int threads)
{
    return measureBer(ScenarioSpec::fromTestbench(cfg, payload_bits),
                      num_packets, threads);
}
#pragma GCC diagnostic pop

} // namespace sim
} // namespace wilis
