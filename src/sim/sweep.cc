#include "sim/sweep.hh"

#include <memory>
#include <thread>
#include <vector>

namespace wilis {
namespace sim {

void
sweepPackets(
    const TestbenchConfig &cfg, size_t payload_bits,
    std::uint64_t num_packets, int threads,
    const std::function<void(int, const PacketResult &, std::uint64_t)>
        &per_packet)
{
    int n = threads > 0
                ? threads
                : static_cast<int>(
                      std::max(1u, std::thread::hardware_concurrency()));
    n = static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(n),
                                std::max<std::uint64_t>(num_packets, 1)));

    auto worker = [&](int tid) {
        Testbench tb(cfg);
        for (std::uint64_t p = static_cast<std::uint64_t>(tid);
             p < num_packets; p += static_cast<std::uint64_t>(n)) {
            PacketResult res = tb.runPacket(payload_bits, p);
            per_packet(tid, res, p);
        }
    };

    if (n == 1) {
        worker(0);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t)
        pool.emplace_back(worker, t);
    for (auto &th : pool)
        th.join();
}

ErrorStats
measureBer(const TestbenchConfig &cfg, size_t payload_bits,
           std::uint64_t num_packets, int threads)
{
    int n = threads > 0
                ? threads
                : static_cast<int>(
                      std::max(1u, std::thread::hardware_concurrency()));
    std::vector<ErrorStats> per_thread(static_cast<size_t>(n));
    sweepPackets(cfg, payload_bits, num_packets, n,
                 [&](int tid, const PacketResult &res, std::uint64_t) {
                     per_thread[static_cast<size_t>(tid)].bits +=
                         res.txPayload.size();
                     per_thread[static_cast<size_t>(tid)].errors +=
                         res.bitErrors;
                 });
    ErrorStats total;
    for (const auto &s : per_thread)
        total.merge(s);
    return total;
}

} // namespace sim
} // namespace wilis
