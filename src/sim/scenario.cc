#include "sim/scenario.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "common/logging.hh"
#include "sim/testbench.hh"

namespace wilis {
namespace sim {

namespace {

/**
 * Reject config keys outside the documented set. Silent acceptance
 * of a misspelled key ("payload_bit=512") used to leave the default
 * in place and the experiment quietly wrong; a config typo is a
 * user error, so it is fatal with the offending key named. Keys
 * with an allowed prefix ("channel.", "link.", ...) pass through
 * untouched -- their sub-config owns their validation.
 */
void
rejectUnknownKeys(const li::Config &cfg, const char *spec_name,
                  const std::set<std::string> &known,
                  const std::vector<std::string> &prefixes)
{
    for (const auto &kv : cfg.entries()) {
        const std::string &key = kv.first;
        if (known.count(key))
            continue;
        bool prefixed = false;
        for (const std::string &p : prefixes) {
            if (key.rfind(p, 0) == 0 && key.size() > p.size()) {
                prefixed = true;
                break;
            }
        }
        if (prefixed)
            continue;
        std::string valid;
        for (const std::string &k : known) {
            if (!valid.empty())
                valid += ", ";
            valid += k;
        }
        wilis_fatal("unknown %s key '%s' (valid keys: %s)",
                    spec_name, key.c_str(), valid.c_str());
    }
}

/**
 * The single source of truth for each spec's accepted key set:
 * applyConfig() validates against it and the public
 * scenarioSpecKeys() / networkSpecKeys() accessors expose it (the
 * docs/SCENARIOS.md cross-check test walks those), so the parser,
 * the validation and the reference cannot drift apart. Entries
 * ending in '.' are pass-through prefix families.
 */
const char *const kScenarioKeys[] = {
    "name",          "rate",         "channel",
    "payload_bits",  "payload_seed", "decoder",
    "soft_width",    "csi_weight",   "scrambler_seed",
    "baseband_mhz",  "decoder_mhz",  "host_mhz",
    "kernel_backend", "snr_db",      "seed",
    "channel.",      "decoder.",
};

const char *const kNetworkKeys[] = {
    "name",           "users",
    "arrival",        "arrival_prob",
    "doppler_hz",     "snr_spread_db",
    "frame_interval_us", "arq",
    "arq_window",     "arq_max_attempts",
    "ack_delay",      "pber_lo",
    "pber_hi",        "net_seed",
    "fidelity",       "fidelity_warmup",
    "fidelity_refresh_period", "fidelity_refresh_slots",
    "calibration_file", "reps",
    // multi-cell: checkpoint/resume
    "checkpoint_file", "checkpoint_every",
    "checkpoint_resume",
    // multi-cell: topology + propagation
    "cells",          "cell_spacing_m",
    "cell_radius_m",  "min_distance_m",
    "ref_snr_db",     "ref_distance_m",
    "pathloss_exp",   "shadow_sigma_db",
    // multi-cell: traffic + scheduling
    "traffic",        "traffic_load",
    "on_slots",       "off_slots",
    "queue_limit",    "scheduler",
    "pf_horizon",     "engine",
    "qdisc",          "control_rate",
    "contention",     "trace",
    // multi-cell: mobility + churn
    "mobility",       "speed_mps",
    "handover_hyst_db", "handover_ttt_slots",
    "churn_rate",
    // link-template shorthands
    "rate",           "snr_db",
    "payload_bits",   "decoder",
    "kernel_backend", "link.",
};

/** A key table split into exact names and prefix families, in the
    shape rejectUnknownKeys() consumes. */
struct KeyTable {
    std::set<std::string> known;
    std::vector<std::string> prefixes;
    KeyTable(const char *const *begin, const char *const *end)
    {
        for (const char *const *k = begin; k != end; ++k) {
            const std::string key(*k);
            if (!key.empty() && key.back() == '.')
                prefixes.push_back(key);
            else
                known.insert(key);
        }
    }
};

std::vector<std::string>
sortedKeys(const char *const *begin, const char *const *end)
{
    std::vector<std::string> keys(begin, end);
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

std::vector<std::string>
scenarioSpecKeys()
{
    return sortedKeys(std::begin(kScenarioKeys),
                      std::end(kScenarioKeys));
}

std::vector<std::string>
networkSpecKeys()
{
    return sortedKeys(std::begin(kNetworkKeys),
                      std::end(kNetworkKeys));
}

ScenarioSpec
ScenarioSpec::withRate(phy::RateIndex r) const
{
    ScenarioSpec s = *this;
    s.rate = r;
    return s;
}

ScenarioSpec
ScenarioSpec::withChannel(const std::string &name_) const
{
    ScenarioSpec s = *this;
    s.channel = name_;
    return s;
}

ScenarioSpec
ScenarioSpec::withSnrDb(double snr_db) const
{
    ScenarioSpec s = *this;
    s.channelCfg.set("snr_db", strprintf("%g", snr_db));
    return s;
}

ScenarioSpec
ScenarioSpec::withPayloadBits(size_t bits) const
{
    ScenarioSpec s = *this;
    s.payloadBits = bits;
    return s;
}

ScenarioSpec
ScenarioSpec::withKernelBackend(const std::string &backend) const
{
    ScenarioSpec s = *this;
    s.kernel.backend = backend;
    return s;
}

ScenarioSpec
ScenarioSpec::withChannelSeed(std::uint64_t seed) const
{
    ScenarioSpec s = *this;
    s.channelCfg.set("seed",
                     strprintf("%llu",
                               static_cast<unsigned long long>(seed)));
    return s;
}

double
ScenarioSpec::snrDb() const
{
    return channelCfg.getDouble("snr_db", 10.0);
}

std::string
ScenarioSpec::label() const
{
    return strprintf("r%d/%s/snr%g/p%zu", rate, channel.c_str(),
                     snrDb(), payloadBits);
}

TestbenchConfig
ScenarioSpec::testbench() const
{
    TestbenchConfig cfg;
    cfg.rate = rate;
    cfg.rx = rx;
    cfg.channel = channel;
    cfg.channelCfg = channelCfg;
    cfg.payloadSeed = payloadSeed;
    cfg.kernel = kernel;
    return cfg;
}

ScenarioSpec
ScenarioSpec::fromTestbench(const TestbenchConfig &cfg,
                            size_t payload_bits)
{
    ScenarioSpec s;
    s.rate = cfg.rate;
    s.rx = cfg.rx;
    s.channel = cfg.channel;
    s.channelCfg = cfg.channelCfg;
    s.payloadSeed = cfg.payloadSeed;
    s.payloadBits = payload_bits;
    s.kernel = cfg.kernel;
    return s;
}

void
ScenarioSpec::applyConfig(const li::Config &cfg)
{
    static const KeyTable keys(std::begin(kScenarioKeys),
                               std::end(kScenarioKeys));
    rejectUnknownKeys(cfg, "ScenarioSpec", keys.known,
                      keys.prefixes);

    name = cfg.getString("name", name);
    rate = static_cast<phy::RateIndex>(cfg.getInt("rate", rate));
    wilis_assert(rate >= 0 && rate < phy::kNumRates,
                 "rate index %d out of range", rate);
    channel = cfg.getString("channel", channel);
    payloadBits = static_cast<size_t>(
        cfg.getInt("payload_bits", static_cast<long>(payloadBits)));
    payloadSeed = cfg.getUint64("payload_seed", payloadSeed);
    rx.decoder = cfg.getString("decoder", rx.decoder);
    rx.demapper.softWidth = static_cast<int>(
        cfg.getInt("soft_width", rx.demapper.softWidth));
    rx.applyCsiWeight = cfg.getBool("csi_weight", rx.applyCsiWeight);
    rx.scramblerSeed = static_cast<std::uint8_t>(
        cfg.getInt("scrambler_seed", rx.scramblerSeed));
    clocks.basebandMhz =
        cfg.getDouble("baseband_mhz", clocks.basebandMhz);
    clocks.decoderMhz =
        cfg.getDouble("decoder_mhz", clocks.decoderMhz);
    clocks.hostMhz = cfg.getDouble("host_mhz", clocks.hostMhz);
    kernel.backend = cfg.getString("kernel_backend", kernel.backend);

    for (const auto &kv : cfg.entries()) {
        const std::string &key = kv.first;
        if (key.rfind("channel.", 0) == 0)
            channelCfg.set(key.substr(8), kv.second);
        else if (key.rfind("decoder.", 0) == 0)
            rx.decoderCfg.set(key.substr(8), kv.second);
        else if (key == "snr_db" || key == "seed")
            channelCfg.set(key, kv.second);
    }
}

ScenarioSpec
ScenarioSpec::fromConfig(const li::Config &cfg)
{
    ScenarioSpec s;
    s.applyConfig(cfg);
    return s;
}

li::Config
ScenarioSpec::toConfig() const
{
    li::Config cfg;
    cfg.set("name", name);
    cfg.set("rate", strprintf("%d", rate));
    cfg.set("channel", channel);
    cfg.set("payload_bits", strprintf("%zu", payloadBits));
    cfg.set("payload_seed",
            strprintf("%llu",
                      static_cast<unsigned long long>(payloadSeed)));
    cfg.set("decoder", rx.decoder);
    cfg.set("soft_width", strprintf("%d", rx.demapper.softWidth));
    cfg.set("csi_weight", rx.applyCsiWeight ? "true" : "false");
    cfg.set("scrambler_seed", strprintf("%d", rx.scramblerSeed));
    cfg.set("baseband_mhz", strprintf("%g", clocks.basebandMhz));
    cfg.set("decoder_mhz", strprintf("%g", clocks.decoderMhz));
    cfg.set("host_mhz", strprintf("%g", clocks.hostMhz));
    cfg.set("kernel_backend", kernel.backend);
    for (const auto &kv : channelCfg.entries())
        cfg.set("channel." + kv.first, kv.second);
    for (const auto &kv : rx.decoderCfg.entries())
        cfg.set("decoder." + kv.first, kv.second);
    return cfg;
}

// ------------------------------------------------------ presets

namespace {

/**
 * Shared machinery of the scenario and network preset registries:
 * name -> factory with duplicate detection and a known-names fatal
 * on unknown lookups.
 */
template <typename Spec>
class PresetRegistry
{
  public:
    using Factory = Spec (*)();

    explicit PresetRegistry(const char *kind_) : kind(kind_) {}

    void
    add(const std::string &name, Factory factory)
    {
        wilis_assert(!presets.count(name),
                     "duplicate %s preset '%s'", kind, name.c_str());
        presets[name] = factory;
    }

    Spec
    create(const std::string &name) const
    {
        auto it = presets.find(name);
        if (it == presets.end()) {
            std::string known;
            for (const auto &kv : presets) {
                if (!known.empty())
                    known += ", ";
                known += kv.first;
            }
            wilis_fatal("no %s preset '%s' (known: %s)", kind,
                        name.c_str(), known.c_str());
        }
        return it->second();
    }

    bool
    has(const std::string &name) const
    {
        return presets.count(name) > 0;
    }

    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        for (const auto &kv : presets)
            out.push_back(kv.first);
        return out;
    }

  private:
    const char *kind;
    std::map<std::string, Factory> presets;
};

PresetRegistry<ScenarioSpec> &
scenarioRegistry()
{
    static PresetRegistry<ScenarioSpec> reg = [] {
        PresetRegistry<ScenarioSpec> r("scenario");
        r.add("awgn-mid", [] {
            ScenarioSpec s;
            s.name = "awgn-mid";
            s.channel = "awgn";
            s.channelCfg = li::Config::fromString("snr_db=10");
            return s;
        });
        r.add("awgn-clean", [] {
            ScenarioSpec s;
            s.name = "awgn-clean";
            s.channel = "awgn";
            s.channelCfg = li::Config::fromString("snr_db=30");
            return s;
        });
        r.add("rayleigh-fading", [] {
            // The Figure 7 SoftRate setting: 20 Hz fading, 10 dB
            // AWGN.
            ScenarioSpec s;
            s.name = "rayleigh-fading";
            s.channel = "rayleigh";
            s.channelCfg =
                li::Config::fromString("snr_db=10,doppler_hz=20");
            return s;
        });
        r.add("multipath-selective", [] {
            ScenarioSpec s;
            s.name = "multipath-selective";
            s.channel = "multipath";
            s.channelCfg = li::Config::fromString(
                "snr_db=15,num_taps=4,delay_spread=3");
            s.rx.applyCsiWeight = true;
            return s;
        });
        r.add("interference-tone", [] {
            ScenarioSpec s;
            s.name = "interference-tone";
            s.channel = "interference";
            s.channelCfg =
                li::Config::fromString("snr_db=15,sir_db=10");
            return s;
        });
        return r;
    }();
    return reg;
}

} // namespace

void
registerScenarioPreset(const std::string &name,
                       ScenarioSpec (*factory)())
{
    scenarioRegistry().add(name, factory);
}

ScenarioSpec
scenarioPreset(const std::string &name)
{
    return scenarioRegistry().create(name);
}

bool
hasScenarioPreset(const std::string &name)
{
    return scenarioRegistry().has(name);
}

std::vector<std::string>
scenarioPresetNames()
{
    return scenarioRegistry().names();
}

// ------------------------------------------------ network specs

void
NetworkSpec::applyConfig(const li::Config &cfg)
{
    static const KeyTable keys(std::begin(kNetworkKeys),
                               std::end(kNetworkKeys));
    rejectUnknownKeys(cfg, "NetworkSpec", keys.known,
                      keys.prefixes);

    name = cfg.getString("name", name);
    numUsers =
        static_cast<int>(cfg.getInt("users", numUsers));
    wilis_assert(numUsers >= 1, "network needs >= 1 user, got %d",
                 numUsers);
    arrivalModel = cfg.getString("arrival", arrivalModel);
    wilis_assert(arrivalModel == "full" ||
                     arrivalModel == "bernoulli",
                 "unknown arrival model '%s' (full|bernoulli)",
                 arrivalModel.c_str());
    arrivalProb = cfg.getDouble("arrival_prob", arrivalProb);
    dopplerHz = cfg.getDouble("doppler_hz", dopplerHz);
    snrSpreadDb = cfg.getDouble("snr_spread_db", snrSpreadDb);
    frameIntervalUs =
        cfg.getDouble("frame_interval_us", frameIntervalUs);
    if (cfg.has("arq"))
        arqMode = mac::arqModeFromName(cfg.getString("arq"));
    arqWindow = static_cast<int>(cfg.getInt("arq_window", arqWindow));
    arqMaxAttempts = static_cast<int>(
        cfg.getInt("arq_max_attempts", arqMaxAttempts));
    ackDelaySlots = cfg.getUint64("ack_delay", ackDelaySlots);
    pberLo = cfg.getDouble("pber_lo", pberLo);
    pberHi = cfg.getDouble("pber_hi", pberHi);
    seed = cfg.getUint64("net_seed", seed);
    if (cfg.has("fidelity"))
        fidelity.mode =
            fidelityModeFromName(cfg.getString("fidelity"));
    fidelity.warmupSlots =
        cfg.getUint64("fidelity_warmup", fidelity.warmupSlots);
    fidelity.refreshPeriod = cfg.getUint64("fidelity_refresh_period",
                                           fidelity.refreshPeriod);
    fidelity.refreshSlots = cfg.getUint64("fidelity_refresh_slots",
                                          fidelity.refreshSlots);
    calibrationFile =
        cfg.getString("calibration_file", calibrationFile);
    reps = static_cast<int>(cfg.getInt("reps", reps));
    wilis_assert(reps >= 1, "reps must be >= 1, got %d", reps);

    checkpoint.file =
        cfg.getString("checkpoint_file", checkpoint.file);
    checkpoint.everySlots =
        cfg.getUint64("checkpoint_every", checkpoint.everySlots);
    checkpoint.resume =
        cfg.getBool("checkpoint_resume", checkpoint.resume);
    wilis_assert(checkpoint.enabled() ||
                     (checkpoint.everySlots == 0 &&
                      !checkpoint.resume),
                 "checkpoint_every/checkpoint_resume need "
                 "checkpoint_file");

    if (cfg.has("cells")) {
        const std::string grid = cfg.getString("cells");
        int rows = 0;
        int cols = 0;
        char tail = '\0';
        if (std::sscanf(grid.c_str(), "%dx%d%c", &rows, &cols,
                        &tail) != 2 ||
            rows < 1 || cols < 1)
            wilis_fatal("malformed cells '%s' (expected RxC, "
                        "e.g. cells=3x3)",
                        grid.c_str());
        topology.rows = rows;
        topology.cols = cols;
    }
    topology.cellSpacingM =
        cfg.getDouble("cell_spacing_m", topology.cellSpacingM);
    topology.cellRadiusM =
        cfg.getDouble("cell_radius_m", topology.cellRadiusM);
    topology.minDistanceM =
        cfg.getDouble("min_distance_m", topology.minDistanceM);
    topology.pathloss =
        channel::PathlossModel::specFromConfig(cfg,
                                               topology.pathloss);

    if (cfg.has("traffic"))
        traffic.kind = mac::trafficKindFromName(
            cfg.getString("traffic"));
    traffic.load = cfg.getDouble("traffic_load", traffic.load);
    traffic.onSlots = cfg.getDouble("on_slots", traffic.onSlots);
    traffic.offSlots = cfg.getDouble("off_slots", traffic.offSlots);
    traffic.queueLimit = static_cast<int>(
        cfg.getInt("queue_limit", traffic.queueLimit));

    if (cfg.has("qdisc"))
        traffic.qdisc =
            mac::qdiscKindFromName(cfg.getString("qdisc"));
    traffic.controlRate =
        cfg.getDouble("control_rate", traffic.controlRate);
    wilis_assert(traffic.controlRate >= 0.0,
                 "control_rate must be >= 0, got %g",
                 traffic.controlRate);

    if (cfg.has("scheduler"))
        scheduler.kind = mac::schedulerKindFromName(
            cfg.getString("scheduler"));
    scheduler.pfHorizonSlots =
        cfg.getDouble("pf_horizon", scheduler.pfHorizonSlots);
    if (cfg.has("contention"))
        scheduler.contention = mac::contentionModeFromName(
            cfg.getString("contention"));

    if (cfg.has("mobility"))
        mobility.model =
            mobilityModelFromName(cfg.getString("mobility"));
    mobility.speedMps =
        cfg.getDouble("speed_mps", mobility.speedMps);
    wilis_assert(mobility.speedMps > 0.0,
                 "speed_mps must be > 0, got %g",
                 mobility.speedMps);
    mobility.handoverHystDb =
        cfg.getDouble("handover_hyst_db", mobility.handoverHystDb);
    wilis_assert(mobility.handoverHystDb >= 0.0,
                 "handover_hyst_db must be >= 0, got %g",
                 mobility.handoverHystDb);
    mobility.handoverTttSlots = cfg.getUint64(
        "handover_ttt_slots", mobility.handoverTttSlots);
    mobility.churnRate =
        cfg.getDouble("churn_rate", mobility.churnRate);
    wilis_assert(mobility.churnRate >= 0.0 &&
                     mobility.churnRate < 1.0,
                 "churn_rate must be in [0,1), got %g",
                 mobility.churnRate);

    trace = cfg.getBool("trace", trace);

    engine = cfg.getString("engine", engine);
    wilis_assert(engine == "auto" || engine == "soa" ||
                     engine == "peruser",
                 "unknown multi-cell engine '%s' "
                 "(auto|soa|peruser)",
                 engine.c_str());

    // Pass-throughs to the link template: explicit "link.<k>" keys
    // plus the common shorthands.
    li::Config link_cfg;
    for (const auto &kv : cfg.entries()) {
        if (kv.first.rfind("link.", 0) == 0)
            link_cfg.set(kv.first.substr(5), kv.second);
        else if (kv.first == "rate" || kv.first == "snr_db" ||
                 kv.first == "payload_bits" ||
                 kv.first == "decoder" ||
                 kv.first == "kernel_backend")
            link_cfg.set(kv.first, kv.second);
    }
    link.applyConfig(link_cfg);

    // The multi-cell engine derives per-user SNRs from the
    // topology and offers traffic through the traffic model, so
    // the single-cell knobs below have no effect there. Accepting
    // them alongside cells=RxC would be exactly the
    // silently-wrong-experiment failure the strict key check
    // exists to prevent.
    if (multicell()) {
        for (const char *key :
             {"arrival", "arrival_prob", "snr_spread_db",
              "snr_db"}) {
            if (cfg.has(key))
                wilis_fatal("single-cell key '%s' has no effect in "
                            "multi-cell mode (cells=%dx%d); use the "
                            "traffic/topology keys instead",
                            key, topology.rows, topology.cols);
        }
    } else {
        // ...and symmetrically: the topology/traffic/scheduler
        // keys only drive the multi-cell engine, so accepting them
        // without a grid would run the single-cell engine with the
        // experiment quietly missing its traffic model.
        for (const char *key :
             {"cell_spacing_m", "cell_radius_m", "min_distance_m",
              "ref_snr_db", "ref_distance_m", "pathloss_exp",
              "shadow_sigma_db", "traffic", "traffic_load",
              "on_slots", "off_slots", "queue_limit", "scheduler",
              "pf_horizon", "engine", "qdisc", "control_rate",
              "contention", "mobility", "speed_mps",
              "handover_hyst_db", "handover_ttt_slots",
              "churn_rate", "checkpoint_file", "checkpoint_every",
              "checkpoint_resume"}) {
            if (cfg.has(key))
                wilis_fatal("multi-cell key '%s' has no effect "
                            "without a cell grid; add cells=RxC "
                            "(e.g. cells=3x3)",
                            key);
        }
    }
}

NetworkSpec
NetworkSpec::fromConfig(const li::Config &cfg)
{
    NetworkSpec s;
    s.applyConfig(cfg);
    return s;
}

li::Config
NetworkSpec::toConfig() const
{
    li::Config cfg;
    cfg.set("name", name);
    cfg.set("users", strprintf("%d", numUsers));
    // The single-cell traffic/SNR knobs are meaningless (and
    // rejected) alongside a multi-cell grid, so a multi-cell spec
    // round-trips without them.
    if (!multicell()) {
        cfg.set("arrival", arrivalModel);
        cfg.set("arrival_prob", strprintf("%g", arrivalProb));
        cfg.set("snr_spread_db", strprintf("%g", snrSpreadDb));
    }
    cfg.set("doppler_hz", strprintf("%g", dopplerHz));
    cfg.set("frame_interval_us", strprintf("%g", frameIntervalUs));
    cfg.set("arq", mac::arqModeName(arqMode));
    cfg.set("arq_window", strprintf("%d", arqWindow));
    cfg.set("arq_max_attempts", strprintf("%d", arqMaxAttempts));
    cfg.set("ack_delay",
            strprintf("%llu",
                      static_cast<unsigned long long>(ackDelaySlots)));
    cfg.set("pber_lo", strprintf("%g", pberLo));
    cfg.set("pber_hi", strprintf("%g", pberHi));
    cfg.set("net_seed",
            strprintf("%llu", static_cast<unsigned long long>(seed)));
    cfg.set("fidelity", fidelityModeName(fidelity.mode));
    cfg.set("fidelity_warmup",
            strprintf("%llu", static_cast<unsigned long long>(
                                  fidelity.warmupSlots)));
    cfg.set("fidelity_refresh_period",
            strprintf("%llu", static_cast<unsigned long long>(
                                  fidelity.refreshPeriod)));
    cfg.set("fidelity_refresh_slots",
            strprintf("%llu", static_cast<unsigned long long>(
                                  fidelity.refreshSlots)));
    if (!calibrationFile.empty())
        cfg.set("calibration_file", calibrationFile);
    cfg.set("reps", strprintf("%d", reps));
    // The multi-cell keys are rejected by applyConfig() on
    // single-cell specs (and vice versa for the single-cell knobs
    // above), so each engine's spec round-trips with exactly its
    // own key set.
    if (multicell()) {
        cfg.set("cells",
                strprintf("%dx%d", topology.rows, topology.cols));
        cfg.set("cell_spacing_m",
                strprintf("%g", topology.cellSpacingM));
        cfg.set("cell_radius_m",
                strprintf("%g", topology.cellRadiusM));
        cfg.set("min_distance_m",
                strprintf("%g", topology.minDistanceM));
        cfg.set("ref_snr_db",
                strprintf("%g", topology.pathloss.refSnrDb));
        cfg.set("ref_distance_m",
                strprintf("%g", topology.pathloss.refDistanceM));
        cfg.set("pathloss_exp",
                strprintf("%g", topology.pathloss.exponent));
        cfg.set("shadow_sigma_db",
                strprintf("%g", topology.pathloss.shadowSigmaDb));
        cfg.set("traffic", mac::trafficKindName(traffic.kind));
        cfg.set("traffic_load", strprintf("%g", traffic.load));
        cfg.set("on_slots", strprintf("%g", traffic.onSlots));
        cfg.set("off_slots", strprintf("%g", traffic.offSlots));
        cfg.set("queue_limit", strprintf("%d", traffic.queueLimit));
        cfg.set("scheduler",
                mac::schedulerKindName(scheduler.kind));
        cfg.set("pf_horizon",
                strprintf("%g", scheduler.pfHorizonSlots));
        cfg.set("engine", engine);
        cfg.set("qdisc", mac::qdiscKindName(traffic.qdisc));
        cfg.set("control_rate",
                strprintf("%g", traffic.controlRate));
        cfg.set("contention",
                mac::contentionModeName(scheduler.contention));
        cfg.set("mobility", mobilityModelName(mobility.model));
        cfg.set("speed_mps", strprintf("%g", mobility.speedMps));
        cfg.set("handover_hyst_db",
                strprintf("%g", mobility.handoverHystDb));
        cfg.set("handover_ttt_slots",
                strprintf("%llu",
                          static_cast<unsigned long long>(
                              mobility.handoverTttSlots)));
        cfg.set("churn_rate",
                strprintf("%g", mobility.churnRate));
        if (checkpoint.enabled()) {
            cfg.set("checkpoint_file", checkpoint.file);
            if (checkpoint.everySlots)
                cfg.set("checkpoint_every",
                        strprintf("%llu",
                                  static_cast<unsigned long long>(
                                      checkpoint.everySlots)));
            if (checkpoint.resume)
                cfg.set("checkpoint_resume", "true");
        }
    }
    cfg.set("trace", trace ? "true" : "false");
    const li::Config link_cfg = link.toConfig();
    for (const auto &kv : link_cfg.entries())
        cfg.set("link." + kv.first, kv.second);
    return cfg;
}

std::string
NetworkSpec::fingerprint() const
{
    // The canonical sorted key=value rendering of toConfig(), minus
    // the keys that do not shape the slot-by-slot dynamics (see the
    // header). li::Config::entries() iterates a sorted map, so the
    // string is independent of how the spec was built.
    std::string out;
    const li::Config cfg = toConfig();
    for (const auto &kv : cfg.entries()) {
        const std::string &key = kv.first;
        if (key == "engine" || key == "reps" ||
            key.rfind("checkpoint_", 0) == 0)
            continue;
        if (!out.empty())
            out += ',';
        out += key;
        out += '=';
        out += kv.second;
    }
    return out;
}

namespace {

/** Shared base of the built-in cell presets. */
NetworkSpec
baseCell()
{
    NetworkSpec s;
    s.link.rate = 2; // QPSK 1/2 start, room to adapt both ways
    s.link.payloadBits = 1000;
    s.link.channelCfg = li::Config::fromString("snr_db=14");
    s.snrSpreadDb = 6.0;
    return s;
}

PresetRegistry<NetworkSpec> &
networkRegistry()
{
    static PresetRegistry<NetworkSpec> reg = [] {
        PresetRegistry<NetworkSpec> r("network");
        r.add("cell-16", [] {
            NetworkSpec s = baseCell();
            s.name = "cell-16";
            return s;
        });
        r.add("cell-dense", [] {
            // Many bursty users contending for the same timeline.
            NetworkSpec s = baseCell();
            s.name = "cell-dense";
            s.numUsers = 64;
            s.arrivalModel = "bernoulli";
            s.arrivalProb = 0.5;
            return s;
        });
        r.add("cell-mobile", [] {
            // Fast fading: adaptation and ARQ chase a 120 Hz
            // channel.
            NetworkSpec s = baseCell();
            s.name = "cell-mobile";
            s.dopplerHz = 120.0;
            return s;
        });
        r.add("cell-stopwait", [] {
            // Stop-and-wait baseline for the ARQ-mode comparison.
            NetworkSpec s = baseCell();
            s.name = "cell-stopwait";
            s.arqMode = mac::ArqMode::StopAndWait;
            s.ackDelaySlots = 2;
            return s;
        });
        r.add("cell-1k", [] {
            // The scale step: a thousand users on the calibrated
            // analytic fast path (full PHY here would cost ~1000x
            // a cell-16 run).
            NetworkSpec s = baseCell();
            s.name = "cell-1k";
            s.numUsers = 1024;
            s.fidelity.mode = FidelityMode::Analytic;
            return s;
        });
        r.add("dense-analytic", [] {
            // cell-dense's bursty contention at analytic cost.
            NetworkSpec s = baseCell();
            s.name = "dense-analytic";
            s.numUsers = 256;
            s.arrivalModel = "bernoulli";
            s.arrivalProb = 0.5;
            s.fidelity.mode = FidelityMode::Analytic;
            return s;
        });
        r.add("cell-auto", [] {
            // Mixed fidelity: bit-exact warm-up + periodic refresh,
            // analytic in between.
            NetworkSpec s = baseCell();
            s.name = "cell-auto";
            s.fidelity.mode = FidelityMode::Auto;
            return s;
        });
        r.add("grid-3x3", [] {
            // The multi-cell starter: 9 cells, 4 users each,
            // Poisson traffic through round-robin scheduling, SINR
            // from same-slot interfering cells, analytic fidelity
            // off the committed calibration table (run from the
            // repo root, or override calibration_file=).
            NetworkSpec s = baseCell();
            s.name = "grid-3x3";
            s.numUsers = 36;
            s.topology.rows = 3;
            s.topology.cols = 3;
            s.topology.cellSpacingM = 500.0;
            s.topology.cellRadiusM = 250.0;
            // 4 users/cell at 0.2 frames/slot offers ~0.8 of the
            // one-grant-per-slot cell capacity: busy but stable.
            s.traffic.kind = mac::TrafficKind::Poisson;
            s.traffic.load = 0.2;
            s.scheduler.kind = mac::SchedulerKind::RoundRobin;
            s.fidelity.mode = FidelityMode::Analytic;
            s.calibrationFile = "data/network_calibration.txt";
            return s;
        });
        r.add("dense-urban-10k", [] {
            // The deployment-scale step: a 10x10 urban grid with
            // 10k+ bursty users under proportional-fair
            // scheduling, only reachable on the calibrated
            // analytic rung (full PHY here would cost ~3 orders
            // of magnitude more per slot).
            NetworkSpec s = baseCell();
            s.name = "dense-urban-10k";
            s.numUsers = 10240;
            s.topology.rows = 10;
            s.topology.cols = 10;
            s.topology.cellSpacingM = 200.0;
            s.topology.cellRadiusM = 100.0;
            s.topology.minDistanceM = 10.0;
            s.topology.pathloss.refSnrDb = 44.0;
            s.topology.pathloss.exponent = 3.8;
            s.topology.pathloss.shadowSigmaDb = 8.0;
            s.dopplerHz = 10.0; // pedestrian mobility
            // ~102 users/cell with a 25% ON duty cycle at 0.04
            // frames/slot while ON offers ~1.02x each cell's
            // one-grant-per-slot capacity: bursts queue and drain,
            // the congested-but-live regime dense urban means.
            s.traffic.kind = mac::TrafficKind::OnOff;
            s.traffic.load = 0.04;
            s.traffic.onSlots = 24.0;
            s.traffic.offSlots = 72.0;
            s.scheduler.kind = mac::SchedulerKind::ProportionalFair;
            s.fidelity.mode = FidelityMode::Analytic;
            s.calibrationFile = "data/network_calibration.txt";
            return s;
        });
        r.add("urban-mobile", [] {
            // The mobility showcase: vehicular users random-
            // waypointing across a tight 4x4 grid with RSRP
            // handover and session churn. The cells are small and
            // the users fast (30 m/s over 150 m spacing) so a few
            // thousand 2 ms slots cover enough ground for real
            // handover activity; hysteresis 2 dB with ~one-epoch
            // time-to-trigger keeps ping-pong visible but bounded.
            NetworkSpec s = baseCell();
            s.name = "urban-mobile";
            s.numUsers = 96;
            s.topology.rows = 4;
            s.topology.cols = 4;
            s.topology.cellSpacingM = 150.0;
            s.topology.cellRadiusM = 75.0;
            s.topology.minDistanceM = 5.0;
            // Small cells need less mast power; 47 dB ref SNR puts
            // the near/far link-budget window exactly on the
            // committed calibration table's [-10, 28] dB span
            // (edge mean ~16 dB, so handover still trades real
            // throughput).
            s.topology.pathloss.refSnrDb = 47.0;
            s.dopplerHz = 60.0; // vehicular fading
            s.traffic.kind = mac::TrafficKind::Poisson;
            s.traffic.load = 0.15;
            s.scheduler.kind = mac::SchedulerKind::RoundRobin;
            s.fidelity.mode = FidelityMode::Analytic;
            s.calibrationFile = "data/network_calibration.txt";
            s.mobility.model = MobilityModel::Waypoint;
            s.mobility.speedMps = 30.0;
            s.mobility.handoverHystDb = 2.0;
            s.mobility.handoverTttSlots = 100;
            // Mean dwell 1/rate = 2000 slots: about one session
            // transition per user over a standard smoke run.
            s.mobility.churnRate = 0.0005;
            return s;
        });
        return r;
    }();
    return reg;
}

} // namespace

void
registerNetworkPreset(const std::string &name,
                      NetworkSpec (*factory)())
{
    networkRegistry().add(name, factory);
}

NetworkSpec
networkPreset(const std::string &name)
{
    return networkRegistry().create(name);
}

bool
hasNetworkPreset(const std::string &name)
{
    return networkRegistry().has(name);
}

std::vector<std::string>
networkPresetNames()
{
    return networkRegistry().names();
}

// ------------------------------------------------ spec arguments

namespace {

/**
 * The shared grammar of parseScenarioSpecArg() /
 * parseNetworkSpecArg(); Spec supplies applyConfig() and the two
 * preset hooks.
 */
template <typename Spec>
Spec
parseSpecArgImpl(const std::string &arg, const Spec &defaults,
                 bool (*has_preset)(const std::string &),
                 Spec (*make_preset)(const std::string &))
{
    // Apply @p cfg on top of the defaults, honoring its preset=
    // base if named (config files and inline strings share this).
    const auto apply = [&](const li::Config &cfg) {
        Spec s = defaults;
        if (cfg.has("preset")) {
            s = make_preset(cfg.getString("preset"));
            li::Config rest;
            for (const auto &kv : cfg.entries())
                if (kv.first != "preset")
                    rest.set(kv.first, kv.second);
            s.applyConfig(rest);
        } else {
            s.applyConfig(cfg);
        }
        return s;
    };

    const size_t comma = arg.find(',');
    const std::string head = arg.substr(0, comma);
    if (head.find('=') == std::string::npos) {
        if (comma == std::string::npos && !has_preset(head))
            return apply(li::Config::fromFile(head));
        // A preset head (fatal with the known names if unknown),
        // optionally with k=v overrides appended.
        Spec s = make_preset(head);
        if (comma != std::string::npos)
            s.applyConfig(
                li::Config::fromString(arg.substr(comma + 1)));
        return s;
    }
    return apply(li::Config::fromString(arg));
}

} // namespace

ScenarioSpec
parseScenarioSpecArg(const std::string &arg,
                     const ScenarioSpec &defaults)
{
    return parseSpecArgImpl(arg, defaults, hasScenarioPreset,
                            scenarioPreset);
}

NetworkSpec
parseNetworkSpecArg(const std::string &arg,
                    const NetworkSpec &defaults)
{
    return parseSpecArgImpl(arg, defaults, hasNetworkPreset,
                            networkPreset);
}

} // namespace sim
} // namespace wilis
