#include "sim/scenario.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "sim/testbench.hh"

namespace wilis {
namespace sim {

ScenarioSpec
ScenarioSpec::withRate(phy::RateIndex r) const
{
    ScenarioSpec s = *this;
    s.rate = r;
    return s;
}

ScenarioSpec
ScenarioSpec::withChannel(const std::string &name_) const
{
    ScenarioSpec s = *this;
    s.channel = name_;
    return s;
}

ScenarioSpec
ScenarioSpec::withSnrDb(double snr_db) const
{
    ScenarioSpec s = *this;
    s.channelCfg.set("snr_db", strprintf("%g", snr_db));
    return s;
}

ScenarioSpec
ScenarioSpec::withPayloadBits(size_t bits) const
{
    ScenarioSpec s = *this;
    s.payloadBits = bits;
    return s;
}

ScenarioSpec
ScenarioSpec::withChannelSeed(std::uint64_t seed) const
{
    ScenarioSpec s = *this;
    s.channelCfg.set("seed",
                     strprintf("%llu",
                               static_cast<unsigned long long>(seed)));
    return s;
}

double
ScenarioSpec::snrDb() const
{
    return channelCfg.getDouble("snr_db", 10.0);
}

std::string
ScenarioSpec::label() const
{
    return strprintf("r%d/%s/snr%g/p%zu", rate, channel.c_str(),
                     snrDb(), payloadBits);
}

TestbenchConfig
ScenarioSpec::testbench() const
{
    TestbenchConfig cfg;
    cfg.rate = rate;
    cfg.rx = rx;
    cfg.channel = channel;
    cfg.channelCfg = channelCfg;
    cfg.payloadSeed = payloadSeed;
    return cfg;
}

ScenarioSpec
ScenarioSpec::fromTestbench(const TestbenchConfig &cfg,
                            size_t payload_bits)
{
    ScenarioSpec s;
    s.rate = cfg.rate;
    s.rx = cfg.rx;
    s.channel = cfg.channel;
    s.channelCfg = cfg.channelCfg;
    s.payloadSeed = cfg.payloadSeed;
    s.payloadBits = payload_bits;
    return s;
}

void
ScenarioSpec::applyConfig(const li::Config &cfg)
{
    name = cfg.getString("name", name);
    rate = static_cast<phy::RateIndex>(cfg.getInt("rate", rate));
    wilis_assert(rate >= 0 && rate < phy::kNumRates,
                 "rate index %d out of range", rate);
    channel = cfg.getString("channel", channel);
    payloadBits = static_cast<size_t>(
        cfg.getInt("payload_bits", static_cast<long>(payloadBits)));
    payloadSeed = cfg.getUint64("payload_seed", payloadSeed);
    rx.decoder = cfg.getString("decoder", rx.decoder);
    rx.demapper.softWidth = static_cast<int>(
        cfg.getInt("soft_width", rx.demapper.softWidth));
    rx.applyCsiWeight = cfg.getBool("csi_weight", rx.applyCsiWeight);
    rx.scramblerSeed = static_cast<std::uint8_t>(
        cfg.getInt("scrambler_seed", rx.scramblerSeed));
    clocks.basebandMhz =
        cfg.getDouble("baseband_mhz", clocks.basebandMhz);
    clocks.decoderMhz =
        cfg.getDouble("decoder_mhz", clocks.decoderMhz);
    clocks.hostMhz = cfg.getDouble("host_mhz", clocks.hostMhz);

    for (const auto &kv : cfg.entries()) {
        const std::string &key = kv.first;
        if (key.rfind("channel.", 0) == 0)
            channelCfg.set(key.substr(8), kv.second);
        else if (key.rfind("decoder.", 0) == 0)
            rx.decoderCfg.set(key.substr(8), kv.second);
        else if (key == "snr_db" || key == "seed")
            channelCfg.set(key, kv.second);
    }
}

ScenarioSpec
ScenarioSpec::fromConfig(const li::Config &cfg)
{
    ScenarioSpec s;
    s.applyConfig(cfg);
    return s;
}

li::Config
ScenarioSpec::toConfig() const
{
    li::Config cfg;
    cfg.set("name", name);
    cfg.set("rate", strprintf("%d", rate));
    cfg.set("channel", channel);
    cfg.set("payload_bits", strprintf("%zu", payloadBits));
    cfg.set("payload_seed",
            strprintf("%llu",
                      static_cast<unsigned long long>(payloadSeed)));
    cfg.set("decoder", rx.decoder);
    cfg.set("soft_width", strprintf("%d", rx.demapper.softWidth));
    cfg.set("csi_weight", rx.applyCsiWeight ? "true" : "false");
    cfg.set("scrambler_seed", strprintf("%d", rx.scramblerSeed));
    cfg.set("baseband_mhz", strprintf("%g", clocks.basebandMhz));
    cfg.set("decoder_mhz", strprintf("%g", clocks.decoderMhz));
    cfg.set("host_mhz", strprintf("%g", clocks.hostMhz));
    for (const auto &kv : channelCfg.entries())
        cfg.set("channel." + kv.first, kv.second);
    for (const auto &kv : rx.decoderCfg.entries())
        cfg.set("decoder." + kv.first, kv.second);
    return cfg;
}

// ------------------------------------------------------ presets

namespace {

using PresetFactory = ScenarioSpec (*)();

std::map<std::string, PresetFactory> &
presetMap()
{
    static std::map<std::string, PresetFactory> presets;
    return presets;
}

const bool builtin_presets = [] {
    auto &m = presetMap();
    m["awgn-mid"] = [] {
        ScenarioSpec s;
        s.name = "awgn-mid";
        s.channel = "awgn";
        s.channelCfg = li::Config::fromString("snr_db=10");
        return s;
    };
    m["awgn-clean"] = [] {
        ScenarioSpec s;
        s.name = "awgn-clean";
        s.channel = "awgn";
        s.channelCfg = li::Config::fromString("snr_db=30");
        return s;
    };
    m["rayleigh-fading"] = [] {
        // The Figure 7 SoftRate setting: 20 Hz fading, 10 dB AWGN.
        ScenarioSpec s;
        s.name = "rayleigh-fading";
        s.channel = "rayleigh";
        s.channelCfg =
            li::Config::fromString("snr_db=10,doppler_hz=20");
        return s;
    };
    m["multipath-selective"] = [] {
        ScenarioSpec s;
        s.name = "multipath-selective";
        s.channel = "multipath";
        s.channelCfg = li::Config::fromString(
            "snr_db=15,num_taps=4,delay_spread=3");
        s.rx.applyCsiWeight = true;
        return s;
    };
    m["interference-tone"] = [] {
        ScenarioSpec s;
        s.name = "interference-tone";
        s.channel = "interference";
        s.channelCfg =
            li::Config::fromString("snr_db=15,sir_db=10");
        return s;
    };
    return true;
}();

} // namespace

void
registerScenarioPreset(const std::string &name, PresetFactory factory)
{
    (void)builtin_presets;
    wilis_assert(!presetMap().count(name),
                 "duplicate scenario preset '%s'", name.c_str());
    presetMap()[name] = factory;
}

ScenarioSpec
scenarioPreset(const std::string &name)
{
    (void)builtin_presets;
    auto it = presetMap().find(name);
    if (it == presetMap().end()) {
        std::string known;
        for (const auto &kv : presetMap()) {
            if (!known.empty())
                known += ", ";
            known += kv.first;
        }
        wilis_fatal("no scenario preset '%s' (known: %s)",
                    name.c_str(), known.c_str());
    }
    return it->second();
}

bool
hasScenarioPreset(const std::string &name)
{
    (void)builtin_presets;
    return presetMap().count(name) > 0;
}

std::vector<std::string>
scenarioPresetNames()
{
    (void)builtin_presets;
    std::vector<std::string> names;
    for (const auto &kv : presetMap())
        names.push_back(kv.first);
    return names;
}

} // namespace sim
} // namespace wilis
