/**
 * @file
 * Scenario-grid sweeps: the cartesian product of rate x channel x
 * SNR x payload axes over a base ScenarioSpec, sharded across a
 * worker pool cell by cell. Each worker owns a per-cell Testbench
 * (and with it a private frame arena), so the grid runs allocation-
 * free in steady state and workers never share mutable state.
 *
 * Determinism: cell seeds are derived from (grid seed, cell index)
 * through the counter-based generator and every per-packet stream is
 * keyed by the packet index, so a grid produces bit-identical
 * CellResults for any thread count and any cell execution order --
 * the property that makes large sweeps replayable and shardable
 * across machines (disjoint cell ranges compose trivially).
 */

#ifndef WILIS_SIM_SCENARIO_GRID_HH
#define WILIS_SIM_SCENARIO_GRID_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/scenario.hh"

namespace wilis {
namespace sim {

/** Cartesian grid of scenarios over a base spec. */
struct ScenarioGrid {
    /** Template for every cell (axes override its fields). */
    ScenarioSpec base;

    /** Rate axis; empty = {base.rate}. */
    std::vector<phy::RateIndex> rates;
    /** Channel-name axis; empty = {base.channel}. */
    std::vector<std::string> channels;
    /** SNR axis in dB; empty = {base's snr_db}. */
    std::vector<double> snrsDb;
    /** Payload axis in bits; empty = {base.payloadBits}. */
    std::vector<size_t> payloads;

    /**
     * Grid seed: every cell derives its channel and payload seeds
     * from (seed, cell index), so distinct cells see independent --
     * but replayable -- noise and payload streams.
     */
    std::uint64_t seed = 0xC0FFEE;

    /** Number of cells in the grid. */
    size_t cellCount() const;

    /** Fully resolved spec for cell @p index (0..cellCount()-1). */
    ScenarioSpec cell(size_t index) const;
};

/** Aggregated result of one grid cell. */
struct CellResult {
    /** Index of this cell within the grid. */
    size_t cellIndex = 0;
    /** The fully resolved scenario the cell ran. */
    ScenarioSpec spec;
    /** Payload bit errors over the cell's packets. */
    ErrorStats bits;
    /** Packets run. */
    std::uint64_t packets = 0;
    /** Packets with at least one bit error. */
    std::uint64_t packetErrors = 0;

    /** Observed packet error rate. */
    double
    per() const
    {
        return packets ? static_cast<double>(packetErrors) /
                             static_cast<double>(packets)
                       : 0.0;
    }
};

/** Options for sweepGrid(). */
struct GridSweepOptions {
    /** Packets per cell. */
    std::uint64_t packetsPerCell = 100;
    /** Worker threads (0 = hardware concurrency). */
    int threads = 0;
    /**
     * Process-level sharding: only cells with
     * index % shardCount == shardIndex run (round-robin, the
     * campaign layer's unit assignment). Each cell is a pure
     * function of (grid seed, cell index), so disjoint shards
     * compose into exactly the unsharded result.
     */
    int shardIndex = 0;
    /** Total shards (1 = run everything). */
    int shardCount = 1;
    /**
     * Optional progress hook, called after each finished cell from
     * worker threads (must be thread-safe). Cells finish out of
     * order; the returned vector is always in cell order.
     */
    std::function<void(const CellResult &)> onCell;
};

/**
 * Run this shard's cells of @p grid for opt.packetsPerCell packets
 * and return their aggregates in cell order (all cells with the
 * default 1-shard options). Cells are sharded dynamically across
 * the pool; results are independent of the thread count.
 */
std::vector<CellResult> sweepGrid(const ScenarioGrid &grid,
                                  const GridSweepOptions &opt);

} // namespace sim
} // namespace wilis

#endif // WILIS_SIM_SCENARIO_GRID_HH
