/**
 * @file
 * Model of the FPGA <-> host communication link that LEAP virtualizes
 * (section 2 "FPGA Virtualization", section 3: an FSB link with
 * bandwidth in excess of 700 MB/s). Transfers pay a fixed per-
 * transfer overhead plus a bandwidth-proportional cost, which is why
 * the latency-insensitive "large, pipelined transfers" of section 2
 * buy about an order of magnitude of throughput over lock-step
 * per-datum exchanges.
 */

#ifndef WILIS_PLATFORM_LINK_HH
#define WILIS_PLATFORM_LINK_HH

#include <cstdint>

#include "li/config.hh"

namespace wilis {
namespace platform {

/** Bandwidth/overhead model of one link direction. */
class LinkModel
{
  public:
    /** Link parameters. */
    struct Params {
        /** Sustained bandwidth in MB/s (paper: >700 for FSB). */
        double bandwidthMBps = 700.0;
        /**
         * Fixed cost per transfer in microseconds (driver call,
         * doorbell, DMA setup).
         */
        double perTransferOverheadUs = 20.0;
    };

    LinkModel() : LinkModel(Params()) {}
    explicit LinkModel(const Params &p) : params(p) {}

    /** Construct from config keys bandwidth_mbps / overhead_us. */
    explicit LinkModel(const li::Config &cfg);

    /** Modeled duration of one transfer of @p bytes, microseconds. */
    double transferUs(std::uint64_t bytes) const;

    /**
     * Effective streaming bandwidth in MB/s when data moves in
     * @p batch_bytes chunks.
     */
    double effectiveBandwidthMBps(std::uint64_t batch_bytes) const;

    /** Account a transfer (accumulates statistics). */
    void record(std::uint64_t bytes);

    /** Total bytes moved. */
    std::uint64_t totalBytes() const { return total_bytes; }
    /** Total transfers made. */
    std::uint64_t totalTransfers() const { return total_transfers; }
    /** Total modeled busy time in microseconds. */
    double busyUs() const { return busy_us; }

    /** Raw parameters. */
    const Params &config() const { return params; }

  private:
    Params params;
    std::uint64_t total_bytes = 0;
    std::uint64_t total_transfers = 0;
    double busy_us = 0.0;
};

} // namespace platform
} // namespace wilis

#endif // WILIS_PLATFORM_LINK_HH
