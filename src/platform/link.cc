#include "platform/link.hh"

#include "common/logging.hh"

namespace wilis {
namespace platform {

LinkModel::LinkModel(const li::Config &cfg)
    : LinkModel(Params{cfg.getDouble("bandwidth_mbps", 700.0),
                       cfg.getDouble("overhead_us", 20.0)})
{
    wilis_assert(params.bandwidthMBps > 0.0,
                 "link bandwidth must be positive");
}

double
LinkModel::transferUs(std::uint64_t bytes) const
{
    return params.perTransferOverheadUs +
           static_cast<double>(bytes) / params.bandwidthMBps;
}

double
LinkModel::effectiveBandwidthMBps(std::uint64_t batch_bytes) const
{
    if (batch_bytes == 0)
        return 0.0;
    return static_cast<double>(batch_bytes) / transferUs(batch_bytes);
}

void
LinkModel::record(std::uint64_t bytes)
{
    total_bytes += bytes;
    ++total_transfers;
    busy_us += transferUs(bytes);
}

} // namespace platform
} // namespace wilis
