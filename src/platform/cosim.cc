#include "platform/cosim.hh"

#include <algorithm>
#include <chrono>

#include "channel/channel.hh"
#include "common/logging.hh"

namespace wilis {
namespace platform {

double
CosimModel::lineRateFraction() const
{
    // Per-stage speeds normalized to the 20 Msample/s line rate.
    double fpga = fpgaClockMhz * samplesPerCycle / kLineSampleMsps;
    double sw = swChannelMsps / kLineSampleMsps;
    LinkModel link_model(link);
    double link_msps =
        link_model.effectiveBandwidthMBps(
            batchSamples * static_cast<std::uint64_t>(bytesPerSample)) /
        static_cast<double>(bytesPerSample);
    double lnk = link_msps / kLineSampleMsps;
    return std::min({fpga, sw, lnk});
}

double
CosimModel::simSpeedMbps(const phy::RateParams &rate) const
{
    return rate.lineRateMbps * lineRateFraction();
}

double
CosimModel::linkUtilizationMBps() const
{
    // One direction: achieved sample rate times wire bytes/sample.
    return lineRateFraction() * kLineSampleMsps *
           static_cast<double>(bytesPerSample);
}

CosimDriver::CosimDriver(const sim::TestbenchConfig &tb_cfg,
                         const Params &p)
    : tb(tb_cfg), params(p)
{
    wilis_assert(params.batchSamples >= 1, "batch must be >= 1");
}

CosimRunStats
CosimDriver::run(size_t payload_bits, std::uint64_t num_packets)
{
    CosimRunStats stats;
    LinkModel to_sw(params.link);
    LinkModel to_hw(params.link);

    const double fpga_us_per_sample =
        1.0 / params.fpgaClockMhz; // 1 sample per cycle
    const double sw_us_per_sample = 1.0 / params.swChannelMsps;
    const int bytes_per_sample = 8;

    double lockstep_wall = 0.0;

    for (std::uint64_t p = 0; p < num_packets; ++p) {
        // Hardware partition: modulate (TX pipeline on the FPGA).
        BitVec payload = tb.makePayload(payload_bits, p);
        SampleVec samples = tb.tx().modulate(payload);
        const std::uint64_t n = samples.size();
        stats.samples += n;
        stats.payloadBits += payload_bits;
        stats.hwUs += 2.0 * static_cast<double>(n) *
                      fpga_us_per_sample; // TX + RX pipelines

        // Move TX samples to the software channel and back in
        // batches, applying impairments in software.
        for (std::uint64_t off = 0; off < n;
             off += params.batchSamples) {
            std::uint64_t len =
                std::min<std::uint64_t>(params.batchSamples, n - off);
            std::uint64_t bytes =
                len * static_cast<std::uint64_t>(bytes_per_sample);
            to_sw.record(bytes);
            to_hw.record(bytes);
            stats.transfers += 2;
            double sw_cost =
                static_cast<double>(len) * sw_us_per_sample;
            stats.swUs += sw_cost;
            if (!params.decoupled) {
                // Lock-step: the round trip serializes with the
                // hardware and software processing of this batch.
                lockstep_wall += to_sw.transferUs(bytes) +
                                 to_hw.transferUs(bytes) + sw_cost +
                                 2.0 * static_cast<double>(len) *
                                     fpga_us_per_sample;
            }
        }
        tb.channel().apply(samples, p);

        // Hardware partition: demodulate (RX pipeline on the FPGA).
        phy::RxResult res = tb.rx().demodulate(
            samples, payload_bits, &tb.channel(), p);
        (void)res;
    }

    stats.linkUs = to_sw.busyUs() + to_hw.busyUs();
    if (params.decoupled) {
        // Latency-insensitive pipelining overlaps the three agents;
        // wall time is the slowest one.
        stats.wallUs =
            std::max({stats.hwUs, stats.swUs, stats.linkUs});
    } else {
        stats.wallUs = lockstep_wall;
    }
    return stats;
}

double
measureChannelThroughputMsps(const std::string &channel_name,
                             const li::Config &channel_cfg,
                             double seconds)
{
    auto chan = channel::makeChannel(channel_name, channel_cfg);
    SampleVec buf(1 << 15, Sample(1.0, 0.0));

    // Wall-clock measurement is this helper's entire job: it only
    // feeds bench/abl_channel_threads' throughput report, never a
    // simulation decision, so the determinism ban does not apply.
    using clock =
        std::chrono::steady_clock; // wilis-lint: allow(banned-call)

    auto start = clock::now();
    std::uint64_t samples = 0;
    std::uint64_t packet = 0;
    for (;;) {
        chan->apply(buf, packet++);
        samples += buf.size();
        double elapsed =
            std::chrono::duration<double>(clock::now() - start)
                .count();
        if (elapsed >= seconds)
            return static_cast<double>(samples) / elapsed / 1e6;
    }
}

} // namespace platform
} // namespace wilis
