/**
 * @file
 * Co-simulation performance model and driver.
 *
 * CosimModel is the analytic throughput model behind Figure 2: the
 * achievable simulation speed for a rate is the line rate scaled by
 * the tightest bottleneck among the FPGA pipeline clock, the
 * software channel's sample throughput, and the link. In the paper's
 * configuration the software channel (AWGN noise generation on a
 * quad-core Xeon) is the bottleneck at ~1/3 of the 20 Msample/s line
 * sample rate, using ~55 MB/s of the 700 MB/s link.
 *
 * CosimDriver actually runs a partitioned simulation -- "hardware"
 * transceiver and "software" channel exchanging sample batches
 * through a LinkModel -- and accounts modeled time in both the
 * decoupled (latency-insensitive, overlapped) and lock-step (SCE-MI
 * style, serialized) disciplines, which is the section 2 / section 5
 * batching ablation.
 */

#ifndef WILIS_PLATFORM_COSIM_HH
#define WILIS_PLATFORM_COSIM_HH

#include <cstdint>

#include "phy/modulation.hh"
#include "platform/link.hh"
#include "sim/testbench.hh"

namespace wilis {
namespace platform {

/** Analytic Figure 2 model. */
struct CosimModel {
    /** Baseband pipeline clock (section 3: 35 MHz). */
    double fpgaClockMhz = 35.0;
    /** Samples consumed per FPGA cycle (streaming pipeline). */
    double samplesPerCycle = 1.0;
    /** Software channel throughput in Msamples/s. */
    double swChannelMsps = 6.9;
    /** Link model (one direction). */
    LinkModel::Params link;
    /** Samples per link transfer batch. */
    std::uint64_t batchSamples = 4096;
    /** Bytes per complex sample on the wire. */
    int bytesPerSample = 8;

    /** 802.11a/g line sample rate (20 MHz channelization). */
    static constexpr double kLineSampleMsps = 20.0;

    /** Simulated data throughput for @p rate in Mb/s. */
    double simSpeedMbps(const phy::RateParams &rate) const;

    /** Fraction of line rate achieved (same for all rates). */
    double lineRateFraction() const;

    /** One-direction link bandwidth used, MB/s. */
    double linkUtilizationMBps() const;
};

/** Result of one CosimDriver run. */
struct CosimRunStats {
    /** Payload bits simulated. */
    std::uint64_t payloadBits = 0;
    /** Channel samples moved in each direction. */
    std::uint64_t samples = 0;
    /** Link transfers performed. */
    std::uint64_t transfers = 0;
    /** Modeled FPGA busy time, us. */
    double hwUs = 0.0;
    /** Modeled software-channel busy time, us. */
    double swUs = 0.0;
    /** Modeled link busy time (both directions), us. */
    double linkUs = 0.0;
    /**
     * Modeled wall time, us: max of the components when decoupled
     * (LI batching overlaps them), sum when lock-step.
     */
    double wallUs = 0.0;

    /** Simulated throughput in Mb/s. */
    double
    simSpeedMbps() const
    {
        return wallUs > 0.0
                   ? static_cast<double>(payloadBits) / wallUs
                   : 0.0;
    }
};

/** Partitioned co-simulation driver. */
class CosimDriver
{
  public:
    /** Driver configuration. */
    struct Params {
        /** Samples per link batch (1 symbol = lock-step-ish). */
        std::uint64_t batchSamples = 4096;
        /**
         * true: latency-insensitive discipline -- large pipelined
         * transfers, components overlap (wall = max). false:
         * lock-step discipline -- each batch is a synchronous round
         * trip (wall = sum of per-batch costs).
         */
        bool decoupled = true;
        /** FPGA clock for the hardware partition. */
        double fpgaClockMhz = 35.0;
        /** Link parameters. */
        LinkModel::Params link;
        /** Measured software channel throughput (Msamples/s). */
        double swChannelMsps = 6.9;
    };

    CosimDriver(const sim::TestbenchConfig &tb_cfg, const Params &p);

    /**
     * Run @p num_packets packets of @p payload_bits end to end,
     * moving samples through the modeled link, and return the time
     * accounting.
     */
    CosimRunStats run(size_t payload_bits, std::uint64_t num_packets);

  private:
    sim::Testbench tb;
    Params params;
};

/**
 * Measure this host's software channel throughput in Msamples/s
 * (noise generation + fading application on @p threads threads).
 */
double measureChannelThroughputMsps(const std::string &channel_name,
                                    const li::Config &channel_cfg,
                                    double seconds = 0.3);

} // namespace platform
} // namespace wilis

#endif // WILIS_PLATFORM_COSIM_HH
