/**
 * @file
 * System-level LI pipeline tests: the streaming multi-clock
 * transceiver must be bit-exact against the batch kernel path (the
 * WiLIS "same source, both execution styles" property), sustain the
 * expected streaming throughput, and produce identical results under
 * any clock assignment.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.hh"
#include "sim/li_transceiver.hh"
#include "sim/testbench.hh"

using namespace wilis;
using namespace wilis::sim;

namespace {

BitVec
randomPayload(size_t n, std::uint64_t seed)
{
    SplitMix64 rng(seed);
    BitVec v(n);
    for (auto &b : v)
        b = rng.nextBit();
    return v;
}

} // namespace

class LiTransceiverMatrix
    : public ::testing::TestWithParam<std::tuple<int, const char *>>
{};

INSTANTIATE_TEST_SUITE_P(
    RatesAndDecoders, LiTransceiverMatrix,
    ::testing::Combine(::testing::Values(0, 2, 4, 5, 7),
                       ::testing::Values("viterbi", "sova", "bcjr")));

TEST_P(LiTransceiverMatrix, BitExactAgainstKernelPath)
{
    auto [rate, decoder] = GetParam();

    phy::OfdmReceiver::Config rxc;
    rxc.decoder = decoder;
    li::Config chan_cfg = li::Config::fromString("snr_db=8,seed=77");

    // Batch kernel path.
    TestbenchConfig tb_cfg;
    tb_cfg.rate = rate;
    tb_cfg.rx = rxc;
    tb_cfg.channelCfg = chan_cfg;
    Testbench tb(tb_cfg);

    // Streaming LI path.
    LiTransceiver li_tx(rate, rxc, "awgn", chan_cfg);

    for (std::uint64_t p = 0; p < 3; ++p) {
        BitVec payload = randomPayload(700, 1000 + p);
        PacketResult kernel = tb.runPacketWithPayload(payload, p);
        LiPacketResult streamed = li_tx.runPacket(payload, p);

        ASSERT_EQ(streamed.payload.size(), kernel.rx.payload.size());
        EXPECT_EQ(streamed.payload, kernel.rx.payload)
            << "packet " << p;
        for (size_t i = 0; i < streamed.soft.size(); ++i) {
            ASSERT_EQ(streamed.soft[i].bit, kernel.rx.soft[i].bit)
                << "bit " << i;
            ASSERT_EQ(streamed.soft[i].llr, kernel.rx.soft[i].llr)
                << "hint " << i;
        }
    }
}

TEST(LiTransceiver, BitExactOverFadingChannel)
{
    phy::OfdmReceiver::Config rxc;
    rxc.decoder = "bcjr";
    li::Config chan_cfg = li::Config::fromString(
        "snr_db=12,doppler_hz=20,seed=5");

    TestbenchConfig tb_cfg;
    tb_cfg.rate = 2;
    tb_cfg.rx = rxc;
    tb_cfg.channel = "rayleigh";
    tb_cfg.channelCfg = chan_cfg;
    Testbench tb(tb_cfg);

    LiTransceiver li_tx(2, rxc, "rayleigh", chan_cfg);

    BitVec payload = randomPayload(1000, 9);
    PacketResult kernel = tb.runPacketWithPayload(payload, 4);
    LiPacketResult streamed = li_tx.runPacket(payload, 4);
    EXPECT_EQ(streamed.payload, kernel.rx.payload);
}

TEST(LiTransceiver, CrossDomainSynchronizersInserted)
{
    phy::OfdmReceiver::Config rxc;
    LiTransceiver t(2, rxc, "awgn",
                    li::Config::fromString("snr_db=10,seed=1"));
    // baseband->host, host->baseband, baseband->decoder.
    EXPECT_EQ(t.syncFifoCount(), 3);
}

TEST(LiTransceiver, ResultsInvariantUnderClockAssignment)
{
    // The system-level latency-insensitivity property: change every
    // clock frequency and the decoded packet is bit-identical.
    phy::OfdmReceiver::Config rxc;
    rxc.decoder = "sova";
    li::Config chan_cfg = li::Config::fromString("snr_db=6,seed=3");
    BitVec payload = randomPayload(600, 21);

    LiTransceiverClocks paper; // 35 / 60 / 100
    LiTransceiverClocks swapped;
    swapped.basebandMhz = 60.0;
    swapped.decoderMhz = 35.0;
    swapped.hostMhz = 13.0;
    LiTransceiverClocks odd;
    odd.basebandMhz = 17.3;
    odd.decoderMhz = 91.0;
    odd.hostMhz = 44.4;

    LiTransceiver a(2, rxc, "awgn", chan_cfg, paper);
    LiTransceiver b(2, rxc, "awgn", chan_cfg, swapped);
    LiTransceiver c(2, rxc, "awgn", chan_cfg, odd);

    LiPacketResult ra = a.runPacket(payload, 0);
    LiPacketResult rb = b.runPacket(payload, 0);
    LiPacketResult rc = c.runPacket(payload, 0);
    EXPECT_EQ(ra.payload, rb.payload);
    EXPECT_EQ(ra.payload, rc.payload);
    for (size_t i = 0; i < ra.soft.size(); ++i) {
        ASSERT_EQ(ra.soft[i].llr, rb.soft[i].llr);
        ASSERT_EQ(ra.soft[i].llr, rc.soft[i].llr);
    }
}

TEST(LiTransceiver, StreamingThroughputIsSampleBound)
{
    // The TX front-end streams one sample per baseband cycle (the CP
    // inserter is the 80-cycles-per-symbol stage), so a packet of N
    // samples should take ~N baseband cycles plus pipeline fill, not
    // many multiples of it.
    phy::OfdmReceiver::Config rxc;
    rxc.decoder = "viterbi";
    LiTransceiver t(4, rxc, "awgn",
                    li::Config::fromString("snr_db=20,seed=2"));
    BitVec payload = randomPayload(1704, 3);
    LiPacketResult res = t.runPacket(payload, 0);

    EXPECT_GT(res.basebandCycles,
              res.samples); // can't beat 1 sample/cycle
    EXPECT_LT(res.basebandCycles, 4 * res.samples + 4000)
        << "pipeline lost too much throughput to stalls";
}

TEST(LiTransceiver, DecoderDomainRunsFasterThanBaseband)
{
    // 60 MHz vs 35 MHz: over the same wall-clock run the decoder
    // domain must have ticked ~60/35 times as often.
    phy::OfdmReceiver::Config rxc;
    LiTransceiver t(2, rxc, "awgn",
                    li::Config::fromString("snr_db=10,seed=4"));
    BitVec payload = randomPayload(800, 5);
    LiPacketResult res = t.runPacket(payload, 0);
    double ratio = static_cast<double>(res.decoderCycles) /
                   static_cast<double>(res.basebandCycles);
    EXPECT_NEAR(ratio, 60.0 / 35.0, 0.05);
}

TEST(LiTransceiver, ReusableAcrossPackets)
{
    phy::OfdmReceiver::Config rxc;
    rxc.decoder = "bcjr";
    li::Config chan_cfg = li::Config::fromString("snr_db=30,seed=6");
    LiTransceiver t(4, rxc, "awgn", chan_cfg);
    for (std::uint64_t p = 0; p < 4; ++p) {
        BitVec payload = randomPayload(500 + 100 * p, p);
        LiPacketResult res = t.runPacket(payload, p);
        EXPECT_EQ(res.payload, payload) << "packet " << p;
    }
}
