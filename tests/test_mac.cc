/**
 * @file
 * MAC layer tests: SoftRate controller dynamics, the optimal-rate
 * oracle's replay consistency, ARQ bookkeeping, and PPR flagging.
 */

#include <gtest/gtest.h>

#include "mac/arq.hh"
#include "mac/oracle.hh"
#include "mac/ppr.hh"
#include "mac/softrate.hh"
#include "softphy/llr_ber.hh"

using namespace wilis;
using namespace wilis::mac;

TEST(SoftRate, StepsDownOnHighPber)
{
    SoftRateMac::Config cfg;
    cfg.initialRate = 5;
    SoftRateMac mac(cfg);
    EXPECT_EQ(mac.currentRate(), 5);
    EXPECT_EQ(mac.onFeedback(1e-3), 4);
    EXPECT_EQ(mac.onFeedback(1e-2), 3);
}

TEST(SoftRate, StepsUpOnLowPber)
{
    SoftRateMac::Config cfg;
    cfg.initialRate = 2;
    SoftRateMac mac(cfg);
    EXPECT_EQ(mac.onFeedback(1e-9), 3);
    EXPECT_EQ(mac.onFeedback(1e-8), 4);
}

TEST(SoftRate, HoldsInsideOperatingRange)
{
    SoftRateMac::Config cfg;
    cfg.initialRate = 4;
    SoftRateMac mac(cfg);
    EXPECT_EQ(mac.onFeedback(1e-6), 4); // within [1e-7, 1e-5]
    EXPECT_EQ(mac.onFeedback(5e-6), 4);
    EXPECT_EQ(mac.onFeedback(2e-7), 4);
}

TEST(SoftRate, ClampsAtRateBounds)
{
    SoftRateMac::Config cfg;
    cfg.initialRate = 0;
    SoftRateMac mac(cfg);
    EXPECT_EQ(mac.onFeedback(0.5), 0); // cannot go below 0
    cfg.initialRate = 7;
    SoftRateMac top(cfg);
    EXPECT_EQ(top.onFeedback(1e-12), 7); // cannot exceed 7
}

TEST(SelectionStats, ClassifyAndPercentages)
{
    SelectionStats s;
    s.record(classifySelection(3, 4)); // under
    s.record(classifySelection(4, 4)); // accurate
    s.record(classifySelection(4, 4)); // accurate
    s.record(classifySelection(5, 4)); // over
    EXPECT_EQ(s.total(), 4u);
    EXPECT_DOUBLE_EQ(s.underPct(), 25.0);
    EXPECT_DOUBLE_EQ(s.accuratePct(), 50.0);
    EXPECT_DOUBLE_EQ(s.overPct(), 25.0);
}

TEST(Oracle, HighSnrPrefersTopRateLowSnrPrefersRobust)
{
    sim::TestbenchConfig base;
    base.rx.decoder = "viterbi";

    base.channelCfg = li::Config::fromString("snr_db=35,seed=21");
    RateOracle high(base);
    EXPECT_EQ(high.optimalRate(500, 0), 7);

    base.channelCfg = li::Config::fromString("snr_db=2,seed=21");
    RateOracle low(base);
    int r = low.optimalRate(500, 0);
    EXPECT_GE(r, -1);
    // At 2 dB only the robust low-order modulations survive.
    EXPECT_LE(r, 3);
}

TEST(Oracle, ReplayIsConsistent)
{
    sim::TestbenchConfig base;
    base.rx.decoder = "viterbi";
    base.channelCfg = li::Config::fromString("snr_db=11,seed=4");
    RateOracle oracle(base);
    for (std::uint64_t p = 0; p < 5; ++p)
        EXPECT_EQ(oracle.optimalRate(1000, p),
                  oracle.optimalRate(1000, p))
            << "packet " << p;
}

TEST(Oracle, OptimalRateImpliesSuccessAtThatRateAndBelowIsUsual)
{
    sim::TestbenchConfig base;
    base.rx.decoder = "viterbi";
    base.channelCfg = li::Config::fromString("snr_db=12,seed=8");
    RateOracle oracle(base);
    for (std::uint64_t p = 0; p < 8; ++p) {
        int r = oracle.optimalRate(800, p);
        if (r < 0)
            continue;
        EXPECT_TRUE(oracle.runAtRate(r, 800, p).ok);
        if (r < phy::kNumRates - 1) {
            // By definition every rate above the optimum fails.
            EXPECT_FALSE(oracle.runAtRate(r + 1, 800, p).ok);
        }
    }
}

TEST(Arq, EfficiencyAccounting)
{
    ArqTracker arq(8);
    arq.recordPacket(1000, 1); // delivered first try
    arq.recordPacket(1000, 4); // delivered on 4th attempt
    EXPECT_EQ(arq.packetsSeen(), 2u);
    EXPECT_EQ(arq.packetsLost(), 0u);
    EXPECT_EQ(arq.bitsTransmitted(), 5000u);
    EXPECT_EQ(arq.bitsDelivered(), 2000u);
    EXPECT_DOUBLE_EQ(arq.efficiency(), 0.4);
}

TEST(Arq, LossAfterRetryBudget)
{
    ArqTracker arq(3);
    arq.recordPacket(100, 10); // needs more than 3 attempts
    EXPECT_EQ(arq.packetsLost(), 1u);
    EXPECT_EQ(arq.bitsTransmitted(), 300u);
    EXPECT_EQ(arq.bitsDelivered(), 0u);
}

TEST(Ppr, FlagsLowConfidenceChunksAndCatchesErrors)
{
    softphy::BerEstimator est;
    est.setTable(phy::Modulation::QPSK,
                 softphy::BerTable::fromScale(0.1, 100.0));
    PprPolicy ppr(&est, 1e-3, 4);

    // 12 bits in 3 chunks; chunk 1 has a low-confidence wrong bit.
    std::vector<SoftDecision> soft(12);
    BitVec ref(12, 0);
    for (size_t i = 0; i < 12; ++i) {
        soft[i].bit = 0;
        soft[i].llr = 95.0; // confident
    }
    soft[5].bit = 1; // wrong...
    soft[5].llr = 2.0; // ...and suspicious
    PprOutcome out = ppr.evaluate(phy::Modulation::QPSK, soft, ref);
    EXPECT_EQ(out.totalBits, 12u);
    EXPECT_EQ(out.flaggedBits, 4u); // whole chunk 1
    EXPECT_EQ(out.caughtErrors, 1u);
    EXPECT_EQ(out.missedErrors, 0u);
    EXPECT_TRUE(out.recoverable());
    EXPECT_NEAR(out.retransmitFraction(), 4.0 / 12.0, 1e-12);
}

TEST(Ppr, MissesConfidentErrors)
{
    softphy::BerEstimator est;
    est.setTable(phy::Modulation::QPSK,
                 softphy::BerTable::fromScale(0.1, 100.0));
    PprPolicy ppr(&est, 1e-3, 4);

    std::vector<SoftDecision> soft(8);
    BitVec ref(8, 0);
    for (auto &d : soft) {
        d.bit = 0;
        d.llr = 95.0;
    }
    soft[2].bit = 1; // wrong but confident: a miss
    PprOutcome out = ppr.evaluate(phy::Modulation::QPSK, soft, ref);
    EXPECT_EQ(out.missedErrors, 1u);
    EXPECT_FALSE(out.recoverable());
}
