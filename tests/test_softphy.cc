/**
 * @file
 * SoftPHY tests: eq. 4/5 math, calibrator fitting on synthetic data,
 * the two-level lookup estimator, and end-to-end estimator quality
 * (predicted per-packet BER tracks actual BER).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "sim/testbench.hh"
#include "softphy/ber_estimator.hh"
#include "softphy/calibration.hh"
#include "softphy/llr_ber.hh"
#include "softphy/softphy.hh"

using namespace wilis;
using namespace wilis::softphy;

TEST(LlrBer, Equation4Endpoints)
{
    EXPECT_NEAR(berFromTrueLlr(0.0), 0.5, 1e-12);
    EXPECT_LT(berFromTrueLlr(20.0), 1e-8);
    EXPECT_GT(berFromTrueLlr(-5.0), 0.99);
    // Monotone decreasing.
    for (double l = -5.0; l < 20.0; l += 0.5)
        EXPECT_GT(berFromTrueLlr(l), berFromTrueLlr(l + 0.5));
}

TEST(LlrBer, RoundTrip)
{
    for (double ber : {0.4, 0.1, 1e-3, 1e-6}) {
        EXPECT_NEAR(berFromTrueLlr(trueLlrFromBer(ber)), ber,
                    ber * 1e-9);
    }
}

TEST(LlrBer, Equation5Scaling)
{
    // Doubling the combined scale doubles the effective LLR.
    EXPECT_NEAR(trueLlrFromHint(10.0, 0.5), 5.0, 1e-12);
    EXPECT_NEAR(berFromHint(10.0, 0.5), berFromTrueLlr(5.0), 1e-12);
}

TEST(Calibrator, RecoversSyntheticScale)
{
    // Generate (hint, error) pairs from a known BER(hint) law and
    // verify the fitted scale.
    const double true_scale = 0.031;
    LlrCalibrator cal(600.0, 64);
    SplitMix64 rng(404);
    for (int i = 0; i < 4000000; ++i) {
        double hint = rng.nextDouble() * 500.0;
        double ber = berFromHint(hint, true_scale);
        cal.record(hint, rng.nextDouble() < ber);
    }
    double fit = cal.fitScale();
    EXPECT_NEAR(fit, true_scale, 0.1 * true_scale);
}

TEST(Calibrator, CurveIsLogLinear)
{
    // The measured curve from a synthetic eq. 4 law must be
    // log-linear in the hint (the Figure 5 shape).
    const double scale = 0.05;
    LlrCalibrator cal(400.0, 32);
    SplitMix64 rng(77);
    for (int i = 0; i < 3000000; ++i) {
        double hint = rng.nextDouble() * 390.0;
        cal.record(hint, rng.nextDouble() < berFromHint(hint, scale));
    }
    auto curve = cal.curve();
    ASSERT_GT(curve.size(), 10u);
    // ln(ber) vs llr slope between the first and last bins that have
    // statistically solid error counts ~ -scale.
    size_t lo_i = curve.size();
    size_t hi_i = 0;
    for (size_t i = 0; i < curve.size(); ++i) {
        if (curve[i].errors >= 100) {
            lo_i = std::min(lo_i, i);
            hi_i = std::max(hi_i, i);
        }
    }
    ASSERT_LT(lo_i, hi_i);
    const auto &lo = curve[lo_i];
    const auto &hi = curve[hi_i];
    ASSERT_GT(hi.llr - lo.llr, 50.0);
    double slope = (std::log(hi.ber) - std::log(lo.ber)) /
                   (hi.llr - lo.llr);
    EXPECT_NEAR(slope, -scale, 0.15 * scale);
}

TEST(Calibrator, MergeMatchesSequential)
{
    LlrCalibrator a(100.0, 16);
    LlrCalibrator b(100.0, 16);
    LlrCalibrator whole(100.0, 16);
    SplitMix64 rng(1);
    for (int i = 0; i < 10000; ++i) {
        double hint = rng.nextDouble() * 100.0;
        bool err = rng.nextDouble() < 0.1;
        (i % 2 ? a : b).record(hint, err);
        whole.record(hint, err);
    }
    a.merge(b);
    EXPECT_EQ(a.totalObservations(), whole.totalObservations());
    EXPECT_DOUBLE_EQ(a.fitScale(), whole.fitScale());
}

TEST(BerTable, LookupMatchesFormula)
{
    const double scale = 0.02;
    const double llr_max = 500.0;
    BerTable t = BerTable::fromScale(scale, llr_max);
    for (double hint : {1.0, 50.0, 200.0, 499.0}) {
        EXPECT_NEAR(t.lookup(hint), berFromHint(hint, scale),
                    0.1 * berFromHint(hint, scale) + 1e-9)
            << "hint " << hint;
    }
    // Saturation behaviour, including infinity.
    EXPECT_EQ(t.lookup(1e9), t.lookup(llr_max + 1.0));
    EXPECT_EQ(t.lookup(std::numeric_limits<double>::infinity()),
              t.lookup(llr_max + 1.0));
    EXPECT_NEAR(t.lookup(-3.0), 0.5, 0.01);
}

TEST(BerEstimator, TwoLevelDispatch)
{
    BerEstimator est;
    est.setTable(phy::Modulation::QPSK,
                 BerTable::fromScale(0.1, 100.0));
    est.setTable(phy::Modulation::QAM16,
                 BerTable::fromScale(0.01, 100.0));
    EXPECT_TRUE(est.hasTable(phy::Modulation::QPSK));
    EXPECT_FALSE(est.hasTable(phy::Modulation::QAM64));
    // Same hint, different tables -> different BER.
    double qpsk = est.perBitBer(phy::Modulation::QPSK, 50.0);
    double qam16 = est.perBitBer(phy::Modulation::QAM16, 50.0);
    EXPECT_LT(qpsk, qam16);
}

TEST(BerEstimator, PacketBerIsMeanOfPerBit)
{
    BerEstimator est;
    est.setTable(phy::Modulation::QPSK,
                 BerTable::fromScale(0.05, 200.0));
    std::vector<SoftDecision> soft(4);
    soft[0].llr = 10.0;
    soft[1].llr = 50.0;
    soft[2].llr = 100.0;
    soft[3].llr = 150.0;
    double expect = 0.0;
    for (const auto &d : soft)
        expect += est.perBitBer(phy::Modulation::QPSK, d.llr);
    expect /= 4.0;
    EXPECT_NEAR(est.packetBer(phy::Modulation::QPSK, soft), expect,
                1e-12);
}

TEST(BerEstimatorDeath, MissingTablePanics)
{
    BerEstimator est;
    EXPECT_DEATH(est.perBitBer(phy::Modulation::BPSK, 1.0),
                 "no BER table");
}

TEST(SoftPhyCalibration, MidBandSnrsAreOrdered)
{
    EXPECT_LT(midBandSnrDb(phy::Modulation::BPSK),
              midBandSnrDb(phy::Modulation::QPSK));
    EXPECT_LT(midBandSnrDb(phy::Modulation::QPSK),
              midBandSnrDb(phy::Modulation::QAM16));
    EXPECT_LT(midBandSnrDb(phy::Modulation::QAM16),
              midBandSnrDb(phy::Modulation::QAM64));
}

TEST(SoftPhyCalibration, EndToEndQpskBcjr)
{
    // Calibrate QPSK/BCJR on a small run and check that the fitted
    // scale is positive and the estimator orders confidence
    // sensibly.
    CalibrationSpec spec;
    spec.rx.decoder = "bcjr";
    spec.packets = 40;
    spec.payloadBits = 1000;
    spec.threads = 2;

    BerTable table = calibrateTable(phy::Modulation::QPSK, spec);
    // A real fit lands well away from the unit-scale fallback:
    // hint magnitudes run into the hundreds while true LLRs at BER
    // 1e-7 are ~16, so the scale is a few hundredths.
    EXPECT_GT(table.scale(), 0.002);
    EXPECT_LT(table.scale(), 0.5);
    EXPECT_GT(table.lookup(5.0), table.lookup(300.0));
    EXPECT_LT(table.lookup(300.0), 1e-2);
}

TEST(SoftPhyCalibration, PredictedPacketBerTracksActual)
{
    // The Figure 6 property in miniature: over many packets at one
    // SNR, mean predicted PBER is within a small factor of actual.
    CalibrationSpec spec;
    spec.rx.decoder = "bcjr";
    spec.packets = 60;
    spec.payloadBits = 1704;
    spec.threads = 2;
    BerTable table = calibrateTable(phy::Modulation::QAM16, spec);

    BerEstimator est;
    est.setTable(phy::Modulation::QAM16, table);

    auto measure = [&](double snr_db, double &predicted,
                       double &actual) {
        sim::TestbenchConfig cfg;
        cfg.rate = 4; // QAM16 1/2
        cfg.rx = spec.rx;
        cfg.channelCfg = li::Config::fromString(
            "snr_db=" + std::to_string(snr_db) + ",seed=333");
        sim::Testbench tb(cfg);

        predicted = 0.0;
        std::uint64_t errors = 0;
        std::uint64_t bits = 0;
        const int packets = 60;
        for (int p = 0; p < packets; ++p) {
            auto res =
                tb.runPacket(1704, static_cast<std::uint64_t>(p));
            predicted +=
                est.packetBer(phy::Modulation::QAM16, res.rx.soft);
            errors += res.bitErrors;
            bits += res.txPayload.size();
        }
        predicted /= packets;
        actual = static_cast<double>(errors) /
                 static_cast<double>(bits);
    };

    // At the calibration SNR the prediction must track closely.
    double predicted, actual;
    measure(midBandSnrDb(phy::Modulation::QAM16), predicted, actual);
    ASSERT_GT(actual, 0.0) << "need a noisy operating point";
    EXPECT_GT(predicted, actual / 5.0);
    EXPECT_LT(predicted, actual * 5.0);

    // Above the calibration SNR the estimator overestimates the BER
    // (section 4.2's documented bias of the fixed SNR constant).
    double pred_hi, act_hi;
    measure(midBandSnrDb(phy::Modulation::QAM16) + 1.0, pred_hi,
            act_hi);
    EXPECT_GT(pred_hi, act_hi);
}
