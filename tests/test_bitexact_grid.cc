/**
 * @file
 * Batch <-> LI bit-exactness over a scenario grid: one ScenarioSpec
 * is the single source of truth for both execution styles, and for
 * every cell of a rates x channels grid the streaming multi-clock
 * pipeline must reproduce the batch kernel path bit for bit --
 * payloads, decoded bits and SoftPHY LLR hints alike. This is the
 * WiLIS "same blocks, both worlds" property lifted to whole
 * scenarios, which is what makes fast software sweeps trustworthy
 * stand-ins for the cycle-accurate execution.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/li_transceiver.hh"
#include "sim/scenario_grid.hh"
#include "sim/testbench.hh"

using namespace wilis;
using namespace wilis::sim;

class BitExactGrid
    : public ::testing::TestWithParam<std::tuple<int, const char *>>
{};

// 3 rates x 2 channels = 6 cells; every cell checks 2 packets.
INSTANTIATE_TEST_SUITE_P(
    RatesAndChannels, BitExactGrid,
    ::testing::Combine(::testing::Values(0, 3, 5),
                       ::testing::Values("awgn", "rayleigh")));

TEST_P(BitExactGrid, ScenarioSpecDrivesBothPathsBitExactly)
{
    auto [rate, channel] = GetParam();

    ScenarioSpec spec;
    spec.rate = rate;
    spec.channel = channel;
    spec.channelCfg = li::Config::fromString(
        "snr_db=9,doppler_hz=20,seed=31");
    spec.rx.decoder = "bcjr";
    spec.payloadBits = 260;

    Testbench tb(spec);
    LiTransceiver li_tx(spec);

    for (std::uint64_t p = 0; p < 2; ++p) {
        // The batch side generates the payload deterministically;
        // replay the identical bits through the LI pipeline.
        FrameResult kernel = tb.runFrame(spec.payloadBits, p);
        BitVec payload(kernel.txPayload.begin(),
                       kernel.txPayload.end());
        BitVec kernel_bits(kernel.rx.payload.begin(),
                           kernel.rx.payload.end());
        std::vector<SoftDecision> kernel_soft(kernel.rx.soft.begin(),
                                              kernel.rx.soft.end());

        LiPacketResult streamed = li_tx.runPacket(payload, p);

        ASSERT_EQ(streamed.payload.size(), kernel_bits.size());
        EXPECT_EQ(streamed.payload, kernel_bits) << "packet " << p;
        ASSERT_EQ(streamed.soft.size(), kernel_soft.size());
        for (size_t i = 0; i < streamed.soft.size(); ++i) {
            ASSERT_EQ(streamed.soft[i].bit, kernel_soft[i].bit)
                << "bit " << i;
            ASSERT_EQ(streamed.soft[i].llr, kernel_soft[i].llr)
                << "hint " << i;
        }
    }
}

TEST(BitExactGridSweep, GridCellsAgreeAcrossExecutionStyles)
{
    // Drive both styles from ScenarioGrid::cell() directly: the grid
    // machinery (per-cell seed derivation included) must hand the LI
    // path exactly the scenario the batch sweep ran.
    ScenarioGrid grid;
    grid.base = scenarioPreset("awgn-mid");
    grid.base.payloadBits = 200;
    grid.rates = {2, 4};
    grid.channels = {"awgn", "rayleigh"};
    grid.seed = 0x5CE4A;
    ASSERT_EQ(grid.cellCount(), 4u);

    for (size_t c = 0; c < grid.cellCount(); ++c) {
        ScenarioSpec spec = grid.cell(c);
        Testbench tb(spec);
        LiTransceiver li_tx(spec);

        FrameResult kernel = tb.runFrame(spec.payloadBits, 0);
        BitVec payload(kernel.txPayload.begin(),
                       kernel.txPayload.end());
        BitVec kernel_bits(kernel.rx.payload.begin(),
                           kernel.rx.payload.end());

        LiPacketResult streamed = li_tx.runPacket(payload, 0);
        EXPECT_EQ(streamed.payload, kernel_bits)
            << "cell " << c << " (" << spec.label() << ")";
    }
}
