/**
 * @file
 * Convolutional code unit tests: generator correctness, trellis
 * table consistency, and termination behaviour.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "phy/conv_code.hh"

using namespace wilis;
using namespace wilis::phy;

TEST(ConvCode, AllZeroInputGivesAllZeroOutput)
{
    BitVec data(100, 0);
    BitVec coded = convCode().encode(data, true);
    EXPECT_EQ(coded.size(), 2 * (data.size() + 6));
    for (Bit b : coded)
        EXPECT_EQ(b, 0);
}

TEST(ConvCode, RateIsHalf)
{
    BitVec data(33, 1);
    EXPECT_EQ(convCode().encode(data, false).size(), 66u);
    EXPECT_EQ(convCode().encode(data, true).size(), 78u);
}

TEST(ConvCode, ImpulseResponseMatchesGenerators)
{
    // A single 1 followed by zeros reads out the generator taps:
    // output pair k is (g0 bit, g1 bit) for delay k.
    BitVec data(7, 0);
    data[0] = 1;
    BitVec coded = convCode().encode(data, false);
    // g0 = 133 octal = 1011011b, taps at delays 0,2,3,5,6.
    const Bit g0_taps[7] = {1, 0, 1, 1, 0, 1, 1};
    // g1 = 171 octal = 1111001b, taps at delays 0,1,2,3,6.
    const Bit g1_taps[7] = {1, 1, 1, 1, 0, 0, 1};
    for (int k = 0; k < 7; ++k) {
        EXPECT_EQ(coded[static_cast<size_t>(2 * k)], g0_taps[k])
            << "g0 delay " << k;
        EXPECT_EQ(coded[static_cast<size_t>(2 * k + 1)], g1_taps[k])
            << "g1 delay " << k;
    }
}

TEST(ConvCode, TerminationReturnsToStateZero)
{
    SplitMix64 rng(7);
    const ConvCode &code = convCode();
    for (int trial = 0; trial < 20; ++trial) {
        BitVec data(50);
        for (auto &b : data)
            b = rng.nextBit();
        int state = 0;
        for (Bit b : data)
            state = code.nextState(state, b);
        for (int i = 0; i < ConvCode::kTailBits; ++i)
            state = code.nextState(state, 0);
        EXPECT_EQ(state, 0);
    }
}

TEST(ConvCode, TrellisPredecessorConsistency)
{
    const ConvCode &code = convCode();
    for (int s = 0; s < ConvCode::kStates; ++s) {
        for (int x = 0; x < 2; ++x) {
            int ns = code.nextState(s, x);
            // The input that produced ns is recoverable from its MSB.
            EXPECT_EQ(ConvCode::inputOf(ns), x);
            // s must be one of the two predecessors of ns.
            EXPECT_TRUE(ConvCode::predecessor(ns, 0) == s ||
                        ConvCode::predecessor(ns, 1) == s)
                << "state " << s << " input " << x;
        }
    }
}

TEST(ConvCode, EveryStateHasTwoDistinctPredecessors)
{
    for (int s = 0; s < ConvCode::kStates; ++s) {
        int p0 = ConvCode::predecessor(s, 0);
        int p1 = ConvCode::predecessor(s, 1);
        EXPECT_NE(p0, p1);
        EXPECT_GE(p0, 0);
        EXPECT_LT(p0, ConvCode::kStates);
        EXPECT_GE(p1, 0);
        EXPECT_LT(p1, ConvCode::kStates);
    }
}

TEST(ConvCode, FreeDistanceIsTen)
{
    // The K=7 (133,171) code has free distance 10: the minimum
    // Hamming weight over all nonzero terminated codewords.
    const ConvCode &code = convCode();
    int best = 1000;
    // Breadth-first over short input patterns (12 info bits covers
    // the minimum-weight paths of this code).
    for (unsigned pattern = 1; pattern < (1u << 12); ++pattern) {
        BitVec data(12);
        for (int i = 0; i < 12; ++i)
            data[static_cast<size_t>(i)] =
                static_cast<Bit>((pattern >> i) & 1);
        BitVec coded = code.encode(data, true);
        int w = 0;
        for (Bit b : coded)
            w += b;
        best = std::min(best, w);
    }
    EXPECT_EQ(best, 10);
}
