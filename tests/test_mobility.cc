/**
 * @file
 * Mobility, handover and churn tests: trajectories are pure
 * functions of (seed, user, slot); A3 handover respects hysteresis
 * and time-to-trigger; churn departures settle every in-flight
 * packet (trace conservation); and the `urban-mobile` preset runs
 * bit-identically across 1/2/8 worker threads and both multi-cell
 * engines, packet trace included.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mac/packet_trace.hh"
#include "sim/mobility.hh"
#include "sim/network_sim.hh"
#include "sim/topology.hh"

using namespace wilis;
using namespace wilis::sim;

namespace {

std::string
calibrationPath()
{
    return std::string(WILIS_SOURCE_DIR) +
           "/data/network_calibration.txt";
}

/** A compact multi-cell deployment for the runtime unit tests. */
Topology
smallTopology(int users = 48, std::uint64_t seed = 7)
{
    TopologySpec ts;
    ts.rows = 3;
    ts.cols = 3;
    ts.cellSpacingM = 150.0;
    ts.cellRadiusM = 75.0;
    ts.minDistanceM = 5.0;
    return Topology(ts, users, seed);
}

MobilitySpec
movingSpec(MobilityModel model = MobilityModel::Waypoint)
{
    MobilitySpec m;
    m.model = model;
    m.speedMps = 30.0;
    m.handoverHystDb = 2.0;
    m.handoverTttSlots = 100;
    return m;
}

/** Drive @p rt through every epoch in [0, slots]. */
std::vector<MobilityRuntime::Event>
runEpochs(MobilityRuntime &rt, std::uint64_t slots)
{
    std::vector<MobilityRuntime::Event> all;
    std::vector<MobilityRuntime::Event> out;
    for (std::uint64_t t = 0; t <= slots; t += rt.epochSlots()) {
        out.clear();
        rt.epoch(t, out);
        // Per-epoch contract: user-id order, at most one event per
        // user.
        for (size_t i = 1; i < out.size(); ++i)
            EXPECT_GT(out[i].user, out[i - 1].user)
                << "epoch " << t;
        all.insert(all.end(), out.begin(), out.end());
    }
    return all;
}

} // namespace

// --------------------------------------------------- trajectories

TEST(Mobility, TrajectoriesArePureFunctionsOfSeedUserSlot)
{
    const Topology topo = smallTopology();
    for (auto model : {MobilityModel::Line, MobilityModel::Orbit,
                       MobilityModel::Waypoint}) {
        const MobilitySpec m = movingSpec(model);
        MobilityRuntime a(m, topo, 7, 2000.0);
        MobilityRuntime b(m, topo, 7, 2000.0);
        // b advances through epochs; positions must not care -- the
        // trajectory has no integration state.
        runEpochs(b, 2000);
        for (int u = 0; u < topo.numUsers(); u += 7) {
            // Out-of-order queries on a.
            for (std::uint64_t t : {5000u, 0u, 1234u, 99999u}) {
                const Position pa = a.positionAt(u, t);
                const Position pb = b.positionAt(u, t);
                EXPECT_EQ(pa.x, pb.x) << "user " << u << " t " << t;
                EXPECT_EQ(pa.y, pb.y) << "user " << u << " t " << t;
            }
            // t = 0 is the drop position for every model.
            const Position p0 = a.positionAt(u, 0);
            EXPECT_NEAR(p0.x, topo.userPosition(u).x, 1e-9);
            EXPECT_NEAR(p0.y, topo.userPosition(u).y, 1e-9);
        }
        // A different master seed must move users differently.
        MobilityRuntime c(m, topo, 8, 2000.0);
        bool differs = false;
        for (int u = 0; u < topo.numUsers(); ++u) {
            const Position pa = a.positionAt(u, 4000);
            const Position pc = c.positionAt(u, 4000);
            differs |= pa.x != pc.x || pa.y != pc.y;
        }
        EXPECT_TRUE(differs);
    }
}

TEST(Mobility, TrajectoriesMoveAndStayNearTheDeployment)
{
    const Topology topo = smallTopology();
    const TopologySpec &ts = topo.spec();
    const double xlo = -ts.cellRadiusM;
    const double xhi =
        (ts.cols - 1) * ts.cellSpacingM + ts.cellRadiusM;
    const double ylo = -ts.cellRadiusM;
    const double yhi =
        (ts.rows - 1) * ts.cellSpacingM + ts.cellRadiusM;
    for (auto model : {MobilityModel::Line, MobilityModel::Orbit,
                       MobilityModel::Waypoint}) {
        MobilityRuntime rt(movingSpec(model), topo, 7, 2000.0);
        // Orbits circle a point one lap radius off the drop
        // position, so they may overhang the box by up to two drop
        // radii; line and waypoint paths stay strictly inside.
        const double slack =
            model == MobilityModel::Orbit ? 2.0 * ts.cellRadiusM
                                          : 1e-9;
        bool moved = false;
        for (int u = 0; u < topo.numUsers(); ++u) {
            for (std::uint64_t t = 0; t <= 20000; t += 500) {
                const Position p = rt.positionAt(u, t);
                EXPECT_GE(p.x, xlo - slack);
                EXPECT_LE(p.x, xhi + slack);
                EXPECT_GE(p.y, ylo - slack);
                EXPECT_LE(p.y, yhi + slack);
                const Position p0 = rt.positionAt(u, 0);
                moved |= std::hypot(p.x - p0.x, p.y - p0.y) > 10.0;
            }
        }
        EXPECT_TRUE(moved) << mobilityModelName(model);
    }
}

// ---------------------------------------------- handover dynamics

TEST(Mobility, HugeHysteresisSuppressesEveryHandover)
{
    const Topology topo = smallTopology();
    MobilitySpec m = movingSpec();
    // No realizable gain differential clears 200 dB (the full
    // deployment diagonal plus shadowing tails is ~100 dB), so
    // every handover must be suppressed. A merely-large margin
    // (say 60 dB) is NOT enough on long waypoint runs.
    m.handoverHystDb = 200.0;
    m.handoverTttSlots = 0;
    MobilityRuntime rt(m, topo, 7, 2000.0);
    const auto events = runEpochs(rt, 20000);
    for (const auto &ev : events)
        EXPECT_NE(ev.kind, MobilityRuntime::Event::Kind::Handover);
    for (int u = 0; u < topo.numUsers(); ++u) {
        EXPECT_EQ(rt.handovers(u), 0u);
        EXPECT_EQ(rt.firstHandoverSlot(u), UINT64_MAX);
    }
}

TEST(Mobility, TimeToTriggerDampsHandoversAndPingPong)
{
    const Topology topo = smallTopology();
    MobilitySpec eager = movingSpec();
    eager.handoverTttSlots = 0;
    MobilitySpec patient = movingSpec();
    patient.handoverTttSlots = 600;
    MobilityRuntime fast(eager, topo, 7, 2000.0);
    MobilityRuntime slow(patient, topo, 7, 2000.0);
    runEpochs(fast, 20000);
    runEpochs(slow, 20000);
    std::uint64_t ho_fast = 0, ho_slow = 0;
    for (int u = 0; u < topo.numUsers(); ++u) {
        ho_fast += fast.handovers(u);
        ho_slow += slow.handovers(u);
        // Ping-pongs are a subset of handovers, and the first
        // handover slot exists exactly when any handover happened.
        EXPECT_LE(fast.pingPongs(u), fast.handovers(u));
        EXPECT_EQ(fast.handovers(u) == 0,
                  fast.firstHandoverSlot(u) == UINT64_MAX);
        if (fast.handovers(u) > 0) {
            EXPECT_LE(fast.firstHandoverSlot(u), 20000u);
        }
    }
    EXPECT_GT(ho_fast, 0u) << "30 m/s across 150 m cells must "
                              "produce handovers";
    EXPECT_LE(ho_slow, ho_fast)
        << "a longer time-to-trigger cannot add handovers";
}

TEST(Mobility, EventCellsAreConsistent)
{
    const Topology topo = smallTopology();
    MobilitySpec m = movingSpec();
    m.churnRate = 0.002;
    MobilityRuntime rt(m, topo, 7, 2000.0);
    const auto events = runEpochs(rt, 20000);
    bool saw_ho = false, saw_join = false, saw_leave = false;
    for (const auto &ev : events) {
        switch (ev.kind) {
          case MobilityRuntime::Event::Kind::Handover:
            saw_ho = true;
            EXPECT_NE(ev.fromCell, ev.toCell);
            break;
          case MobilityRuntime::Event::Kind::Join:
            // Rejoin re-associates with the strongest cell at the
            // current position; fromCell is only the pre-departure
            // cell, so the two may differ.
            saw_join = true;
            break;
          case MobilityRuntime::Event::Kind::Leave:
            saw_leave = true;
            EXPECT_EQ(ev.fromCell, ev.toCell);
            break;
        }
        EXPECT_GE(ev.fromCell, 0);
        EXPECT_LT(ev.fromCell, topo.numCells());
        EXPECT_GE(ev.toCell, 0);
        EXPECT_LT(ev.toCell, topo.numCells());
    }
    EXPECT_TRUE(saw_ho);
    EXPECT_TRUE(saw_join);
    EXPECT_TRUE(saw_leave);
}

TEST(Mobility, ChurnTogglesSessionsConsistently)
{
    const Topology topo = smallTopology();
    MobilitySpec m; // churn only, no motion
    m.churnRate = 0.01;
    ASSERT_TRUE(m.enabled());
    MobilityRuntime rt(m, topo, 11, 2000.0);
    EXPECT_EQ(rt.epochSlots(), 64u);
    const auto events = runEpochs(rt, 30000);
    std::uint64_t joins = 0, leaves = 0;
    for (const auto &ev : events) {
        joins += ev.kind == MobilityRuntime::Event::Kind::Join;
        leaves += ev.kind == MobilityRuntime::Event::Kind::Leave;
    }
    EXPECT_GT(leaves, 0u);
    std::uint64_t joins_acc = 0, leaves_acc = 0;
    for (int u = 0; u < topo.numUsers(); ++u) {
        joins_acc += rt.joins(u);
        leaves_acc += rt.leaves(u);
        // Sessions start active: every join re-enters an earlier
        // leave, and the deficit says whether the user is out now.
        EXPECT_LE(rt.joins(u), rt.leaves(u));
        EXPECT_EQ(rt.leaves(u) - rt.joins(u),
                  rt.userActive(u) ? 0u : 1u);
    }
    EXPECT_EQ(joins, joins_acc);
    EXPECT_EQ(leaves, leaves_acc);
}

// ------------------------------------- full-run stats + the trace

namespace {

NetworkSpec
urbanMobileSpec()
{
    NetworkSpec spec = networkPreset("urban-mobile");
    spec.calibrationFile = calibrationPath();
    return spec;
}

void
expectSameMobileStats(const UserStats &a, const UserStats &b,
                      int user)
{
    EXPECT_EQ(a.framesSent, b.framesSent) << "user " << user;
    EXPECT_EQ(a.framesOk, b.framesOk) << "user " << user;
    EXPECT_EQ(a.delivered, b.delivered) << "user " << user;
    EXPECT_EQ(a.dropped, b.dropped) << "user " << user;
    EXPECT_EQ(a.goodputBits, b.goodputBits) << "user " << user;
    EXPECT_EQ(a.arrivals, b.arrivals) << "user " << user;
    EXPECT_EQ(a.queueDrops, b.queueDrops) << "user " << user;
    EXPECT_EQ(a.servingCell, b.servingCell) << "user " << user;
    EXPECT_EQ(a.handovers, b.handovers) << "user " << user;
    EXPECT_EQ(a.pingPongs, b.pingPongs) << "user " << user;
    EXPECT_EQ(a.joins, b.joins) << "user " << user;
    EXPECT_EQ(a.leaves, b.leaves) << "user " << user;
    EXPECT_EQ(a.goodputBitsPreHo, b.goodputBitsPreHo)
        << "user " << user;
    EXPECT_EQ(a.goodputBitsPostHo, b.goodputBitsPostHo)
        << "user " << user;
    EXPECT_EQ(a.preHoSlots, b.preHoSlots) << "user " << user;
    EXPECT_EQ(a.postHoSlots, b.postHoSlots) << "user " << user;
    EXPECT_EQ(a.latencySlots.count(), b.latencySlots.count())
        << "user " << user;
    EXPECT_EQ(a.sinrDb.mean(), b.sinrDb.mean()) << "user " << user;
}

} // namespace

TEST(MobilityRun, StatsAccountHandoverSplitExactly)
{
    NetworkSpec spec = urbanMobileSpec();
    const std::uint64_t slots = 800;
    NetworkResult res = NetworkSim(spec).run(slots, 2);
    EXPECT_GT(res.aggregate.handovers, 0u);
    EXPECT_GT(res.aggregate.leaves, 0u);
    for (const UserStats &u : res.users) {
        EXPECT_EQ(u.preHoSlots + u.postHoSlots, slots)
            << "user " << u.user;
        EXPECT_EQ(u.goodputBitsPreHo + u.goodputBitsPostHo,
                  u.goodputBits)
            << "user " << u.user;
        if (u.handovers == 0) {
            EXPECT_EQ(u.postHoSlots, 0u) << "user " << u.user;
            EXPECT_EQ(u.goodputBitsPostHo, 0u)
                << "user " << u.user;
        } else {
            EXPECT_GT(u.postHoSlots, 0u) << "user " << u.user;
        }
        EXPECT_LE(u.pingPongs, u.handovers) << "user " << u.user;
    }
}

TEST(MobilityRun, DepartedUsersSettleEveryPacketInTheTrace)
{
    NetworkSpec spec = urbanMobileSpec();
    spec.trace = true;
    NetworkResult res = NetworkSim(spec).run(800, 2);
    ASSERT_NE(res.trace, nullptr);

    struct Account {
        std::uint64_t enq = 0, ack = 0, expire = 0, qdrop = 0;
        std::uint64_t tail_rejected = 0;
        std::uint64_t last_session_slot = 0;
        bool departed = false, has_session_event = false;
    };
    std::map<int, Account> acct;
    std::uint64_t ho = 0, joins = 0, leaves = 0;
    for (const auto &e : res.trace->entries()) {
        Account &a = acct[e.user];
        switch (e.event) {
          case mac::PacketEvent::Enqueue:
            ++a.enq;
            break;
          case mac::PacketEvent::Ack:
            ++a.ack;
            break;
          case mac::PacketEvent::Expire:
            ++a.expire;
            break;
          case mac::PacketEvent::QueueDrop:
            // A tail drop (arg0 = 0) rejects the arrival before it
            // ever enters the queue -- there is no matching enq --
            // while evictions (1) and departure flushes (2) settle
            // packets that did enqueue.
            if (e.arg0 == 0)
                ++a.tail_rejected;
            else
                ++a.qdrop;
            break;
          case mac::PacketEvent::Handover:
            ++ho;
            EXPECT_NE(e.arg0, e.cell);
            break;
          case mac::PacketEvent::Join:
          case mac::PacketEvent::Leave:
            if (!a.has_session_event ||
                e.slot >= a.last_session_slot) {
                a.last_session_slot = e.slot;
                a.departed = e.event == mac::PacketEvent::Leave;
            }
            a.has_session_event = true;
            joins += e.event == mac::PacketEvent::Join;
            leaves += e.event == mac::PacketEvent::Leave;
            break;
          default:
            break;
        }
    }
    // The trace and the stats surface agree on mobility activity.
    EXPECT_EQ(ho, res.aggregate.handovers);
    EXPECT_EQ(joins, res.aggregate.joins);
    EXPECT_EQ(leaves, res.aggregate.leaves);
    EXPECT_GT(leaves, 0u);

    int settled_users = 0;
    for (const auto &kv : acct) {
        const Account &a = kv.second;
        // Every settled outcome stems from an enqueue...
        EXPECT_LE(a.ack + a.expire + a.qdrop, a.enq)
            << "user " << kv.first;
        // ...and a departure settles everything: the flush drops
        // the queue and the ARQ abort drains the window, so a user
        // who is out at the end of the run has no packet
        // unaccounted for.
        if (a.departed) {
            ++settled_users;
            EXPECT_EQ(a.enq, a.ack + a.expire + a.qdrop)
                << "user " << kv.first;
        }
    }
    EXPECT_GT(settled_users, 0);
}

TEST(MobilityRun, UrbanMobileBitIdenticalAcrossThreadsAndEngines)
{
    NetworkSpec spec = urbanMobileSpec();
    spec.trace = true;
    const std::uint64_t slots = 600;

    NetworkSpec per = spec;
    per.engine = "peruser";
    NetworkResult ref = NetworkSim(spec).run(slots, 1);
    ASSERT_NE(ref.trace, nullptr);
    EXPECT_GT(ref.aggregate.handovers, 0u);
    const std::string ref_text = ref.trace->toText();

    struct Case {
        const NetworkSpec *spec;
        int threads;
    } cases[] = {{&spec, 2}, {&spec, 8}, {&per, 1},
                 {&per, 2},  {&per, 8}};
    for (const Case &c : cases) {
        NetworkResult r = NetworkSim(*c.spec).run(slots, c.threads);
        ASSERT_EQ(r.users.size(), ref.users.size());
        for (size_t u = 0; u < ref.users.size(); ++u)
            expectSameMobileStats(ref.users[u], r.users[u],
                                  static_cast<int>(u));
        expectSameMobileStats(ref.aggregate, r.aggregate, -1);
        ASSERT_NE(r.trace, nullptr);
        EXPECT_EQ(ref_text, r.trace->toText())
            << c.spec->engine << " @ " << c.threads
            << " threads diverged";
    }
}

TEST(MobilityRun, StaticRunsAreUntouchedByTheMobilityLayer)
{
    // The whole feature is opt-in: a static preset must neither
    // move users nor emit session events, and its stats must say
    // so (all slots "pre-handover").
    NetworkSpec spec = networkPreset("grid-3x3");
    spec.calibrationFile = calibrationPath();
    spec.trace = true;
    const std::uint64_t slots = 120;
    NetworkResult res = NetworkSim(spec).run(slots, 2);
    EXPECT_EQ(res.aggregate.handovers, 0u);
    EXPECT_EQ(res.aggregate.joins, 0u);
    EXPECT_EQ(res.aggregate.leaves, 0u);
    ASSERT_NE(res.trace, nullptr);
    for (const auto &e : res.trace->entries()) {
        EXPECT_NE(e.event, mac::PacketEvent::Handover);
        EXPECT_NE(e.event, mac::PacketEvent::Join);
        EXPECT_NE(e.event, mac::PacketEvent::Leave);
    }
    for (const UserStats &u : res.users) {
        EXPECT_EQ(u.preHoSlots, slots);
        EXPECT_EQ(u.postHoSlots, 0u);
        EXPECT_EQ(u.goodputBitsPostHo, 0u);
    }
}
