/**
 * @file
 * Decoder tests: noiseless exactness for Viterbi/SOVA/BCJR, decode
 * quality under noise, soft-output sanity (higher LLR -> lower error
 * probability), latency formulas, and registry plug-n-play.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "common/stats.hh"
#include "decode/bcjr.hh"
#include "decode/soft_decoder.hh"
#include "decode/sova.hh"
#include "decode/viterbi.hh"
#include "phy/conv_code.hh"

using namespace wilis;
using namespace wilis::phy;
using namespace wilis::decode;

namespace {

/** Encode data (terminated) and map bits to +-amp soft values. */
SoftVec
cleanSoft(const BitVec &data, int amp)
{
    BitVec coded = convCode().encode(data, true);
    SoftVec soft(coded.size());
    for (size_t i = 0; i < coded.size(); ++i)
        soft[i] = coded[i] ? amp : -amp;
    return soft;
}

BitVec
randomBits(size_t n, std::uint64_t seed)
{
    SplitMix64 rng(seed);
    BitVec v(n);
    for (auto &b : v)
        b = rng.nextBit();
    return v;
}

/** Add Gaussian noise to clean +-amp soft values, then requantize. */
SoftVec
noisySoft(const BitVec &data, double amp, double sigma,
          std::uint64_t seed)
{
    BitVec coded = convCode().encode(data, true);
    GaussianSource g(seed);
    SoftVec soft(coded.size());
    for (size_t i = 0; i < coded.size(); ++i) {
        double v = (coded[i] ? amp : -amp) + sigma * g.next();
        soft[i] = static_cast<SoftBit>(std::lround(v));
    }
    return soft;
}

std::uint64_t
countBitErrors(const std::vector<SoftDecision> &dec, const BitVec &data)
{
    std::uint64_t e = 0;
    for (size_t i = 0; i < data.size(); ++i)
        e += dec[i].bit != data[i];
    return e;
}

} // namespace

class DecoderNames : public ::testing::TestWithParam<const char *>
{};

INSTANTIATE_TEST_SUITE_P(AllDecoders, DecoderNames,
                         ::testing::Values("viterbi", "sova", "bcjr",
                                           "bcjr-logmap"));

TEST_P(DecoderNames, RegistryCreates)
{
    auto dec = makeDecoder(GetParam());
    ASSERT_NE(dec, nullptr);
    EXPECT_EQ(dec->name(), GetParam());
}

TEST_P(DecoderNames, NoiselessDecodeIsExact)
{
    auto dec = makeDecoder(GetParam());
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        BitVec data = randomBits(500, seed);
        auto out = dec->decodeBlock(cleanSoft(data, 15));
        ASSERT_EQ(out.size(), data.size() + ConvCode::kTailBits);
        EXPECT_EQ(countBitErrors(out, data), 0u) << "seed " << seed;
        // Tail bits decode to zero.
        for (size_t i = data.size(); i < out.size(); ++i)
            EXPECT_EQ(out[i].bit, 0);
    }
}

TEST_P(DecoderNames, ShortBlocksDecode)
{
    auto dec = makeDecoder(GetParam());
    for (size_t n : {1u, 2u, 7u, 13u, 64u}) {
        BitVec data = randomBits(n, 77 + n);
        auto out = dec->decodeBlock(cleanSoft(data, 7));
        EXPECT_EQ(countBitErrors(out, data), 0u) << "len " << n;
    }
}

TEST_P(DecoderNames, CorrectsBurstsOfErasures)
{
    auto dec = makeDecoder(GetParam());
    BitVec data = randomBits(300, 5);
    SoftVec soft = cleanSoft(data, 15);
    // Erase 8 consecutive coded bits (as a puncturer would).
    for (size_t i = 100; i < 108; ++i)
        soft[i] = 0;
    auto out = dec->decodeBlock(soft);
    EXPECT_EQ(countBitErrors(out, data), 0u);
}

TEST_P(DecoderNames, CorrectsModerateNoise)
{
    // amp=15, sigma=9 corresponds to ~4.4 dB Eb/N0 on the rate-1/2
    // BPSK-equivalent channel; the K=7 code decodes this with BER
    // well below 1e-3.
    auto dec = makeDecoder(GetParam());
    std::uint64_t bits = 0;
    std::uint64_t errs = 0;
    for (std::uint64_t p = 0; p < 30; ++p) {
        BitVec data = randomBits(1000, 1000 + p);
        auto out = dec->decodeBlock(noisySoft(data, 15.0, 9.0, p));
        errs += countBitErrors(out, data);
        bits += data.size();
    }
    double ber = static_cast<double>(errs) / static_cast<double>(bits);
    EXPECT_LT(ber, 2e-3) << "decoder " << GetParam();
}

TEST(Decoders, SoftOutputFlagsMatchImplementations)
{
    EXPECT_FALSE(makeDecoder("viterbi")->producesSoftOutput());
    EXPECT_TRUE(makeDecoder("sova")->producesSoftOutput());
    EXPECT_TRUE(makeDecoder("bcjr")->producesSoftOutput());
}

TEST(Decoders, SovaLatencyFormula)
{
    // Section 4.3.1: l + k + 12; 140 cycles at l = k = 64.
    SovaDecoder dflt;
    EXPECT_EQ(dflt.pipelineLatencyCycles(), 140);

    li::Config cfg;
    cfg.set("traceback_l", "32");
    cfg.set("traceback_k", "48");
    SovaDecoder custom(cfg);
    EXPECT_EQ(custom.pipelineLatencyCycles(), 32 + 48 + 12);
}

TEST(Decoders, BcjrLatencyFormula)
{
    // Section 4.3.2: 2n + 7; 135 cycles at n = 64.
    BcjrDecoder dflt;
    EXPECT_EQ(dflt.pipelineLatencyCycles(), 135);

    li::Config cfg;
    cfg.set("block_len", "32");
    BcjrDecoder custom(cfg);
    EXPECT_EQ(custom.pipelineLatencyCycles(), 71);
}

TEST(Decoders, LatenciesMeetWifiBudget)
{
    // At 60 MHz both decoders stay well under the 25 us 802.11a/g
    // turnaround budget (2.3 us SOVA, 2.2 us BCJR).
    const double cycle_us = 1.0 / 60.0;
    EXPECT_LT(SovaDecoder().pipelineLatencyCycles() * cycle_us, 2.4);
    EXPECT_LT(BcjrDecoder().pipelineLatencyCycles() * cycle_us, 2.3);
    EXPECT_LT(SovaDecoder().pipelineLatencyCycles() * cycle_us, 25.0);
}

class SoftHintQuality : public ::testing::TestWithParam<const char *>
{};

INSTANTIATE_TEST_SUITE_P(SoftDecoders, SoftHintQuality,
                         ::testing::Values("sova", "bcjr",
                                           "bcjr-logmap"));

TEST_P(SoftHintQuality, HigherLlrMeansFewerErrors)
{
    auto dec = makeDecoder(GetParam());
    std::vector<std::pair<double, bool>> samples; // (llr, error)
    for (std::uint64_t p = 0; p < 60; ++p) {
        BitVec data = randomBits(1000, 31337 + p);
        SoftVec soft = noisySoft(data, 10.0, 9.0, 555 + p);
        auto out = dec->decodeBlock(soft);
        for (size_t i = 0; i < data.size(); ++i)
            samples.emplace_back(out[i].llr, out[i].bit != data[i]);
    }
    // Compare the error rate of the least-confident third against
    // the most-confident third (scale-free across decoders).
    std::sort(samples.begin(), samples.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    const size_t third = samples.size() / 3;
    std::uint64_t low_err = 0;
    std::uint64_t high_err = 0;
    for (size_t i = 0; i < third; ++i) {
        low_err += samples[i].second;
        high_err += samples[samples.size() - 1 - i].second;
    }
    double low_rate = static_cast<double>(low_err) /
                      static_cast<double>(third);
    double high_rate = static_cast<double>(high_err) /
                       static_cast<double>(third);
    EXPECT_GT(low_rate, high_rate)
        << "low-confidence bits must err more often";
    EXPECT_GT(low_rate, 5.0 * (high_rate + 1e-9));
}

TEST(Decoders, SovaAndBcjrAgreeOnHardBitsMostly)
{
    auto sova = makeDecoder("sova");
    auto bcjr = makeDecoder("bcjr");
    std::uint64_t diff = 0;
    std::uint64_t total = 0;
    for (std::uint64_t p = 0; p < 10; ++p) {
        BitVec data = randomBits(1000, 999 + p);
        SoftVec soft = noisySoft(data, 12.0, 8.0, 3 + p);
        auto a = sova->decodeBlock(soft);
        auto b = bcjr->decodeBlock(soft);
        for (size_t i = 0; i < data.size(); ++i)
            diff += a[i].bit != b[i].bit;
        total += data.size();
    }
    EXPECT_LT(static_cast<double>(diff) / static_cast<double>(total),
              1e-2);
}

TEST(Decoders, BcjrSmallWindowDegrades)
{
    // Section 4.3.2: block size below 32 costs accuracy. Compare
    // window 8 against window 64 at a noise level with plenty of
    // errors.
    li::Config small_cfg;
    small_cfg.set("block_len", "8");
    BcjrDecoder small(small_cfg);
    BcjrDecoder big; // 64

    std::uint64_t errs_small = 0;
    std::uint64_t errs_big = 0;
    for (std::uint64_t p = 0; p < 40; ++p) {
        BitVec data = randomBits(800, 123456 + p);
        SoftVec soft = noisySoft(data, 8.0, 9.5, 77 + p);
        errs_small += countBitErrors(small.decodeBlock(soft), data);
        errs_big += countBitErrors(big.decodeBlock(soft), data);
    }
    EXPECT_GT(errs_small, errs_big);
}

TEST(DecodersDeath, OddStreamPanics)
{
    auto dec = makeDecoder("viterbi");
    SoftVec bad(15, 1);
    EXPECT_DEATH(dec->decodeBlock(bad), "odd");
}
