/**
 * @file
 * Semantics of the annotated synchronization layer (common/sync.hh)
 * and the LockstepTeam barrier protocol (common/lockstep.hh): the
 * primitives every engine's determinism contract stands on. These
 * run under the CI TSan leg (threaded label), so the assertions
 * here double as race detectors over the primitives themselves.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/lockstep.hh"
#include "common/sync.hh"
#include "common/thread_pool.hh"

using namespace wilis;

TEST(SyncMutex, ExclusionUnderContention)
{
    Mutex mu;
    std::int64_t counter = 0;
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&] {
            for (int k = 0; k < kIters; ++k) {
                MutexLock lk(mu);
                ++counter;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(SyncMutex, ScopedUnlockRelockSuspendsTheCriticalSection)
{
    Mutex mu;
    int guarded = 0;
    MutexLock lk(mu);
    guarded = 1;
    lk.unlock();
    // While suspended another thread must be able to take the lock.
    std::thread other([&] {
        MutexLock inner(mu);
        guarded = 2;
    });
    other.join();
    lk.lock();
    EXPECT_EQ(guarded, 2);
    guarded = 3;
    // Destructor releases the resumed lock (no deadlock below).
    lk.unlock();
    MutexLock again(mu);
    EXPECT_EQ(guarded, 3);
}

TEST(SyncMutex, TryLockReportsContention)
{
    Mutex mu;
    ASSERT_TRUE(mu.try_lock());
    std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
    other.join();
    mu.unlock();
    ASSERT_TRUE(mu.try_lock());
    mu.unlock();
}

TEST(SyncConditionVariable, HandsOffThroughThePredicateLoop)
{
    Mutex mu;
    ConditionVariable cv;
    int stage = 0;
    std::thread consumer([&] {
        MutexLock lk(mu);
        while (stage != 1)
            cv.wait(mu);
        stage = 2;
        cv.notify_all();
    });
    {
        MutexLock lk(mu);
        stage = 1;
        cv.notify_all();
        while (stage != 2)
            cv.wait(mu);
    }
    consumer.join();
    EXPECT_EQ(stage, 2);
}

TEST(Lockstep, BarrierSeparatesPhasesAcrossGenerations)
{
    constexpr int kWorkers = 8;
    constexpr int kGenerations = 500;
    LockstepTeam team(kWorkers);
    ASSERT_EQ(team.size(), kWorkers);

    // Phase A: each worker writes its own slot. Phase B: every
    // worker sums all slots. If the barrier's release/acquire
    // protocol leaked a generation, some worker would read a stale
    // slot and the per-generation sum check would fail (and TSan
    // would flag the unsynchronized write/read pair).
    std::vector<std::int64_t> slots(kWorkers, 0);
    std::vector<std::int64_t> sums(kWorkers, 0);
    std::atomic<int> mismatches{0};
    team.run([&](int w) {
        for (int g = 1; g <= kGenerations; ++g) {
            slots[static_cast<size_t>(w)] = g * (w + 1);
            team.barrier();
            std::int64_t sum = 0;
            for (int i = 0; i < kWorkers; ++i)
                sum += slots[static_cast<size_t>(i)];
            sums[static_cast<size_t>(w)] = sum;
            team.barrier();
            const std::int64_t expect =
                static_cast<std::int64_t>(g) * kWorkers *
                (kWorkers + 1) / 2;
            if (sum != expect)
                mismatches.fetch_add(1,
                                     std::memory_order_relaxed);
        }
    });
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(Lockstep, TeamIsReusableAcrossRuns)
{
    LockstepTeam team(4);
    for (int round = 0; round < 3; ++round) {
        std::atomic<int> visits{0};
        team.run([&](int) {
            visits.fetch_add(1, std::memory_order_relaxed);
            team.barrier();
            visits.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(visits.load(), 8) << "round " << round;
    }
}

TEST(Lockstep, SingleWorkerDegeneratesToInlineCall)
{
    LockstepTeam team(1);
    int calls = 0;
    team.run([&](int w) {
        EXPECT_EQ(w, 0);
        team.barrier(); // must be a no-op, not a hang
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(SyncThreadPool, ParallelForUnderConditionChurn)
{
    // Many small jobs back to back stress the worker wake/join
    // handshake that the annotated explicit-loop waits rewrote.
    ThreadPool pool(4);
    for (int job = 0; job < 50; ++job) {
        std::atomic<std::uint64_t> sum{0};
        const std::uint64_t chunks = 64;
        pool.parallelFor(chunks, [&](std::uint64_t c) {
            sum.fetch_add(c + 1, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), chunks * (chunks + 1) / 2);
    }
}
